#!/usr/bin/env bash
# bench.sh — run the Fig 11 / offline-build benchmarks and write a
# machine-readable snapshot so the repo keeps a perf trajectory across PRs.
#
# Usage:
#   scripts/bench.sh                 # full run, writes BENCH_PR10.json
#   scripts/bench.sh -smoke          # 1-iteration smoke (CI: bench code must compile and run)
#   BENCH_OUT=perf.json scripts/bench.sh
#   PERSIST_SIZES=1000 scripts/bench.sh   # shrink the persistence leg
#   QUERY_SIZES=1000 scripts/bench.sh     # shrink the query-pruning leg
#   FLEET_DOCS=0 scripts/bench.sh         # skip the fleet-overhead leg
#   LOADGEN_DOCS=0 scripts/bench.sh       # skip the open-loop loadgen leg
#
# The JSON output maps benchmark name -> {ns_per_op, bytes_per_op, allocs_per_op}
# plus a "meta" block (go version, GOMAXPROCS, benchtime, count) and a
# "persistence" block from cmd/persistbench: file size, load wall-time,
# and post-load heap for the legacy gob vs compact snapshot layouts at
# each corpus size (set PERSIST_SIZES=0 to skip the leg), and a "query"
# block from cmd/querybench: exhaustive vs max-score-pruned ns/op and
# postings scanned per query at each corpus size (QUERY_SIZES=0 skips) —
# the full run includes the 1M-unit size, so the snapshot tracks pruning
# at serving scale. The full run enforces -require-speedup: the pruned
# path must be faster and scan >= 2x fewer postings at the largest size,
# or the run fails. A "fleet" block (FLEET_DOCS docs at FLEET_SHARDS
# shards, FLEET_DOCS=0 skips) records the serving-topology tax: the same
# query answered by the unsharded matcher, the in-process shard group,
# and the networked fleet coordinator over the in-process transport.
# A "loadgen" block (LOADGEN_DOCS docs, LOADGEN_DOCS=0 skips) records
# open-loop latency quantiles — P50/P99/P999 under a fixed arrival
# schedule, immune to coordinated omission — against three live
# topologies: one unsharded process ("single"), one process with an
# in-process shard group ("group"), and a networked fleet of four shard
# servers behind a coordinator ("fleet"). The leg also runs a
# cached-vs-uncached pair ("uncached"/"cached": the same server with
# and without -cache-entries, same Zipf(1.1) schedule, no adds) and
# gates on it: the cached run must report a result-cache hit rate
# >= 50% and a P99 no worse than the uncached run (a 10% allowance
# absorbs scheduling jitter), or the run fails.
#
# The Fig11cRetrievalIntent / Fig11cRetrievalIntentObserved pair tracks
# the observability tax on the query hot path (obs disabled vs enabled);
# the pair must stay within a few percent of each other. The
# ConcurrentServe family (unsharded / read-only / sharded at 1-8 shards)
# tracks the serving path's mixed-load profile across topologies; see
# EXPERIMENTS.md for how to read it on single- vs multi-core hosts.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_PR10.json}"
PERSIST_SIZES="${PERSIST_SIZES:-1000,10000,100000}"
QUERY_SIZES="${QUERY_SIZES:-1000,10000,100000,1000000}"
QUERY_RUNS="${QUERY_RUNS:-64}"
FLEET_DOCS="${FLEET_DOCS:-10000}"
FLEET_SHARDS="${FLEET_SHARDS:-4}"
LOADGEN_DOCS="${LOADGEN_DOCS:-2000}"
LOADGEN_RATE="${LOADGEN_RATE:-100}"
LOADGEN_DURATION="${LOADGEN_DURATION:-5s}"
LOADGEN_PORT="${LOADGEN_PORT:-18200}"
PATTERN='BenchmarkFig11aSegmentation|BenchmarkFig11bClustering|BenchmarkFig11cRetrievalIntent$|BenchmarkFig11cRetrievalIntentObserved|BenchmarkMRBuild|BenchmarkPipelineBuild1k|BenchmarkConcurrentServe$|BenchmarkConcurrentServeReadOnly|BenchmarkConcurrentServeSharded|BenchmarkConcurrentServeShardedWriteHeavy'
BENCHTIME="${BENCH_TIME:-2s}"
COUNT="${BENCH_COUNT:-3}"
# Benchmark names carry a -GOMAXPROCS suffix only when GOMAXPROCS != 1;
# the reducer must know the value to strip it without truncating
# sub-benchmark names like ConcurrentServeSharded/shards-4.
GOMP="${GOMAXPROCS:-$(nproc)}"

if [[ "${1:-}" == "-smoke" ]]; then
    # CI smoke: one iteration of the acceptance benchmarks plus a 1k-doc
    # persistbench pass (gob vs compact must both write, load, validate)
    # and a 1k-doc querybench pass (pruned vs exhaustive must both run;
    # the speedup gate only applies at full scale, so it is not set here).
    go test -run '^$' -bench 'BenchmarkFig11bClustering|BenchmarkFig11cRetrievalIntentObserved|BenchmarkPipelineBuild1k' -benchtime 1x .
    go run ./cmd/persistbench -sizes 1000 -runs 2
    go run ./cmd/querybench -sizes 1000 -runs 16 -fleet-docs 300 -out /dev/null
    # Loadgen smoke: a 2-second open-loop run against a tiny live server
    # gates the full run's loadgen leg (loadgen must boot, find the
    # collection size via /stats, fire, and report sane quantiles).
    SMOKE_DIR="$(mktemp -d)"
    trap 'kill "${SMOKE_SRV:-}" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
    go build -o "$SMOKE_DIR/serve" ./cmd/serve
    go build -o "$SMOKE_DIR/loadgen" ./cmd/loadgen
    "$SMOKE_DIR/serve" -addr "127.0.0.1:$LOADGEN_PORT" -domain tech -n 200 -seed 42 2>/dev/null &
    SMOKE_SRV=$!
    for i in $(seq 1 50); do
        curl -sf "http://127.0.0.1:$LOADGEN_PORT/healthz" >/dev/null 2>&1 && break
        sleep 0.3
    done
    "$SMOKE_DIR/loadgen" -target "http://127.0.0.1:$LOADGEN_PORT" -rate 50 -duration 2s -name smoke |
        python3 -c 'import json,sys; r=json.load(sys.stdin); assert r["ok"] > 0 and r["p50_ns"] > 0 and r["p999_ns"] >= r["p99_ns"] >= r["p50_ns"], r'
    echo "loadgen smoke ok" >&2
    # Cached-serving gate: the same corpus behind -cache-entries under
    # the Zipf(1.1) schedule must turn repeat traffic into cache hits —
    # hit rate >= 50%, zero sheds (admission is off), and the report's
    # cache block present. This is the CI teeth for the hygiene layer.
    kill "$SMOKE_SRV" 2>/dev/null || true; wait "$SMOKE_SRV" 2>/dev/null || true
    "$SMOKE_DIR/serve" -addr "127.0.0.1:$LOADGEN_PORT" -domain tech -n 200 -seed 42 \
        -cache-entries 1024 2>/dev/null &
    SMOKE_SRV=$!
    for i in $(seq 1 50); do
        curl -sf "http://127.0.0.1:$LOADGEN_PORT/healthz" >/dev/null 2>&1 && break
        sleep 0.3
    done
    "$SMOKE_DIR/loadgen" -target "http://127.0.0.1:$LOADGEN_PORT" -rate 200 -duration 2s -name cached-smoke |
        python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["ok"] > 0 and r["shed"] == 0, r
assert r.get("cache"), "cached server reported no cache block: %s" % r
assert r["cache"]["hit_rate"] >= 0.5, "Zipf(1.1) hit rate %.3f < 0.5" % r["cache"]["hit_rate"]
'
    echo "cached loadgen smoke ok (hit rate >= 50%)" >&2
    exit 0
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "running: go test -bench '$PATTERN' -benchmem -benchtime $BENCHTIME -count $COUNT ." >&2
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$RAW" >&2

# Reduce repeated -count runs to the median ns/op (allocs are deterministic).
go_version="$(go version | awk '{print $3}')"
awk -v out="$OUT" -v gover="$go_version" -v benchtime="$BENCHTIME" -v count="$COUNT" -v gomp="$GOMP" '
/^Benchmark/ {
    name = $1
    if (gomp != 1) sub("-" gomp "$", "", name)   # strip the -GOMAXPROCS suffix (absent when GOMAXPROCS=1)
    ns[name] = ns[name] " " $3
    bytes[name] = $5
    allocs[name] = $7
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
function median(list,   m, arr, i, j, tmp) {
    m = split(list, arr, " ")
    for (i = 2; i <= m; i++)
        for (j = i; j > 1 && arr[j-1] + 0 > arr[j] + 0; j--) {
            tmp = arr[j]; arr[j] = arr[j-1]; arr[j-1] = tmp
        }
    return arr[int((m + 1) / 2)]
}
END {
    printf "{\n  \"meta\": {\"go\": \"%s\", \"benchtime\": \"%s\", \"count\": %s},\n", gover, benchtime, count > out
    printf "  \"benchmarks\": {\n" > out
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            name, median(ns[name]), bytes[name], allocs[name], (i < n ? "," : "") > out
    }
    printf "  }\n}\n" > out
}' "$RAW"

# Persistence leg: gob-vs-compact file size, load time, and post-load
# heap across corpus sizes, merged into the same snapshot.
if [[ "$PERSIST_SIZES" != 0 ]]; then
    PB="$(mktemp)"
    trap 'rm -f "$RAW" "$PB"' EXIT
    echo "running: go run ./cmd/persistbench -sizes $PERSIST_SIZES" >&2
    go run ./cmd/persistbench -sizes "$PERSIST_SIZES" -out "$PB"
    python3 - "$OUT" "$PB" <<'EOF'
import json, sys
out_path, pb_path = sys.argv[1], sys.argv[2]
snap = json.load(open(out_path))
snap["persistence"] = json.load(open(pb_path))["persistence"]
with open(out_path, "w") as f:
    json.dump(snap, f, indent=2)
    f.write("\n")
EOF
fi

# Query-pruning leg: exhaustive vs max-score ns/op and postings scanned
# across corpus sizes, merged into the snapshot. -require-speedup makes
# this the acceptance gate: a pruning regression fails the whole run.
if [[ "$QUERY_SIZES" != 0 ]]; then
    QB="$(mktemp)"
    trap 'rm -f "$RAW" "${PB:-}" "$QB"' EXIT
    echo "running: go run ./cmd/querybench -sizes $QUERY_SIZES -runs $QUERY_RUNS -fleet-docs $FLEET_DOCS -fleet-shards $FLEET_SHARDS -require-speedup" >&2
    go run ./cmd/querybench -sizes "$QUERY_SIZES" -runs "$QUERY_RUNS" \
        -fleet-docs "$FLEET_DOCS" -fleet-shards "$FLEET_SHARDS" -require-speedup -out "$QB"
    python3 - "$OUT" "$QB" <<'EOF'
import json, sys
out_path, qb_path = sys.argv[1], sys.argv[2]
snap = json.load(open(out_path))
qb = json.load(open(qb_path))
snap["query"] = qb["query"]
if "fleet" in qb:
    snap["fleet"] = qb["fleet"]
with open(out_path, "w") as f:
    json.dump(snap, f, indent=2)
    f.write("\n")
EOF
fi

# Open-loop loadgen leg: the same corpus served as three live
# topologies, each driven at a fixed arrival rate; the block records
# P50/P99/P999 and achieved throughput per topology. Single and group
# run the full Related/Add mix; the fleet coordinator is read-only, so
# its run keeps add-frac 0.
if [[ "$LOADGEN_DOCS" != 0 ]]; then
    LG="$(mktemp -d)"
    LG_PIDS=()
    trap 'kill "${LG_PIDS[@]}" 2>/dev/null || true; rm -f "$RAW" "${PB:-}" "${QB:-}"; rm -rf "${LG:-}"' EXIT
    echo "building serve + loadgen for the open-loop leg" >&2
    go build -o "$LG/serve" ./cmd/serve
    go build -o "$LG/loadgen" ./cmd/loadgen
    go build -o "$LG/gencorpus" ./cmd/gencorpus
    go build -o "$LG/intentmatch" ./cmd/intentmatch
    "$LG/gencorpus" -domain tech -n "$LOADGEN_DOCS" -seed 42 >"$LG/corpus.jsonl"

    lg_wait() { # lg_wait <port>
        for i in $(seq 1 150); do
            curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1 && return 0
            sleep 0.3
        done
        echo "loadgen leg: server on port $1 never became healthy" >&2
        return 1
    }
    lg_kill() {
        kill "${LG_PIDS[@]}" 2>/dev/null || true
        wait "${LG_PIDS[@]}" 2>/dev/null || true
        LG_PIDS=()
    }

    # Single unsharded process.
    echo "loadgen: single ($LOADGEN_DOCS docs, $LOADGEN_RATE rps, $LOADGEN_DURATION)" >&2
    "$LG/serve" -addr "127.0.0.1:$LOADGEN_PORT" -corpus "$LG/corpus.jsonl" -seed 42 \
        -trace-rate 0 -trace-slow=-1ms 2>/dev/null &
    LG_PIDS+=($!)
    lg_wait "$LOADGEN_PORT"
    "$LG/loadgen" -target "http://127.0.0.1:$LOADGEN_PORT" -rate "$LOADGEN_RATE" \
        -duration "$LOADGEN_DURATION" -add-frac 0.02 -name single -out "$LG/single.json" >/dev/null
    # Cached-vs-uncached pair on the same process shape: identical
    # Zipf(1.1) schedules (same seed, no adds), with and without the
    # result cache. The python merge below gates on the pair.
    "$LG/loadgen" -target "http://127.0.0.1:$LOADGEN_PORT" -rate "$LOADGEN_RATE" \
        -duration "$LOADGEN_DURATION" -name uncached -out "$LG/uncached.json" >/dev/null
    lg_kill
    echo "loadgen: cached (-cache-entries 4096, same schedule)" >&2
    "$LG/serve" -addr "127.0.0.1:$LOADGEN_PORT" -corpus "$LG/corpus.jsonl" -seed 42 \
        -cache-entries 4096 -trace-rate 0 -trace-slow=-1ms 2>/dev/null &
    LG_PIDS+=($!)
    lg_wait "$LOADGEN_PORT"
    "$LG/loadgen" -target "http://127.0.0.1:$LOADGEN_PORT" -rate "$LOADGEN_RATE" \
        -duration "$LOADGEN_DURATION" -name cached -out "$LG/cached.json" >/dev/null
    lg_kill

    # One process, in-process shard group.
    echo "loadgen: group (-shards $FLEET_SHARDS)" >&2
    "$LG/serve" -addr "127.0.0.1:$LOADGEN_PORT" -corpus "$LG/corpus.jsonl" -seed 42 \
        -shards "$FLEET_SHARDS" -trace-rate 0 -trace-slow=-1ms 2>/dev/null &
    LG_PIDS+=($!)
    lg_wait "$LOADGEN_PORT"
    "$LG/loadgen" -target "http://127.0.0.1:$LOADGEN_PORT" -rate "$LOADGEN_RATE" \
        -duration "$LOADGEN_DURATION" -add-frac 0.02 -name group -out "$LG/group.json" >/dev/null
    lg_kill

    # Networked fleet: shard servers + coordinator, separate processes.
    echo "loadgen: fleet ($FLEET_SHARDS shard servers + coordinator)" >&2
    "$LG/intentmatch" -corpus "$LG/corpus.jsonl" -seed 42 -save-shards "$FLEET_SHARDS" -save "$LG/sharddir" >/dev/null
    printf '{"endpoints":[' >"$LG/topology.json"
    for ((s = 0; s < FLEET_SHARDS; s++)); do
        "$LG/serve" -addr "127.0.0.1:$((LOADGEN_PORT + 1 + s))" -shard-role shard \
            -load "$LG/sharddir" -own "$s" -trace-rate 0 -trace-slow=-1ms 2>/dev/null &
        LG_PIDS+=($!)
        [[ "$s" != 0 ]] && printf ',' >>"$LG/topology.json"
        printf '{"shard":%d,"primary":"http://127.0.0.1:%d"}' "$s" "$((LOADGEN_PORT + 1 + s))" >>"$LG/topology.json"
    done
    printf ']}\n' >>"$LG/topology.json"
    "$LG/serve" -addr "127.0.0.1:$LOADGEN_PORT" -shard-role coordinator -fleet "$LG/topology.json" \
        -trace-rate 0 -trace-slow=-1ms 2>/dev/null &
    LG_PIDS+=($!)
    lg_wait "$LOADGEN_PORT"
    "$LG/loadgen" -target "http://127.0.0.1:$LOADGEN_PORT" -rate "$LOADGEN_RATE" \
        -duration "$LOADGEN_DURATION" -name fleet -out "$LG/fleet.json" >/dev/null
    lg_kill

    python3 - "$OUT" "$LG/single.json" "$LG/group.json" "$LG/fleet.json" "$LG/uncached.json" "$LG/cached.json" <<'EOF'
import json, sys
out_path = sys.argv[1]
snap = json.load(open(out_path))
snap["loadgen"] = {}
for path in sys.argv[2:]:
    rep = json.load(open(path))
    snap["loadgen"][rep["name"]] = rep
with open(out_path, "w") as f:
    json.dump(snap, f, indent=2)
    f.write("\n")

# Acceptance gate on the cached-vs-uncached pair: the cache must turn
# the Zipf(1.1) repeat traffic into a >= 50% hit rate without hurting
# tail latency (10% P99 allowance for scheduling jitter).
cached, uncached = snap["loadgen"]["cached"], snap["loadgen"]["uncached"]
assert cached.get("cache"), "cached run reported no cache block: %s" % cached
hit_rate = cached["cache"]["hit_rate"]
assert hit_rate >= 0.5, "cached hit rate %.3f < 0.5 under Zipf(1.1)" % hit_rate
assert cached["p99_ns"] <= uncached["p99_ns"] * 1.10, (
    "cached P99 %.2fms worse than uncached %.2fms"
    % (cached["p99_ns"] / 1e6, uncached["p99_ns"] / 1e6))
print("cached-vs-uncached gate: hit rate %.1f%%, P99 %.2fms vs %.2fms uncached"
      % (hit_rate * 100, cached["p99_ns"] / 1e6, uncached["p99_ns"] / 1e6),
      file=sys.stderr)
EOF
fi

echo "wrote $OUT" >&2
cat "$OUT"
