#!/usr/bin/env bash
# fuzz.sh — run every native fuzz target for a bounded time.
#
# Usage:
#   scripts/fuzz.sh           # 10s per target (CI smoke)
#   scripts/fuzz.sh 5m        # longer local session
#
# Go runs one -fuzz pattern per package invocation, so targets are
# enumerated explicitly and run sequentially. The checked-in seed
# corpora under testdata/fuzz/ always replay as part of plain
# `go test ./...`; this script does additional coverage-guided input
# generation on top.

set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${1:-10s}"

declare -a TARGETS=(
    "./internal/textproc FuzzTokenize"
    "./internal/textproc FuzzSplitSentences"
    "./internal/textproc FuzzStripHTML"
    "./internal/textproc FuzzDecodeEntity"
    "./internal/pos FuzzTagWords"
    "./internal/secfile FuzzDecode"
    "./internal/secfile FuzzParseStringTable"
    "./internal/index FuzzIndexLoad"
    "./internal/index FuzzGobSnapshot"
)

for entry in "${TARGETS[@]}"; do
    read -r pkg target <<<"$entry"
    echo "=== fuzz $pkg $target ($FUZZTIME)" >&2
    go test "$pkg" -run '^$' -fuzz "^${target}\$" -fuzztime "$FUZZTIME"
done

echo "all $((${#TARGETS[@]})) fuzz targets passed ($FUZZTIME each)" >&2
