#!/usr/bin/env bash
# smoke.sh — end-to-end smoke test of the serving binary: build
# cmd/serve, start it on a synthetic corpus, curl every endpoint, and
# assert status codes and body shapes. CI runs this as its own job; it
# is also the quickest local sanity check after touching the serve
# layer:
#
#   scripts/smoke.sh            # ~15s: build + serve + 12 endpoint probes
#
# Checks JSON bodies with python3 (stdlib only), so the script needs no
# tooling beyond go, curl, and python3.

set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/serve"
LOG="$(mktemp)"

cleanup() {
    [[ -n "${SERVER_PID:-}" ]] && kill "$SERVER_PID" 2>/dev/null || true
    [[ -n "${FLEET_PIDS[*]:-}" ]] && kill "${FLEET_PIDS[@]}" 2>/dev/null || true
    rm -rf "$(dirname "$BIN")" "$LOG" "${REF_DIR:-}"
}
trap cleanup EXIT

echo "== build" >&2
go build -o "$BIN" ./cmd/serve

echo "== start (200 synthetic posts, trace everything)" >&2
"$BIN" -addr "127.0.0.1:$PORT" -domain tech -n 200 -seed 42 -trace-slow 0 2>"$LOG" &
SERVER_PID=$!

for i in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "server died during startup:" >&2; cat "$LOG" >&2; exit 1
    fi
    sleep 0.3
done
curl -sf "$BASE/healthz" >/dev/null || { echo "server never became healthy" >&2; cat "$LOG" >&2; exit 1; }

fail=0
check() { # check <name> <expected-status> <curl args...>
    local name="$1" want="$2"; shift 2
    local got
    got="$(curl -s -o /tmp/smoke_body -w '%{http_code}' "$@")"
    if [[ "$got" != "$want" ]]; then
        echo "FAIL $name: status $got, want $want" >&2
        head -c 400 /tmp/smoke_body >&2; echo >&2
        fail=1
    else
        echo "ok   $name" >&2
    fi
}
json() { # json <name> <python expr over parsed body `b`>
    local name="$1" expr="$2"
    if python3 -c "import json,sys; b=json.load(open('/tmp/smoke_body')); sys.exit(0 if ($expr) else 1)"; then
        echo "ok   $name" >&2
    else
        echo "FAIL $name: assertion '$expr' on:" >&2
        head -c 400 /tmp/smoke_body >&2; echo >&2
        fail=1
    fi
}

check "POST /related" 200 -X POST "$BASE/related" -d '{"doc_id": 3, "k": 5}'
json  "  results present" "b['doc_id'] == 3 and 1 <= len(b['results']) <= 5"
json  "  scores descending" "all(b['results'][i]['score'] >= b['results'][i+1]['score'] for i in range(len(b['results'])-1))"

check "POST /related explain" 200 -X POST "$BASE/related" -d '{"doc_id": 3, "k": 5, "explain": true}'
json  "  explain reconciles" "all(abs(sum(c['score'] for c in r['explain']) - r['score']) < 1e-9 for r in b['results'])"

# Reference /related bodies for the sharded equivalence leg below —
# captured before /add so both topologies answer over the same corpus.
REF_DIR="$(mktemp -d)"
for doc in 3 17 57; do
    curl -s -X POST "$BASE/related" -d "{\"doc_id\": $doc, \"k\": 5}" >"$REF_DIR/related_$doc.json"
done
curl -s -X POST "$BASE/related" -d '{"doc_id": 3, "k": 5, "explain": true}' >"$REF_DIR/explain_3.json"

check "POST /related 404" 404 -X POST "$BASE/related" -d '{"doc_id": 99999}'
check "POST /related 400" 400 -X POST "$BASE/related" -d '{"doc_id": 0, "k": 500}'

check "POST /add" 200 -X POST "$BASE/add" -d '{"text": "My printer shows a paper jam error after the firmware update. How do I clear it?"}'
json  "  new id past corpus" "b['doc_id'] >= 200"

check "GET /stats" 200 "$BASE/stats"
json  "  build phases" "b['num_docs'] >= 200 and b['num_clusters'] > 0 and 'segmentation' in b['phase_ns']"

check "GET /metrics (json)" 200 "$BASE/metrics"
json  "  counters served" "b['counters']['http.related.requests'] >= 4"
json  "  p999 on every histogram" "all('p999' in h for h in list(b['histograms'].values()) + list(b['spans'].values()))"
json  "  quantiles monotone" "all(h['p50'] <= h['p90'] <= h['p99'] <= h['p999'] <= h['max_bound'] for h in b['spans'].values() if h['count'] > 0)"
json  "  slo instruments" "'slo.related.latency' in b['spans'] and 'slo.related.errors' in b['counters'] and 'slo.related.breaches' in b['counters']"

check "GET /metrics (prometheus)" 200 "$BASE/metrics?format=prometheus"
grep -q '^# TYPE http_related_requests_total counter$' /tmp/smoke_body || { echo "FAIL prometheus exposition body" >&2; fail=1; }
grep -q '^runtime_goroutines ' /tmp/smoke_body || { echo "FAIL runtime gauges missing from prometheus body" >&2; fail=1; }

check "GET /metrics (Accept negotiation)" 200 -H 'Accept: text/plain' "$BASE/metrics"
grep -q '^# TYPE ' /tmp/smoke_body || { echo "FAIL Accept: text/plain did not negotiate prometheus" >&2; fail=1; }

check "GET /debug/traces" 200 "$BASE/debug/traces"
json  "  traces captured" "len(b['traces']) >= 5 and all(t['id'] and t['duration_ns'] > 0 for t in b['traces'])"
json  "  trace events monotone" "all(all(e[i]['at_ns'] <= e[i+1]['at_ns'] for i in range(len(e)-1)) for t in b['traces'] for e in [t['events'] or []])"

check "GET /healthz" 200 "$BASE/healthz"
check "GET /debug/pprof/" 200 "$BASE/debug/pprof/"

# The access log must be JSON lines with the trace ids in them.
if python3 - "$LOG" <<'EOF'
import json, sys
recs = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
reqs = [r for r in recs if r.get("msg") == "request"]
assert len(reqs) >= 10, f"only {len(reqs)} access-log records"
related = [r for r in reqs if r.get("endpoint") == "/related" and r.get("status") == 200]
assert related and all("trace_id" in r and "latency_ns" in r and "results" in r for r in related), related[:2]
EOF
then echo "ok   access log" >&2; else echo "FAIL access log:" >&2; tail -5 "$LOG" >&2; fail=1; fi

kill "$SERVER_PID" 2>/dev/null && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# Sharded leg: the same corpus served with -shards 4 must answer
# /related byte-for-byte identically to the unsharded server (the shard
# package's equivalence guarantee, probed end to end), report the shard
# topology in /stats, and accept an /add that lands on one shard.
echo "== start sharded (-shards 4, same corpus)" >&2
"$BIN" -addr "127.0.0.1:$PORT" -domain tech -n 200 -seed 42 -shards 4 -trace-slow 0 2>"$LOG" &
SERVER_PID=$!
for i in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "sharded server died during startup:" >&2; cat "$LOG" >&2; exit 1
    fi
    sleep 0.3
done
curl -sf "$BASE/healthz" >/dev/null || { echo "sharded server never became healthy" >&2; cat "$LOG" >&2; exit 1; }

for doc in 3 17 57; do
    check "POST /related (sharded) doc $doc" 200 -X POST "$BASE/related" -d "{\"doc_id\": $doc, \"k\": 5}"
    if cmp -s /tmp/smoke_body "$REF_DIR/related_$doc.json"; then
        echo "ok   sharded /related doc $doc matches unsharded byte-for-byte" >&2
    else
        echo "FAIL sharded /related doc $doc diverges from unsharded:" >&2
        diff <(head -c 400 "$REF_DIR/related_$doc.json") <(head -c 400 /tmp/smoke_body) >&2 || true
        fail=1
    fi
done
check "POST /related explain (sharded)" 200 -X POST "$BASE/related" -d '{"doc_id": 3, "k": 5, "explain": true}'
if cmp -s /tmp/smoke_body "$REF_DIR/explain_3.json"; then
    echo "ok   sharded explain matches unsharded byte-for-byte" >&2
else
    echo "FAIL sharded explain diverges from unsharded" >&2
    fail=1
fi

check "GET /stats (sharded)" 200 "$BASE/stats"
json  "  shard topology" "b['shards'] == 4 and len(b['shard_docs']) == 4 and sum(b['shard_docs']) == b['num_docs'] == 200"

check "POST /add (sharded)" 200 -X POST "$BASE/add" -d '{"text": "My printer shows a paper jam error after the firmware update. How do I clear it?"}'
json  "  new id past corpus" "b['doc_id'] >= 200"
check "POST /related (post-add)" 200 -X POST "$BASE/related" -d '{"doc_id": 200, "k": 5}'
json  "  added doc retrievable" "b['doc_id'] == 200 and len(b['results']) >= 1"
check "GET /stats (post-add)" 200 "$BASE/stats"
json  "  shard counts grew" "sum(b['shard_docs']) == b['num_docs'] == 201"

check "GET /metrics (sharded)" 200 "$BASE/metrics"
json  "  per-shard counters" "all(('shard.%02d.queries' % s) in b['counters'] for s in range(4))"

kill "$SERVER_PID" 2>/dev/null && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# Cached-serving leg: the same corpus behind -cache-entries and
# admission limits must answer /related byte-for-byte like the default
# server — on the cold pass (a miss that computes) and the warm pass (a
# hit served straight from the cache) — and /stats must expose the
# hygiene blocks with a live hit rate.
echo "== cached serving (-cache-entries 1024 -max-inflight 8 -max-queued 16)" >&2
"$BIN" -addr "127.0.0.1:$PORT" -domain tech -n 200 -seed 42 \
    -cache-entries 1024 -max-inflight 8 -max-queued 16 -trace-slow 0 2>"$LOG" &
SERVER_PID=$!
for i in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "cached server died during startup:" >&2; cat "$LOG" >&2; exit 1
    fi
    sleep 0.3
done
curl -sf "$BASE/healthz" >/dev/null || { echo "cached server never became healthy" >&2; cat "$LOG" >&2; exit 1; }

for pass in cold warm; do
    for doc in 3 17 57; do
        check "POST /related (cached, $pass) doc $doc" 200 -X POST "$BASE/related" -d "{\"doc_id\": $doc, \"k\": 5}"
        if cmp -s /tmp/smoke_body "$REF_DIR/related_$doc.json"; then
            echo "ok   cached ($pass) /related doc $doc matches uncached byte-for-byte" >&2
        else
            echo "FAIL cached ($pass) /related doc $doc diverges from uncached:" >&2
            diff <(head -c 400 "$REF_DIR/related_$doc.json") <(head -c 400 /tmp/smoke_body) >&2 || true
            fail=1
        fi
    done
    check "POST /related explain (cached, $pass)" 200 -X POST "$BASE/related" -d '{"doc_id": 3, "k": 5, "explain": true}'
    if cmp -s /tmp/smoke_body "$REF_DIR/explain_3.json"; then
        echo "ok   cached ($pass) explain matches uncached byte-for-byte" >&2
    else
        echo "FAIL cached ($pass) explain diverges from uncached" >&2
        fail=1
    fi
done

check "GET /stats (cached)" 200 "$BASE/stats"
json  "  cache block with hits" "b['cache']['capacity'] == 1024 and b['cache']['hits'] >= 4 and b['cache']['hit_rate'] > 0"
json  "  admission config" "b['admission']['max_inflight'] == 8 and b['admission']['max_queued'] == 16 and b['admission']['shed'] == 0"
json  "  singleflight block" "'leaders' in b['singleflight'] and 'followers' in b['singleflight']"

kill "$SERVER_PID" 2>/dev/null && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# Shed probe: with -max-inflight 1 and no queue, a burst of concurrent
# expensive queries must produce at least one typed 503 with
# Retry-After — the overload contract clients back off on. The burst
# retries a few times because overlap, while near-certain, is up to the
# scheduler.
echo "== shed probe (-max-inflight 1 -max-queued 0)" >&2
"$BIN" -addr "127.0.0.1:$PORT" -domain tech -n 200 -seed 42 -max-inflight 1 2>"$LOG" &
SERVER_PID=$!
for i in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "shed-probe server died during startup:" >&2; cat "$LOG" >&2; exit 1
    fi
    sleep 0.3
done
SHED_DIR="$(mktemp -d)"
shed_hit=""
for attempt in 1 2 3; do
    rm -f "$SHED_DIR"/*
    CURL_PIDS=()
    for i in $(seq 1 40); do
        curl -s -D "$SHED_DIR/head$i" -o "$SHED_DIR/body$i" -X POST "$BASE/related" \
            -d '{"doc_id": 3, "k": 100, "explain": true}' &
        CURL_PIDS+=($!)
    done
    wait "${CURL_PIDS[@]}" 2>/dev/null || true
    shed_hit="$(grep -l '^HTTP/[0-9.]* 503' "$SHED_DIR"/head* 2>/dev/null | head -1 || true)"
    [[ -n "$shed_hit" ]] && break
done
if [[ -n "$shed_hit" ]]; then
    echo "ok   shed burst produced a 503 (attempt $attempt)" >&2
    if grep -qi '^Retry-After: 1' "$shed_hit"; then
        echo "ok   shed carries Retry-After: 1" >&2
    else
        echo "FAIL shed response missing Retry-After:" >&2; cat "$shed_hit" >&2; fail=1
    fi
    cp "${shed_hit/head/body}" /tmp/smoke_body
    json "  typed overloaded envelope" "b['error']['kind'] == 'overloaded'"
else
    echo "FAIL no 503 in three 40-request bursts against -max-inflight 1" >&2
    fail=1
fi
check "GET /stats (after shed)" 200 "$BASE/stats"
json  "  sheds counted" "b['admission']['shed'] >= 1 and b['admission']['inflight'] == 0"
rm -rf "$SHED_DIR"

kill "$SERVER_PID" 2>/dev/null && wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# Persistence leg: build once offline, save the pipeline in BOTH on-disk
# layouts (compact section format and legacy gob), then serve each file
# with -load. Every /related body must match the build-from-scratch
# references byte for byte — the migration guarantee that a pre-compact
# snapshot and its compact replacement are indistinguishable to clients.
echo "== persistence (save compact + legacy gob, serve both with -load)" >&2
WORK="$(dirname "$BIN")"
go build -o "$WORK/gencorpus" ./cmd/gencorpus
go build -o "$WORK/intentmatch" ./cmd/intentmatch
"$WORK/gencorpus" -domain tech -n 200 -seed 42 >"$WORK/corpus.jsonl"
"$WORK/intentmatch" -corpus "$WORK/corpus.jsonl" -seed 42 -save "$WORK/snap_compact.idx" >/dev/null
"$WORK/intentmatch" -corpus "$WORK/corpus.jsonl" -seed 42 -save "$WORK/snap_gob.idx" -save-format gob >/dev/null

for layout in compact gob; do
    "$BIN" -addr "127.0.0.1:$PORT" -load "$WORK/snap_$layout.idx" -trace-slow 0 2>"$LOG" &
    SERVER_PID=$!
    for i in $(seq 1 50); do
        if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
        if ! kill -0 "$SERVER_PID" 2>/dev/null; then
            echo "server died loading $layout snapshot:" >&2; cat "$LOG" >&2; exit 1
        fi
        sleep 0.3
    done
    curl -sf "$BASE/healthz" >/dev/null || { echo "server never became healthy on $layout snapshot" >&2; cat "$LOG" >&2; exit 1; }
    for doc in 3 17 57; do
        check "POST /related ($layout snapshot) doc $doc" 200 -X POST "$BASE/related" -d "{\"doc_id\": $doc, \"k\": 5}"
        if cmp -s /tmp/smoke_body "$REF_DIR/related_$doc.json"; then
            echo "ok   $layout-loaded /related doc $doc matches built server byte-for-byte" >&2
        else
            echo "FAIL $layout-loaded /related doc $doc diverges from built server:" >&2
            diff <(head -c 400 "$REF_DIR/related_$doc.json") <(head -c 400 /tmp/smoke_body) >&2 || true
            fail=1
        fi
    done
    check "POST /related explain ($layout snapshot)" 200 -X POST "$BASE/related" -d '{"doc_id": 3, "k": 5, "explain": true}'
    if cmp -s /tmp/smoke_body "$REF_DIR/explain_3.json"; then
        echo "ok   $layout-loaded explain matches built server byte-for-byte" >&2
    else
        echo "FAIL $layout-loaded explain diverges from built server" >&2
        fail=1
    fi
    kill "$SERVER_PID" 2>/dev/null && wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
done

# A corrupted snapshot must refuse to serve, with a descriptive error.
head -c 1000 "$WORK/snap_compact.idx" >"$WORK/snap_truncated.idx"
if "$BIN" -addr "127.0.0.1:$PORT" -load "$WORK/snap_truncated.idx" 2>"$LOG"; then
    echo "FAIL serve accepted a truncated snapshot" >&2
    fail=1
elif grep -q "truncated" "$LOG"; then
    echo "ok   truncated snapshot rejected with a descriptive error" >&2
else
    echo "FAIL truncated snapshot error is not descriptive:" >&2; tail -2 "$LOG" >&2
    fail=1
fi

# Networked fleet leg: the same corpus split into a 4-shard directory
# and served as SIX processes — four shard servers, one replica of
# shard 0, and a coordinator. A healthy fleet must answer /related
# byte-for-byte identically to the single-process server; killing one
# shard server must degrade to well-formed partials (partial_results +
# shards_missing) for docs homed elsewhere and a typed 503 for docs
# homed on the dead shard — never a hang, never a silently wrong
# complete answer.
echo "== fleet (4 shard servers + 1 replica + coordinator, separate processes)" >&2
"$WORK/intentmatch" -corpus "$WORK/corpus.jsonl" -seed 42 -save-shards 4 -save "$WORK/sharddir" >/dev/null
FLEET_PIDS=()
SHARD_PORT0=$((PORT+10))
for s in 0 1 2 3; do
    "$BIN" -addr "127.0.0.1:$((SHARD_PORT0+s))" -shard-role shard -load "$WORK/sharddir" -own "$s" 2>"$WORK/shard$s.log" &
    FLEET_PIDS+=($!)
done
"$BIN" -addr "127.0.0.1:$((SHARD_PORT0+4))" -shard-role shard -load "$WORK/sharddir" -own 0 2>"$WORK/replica0.log" &
FLEET_PIDS+=($!)
cat >"$WORK/topology.json" <<EOF
{"endpoints":[
  {"shard":0,"primary":"http://127.0.0.1:$SHARD_PORT0","replicas":["http://127.0.0.1:$((SHARD_PORT0+4))"]},
  {"shard":1,"primary":"http://127.0.0.1:$((SHARD_PORT0+1))"},
  {"shard":2,"primary":"http://127.0.0.1:$((SHARD_PORT0+2))"},
  {"shard":3,"primary":"http://127.0.0.1:$((SHARD_PORT0+3))"}
]}
EOF
COORD="http://127.0.0.1:$((SHARD_PORT0+5))"
"$BIN" -addr "127.0.0.1:$((SHARD_PORT0+5))" -shard-role coordinator -fleet "$WORK/topology.json" -trace-slow 0 2>"$WORK/coord.log" &
FLEET_PIDS+=($!)

# The coordinator only reports healthy once it has bootstrapped meta
# from every shard, so one readiness loop covers the whole fleet.
for i in $(seq 1 100); do
    if curl -sf "$COORD/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "${FLEET_PIDS[5]}" 2>/dev/null; then
        echo "coordinator died during startup:" >&2; cat "$WORK/coord.log" >&2; exit 1
    fi
    sleep 0.3
done
curl -sf "$COORD/healthz" >/dev/null || { echo "fleet never became healthy" >&2; cat "$WORK/coord.log" >&2; exit 1; }

for doc in 3 17 57; do
    check "POST /related (fleet) doc $doc" 200 -X POST "$COORD/related" -d "{\"doc_id\": $doc, \"k\": 5}"
    if cmp -s /tmp/smoke_body "$REF_DIR/related_$doc.json"; then
        echo "ok   fleet /related doc $doc matches single-process byte-for-byte" >&2
    else
        echo "FAIL fleet /related doc $doc diverges from single-process:" >&2
        diff <(head -c 400 "$REF_DIR/related_$doc.json") <(head -c 400 /tmp/smoke_body) >&2 || true
        fail=1
    fi
done
check "POST /related explain (fleet)" 200 -X POST "$COORD/related" -d '{"doc_id": 3, "k": 5, "explain": true}'
if cmp -s /tmp/smoke_body "$REF_DIR/explain_3.json"; then
    echo "ok   fleet explain matches single-process byte-for-byte" >&2
else
    echo "FAIL fleet explain diverges from single-process" >&2
    fail=1
fi

check "GET /stats (fleet)" 200 "$COORD/stats"
json  "  fleet topology" "b['shards'] == 4 and b['num_docs'] == 200 and b['epoch'] > 0"
json  "  shard health ledger" "len(b['shard_health']) == 4 and all(h['consecutive_failures'] == 0 and h['hedge_delay_ns'] > 0 for h in b['shard_health'])"
check "POST /add (fleet read-only)" 501 -X POST "$COORD/add" -d '{"text": "should be refused"}'
json  "  typed read_only error" "b['error']['kind'] == 'read_only'"

# Distributed tracing: the coordinator captures every request
# (-trace-slow 0) and flags its shard RPCs, so its /debug/traces must
# contain stitched remote events, and each shard's own /debug/traces
# must show the shard-local child traces of the same requests.
check "GET /debug/traces (coordinator)" 200 "$COORD/debug/traces"
json  "  stitched remote events" "any(e['name'].startswith('remote.') for t in b['traces'] for e in (t['events'] or []))"
json  "  leg markers with rtt" "any(e['name'] == 'fleet.leg' and any(a['key'] == 'rtt_ns' for a in e.get('attrs', [])) for t in b['traces'] for e in (t['events'] or []))"
json  "  stitched traces monotone" "all(all(e[i]['at_ns'] <= e[i+1]['at_ns'] for i in range(len(e)-1)) for t in b['traces'] for e in [t['events'] or []])"
check "GET /debug/traces (shard 0)" 200 "http://127.0.0.1:$SHARD_PORT0/debug/traces"
json  "  shard-side child traces" "any(e['name'] == 'host.recv' for t in b['traces'] for e in (t['events'] or []))"
check "GET /metrics (shard 0, prometheus)" 200 "http://127.0.0.1:$SHARD_PORT0/metrics?format=prometheus"
grep -q '^runtime_goroutines ' /tmp/smoke_body || { echo "FAIL runtime gauges missing from shard prometheus body" >&2; fail=1; }

# Federated scrape: the coordinator's ?scope=fleet view must aggregate
# every counter as exactly the sum of the per-shard snapshots it
# carries, with all four shards scraped successfully.
check "GET /metrics?scope=fleet" 200 "$COORD/metrics?scope=fleet"
json  "  all shards scraped" "b['scope'] == 'fleet' and len(b['scrape']) == 4 and all(not s.get('error') for s in b['scrape'])"
json  "  aggregate == sum of shards" "all(v == sum(s['snapshot']['counters'].get(k, 0) for s in b['scrape']) for k, v in b['fleet']['counters'].items())"
json  "  shard probes visible fleet-wide" "b['fleet']['counters'].get('http.shard.probe.requests', 0) >= 4"
check "GET /metrics?scope=fleet (prometheus)" 200 "$COORD/metrics?scope=fleet&format=prometheus"
grep -q '^fleet_shard00_up 1$' /tmp/smoke_body || { echo "FAIL fleet prometheus exposition missing per-shard up markers" >&2; fail=1; }

# Cached coordinator: a second coordinator over the same healthy fleet
# with -cache-entries must answer byte-for-byte like the single-process
# references, cold and warm, and expose the fleet cache epoch in /stats.
echo "== fleet: cached coordinator (-cache-entries 1024)" >&2
CACHED_COORD="http://127.0.0.1:$((SHARD_PORT0+6))"
"$BIN" -addr "127.0.0.1:$((SHARD_PORT0+6))" -shard-role coordinator -fleet "$WORK/topology.json" \
    -cache-entries 1024 -trace-slow 0 2>"$WORK/coordcache.log" &
CACHED_COORD_PID=$!
FLEET_PIDS+=($CACHED_COORD_PID)
for i in $(seq 1 100); do
    if curl -sf "$CACHED_COORD/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$CACHED_COORD_PID" 2>/dev/null; then
        echo "cached coordinator died during startup:" >&2; cat "$WORK/coordcache.log" >&2; exit 1
    fi
    sleep 0.3
done
for pass in cold warm; do
    for doc in 3 17 57; do
        check "POST /related (cached fleet, $pass) doc $doc" 200 -X POST "$CACHED_COORD/related" -d "{\"doc_id\": $doc, \"k\": 5}"
        if cmp -s /tmp/smoke_body "$REF_DIR/related_$doc.json"; then
            echo "ok   cached fleet ($pass) doc $doc matches single-process byte-for-byte" >&2
        else
            echo "FAIL cached fleet ($pass) doc $doc diverges from single-process:" >&2
            diff <(head -c 400 "$REF_DIR/related_$doc.json") <(head -c 400 /tmp/smoke_body) >&2 || true
            fail=1
        fi
    done
done
check "GET /stats (cached coordinator)" 200 "$CACHED_COORD/stats"
json  "  fleet cache block" "b['cache']['hits'] >= 3 and b['cache']['hit_rate'] > 0 and b['cache_epoch'] >= b['epoch']"

# Kill shard 2's only server. Docs homed on shard 2 must fail with a
# typed 503; everything else must degrade to partial_results with
# shards_missing=[2].
echo "== fleet: kill shard 2" >&2
kill "${FLEET_PIDS[2]}" 2>/dev/null; wait "${FLEET_PIDS[2]}" 2>/dev/null || true
partials=0
for doc in 3 17 57 101 140; do
    got="$(curl -s -o /tmp/smoke_body -w '%{http_code}' -X POST "$COORD/related" -d "{\"doc_id\": $doc, \"k\": 5}")"
    case "$got" in
    200)
        json "  doc $doc partial after shard kill" "b['partial_results'] == True and b['shards_missing'] == [2] and len(b['results']) >= 1"
        partials=$((partials+1))
        ;;
    503)
        json "  doc $doc homed on dead shard -> typed 503" "b['error']['kind'] == 'fleet_unavailable'"
        ;;
    *)
        echo "FAIL fleet doc $doc after shard kill: status $got" >&2
        head -c 400 /tmp/smoke_body >&2; echo >&2
        fail=1
        ;;
    esac
done
if [[ "$partials" -ge 1 ]]; then
    echo "ok   fleet degraded to $partials well-formed partials" >&2
else
    echo "FAIL no doc produced a partial result after the shard kill" >&2
    fail=1
fi

# The federated scrape must mark the dead shard explicitly and keep
# aggregating the survivors.
check "GET /metrics?scope=fleet (degraded)" 200 "$COORD/metrics?scope=fleet"
json  "  dead shard marked" "[s['shard'] for s in b['scrape'] if s.get('error')] == [2]"
json  "  survivors still aggregated" "all(v == sum(s['snapshot']['counters'].get(k, 0) for s in b['scrape'] if 'snapshot' in s) for k, v in b['fleet']['counters'].items())"
check "GET /stats (degraded health)" 200 "$COORD/stats"
json  "  failure streak recorded" "any(h['shard'] == 2 and h['consecutive_failures'] >= 1 and h['last_error_kind'] for h in b['shard_health'])"

# The cached coordinator must not serve stale complete answers once it
# observes the degradation: an uncached-shape probe forces the shard
# failure into view (advancing the fleet cache epoch), after which the
# warm key from the healthy pass recomputes — an honest partial or a
# typed 503, never the cached complete body.
probe_status="$(curl -s -o /tmp/smoke_body -w '%{http_code}' -X POST "$CACHED_COORD/related" -d '{"doc_id": 3, "k": 7}')"
echo "ok   cached coordinator degradation probe (status $probe_status)" >&2
got="$(curl -s -o /tmp/smoke_body -w '%{http_code}' -X POST "$CACHED_COORD/related" -d '{"doc_id": 3, "k": 5}')"
case "$got" in
200)
    if cmp -s /tmp/smoke_body "$REF_DIR/related_3.json"; then
        echo "FAIL cached coordinator served a stale complete answer after the shard kill" >&2
        fail=1
    else
        json "  warm key recomputed as partial after epoch advance" "b['partial_results'] == True and 2 in b['shards_missing']"
    fi
    ;;
503)
    json "  warm key recomputed -> typed 503" "b['error']['kind'] == 'fleet_unavailable'"
    ;;
*)
    echo "FAIL cached coordinator degraded warm query: status $got" >&2
    head -c 400 /tmp/smoke_body >&2; echo >&2
    fail=1
    ;;
esac
check "GET /stats (cached coordinator, degraded)" 200 "$CACHED_COORD/stats"
json  "  cache epoch advanced past topology epoch" "b['cache_epoch'] > b['epoch']"

kill "${FLEET_PIDS[@]}" 2>/dev/null || true
wait 2>/dev/null || true
FLEET_PIDS=()

rm -rf "$REF_DIR"

if [[ "$fail" != 0 ]]; then
    echo "smoke test FAILED" >&2
    exit 1
fi
echo "smoke test passed" >&2
