#!/usr/bin/env bash
# coverage.sh — run the test suite with coverage and enforce a floor.
#
# Usage:
#   scripts/coverage.sh                  # gate at the default floor
#   COVER_MIN=90.0 scripts/coverage.sh   # custom floor
#   COVER_OUT=cov.out scripts/coverage.sh
#
# The gate measures the library surface (./internal/... plus the root
# package with the experiment benchmarks) — cmd/ and examples/ are thin
# mains around it and would only dilute the number. The floor is set
# just under the value at the time the gate was introduced (95.1%), so
# a PR that lands meaningfully under-tested code fails CI.

set -euo pipefail
cd "$(dirname "$0")/.."

MIN="${COVER_MIN:-94.0}"
OUT="${COVER_OUT:-coverage.out}"

go test -count=1 -coverprofile="$OUT" ./internal/... .

total="$(go tool cover -func="$OUT" | awk '/^total:/ {sub(/%/, "", $3); print $3}')"
echo "total coverage: ${total}% (floor ${MIN}%)" >&2

awk -v total="$total" -v min="$MIN" 'BEGIN { exit (total + 0 < min + 0) ? 1 : 0 }' || {
    echo "FAIL: coverage ${total}% is below the ${MIN}% floor" >&2
    exit 1
}
echo "coverage gate passed" >&2
