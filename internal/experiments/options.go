// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec 9) on the synthetic corpora: Table 2 (annotator
// agreement), Fig 7 (intention categories), Sec 9.1.2.A (CM vs term
// segmentation), Fig 8 (border mechanisms), Fig 9 (coherence/depth
// functions), Table 3 (segment granularity), Fig 3 (intention centroids),
// Table 4 / Fig 10 (mean precision), Table 5 (test corpus), Fig 11 and
// Table 6 (scaling), plus ablations of the design choices. Each runner
// prints rows shaped like the paper's and returns structured results the
// tests and benchmarks assert on.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/forum"
)

// Options scales the experiments. The defaults keep a full run in the
// minutes range on a laptop; raise Scale (and the Fig 11 sizes) to approach
// the paper's corpus sizes.
type Options struct {
	// Scale is the per-domain corpus size for the effectiveness
	// experiments. 300 when 0.
	Scale int
	// Queries is the number of reference posts evaluated per dataset.
	// 60 when 0.
	Queries int
	// Annotators is the simulated annotator pool size. 12 when 0 (the
	// paper had 30; agreement statistics stabilize well before that).
	Annotators int
	// SegmentationPosts is the per-domain sample for the segmentation
	// study (the paper used 500 HP + 100 TripAdvisor posts). 200 when 0.
	SegmentationPosts int
	// Sizes are the Fig 11 collection sizes. {1000, 10000, 100000} when
	// nil — pass smaller sizes for quick runs.
	Sizes []int
	// Table6Posts is the StackOverflow-scale collection size (paper:
	// 1.5M). 20000 when 0.
	Table6Posts int
	// Repeats is how many independently seeded corpora Table 4 averages
	// over (retrieval effectiveness is the noisiest experiment). 2 when 0.
	Repeats int
	// Seed drives all generation and randomized algorithms.
	Seed int64
	// Workers bounds the offline-build parallelism of every pipeline the
	// experiments construct (core.Config.Workers). 0 uses GOMAXPROCS.
	// Results are identical for any worker count.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 300
	}
	if o.Queries <= 0 {
		o.Queries = 60
	}
	if o.Annotators <= 0 {
		o.Annotators = 12
	}
	if o.SegmentationPosts <= 0 {
		o.SegmentationPosts = 200
	}
	if o.Sizes == nil {
		o.Sizes = []int{1000, 10000, 100000}
	}
	if o.Table6Posts <= 0 {
		o.Table6Posts = 20000
	}
	if o.Repeats <= 0 {
		o.Repeats = 2
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// segmentationDomains are the two datasets of the paper's user study.
var segmentationDomains = []forum.Domain{forum.TechSupport, forum.Travel}

// allDomains are the three evaluation datasets of Table 4.
var allDomains = []forum.Domain{forum.TechSupport, forum.Travel, forum.Programming}

// table renders rows as a fixed-width text table.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", x) }
