package experiments

import (
	"strings"
	"testing"

	"repro/internal/forum"
)

// quickOpt keeps experiment tests fast while still exercising every code
// path end to end.
var quickOpt = Options{
	Scale:             150,
	Queries:           30,
	Annotators:        6,
	SegmentationPosts: 40,
	Sizes:             []int{60, 120},
	Table6Posts:       120,
	Seed:              7,
}

func TestTable2AgreementBands(t *testing.T) {
	out, results := Table2(quickOpt)
	if !strings.Contains(out, "±10 chars") {
		t.Error("missing offset rows")
	}
	if len(results) != 2 {
		t.Fatalf("want 2 datasets, got %d", len(results))
	}
	for _, r := range results {
		for i := range r.Offsets {
			if r.Observed[i] < 0.5 || r.Observed[i] > 1 {
				t.Errorf("%v offset %d: observed %.2f outside plausible band",
					r.Domain, r.Offsets[i], r.Observed[i])
			}
			if r.Kappa[i] <= 0 {
				t.Errorf("%v offset %d: kappa %.2f should be positive (agreement above chance)",
					r.Domain, r.Offsets[i], r.Kappa[i])
			}
		}
		// Agreement should not degrade as tolerance loosens (Table 2).
		for i := 1; i < len(r.Observed); i++ {
			if r.Observed[i] < r.Observed[i-1]-1e-9 {
				t.Errorf("%v: observed agreement decreased with looser offset", r.Domain)
			}
		}
	}
}

func TestFig7ListsIntentions(t *testing.T) {
	out := Fig7(quickOpt)
	for _, label := range []string{"help request", "recommendation", "question", "previous efforts"} {
		if !strings.Contains(out, label) {
			t.Errorf("Fig7 missing %q", label)
		}
	}
}

func TestCMvsTermReduction(t *testing.T) {
	out, results := CMvsTerm(quickOpt)
	if !strings.Contains(out, "error reduction") {
		t.Error("missing header")
	}
	for _, r := range results {
		// The paper's claim: CM features reduce error vs term features.
		if r.CMError >= r.TermError {
			t.Errorf("%v: CM error %.3f >= term error %.3f — Sec 9.1.2.A shape not reproduced",
				r.Domain, r.CMError, r.TermError)
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	_, results := Fig8(quickOpt)
	for d, rows := range results {
		byName := map[string]Fig8Row{}
		for _, r := range rows {
			byName[r.Name] = r
		}
		greedy, tile, sbs := byName["Greedy"], byName["Tile"], byName["StepbyStep"]
		// StepbyStep over-segments (Fig 8a) and has the worst error (8c).
		if sbs.AvgBorder < greedy.AvgBorder || sbs.AvgBorder < tile.AvgBorder {
			t.Errorf("%v: StepbyStep should return the most borders", d)
		}
		if greedy.Error >= sbs.Error {
			t.Errorf("%v: Greedy error %.3f should beat StepbyStep %.3f", d, greedy.Error, sbs.Error)
		}
	}
}

func TestFig9ShannonBest(t *testing.T) {
	_, results := Fig9(quickOpt)
	var shannon, worst Fig9Row
	for _, r := range results {
		if r.Name == "Shan.Div." {
			shannon = r
		}
		if r.AvgErrorChange > worst.AvgErrorChange {
			worst = r
		}
	}
	if shannon.Name == "" {
		t.Fatal("Shannon row missing")
	}
	// Fig 9: Shannon reduces error on average.
	if shannon.AvgErrorChange >= 0 {
		t.Errorf("Shannon avg error change %.3f, want negative (reduction)", shannon.AvgErrorChange)
	}
	if shannon.Decrease < 0.4 {
		t.Errorf("Shannon improved only %.0f%% of posts", shannon.Decrease*100)
	}
}

func TestTable3Distributions(t *testing.T) {
	out, dists := Table3(quickOpt)
	if !strings.Contains(out, "granularity") {
		t.Error("missing header")
	}
	for d, pair := range dists {
		for phase, dist := range pair {
			var sum float64
			for _, v := range dist {
				sum += v
			}
			if sum < 99.5 || sum > 100.5 {
				t.Errorf("%v phase %d: distribution sums to %.1f", d, phase, sum)
			}
		}
		// Refinement never increases the share of 5+-segment posts.
		if pair[1]["5-8"] > pair[0]["5-8"]+1e-9 {
			t.Errorf("%v: refinement increased 5-8 bucket", d)
		}
	}
}

func TestFig3Renders(t *testing.T) {
	out := Fig3(quickOpt)
	if !strings.Contains(out, "CM_tense") || !strings.Contains(out, "I0") {
		t.Errorf("Fig3 output malformed:\n%s", out)
	}
}

func TestTable4HeadlineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := quickOpt
	opt.Scale = 300
	opt.Queries = 60
	_, results := Table4(opt)
	if len(results) != 3 {
		t.Fatalf("want 3 datasets")
	}
	for _, r := range results {
		intent := r.Precision["IntentIntent-MR"]
		full := r.Precision["FullText"]
		ldaP := r.Precision["LDA"]
		if intent <= full {
			t.Errorf("%v: IntentIntent %.3f should beat FullText %.3f (Table 4 headline)",
				r.Domain, intent, full)
		}
		if ldaP >= intent {
			t.Errorf("%v: LDA %.3f should trail IntentIntent %.3f", r.Domain, ldaP, intent)
		}
		if r.Gain <= 0 {
			t.Errorf("%v: gain %.3f should be positive", r.Domain, r.Gain)
		}
	}
}

func TestTable5AndFig10Render(t *testing.T) {
	if !strings.Contains(Table5(quickOpt), "Post pairs") {
		t.Error("Table5 malformed")
	}
	out := Fig10(quickOpt)
	if !strings.Contains(out, "0 rel") || !strings.Contains(out, "IntentIntent-MR") {
		t.Error("Fig10 malformed")
	}
}

func TestFig11Scaling(t *testing.T) {
	_, results := Fig11(quickOpt)
	if len(results) != 2 {
		t.Fatalf("want 2 sizes")
	}
	for _, r := range results {
		for m, d := range r.Retrieval {
			if d <= 0 {
				t.Errorf("size %d method %s: nonpositive retrieval time", r.Size, m)
			}
		}
	}
	// Segmentation time grows with collection size for the intent method.
	if results[1].Segmentation["IntentIntent-MR"] <= results[0].Segmentation["IntentIntent-MR"]/4 {
		t.Error("segmentation time did not grow with collection size")
	}
}

func TestTable6(t *testing.T) {
	out, res := Table6(quickOpt)
	if !strings.Contains(out, "Avg segmentation") {
		t.Error("Table6 malformed")
	}
	if res.AvgSegmentation <= 0 || res.AvgRetrieval <= 0 || res.TotalGrouping <= 0 {
		t.Error("Table6 timings not populated")
	}
	if res.Clusters < 1 || res.Segments < res.Posts {
		t.Errorf("Table6 stats implausible: %+v", res)
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("nope", quickOpt); err == nil {
		t.Error("unknown experiment should error")
	}
	out, err := Run("fig7", quickOpt)
	if err != nil || !strings.Contains(out, "Fig 7") {
		t.Errorf("Run(fig7) failed: %v", err)
	}
	if len(Names()) < 13 {
		t.Error("Names incomplete")
	}
}

func TestAblationsRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := quickOpt
	opt.Queries = 15
	out, rows := Ablations(opt)
	if !strings.Contains(out, "DBSCAN grouping") {
		t.Error("ablation output malformed")
	}
	for _, r := range rows {
		for _, d := range []forum.Domain{forum.TechSupport, forum.Travel, forum.Programming} {
			if p := r.Precision[d]; p < 0 || p > 1 {
				t.Errorf("%s on %v: precision %.3f out of range", r.Name, d, p)
			}
		}
	}
}

func TestOptionsWithDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 300 || o.Queries != 60 || o.Annotators != 12 ||
		o.SegmentationPosts != 200 || o.Table6Posts != 20000 ||
		o.Repeats != 2 || o.Seed != 42 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if len(o.Sizes) != 3 || o.Sizes[2] != 100000 {
		t.Errorf("default sizes wrong: %v", o.Sizes)
	}
	// Explicit values survive.
	o = Options{Scale: 10, Queries: 5, Annotators: 3, SegmentationPosts: 7,
		Sizes: []int{2}, Table6Posts: 9, Repeats: 1, Seed: 1}.withDefaults()
	if o.Scale != 10 || o.Sizes[0] != 2 || o.Repeats != 1 {
		t.Errorf("explicit options overridden: %+v", o)
	}
}

func TestRunAllSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := quickOpt
	opt.Scale = 60
	opt.Queries = 8
	opt.SegmentationPosts = 15
	opt.Sizes = []int{40}
	opt.Table6Posts = 40
	opt.Repeats = 1
	out, err := Run("all", opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, section := range []string{"Table 2", "Fig 7", "Fig 8", "Fig 9",
		"Table 3", "Fig 3", "Table 4", "Fig 10", "Table 5", "Fig 11",
		"Table 6", "Ablations"} {
		if !strings.Contains(out, section) {
			t.Errorf("All() output missing section %q", section)
		}
	}
}
