package experiments

import (
	"fmt"
	"strings"

	"repro/internal/eval"
	"repro/internal/forum"
	"repro/internal/segment"
)

// studySample bundles one domain's segmentation-study data: generated
// posts, their prepared docs, and simulated annotations.
type studySample struct {
	domain forum.Domain
	posts  []forum.Post
	docs   []*segment.Doc
	anns   []forum.Annotations
}

func newStudySample(d forum.Domain, n, annotators int, seed int64) studySample {
	s := studySample{domain: d}
	s.posts = forum.Generate(forum.Config{Domain: d, NumPosts: n, Seed: seed})
	cfg := forum.AnnotatorConfig{NumAnnotators: annotators, Seed: seed + 1}
	for _, p := range s.posts {
		s.docs = append(s.docs, segment.NewDoc(p.Text))
		s.anns = append(s.anns, forum.Simulate(p, cfg))
	}
	return s
}

// Table2Result holds one dataset's agreement numbers at each offset.
type Table2Result struct {
	Domain   forum.Domain
	Offsets  []int
	Kappa    []float64
	Observed []float64
}

// Table2 reproduces the segmentation user-agreement study: Fleiss' kappa
// and observed agreement percentage at ±10/25/40 character offsets for the
// tech-support and travel datasets.
func Table2(opt Options) (string, []Table2Result) {
	opt = opt.withDefaults()
	offsets := []int{10, 25, 40}
	var results []Table2Result
	var rows [][]string
	for _, d := range segmentationDomains {
		n := opt.SegmentationPosts
		if d == forum.Travel {
			n = max(20, opt.SegmentationPosts/5) // the paper sampled 500 HP vs 100 Trip posts
		}
		s := newStudySample(d, n, opt.Annotators, opt.Seed)
		res := Table2Result{Domain: d, Offsets: offsets}
		var agDocs []eval.AgreementDoc
		for i := range s.posts {
			agDocs = append(agDocs, eval.AgreementDoc{
				Candidates:  s.anns[i].SentenceStarts[1:], // interior boundaries
				Annotations: s.anns[i].CharBorders,
			})
		}
		for _, off := range offsets {
			kappa, obs := eval.MultiDocBorderAgreement(agDocs, off)
			res.Kappa = append(res.Kappa, kappa)
			res.Observed = append(res.Observed, obs)
		}
		results = append(results, res)
	}
	for i, off := range offsets {
		row := []string{fmt.Sprintf("±%d chars", off)}
		for _, r := range results {
			row = append(row, fmt.Sprintf("%.2f / %.0f%%", r.Kappa[i], r.Observed[i]*100))
		}
		rows = append(rows, row)
	}
	header := []string{"Offset"}
	for _, r := range results {
		header = append(header, r.Domain.String()+" (kappa/agreement)")
	}
	out := "Table 2: user agreement on the segmentation task\n" + table(header, rows)
	return out, results
}

// Fig7 lists the intention categories each domain's posts are generated
// from — the ground-truth counterpart of the annotators' label clusters.
func Fig7(opt Options) string {
	var b strings.Builder
	b.WriteString("Fig 7: intention categories per domain\n")
	for _, d := range allDomains {
		fmt.Fprintf(&b, "%s:\n", d)
		for _, label := range forum.Intentions(d) {
			fmt.Fprintf(&b, "  - %s\n", label)
		}
	}
	return b.String()
}

// CMvsTermResult holds the Sec 9.1.2.A comparison for one dataset.
type CMvsTermResult struct {
	Domain    forum.Domain
	TermError float64 // Hearst TextTiling on term vectors
	CMError   float64 // Tile on CM features
	Reduction float64 // fractional error reduction
}

// CMvsTerm reproduces Sec 9.1.2.A: Hearst's term-based TextTiling vs the
// Tile mechanism on CM features, scored by multWinDiff against the
// simulated annotations. The paper reports 18% (HP) and 26% (TripAdvisor)
// error reduction from the CM representation.
func CMvsTerm(opt Options) (string, []CMvsTermResult) {
	opt = opt.withDefaults()
	var results []CMvsTermResult
	var rows [][]string
	for _, d := range segmentationDomains {
		s := newStudySample(d, opt.SegmentationPosts, opt.Annotators, opt.Seed)
		term := meanError(s, segment.TextTiling{})
		cmErr := meanError(s, segment.Tile{})
		red := 0.0
		if term > 0 {
			red = (term - cmErr) / term
		}
		results = append(results, CMvsTermResult{Domain: d, TermError: term, CMError: cmErr, Reduction: red})
		rows = append(rows, []string{d.String(), f3(term), f3(cmErr), pct(red * 100)})
	}
	out := "Sec 9.1.2.A: intention representation — CM vs term features (multWinDiff)\n" +
		table([]string{"Dataset", "Hearst (terms)", "Tile (CM)", "error reduction"}, rows)
	return out, results
}

// meanError computes the mean multWinDiff of a strategy against the
// simulated annotations over a study sample.
func meanError(s studySample, st segment.Strategy) float64 {
	var sum float64
	for i := range s.posts {
		hyp := st.Segment(s.docs[i]).Borders
		sum += eval.MultWinDiff(s.anns[i].SentenceBorders, hyp, s.docs[i].Len())
	}
	return sum / float64(len(s.posts))
}

// Fig8Row is one border-selection mechanism's summary.
type Fig8Row struct {
	Name      string
	AvgBorder float64
	Coherence float64
	Error     float64
}

// Fig8 reproduces the border-selection comparison: average border count,
// average segment coherence, and multWinDiff for Tile, Greedy, StepbyStep,
// and the simulated human annotators.
func Fig8(opt Options) (string, map[forum.Domain][]Fig8Row) {
	opt = opt.withDefaults()
	strategies := []segment.Strategy{segment.Tile{}, segment.Greedy{}, segment.StepbyStep{}}
	results := make(map[forum.Domain][]Fig8Row)
	var b strings.Builder
	b.WriteString("Fig 8: border selection mechanisms\n")
	for _, d := range segmentationDomains {
		s := newStudySample(d, opt.SegmentationPosts, opt.Annotators, opt.Seed)
		var rows [][]string
		for _, st := range strategies {
			row := Fig8Row{Name: st.Name()}
			for i := range s.posts {
				seg := st.Segment(s.docs[i])
				row.AvgBorder += float64(len(seg.Borders))
				row.Coherence += meanSegCoherence(s.docs[i], seg)
			}
			row.AvgBorder /= float64(len(s.posts))
			row.Coherence /= float64(len(s.posts))
			row.Error = meanError(s, st)
			results[d] = append(results[d], row)
			rows = append(rows, []string{row.Name, f2(row.AvgBorder), f3(row.Coherence), f3(row.Error)})
		}
		// Human row: annotator averages; error is leave-one-out agreement.
		human := Fig8Row{Name: "Human"}
		for i := range s.posts {
			ann := s.anns[i]
			var borders float64
			for _, sb := range ann.SentenceBorders {
				borders += float64(len(sb))
				human.Coherence += meanSegCoherence(s.docs[i], segment.NewSegmentation(sb, s.docs[i].Len()))
			}
			human.AvgBorder += borders / float64(len(ann.SentenceBorders))
			// Leave-one-out error of the first annotator against the rest.
			human.Error += eval.MultWinDiff(ann.SentenceBorders[1:], ann.SentenceBorders[0], s.docs[i].Len())
		}
		nAnn := float64(opt.Annotators)
		human.AvgBorder /= float64(len(s.posts))
		human.Coherence /= float64(len(s.posts)) * nAnn
		human.Error /= float64(len(s.posts))
		results[d] = append(results[d], human)
		rows = append(rows, []string{human.Name, f2(human.AvgBorder), f3(human.Coherence), f3(human.Error)})

		fmt.Fprintf(&b, "%s:\n%s", d, table([]string{"Mechanism", "avg borders", "avg coherence", "multWinDiff"}, rows))
	}
	return b.String(), results
}

// meanSegCoherence averages the Shannon coherence of a segmentation's
// segments.
func meanSegCoherence(d *segment.Doc, s segment.Segmentation) float64 {
	segs := s.Segments()
	if len(segs) == 0 {
		return 0
	}
	sf := segment.Shannon{}
	var sum float64
	for _, r := range segs {
		sum += sf.SegCoherence(d, r[0], r[1])
	}
	return sum / float64(len(segs))
}

// Fig9Row summarizes one coherence/depth function against the term-based
// baseline.
type Fig9Row struct {
	Name                         string
	Decrease, NoChange, Increase float64 // fraction of posts
	AvgErrorChange               float64 // negative = error reduction
}

// Fig9 reproduces the coherence/depth function comparison: each function
// drives the Tile mechanism, and per-post multWinDiff is compared against
// the Hearst term-based baseline, reporting the share of posts whose error
// decreased / stayed / increased and the mean error change. The paper
// finds Shannon's diversity the strongest (−0.24 average).
func Fig9(opt Options) (string, []Fig9Row) {
	opt = opt.withDefaults()
	funcs := []segment.ScoreFunc{
		segment.Cosine, segment.Euclidean, segment.Manhattan,
		segment.Richness{}, segment.Shannon{},
	}
	// Pool both study datasets, like the paper's combined table.
	var samples []studySample
	for _, d := range segmentationDomains {
		samples = append(samples, newStudySample(d, opt.SegmentationPosts, opt.Annotators, opt.Seed))
	}
	baseline := map[*segment.Doc]float64{}
	for _, s := range samples {
		for i := range s.posts {
			hyp := (segment.TextTiling{}).Segment(s.docs[i]).Borders
			baseline[s.docs[i]] = eval.MultWinDiff(s.anns[i].SentenceBorders, hyp, s.docs[i].Len())
		}
	}
	var results []Fig9Row
	var rows [][]string
	for _, f := range funcs {
		row := Fig9Row{Name: f.Name()}
		var n float64
		for _, s := range samples {
			st := segment.Tile{Score: f}
			for i := range s.posts {
				hyp := st.Segment(s.docs[i]).Borders
				err := eval.MultWinDiff(s.anns[i].SentenceBorders, hyp, s.docs[i].Len())
				base := baseline[s.docs[i]]
				diff := err - base
				switch {
				case diff < -1e-9:
					row.Decrease++
				case diff > 1e-9:
					row.Increase++
				default:
					row.NoChange++
				}
				row.AvgErrorChange += diff
				n++
			}
		}
		row.Decrease /= n
		row.NoChange /= n
		row.Increase /= n
		row.AvgErrorChange /= n
		results = append(results, row)
		rows = append(rows, []string{row.Name, pct(row.Decrease * 100), pct(row.NoChange * 100),
			pct(row.Increase * 100), fmt.Sprintf("%+.3f", row.AvgErrorChange)})
	}
	out := "Fig 9: coherence/depth functions vs term-based baseline (multWinDiff)\n" +
		table([]string{"Function", "posts improved", "no change", "posts worse", "avg error change"}, rows)
	return out, results
}
