package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/forum"
	"repro/internal/lda"
)

// dataset bundles a generated domain corpus with its built pipelines.
type dataset struct {
	domain forum.Domain
	posts  []forum.Post
	texts  []string
}

func newDataset(d forum.Domain, n int, seed int64) dataset {
	ds := dataset{domain: d}
	ds.posts = forum.Generate(forum.Config{Domain: d, NumPosts: n, Seed: seed})
	for _, p := range ds.posts {
		ds.texts = append(ds.texts, p.Text)
	}
	return ds
}

func (ds dataset) build(m core.Method, seed int64, workers int) (*core.Pipeline, error) {
	cfg := core.Config{Method: m, Seed: seed, Workers: workers}
	if m == core.LDA {
		cfg.LDA = lda.Config{K: 8, Iterations: 60, Seed: seed}
	}
	return core.Build(ds.texts, cfg)
}

// Table3 reproduces the segment-granularity table: percentage of posts
// with 1..5+ segments before grouping and after refinement, per dataset.
func Table3(opt Options) (string, map[forum.Domain][2]map[string]float64) {
	opt = opt.withDefaults()
	results := make(map[forum.Domain][2]map[string]float64)
	var b strings.Builder
	b.WriteString("Table 3: segment granularity — percentage of posts\n")
	header := []string{"Segments"}
	for _, d := range allDomains {
		header = append(header, d.String()+" before", d.String()+" after")
	}
	dists := map[forum.Domain][2]map[string]float64{}
	for _, d := range allDomains {
		ds := newDataset(d, opt.Scale, opt.Seed)
		p, err := ds.build(core.IntentIntentMR, opt.Seed, opt.Workers)
		if err != nil {
			return err.Error(), nil
		}
		before, after := p.SegmentCounts()
		dists[d] = [2]map[string]float64{
			core.GranularityDistribution(before),
			core.GranularityDistribution(after),
		}
	}
	var rows [][]string
	for _, bucket := range core.GranularityBuckets() {
		row := []string{bucket}
		for _, d := range allDomains {
			row = append(row, pct(dists[d][0][bucket]), pct(dists[d][1][bucket]))
		}
		rows = append(rows, row)
	}
	results = dists
	b.WriteString(table(header, rows))
	return b.String(), results
}

// Fig3 prints the intention-cluster centroid matrix of the tech-support
// corpus: one row per segment-vector element, one column per cluster.
func Fig3(opt Options) string {
	opt = opt.withDefaults()
	ds := newDataset(forum.TechSupport, opt.Scale, opt.Seed)
	p, err := ds.build(core.IntentIntentMR, opt.Seed, opt.Workers)
	if err != nil {
		return err.Error()
	}
	cents := p.Centroids()
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3: intention cluster centroids (%d clusters)\n", len(cents))
	header := []string{"CM - Feature"}
	for c := range cents {
		header = append(header, fmt.Sprintf("I%d", c))
	}
	var rows [][]string
	dim := 0
	if len(cents) > 0 {
		dim = len(cents[0])
	}
	for f := 0; f < dim; f++ {
		row := []string{cm.VectorFeatureName(f)}
		for c := range cents {
			row = append(row, f2(cents[c][f]))
		}
		rows = append(rows, row)
	}
	b.WriteString(table(header, rows))
	return b.String()
}

// Table4Result holds one dataset's mean-precision row.
type Table4Result struct {
	Domain    forum.Domain
	Precision map[string]float64 // method name → mean precision
	Gain      float64            // IntentIntent-MR − FullText (absolute points)
	ZeroFrac  map[string]float64 // method name → fraction of zero-precision lists
	Queries   int
}

// table4Methods are the Table 4 columns in paper order.
var table4Methods = []core.Method{
	core.LDA, core.FullText, core.ContentMR, core.SentIntentMR, core.IntentIntentMR,
}

// Table4 reproduces the headline effectiveness comparison: mean precision
// of the five methods on the three datasets, with the IntentIntent-MR gain
// over FullText. Relevance comes from the generator's ground truth (same
// topic and same request variant).
func Table4(opt Options) (string, []Table4Result) {
	opt = opt.withDefaults()
	var results []Table4Result
	var rows [][]string
	for _, d := range allDomains {
		res := Table4Result{Domain: d, Precision: map[string]float64{},
			ZeroFrac: map[string]float64{}, Queries: opt.Queries * opt.Repeats}
		for rep := 0; rep < opt.Repeats; rep++ {
			seed := opt.Seed + int64(rep)*101
			ds := newDataset(d, opt.Scale, seed)
			for _, m := range table4Methods {
				p, err := ds.build(m, seed, opt.Workers)
				if err != nil {
					return err.Error(), nil
				}
				var perQuery []float64
				for q := 0; q < opt.Queries && q < len(ds.posts); q++ {
					rel := forum.RelevantSet(ds.posts, ds.posts[q])
					ids := core.TopIDs(p.Related(q, 5))
					perQuery = append(perQuery, eval.Precision(ids, rel))
				}
				res.Precision[m.String()] += eval.MeanPrecision(perQuery) / float64(opt.Repeats)
				res.ZeroFrac[m.String()] += eval.ZeroFraction(perQuery) / float64(opt.Repeats)
			}
		}
		res.Gain = res.Precision[core.IntentIntentMR.String()] - res.Precision[core.FullText.String()]
		results = append(results, res)
		row := []string{d.String()}
		for _, m := range table4Methods {
			row = append(row, f3(res.Precision[m.String()]))
		}
		row = append(row, fmt.Sprintf("%+.1f%%", res.Gain*100))
		rows = append(rows, row)
	}
	header := []string{"Dataset"}
	for _, m := range table4Methods {
		header = append(header, m.String())
	}
	header = append(header, "Gain")
	out := "Table 4: comparison of methods — mean precision (top-5, generator relevance)\n" +
		table(header, rows)
	return out, results
}

// Fig10 summarizes the distribution of per-query relevant counts in the
// top-5 lists for each method — the paper's "lists with the largest number
// of related posts" comparison.
func Fig10(opt Options) string {
	opt = opt.withDefaults()
	var b strings.Builder
	b.WriteString("Fig 10: distribution of queries by #relevant in top-5\n")
	for _, d := range allDomains {
		ds := newDataset(d, opt.Scale, opt.Seed)
		var rows [][]string
		for _, m := range []core.Method{core.FullText, core.IntentIntentMR} {
			p, err := ds.build(m, opt.Seed, opt.Workers)
			if err != nil {
				return err.Error()
			}
			hist := make([]int, 6)
			for q := 0; q < opt.Queries && q < len(ds.posts); q++ {
				rel := forum.RelevantSet(ds.posts, ds.posts[q])
				hits := 0
				for _, id := range core.TopIDs(p.Related(q, 5)) {
					if rel[id] {
						hits++
					}
				}
				hist[hits]++
			}
			row := []string{m.String()}
			for _, h := range hist {
				row = append(row, fmt.Sprintf("%d", h))
			}
			rows = append(rows, row)
		}
		fmt.Fprintf(&b, "%s:\n%s", d,
			table([]string{"Method", "0 rel", "1", "2", "3", "4", "5 rel"}, rows))
	}
	return b.String()
}

// Table5 describes the derived evaluation corpus the way the paper's
// Table 5 does: methods compared, post pairs judged, total judgments, and
// simulated rater agreement (three raters per pair, each flipping the
// ground-truth judgment with 5% probability).
func Table5(opt Options) string {
	opt = opt.withDefaults()
	var rows [][]string
	for _, d := range allDomains {
		methods := len(table4Methods)
		if d == forum.Programming {
			methods = 2 // the paper judged only FullText + IntentIntent on StackOverflow
		}
		pairs := opt.Queries * 5 * methods
		raters := 3
		judgments := pairs * raters
		// Simulated rater pool: agreement over pairs with 5% flip noise.
		rng := rand.New(rand.NewSource(opt.Seed + int64(d)))
		var counts [][]int
		for i := 0; i < pairs; i++ {
			truth := rng.Float64() < 0.4
			yes := 0
			for r := 0; r < raters; r++ {
				v := truth
				if rng.Float64() < 0.05 {
					v = !v
				}
				if v {
					yes++
				}
			}
			counts = append(counts, []int{yes, raters - yes})
		}
		kappa, _ := eval.FleissKappa(counts)
		rows = append(rows, []string{
			d.String(), fmt.Sprintf("%d", methods), fmt.Sprintf("%d", pairs),
			fmt.Sprintf("%d", judgments), f2(kappa),
		})
	}
	return "Table 5: derived evaluation corpus\n" +
		table([]string{"Dataset", "Methods", "Post pairs", "Evaluations", "Rater agreement"}, rows)
}
