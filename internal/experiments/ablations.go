package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/forum"
	"repro/internal/match"
	"repro/internal/segment"
)

// AblationRow is one configuration's mean precision on one dataset.
type AblationRow struct {
	Name      string
	Precision map[forum.Domain]float64
}

// Ablations sweeps the design choices DESIGN.md calls out beyond the
// paper's own comparisons: grouping algorithm (k-means vs DBSCAN), vector
// representation (Eq 5 half vs full Eq 5+6), the n = NFactor·k heuristic,
// per-list score normalization, and the border-selection strategy feeding
// the pipeline.
func Ablations(opt Options) (string, []AblationRow) {
	opt = opt.withDefaults()
	configs := []struct {
		name string
		mr   match.MRConfig
	}{
		{"default (kmeans-6, Eq5, n=2k)", match.MRConfig{}},
		{"DBSCAN grouping (paper)", match.MRConfig{Grouper: match.GroupDBSCAN}},
		{"full Eq5+6 vectors", match.MRConfig{FullVectors: true}},
		{"kmeans k=4", match.MRConfig{KMeansK: 4}},
		{"kmeans k=10", match.MRConfig{KMeansK: 10}},
		{"n = 1k", match.MRConfig{NFactor: 1}},
		{"n = 4k", match.MRConfig{NFactor: 4}},
		{"normalized lists", match.MRConfig{NormalizeLists: true}},
		{"Tile borders", match.MRConfig{Strategy: segment.Tile{}}},
		{"TopDown borders", match.MRConfig{Strategy: segment.TopDown{}}},
		{"plain Greedy (no CM voting)", match.MRConfig{Strategy: segment.Greedy{Plain: true}}},
		{"F-stat border score (Tile)", match.MRConfig{Strategy: segment.Tile{Score: segment.FStat{}}}},
		{"threshold selection (0.5)", match.MRConfig{ScoreThreshold: 0.5}},
	}
	rows := make([]AblationRow, len(configs))
	for i, c := range configs {
		rows[i] = AblationRow{Name: c.name, Precision: map[forum.Domain]float64{}}
	}
	for _, d := range allDomains {
		ds := newDataset(d, opt.Scale, opt.Seed)
		var docs []*segment.Doc
		for _, t := range ds.texts {
			docs = append(docs, segment.NewDoc(t))
		}
		for i, c := range configs {
			mrCfg := c.mr
			mrCfg.Seed = opt.Seed
			mr := match.NewMR(c.name, docs, mrCfg)
			var perQuery []float64
			for q := 0; q < opt.Queries && q < len(ds.posts); q++ {
				rel := forum.RelevantSet(ds.posts, ds.posts[q])
				ids := core.TopIDs(mr.Match(q, 5))
				perQuery = append(perQuery, eval.Precision(ids, rel))
			}
			rows[i].Precision[d] = eval.MeanPrecision(perQuery)
		}
	}
	var tblRows [][]string
	for _, r := range rows {
		row := []string{r.Name}
		for _, d := range allDomains {
			row = append(row, f3(r.Precision[d]))
		}
		tblRows = append(tblRows, row)
	}
	header := []string{"Configuration"}
	for _, d := range allDomains {
		header = append(header, d.String())
	}
	out := "Ablations: mean precision under design variations\n" + table(header, tblRows)
	return out, rows
}

// All runs every experiment and concatenates the reports in paper order.
func All(opt Options) string {
	var b strings.Builder
	sections := []func() string{
		func() string { s, _ := Table2(opt); return s },
		func() string { return Fig7(opt) },
		func() string { s, _ := CMvsTerm(opt); return s },
		func() string { s, _ := Fig8(opt); return s },
		func() string { s, _ := Fig9(opt); return s },
		func() string { s, _ := Table3(opt); return s },
		func() string { return Fig3(opt) },
		func() string { s, _ := Table4(opt); return s },
		func() string { return Fig10(opt) },
		func() string { return Table5(opt) },
		func() string { s, _ := Fig11(opt); return s },
		func() string { s, _ := Table6(opt); return s },
		func() string { s, _ := Ablations(opt); return s },
	}
	for i, run := range sections {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(run())
	}
	return b.String()
}

// Names lists the runnable experiment ids for cmd/experiments.
func Names() []string {
	return []string{"table2", "fig7", "cmvsterm", "fig8", "fig9", "table3",
		"fig3", "table4", "fig10", "table5", "fig11", "table6", "ablations", "all"}
}

// Run executes one experiment by id and returns its report.
func Run(name string, opt Options) (string, error) {
	switch name {
	case "table2":
		s, _ := Table2(opt)
		return s, nil
	case "fig7":
		return Fig7(opt), nil
	case "cmvsterm":
		s, _ := CMvsTerm(opt)
		return s, nil
	case "fig8":
		s, _ := Fig8(opt)
		return s, nil
	case "fig9":
		s, _ := Fig9(opt)
		return s, nil
	case "table3":
		s, _ := Table3(opt)
		return s, nil
	case "fig3":
		return Fig3(opt), nil
	case "table4":
		s, _ := Table4(opt)
		return s, nil
	case "fig10":
		return Fig10(opt), nil
	case "table5":
		return Table5(opt), nil
	case "fig11":
		s, _ := Fig11(opt)
		return s, nil
	case "table6":
		s, _ := Table6(opt)
		return s, nil
	case "ablations":
		s, _ := Ablations(opt)
		return s, nil
	case "all":
		return All(opt), nil
	}
	return "", fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
}
