package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/forum"
	"repro/internal/lda"
)

// Fig11Result holds one collection size's timings.
type Fig11Result struct {
	Size         int
	Segmentation map[string]time.Duration // method → total segmentation time
	Grouping     map[string]time.Duration // method → total grouping time
	Retrieval    map[string]time.Duration // method → avg per-query retrieval
}

// fig11Methods are the methods timed in Fig 11 (the paper's five).
var fig11Methods = []core.Method{
	core.IntentIntentMR, core.SentIntentMR, core.ContentMR, core.FullText, core.LDA,
}

// Fig11 reproduces the execution-time comparison on the tech-support
// corpus at increasing collection sizes: (a) total segmentation time per
// segment-based method, (b) segment-grouping time, and (c) average
// retrieval time per method. The expected shape: IntentIntent segmentation
// costs more than sentence splitting (border selection) while Content's
// term-based pass is cheapest; retrieval stays in the sub-millisecond to
// millisecond range for the indexed methods with LDA slowest (no index).
func Fig11(opt Options) (string, []Fig11Result) {
	opt = opt.withDefaults()
	var results []Fig11Result
	var b strings.Builder
	b.WriteString("Fig 11: execution times (TechSupport corpus)\n")
	const retrievalQueries = 50
	for _, size := range opt.Sizes {
		ds := newDataset(forum.TechSupport, size, opt.Seed)
		res := Fig11Result{
			Size:         size,
			Segmentation: map[string]time.Duration{},
			Grouping:     map[string]time.Duration{},
			Retrieval:    map[string]time.Duration{},
		}
		for _, m := range fig11Methods {
			cfg := core.Config{Method: m, Seed: opt.Seed, Workers: opt.Workers}
			if m == core.LDA {
				// Fig 11(c) times retrieval, not model training; keep the
				// fit short so large sizes stay tractable.
				cfg.LDA = lda.Config{K: 8, Iterations: scaledLDAIters(size)}
			}
			p, err := core.Build(ds.texts, cfg)
			if err != nil {
				return err.Error(), nil
			}
			st := p.Stats()
			res.Segmentation[m.String()] = st.Segmentation
			res.Grouping[m.String()] = st.Grouping
			start := time.Now()
			n := retrievalQueries
			if n > size {
				n = size
			}
			for q := 0; q < n; q++ {
				p.Related(q, 5)
			}
			res.Retrieval[m.String()] = time.Since(start) / time.Duration(n)
		}
		results = append(results, res)
	}

	segMethods := []core.Method{core.IntentIntentMR, core.SentIntentMR, core.ContentMR}
	var segRows, grpRows, retRows [][]string
	for _, r := range results {
		segRow := []string{fmt.Sprintf("%d", r.Size)}
		grpRow := []string{fmt.Sprintf("%d", r.Size)}
		for _, m := range segMethods {
			segRow = append(segRow, r.Segmentation[m.String()].Round(time.Millisecond).String())
			grpRow = append(grpRow, r.Grouping[m.String()].Round(time.Millisecond).String())
		}
		segRows = append(segRows, segRow)
		grpRows = append(grpRows, grpRow)
		retRow := []string{fmt.Sprintf("%d", r.Size)}
		for _, m := range fig11Methods {
			retRow = append(retRow, r.Retrieval[m.String()].Round(time.Microsecond).String())
		}
		retRows = append(retRows, retRow)
	}
	segHeader := []string{"Posts"}
	grpHeader := []string{"Posts"}
	for _, m := range segMethods {
		segHeader = append(segHeader, m.String())
		grpHeader = append(grpHeader, m.String())
	}
	retHeader := []string{"Posts"}
	for _, m := range fig11Methods {
		retHeader = append(retHeader, m.String())
	}
	b.WriteString("(a) total segmentation time\n" + table(segHeader, segRows))
	b.WriteString("(b) segment grouping time\n" + table(grpHeader, grpRows))
	b.WriteString("(c) avg retrieval time per query\n" + table(retHeader, retRows))
	return b.String(), results
}

// scaledLDAIters keeps LDA training affordable as collections grow; the
// experiment times retrieval, not training.
func scaledLDAIters(size int) int {
	switch {
	case size <= 2000:
		return 40
	case size <= 20000:
		return 15
	default:
		return 5
	}
}

// Table6Result holds the StackOverflow-scale timings.
type Table6Result struct {
	Posts              int
	AvgSegmentation    time.Duration
	TotalGrouping      time.Duration
	AvgRetrieval       time.Duration
	Segments, Clusters int
}

// Table6 reproduces the StackOverflow-scale run on the programming
// corpus: average per-post segmentation time, total segment-grouping time,
// and average retrieval time (the paper: 0.067 s, 3.18 min, and 0.029 s on
// 1.5M posts).
func Table6(opt Options) (string, Table6Result) {
	opt = opt.withDefaults()
	ds := newDataset(forum.Programming, opt.Table6Posts, opt.Seed)
	p, err := core.Build(ds.texts, core.Config{Seed: opt.Seed, Workers: opt.Workers})
	if err != nil {
		return err.Error(), Table6Result{}
	}
	st := p.Stats()
	const retrievalQueries = 200
	n := retrievalQueries
	if n > opt.Table6Posts {
		n = opt.Table6Posts
	}
	start := time.Now()
	for q := 0; q < n; q++ {
		p.Related(q, 5)
	}
	res := Table6Result{
		Posts:           opt.Table6Posts,
		AvgSegmentation: st.Segmentation / time.Duration(opt.Table6Posts),
		TotalGrouping:   st.Grouping,
		AvgRetrieval:    time.Since(start) / time.Duration(n),
		Segments:        st.NumSegments,
		Clusters:        st.NumClusters,
	}
	out := fmt.Sprintf("Table 6: execution times (Programming corpus, %d posts, %d segments, %d clusters)\n",
		res.Posts, res.Segments, res.Clusters) +
		table([]string{"Avg segmentation", "Total grouping", "Avg retrieval"},
			[][]string{{res.AvgSegmentation.String(), res.TotalGrouping.Round(time.Millisecond).String(),
				res.AvgRetrieval.Round(time.Microsecond).String()}})
	return out, res
}
