// Package eval implements the evaluation metrics of Sec 9: WindowDiff and
// its multi-annotator variant multWinDiff for segmentation quality
// (Sec 9.1.2), Pk, Fleiss' kappa and observed agreement with character
// offset tolerance for the human study (Table 2), and mean precision for
// the retrieval evaluation (Table 4).
package eval

// WindowDiff computes Pevzner & Hearst's WindowDiff error between a
// reference and a hypothesis segmentation of a document with n text units.
// Borders are unit positions in (0, n). A window of size k slides over the
// sequence; a window is an error when the two segmentations disagree on the
// number of borders inside it. The result is in [0, 1]; 0 is a perfect
// match. k must be ≥ 1; the customary choice is half the average reference
// segment length.
func WindowDiff(ref, hyp []int, n, k int) float64 {
	if n <= 1 {
		return 0
	}
	if k < 1 {
		k = 1
	}
	if k >= n {
		k = n - 1
	}
	refB := borderSet(ref, n)
	hypB := borderSet(hyp, n)
	errors := 0
	windows := 0
	for i := 0; i+k <= n; i++ {
		// Borders strictly inside the window (positions i+1 .. i+k-1) plus
		// the window edges convention: count borders in (i, i+k].
		r, h := 0, 0
		for p := i + 1; p <= i+k && p < n; p++ {
			if refB[p] {
				r++
			}
			if hypB[p] {
				h++
			}
		}
		if r != h {
			errors++
		}
		windows++
	}
	if windows == 0 {
		return 0
	}
	return float64(errors) / float64(windows)
}

// Pk computes Beeferman's Pk metric: the probability that two units k apart
// are incorrectly classified as being in the same or different segments.
func Pk(ref, hyp []int, n, k int) float64 {
	if n <= 1 {
		return 0
	}
	if k < 1 {
		k = 1
	}
	if k >= n {
		k = n - 1
	}
	refSeg := segmentIDs(ref, n)
	hypSeg := segmentIDs(hyp, n)
	errors, windows := 0, 0
	for i := 0; i+k < n; i++ {
		sameRef := refSeg[i] == refSeg[i+k]
		sameHyp := hypSeg[i] == hypSeg[i+k]
		if sameRef != sameHyp {
			errors++
		}
		windows++
	}
	if windows == 0 {
		return 0
	}
	return float64(errors) / float64(windows)
}

// MultWinDiff computes the multi-annotator WindowDiff of Kazantseva &
// Szpakowicz (2012): the mean WindowDiff of the hypothesis against each
// reference annotation, with the window size set to half the average
// segment length across all references. It is the error reported throughout
// Sec 9.1.2.
func MultWinDiff(refs [][]int, hyp []int, n int) float64 {
	if len(refs) == 0 || n <= 1 {
		return 0
	}
	// Average reference segment length: n units divided by the average
	// number of segments.
	var totalSegs float64
	for _, ref := range refs {
		totalSegs += float64(len(borderList(ref, n)) + 1)
	}
	avgSegLen := float64(n) * float64(len(refs)) / totalSegs
	k := int(avgSegLen / 2)
	if k < 1 {
		k = 1
	}
	var sum float64
	for _, ref := range refs {
		sum += WindowDiff(ref, hyp, n, k)
	}
	return sum / float64(len(refs))
}

// borderSet builds a position → is-border lookup, dropping out-of-range
// positions.
func borderSet(borders []int, n int) map[int]bool {
	m := make(map[int]bool, len(borders))
	for _, b := range borders {
		if b > 0 && b < n {
			m[b] = true
		}
	}
	return m
}

// borderList returns the in-range borders.
func borderList(borders []int, n int) []int {
	out := borders[:0:0]
	for _, b := range borders {
		if b > 0 && b < n {
			out = append(out, b)
		}
	}
	return out
}

// segmentIDs assigns each unit its segment ordinal under the given borders.
func segmentIDs(borders []int, n int) []int {
	b := borderSet(borders, n)
	ids := make([]int, n)
	cur := 0
	for i := 0; i < n; i++ {
		if b[i] {
			cur++
		}
		ids[i] = cur
	}
	return ids
}
