package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWindowDiffPerfect(t *testing.T) {
	ref := []int{3, 6}
	if got := WindowDiff(ref, ref, 9, 2); got != 0 {
		t.Errorf("WindowDiff(identical) = %v, want 0", got)
	}
}

func TestWindowDiffTotalMiss(t *testing.T) {
	// Reference has borders everywhere, hypothesis nowhere: nearly every
	// window disagrees.
	ref := []int{1, 2, 3, 4, 5, 6, 7}
	got := WindowDiff(ref, nil, 8, 2)
	if got < 0.9 {
		t.Errorf("WindowDiff(all vs none) = %v, want near 1", got)
	}
}

func TestWindowDiffNearMiss(t *testing.T) {
	// An off-by-one border is better than a missing border.
	ref := []int{5}
	near := WindowDiff(ref, []int{6}, 10, 3)
	missing := WindowDiff(ref, nil, 10, 3)
	if near >= missing {
		t.Errorf("near miss %v should score below total miss %v", near, missing)
	}
}

func TestWindowDiffEdgeCases(t *testing.T) {
	if got := WindowDiff(nil, nil, 0, 2); got != 0 {
		t.Error("empty doc should be 0")
	}
	if got := WindowDiff(nil, nil, 1, 2); got != 0 {
		t.Error("single-unit doc should be 0")
	}
	// Out-of-range borders are ignored.
	if got := WindowDiff([]int{0, 99, -3}, nil, 5, 2); got != 0 {
		t.Errorf("out-of-range borders should be dropped, got %v", got)
	}
	// Oversized window clamps.
	if got := WindowDiff([]int{2}, []int{2}, 4, 100); got != 0 {
		t.Errorf("clamped window on identical segmentations = %v", got)
	}
}

// Property: WindowDiff is within [0,1] and zero for identical inputs.
func TestWindowDiffProperty(t *testing.T) {
	f := func(refRaw, hypRaw []uint8, n8, k8 uint8) bool {
		n := 2 + int(n8%30)
		k := 1 + int(k8%10)
		ref := toBorders(refRaw, n)
		hyp := toBorders(hypRaw, n)
		d := WindowDiff(ref, hyp, n, k)
		if d < 0 || d > 1 {
			return false
		}
		if WindowDiff(ref, ref, n, k) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func toBorders(raw []uint8, n int) []int {
	var out []int
	for _, r := range raw {
		out = append(out, 1+int(r)%(n-1))
	}
	return out
}

func TestPk(t *testing.T) {
	ref := []int{5}
	if got := Pk(ref, ref, 10, 3); got != 0 {
		t.Errorf("Pk(identical) = %v", got)
	}
	worse := Pk(ref, nil, 10, 3)
	if worse <= 0 {
		t.Errorf("Pk(missing border) = %v, want > 0", worse)
	}
}

func TestMultWinDiff(t *testing.T) {
	refs := [][]int{{3, 6}, {3, 7}}
	if got := MultWinDiff(refs, []int{3, 6}, 9); got < 0 || got > 1 {
		t.Errorf("MultWinDiff out of range: %v", got)
	}
	perfect := MultWinDiff([][]int{{4}}, []int{4}, 8)
	if perfect != 0 {
		t.Errorf("MultWinDiff single perfect ref = %v", perfect)
	}
	// Hypothesis matching one annotator beats matching neither.
	match := MultWinDiff(refs, []int{3, 6}, 9)
	miss := MultWinDiff(refs, []int{1, 8}, 9)
	if match >= miss {
		t.Errorf("matching hypothesis %v should beat missing one %v", match, miss)
	}
	if got := MultWinDiff(nil, []int{1}, 9); got != 0 {
		t.Error("no references should give 0")
	}
}

func TestFleissKappaPerfectAgreement(t *testing.T) {
	// 4 items, 3 raters, everyone agrees.
	counts := [][]int{{3, 0}, {0, 3}, {3, 0}, {0, 3}}
	kappa, obs := FleissKappa(counts)
	if obs != 1 {
		t.Errorf("observed = %v, want 1", obs)
	}
	if math.Abs(kappa-1) > 1e-9 {
		t.Errorf("kappa = %v, want 1", kappa)
	}
}

func TestFleissKappaChanceAgreement(t *testing.T) {
	// Maximally split raters: observed pairwise agreement is low and kappa
	// near or below 0.
	counts := [][]int{{2, 2}, {2, 2}, {2, 2}}
	kappa, obs := FleissKappa(counts)
	if obs >= 0.5 {
		t.Errorf("observed = %v, want < 0.5", obs)
	}
	if kappa > 0 {
		t.Errorf("kappa = %v, want <= 0", kappa)
	}
}

func TestFleissKappaWikipediaExample(t *testing.T) {
	// The classic worked example (Wikipedia, Fleiss 1971): 10 items, 14
	// raters, 5 categories; kappa ≈ 0.210.
	counts := [][]int{
		{0, 0, 0, 0, 14},
		{0, 2, 6, 4, 2},
		{0, 0, 3, 5, 6},
		{0, 3, 9, 2, 0},
		{2, 2, 8, 1, 1},
		{7, 7, 0, 0, 0},
		{3, 2, 6, 3, 0},
		{2, 5, 3, 2, 2},
		{6, 5, 2, 1, 0},
		{0, 2, 2, 3, 7},
	}
	kappa, _ := FleissKappa(counts)
	if math.Abs(kappa-0.210) > 0.005 {
		t.Errorf("kappa = %v, want ≈ 0.210", kappa)
	}
}

func TestFleissKappaDegenerate(t *testing.T) {
	if kappa, obs := FleissKappa(nil); kappa != 0 || obs != 0 {
		t.Error("empty matrix should give 0,0")
	}
	if kappa, obs := FleissKappa([][]int{{1, 0}}); kappa != 0 || obs != 0 {
		t.Error("single rater should give 0,0")
	}
	// All raters always pick category 0 → Pe = 1, perfect observed.
	kappa, obs := FleissKappa([][]int{{3, 0}, {3, 0}})
	if obs != 1 || kappa != 1 {
		t.Errorf("uniform perfect agreement: kappa=%v obs=%v", kappa, obs)
	}
}

func TestBorderAgreement(t *testing.T) {
	candidates := []int{100, 200, 300}
	// Three annotators agree on a border near 100 and 300, none at 200.
	annotations := [][]int{
		{98, 302},
		{105, 295},
		{101, 300},
	}
	kappa, obs := BorderAgreement(candidates, annotations, 10)
	if obs != 1 {
		t.Errorf("observed = %v, want 1 (perfect within tolerance)", obs)
	}
	if kappa != 1 {
		t.Errorf("kappa = %v, want 1", kappa)
	}
	// Tighter tolerance breaks agreement on the jittered borders.
	_, obsTight := BorderAgreement(candidates, annotations, 2)
	if obsTight >= 1 {
		t.Errorf("tight-tolerance observed = %v, want < 1", obsTight)
	}
	if k, o := BorderAgreement(nil, annotations, 10); k != 0 || o != 0 {
		t.Error("no candidates should give 0,0")
	}
	if k, o := BorderAgreement(candidates, annotations[:1], 10); k != 0 || o != 0 {
		t.Error("single annotator should give 0,0")
	}
}

func TestAgreementToleranceMonotone(t *testing.T) {
	// Larger offsets can only increase marked counts; observed agreement in
	// this jittered setup should not decrease (Table 2's pattern).
	candidates := []int{100, 250, 400}
	annotations := [][]int{
		{92, 260, 395},
		{108, 246, 430},
		{99, 238, 409},
	}
	prev := -1.0
	for _, off := range []int{10, 25, 40} {
		_, obs := BorderAgreement(candidates, annotations, off)
		if obs < prev {
			t.Errorf("observed agreement decreased at offset %d: %v < %v", off, obs, prev)
		}
		prev = obs
	}
}

func TestMultiDocBorderAgreement(t *testing.T) {
	docs := []AgreementDoc{
		{Candidates: []int{50, 150}, Annotations: [][]int{{49, 151}, {52, 148}}},
		{Candidates: []int{80}, Annotations: [][]int{{81}, {79}}},
		{Candidates: nil, Annotations: [][]int{{1}, {2}}},   // skipped
		{Candidates: []int{10}, Annotations: [][]int{{10}}}, // skipped: 1 annotator
	}
	kappa, obs := MultiDocBorderAgreement(docs, 5)
	if obs != 1 || kappa != 1 {
		t.Errorf("pooled agreement kappa=%v obs=%v, want 1,1", kappa, obs)
	}
}

func TestPrecision(t *testing.T) {
	rel := map[int]bool{1: true, 3: true, 5: true}
	if got := Precision([]int{1, 2, 3, 4}, rel); got != 0.5 {
		t.Errorf("Precision = %v, want 0.5", got)
	}
	if got := Precision(nil, rel); got != 0 {
		t.Errorf("Precision(empty) = %v, want 0", got)
	}
	if got := PrecisionAtK([]int{1, 3, 5, 2, 4}, rel, 3); got != 1 {
		t.Errorf("PrecisionAtK = %v, want 1", got)
	}
	if got := PrecisionAtK([]int{1}, rel, 5); got != 1 {
		t.Errorf("PrecisionAtK with short list = %v, want 1", got)
	}
}

func TestMeanPrecisionAndZeroFraction(t *testing.T) {
	per := []float64{1, 0, 0.5, 0}
	if got := MeanPrecision(per); got != 0.375 {
		t.Errorf("MeanPrecision = %v, want 0.375", got)
	}
	if got := ZeroFraction(per); got != 0.5 {
		t.Errorf("ZeroFraction = %v, want 0.5", got)
	}
	if MeanPrecision(nil) != 0 || ZeroFraction(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
}

func TestPool(t *testing.T) {
	got := Pool([]int{1, 2, 3}, []int{3, 4}, []int{1, 5})
	want := []int{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("Pool = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Pool = %v, want %v", got, want)
		}
	}
}

func TestBoundaryPRFPerfect(t *testing.T) {
	p, r, f := BoundaryPRF([]int{3, 6}, []int{3, 6}, 10, 0)
	if p != 1 || r != 1 || f != 1 {
		t.Errorf("perfect match: %v %v %v", p, r, f)
	}
}

func TestBoundaryPRFTolerance(t *testing.T) {
	// Off-by-one borders match at tolerance 1 but not 0.
	p0, _, _ := BoundaryPRF([]int{3, 6}, []int{4, 7}, 10, 0)
	if p0 != 0 {
		t.Errorf("tolerance 0 precision = %v, want 0", p0)
	}
	p1, r1, f1 := BoundaryPRF([]int{3, 6}, []int{4, 7}, 10, 1)
	if p1 != 1 || r1 != 1 || f1 != 1 {
		t.Errorf("tolerance 1: %v %v %v, want perfect", p1, r1, f1)
	}
}

func TestBoundaryPRFSpuriousAndMissing(t *testing.T) {
	// Hypothesis has one true border and one spurious; misses one.
	p, r, f := BoundaryPRF([]int{3, 6}, []int{3, 8}, 10, 0)
	if p != 0.5 || r != 0.5 {
		t.Errorf("P=%v R=%v, want 0.5 each", p, r)
	}
	if f != 0.5 {
		t.Errorf("F1 = %v, want 0.5", f)
	}
	// Over-segmentation: precision drops, recall stays.
	p, r, _ = BoundaryPRF([]int{5}, []int{2, 5, 8}, 10, 0)
	if r != 1 {
		t.Errorf("recall = %v, want 1", r)
	}
	if p >= 0.5 {
		t.Errorf("precision = %v, want 1/3", p)
	}
}

func TestBoundaryPRFEmptyCases(t *testing.T) {
	if p, r, f := BoundaryPRF(nil, nil, 5, 1); p != 1 || r != 1 || f != 1 {
		t.Error("both empty should be perfect")
	}
	if p, r, f := BoundaryPRF([]int{2}, nil, 5, 1); p != 0 || r != 0 || f != 0 {
		t.Error("empty hypothesis vs non-empty reference should be 0")
	}
	if p, _, _ := BoundaryPRF(nil, []int{2}, 5, 1); p != 0 {
		t.Error("spurious-only hypothesis should have precision 0")
	}
}

func TestBoundaryPRFGreedyMatchingIsOneToOne(t *testing.T) {
	// Two hypothesis borders near one reference: only one may match.
	p, r, _ := BoundaryPRF([]int{5}, []int{4, 6}, 10, 2)
	if r != 1 {
		t.Errorf("recall = %v, want 1", r)
	}
	if p != 0.5 {
		t.Errorf("precision = %v, want 0.5 (one-to-one matching)", p)
	}
}
