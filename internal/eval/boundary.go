package eval

// Boundary-level precision/recall/F1 complement WindowDiff: WindowDiff
// measures near-miss-tolerant disagreement density, while boundary P/R/F1
// attributes error to spurious vs missing borders — useful when diagnosing
// why a strategy over- or under-segments (Fig 8's border-count column in
// metric form).

// BoundaryPRF computes precision, recall and F1 of hypothesis borders
// against reference borders over a document of n units. A hypothesis
// border matches an unmatched reference border within ±tolerance units
// (greedy nearest-first matching; each border matches at most once).
func BoundaryPRF(ref, hyp []int, n, tolerance int) (precision, recall, f1 float64) {
	refB := borderList(ref, n)
	hypB := borderList(hyp, n)
	if len(hypB) == 0 && len(refB) == 0 {
		return 1, 1, 1
	}
	if len(hypB) == 0 || len(refB) == 0 {
		return 0, 0, 0
	}
	matchedRef := make([]bool, len(refB))
	matches := 0
	for _, h := range hypB {
		best, bestD := -1, tolerance+1
		for i, r := range refB {
			if matchedRef[i] {
				continue
			}
			d := h - r
			if d < 0 {
				d = -d
			}
			if d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			matchedRef[best] = true
			matches++
		}
	}
	precision = float64(matches) / float64(len(hypB))
	recall = float64(matches) / float64(len(refB))
	if precision+recall == 0 {
		return precision, recall, 0
	}
	f1 = 2 * precision * recall / (precision + recall)
	return precision, recall, f1
}
