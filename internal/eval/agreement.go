package eval

// This file implements the inter-annotator agreement measures of Table 2:
// observed agreement percentage and Fleiss' kappa over border placements,
// with a character-offset tolerance (±10/25/40 chars in the paper) deciding
// when two annotators "agree" on a border.

// FleissKappa computes Fleiss' kappa and the observed agreement P̄ from an
// items × categories count matrix: counts[i][j] is the number of raters
// that assigned item i to category j. Every item must have the same total
// number of raters n ≥ 2. Kappa is (P̄−P̄e)/(1−P̄e); if P̄e == 1 (all raters
// always picked one category) kappa is defined as 1 when agreement is
// perfect.
func FleissKappa(counts [][]int) (kappa, observed float64) {
	if len(counts) == 0 {
		return 0, 0
	}
	n := 0
	for _, c := range counts[0] {
		n += c
	}
	if n < 2 {
		return 0, 0
	}
	numCats := len(counts[0])
	catTotals := make([]float64, numCats)
	var pBar float64
	for _, row := range counts {
		var agree float64
		for j, c := range row {
			agree += float64(c * (c - 1))
			catTotals[j] += float64(c)
		}
		pBar += agree / float64(n*(n-1))
	}
	pBar /= float64(len(counts))

	total := float64(len(counts) * n)
	var pe float64
	for _, t := range catTotals {
		p := t / total
		pe += p * p
	}
	if pe >= 1 {
		if pBar >= 1 {
			return 1, pBar
		}
		return 0, pBar
	}
	return (pBar - pe) / (1 - pe), pBar
}

// BorderAgreement evaluates how well multiple annotators agree on where
// segment borders lie in one document. candidates are the char offsets of
// the document's possible border positions (in this system: sentence
// boundaries); annotations are each annotator's chosen border offsets. A
// candidate counts as marked by an annotator when one of their borders has
// that candidate as its nearest candidate and lies within ±offset
// characters of it — nearest-assignment prevents one jittered border from
// marking two adjacent candidates at loose tolerances. The items of the
// agreement matrix are the candidates, with the two categories
// border / no-border.
func BorderAgreement(candidates []int, annotations [][]int, offset int) (kappa, observed float64) {
	if len(candidates) == 0 || len(annotations) < 2 {
		return 0, 0
	}
	counts := borderCounts(candidates, annotations, offset)
	return FleissKappa(counts)
}

// borderCounts builds the items × {border, no-border} matrix under
// nearest-candidate assignment.
func borderCounts(candidates []int, annotations [][]int, offset int) [][]int {
	counts := make([][]int, len(candidates))
	for i := range counts {
		counts[i] = []int{0, len(annotations)}
	}
	for _, ann := range annotations {
		marked := make(map[int]bool)
		for _, b := range ann {
			best, bestD := -1, offset+1
			for ci, cand := range candidates {
				d := b - cand
				if d < 0 {
					d = -d
				}
				if d < bestD {
					best, bestD = ci, d
				}
			}
			if best >= 0 {
				marked[best] = true
			}
		}
		for ci := range marked {
			counts[ci][0]++
			counts[ci][1]--
		}
	}
	return counts
}

// MultiDocBorderAgreement pools the agreement items of many documents into
// a single kappa/observed computation, mirroring Table 2's per-dataset
// numbers. Each element pairs one document's candidate offsets with its
// annotators' border offsets; documents with fewer than two annotations are
// skipped.
func MultiDocBorderAgreement(docs []AgreementDoc, offset int) (kappa, observed float64) {
	var counts [][]int
	for _, doc := range docs {
		if len(doc.Candidates) == 0 || len(doc.Annotations) < 2 {
			continue
		}
		counts = append(counts, borderCounts(doc.Candidates, doc.Annotations, offset)...)
	}
	return FleissKappa(counts)
}

// AgreementDoc is one document's contribution to a pooled agreement
// computation.
type AgreementDoc struct {
	Candidates  []int   // candidate border char offsets (sentence boundaries)
	Annotations [][]int // per-annotator border char offsets
}
