package eval

// This file implements the retrieval-effectiveness measures of Sec 9.2:
// binary-relevance precision of a top-k list and the mean precision over
// query posts that Table 4 reports.

// Precision returns the fraction of retrieved ids judged relevant. An empty
// retrieval has precision 0 (a list with no true positives, as counted in
// the paper's "lists with mean precision 0" statistic).
func Precision(retrieved []int, relevant map[int]bool) float64 {
	if len(retrieved) == 0 {
		return 0
	}
	hits := 0
	for _, id := range retrieved {
		if relevant[id] {
			hits++
		}
	}
	return float64(hits) / float64(len(retrieved))
}

// PrecisionAtK truncates the retrieval to its first k elements before
// computing precision; the paper's users evaluated top-5 lists.
func PrecisionAtK(retrieved []int, relevant map[int]bool, k int) float64 {
	if k < len(retrieved) {
		retrieved = retrieved[:k]
	}
	return Precision(retrieved, relevant)
}

// MeanPrecision averages per-query precision values ("the mean of the
// precision values considering each information need separately").
func MeanPrecision(perQuery []float64) float64 {
	if len(perQuery) == 0 {
		return 0
	}
	var sum float64
	for _, p := range perQuery {
		sum += p
	}
	return sum / float64(len(perQuery))
}

// ZeroFraction returns the fraction of queries with precision 0 — the
// "lists with no true positives" statistic of Sec 9.2.2.
func ZeroFraction(perQuery []float64) float64 {
	if len(perQuery) == 0 {
		return 0
	}
	zeros := 0
	for _, p := range perQuery {
		if p == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(len(perQuery))
}

// Pool merges several systems' retrievals for one query into a single
// deduplicated judging pool, preserving first-seen order (Sec 9.2.1 uses
// pooling for the TripAdvisor judgments).
func Pool(lists ...[]int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, list := range lists {
		for _, id := range list {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}
