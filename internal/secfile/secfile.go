// Package secfile implements the section-file container every compact
// on-disk artifact of this repo shares: a fixed header (4-byte magic,
// little-endian uint16 version, uint16 section count), a section table
// of (tag, offset, length, CRC-32) entries, and the section payloads
// laid out back to back. The layout is mmap-ready by construction — a
// reader that has the file bytes in memory (read or mapped) locates any
// section from the table alone and slices its payload without copying
// or decoding, and the fixed-width columns the index stores inside
// sections can be walked in place.
//
// Every structural defect a damaged file can exhibit maps to a distinct
// descriptive error: wrong magic, a version from the future, a table
// that overruns the file, sections that overlap or leave gaps, payloads
// the file is too short to hold (truncation), bytes past the last
// payload (trailing garbage), and payload corruption (per-section CRC-32
// mismatch). Loaders built on Decode therefore fail loudly at load time
// instead of deferring corruption to query time.
//
// Layout, byte for byte (all integers little-endian):
//
//	offset 0:  magic   [4]byte   caller-chosen file type tag
//	offset 4:  version uint16    format version, 1-based
//	offset 6:  nsec    uint16    number of sections
//	offset 8:  table   nsec × 24 bytes:
//	               tag    [4]byte  section name
//	               off    uint64   absolute payload offset
//	               length uint64   payload byte count
//	               crc    uint32   CRC-32 (IEEE) of the payload
//	payloads:  concatenated in table order, first at 8 + 24·nsec,
//	           contiguous (off[i+1] = off[i] + length[i]), and the file
//	           ends exactly at the last payload's end.
package secfile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// headerSize is the fixed prefix before the section table.
const headerSize = 8

// entrySize is one section-table entry: tag[4] + off[8] + len[8] + crc[4].
const entrySize = 24

// Section is one named payload of a section file.
type Section struct {
	Tag  string // exactly 4 bytes
	Data []byte
}

// Encode writes a section file: header, table, payloads. Sections are
// written in the given order; tags must be exactly 4 bytes and unique.
func Encode(w io.Writer, magic string, version uint16, secs []Section) (int64, error) {
	if len(magic) != 4 {
		return 0, fmt.Errorf("secfile: magic %q is not 4 bytes", magic)
	}
	if len(secs) > math.MaxUint16 {
		return 0, fmt.Errorf("secfile: %d sections exceed the uint16 table", len(secs))
	}
	seen := make(map[string]bool, len(secs))
	hdr := make([]byte, headerSize+entrySize*len(secs))
	copy(hdr, magic)
	binary.LittleEndian.PutUint16(hdr[4:], version)
	binary.LittleEndian.PutUint16(hdr[6:], uint16(len(secs)))
	off := uint64(len(hdr))
	for i, s := range secs {
		if len(s.Tag) != 4 {
			return 0, fmt.Errorf("secfile: section tag %q is not 4 bytes", s.Tag)
		}
		if seen[s.Tag] {
			return 0, fmt.Errorf("secfile: duplicate section tag %q", s.Tag)
		}
		seen[s.Tag] = true
		e := hdr[headerSize+entrySize*i:]
		copy(e, s.Tag)
		binary.LittleEndian.PutUint64(e[4:], off)
		binary.LittleEndian.PutUint64(e[12:], uint64(len(s.Data)))
		binary.LittleEndian.PutUint32(e[20:], crc32.ChecksumIEEE(s.Data))
		off += uint64(len(s.Data))
	}
	var n int64
	m, err := w.Write(hdr)
	n += int64(m)
	if err != nil {
		return n, err
	}
	for _, s := range secs {
		m, err := w.Write(s.Data)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// File is a decoded section file: validated payload slices, aliasing the
// input bytes (no copies), keyed by tag.
type File struct {
	Version  uint16
	sections map[string][]byte
}

// Sniff reports whether data begins with the 4-byte magic — the cheap
// dispatch test loaders use to tell a compact file from a legacy gob
// stream before committing to either decode path.
func Sniff(data []byte, magic string) bool {
	return len(data) >= 4 && string(data[:4]) == magic
}

// Decode validates a complete section file held in memory and returns
// its payload slices (aliasing data). maxVersion is the newest version
// the caller understands; newer files are rejected rather than
// misparsed. Every defect — wrong magic, future version, table overrun,
// non-contiguous sections, truncation, trailing bytes, checksum
// mismatch — is a distinct descriptive error.
func Decode(data []byte, magic string, maxVersion uint16) (*File, error) {
	if len(magic) != 4 {
		return nil, fmt.Errorf("secfile: magic %q is not 4 bytes", magic)
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("secfile: %d-byte input is shorter than the %d-byte header", len(data), headerSize)
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("secfile: bad magic %q (want %q)", data[:4], magic)
	}
	version := binary.LittleEndian.Uint16(data[4:])
	if version == 0 || version > maxVersion {
		return nil, fmt.Errorf("secfile: unsupported %s version %d (this build reads up to %d)", magic, version, maxVersion)
	}
	nsec := int(binary.LittleEndian.Uint16(data[6:]))
	tableEnd := headerSize + entrySize*nsec
	if len(data) < tableEnd {
		return nil, fmt.Errorf("secfile: truncated: %d-section table needs %d bytes, have %d", nsec, tableEnd, len(data))
	}
	f := &File{Version: version, sections: make(map[string][]byte, nsec)}
	want := uint64(tableEnd)
	for i := 0; i < nsec; i++ {
		e := data[headerSize+entrySize*i:]
		tag := string(e[:4])
		off := binary.LittleEndian.Uint64(e[4:])
		length := binary.LittleEndian.Uint64(e[12:])
		crc := binary.LittleEndian.Uint32(e[20:])
		if _, dup := f.sections[tag]; dup {
			return nil, fmt.Errorf("secfile: duplicate section %q", tag)
		}
		if off != want {
			return nil, fmt.Errorf("secfile: section %q at offset %d, want contiguous %d", tag, off, want)
		}
		if length > uint64(len(data)) || off+length > uint64(len(data)) {
			return nil, fmt.Errorf("secfile: truncated: section %q needs bytes [%d, %d), file has %d", tag, off, off+length, len(data))
		}
		payload := data[off : off+length]
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return nil, fmt.Errorf("secfile: section %q checksum mismatch: %08x on disk, %08x computed", tag, crc, got)
		}
		f.sections[tag] = payload
		want = off + length
	}
	if want != uint64(len(data)) {
		return nil, fmt.Errorf("secfile: %d trailing bytes after the last section", uint64(len(data))-want)
	}
	return f, nil
}

// Section returns the payload of the named section, or an error naming
// the missing tag. The slice aliases the decoded input.
func (f *File) Section(tag string) ([]byte, error) {
	s, ok := f.sections[tag]
	if !ok {
		return nil, fmt.Errorf("secfile: missing section %q", tag)
	}
	return s, nil
}

// --- primitive encoding helpers shared by the compact codecs ---

// AppendUvarint appends v in unsigned LEB128 varint encoding.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// Uvarint decodes one varint from b and returns the remainder. Unlike
// binary.Uvarint it returns a descriptive error for truncated or
// overlong input instead of a sentinel count, and it rejects
// non-minimal encodings (a trailing 0x00 continuation byte) — every
// value has exactly one accepted byte sequence, which is what makes
// decode → re-encode byte-identical for the whole format.
func Uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		if n == 0 {
			return 0, nil, fmt.Errorf("secfile: truncated varint")
		}
		return 0, nil, fmt.Errorf("secfile: varint overflows uint64")
	}
	if n > 1 && b[n-1] == 0 {
		return 0, nil, fmt.Errorf("secfile: non-canonical varint encoding")
	}
	return v, b[n:], nil
}

// AppendFloat64s appends vals as fixed-width little-endian IEEE-754
// doubles — a fixed-stride column a mapped reader can index directly.
func AppendFloat64s(b []byte, vals []float64) []byte {
	for _, v := range vals {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// Float64Col interprets b as a fixed-width float64 column of n entries.
func Float64Col(b []byte, n int) ([]float64, error) {
	if uint64(len(b)) != uint64(n)*8 {
		return nil, fmt.Errorf("secfile: float64 column of %d entries needs %d bytes, have %d", n, n*8, len(b))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

// AppendUint32s appends vals as a fixed-width little-endian uint32 column.
func AppendUint32s(b []byte, vals []uint32) []byte {
	for _, v := range vals {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	return b
}

// Uint32Col interprets b as a fixed-width uint32 column of n entries.
func Uint32Col(b []byte, n int) ([]uint32, error) {
	if uint64(len(b)) != uint64(n)*4 {
		return nil, fmt.Errorf("secfile: uint32 column of %d entries needs %d bytes, have %d", n, n*4, len(b))
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out, nil
}

// AppendStringTable appends an interned string dictionary: uvarint
// count, a fixed-width uint32 column of cumulative end offsets (so entry
// i is blob[end[i-1]:end[i]], binary-searchable in place), then the
// concatenated string bytes.
func AppendStringTable(b []byte, strs []string) []byte {
	b = AppendUvarint(b, uint64(len(strs)))
	var end uint32
	for _, s := range strs {
		end += uint32(len(s))
		b = binary.LittleEndian.AppendUint32(b, end)
	}
	for _, s := range strs {
		b = append(b, s...)
	}
	return b
}

// ParseStringTable decodes a dictionary written by AppendStringTable and
// returns it with the remaining bytes. The strings are copied out of b
// (one allocation for all bytes), so the result does not alias the file.
func ParseStringTable(b []byte) ([]string, []byte, error) {
	n64, b, err := Uvarint(b)
	if err != nil {
		return nil, nil, fmt.Errorf("secfile: string table count: %w", err)
	}
	if n64 > uint64(len(b)) { // each entry needs ≥4 offset bytes
		return nil, nil, fmt.Errorf("secfile: string table declares %d entries in %d bytes", n64, len(b))
	}
	n := int(n64)
	if uint64(len(b)) < uint64(n)*4 {
		return nil, nil, fmt.Errorf("secfile: truncated string table offsets: %d entries need %d bytes, have %d", n, n*4, len(b))
	}
	ends, err := Uint32Col(b[:n*4], n)
	if err != nil {
		return nil, nil, err
	}
	b = b[n*4:]
	var prev uint32
	for i, e := range ends {
		if e < prev {
			return nil, nil, fmt.Errorf("secfile: string table offsets not ascending at entry %d", i)
		}
		prev = e
	}
	if uint64(prev) > uint64(len(b)) {
		return nil, nil, fmt.Errorf("secfile: truncated string table blob: offsets end at %d, have %d bytes", prev, len(b))
	}
	blob := string(b[:prev]) // one copy backs every string
	out := make([]string, n)
	var lo uint32
	for i, e := range ends {
		out[i] = blob[lo:e]
		lo = e
	}
	return out, b[prev:], nil
}
