package secfile

import (
	"bytes"
	"testing"
)

// FuzzDecode drives arbitrary bytes through the section-container
// decoder: whatever the input, Decode must either return a descriptive
// error or a File whose every table entry was offset-, length-, and
// checksum-validated — never panic, never over-read. Decoded files are
// closed under re-encoding: round-tripping the recovered sections must
// reproduce the input bytes exactly (the container holds no
// unaccounted-for bytes a rewrite could drop).
func FuzzDecode(f *testing.F) {
	var seed bytes.Buffer
	_, _ = Encode(&seed, "FUZZ", 1, []Section{
		{Tag: "aaaa", Data: []byte("payload one")},
		{Tag: "bbbb", Data: nil},
		{Tag: "cccc", Data: bytes.Repeat([]byte{7}, 64)},
	})
	f.Add(seed.Bytes())
	var empty bytes.Buffer
	_, _ = Encode(&empty, "FUZZ", 1, nil)
	f.Add(empty.Bytes())
	f.Add([]byte("FUZZ"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Decode(data, "FUZZ", 1)
		if err != nil {
			return
		}
		// A file that decodes must re-encode to the identical bytes: walk
		// the table order from the raw header, which Decode validated.
		var secs []Section
		n := int(uint16(data[6]) | uint16(data[7])<<8)
		for i := 0; i < n; i++ {
			tag := string(data[headerSize+entrySize*i : headerSize+entrySize*i+4])
			payload, err := decoded.Section(tag)
			if err != nil {
				t.Fatalf("validated section %q missing: %v", tag, err)
			}
			secs = append(secs, Section{Tag: tag, Data: payload})
		}
		var out bytes.Buffer
		if _, err := Encode(&out, "FUZZ", decoded.Version, secs); err != nil {
			t.Fatalf("re-encoding a valid file: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("re-encode differs: %d bytes in, %d out", len(data), out.Len())
		}
	})
}

// FuzzParseStringTable exercises the interned-dictionary parser the
// term sections of both compact codecs rely on.
func FuzzParseStringTable(f *testing.F) {
	f.Add(AppendStringTable(nil, []string{"alpha", "beta", "gamma"}))
	f.Add(AppendStringTable(nil, nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		strs, rest, err := ParseStringTable(data)
		if err != nil {
			return
		}
		round := AppendStringTable(nil, strs)
		if !bytes.Equal(round, data[:len(data)-len(rest)]) {
			t.Fatalf("string table round trip differs for %d entries", len(strs))
		}
	})
}
