package secfile

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func encodeValid(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := Encode(&buf, "TEST", 1, []Section{
		{Tag: "aaaa", Data: []byte("first payload")},
		{Tag: "bbbb", Data: nil}, // empty sections are legal
		{Tag: "cccc", Data: bytes.Repeat([]byte{0xAB}, 300)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Encode reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data := encodeValid(t)
	f, err := Decode(data, "TEST", 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Version != 1 {
		t.Errorf("version %d, want 1", f.Version)
	}
	a, err := f.Section("aaaa")
	if err != nil || string(a) != "first payload" {
		t.Errorf("section aaaa = %q, %v", a, err)
	}
	b, err := f.Section("bbbb")
	if err != nil || len(b) != 0 {
		t.Errorf("section bbbb = %d bytes, %v", len(b), err)
	}
	c, err := f.Section("cccc")
	if err != nil || len(c) != 300 {
		t.Errorf("section cccc = %d bytes, %v", len(c), err)
	}
	if _, err := f.Section("zzzz"); err == nil || !strings.Contains(err.Error(), `missing section "zzzz"`) {
		t.Errorf("missing section error = %v", err)
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Encode(&buf, "LONGMAGIC", 1, nil); err == nil {
		t.Error("non-4-byte magic accepted")
	}
	if _, err := Encode(&buf, "TEST", 1, []Section{{Tag: "toolong", Data: nil}}); err == nil {
		t.Error("non-4-byte tag accepted")
	}
	if _, err := Encode(&buf, "TEST", 1, []Section{{Tag: "aaaa"}, {Tag: "aaaa"}}); err == nil {
		t.Error("duplicate tag accepted")
	}
}

// TestDecodeNegativePaths is the damaged-file matrix (the PR-5 manifest
// test style): every structural defect must come back as a distinct,
// descriptive error — never a panic, never a silent success.
func TestDecodeNegativePaths(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(data []byte) []byte
		wantSub string
	}{
		{
			name:    "empty input",
			corrupt: func(data []byte) []byte { return nil },
			wantSub: "shorter than",
		},
		{
			name:    "shorter than header",
			corrupt: func(data []byte) []byte { return data[:5] },
			wantSub: "shorter than",
		},
		{
			name: "wrong magic",
			corrupt: func(data []byte) []byte {
				data[0] = 'X'
				return data
			},
			wantSub: "bad magic",
		},
		{
			name: "future version",
			corrupt: func(data []byte) []byte {
				binary.LittleEndian.PutUint16(data[4:], 99)
				return data
			},
			wantSub: "unsupported TEST version 99",
		},
		{
			name: "version zero",
			corrupt: func(data []byte) []byte {
				binary.LittleEndian.PutUint16(data[4:], 0)
				return data
			},
			wantSub: "unsupported TEST version 0",
		},
		{
			name: "table overruns file",
			corrupt: func(data []byte) []byte {
				binary.LittleEndian.PutUint16(data[6:], 1000)
				return data
			},
			wantSub: "table needs",
		},
		{
			name:    "truncated mid-table",
			corrupt: func(data []byte) []byte { return data[:headerSize+entrySize+3] },
			wantSub: "table needs",
		},
		{
			name:    "truncated payload",
			corrupt: func(data []byte) []byte { return data[:len(data)-100] },
			wantSub: "truncated",
		},
		{
			name:    "trailing garbage",
			corrupt: func(data []byte) []byte { return append(data, "junk"...) },
			wantSub: "trailing bytes",
		},
		{
			name: "payload corruption",
			corrupt: func(data []byte) []byte {
				data[len(data)-1] ^= 0xFF // inside section cccc
				return data
			},
			wantSub: `section "cccc" checksum mismatch`,
		},
		{
			name: "checksum corruption in table",
			corrupt: func(data []byte) []byte {
				data[headerSize+20] ^= 0xFF // crc field of section aaaa
				return data
			},
			wantSub: `section "aaaa" checksum mismatch`,
		},
		{
			name: "non-contiguous sections",
			corrupt: func(data []byte) []byte {
				// Shift section bbbb's recorded offset forward by one.
				off := binary.LittleEndian.Uint64(data[headerSize+entrySize+4:])
				binary.LittleEndian.PutUint64(data[headerSize+entrySize+4:], off+1)
				return data
			},
			wantSub: "want contiguous",
		},
		{
			name: "duplicate section tag",
			corrupt: func(data []byte) []byte {
				copy(data[headerSize+entrySize:], "aaaa") // rename bbbb → aaaa
				return data
			},
			wantSub: "duplicate section",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.corrupt(encodeValid(t))
			f, err := Decode(data, "TEST", 1)
			if err == nil {
				t.Fatalf("Decode accepted %s (version %d)", tc.name, f.Version)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestSniff(t *testing.T) {
	data := encodeValid(t)
	if !Sniff(data, "TEST") {
		t.Error("Sniff rejected its own magic")
	}
	if Sniff(data, "ELSE") {
		t.Error("Sniff accepted a different magic")
	}
	if Sniff([]byte("TE"), "TEST") {
		t.Error("Sniff accepted a short prefix")
	}
}

func TestVarintHelpers(t *testing.T) {
	b := AppendUvarint(nil, 0)
	b = AppendUvarint(b, 127)
	b = AppendUvarint(b, 1<<40)
	for _, want := range []uint64{0, 127, 1 << 40} {
		var v uint64
		var err error
		v, b, err = Uvarint(b)
		if err != nil || v != want {
			t.Fatalf("Uvarint = %d, %v; want %d", v, err, want)
		}
	}
	if _, _, err := Uvarint(nil); err == nil {
		t.Error("Uvarint on empty input should fail")
	}
	if _, _, err := Uvarint([]byte{0x80, 0x80}); err == nil {
		t.Error("Uvarint on truncated input should fail")
	}
	if _, _, err := Uvarint(bytes.Repeat([]byte{0xFF}, 11)); err == nil {
		t.Error("Uvarint on overlong input should fail")
	}
}

func TestColumns(t *testing.T) {
	fs := []float64{0, 1.5, -3.25}
	b := AppendFloat64s(nil, fs)
	got, err := Float64Col(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fs {
		if got[i] != fs[i] {
			t.Errorf("float col[%d] = %v, want %v", i, got[i], fs[i])
		}
	}
	if _, err := Float64Col(b, 4); err == nil {
		t.Error("short float column accepted")
	}

	us := []uint32{0, 7, 1 << 30}
	ub := AppendUint32s(nil, us)
	gotU, err := Uint32Col(ub, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range us {
		if gotU[i] != us[i] {
			t.Errorf("uint col[%d] = %d, want %d", i, gotU[i], us[i])
		}
	}
	if _, err := Uint32Col(ub, 2); err == nil {
		t.Error("oversized uint column accepted")
	}
}

func TestStringTable(t *testing.T) {
	strs := []string{"", "a", "bb", "ccc", "a"} // duplicates and empties are the caller's business
	b := AppendStringTable(nil, strs)
	b = append(b, 0x42) // table parsing must return the remainder
	got, rest, err := ParseStringTable(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 1 || rest[0] != 0x42 {
		t.Fatalf("remainder = %v", rest)
	}
	if len(got) != len(strs) {
		t.Fatalf("%d strings, want %d", len(got), len(strs))
	}
	for i := range strs {
		if got[i] != strs[i] {
			t.Errorf("entry %d = %q, want %q", i, got[i], strs[i])
		}
	}
}

func TestStringTableNegativePaths(t *testing.T) {
	valid := AppendStringTable(nil, []string{"alpha", "beta"})
	cases := []struct {
		name    string
		data    []byte
		wantSub string
	}{
		{"empty", nil, "count"},
		{"count overruns input", AppendUvarint(nil, 1<<40), "declares"},
		{"truncated offsets", valid[:3], "truncated string table offsets"},
		{"truncated blob", valid[:len(valid)-2], "truncated string table blob"},
		{
			"descending offsets",
			func() []byte {
				b := append([]byte(nil), valid...)
				// offsets start after the count varint (1 byte): swap the two
				// uint32 ends so they descend.
				copy(b[1:5], valid[5:9])
				copy(b[5:9], valid[1:5])
				return b
			}(),
			"not ascending",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ParseStringTable(tc.data)
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
