// Package core is the public face of the reproduction: an end-to-end
// pipeline that ingests raw forum posts, runs the paper's offline phases
// (intention-based segmentation, segment grouping, refinement, per-cluster
// indexing — Sec 4), and serves online top-k related-post queries
// (Sec 7). It also constructs the comparison matchers of Sec 9.2 behind a
// single switchboard, which is what the experiment harness and the example
// programs build on.
//
// Typical use:
//
//	p, err := core.Build(posts, core.Config{})
//	related := p.Related(postID, 5)
//
// Build is the offline phase (the paper runs it as pre-processing);
// Related is the online phase (sub-millisecond per query at 100k posts).
//
// A built Pipeline is safe for concurrent use: any number of goroutines
// may interleave Related, Add, Stats, and Doc. Related never blocks on
// the pipeline's own state; Add prepares the new document lock-free and
// holds the write lock only for the final bookkeeping.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/lda"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/segment"
	"repro/internal/shard"
	"repro/internal/textproc"
)

// Observability instruments for the pipeline's outer surface.
// build.preprocess covers HTML cleaning + sentence split + CM
// annotation (the part of the offline phase that runs before
// match.NewMR's build.* spans); core.related and core.add time the two
// public online operations end to end, and core.docs tracks the
// current collection size. Recording costs nothing while obs is
// disabled.
var (
	spanBuildPreprocess = obs.NewSpan("build.preprocess")
	spanRelated         = obs.NewSpan("core.related")
	spanAdd             = obs.NewSpan("core.add")
	gaugeDocs           = obs.NewGauge("core.docs")
)

// Method selects a matching method from Sec 9.2 of the paper.
type Method int

const (
	// IntentIntentMR is the paper's complete method: intention-based
	// segmentation (Greedy border selection), CM-vector clustering, and
	// multi-ranking matching (Algorithms 1 and 2).
	IntentIntentMR Method = iota
	// FullText matches whole posts with the MySQL-style weighting (Eq 7).
	FullText
	// LDA matches posts by topic-distribution similarity.
	LDA
	// ContentMR segments by topic shift (TextTiling) and clusters TF
	// vectors with k-means — segment-based but content-driven.
	ContentMR
	// SentIntentMR uses sentences as segments (no border selection) with
	// CM-vector clustering.
	SentIntentMR
)

var methodNames = [...]string{
	IntentIntentMR: "IntentIntent-MR", FullText: "FullText", LDA: "LDA",
	ContentMR: "Content-MR", SentIntentMR: "SentIntent-MR",
}

// String returns the method's Table 4 row label.
func (m Method) String() string {
	if int(m) < len(methodNames) {
		return methodNames[m]
	}
	return "?"
}

// Config controls pipeline construction. The zero value is the paper's
// configuration: Greedy border selection, DBSCAN grouping, n = 2k.
type Config struct {
	// Method selects the matcher; IntentIntentMR by default.
	Method Method
	// Stem applies Porter stemming to index terms. Enabled by default via
	// DisableStem being false… set DisableStem to index raw tokens the way
	// the paper's MySQL baseline does.
	DisableStem bool
	// MR carries the multi-ranking knobs for the segment-based methods;
	// zero values follow the paper (see match.MRConfig).
	MR match.MRConfig
	// LDA carries topic-model hyperparameters for the LDA method.
	LDA lda.Config
	// Seed drives every randomized component.
	Seed int64
	// Shards partitions the built collection across this many independent
	// shard matchers served by scatter-gather (see internal/shard): Add
	// routes to one shard, Related fans out to all and merges. Rankings
	// and scores are identical to the unsharded pipeline — sharding is a
	// serving topology, not an approximation. 0 or 1 serves unsharded;
	// values above 1 require an MR method. The routing seed is Seed.
	Shards int
	// Workers bounds offline build parallelism — document preprocessing,
	// segmentation, vectorization, the clustering internals, and
	// per-cluster index construction all fan out over this many
	// goroutines. 0 sizes the pool from the machine (GOMAXPROCS); results
	// are identical for any worker count. It also seeds MR.Workers when
	// that is unset, so the online per-query fan-out follows the same
	// knob.
	Workers int
}

// Stats describes where offline build time went (Fig 11 and Table 6).
// Grouping is the Fig 11(b) total; Vectorization, Clustering, and
// Refinement break it down into its sub-phases.
type Stats struct {
	Preprocess    time.Duration // HTML cleaning, sentence split, CM annotation
	Segmentation  time.Duration
	Vectorization time.Duration // segment weight vectors (Eq 5/6)
	Clustering    time.Duration // eps estimation + DBSCAN/k-means + centroids
	Refinement    time.Duration // (doc, cluster) grouping
	Grouping      time.Duration // vectorization + clustering + refinement
	Indexing      time.Duration
	NumDocs       int
	NumSegments   int
	NumClusters   int
}

// Pipeline is a built related-post retrieval system over one collection.
//
// mu guards docs and stats, the pipeline's only mutable state; matcher,
// mr, and cfg are frozen at Build time. Holding mu across the matcher
// commit in Add keeps document ids aligned with the docs slice, so Doc
// and Related agree on ids at all times.
type Pipeline struct {
	cfg     Config
	matcher match.Matcher
	mr      *match.MR    // non-nil for the unsharded MR methods
	group   *shard.Group // non-nil when Config.Shards > 1

	// epochBase offsets Epoch: 0 for a fresh Build, 1 for a pipeline
	// restored from a snapshot, so loading a snapshot is itself an epoch
	// advance and no cached result computed against a pre-load pipeline
	// can survive the load. Immutable after construction.
	epochBase uint64

	mu    sync.RWMutex
	docs  []*segment.Doc
	stats Stats
}

// Result is one related post.
type Result = match.Result

// Build runs the offline phases over raw post texts. Posts may contain
// HTML. The index positions of texts become the document ids used by
// Related.
func Build(texts []string, cfg Config) (*Pipeline, error) {
	p := &Pipeline{cfg: cfg}
	tm := spanBuildPreprocess.StartAlways()
	p.docs = make([]*segment.Doc, len(texts))
	terms := make([][]string, len(texts))
	par.Do(len(texts), cfg.Workers, func(i int) {
		p.docs[i] = segment.NewDoc(texts[i])
		terms[i] = p.docTerms(p.docs[i])
	})
	p.stats.Preprocess = tm.Stop()
	p.stats.NumDocs = len(texts)
	gaugeDocs.Set(int64(len(texts)))

	switch cfg.Method {
	case FullText:
		if cfg.Shards > 1 {
			return nil, fmt.Errorf("core: %s does not support sharded serving", cfg.Method)
		}
		p.matcher = match.NewFullText(terms)
	case LDA:
		if cfg.Shards > 1 {
			return nil, fmt.Errorf("core: %s does not support sharded serving", cfg.Method)
		}
		ldaCfg := cfg.LDA
		if ldaCfg.Seed == 0 {
			ldaCfg.Seed = cfg.Seed
		}
		m, err := match.NewLDA(terms, ldaCfg)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		p.matcher = m
	case IntentIntentMR, ContentMR, SentIntentMR:
		mrCfg := cfg.MR
		if mrCfg.Seed == 0 {
			mrCfg.Seed = cfg.Seed
		}
		if mrCfg.Workers == 0 {
			mrCfg.Workers = cfg.Workers
		}
		switch cfg.Method {
		case ContentMR:
			if mrCfg.Strategy == nil {
				mrCfg.Strategy = segment.TextTiling{}
			}
			mrCfg.ContentVectors = true
		case SentIntentMR:
			mrCfg.Strategy = segment.Sentences{}
		}
		p.mr = match.NewMR(cfg.Method.String(), p.docs, mrCfg)
		p.matcher = p.mr
		bs := p.mr.Stats()
		p.stats.Segmentation = bs.Segmentation
		p.stats.Vectorization = bs.Vectorization
		p.stats.Clustering = bs.Clustering
		p.stats.Refinement = bs.Refinement
		p.stats.Grouping = bs.Grouping
		p.stats.Indexing = bs.Indexing
		p.stats.NumSegments = bs.NumSegments
		p.stats.NumClusters = bs.NumClusters
		if cfg.Shards > 1 {
			g, err := shard.NewGroup(p.mr, cfg.Shards, uint64(mrCfg.Seed))
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			// The group re-indexed everything; drop the unsharded matcher
			// rather than hold two copies of the postings.
			p.group = g
			p.matcher = g
			p.mr = nil
		}
	default:
		return nil, fmt.Errorf("core: unknown method %d", int(cfg.Method))
	}
	return p, nil
}

// docTerms extracts a document's whole-post index terms. segment.Doc keeps
// stemmed terms; with DisableStem the raw content words are re-derived the
// way the paper's MySQL baseline indexes them.
func (p *Pipeline) docTerms(d *segment.Doc) []string {
	if p.cfg.DisableStem {
		return textproc.ContentWords(d.Text)
	}
	return d.Terms(0, d.Len())
}

// Related returns the top-k posts related to document docID (Sec 7's
// online matching). Results never include docID and arrive best first.
func (p *Pipeline) Related(docID, k int) []Result {
	return p.RelatedContext(context.Background(), docID, k)
}

// RelatedContext is Related with request-scoped tracing: when the
// context carries an obs.Trace (see obs.WithTrace — the serve layer
// attaches one per sampled or slow-captured request), the query records
// its per-stage events into it. The trace is extracted once here and
// passed down as a pointer; an untraced context adds only a context
// lookup and nil checks to the hot path (benchmark-gated at 0 extra
// allocations).
func (p *Pipeline) RelatedContext(ctx context.Context, docID, k int) []Result {
	tr := obs.TraceFrom(ctx)
	tm := spanRelated.Start()
	var out []Result
	if p.group != nil {
		out = p.group.RelatedTraced(docID, k, tr)
	} else if p.mr != nil {
		out = p.mr.MatchTraced(docID, k, tr)
	} else {
		out = p.matcher.Match(docID, k)
		if tr != nil {
			tr.Event("match", obs.N("results", int64(len(out))))
		}
	}
	tm.Stop()
	return out
}

// RelatedExplained is Related with the Eq 7–9 score decomposition: each
// result arrives with its per-intention-cluster contributions and the
// term-level products behind them (see match.Explanation). It returns
// an error for methods whose scores are not an Eq 7–9 sum (LDA).
func (p *Pipeline) RelatedExplained(docID, k int) ([]Result, []match.Explanation, error) {
	ex, ok := p.matcher.(match.Explainer)
	if !ok {
		return nil, nil, fmt.Errorf("core: %s does not support explain", p.matcher.Name())
	}
	tm := spanRelated.Start()
	out, exps := ex.MatchExplained(docID, k)
	tm.Stop()
	return out, exps, nil
}

// Method returns the matcher's name.
func (p *Pipeline) Method() string { return p.matcher.Name() }

// Stats returns offline build statistics (plus the running document
// count, which Add maintains). The returned copy is internally
// consistent even while adds are in flight.
func (p *Pipeline) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.stats
}

// NumClusters returns the intention-cluster count (0 for whole-post
// methods).
func (p *Pipeline) NumClusters() int {
	if p.group != nil {
		return p.group.NumClusters()
	}
	if p.mr == nil {
		return 0
	}
	return p.mr.NumClusters()
}

// Shards returns the serving shard count: 0 for an unsharded pipeline,
// Config.Shards otherwise.
func (p *Pipeline) Shards() int {
	if p.group == nil {
		return 0
	}
	return p.group.NumShards()
}

// ShardDocs returns the per-shard document counts, or nil for an
// unsharded pipeline.
func (p *Pipeline) ShardDocs() []int {
	if p.group == nil {
		return nil
	}
	return p.group.ShardDocs()
}

// Centroids returns the intention-cluster centroids (Fig 3), or nil for
// whole-post methods.
func (p *Pipeline) Centroids() [][]float64 {
	if p.group != nil {
		return p.group.Centroids()
	}
	if p.mr == nil {
		return nil
	}
	return p.mr.Centroids()
}

// SegmentCounts returns each document's segment count before grouping and
// after refinement (Table 3), or nils for whole-post methods. The
// returned slices are snapshots copied under the matcher's read lock
// (see match.MR.SegmentCounts): safe to retain and mutate while
// concurrent Adds grow the live counts.
func (p *Pipeline) SegmentCounts() (before, after []int) {
	if p.group != nil {
		return p.group.SegmentCounts()
	}
	if p.mr == nil { // p.mr is frozen at Build time — no lock needed
		return nil, nil
	}
	return p.mr.SegmentCounts()
}

// Add ingests one new post into an already-built intention pipeline
// without re-clustering: the post is segmented, its segments join the
// nearest existing intention clusters, and the per-cluster indices are
// updated (Sec 9.2: intentions drift slowly, so nearest-centroid
// assignment suffices between periodic rebuilds). It returns the new
// post's document id, or an error for whole-post methods, which do not
// support incremental addition.
//
// Add is safe to call concurrently with itself and with Related: the
// expensive preparation (HTML cleaning, CM annotation, segmentation,
// vectorization) runs outside every lock, and only the commit — a few
// slice appends — serializes.
func (p *Pipeline) Add(text string) (int, error) {
	return p.AddContext(context.Background(), text)
}

// AddContext is Add with request-scoped tracing: a context-carried
// obs.Trace records the prepare/commit split of this one ingestion
// (segment count after preparation, assigned id after commit), the
// per-request view of the match.add.prepare/match.add.commit spans.
func (p *Pipeline) AddContext(ctx context.Context, text string) (int, error) {
	if p.mr == nil && p.group == nil {
		return 0, fmt.Errorf("core: %s does not support incremental addition", p.matcher.Name())
	}
	tr := obs.TraceFrom(ctx)
	tm := spanAdd.Start()
	d := segment.NewDoc(text)
	var pending *match.PendingAdd
	if p.group != nil {
		pending = p.group.PrepareAdd(d)
	} else {
		pending = p.mr.PrepareAdd(d)
	}
	if tr != nil {
		tr.Event("add.prepared", obs.N("segments", int64(pending.NumSegments())))
	}
	p.mu.Lock()
	var id int
	if p.group != nil {
		id = p.group.CommitAdd(pending)
	} else {
		id = pending.Commit()
	}
	p.docs = append(p.docs, d)
	p.stats.NumDocs++
	gaugeDocs.Set(int64(p.stats.NumDocs))
	p.mu.Unlock()
	if tr != nil {
		tr.Event("add.committed", obs.N("doc_id", int64(id)))
	}
	tm.Stop()
	return id, nil
}

// Doc exposes the prepared form of a document (sentences, annotations) for
// inspection tools like cmd/segmentview and the serve layer's id
// validation. The docs slice is read under the pipeline lock (Add
// appends under the write lock); the returned *segment.Doc itself is
// immutable after construction, so it is safe to use after the lock is
// released.
func (p *Pipeline) Doc(docID int) *segment.Doc {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if docID < 0 || docID >= len(p.docs) {
		return nil
	}
	return p.docs[docID]
}

// Epoch returns the collection epoch: a counter that advances on every
// committed mutation (and on snapshot load, via epochBase). Because Eq
// 9's scoring statistics are collection-global, any mutation changes
// every document's scores — so a cached Related result is valid exactly
// as long as the epoch it was computed under is still current. Serving
// layers key their result caches by this value; see internal/cache.
// Whole-post methods (FullText, LDA) reject Add, so their epoch is
// constantly epochBase.
func (p *Pipeline) Epoch() uint64 {
	var gen uint64
	switch {
	case p.group != nil:
		gen = p.group.Generation()
	case p.mr != nil:
		gen = p.mr.Generation()
	}
	return p.epochBase + gen
}

// HasDoc reports whether docID names a document of the collection. It
// is the id-validation predicate for serving: unlike Doc it does not
// depend on the retained prepared documents, which pipelines restored
// by ReadPipeline/ReadShardDir do not carry (snapshots persist segment
// terms, not post texts).
func (p *Pipeline) HasDoc(docID int) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return docID >= 0 && docID < p.stats.NumDocs
}

// GranularityDistribution summarizes a segment-count vector into the
// percentage rows of Table 3: the share of posts with 1, 2, 3, 4, and 5+
// segments.
func GranularityDistribution(counts []int) map[string]float64 {
	if len(counts) == 0 {
		return nil
	}
	buckets := map[string]float64{}
	for _, c := range counts {
		switch {
		case c <= 1:
			buckets["1"]++
		case c == 2:
			buckets["2"]++
		case c == 3:
			buckets["3"]++
		case c == 4:
			buckets["4"]++
		default:
			buckets["5-8"]++
		}
	}
	for k := range buckets {
		buckets[k] = buckets[k] / float64(len(counts)) * 100
	}
	return buckets
}

// GranularityBuckets returns the Table 3 row labels in display order.
func GranularityBuckets() []string { return []string{"1", "2", "3", "4", "5-8"} }

// TopIDs extracts just the document ids of a result list.
func TopIDs(results []Result) []int {
	out := make([]int, len(results))
	for i, r := range results {
		out[i] = r.DocID
	}
	return out
}

// SortByID orders a result list by document id (for deterministic display).
func SortByID(results []Result) {
	sort.Slice(results, func(i, j int) bool { return results[i].DocID < results[j].DocID })
}
