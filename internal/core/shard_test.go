package core

import (
	"strings"
	"testing"

	"repro/internal/forum"
)

// Sharded pipeline coverage at the public API: Build-time validation,
// query/add equivalence with the unsharded pipeline, the shard
// accessors, and directory persistence.

func goldenTexts(t *testing.T, n int) []string {
	t.Helper()
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: n, Seed: 77})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	return texts
}

func TestShardedPipeline(t *testing.T) {
	texts := goldenTexts(t, 140)
	plain, err := Build(texts[:120], Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Build(texts[:120], Config{Seed: 9, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Shards() != 4 || plain.Shards() != 0 {
		t.Fatalf("Shards() = %d/%d, want 4/0", sharded.Shards(), plain.Shards())
	}
	sum := 0
	for _, c := range sharded.ShardDocs() {
		sum += c
	}
	if sum != 120 {
		t.Fatalf("ShardDocs sums to %d, want 120", sum)
	}
	if plain.ShardDocs() != nil {
		t.Error("unsharded ShardDocs should be nil")
	}
	if sharded.NumClusters() != plain.NumClusters() {
		t.Errorf("NumClusters %d vs %d", sharded.NumClusters(), plain.NumClusters())
	}
	check := func(stage string) {
		t.Helper()
		for d := 0; d < plain.Stats().NumDocs; d += 5 {
			want, got := plain.Related(d, 5), sharded.Related(d, 5)
			if len(want) != len(got) {
				t.Fatalf("%s doc %d: %d vs %d results", stage, d, len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s doc %d result %d: %v vs %v", stage, d, i, want[i], got[i])
				}
			}
		}
	}
	check("built")
	for _, text := range texts[120:] {
		wantID, err1 := plain.Add(text)
		gotID, err2 := sharded.Add(text)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if wantID != gotID {
			t.Fatalf("Add ids diverge: %d vs %d", wantID, gotID)
		}
	}
	check("post-add")

	// Explain mode flows through the sharded matcher too.
	res, exps, err := sharded.RelatedExplained(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(exps) {
		t.Fatalf("%d results, %d explanations", len(res), len(exps))
	}
}

func TestShardedPipelinePersistence(t *testing.T) {
	texts := goldenTexts(t, 100)
	sharded, err := Build(texts, Config{Seed: 9, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.WriteTo(&strings.Builder{}); err == nil ||
		!strings.Contains(err.Error(), "WriteShardDir") {
		t.Errorf("sharded WriteTo error = %v, want pointer to WriteShardDir", err)
	}
	plain, err := Build(texts, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.WriteShardDir(t.TempDir()); err == nil {
		t.Error("unsharded WriteShardDir should fail")
	}

	dir := t.TempDir()
	if err := sharded.WriteShardDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadShardDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Shards() != 2 || loaded.Method() != sharded.Method() {
		t.Fatalf("loaded Shards/Method = %d/%q", loaded.Shards(), loaded.Method())
	}
	for d := 0; d < 100; d += 7 {
		want, got := sharded.Related(d, 5), loaded.Related(d, 5)
		if len(want) != len(got) {
			t.Fatalf("loaded doc %d: %d vs %d results", d, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("loaded doc %d result %d: %v vs %v", d, i, want[i], got[i])
			}
		}
	}
	// Doc is not retained across a load, same contract as ReadPipeline.
	if loaded.Doc(0) != nil {
		t.Error("loaded pipeline should not retain prepared docs")
	}
	// Loaded pipelines keep accepting adds.
	if _, err := loaded.Add(texts[0]); err != nil {
		t.Fatal(err)
	}
}

func TestShardedBuildValidation(t *testing.T) {
	texts := goldenTexts(t, 30)
	if _, err := Build(texts, Config{Method: FullText, Shards: 2}); err == nil {
		t.Error("FullText with Shards should fail")
	}
	if _, err := Build(texts, Config{Method: LDA, Shards: 2}); err == nil {
		t.Error("LDA with Shards should fail")
	}
	// Shards: 1 is a valid (single-shard) sharded topology.
	p, err := Build(texts, Config{Seed: 9, Shards: 2, Method: SentIntentMR})
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 2 {
		t.Errorf("Shards() = %d", p.Shards())
	}
}
