package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/forum"
)

// TestPersistedGoldenEquivalence is the old-vs-new acceptance gate at
// the top of the stack: the golden corpus pipeline, persisted through
// every layout the repo has ever written — the compact section format,
// the legacy gob stream, and shard directories at 1, 2, and 4 shards —
// must load back and render the committed golden rankings byte for
// byte, full-precision scores included. A layout that shifted a single
// score bit anywhere below (index postings, matcher tables, shard
// routing) diffs here.
func TestPersistedGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("several full 200-post builds")
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_related.txt"))
	if err != nil {
		t.Fatalf("missing golden file (run TestRelatedGolden with -update first): %v", err)
	}
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: goldenPosts, Seed: goldenSeed})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}

	built, err := Build(texts, Config{Seed: goldenSeed})
	if err != nil {
		t.Fatal(err)
	}
	for _, layout := range []struct {
		name  string
		write func(*Pipeline, *bytes.Buffer) (int64, error)
	}{
		{"compact", func(p *Pipeline, b *bytes.Buffer) (int64, error) { return p.WriteTo(b) }},
		{"legacy-gob", func(p *Pipeline, b *bytes.Buffer) (int64, error) { return p.WriteLegacyTo(b) }},
	} {
		t.Run(layout.name, func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := layout.write(built, &buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := ReadPipeline(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got := renderRelated(loaded); got != string(golden) {
				t.Fatalf("%s round trip drifted from the golden rankings:\n--- want\n%s\n--- got\n%s", layout.name, golden, got)
			}
		})
	}

	// Shards: 1 builds unsharded (covered by the single-stream legs above
	// and the shard-package equivalence test); directories start at 2.
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("sharddir-%d", shards), func(t *testing.T) {
			p, err := Build(texts, Config{Seed: goldenSeed, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			if err := p.WriteShardDir(dir); err != nil {
				t.Fatal(err)
			}
			loaded, err := ReadShardDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if got := renderRelated(loaded); got != string(golden) {
				t.Fatalf("%d-shard directory round trip drifted from the golden rankings:\n--- want\n%s\n--- got\n%s", shards, golden, got)
			}
		})
	}
}
