package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/forum"
)

func TestPipelinePersistRoundTrip(t *testing.T) {
	texts, _ := corpusTexts(t, forum.TechSupport, 120, 61)
	p, err := Build(texts, Config{Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := p.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	loaded, err := ReadPipeline(&buf)
	if err != nil {
		t.Fatalf("ReadPipeline: %v", err)
	}
	if loaded.Method() != p.Method() {
		t.Errorf("method %q != %q", loaded.Method(), p.Method())
	}
	if loaded.Stats() != p.Stats() {
		t.Error("stats differ after round trip")
	}
	if loaded.NumClusters() != p.NumClusters() {
		t.Error("cluster count differs")
	}
	for q := 0; q < 20; q++ {
		a := p.Related(q, 5)
		b := loaded.Related(q, 5)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", q, len(a), len(b))
		}
		for i := range a {
			if a[i].DocID != b[i].DocID {
				t.Fatalf("query %d rank %d: doc %d vs %d", q, i, a[i].DocID, b[i].DocID)
			}
		}
	}
	// A loaded pipeline keeps no prepared documents.
	if loaded.Doc(0) != nil {
		t.Error("loaded pipeline should not retain documents")
	}
	// But it accepts new posts.
	id, err := loaded.Add("My printer stopped printing. I replaced the toner. What should I check?")
	if err != nil {
		t.Fatalf("Add on loaded pipeline: %v", err)
	}
	if id != 120 {
		t.Errorf("Add returned id %d, want 120", id)
	}
}

func TestPipelinePersistRejectsWholePostMethods(t *testing.T) {
	texts, _ := corpusTexts(t, forum.TechSupport, 20, 62)
	p, err := Build(texts, Config{Method: FullText})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err == nil {
		t.Fatal("FullText pipeline should not be persistable")
	}
}

func TestReadPipelineGarbage(t *testing.T) {
	if _, err := ReadPipeline(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, err := ReadPipeline(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream should fail")
	}
}
