package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/match"
	"repro/internal/shard"
)

// Pipeline persistence: the offline build (segmentation, grouping,
// indexing) is written once and reloaded by serving processes, mirroring
// the paper's offline/online split. Only the intention (MR) methods are
// persistable — FullText rebuilds in milliseconds and LDA's model is
// cheaper to retrain than to version.
//
// A loaded pipeline serves Related queries and accepts Add; it does not
// retain the prepared documents, so Doc returns nil for pre-load ids.

// WriteTo serializes a built MR pipeline: a small gob header (method,
// stats) followed by the matcher in the compact section layout. It
// implements io.WriterTo. Sharded pipelines persist as a directory
// instead — see WriteShardDir.
func (p *Pipeline) WriteTo(w io.Writer) (int64, error) {
	return p.writeTo(w, (*match.MR).WriteTo)
}

// WriteLegacyTo serializes the pipeline with the matcher in the legacy
// gob layout — byte-compatible with what WriteTo produced before the
// compact format existed. ReadPipeline loads both (it sniffs the
// matcher's magic). Retained for migration tooling and the old-vs-new
// equivalence checks; new snapshots should use WriteTo.
func (p *Pipeline) WriteLegacyTo(w io.Writer) (int64, error) {
	return p.writeTo(w, (*match.MR).WriteGobTo)
}

func (p *Pipeline) writeTo(w io.Writer, writeMR func(*match.MR, io.Writer) (int64, error)) (int64, error) {
	if p.group != nil {
		return 0, fmt.Errorf("core: sharded pipelines persist as a shard directory; use WriteShardDir")
	}
	if p.mr == nil {
		return 0, fmt.Errorf("core: %s pipelines are not persistable", p.matcher.Name())
	}
	cw := &countWriter{w: w}
	enc := gob.NewEncoder(cw)
	if err := enc.Encode(p.cfg.Method); err != nil {
		return cw.n, err
	}
	if err := enc.Encode(p.stats); err != nil {
		return cw.n, err
	}
	if _, err := writeMR(p.mr, cw); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadPipeline deserializes a pipeline written with WriteTo.
//
// The stream holds two gob values (header) followed by the matcher's own
// gob stream. A gob decoder over-reads only when its source lacks
// io.ByteReader (it then wraps the source in a bufio.Reader), so both
// decoding stages share one exactReader and each consumes precisely its
// own bytes.
func ReadPipeline(r io.Reader) (*Pipeline, error) {
	er := &exactReader{r: r}
	dec := gob.NewDecoder(er)
	var method Method
	if err := dec.Decode(&method); err != nil {
		return nil, fmt.Errorf("core: decoding pipeline header: %w", err)
	}
	var stats Stats
	if err := dec.Decode(&stats); err != nil {
		return nil, err
	}
	mr, err := match.ReadMR(er)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		cfg:       Config{Method: method},
		matcher:   mr,
		mr:        mr,
		epochBase: 1, // loading is an epoch advance; see Pipeline.Epoch
		stats:     stats,
	}, nil
}

// WriteShardDir persists a sharded pipeline into dir: the shard
// manifest (shard count, routing seed, topology) plus one file per
// shard in the plain MR codec (see internal/shard). It errors for
// unsharded pipelines, which persist as a single stream via WriteTo.
func (p *Pipeline) WriteShardDir(dir string) error {
	if p.group == nil {
		return fmt.Errorf("core: %s pipeline is not sharded; use WriteTo", p.matcher.Name())
	}
	return p.group.WriteDir(dir)
}

// ReadShardDir loads a sharded pipeline from a directory written by
// WriteShardDir. Like ReadPipeline, the loaded pipeline serves Related
// and accepts Add but does not retain the prepared documents, so Doc
// returns nil for pre-load ids. The method is recovered from the
// persisted matcher name.
func ReadShardDir(dir string) (*Pipeline, error) {
	g, err := shard.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	method := IntentIntentMR
	for m, name := range methodNames {
		if name == g.Name() {
			method = Method(m)
		}
	}
	bs := g.Stats()
	return &Pipeline{
		cfg:       Config{Method: method, Shards: g.NumShards()},
		matcher:   g,
		group:     g,
		epochBase: 1, // loading is an epoch advance; see Pipeline.Epoch
		stats: Stats{
			NumDocs:     g.NumDocs(),
			NumSegments: bs.NumSegments,
			NumClusters: bs.NumClusters,
		},
	}, nil
}

// exactReader adapts an io.Reader into an io.ByteReader so gob decoders
// sharing the stream never buffer past their own values. Wrap slow sources
// in a bufio.Reader before handing them to ReadPipeline.
type exactReader struct {
	r   io.Reader
	one [1]byte
}

func (e *exactReader) Read(p []byte) (int, error) { return e.r.Read(p) }

func (e *exactReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(e.r, e.one[:]); err != nil {
		return 0, err
	}
	return e.one[0], nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
