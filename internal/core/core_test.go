package core

import (
	"testing"

	"repro/internal/forum"
	"repro/internal/lda"
)

func corpusTexts(t testing.TB, d forum.Domain, n int, seed int64) ([]string, []forum.Post) {
	t.Helper()
	posts := forum.Generate(forum.Config{Domain: d, NumPosts: n, Seed: seed})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	return texts, posts
}

func TestBuildAllMethods(t *testing.T) {
	texts, _ := corpusTexts(t, forum.TechSupport, 80, 1)
	for _, m := range []Method{IntentIntentMR, FullText, LDA, ContentMR, SentIntentMR} {
		cfg := Config{Method: m, Seed: 2}
		if m == LDA {
			cfg.LDA = lda.Config{K: 4, Iterations: 20}
		}
		p, err := Build(texts, cfg)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if p.Method() != m.String() {
			t.Errorf("Method() = %q, want %q", p.Method(), m.String())
		}
		res := p.Related(0, 5)
		if len(res) > 5 {
			t.Errorf("%v returned %d results", m, len(res))
		}
		for _, r := range res {
			if r.DocID == 0 {
				t.Errorf("%v returned the query post", m)
			}
		}
	}
}

func TestBuildStatsPopulated(t *testing.T) {
	texts, _ := corpusTexts(t, forum.Travel, 60, 3)
	p, err := Build(texts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.NumDocs != 60 {
		t.Errorf("NumDocs = %d", s.NumDocs)
	}
	if s.NumSegments < 60 {
		t.Errorf("NumSegments = %d, want >= NumDocs", s.NumSegments)
	}
	if s.NumClusters < 1 {
		t.Errorf("NumClusters = %d", s.NumClusters)
	}
	if s.Preprocess <= 0 || s.Segmentation <= 0 {
		t.Error("timings not recorded")
	}
	if p.NumClusters() != s.NumClusters {
		t.Error("NumClusters accessor mismatch")
	}
	if len(p.Centroids()) != s.NumClusters {
		t.Error("Centroids length mismatch")
	}
}

func TestFullTextPipelineHasNoClusters(t *testing.T) {
	texts, _ := corpusTexts(t, forum.TechSupport, 30, 4)
	p, err := Build(texts, Config{Method: FullText})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumClusters() != 0 || p.Centroids() != nil {
		t.Error("FullText should expose no clusters")
	}
	b, a := p.SegmentCounts()
	if b != nil || a != nil {
		t.Error("FullText should expose no segment counts")
	}
}

func TestSegmentCountsRefinement(t *testing.T) {
	texts, _ := corpusTexts(t, forum.TechSupport, 80, 5)
	p, err := Build(texts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	before, after := p.SegmentCounts()
	if len(before) != 80 || len(after) != 80 {
		t.Fatal("segment count vectors wrong length")
	}
	for i := range before {
		if after[i] > before[i] {
			t.Errorf("doc %d gained segments in refinement", i)
		}
	}
}

func TestIntentIntentBeatsFullTextEndToEnd(t *testing.T) {
	// The Table 4 headline via the public API.
	texts, posts := corpusTexts(t, forum.Travel, 250, 6)
	intent, err := Build(texts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(texts, Config{Method: FullText})
	if err != nil {
		t.Fatal(err)
	}
	var pi, pf float64
	const queries = 50
	for q := 0; q < queries; q++ {
		rel := forum.RelevantSet(posts, posts[q])
		pi += precisionOf(intent.Related(q, 5), rel)
		pf += precisionOf(full.Related(q, 5), rel)
	}
	t.Logf("IntentIntent=%.3f FullText=%.3f", pi/queries, pf/queries)
	if pi <= pf {
		t.Errorf("IntentIntent-MR %.3f should beat FullText %.3f", pi/queries, pf/queries)
	}
}

func precisionOf(res []Result, rel map[int]bool) float64 {
	if len(res) == 0 {
		return 0
	}
	hits := 0
	for _, r := range res {
		if rel[r.DocID] {
			hits++
		}
	}
	return float64(hits) / float64(len(res))
}

func TestGranularityDistribution(t *testing.T) {
	dist := GranularityDistribution([]int{1, 1, 2, 3, 4, 5, 8})
	var sum float64
	for _, pct := range dist {
		sum += pct
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("distribution sums to %v", sum)
	}
	if dist["1"] < dist["2"] {
		t.Errorf("bucket 1 should be largest: %v", dist)
	}
	if GranularityDistribution(nil) != nil {
		t.Error("empty input should give nil")
	}
	if len(GranularityBuckets()) != 5 {
		t.Error("bucket labels wrong")
	}
}

func TestHelpers(t *testing.T) {
	res := []Result{{DocID: 9, Score: 3}, {DocID: 2, Score: 1}}
	ids := TopIDs(res)
	if ids[0] != 9 || ids[1] != 2 {
		t.Errorf("TopIDs = %v", ids)
	}
	SortByID(res)
	if res[0].DocID != 2 {
		t.Error("SortByID failed")
	}
}

func TestBuildHTMLInput(t *testing.T) {
	texts := []string{
		"<p>I have an HP printer.</p><p>It does not print anymore. Do you know a fix?</p>",
		"<div>My printer shows an error. I replaced the toner. What should I try?</div>",
		"Plain post about a hotel pool. The pool was warm. Would you recommend it for kids?",
	}
	p, err := Build(texts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Doc(0) == nil || p.Doc(0).Len() < 2 {
		t.Error("HTML post not split into sentences")
	}
	if p.Doc(-1) != nil || p.Doc(99) != nil {
		t.Error("out-of-range Doc should be nil")
	}
}

func TestBuildUnknownMethod(t *testing.T) {
	if _, err := Build([]string{"x."}, Config{Method: Method(99)}); err == nil {
		t.Fatal("unknown method should error")
	}
}

func TestMethodString(t *testing.T) {
	if IntentIntentMR.String() != "IntentIntent-MR" || Method(99).String() != "?" {
		t.Error("Method.String mismatch")
	}
}

func TestHealthDomainOutOfSample(t *testing.T) {
	// The Health domain is not part of the paper's evaluation; it checks
	// that nothing in the pipeline is fit to the three canonical domains.
	texts, posts := corpusTexts(t, forum.Health, 200, 9)
	intent, err := Build(texts, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(texts, Config{Method: FullText, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var pi, pf float64
	const queries = 40
	for q := 0; q < queries; q++ {
		rel := forum.RelevantSet(posts, posts[q])
		pi += precisionOf(intent.Related(q, 5), rel)
		pf += precisionOf(full.Related(q, 5), rel)
	}
	t.Logf("Health: IntentIntent=%.3f FullText=%.3f", pi/queries, pf/queries)
	if pi/queries < 0.2 {
		t.Errorf("IntentIntent collapsed on out-of-sample domain: %.3f", pi/queries)
	}
}
