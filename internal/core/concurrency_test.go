package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/forum"
)

// Run these under -race: they exercise the documented serving contract —
// Related, Add, Stats, and Doc interleaving freely on one Pipeline.

func TestPipelineConcurrentAddAndRelated(t *testing.T) {
	const basePosts, extraPosts, readers = 60, 16, 4
	for _, method := range []Method{IntentIntentMR, ContentMR, SentIntentMR} {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: basePosts + extraPosts, Seed: 81})
			texts := make([]string, len(posts))
			for i, p := range posts {
				texts[i] = p.Text
			}
			p, err := Build(texts[:basePosts], Config{Method: method, Seed: 81})
			if err != nil {
				t.Fatal(err)
			}

			stop := make(chan struct{})
			var rg sync.WaitGroup
			for r := 0; r < readers; r++ {
				rg.Add(1)
				go func(r int) {
					defer rg.Done()
					for q := r; ; q = (q + 7) % basePosts {
						select {
						case <-stop:
							return
						default:
						}
						p.Related(q, 5)
						p.Stats()
						p.Doc(q)
					}
				}(r)
			}
			var ag sync.WaitGroup
			for w := 0; w < 2; w++ {
				ag.Add(1)
				go func(w int) {
					defer ag.Done()
					for i := w; i < extraPosts; i += 2 {
						if _, err := p.Add(texts[basePosts+i]); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			ag.Wait()
			close(stop)
			rg.Wait()

			if got := p.Stats().NumDocs; got != basePosts+extraPosts {
				t.Fatalf("Stats().NumDocs = %d, want %d", got, basePosts+extraPosts)
			}
			// Doc and the matcher agree on every id, including added ones.
			for id := 0; id < basePosts+extraPosts; id++ {
				if p.Doc(id) == nil {
					t.Fatalf("Doc(%d) = nil after concurrent adds", id)
				}
			}
			if p.Doc(basePosts+extraPosts) != nil {
				t.Fatal("Doc past the end is non-nil")
			}
		})
	}
}

func TestPipelineStatsConsistentAfterConcurrentAdds(t *testing.T) {
	posts := forum.Generate(forum.Config{Domain: forum.Travel, NumPosts: 50, Seed: 82})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	p, err := Build(texts[:30], Config{Seed: 82})
	if err != nil {
		t.Fatal(err)
	}
	segsBefore := p.Stats().NumSegments

	var wg sync.WaitGroup
	ids := make([]int, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := p.Add(texts[30+i])
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()

	st := p.Stats()
	if st.NumDocs != 50 {
		t.Errorf("NumDocs = %d, want 50", st.NumDocs)
	}
	if st.NumSegments < segsBefore {
		t.Errorf("NumSegments shrank: %d -> %d", segsBefore, st.NumSegments)
	}
	// Ids are dense and unique, and each one resolves to a document whose
	// text matches what was added under that id.
	seen := map[int]bool{}
	for i, id := range ids {
		if id < 30 || id >= 50 || seen[id] {
			t.Fatalf("bad/duplicate id %d (all: %v)", id, ids)
		}
		seen[id] = true
		d := p.Doc(id)
		if d == nil {
			t.Fatalf("Doc(%d) = nil", id)
		}
		if d.Text != texts[30+i] {
			t.Errorf("Doc(%d) holds the wrong document for add #%d", id, i)
		}
	}
}

func TestPipelineAddUnsupportedMethodsConcurrentSafe(t *testing.T) {
	// Whole-post methods refuse Add; the refusal itself must be
	// race-free against Related.
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 40, Seed: 83})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	p, err := Build(texts, Config{Method: FullText})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				if _, err := p.Add("new post"); err == nil {
					t.Error("FullText Add succeeded, want error")
				}
				return
			}
			for q := 0; q < len(texts); q++ {
				p.Related(q, 3)
			}
		}(g)
	}
	wg.Wait()
}

// TestSegmentCountsSnapshotIsolation is the regression test for the
// shared-slice audit: SegmentCounts used to hand out aliases of the
// matcher's live per-document count slices, so a caller could observe
// (or, by mutating, corrupt) state that concurrent Adds were appending
// to. The contract now is snapshot semantics: the returned slices are
// copies taken under the matcher's read lock, safe to retain and even
// mutate while the pipeline keeps growing.
func TestSegmentCountsSnapshotIsolation(t *testing.T) {
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 70, Seed: 85})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	const base = 40
	p, err := Build(texts[:base], Config{Seed: 85})
	if err != nil {
		t.Fatal(err)
	}

	// Mutating a returned snapshot must not leak into the pipeline.
	before, after := p.SegmentCounts()
	if len(before) != base || len(after) != base {
		t.Fatalf("snapshot sizes %d/%d, want %d", len(before), len(after), base)
	}
	wantB := append([]int(nil), before...)
	wantA := append([]int(nil), after...)
	for i := range before {
		before[i] = -1000
		after[i] = -1000
	}
	b2, a2 := p.SegmentCounts()
	for i := range b2 {
		if b2[i] != wantB[i] || a2[i] != wantA[i] {
			t.Fatalf("snapshot aliased live state: mutation visible at %d (%d/%d)", i, b2[i], a2[i])
		}
	}

	// Snapshots taken while Adds land stay internally consistent: run
	// under -race, every element positive, length never exceeding the
	// number of committed documents at observation time.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				b, a := p.SegmentCounts()
				if len(b) != len(a) {
					t.Errorf("torn snapshot: len(before)=%d len(after)=%d", len(b), len(a))
					return
				}
				if len(b) < base || len(b) > len(texts) {
					t.Errorf("snapshot length %d outside [%d,%d]", len(b), base, len(texts))
					return
				}
				for i := range b {
					if b[i] <= 0 || a[i] <= 0 {
						t.Errorf("non-positive segment count at %d: %d/%d", i, b[i], a[i])
						return
					}
				}
				// Doc must resolve every id the snapshot covers.
				if p.Doc(len(b)-1) == nil {
					t.Errorf("Doc(%d) nil while snapshot has %d entries", len(b)-1, len(b))
					return
				}
			}
		}()
	}
	for i := base; i < len(texts); i++ {
		if _, err := p.Add(texts[i]); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	readers.Wait()

	if b, _ := p.SegmentCounts(); len(b) != len(texts) {
		t.Fatalf("final snapshot has %d entries, want %d", len(b), len(texts))
	}
}

func ExamplePipeline_concurrent() {
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 40, Seed: 84})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	p, _ := Build(texts[:30], Config{Seed: 84})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer: stream in new posts
		defer wg.Done()
		for _, t := range texts[30:] {
			p.Add(t)
		}
	}()
	go func() { // reader: serve queries throughout
		defer wg.Done()
		for q := 0; q < 30; q++ {
			p.Related(q, 5)
		}
	}()
	wg.Wait()
	fmt.Println(p.Stats().NumDocs)
	// Output: 40
}
