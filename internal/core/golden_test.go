package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/forum"
	"repro/internal/index"
)

// updateGolden rewrites the checked-in golden file instead of comparing
// against it: go test ./internal/core/ -run TestRelatedGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

const (
	goldenPosts   = 200
	goldenSeed    = 1234
	goldenQueries = 25
	goldenK       = 5
)

// goldenRender builds a pipeline over the fixed gencorpus-style corpus
// and renders the top-k Related results for the fixed query set, scores
// at full float64 round-trip precision. shards 0 builds unsharded;
// every shard count must render the identical bytes (the scatter-gather
// equivalence guarantee, end to end through the public API).
func goldenRender(t *testing.T, workers, shards int) string {
	t.Helper()
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: goldenPosts, Seed: goldenSeed})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	p, err := Build(texts, Config{Seed: goldenSeed, Workers: workers, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return renderRelated(p)
}

// renderRelated renders the fixed golden query set against an
// already-built (or loaded) pipeline — shared between the build-path
// golden test and the persistence round-trip golden test.
func renderRelated(p *Pipeline) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Related top-%d, %s corpus n=%d seed=%d, method %s\n",
		goldenK, "tech", goldenPosts, goldenSeed, p.Method())
	for doc := 0; doc < goldenQueries; doc++ {
		fmt.Fprintf(&b, "%d:", doc)
		for _, r := range p.Related(doc, goldenK) {
			b.WriteString(" ")
			b.WriteString(strconv.Itoa(r.DocID))
			b.WriteString("=")
			b.WriteString(strconv.FormatFloat(r.Score, 'g', -1, 64))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestRelatedGolden is the end-to-end determinism gate: the full offline
// build (segmentation → vectors → clustering → refinement → indexing)
// plus the online ranking must produce byte-identical output run over
// run AND across worker counts — the property the PR 2 parallel build
// promised ("results are identical for any worker count") and the
// persistence layer depends on. The rendered results are also pinned to
// a committed golden file so an unintended ranking change in any layer
// below shows up as a diff, not as a silently shifted experiment table.
func TestRelatedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("several full 200-post builds")
	}
	serial := goldenRender(t, 1, 0)
	parallel := goldenRender(t, 8, 0)
	if serial != parallel {
		t.Fatalf("build is not worker-count deterministic:\nworkers=1:\n%s\nworkers=8:\n%s", serial, parallel)
	}
	// Shard-count invariance: the same golden bytes must come out of the
	// sharded serving topology at every shard count — not merely the same
	// rankings, the same full-precision scores.
	for _, shards := range []int{2, 4} {
		sharded := goldenRender(t, 8, shards)
		if sharded != serial {
			t.Fatalf("sharded serving at %d shards drifted from unsharded output:\n--- unsharded\n%s\n--- %d shards\n%s",
				shards, serial, shards, sharded)
		}
	}

	// Max-score pruning forced on (the 200-post corpus sits below the
	// default gate): the committed golden bytes — full-precision scores
	// included — must come out of the pruned query path too, unsharded
	// and sharded. This is the strongest form of the rank-equivalence
	// claim: not merely the same ranking, the same float64 bit patterns
	// the exhaustive scan has always produced.
	func() {
		old := index.PruneMinUnits
		index.PruneMinUnits = 1
		defer func() { index.PruneMinUnits = old }()
		if pruned := goldenRender(t, 8, 0); pruned != serial {
			t.Fatalf("pruned query path drifted from exhaustive golden output:\n--- exhaustive\n%s\n--- pruned\n%s", serial, pruned)
		}
		if pruned := goldenRender(t, 8, 4); pruned != serial {
			t.Fatalf("pruned sharded serving drifted from exhaustive golden output:\n--- exhaustive\n%s\n--- pruned, 4 shards\n%s", serial, pruned)
		}
	}()

	path := filepath.Join("testdata", "golden_related.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(serial), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(want) != serial {
		t.Fatalf("Related output drifted from %s (intentional? rerun with -update):\n--- want\n%s\n--- got\n%s", path, want, serial)
	}
}
