package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
)

// ExampleBuild shows the minimal end-to-end flow: build the intention
// pipeline over a small collection and query it.
func ExampleBuild() {
	posts := []string{
		"I have an HP printer with a duplex unit. It does not print anymore. " +
			"I replaced the toner last week. Do you know what causes the jam?",
		"My HP printer shows an ink system failure. I cleaned the print head " +
			"yesterday. What should I try next to stop the failure?",
		"The hotel pool faced the beach. Breakfast had fresh fruit. " +
			"Would you recommend the resort for families?",
		"My printer jams on every duplex job. I searched the forum but found " +
			"nothing. How do I stop the jam from coming back?",
	}
	p, err := core.Build(posts, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	// On a real collection, p.Related(0, 5) returns the top-5 related
	// posts. (Probabilistic IDF needs more than a handful of documents to
	// produce meaningful scores — see examples/quickstart for a fuller
	// demonstration.)
	fmt.Println(p.Method(), p.Stats().NumDocs, "posts")
	// Output:
	// IntentIntent-MR 4 posts
}

// ExamplePipeline_Add folds a new post into a built pipeline without
// re-clustering.
func ExamplePipeline_Add() {
	posts := []string{
		"I have a laptop that overheats. I cleaned the fan. Why does it still shut down?",
		"My laptop shuts down after gaming. I replaced the thermal paste. What else can I check?",
		"The hotel room had a balcony. The staff were friendly. Would you stay again?",
	}
	p, err := core.Build(posts, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	id, err := p.Add("My laptop gets hot near the fan. I bought a cooling pad. Should I replace the heat sink?")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("new post id:", id)
	// Output:
	// new post id: 3
}
