package core

import (
	"math"
	"testing"

	"repro/internal/forum"
)

// TestExplainReconcilesOnGoldenCorpus is the explain-mode acceptance
// gate: over the same 200-post corpus the golden ranking test pins, for
// EVERY document's top-k results, the sum of the per-cluster explain
// contributions must equal the served score within 1e-9 — and within
// each cluster, the per-term Eq 7–9 products must sum to the cluster's
// contribution to the same tolerance. The explained result list itself
// must be identical to the unexplained one.
func TestExplainReconcilesOnGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full 200-post build plus 200 explained queries")
	}
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: goldenPosts, Seed: goldenSeed})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	p, err := Build(texts, Config{Seed: goldenSeed})
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-9
	explained := 0
	for doc := 0; doc < goldenPosts; doc++ {
		want := p.Related(doc, goldenK)
		got, exps, err := p.RelatedExplained(doc, goldenK)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("doc %d: explained returned %d results, plain %d", doc, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("doc %d result %d: explained %+v != plain %+v", doc, i, got[i], want[i])
			}
			exp := exps[i]
			var clusterSum float64
			for _, c := range exp.Clusters {
				clusterSum += c.Score
				var termSum float64
				for _, tc := range c.Terms {
					termSum += tc.Contribution
				}
				if d := math.Abs(termSum - c.Score); d > tol {
					t.Fatalf("doc %d → %d cluster %d: term sum %v vs cluster score %v (Δ %g)",
						doc, exp.DocID, c.Cluster, termSum, c.Score, d)
				}
			}
			if d := math.Abs(clusterSum - exp.Score); d > tol {
				t.Fatalf("doc %d → %d: cluster sum %v vs served score %v (Δ %g)",
					doc, exp.DocID, clusterSum, exp.Score, d)
			}
			explained++
		}
	}
	if explained == 0 {
		t.Fatal("no results were explained")
	}
	t.Logf("reconciled %d explained results across %d queries", explained, goldenPosts)
}

// TestExplainUnsupportedMethod pins the error contract for matchers
// whose scores are not an Eq 7–9 sum.
func TestExplainUnsupportedMethod(t *testing.T) {
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 30, Seed: 5})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	p, err := Build(texts, Config{Method: LDA, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.RelatedExplained(0, 5); err == nil {
		t.Fatal("LDA RelatedExplained must error")
	}

	// FullText, by contrast, explains over its single whole-post index.
	ft, err := Build(texts, Config{Method: FullText, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, exps, err := ft.RelatedExplained(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || len(exps) != len(res) {
		t.Fatalf("FullText explain: %d results, %d explanations", len(res), len(exps))
	}
}
