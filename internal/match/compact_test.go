package match

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/forum"
	"repro/internal/secfile"
)

// mrSectionOrder is the fixed table order appendCompactMR writes.
var mrSectionOrder = []string{"meta", "dict", "dseg", "udoc", "sgct", "cent", "cidx"}

func smallMatcher(t testing.TB) *MR {
	t.Helper()
	tc := buildCorpus(t, forum.TechSupport, 40, 61)
	return NewMR("IntentIntent-MR", tc.docs, MRConfig{Seed: 7})
}

func writeMR(t *testing.T, mr *MR, write func(*MR, io.Writer) (int64, error)) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := write(mr, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMRCompactByteIdentical pins the determinism property of the
// compact matcher layout: repeated writes of one matcher are identical,
// and write → read → re-write reproduces the byte string exactly.
func TestMRCompactByteIdentical(t *testing.T) {
	mr := smallMatcher(t)
	first := writeMR(t, mr, (*MR).WriteTo)
	if again := writeMR(t, mr, (*MR).WriteTo); !bytes.Equal(first, again) {
		t.Fatal("two writes of the same matcher differ")
	}
	loaded, err := ReadMR(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if second := writeMR(t, loaded, (*MR).WriteTo); !bytes.Equal(first, second) {
		t.Fatalf("re-written matcher differs (%d vs %d bytes)", len(first), len(second))
	}
}

// TestMRLegacyCompactEquivalent loads the same matcher from its legacy
// gob stream and its compact file and requires the two results to be
// the same matcher, state for state: equal tables, and every cluster
// index canonicalizing to identical compact bytes. Score equality then
// follows structurally rather than sampled query by query.
func TestMRLegacyCompactEquivalent(t *testing.T) {
	mr := smallMatcher(t)
	fromLegacy, err := ReadMR(bytes.NewReader(writeMR(t, mr, (*MR).WriteGobTo)))
	if err != nil {
		t.Fatalf("legacy load: %v", err)
	}
	fromCompact, err := ReadMR(bytes.NewReader(writeMR(t, mr, (*MR).WriteTo)))
	if err != nil {
		t.Fatalf("compact load: %v", err)
	}
	if fromLegacy.name != fromCompact.name || fromLegacy.cfg != fromCompact.cfg {
		t.Error("name/config differ between layouts")
	}
	if !reflect.DeepEqual(fromLegacy.unitDoc, fromCompact.unitDoc) {
		t.Error("unit ownership differs between layouts")
	}
	if !reflect.DeepEqual(fromLegacy.before, fromCompact.before) ||
		!reflect.DeepEqual(fromLegacy.after, fromCompact.after) {
		t.Error("segment accounting differs between layouts")
	}
	if !reflect.DeepEqual(fromLegacy.centroids, fromCompact.centroids) {
		t.Error("centroids differ between layouts")
	}
	if !reflect.DeepEqual(fromLegacy.docSegs, fromCompact.docSegs) {
		t.Error("per-document segments differ between layouts")
	}
	if fromLegacy.stats != fromCompact.stats {
		t.Error("build stats differ between layouts")
	}
	if len(fromLegacy.clusters) != len(fromCompact.clusters) {
		t.Fatalf("cluster count %d vs %d", len(fromLegacy.clusters), len(fromCompact.clusters))
	}
	for c := range fromLegacy.clusters {
		var a, b bytes.Buffer
		if _, err := fromLegacy.clusters[c].WriteTo(&a); err != nil {
			t.Fatal(err)
		}
		if _, err := fromCompact.clusters[c].WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("cluster %d canonical bytes differ between layouts", c)
		}
	}
}

// TestReadMRRejectsInvariantBreaks mutates a freshly built matcher into
// every cross-table inconsistency the query path depends on not having,
// writes it through BOTH layouts, and requires each load to fail with a
// descriptive error — the persistence layer's contract that a snapshot
// which would misrank or panic at query time never installs.
func TestReadMRRejectsInvariantBreaks(t *testing.T) {
	// pickSeg finds a document that actually has segments to corrupt.
	pickSeg := func(mr *MR) (int, docSeg) {
		for d, segs := range mr.docSegs {
			if len(segs) > 0 {
				return d, segs[0]
			}
		}
		t.Fatal("matcher has no segments")
		return 0, docSeg{}
	}
	cases := []struct {
		name    string
		mutate  func(mr *MR)
		wantSub string
	}{
		{
			name: "after count disagrees with segments",
			mutate: func(mr *MR) {
				d, _ := pickSeg(mr)
				mr.after[d]++
			},
			wantSub: "refined segments but carries",
		},
		{
			name: "ownership table disagrees with segments",
			mutate: func(mr *MR) {
				d, s := pickSeg(mr)
				mr.unitDoc[s.cluster][s.unit] = (d + 1) % len(mr.docSegs)
			},
			wantSub: "ownership table says",
		},
		{
			name: "ownership table wrong cluster count",
			mutate: func(mr *MR) {
				mr.unitDoc = append(mr.unitDoc, []int{})
			},
			wantSub: "ownership table covers",
		},
		{
			name: "ownership table wrong unit count",
			mutate: func(mr *MR) {
				mr.unitDoc[0] = append(mr.unitDoc[0], 0)
			},
			wantSub: "ownership table has",
		},
		{
			name: "segment cluster out of range",
			mutate: func(mr *MR) {
				d, _ := pickSeg(mr)
				mr.docSegs[d][0].cluster = len(mr.clusters)
			},
			wantSub: "out of range",
		},
		{
			name: "owner document out of range",
			mutate: func(mr *MR) {
				mr.unitDoc[0][0] = len(mr.docSegs)
			},
			wantSub: "owned by doc",
		},
	}
	layouts := []struct {
		name  string
		write func(*MR, io.Writer) (int64, error)
	}{
		{"compact", (*MR).WriteTo},
		{"gob", (*MR).WriteGobTo},
	}
	for _, tc := range cases {
		for _, layout := range layouts {
			t.Run(tc.name+"/"+layout.name, func(t *testing.T) {
				mr := smallMatcher(t)
				tc.mutate(mr)
				data := writeMR(t, mr, layout.write)
				if _, err := ReadMR(bytes.NewReader(data)); err == nil {
					t.Fatal("invariant-breaking snapshot loaded without error")
				} else if !strings.Contains(err.Error(), tc.wantSub) {
					t.Fatalf("error %q does not mention %q", err, tc.wantSub)
				}
			})
		}
	}
}

// rebuildMRSections re-encodes a valid compact matcher file with an
// edit applied to its section list — the container-level corruption
// helper for defects the encoder cannot be talked into writing.
func rebuildMRSections(t *testing.T, valid []byte, edit func(secs []secfile.Section) []secfile.Section) []byte {
	t.Helper()
	f, err := secfile.Decode(valid, CompactMRMagic, compactMRVersion)
	if err != nil {
		t.Fatal(err)
	}
	secs := make([]secfile.Section, 0, len(mrSectionOrder))
	for _, tag := range mrSectionOrder {
		data, err := f.Section(tag)
		if err != nil {
			t.Fatal(err)
		}
		secs = append(secs, secfile.Section{Tag: tag, Data: data})
	}
	var buf appendBuffer
	if _, err := secfile.Encode(&buf, CompactMRMagic, compactMRVersion, edit(secs)); err != nil {
		t.Fatal(err)
	}
	return buf.b
}

func TestReadMRCompactNegativePaths(t *testing.T) {
	replace := func(valid []byte, tag string, payload []byte) func(*testing.T) []byte {
		return func(t *testing.T) []byte {
			return rebuildMRSections(t, valid, func(secs []secfile.Section) []secfile.Section {
				for i := range secs {
					if secs[i].Tag == tag {
						secs[i].Data = payload
					}
				}
				return secs
			})
		}
	}
	valid := writeMR(t, smallMatcher(t), (*MR).WriteTo)
	cases := []struct {
		name    string
		data    func(t *testing.T) []byte
		wantSub string
	}{
		{
			name:    "truncated container",
			data:    func(t *testing.T) []byte { return valid[:len(valid)-30] },
			wantSub: "truncated",
		},
		{
			name:    "trailing garbage",
			data:    func(t *testing.T) []byte { return append(append([]byte(nil), valid...), "junk"...) },
			wantSub: "trailing bytes",
		},
		{
			name: "future version",
			data: func(t *testing.T) []byte {
				data := append([]byte(nil), valid...)
				data[4], data[5] = 0xFF, 0xFF
				return data
			},
			wantSub: "unsupported RFCM version",
		},
		{
			name: "payload bit flip",
			data: func(t *testing.T) []byte {
				data := append([]byte(nil), valid...)
				data[len(data)-1] ^= 0x40
				return data
			},
			wantSub: "checksum mismatch",
		},
		{
			name:    "meta not JSON",
			data:    replace(valid, "meta", []byte("{truncated")),
			wantSub: "decoding meta",
		},
		{
			name: "missing section",
			data: func(t *testing.T) []byte {
				return rebuildMRSections(t, valid, func(secs []secfile.Section) []secfile.Section {
					out := secs[:0]
					for _, s := range secs {
						if s.Tag != "sgct" {
							out = append(out, s)
						}
					}
					return out
				})
			},
			wantSub: `missing section "sgct"`,
		},
		{
			name:    "dictionary trailing bytes",
			data:    replace(valid, "dict", append(secfile.AppendStringTable(nil, []string{"x"}), 0x01)),
			wantSub: "trailing bytes in term dictionary",
		},
		{
			name:    "segment section truncated",
			data:    replace(valid, "dseg", secfile.AppendUvarint(nil, 3)),
			wantSub: "segment count",
		},
		{
			name:    "cluster section truncated",
			data:    replace(valid, "cidx", secfile.AppendUvarint(secfile.AppendUvarint(nil, 1), 500)),
			wantSub: "index truncated",
		},
		{
			name: "centroid column short",
			data: replace(valid, "cent",
				secfile.AppendUvarint(secfile.AppendUvarint(nil, 2), 4)),
			wantSub: "centroid column",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadMR(bytes.NewReader(tc.data(t))); err == nil {
				t.Fatal("corrupt matcher file loaded without error")
			} else if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestReadMRTrailingGarbageBothLayouts covers the reader contract at
// the stream level: the source is consumed to EOF and surplus bytes
// after a valid matcher fail the load in either layout. Truncations of
// either layout fail too.
func TestReadMRTrailingGarbageBothLayouts(t *testing.T) {
	mr := smallMatcher(t)
	for _, layout := range []struct {
		name  string
		write func(*MR, io.Writer) (int64, error)
	}{
		{"compact", (*MR).WriteTo},
		{"gob", (*MR).WriteGobTo},
	} {
		valid := writeMR(t, mr, layout.write)
		t.Run(layout.name+"/trailing", func(t *testing.T) {
			data := append(append([]byte(nil), valid...), "a second matcher, say"...)
			if _, err := ReadMR(bytes.NewReader(data)); err == nil {
				t.Fatal("trailing bytes accepted")
			} else if !strings.Contains(err.Error(), "trailing bytes") {
				t.Fatalf("error %q does not mention trailing bytes", err)
			}
		})
		t.Run(layout.name+"/truncated", func(t *testing.T) {
			if _, err := ReadMR(bytes.NewReader(valid[:len(valid)*2/3])); err == nil {
				t.Fatal("truncated stream accepted")
			}
		})
	}
}
