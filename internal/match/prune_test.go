package match

import (
	"math"
	"testing"

	"repro/internal/forum"
	"repro/internal/index"
)

// withPruneGate forces the index layer's max-score gate on (or off) for
// one test, restoring the default on cleanup.
func withPruneGate(t *testing.T, minUnits int) {
	t.Helper()
	old := index.PruneMinUnits
	index.PruneMinUnits = minUnits
	t.Cleanup(func() { index.PruneMinUnits = old })
}

// TestMatchPrunedEquivalence is the matcher-level half of the pruning
// equivalence proof: the full Algorithm 1 + 2 ranking with the
// max-score scan engaged on every cluster probe must be bit-identical —
// documents, order, float scores — to the exhaustive ranking, across
// configuration variants (threshold selection reads list heads, so it
// is sensitive to any list perturbation) and across incremental adds.
func TestMatchPrunedEquivalence(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 200, 9)
	configs := []struct {
		name string
		cfg  MRConfig
	}{
		{"default", MRConfig{Seed: 7}},
		{"threshold", MRConfig{Seed: 7, ScoreThreshold: 0.3}},
		{"normalized", MRConfig{Seed: 7, NormalizeLists: true}},
	}
	for _, cv := range configs {
		t.Run(cv.name, func(t *testing.T) {
			mr := NewMR("MR", tc.docs, cv.cfg)
			for _, k := range []int{1, 5, 20} {
				for d := 0; d < mr.NumDocs(); d += 3 {
					withGate := func(min int) []Result {
						old := index.PruneMinUnits
						index.PruneMinUnits = min
						defer func() { index.PruneMinUnits = old }()
						return mr.Match(d, k)
					}
					want := withGate(math.MaxInt) // exhaustive on every cluster
					got := withGate(1)            // pruned on every cluster
					if len(want) != len(got) {
						t.Fatalf("doc %d k=%d: %d exhaustive vs %d pruned results", d, k, len(want), len(got))
					}
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("doc %d k=%d result %d: exhaustive %v != pruned %v", d, k, i, want[i], got[i])
						}
					}
				}
			}
		})
	}
}

// TestMatchExplainedPrunedReconciles pins the satellite requirement
// that explain mode is pruning-proof: explanations always score
// exhaustively through index.Explain, so with the pruned scan serving
// the ranking, each served score must still equal its explanation's
// cluster-contribution sum within 1e-9 — and the served score itself
// must be the bit-exact exhaustive score (checked against the gate-off
// ranking above; here we check the reconciliation that DESIGN.md
// promises for /related?explain).
func TestMatchExplainedPrunedReconciles(t *testing.T) {
	withPruneGate(t, 1)
	tc := buildCorpus(t, forum.TechSupport, 160, 4)
	mr := NewMR("MR", tc.docs, MRConfig{Seed: 7})
	for d := 0; d < mr.NumDocs(); d += 5 {
		res, exps := mr.MatchExplained(d, 5)
		served := mr.Match(d, 5)
		if len(res) != len(served) {
			t.Fatalf("doc %d: explained %d results, served %d", d, len(res), len(served))
		}
		for i := range res {
			if res[i] != served[i] {
				t.Fatalf("doc %d result %d: explained ranking %v != served %v", d, i, res[i], served[i])
			}
			var sum float64
			for _, c := range exps[i].Clusters {
				sum += c.Score
			}
			if math.Abs(sum-res[i].Score) > 1e-9 {
				t.Errorf("doc %d result %d: cluster contributions sum %g, served score %g", d, i, sum, res[i].Score)
			}
		}
	}
}
