package match

import (
	"fmt"

	"repro/internal/index"
)

// Split partitions a built matcher's documents into n independent shard
// matchers: shard s receives every document d with route(d) == s, its
// refined segments re-indexed into per-shard cluster indices attached
// to the shared collection-statistics pools stats (one pool per
// intention cluster, len(stats) == NumClusters). Because every shard
// scores against the pooled Eq 9 N and n and the pooled NU average, and
// because re-adding a segment's terms recomputes the same sorted-order
// Eq 7 denominator the original build did, a shard's scores are
// bit-identical to the unsharded matcher's for the same (query, result)
// pair — the equivalence the sharded serving layer is built on.
//
// Documents are walked in ascending global id order, so shard-local
// document ids (and therefore per-cluster unit ids) ascend with global
// ids; the caller reconstructs the global↔local mapping by replaying
// route over 0..NumDocs-1. Clustering is not re-run: shards share the
// source's frozen centroids, configuration, and term slices, and each
// carries a copy of the source's BuildStats. The source matcher is only
// read (under its read lock) and remains fully usable; it shares no
// index state with the shards.
func (mr *MR) Split(n int, route func(doc int) int, stats []*index.GlobalStats) ([]*MR, error) {
	if n < 1 {
		return nil, fmt.Errorf("match: cannot split into %d shards", n)
	}
	mr.mu.RLock()
	defer mr.mu.RUnlock()
	k := len(mr.clusters)
	if len(stats) != k {
		return nil, fmt.Errorf("match: %d stats pools for %d clusters", len(stats), k)
	}
	shards := make([]*MR, n)
	for s := range shards {
		sh := &MR{
			name:      mr.name,
			cfg:       mr.cfg,
			clusters:  make([]*index.Index, k),
			unitDoc:   make([][]int, k),
			centroids: mr.centroids,
			stats:     mr.stats,
		}
		for c := range sh.clusters {
			sh.clusters[c] = index.New()
			sh.clusters[c].AttachStats(stats[c])
		}
		shards[s] = sh
	}
	for d, segs := range mr.docSegs {
		s := route(d)
		if s < 0 || s >= n {
			return nil, fmt.Errorf("match: route(%d) = %d out of [0, %d)", d, s, n)
		}
		sh := shards[s]
		local := len(sh.docSegs)
		sh.docSegs = append(sh.docSegs, nil)
		for _, seg := range segs {
			// Re-adding the identical term slice reproduces the original
			// unit's LogTF postings and Eq 7 denominator exactly (Add sums
			// in sorted term order), and folds the unit into the cluster's
			// stats pool.
			unit := sh.clusters[seg.cluster].Add(seg.terms)
			sh.unitDoc[seg.cluster] = append(sh.unitDoc[seg.cluster], local)
			sh.docSegs[local] = append(sh.docSegs[local], docSeg{cluster: seg.cluster, unit: unit, terms: seg.terms})
		}
		sh.before = append(sh.before, mr.before[d])
		sh.after = append(sh.after, mr.after[d])
	}
	return shards, nil
}

// AttachGlobalStats attaches each of the matcher's cluster indices to
// the corresponding pool, folding the index's contents in (see
// index.AttachStats). It is the post-load counterpart of Split's
// attachment: shard files persisted with the plain MR codec carry only
// local state, so the loader recreates the pools by attaching every
// shard of a group in turn. Attach a matcher at most once, before
// concurrent use.
func (mr *MR) AttachGlobalStats(stats []*index.GlobalStats) error {
	mr.mu.RLock()
	defer mr.mu.RUnlock()
	if len(stats) != len(mr.clusters) {
		return fmt.Errorf("match: %d stats pools for %d clusters", len(stats), len(mr.clusters))
	}
	for c, ix := range mr.clusters {
		ix.AttachStats(stats[c])
	}
	return nil
}
