package match

import (
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/cm"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/segment"
)

// Observability instruments for the offline build and the online query
// path. The build.* spans are the primary measurement of the per-phase
// build timings — BuildStats is derived from the same StartAlways/Stop
// pair, so the phase accounting works with any obs sink state — and map
// onto the paper's Fig 11 phases (see EXPERIMENTS.md, "obs span names"):
// build.segment is Fig 11(a), build.vectorize + build.cluster +
// build.refine make up Fig 11(b), and match.query is the per-query
// latency behind Fig 11(c). Recording is free when obs is disabled.
var (
	spanBuildSegment   = obs.NewSpan("build.segment")
	spanBuildVectorize = obs.NewSpan("build.vectorize")
	spanBuildCluster   = obs.NewSpan("build.cluster")
	spanBuildRefine    = obs.NewSpan("build.refine")
	spanBuildIndex     = obs.NewSpan("build.index")

	spanQuery           = obs.NewSpan("match.query")
	histQueryLists      = obs.NewCountHistogram("match.query.lists")
	histQueryCandidates = obs.NewCountHistogram("match.query.candidates")

	spanAddPrepare = obs.NewSpan("match.add.prepare")
	spanAddCommit  = obs.NewSpan("match.add.commit")
)

// MRConfig configures a multi-ranking matcher (the "MR" of the method
// names in Table 4). The three MR methods of the paper differ only in
// Strategy and vector space:
//
//	IntentIntent-MR: Strategy = segment.Greedy{},   CM vectors + DBSCAN
//	SentIntent-MR:   Strategy = segment.Sentences{}, CM vectors + DBSCAN
//	Content-MR:      Strategy = segment.TextTiling{}, ContentVectors + k-means
type MRConfig struct {
	// Strategy selects segment borders. segment.Greedy{} when nil.
	Strategy segment.Strategy
	// ContentVectors switches the segment representation from the 28-dim CM
	// weight vectors (Eq 5/6) to hashed TF/IDF term vectors, and the grouper
	// from DBSCAN to k-means — the Content-MR configuration.
	ContentVectors bool
	// ContentK is the k-means cluster count for ContentVectors. 8 when 0.
	ContentK int
	// Eps is DBSCAN's radius; estimated from the data when 0.
	Eps float64
	// MinPts is DBSCAN's density threshold. 4 when 0.
	MinPts int
	// SampleSize bounds the exact-DBSCAN core (cluster.Sampled). 2000 when 0.
	SampleSize int
	// KeepNoise leaves DBSCAN noise segments outside all intention
	// clusters instead of assigning them to the nearest centroid.
	KeepNoise bool
	// Grouper selects the segment-grouping algorithm for CM vectors.
	Grouper Grouping
	// KMeansK is the cluster count for GroupKMeans on CM vectors; it
	// should approximate the expected number of intention categories.
	// 6 when 0.
	KMeansK int
	// FullVectors clusters the concatenated Eq 5+6 vectors (the paper's 28
	// elements) instead of the Eq 5 within-segment half alone. The Eq 6
	// half encodes document structure, which on template-generated corpora
	// adds within-intention variance, so the default clusters Eq 5 only;
	// set FullVectors for the paper's exact representation.
	FullVectors bool
	// NFactor sets the per-intention list length n = NFactor·k of
	// Algorithm 2; the paper found n = 2k best. 2 when 0.
	NFactor int
	// ScoreThreshold switches Algorithm 2 from fixed-length top-n lists to
	// threshold selection (the Fagin-style alternative the paper mentions
	// in Sec 7): each intention list keeps every result scoring at least
	// ScoreThreshold times the list's best score. 0 keeps the paper's
	// top-n selection.
	ScoreThreshold float64
	// NormalizeLists divides each per-intention list's scores by the
	// list's top score before Algorithm 2's summation. The paper sums raw
	// scores, which is the default here too — the ablation benchmarks show
	// normalization consistently loses (informative-intention lists gain
	// as much weight as the decisive request list).
	NormalizeLists bool
	// Seed drives k-means initialization.
	Seed int64
	// Workers bounds build parallelism. NumCPU when 0.
	Workers int
}

// Grouping selects how CM segment vectors are grouped into intention
// clusters.
type Grouping int

const (
	// GroupKMeans clusters with k-means (KMeansK clusters). It is the
	// pipeline default: the synthetic corpora's template grammar quantizes
	// CM vectors into many small dense islands, which fragments
	// density-based clustering into 15-20 micro-clusters and splits
	// same-intention segments apart; k-means at the expected intention
	// count recovers the paper's 3-6 coherent clusters (see DESIGN.md,
	// Substitutions).
	GroupKMeans Grouping = iota
	// GroupDBSCAN clusters with DBSCAN — the paper's configuration,
	// kept for the ablation benchmarks.
	GroupDBSCAN
)

// ListDepth returns Algorithm 1's per-intention list length for a top-k
// request: n = NFactor·k, or 10·k under threshold selection (which
// needs deeper lists to cut from). It is exported so the sharding layer
// probes every shard at exactly the depth the unsharded query path
// uses — the global top-n of each intention list is then a subset of
// the union of the per-shard top-n lists, which is what makes the
// scatter-gather merge ranking-equivalent. The receiver must be a
// defaults-applied config (MR.Config returns one).
func (c MRConfig) ListDepth(k int) int {
	if c.ScoreThreshold > 0 {
		return 10 * k
	}
	return c.NFactor * k
}

// TrimParams returns the Algorithm 2 list post-processing parameters
// for an intention list whose best (first) score is best: cut is the
// minimum score kept (negative infinity when no threshold is
// configured), and norm the divisor applied to every kept score (1
// unless NormalizeLists). Match and the sharded merge path share this
// so a threshold/normalization configuration trims the globally merged
// list exactly as the unsharded path trims its local one.
func (c MRConfig) TrimParams(best float64) (cut, norm float64) {
	cut = math.Inf(-1)
	if c.ScoreThreshold > 0 {
		cut = c.ScoreThreshold * best
	}
	norm = 1
	if c.NormalizeLists && best > 0 {
		norm = best
	}
	return cut, norm
}

func (c MRConfig) withDefaults() MRConfig {
	if c.Strategy == nil {
		c.Strategy = segment.Greedy{}
	}
	if c.KMeansK <= 0 {
		c.KMeansK = 6
	}
	if c.ContentK <= 0 {
		c.ContentK = 8
	}
	if c.MinPts <= 0 {
		c.MinPts = 4
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 2000
	}
	if c.NFactor <= 0 {
		c.NFactor = 2
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	return c
}

// BuildStats reports where offline preprocessing time went — the
// quantities behind Fig 11(a,b) and Table 6. Grouping is the Fig 11(b)
// total; Vectorization, Clustering, and Refinement are its sub-phases
// (Refinement covers the sort-based (doc, cluster) grouping; the merged
// term materialization happens inside the parallel per-cluster indexing
// pass and is accounted under Indexing).
type BuildStats struct {
	Segmentation  time.Duration // total, all documents — Fig 11(a)
	Vectorization time.Duration // segment weight vectors (Eq 5/6)
	Clustering    time.Duration // eps estimation + DBSCAN/k-means + centroids
	Refinement    time.Duration // sort-based (doc, cluster) grouping
	Grouping      time.Duration // vectorization + clustering + refinement — Fig 11(b)
	Indexing      time.Duration // per-cluster index construction
	NumSegments   int           // before refinement
	NumClusters   int
	// NoiseCount is the number of DBSCAN noise labels as clustered, before
	// any reassignment — the outlier count of the grouping step (it feeds
	// the Table 3 granularity shift: noise segments drop out of the
	// refined counts only when KeepNoise is set). NoiseReassigned is how
	// many of those the KeepNoise=false path folded into their nearest
	// centroid afterwards; NoiseCount−NoiseReassigned segments remain
	// outside every intention cluster. Earlier versions reported only the
	// pre-reassignment count, which overstated surviving noise whenever
	// KeepNoise was false.
	NoiseCount      int
	NoiseReassigned int
}

// docSeg is one refined segment of a document: its intention cluster, its
// unit id inside that cluster's index, and its terms (kept for query-time
// TF computation).
type docSeg struct {
	cluster int
	unit    int
	terms   []string
}

// MR is a built multi-ranking matcher.
//
// Locking model: mu guards the mutable serving state — docSegs, unitDoc,
// before/after, and stats, which incremental Add appends to. Match,
// WriteTo, and every accessor hold the read lock for their full duration;
// Add commits its mutations under the write lock (the expensive
// segmentation and vectorization happen before the lock is taken, see
// PrepareAdd). The per-cluster indices carry their own RWMutex; the lock
// order is always MR.mu before Index.mu, never the reverse. name, cfg,
// clusters (the slice itself), and centroids are immutable once the
// matcher is built or loaded — SetStrategy is the one exception and must
// be called before concurrent use begins.
type MR struct {
	name string
	cfg  MRConfig

	// gen counts committed mutations. Every CommitTo bumps it, so a
	// serving layer can key cached results by generation and have any
	// mutation invalidate them without coordination (Eq 9's global
	// statistics shift on every add, so no pre-add result survives one).
	// Atomic rather than mu-guarded: readers poll it on every request
	// and must not contend with the write lock.
	gen atomic.Uint64

	mu        sync.RWMutex
	clusters  []*index.Index
	unitDoc   [][]int // unitDoc[c][u] = document owning unit u of cluster c
	docSegs   [][]docSeg
	before    []int // per-doc segment count before grouping (Table 3)
	after     []int // per-doc segment count after refinement (Table 3)
	centroids [][]float64
	stats     BuildStats
}

// rawSeg is one pre-refinement segment: its owning document and sentence
// range.
type rawSeg struct {
	doc    int
	lo, hi int
}

// segRef keys one non-noise segment for the sort-based refinement
// grouping: its intention cluster, owning document, and index into the
// flat segment list. Sorting refs by (cluster, doc, seg) makes every
// refined (doc, cluster) group a contiguous run, every cluster a
// contiguous run of groups in ascending-doc order (the unit-id order the
// previous document-walk produced), and the whole grouping
// allocation-lean: no per-segment map values growing through repeated
// term copies.
type segRef struct {
	cluster, doc, seg int
}

// NewMR builds the full offline pipeline of Sec 4 over prepared documents:
// segmentation → segment weight vectors → grouping → refinement →
// per-cluster indexing. Segmentation, vectorization, the clustering
// internals, and the per-cluster index construction all fan out over
// cfg.Workers goroutines; the output is identical for any worker count.
func NewMR(name string, docs []*segment.Doc, cfg MRConfig) *MR {
	cfg = cfg.withDefaults()
	mr := &MR{name: name, cfg: cfg}

	// Phase 1: segmentation (parallel; per-document work is independent).
	// Each phase is timed by its obs span; the span measurement is also
	// the BuildStats duration, so the two never disagree.
	phase := spanBuildSegment.StartAlways()
	segmentations := make([]segment.Segmentation, len(docs))
	par.Do(len(docs), cfg.Workers, func(i int) {
		segmentations[i] = cfg.Strategy.Segment(docs[i])
	})
	mr.stats.Segmentation = phase.Stop()

	// Phase 2: vectors + clustering + refinement.
	start := time.Now()
	var segs []rawSeg
	mr.before = make([]int, len(docs))
	for i, s := range segmentations {
		ranges := s.Segments()
		mr.before[i] = len(ranges)
		for _, r := range ranges {
			segs = append(segs, rawSeg{doc: i, lo: r[0], hi: r[1]})
		}
	}
	mr.stats.NumSegments = len(segs)

	phase = spanBuildVectorize.StartAlways()
	vectors := make([][]float64, len(segs))
	par.Do(len(segs), cfg.Workers, func(i int) {
		d := docs[segs[i].doc]
		switch {
		case cfg.ContentVectors:
			vectors[i] = hashedTermVector(d.Terms(segs[i].lo, segs[i].hi))
		case cfg.FullVectors:
			vectors[i] = cm.WeightVector(d.Range(segs[i].lo, segs[i].hi), d.Range(0, d.Len()))
		default:
			vectors[i] = cm.WithinSegmentWeights(d.Range(segs[i].lo, segs[i].hi))
		}
	})
	mr.stats.Vectorization = phase.Stop()

	phase = spanBuildCluster.StartAlways()
	var labels []int
	var k int
	switch {
	case cfg.ContentVectors:
		k = cfg.ContentK
		labels = cluster.KMeans(vectors, k, cfg.Seed, 0, cfg.Workers)
	case cfg.Grouper == GroupKMeans:
		k = cfg.KMeansK
		if k > len(vectors) && len(vectors) > 0 {
			k = len(vectors)
		}
		labels = cluster.KMeans(vectors, k, cfg.Seed, 0, cfg.Workers)
	default:
		eps := cfg.Eps
		if eps == 0 {
			eps = cluster.EstimateEpsSampled(vectors, cfg.MinPts-1, 500, cfg.Workers)
		}
		labels, k = cluster.Sampled(vectors, eps, cfg.MinPts, cfg.SampleSize, cfg.Workers)
		for _, l := range labels {
			if l == cluster.Noise {
				mr.stats.NoiseCount++
			}
		}
		if k == 0 {
			// Degenerate data: one catch-all intention cluster.
			k = 1
			for i := range labels {
				labels[i] = 0
			}
		} else if !cfg.KeepNoise {
			cents := cluster.Centroids(vectors, labels, k, cfg.Workers)
			mr.stats.NoiseReassigned = cluster.AssignNoise(vectors, labels, cents, cfg.Workers)
		}
	}
	mr.centroids = cluster.Centroids(vectors, labels, k, cfg.Workers)
	mr.stats.NumClusters = k
	mr.stats.Clustering = phase.Stop()

	// Refinement (Sec 6): at most one segment per document per cluster,
	// derived by sorting a flat slice instead of growing map values.
	phase = spanBuildRefine.StartAlways()
	refs := make([]segRef, 0, len(segs))
	for i, s := range segs {
		if labels[i] != cluster.Noise {
			refs = append(refs, segRef{cluster: labels[i], doc: s.doc, seg: i})
		}
	}
	sort.Slice(refs, func(a, b int) bool {
		ra, rb := refs[a], refs[b]
		if ra.cluster != rb.cluster {
			return ra.cluster < rb.cluster
		}
		if ra.doc != rb.doc {
			return ra.doc < rb.doc
		}
		return ra.seg < rb.seg
	})
	// One group per refined (doc, cluster) pair: refs[lo:hi].
	type group struct{ cluster, doc, lo, hi int }
	var groups []group
	for i := 0; i < len(refs); {
		j := i + 1
		for j < len(refs) && refs[j].cluster == refs[i].cluster && refs[j].doc == refs[i].doc {
			j++
		}
		groups = append(groups, group{cluster: refs[i].cluster, doc: refs[i].doc, lo: i, hi: j})
		i = j
	}
	// Contiguous group range [lo, hi) of each cluster.
	clusterGroups := make([][2]int, k)
	for gi := 0; gi < len(groups); {
		gj := gi + 1
		for gj < len(groups) && groups[gj].cluster == groups[gi].cluster {
			gj++
		}
		clusterGroups[groups[gi].cluster] = [2]int{gi, gj}
		gi = gj
	}
	mr.stats.Refinement = phase.Stop()
	mr.stats.Grouping = time.Since(start)

	// Phase 3: per-cluster indexing. Index construction is independent
	// across clusters, so clusters fan out; within one cluster, groups run
	// in ascending-doc order, reproducing the unit ids the former serial
	// document walk assigned.
	phase = spanBuildIndex.StartAlways()
	mr.clusters = make([]*index.Index, k)
	mr.unitDoc = make([][]int, k)
	groupUnit := make([]int, len(groups))
	groupTerms := make([][]string, len(groups))
	par.Do(k, cfg.Workers, func(c int) {
		ix := index.New()
		lo, hi := clusterGroups[c][0], clusterGroups[c][1]
		owners := make([]int, 0, hi-lo)
		for gi := lo; gi < hi; gi++ {
			g := groups[gi]
			terms := mergedTerms(docs, segs, refs[g.lo:g.hi])
			groupTerms[gi] = terms
			groupUnit[gi] = ix.Add(terms)
			owners = append(owners, g.doc)
		}
		mr.clusters[c] = ix
		mr.unitDoc[c] = owners
	})
	mr.docSegs = make([][]docSeg, len(docs))
	mr.after = make([]int, len(docs))
	for gi, g := range groups { // cluster-major: per-doc segs stay cluster-ascending
		mr.docSegs[g.doc] = append(mr.docSegs[g.doc], docSeg{cluster: g.cluster, unit: groupUnit[gi], terms: groupTerms[gi]})
		mr.after[g.doc]++
	}
	mr.stats.Indexing = phase.Stop()
	return mr
}

// mergedTerms materializes the refined segment of one (doc, cluster)
// group — the concatenated terms of its member segments in segment order —
// in a single exact-capacity allocation.
func mergedTerms(docs []*segment.Doc, segs []rawSeg, group []segRef) []string {
	if len(group) == 1 {
		s := segs[group[0].seg]
		return docs[s.doc].Terms(s.lo, s.hi)
	}
	total := 0
	for _, r := range group {
		s := segs[r.seg]
		total += docs[s.doc].TermCount(s.lo, s.hi)
	}
	out := make([]string, 0, total)
	for _, r := range group {
		s := segs[r.seg]
		out = docs[s.doc].AppendTerms(out, s.lo, s.hi)
	}
	return out
}

// Name implements Matcher.
func (mr *MR) Name() string { return mr.name }

// Match implements Matcher: Algorithm 1 per intention cluster the reference
// document appears in (top-n with n = NFactor·k), then Algorithm 2's score
// summation and global top-k. The per-intention-cluster queries run in
// parallel over a Workers-bounded pool; the read lock held for Match's
// full duration keeps the unit → document ownership tables consistent
// with the cluster indices while a concurrent Add waits.
func (mr *MR) Match(docID, k int) []Result {
	return mr.MatchTraced(docID, k, nil)
}

// MatchTraced is Match with request-scoped tracing: a non-nil tr
// records the per-stage progression of this one query — one
// "match.list" event per intention-cluster list (cluster id, list
// width, plus the "index.query" event the index itself records with
// candidate width and pool-hit detail), then the Algorithm 2 merge
// width and the final result count. A nil tr is the steady-state path
// and costs a pointer check per hook (the Fig 11c benchmarks gate it
// at 0 extra allocations).
func (mr *MR) MatchTraced(docID, k int, tr *obs.Trace) []Result {
	if k <= 0 {
		return nil
	}
	tm := spanQuery.Start()
	mr.mu.RLock()
	defer mr.mu.RUnlock()
	if docID < 0 || docID >= len(mr.docSegs) {
		return nil
	}
	segs, lists, _ := mr.queryListsLocked(docID, k, tr)
	// Algorithm 2: sum the per-intention list scores per owning document.
	scores := make(map[int]float64)
	for i, seg := range segs {
		res, norm := mr.trimList(lists[i])
		owners := mr.unitDoc[seg.cluster]
		for _, r := range res {
			scores[owners[r.Unit]] += r.Score / norm
		}
	}
	histQueryLists.Observe(int64(len(segs)))
	histQueryCandidates.Observe(int64(len(scores)))
	// Guarded rather than relying on the nil-receiver no-op: the variadic
	// attr slice would otherwise be built (and heap-allocated) on the
	// untraced path too.
	if tr != nil {
		tr.Event("match.merge", obs.N("lists", int64(len(segs))), obs.N("candidates", int64(len(scores))))
	}
	out := topK(scores, k, docID)
	if tr != nil {
		tr.Event("match.topk", obs.N("results", int64(len(out))))
	}
	tm.Stop()
	return out
}

// queryListsLocked runs Algorithm 1: one top-n index query per
// intention cluster the reference document appears in, fanned out over
// the worker pool. Callers must hold at least the read lock. The
// returned lists are untrimmed (trimList applies the threshold cut and
// normalization); n is the per-list depth used.
// The results are deliberately unnamed: the par.Do closure reads segs,
// lists, and n, and named results (assigned at every return) would be
// captured by reference, costing one heap cell each per query on the
// benchmark-gated hot path. Plain locals are captured by value.
func (mr *MR) queryListsLocked(docID, k int, tr *obs.Trace) ([]docSeg, [][]index.Result, int) {
	n := mr.cfg.ListDepth(k)
	segs := mr.docSegs[docID]
	// Algorithm 1: each intention list is an independent index query, so
	// they fan out. Each list lands in its own slot and the merge walks
	// them in segment order — float summation is not associative, so
	// merge order must not depend on goroutine scheduling.
	lists := make([][]index.Result, len(segs))
	if mr.prunableLocked() {
		// Pruned collections: resolve the frozen probes up front, estimate
		// each list's score upper bound (Σ_t f_q·bound·pIDF), and start the
		// highest-bound probes first. Cross-list thresholds cannot be shared
		// (Algorithm 2 sums *across* lists, so a low-bound list's entries
		// still matter), so the ordering is pure longest-work-first
		// scheduling: the expensive, high-impact scans are in flight before
		// the cheap ones, shrinking the parallel makespan. Slots are fixed
		// by segment position, so results are identical for any order.
		probes := mr.probesLocked(segs)
		type ordered struct {
			pos int
			ub  float64
		}
		order := make([]ordered, len(segs))
		for i, q := range probes {
			order[i] = ordered{pos: i, ub: mr.clusters[q.Cluster].UpperBoundSum(q.Terms, q.QF, q.IDF, q.AvgUnique)}
		}
		sort.Slice(order, func(a, b int) bool {
			if order[a].ub != order[b].ub {
				return order[a].ub > order[b].ub
			}
			return order[a].pos < order[b].pos
		})
		par.Do(len(segs), mr.cfg.Workers, func(j int) {
			i := order[j].pos
			seg := segs[i]
			q := probes[i]
			own := seg.unit
			lists[i] = mr.clusters[seg.cluster].QueryFrozen(
				q.Terms, q.QF, q.IDF, q.AvgUnique, n, 0, func(u int) bool { return u == own }, tr)
			if tr != nil {
				tr.Event("match.list",
					obs.N("cluster", int64(seg.cluster)),
					obs.N("width", int64(len(lists[i]))))
			}
		})
		return segs, lists, n
	}
	par.Do(len(segs), mr.cfg.Workers, func(i int) {
		seg := segs[i]
		own := seg.unit
		lists[i] = mr.clusters[seg.cluster].QueryTraced(
			index.TermFrequencies(seg.terms), n, func(u int) bool { return u == own }, tr)
		if tr != nil {
			tr.Event("match.list",
				obs.N("cluster", int64(seg.cluster)),
				obs.N("width", int64(len(lists[i]))))
		}
	})
	return segs, lists, n
}

// prunableLocked reports whether any intention cluster is large enough
// for the index layer's max-score gate to engage — the signal that the
// frozen, bound-ordered probe path is worth its probe-resolution
// overhead. Callers must hold at least the read lock.
func (mr *MR) prunableLocked() bool {
	for _, ix := range mr.clusters {
		if ix.NumUnits() >= index.PruneMinUnits {
			return true
		}
	}
	return false
}

// trimList applies the Algorithm 2 list post-processing Match and
// MatchExplained must agree on: the optional threshold cut (keep
// results within ScoreThreshold of the list's best) and the optional
// per-list normalization divisor.
func (mr *MR) trimList(res []index.Result) ([]index.Result, float64) {
	if len(res) == 0 {
		return res, 1
	}
	cut, norm := mr.cfg.TrimParams(res[0].Score)
	if !math.IsInf(cut, -1) {
		keep := res[:0]
		for _, r := range res {
			if r.Score >= cut {
				keep = append(keep, r)
			}
		}
		res = keep
	}
	return res, norm
}

// Config returns the matcher's effective configuration (defaults
// applied) — what the sharding layer copies so every shard queries,
// trims, and ingests exactly as the source matcher does.
func (mr *MR) Config() MRConfig { return mr.cfg }

// Stats returns the build-phase timing and size statistics.
func (mr *MR) Stats() BuildStats {
	mr.mu.RLock()
	defer mr.mu.RUnlock()
	return mr.stats
}

// NumClusters returns the number of intention clusters formed.
func (mr *MR) NumClusters() int { return len(mr.clusters) }

// Centroids returns the cluster centroids in the segment vector space —
// the columns of Fig 3. The centroids are frozen at build time (Add
// assigns new segments to them but never moves them), so the returned
// slices are safe to read concurrently.
func (mr *MR) Centroids() [][]float64 { return mr.centroids }

// SegmentCounts returns each document's segment count before grouping and
// after the refinement step (the two halves of Table 3). The returned
// slices are fresh copies taken under the read lock: documents added
// after the call do not appear in them, callers may retain or mutate
// them freely, and a concurrent Add can never write into their backing
// arrays (the live mr.before/mr.after grow in place under the write
// lock, so handing those out would alias writer-owned memory).
func (mr *MR) SegmentCounts() (before, after []int) {
	mr.mu.RLock()
	defer mr.mu.RUnlock()
	before = append([]int(nil), mr.before...)
	after = append([]int(nil), mr.after...)
	return before, after
}

// ClusterSizes returns the number of (refined) segments per cluster.
func (mr *MR) ClusterSizes() []int {
	mr.mu.RLock()
	defer mr.mu.RUnlock()
	out := make([]int, len(mr.clusters))
	for c, ix := range mr.clusters {
		out[c] = ix.NumUnits()
	}
	return out
}

// hashedTermVectorDim is the dimensionality of the feature-hashed TF
// vectors Content-MR clusters (k-means needs dense fixed-width points; 64
// dimensions keep collisions rare at forum-segment vocabulary sizes).
const hashedTermVectorDim = 64

// hashedTermVector folds a segment's terms into a dense L2-normalized TF
// vector by feature hashing.
func hashedTermVector(terms []string) []float64 {
	v := make([]float64, hashedTermVectorDim)
	for _, t := range terms {
		h := fnv.New32a()
		h.Write([]byte(t))
		v[h.Sum32()%hashedTermVectorDim]++
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range v {
			v[i] /= norm
		}
	}
	return v
}
