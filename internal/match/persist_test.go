package match

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/forum"
	"repro/internal/segment"
)

func TestMRPersistRoundTrip(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 120, 51)
	mr := NewMR("IntentIntent-MR", tc.docs, MRConfig{Seed: 3})

	var buf bytes.Buffer
	n, err := mr.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	loaded, err := ReadMR(&buf)
	if err != nil {
		t.Fatalf("ReadMR: %v", err)
	}
	if loaded.Name() != mr.Name() {
		t.Errorf("name %q != %q", loaded.Name(), mr.Name())
	}
	if loaded.NumClusters() != mr.NumClusters() || loaded.NumDocs() != mr.NumDocs() {
		t.Fatal("shape mismatch after round trip")
	}
	// Every query must return the same documents with the same scores.
	// (Query-term map iteration makes float summation order vary, so scores
	// are compared within an ULP-scale tolerance and documents as sets.)
	for q := 0; q < 30; q++ {
		a := mr.Match(q, 5)
		b := loaded.Match(q, 5)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", q, len(a), len(b))
		}
		scoreOf := map[int]float64{}
		for _, r := range a {
			scoreOf[r.DocID] = r.Score
		}
		for _, r := range b {
			want, ok := scoreOf[r.DocID]
			if !ok {
				t.Fatalf("query %d: doc %d only in loaded results", q, r.DocID)
			}
			if diff := r.Score - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("query %d doc %d score %v vs %v", q, r.DocID, r.Score, want)
			}
		}
	}
	// Segment accounting round-trips.
	b1, a1 := mr.SegmentCounts()
	b2, a2 := loaded.SegmentCounts()
	for i := range b1 {
		if b1[i] != b2[i] || a1[i] != a2[i] {
			t.Fatal("segment counts differ after round trip")
		}
	}
	if loaded.Stats() != mr.Stats() {
		t.Error("stats differ after round trip")
	}
}

func TestLoadedMRSupportsAdd(t *testing.T) {
	tc := buildCorpus(t, forum.Travel, 80, 52)
	mr := NewMR("m", tc.docs, MRConfig{})
	var buf bytes.Buffer
	if _, err := mr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadMR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The strategy is configuration; a loaded matcher gets the default and
	// can be overridden.
	loaded.SetStrategy(segment.Greedy{})
	extra := forum.GeneratePost(forum.Travel, 80, 52)
	id := loaded.Add(segment.NewDoc(extra.Text))
	if id != 80 {
		t.Fatalf("Add after load returned %d", id)
	}
	if res := loaded.Match(id, 5); len(res) == 0 {
		t.Error("added doc on loaded matcher matches nothing")
	}
}

func TestReadMRReconstructsStrategy(t *testing.T) {
	// A loaded matcher must segment incrementally added posts with the
	// strategy its build used, not silently fall back to Greedy.
	cases := []struct {
		name string
		cfg  MRConfig
		want segment.Strategy
	}{
		{"IntentIntent-MR", MRConfig{}, segment.Greedy{}},
		{"SentIntent-MR", MRConfig{Strategy: segment.Sentences{}}, segment.Sentences{}},
		{"Content-MR", MRConfig{Strategy: segment.TextTiling{}, ContentVectors: true}, segment.TextTiling{}},
	}
	tc := buildCorpus(t, forum.TechSupport, 40, 53)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mr := NewMR(c.name, tc.docs, c.cfg)
			var buf bytes.Buffer
			if _, err := mr.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := ReadMR(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got := loaded.cfg.Strategy; got != c.want {
				t.Errorf("loaded strategy = %T, want %T", got, c.want)
			}
			// SetStrategy still overrides.
			loaded.SetStrategy(segment.Greedy{})
			if got := loaded.cfg.Strategy; got != (segment.Greedy{}) {
				t.Errorf("SetStrategy override ignored, strategy = %T", got)
			}
		})
	}
}

func TestReadMRGarbage(t *testing.T) {
	if _, err := ReadMR(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("garbage input should fail")
	}
	if _, err := ReadMR(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should fail")
	}
}
