package match

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/index"
	"repro/internal/secfile"
)

// Compact on-disk codec for a built MR matcher: a secfile container —
// magic "RFCM", version 1 — holding everything the online phase needs.
// The per-document segment terms, which dominate the matcher's bytes
// (they are kept verbatim for query-time TF computation), are interned
// against a matcher-level dictionary and referenced by varint id, and
// each cluster index is embedded as its own complete compact index file
// (magic "RFCI") with its own checksummed sections. Sections:
//
//	"meta"  JSON header: matcher name, serializable config fields, and
//	        build statistics. JSON keeps the one low-volume section
//	        debuggable with standard tooling; the strategy itself is
//	        configuration and is reconstructed on load (strategyFor).
//	"dict"  interned term dictionary over every docSeg term, sorted
//	        ascending (secfile string table).
//	"dseg"  per-document segments: uvarint doc count, then per document
//	        uvarint segment count and per segment uvarint cluster id,
//	        unit id, term count, and term ids into "dict".
//	"udoc"  unit → owning document tables: uvarint cluster count, then
//	        per cluster uvarint unit count and uvarint doc ids.
//	"sgct"  Table 3 segment accounting: uvarint doc count, then the
//	        before column and the after column as uvarints.
//	"cent"  intention centroids: uvarint count, uvarint dimension, then
//	        a fixed-width float64 column, row-major.
//	"cidx"  cluster indices: uvarint count, then per cluster a uvarint
//	        length prefix and the embedded compact index bytes.
//
// decodeCompactMR cross-checks the sections against each other (and
// against the decoded cluster indices) before anything is installed:
// every cluster/unit/term/doc reference must land in range and the
// unit-ownership tables must agree with the per-document segment lists,
// so an invariant-breaking snapshot fails at load with a descriptive
// error instead of panicking mid-query.

const (
	// CompactMRMagic identifies a compact matcher file; anything else
	// falls back to the legacy gob decoder.
	CompactMRMagic = "RFCM"
	// compactMRVersion is the newest compact matcher layout this build
	// writes and reads.
	compactMRVersion = 1
)

// compactMeta is the JSON "meta" section.
type compactMeta struct {
	Name   string           `json:"name"`
	Config mrConfigSnapshot `json:"config"`
	Stats  BuildStats       `json:"stats"`
}

// appendCompactMR encodes the matcher's serializable state. Callers
// must hold at least mr.mu.RLock. Deterministic by construction (sorted
// dictionary, in-order walks), so write → read → re-write round-trips
// byte-identically.
func appendCompactMR(mr *MR) ([]byte, error) {
	meta, err := json.Marshal(compactMeta{
		Name:   mr.name,
		Config: mr.cfg.snapshot(),
		Stats:  mr.stats,
	})
	if err != nil {
		return nil, fmt.Errorf("match: encoding meta: %w", err)
	}

	// Intern every docSeg term. The dictionary is sorted so the id
	// assignment is a pure function of the term set.
	idOf := make(map[string]uint64)
	for _, segs := range mr.docSegs {
		for _, s := range segs {
			for _, t := range s.terms {
				idOf[t] = 0
			}
		}
	}
	dict := make([]string, 0, len(idOf))
	for t := range idOf {
		dict = append(dict, t)
	}
	sort.Strings(dict)
	for i, t := range dict {
		idOf[t] = uint64(i)
	}
	dictSec := secfile.AppendStringTable(nil, dict)

	dseg := secfile.AppendUvarint(nil, uint64(len(mr.docSegs)))
	for _, segs := range mr.docSegs {
		dseg = secfile.AppendUvarint(dseg, uint64(len(segs)))
		for _, s := range segs {
			dseg = secfile.AppendUvarint(dseg, uint64(s.cluster))
			dseg = secfile.AppendUvarint(dseg, uint64(s.unit))
			dseg = secfile.AppendUvarint(dseg, uint64(len(s.terms)))
			for _, t := range s.terms {
				dseg = secfile.AppendUvarint(dseg, idOf[t])
			}
		}
	}

	udoc := secfile.AppendUvarint(nil, uint64(len(mr.unitDoc)))
	for _, owners := range mr.unitDoc {
		udoc = secfile.AppendUvarint(udoc, uint64(len(owners)))
		for _, d := range owners {
			udoc = secfile.AppendUvarint(udoc, uint64(d))
		}
	}

	sgct := secfile.AppendUvarint(nil, uint64(len(mr.before)))
	for _, v := range mr.before {
		sgct = secfile.AppendUvarint(sgct, uint64(v))
	}
	for _, v := range mr.after {
		sgct = secfile.AppendUvarint(sgct, uint64(v))
	}

	dim := 0
	if len(mr.centroids) > 0 {
		dim = len(mr.centroids[0])
	}
	cent := secfile.AppendUvarint(nil, uint64(len(mr.centroids)))
	cent = secfile.AppendUvarint(cent, uint64(dim))
	for _, c := range mr.centroids {
		if len(c) != dim {
			return nil, fmt.Errorf("match: ragged centroids (%d-dim row in %d-dim space)", len(c), dim)
		}
		cent = secfile.AppendFloat64s(cent, c)
	}

	cidx := secfile.AppendUvarint(nil, uint64(len(mr.clusters)))
	for c, ix := range mr.clusters {
		var buf appendBuffer
		if _, err := ix.WriteTo(&buf); err != nil {
			return nil, fmt.Errorf("match: encoding cluster %d index: %w", c, err)
		}
		cidx = secfile.AppendUvarint(cidx, uint64(len(buf.b)))
		cidx = append(cidx, buf.b...)
	}

	var out appendBuffer
	if _, err := secfile.Encode(&out, CompactMRMagic, compactMRVersion, []secfile.Section{
		{Tag: "meta", Data: meta},
		{Tag: "dict", Data: dictSec},
		{Tag: "dseg", Data: dseg},
		{Tag: "udoc", Data: udoc},
		{Tag: "sgct", Data: sgct},
		{Tag: "cent", Data: cent},
		{Tag: "cidx", Data: cidx},
	}); err != nil {
		return nil, err
	}
	return out.b, nil
}

// decodeCompactMR parses and cross-validates a compact matcher file.
func decodeCompactMR(data []byte) (*MR, error) {
	f, err := secfile.Decode(data, CompactMRMagic, compactMRVersion)
	if err != nil {
		return nil, err
	}
	sec := func(tag string) ([]byte, error) { return f.Section(tag) }

	metaSec, err := sec("meta")
	if err != nil {
		return nil, err
	}
	var meta compactMeta
	if err := json.Unmarshal(metaSec, &meta); err != nil {
		return nil, fmt.Errorf("match: decoding meta: %w", err)
	}

	dictSec, err := sec("dict")
	if err != nil {
		return nil, err
	}
	dict, rest, err := secfile.ParseStringTable(dictSec)
	if err != nil {
		return nil, fmt.Errorf("match: term dictionary: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("match: %d trailing bytes in term dictionary", len(rest))
	}

	// Cluster indices first: the docSeg/unitDoc validation below needs
	// the per-cluster unit counts.
	cidxSec, err := sec("cidx")
	if err != nil {
		return nil, err
	}
	nClusters64, cidxSec, err := secfile.Uvarint(cidxSec)
	if err != nil {
		return nil, fmt.Errorf("match: cluster count: %w", err)
	}
	if nClusters64 > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("match: cluster count %d out of range", nClusters64)
	}
	nClusters := int(nClusters64)
	clusters := make([]*index.Index, nClusters)
	for c := range clusters {
		blobLen, rest, err := secfile.Uvarint(cidxSec)
		if err != nil {
			return nil, fmt.Errorf("match: cluster %d index length: %w", c, err)
		}
		cidxSec = rest
		if blobLen > uint64(len(cidxSec)) {
			return nil, fmt.Errorf("match: cluster %d index truncated: needs %d bytes, have %d", c, blobLen, len(cidxSec))
		}
		clusters[c] = index.New()
		if err := clusters[c].Load(cidxSec[:blobLen]); err != nil {
			return nil, fmt.Errorf("match: decoding cluster %d: %w", c, err)
		}
		cidxSec = cidxSec[blobLen:]
	}
	if len(cidxSec) != 0 {
		return nil, fmt.Errorf("match: %d trailing bytes in cluster index section", len(cidxSec))
	}

	dsegSec, err := sec("dseg")
	if err != nil {
		return nil, err
	}
	nDocs64, dsegSec, err := secfile.Uvarint(dsegSec)
	if err != nil {
		return nil, fmt.Errorf("match: document count: %w", err)
	}
	if nDocs64 > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("match: document count %d out of range", nDocs64)
	}
	nDocs := int(nDocs64)
	docSegs := make([][]docSeg, nDocs)
	for d := range docSegs {
		nSegs, rest, err := secfile.Uvarint(dsegSec)
		if err != nil {
			return nil, fmt.Errorf("match: doc %d segment count: %w", d, err)
		}
		dsegSec = rest
		if nSegs > uint64(nClusters) {
			return nil, fmt.Errorf("match: doc %d declares %d refined segments over %d clusters", d, nSegs, nClusters)
		}
		segs := make([]docSeg, int(nSegs))
		for i := range segs {
			c, r1, err := secfile.Uvarint(dsegSec)
			if err != nil {
				return nil, fmt.Errorf("match: doc %d segment %d cluster: %w", d, i, err)
			}
			u, r2, err := secfile.Uvarint(r1)
			if err != nil {
				return nil, fmt.Errorf("match: doc %d segment %d unit: %w", d, i, err)
			}
			nt, r3, err := secfile.Uvarint(r2)
			if err != nil {
				return nil, fmt.Errorf("match: doc %d segment %d term count: %w", d, i, err)
			}
			dsegSec = r3
			if c >= uint64(nClusters) {
				return nil, fmt.Errorf("match: doc %d segment %d cluster %d out of range [0, %d)", d, i, c, nClusters)
			}
			if u >= uint64(clusters[c].NumUnits()) {
				return nil, fmt.Errorf("match: doc %d segment %d unit %d out of range for cluster %d (%d units)",
					d, i, u, c, clusters[c].NumUnits())
			}
			if nt > uint64(len(dsegSec)) { // each term id is ≥ 1 byte
				return nil, fmt.Errorf("match: doc %d segment %d declares %d terms in %d bytes", d, i, nt, len(dsegSec))
			}
			terms := make([]string, int(nt))
			for ti := range terms {
				id, rest, err := secfile.Uvarint(dsegSec)
				if err != nil {
					return nil, fmt.Errorf("match: doc %d segment %d term %d: %w", d, i, ti, err)
				}
				dsegSec = rest
				if id >= uint64(len(dict)) {
					return nil, fmt.Errorf("match: doc %d segment %d term id %d out of dictionary range [0, %d)", d, i, id, len(dict))
				}
				terms[ti] = dict[id]
			}
			segs[i] = docSeg{cluster: int(c), unit: int(u), terms: terms}
		}
		docSegs[d] = segs
	}
	if len(dsegSec) != 0 {
		return nil, fmt.Errorf("match: %d trailing bytes in segment section", len(dsegSec))
	}

	udocSec, err := sec("udoc")
	if err != nil {
		return nil, err
	}
	nc, udocSec, err := secfile.Uvarint(udocSec)
	if err != nil {
		return nil, fmt.Errorf("match: ownership cluster count: %w", err)
	}
	if nc != uint64(nClusters) {
		return nil, fmt.Errorf("match: ownership table covers %d clusters, index section has %d", nc, nClusters)
	}
	unitDoc := make([][]int, nClusters)
	for c := range unitDoc {
		n, rest, err := secfile.Uvarint(udocSec)
		if err != nil {
			return nil, fmt.Errorf("match: cluster %d ownership count: %w", c, err)
		}
		udocSec = rest
		if n != uint64(clusters[c].NumUnits()) {
			return nil, fmt.Errorf("match: cluster %d ownership table has %d units, index has %d", c, n, clusters[c].NumUnits())
		}
		owners := make([]int, int(n))
		for u := range owners {
			d, rest, err := secfile.Uvarint(udocSec)
			if err != nil {
				return nil, fmt.Errorf("match: cluster %d unit %d owner: %w", c, u, err)
			}
			udocSec = rest
			if d >= uint64(nDocs) {
				return nil, fmt.Errorf("match: cluster %d unit %d owned by doc %d out of range [0, %d)", c, u, d, nDocs)
			}
			owners[u] = int(d)
		}
		unitDoc[c] = owners
	}
	if len(udocSec) != 0 {
		return nil, fmt.Errorf("match: %d trailing bytes in ownership section", len(udocSec))
	}

	// Ownership must agree with the per-document segment lists — Match
	// resolves unitDoc[seg.cluster][result.Unit] on every query, and a
	// mismatch here means wrong neighbors, not a crash.
	for d, segs := range docSegs {
		for i, s := range segs {
			if unitDoc[s.cluster][s.unit] != d {
				return nil, fmt.Errorf("match: doc %d segment %d claims cluster %d unit %d, ownership table says doc %d",
					d, i, s.cluster, s.unit, unitDoc[s.cluster][s.unit])
			}
		}
	}

	sgctSec, err := sec("sgct")
	if err != nil {
		return nil, err
	}
	ns, sgctSec, err := secfile.Uvarint(sgctSec)
	if err != nil {
		return nil, fmt.Errorf("match: segment-count table: %w", err)
	}
	if ns != uint64(nDocs) {
		return nil, fmt.Errorf("match: segment-count table covers %d documents, segment section has %d", ns, nDocs)
	}
	before := make([]int, nDocs)
	after := make([]int, nDocs)
	for _, col := range [][]int{before, after} {
		for i := range col {
			v, rest, err := secfile.Uvarint(sgctSec)
			if err != nil {
				return nil, fmt.Errorf("match: segment-count entry %d: %w", i, err)
			}
			sgctSec = rest
			if v > uint64(math.MaxInt32) {
				return nil, fmt.Errorf("match: segment count %d out of range", v)
			}
			col[i] = int(v)
		}
	}
	if len(sgctSec) != 0 {
		return nil, fmt.Errorf("match: %d trailing bytes in segment-count section", len(sgctSec))
	}
	for d := range after {
		if after[d] != len(docSegs[d]) {
			return nil, fmt.Errorf("match: doc %d declares %d refined segments but carries %d", d, after[d], len(docSegs[d]))
		}
	}

	centSec, err := sec("cent")
	if err != nil {
		return nil, err
	}
	k, centSec, err := secfile.Uvarint(centSec)
	if err != nil {
		return nil, fmt.Errorf("match: centroid count: %w", err)
	}
	dim, centSec, err := secfile.Uvarint(centSec)
	if err != nil {
		return nil, fmt.Errorf("match: centroid dimension: %w", err)
	}
	if k > uint64(math.MaxUint16) || dim > uint64(math.MaxUint16) {
		return nil, fmt.Errorf("match: centroid shape %d×%d out of range", k, dim)
	}
	if uint64(len(centSec)) != k*dim*8 {
		return nil, fmt.Errorf("match: centroid column of %d×%d needs %d bytes, have %d", k, dim, k*dim*8, len(centSec))
	}
	centroids := make([][]float64, int(k))
	for i := range centroids {
		row, err := secfile.Float64Col(centSec[uint64(i)*dim*8:(uint64(i)+1)*dim*8], int(dim))
		if err != nil {
			return nil, fmt.Errorf("match: centroid %d: %w", i, err)
		}
		centroids[i] = row
	}

	mr := &MR{
		name:      meta.Name,
		cfg:       meta.Config.restore(meta.Name),
		clusters:  clusters,
		unitDoc:   unitDoc,
		docSegs:   docSegs,
		before:    before,
		after:     after,
		centroids: centroids,
		stats:     meta.Stats,
	}
	return mr, nil
}

// appendBuffer is a minimal io.Writer over an append-grown slice.
type appendBuffer struct{ b []byte }

func (a *appendBuffer) Write(p []byte) (int, error) {
	a.b = append(a.b, p...)
	return len(p), nil
}
