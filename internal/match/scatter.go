package match

import (
	"sort"

	"repro/internal/index"
	"repro/internal/obs"
)

// This file is the matcher-side surface the sharded serving layer
// (internal/shard) builds on. A shard group answers one Related query by
// reading the reference document's Algorithm 1 probes from its owning
// shard (QuerySegs), scattering those probes to every shard
// (QueryClusterLists), and merging the per-shard lists globally before
// applying Algorithm 2. The probes carry term frequencies rather than
// unit ids because only the owning shard holds the reference document;
// every other shard scores the same TF map against its own partition of
// the cluster indices.

// ClusterQuery is one Algorithm 1 probe: the intention cluster to
// query, the reference segment's term-frequency map (f_sq of Eq 9), and
// the frozen scoring context — the sorted term list with aligned query
// frequencies and pIDFs, plus the cluster's NU average — resolved once
// on the reference document's home shard (see index.FrozenScoring). The
// collection-level factors are pool-global, so every shard scans with
// the same values; freezing them per probe keeps the scatter legs
// mutually consistent under concurrent adds and saves each leg the
// sort, the pIDF lookups, and the pool lock.
type ClusterQuery struct {
	Cluster   int
	TF        map[string]float64
	Terms     []string  // sorted; the Eq 9 summation order
	QF        []float64 // aligned with Terms: f_sq(t)
	IDF       []float64 // aligned with Terms: pIDF(t), 0 for unknown terms
	AvgUnique float64   // the cluster's NU average
}

// QuerySegs returns the Algorithm 1 probes for a document of this
// matcher: one ClusterQuery per intention cluster the document has a
// refined segment in, in ascending cluster order — the order Match sums
// Algorithm 2 contributions in, which the scatter-gather merge must
// reproduce for bit-identical float sums. It returns nil for unknown
// ids.
func (mr *MR) QuerySegs(docID int) []ClusterQuery {
	mr.mu.RLock()
	defer mr.mu.RUnlock()
	if docID < 0 || docID >= len(mr.docSegs) {
		return nil
	}
	return mr.probesLocked(mr.docSegs[docID])
}

// probesLocked resolves the frozen Algorithm 1 probes for a document's
// refined segments — the shared core of QuerySegs and the ordered probe
// scheduling in queryListsLocked. Callers hold at least the read lock.
func (mr *MR) probesLocked(segs []docSeg) []ClusterQuery {
	out := make([]ClusterQuery, len(segs))
	for i, s := range segs {
		tf := index.TermFrequencies(s.terms)
		terms := make([]string, 0, len(tf))
		for t := range tf {
			terms = append(terms, t)
		}
		sort.Strings(terms)
		qf := make([]float64, len(terms))
		for j, t := range terms {
			qf[j] = tf[t]
		}
		idfs, avg := mr.clusters[s.cluster].FrozenScoring(terms)
		out[i] = ClusterQuery{
			Cluster: s.cluster, TF: tf,
			Terms: terms, QF: qf, IDF: idfs, AvgUnique: avg,
		}
	}
	return out
}

// QueryClusterLists answers a set of Algorithm 1 probes against this
// matcher's cluster indices: lists[i] holds the top-n units of probe
// i's cluster mapped to the (shard-local) documents owning them, in
// descending score order with ascending document id on ties. The
// mapping preserves the index tie-break exactly: within a cluster,
// units are assigned in ascending document order (build walks documents
// ascending; commits append), so ascending unit id and ascending owner
// id coincide. excludeDoc, when non-negative, is dropped from every
// list — the scatter layer passes the reference document's local id on
// its owning shard and -1 elsewhere. Probes whose cluster id is out of
// range yield nil lists.
//
// Probes run sequentially under one read-lock acquisition: the shard
// group already fans out across shards, so per-probe parallelism here
// would only multiply goroutines, and the single lock hold gives the
// probes one consistent view of this shard (matching the snapshot
// semantics Match has on the unsharded path).
//
// floors, when non-nil, carries one per-probe score floor (aligned with
// probes): a proven lower bound on the globally merged list's n-th best
// score for that probe's cluster, which the pruned scan may discard
// candidates against (see index.QueryFrozen). The coordinator seeds it
// from the reference document's home-shard lists; a nil floors (or a 0
// entry) scans unfloored. Floors only ever remove entries the global
// merge would cut anyway, so the merged lists — and the final ranking —
// are unchanged.
func (mr *MR) QueryClusterLists(probes []ClusterQuery, n, excludeDoc int, floors []float64, tr *obs.Trace) [][]Result {
	mr.mu.RLock()
	defer mr.mu.RUnlock()
	lists := make([][]Result, len(probes))
	for i, q := range probes {
		if q.Cluster < 0 || q.Cluster >= len(mr.clusters) {
			continue
		}
		owners := mr.unitDoc[q.Cluster]
		var exclude func(int) bool
		if excludeDoc >= 0 {
			// The refined index holds at most one unit per (doc, cluster),
			// so excluding by owner is exactly the unsharded own-unit skip.
			exclude = func(u int) bool { return owners[u] == excludeDoc }
		}
		var floor float64
		if i < len(floors) {
			floor = floors[i]
		}
		res := mr.clusters[q.Cluster].QueryFrozen(q.Terms, q.QF, q.IDF, q.AvgUnique, n, floor, exclude, tr)
		out := make([]Result, len(res))
		for j, r := range res {
			out[j] = Result{DocID: owners[r.Unit], Score: r.Score}
		}
		lists[i] = out
	}
	return lists
}
