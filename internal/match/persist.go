package match

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/index"
	"repro/internal/segment"
)

// This file persists a built MR matcher. The paper splits the system into
// an offline phase (segmentation, grouping, indexing) and an online phase
// (top-k matching); persistence lets the offline result be built once,
// written to disk, and served by separate processes.
//
// WriteTo emits the compact section layout of compact.go (magic "RFCM");
// ReadMR sniffs the first four bytes and reads either that layout or the
// legacy gob stream earlier builds wrote, so existing MR files keep
// loading. Both decode paths reject trailing bytes after a valid stream
// and validate the cross-table invariants the query path depends on.
//
// The segmentation strategy itself is configuration, not state: ReadMR
// reconstructs it from the persisted ContentVectors flag and matcher name
// (TextTiling for Content-MR, Sentences for SentIntent-MR, Greedy
// otherwise), so a loaded matcher segments incrementally added posts the
// same way the offline build did. SetStrategy remains the override for
// custom strategies. Everything the online phase needs — the per-cluster
// indices, unit ownership, per-document segment terms, centroids, and
// statistics — round-trips exactly.

// mrSnapshot is the gob-serializable state of an MR matcher (the legacy
// layout's wire struct).
type mrSnapshot struct {
	Name      string
	Cfg       mrConfigSnapshot
	UnitDoc   [][]int
	DocSegs   [][]docSegSnapshot
	Before    []int
	After     []int
	Centroids [][]float64
	Stats     BuildStats
}

// mrConfigSnapshot carries the serializable MRConfig fields (the Strategy
// interface is reconstructed from the matcher name on load). It is the
// wire form of the legacy gob layout and the JSON "meta" section of the
// compact layout alike.
type mrConfigSnapshot struct {
	ContentVectors bool
	ContentK       int
	Eps            float64
	MinPts         int
	SampleSize     int
	KeepNoise      bool
	Grouper        int
	KMeansK        int
	FullVectors    bool
	NFactor        int
	ScoreThreshold float64
	NormalizeLists bool
	Seed           int64
}

// snapshot extracts the serializable configuration fields.
func (c MRConfig) snapshot() mrConfigSnapshot {
	return mrConfigSnapshot{
		ContentVectors: c.ContentVectors,
		ContentK:       c.ContentK,
		Eps:            c.Eps,
		MinPts:         c.MinPts,
		SampleSize:     c.SampleSize,
		KeepNoise:      c.KeepNoise,
		Grouper:        int(c.Grouper),
		KMeansK:        c.KMeansK,
		FullVectors:    c.FullVectors,
		NFactor:        c.NFactor,
		ScoreThreshold: c.ScoreThreshold,
		NormalizeLists: c.NormalizeLists,
		Seed:           c.Seed,
	}
}

// restore rebuilds a defaults-applied MRConfig, reconstructing the
// build's segmentation strategy from the matcher name (see strategyFor).
func (s mrConfigSnapshot) restore(name string) MRConfig {
	return MRConfig{
		Strategy:       strategyFor(name, s.ContentVectors),
		ContentVectors: s.ContentVectors,
		ContentK:       s.ContentK,
		Eps:            s.Eps,
		MinPts:         s.MinPts,
		SampleSize:     s.SampleSize,
		KeepNoise:      s.KeepNoise,
		Grouper:        Grouping(s.Grouper),
		KMeansK:        s.KMeansK,
		FullVectors:    s.FullVectors,
		NFactor:        s.NFactor,
		ScoreThreshold: s.ScoreThreshold,
		NormalizeLists: s.NormalizeLists,
		Seed:           s.Seed,
	}.withDefaults()
}

type docSegSnapshot struct {
	Cluster int
	Unit    int
	Terms   []string
}

// WriteTo serializes the matcher in the compact section layout. It
// implements io.WriterTo. It holds the matcher's read lock for the
// duration, so the snapshot is consistent even while Adds are in flight
// (they commit before or after the write, never halfway).
func (mr *MR) WriteTo(w io.Writer) (int64, error) {
	mr.mu.RLock()
	data, err := appendCompactMR(mr)
	mr.mu.RUnlock()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

// WriteGobTo serializes the matcher in the legacy gob layout — what
// WriteTo wrote before the compact format existed, with each cluster
// index embedded as a legacy gob blob. It is retained for migration
// tooling and the old-vs-new equivalence tests; new snapshots should
// use WriteTo.
func (mr *MR) WriteGobTo(w io.Writer) (int64, error) {
	mr.mu.RLock()
	defer mr.mu.RUnlock()
	snap := mrSnapshot{
		Name:      mr.name,
		Cfg:       mr.cfg.snapshot(),
		UnitDoc:   mr.unitDoc,
		Before:    mr.before,
		After:     mr.after,
		Centroids: mr.centroids,
		Stats:     mr.stats,
	}
	snap.DocSegs = make([][]docSegSnapshot, len(mr.docSegs))
	for d, segs := range mr.docSegs {
		for _, s := range segs {
			snap.DocSegs[d] = append(snap.DocSegs[d], docSegSnapshot{
				Cluster: s.cluster, Unit: s.unit, Terms: s.terms,
			})
		}
	}

	// A gob decoder buffers past what it consumes, so nested gob streams
	// cannot share a reader; each cluster index is serialized into its own
	// byte slice inside the single outer stream.
	cw := &countingWriter{w: w}
	enc := gob.NewEncoder(cw)
	if err := enc.Encode(snap); err != nil {
		return cw.n, fmt.Errorf("match: encoding matcher: %w", err)
	}
	if err := enc.Encode(len(mr.clusters)); err != nil {
		return cw.n, err
	}
	for _, ix := range mr.clusters {
		var buf bytes.Buffer
		if _, err := ix.WriteGobTo(&buf); err != nil {
			return cw.n, fmt.Errorf("match: encoding cluster index: %w", err)
		}
		if err := enc.Encode(buf.Bytes()); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ReadMR deserializes a matcher previously written with WriteTo — in
// either layout; the compact format is recognized by its magic, any
// other prefix is decoded as a legacy gob stream. The source is
// consumed to EOF, and bytes after a valid matcher are an error in both
// layouts.
func ReadMR(r io.Reader) (*MR, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("match: reading matcher: %w", err)
	}
	if len(data) >= 4 && string(data[:4]) == CompactMRMagic {
		return decodeCompactMR(data)
	}
	return decodeGobMR(data)
}

// decodeGobMR parses a legacy gob matcher stream and rejects trailing
// bytes — gob stops at its last value and would silently ignore
// appended garbage.
func decodeGobMR(data []byte) (*MR, error) {
	br := bytes.NewReader(data)
	dec := gob.NewDecoder(br)
	var snap mrSnapshot
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("match: decoding matcher: %w", err)
	}
	var numClusters int
	if err := dec.Decode(&numClusters); err != nil {
		return nil, err
	}
	if numClusters < 0 {
		return nil, fmt.Errorf("match: matcher declares %d clusters", numClusters)
	}
	mr := &MR{
		name:      snap.Name,
		cfg:       snap.Cfg.restore(snap.Name),
		unitDoc:   snap.UnitDoc,
		before:    snap.Before,
		after:     snap.After,
		centroids: snap.Centroids,
		stats:     snap.Stats,
	}
	mr.docSegs = make([][]docSeg, len(snap.DocSegs))
	for d, segs := range snap.DocSegs {
		for _, s := range segs {
			mr.docSegs[d] = append(mr.docSegs[d], docSeg{cluster: s.Cluster, unit: s.Unit, terms: s.Terms})
		}
	}
	mr.clusters = make([]*index.Index, numClusters)
	for c := range mr.clusters {
		var raw []byte
		if err := dec.Decode(&raw); err != nil {
			return nil, fmt.Errorf("match: decoding cluster %d: %w", c, err)
		}
		mr.clusters[c] = index.New()
		if err := mr.clusters[c].Load(raw); err != nil {
			return nil, fmt.Errorf("match: decoding cluster %d: %w", c, err)
		}
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("match: %d trailing bytes after matcher stream", br.Len())
	}
	if err := validateMR(mr); err != nil {
		return nil, fmt.Errorf("match: invalid matcher snapshot: %w", err)
	}
	return mr, nil
}

// validateMR cross-checks the legacy-decoded tables the same way the
// compact decoder does inline: every cluster/unit/doc reference in
// range, ownership tables sized to their indices and agreeing with the
// per-document segment lists. (The per-index posting invariants are
// already enforced by index.Load.)
func validateMR(mr *MR) error {
	nClusters := len(mr.clusters)
	nDocs := len(mr.docSegs)
	if len(mr.unitDoc) != nClusters {
		return fmt.Errorf("ownership table covers %d clusters, matcher has %d", len(mr.unitDoc), nClusters)
	}
	if len(mr.before) != nDocs || len(mr.after) != nDocs {
		return fmt.Errorf("segment-count tables cover %d/%d documents, matcher has %d", len(mr.before), len(mr.after), nDocs)
	}
	for c, owners := range mr.unitDoc {
		if len(owners) != mr.clusters[c].NumUnits() {
			return fmt.Errorf("cluster %d ownership table has %d units, index has %d", c, len(owners), mr.clusters[c].NumUnits())
		}
		for u, d := range owners {
			if d < 0 || d >= nDocs {
				return fmt.Errorf("cluster %d unit %d owned by doc %d out of range [0, %d)", c, u, d, nDocs)
			}
		}
	}
	for d, segs := range mr.docSegs {
		if mr.after[d] != len(segs) {
			return fmt.Errorf("doc %d declares %d refined segments but carries %d", d, mr.after[d], len(segs))
		}
		for i, s := range segs {
			if s.cluster < 0 || s.cluster >= nClusters {
				return fmt.Errorf("doc %d segment %d cluster %d out of range [0, %d)", d, i, s.cluster, nClusters)
			}
			if s.unit < 0 || s.unit >= mr.clusters[s.cluster].NumUnits() {
				return fmt.Errorf("doc %d segment %d unit %d out of range for cluster %d", d, i, s.unit, s.cluster)
			}
			if owner := mr.unitDoc[s.cluster][s.unit]; owner != d {
				return fmt.Errorf("doc %d segment %d claims cluster %d unit %d, ownership table says doc %d",
					d, i, s.cluster, s.unit, owner)
			}
		}
	}
	return nil
}

// strategyFor reconstructs the segmentation strategy a persisted matcher
// was built with. The strategy is an interface and is not serialized, but
// the matcher configuration determines it: Content-MR (ContentVectors) is
// always built over TextTiling and SentIntent-MR over sentence units, so
// a loaded matcher segments new posts the same way the offline build did
// instead of silently falling back to Greedy. Matchers built under custom
// names with custom strategies still need SetStrategy after loading.
func strategyFor(name string, contentVectors bool) segment.Strategy {
	switch {
	case contentVectors:
		return segment.TextTiling{}
	case name == "SentIntent-MR":
		return segment.Sentences{}
	default:
		return segment.Greedy{}
	}
}

// SetStrategy replaces the segmentation strategy used by incremental Add
// on a loaded matcher (the strategy itself is configuration and is not
// serialized; ReadMR infers the standard ones — see strategyFor). It must
// be called before the matcher is shared across goroutines: the strategy
// field is read without locking by PrepareAdd.
func (mr *MR) SetStrategy(st segment.Strategy) { mr.cfg.Strategy = st }

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
