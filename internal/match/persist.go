package match

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/index"
	"repro/internal/segment"
)

// This file persists a built MR matcher. The paper splits the system into
// an offline phase (segmentation, grouping, indexing) and an online phase
// (top-k matching); persistence lets the offline result be built once,
// written to disk, and served by separate processes.
//
// The segmentation strategy itself is configuration, not state: ReadMR
// reconstructs it from the persisted ContentVectors flag and matcher name
// (TextTiling for Content-MR, Sentences for SentIntent-MR, Greedy
// otherwise), so a loaded matcher segments incrementally added posts the
// same way the offline build did. SetStrategy remains the override for
// custom strategies. Everything the online phase needs — the per-cluster
// indices, unit ownership, per-document segment terms, centroids, and
// statistics — round-trips exactly.

// mrSnapshot is the gob-serializable state of an MR matcher.
type mrSnapshot struct {
	Name      string
	Cfg       mrConfigSnapshot
	UnitDoc   [][]int
	DocSegs   [][]docSegSnapshot
	Before    []int
	After     []int
	Centroids [][]float64
	Stats     BuildStats
}

// mrConfigSnapshot carries the serializable MRConfig fields (the Strategy
// interface is reconstructed as the default on load).
type mrConfigSnapshot struct {
	ContentVectors bool
	ContentK       int
	Eps            float64
	MinPts         int
	SampleSize     int
	KeepNoise      bool
	Grouper        int
	KMeansK        int
	FullVectors    bool
	NFactor        int
	ScoreThreshold float64
	NormalizeLists bool
	Seed           int64
}

type docSegSnapshot struct {
	Cluster int
	Unit    int
	Terms   []string
}

// WriteTo serializes the matcher: a header snapshot followed by each
// cluster index. It implements io.WriterTo. It holds the matcher's read
// lock for the duration, so the snapshot is consistent even while Adds
// are in flight (they commit before or after the write, never halfway).
func (mr *MR) WriteTo(w io.Writer) (int64, error) {
	mr.mu.RLock()
	defer mr.mu.RUnlock()
	snap := mrSnapshot{
		Name: mr.name,
		Cfg: mrConfigSnapshot{
			ContentVectors: mr.cfg.ContentVectors,
			ContentK:       mr.cfg.ContentK,
			Eps:            mr.cfg.Eps,
			MinPts:         mr.cfg.MinPts,
			SampleSize:     mr.cfg.SampleSize,
			KeepNoise:      mr.cfg.KeepNoise,
			Grouper:        int(mr.cfg.Grouper),
			KMeansK:        mr.cfg.KMeansK,
			FullVectors:    mr.cfg.FullVectors,
			NFactor:        mr.cfg.NFactor,
			ScoreThreshold: mr.cfg.ScoreThreshold,
			NormalizeLists: mr.cfg.NormalizeLists,
			Seed:           mr.cfg.Seed,
		},
		UnitDoc:   mr.unitDoc,
		Before:    mr.before,
		After:     mr.after,
		Centroids: mr.centroids,
		Stats:     mr.stats,
	}
	snap.DocSegs = make([][]docSegSnapshot, len(mr.docSegs))
	for d, segs := range mr.docSegs {
		for _, s := range segs {
			snap.DocSegs[d] = append(snap.DocSegs[d], docSegSnapshot{
				Cluster: s.cluster, Unit: s.unit, Terms: s.terms,
			})
		}
	}

	// A gob decoder buffers past what it consumes, so nested gob streams
	// cannot share a reader; each cluster index is serialized into its own
	// byte slice inside the single outer stream.
	cw := &countingWriter{w: w}
	enc := gob.NewEncoder(cw)
	if err := enc.Encode(snap); err != nil {
		return cw.n, fmt.Errorf("match: encoding matcher: %w", err)
	}
	if err := enc.Encode(len(mr.clusters)); err != nil {
		return cw.n, err
	}
	for _, ix := range mr.clusters {
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			return cw.n, fmt.Errorf("match: encoding cluster index: %w", err)
		}
		if err := enc.Encode(buf.Bytes()); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ReadMR deserializes a matcher previously written with WriteTo.
func ReadMR(r io.Reader) (*MR, error) {
	dec := gob.NewDecoder(r)
	var snap mrSnapshot
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("match: decoding matcher: %w", err)
	}
	var numClusters int
	if err := dec.Decode(&numClusters); err != nil {
		return nil, err
	}
	mr := &MR{
		name: snap.Name,
		cfg: MRConfig{
			Strategy:       strategyFor(snap.Name, snap.Cfg.ContentVectors),
			ContentVectors: snap.Cfg.ContentVectors,
			ContentK:       snap.Cfg.ContentK,
			Eps:            snap.Cfg.Eps,
			MinPts:         snap.Cfg.MinPts,
			SampleSize:     snap.Cfg.SampleSize,
			KeepNoise:      snap.Cfg.KeepNoise,
			Grouper:        Grouping(snap.Cfg.Grouper),
			KMeansK:        snap.Cfg.KMeansK,
			FullVectors:    snap.Cfg.FullVectors,
			NFactor:        snap.Cfg.NFactor,
			ScoreThreshold: snap.Cfg.ScoreThreshold,
			NormalizeLists: snap.Cfg.NormalizeLists,
			Seed:           snap.Cfg.Seed,
		}.withDefaults(),
		unitDoc:   snap.UnitDoc,
		before:    snap.Before,
		after:     snap.After,
		centroids: snap.Centroids,
		stats:     snap.Stats,
	}
	mr.docSegs = make([][]docSeg, len(snap.DocSegs))
	for d, segs := range snap.DocSegs {
		for _, s := range segs {
			mr.docSegs[d] = append(mr.docSegs[d], docSeg{cluster: s.Cluster, unit: s.Unit, terms: s.Terms})
		}
	}
	mr.clusters = make([]*index.Index, numClusters)
	for c := range mr.clusters {
		var raw []byte
		if err := dec.Decode(&raw); err != nil {
			return nil, fmt.Errorf("match: decoding cluster %d: %w", c, err)
		}
		mr.clusters[c] = index.New()
		if _, err := mr.clusters[c].ReadFrom(bytes.NewReader(raw)); err != nil {
			return nil, fmt.Errorf("match: decoding cluster %d: %w", c, err)
		}
	}
	return mr, nil
}

// strategyFor reconstructs the segmentation strategy a persisted matcher
// was built with. The strategy is an interface and is not serialized, but
// the matcher configuration determines it: Content-MR (ContentVectors) is
// always built over TextTiling and SentIntent-MR over sentence units, so
// a loaded matcher segments new posts the same way the offline build did
// instead of silently falling back to Greedy. Matchers built under custom
// names with custom strategies still need SetStrategy after loading.
func strategyFor(name string, contentVectors bool) segment.Strategy {
	switch {
	case contentVectors:
		return segment.TextTiling{}
	case name == "SentIntent-MR":
		return segment.Sentences{}
	default:
		return segment.Greedy{}
	}
}

// SetStrategy replaces the segmentation strategy used by incremental Add
// on a loaded matcher (the strategy itself is configuration and is not
// serialized; ReadMR infers the standard ones — see strategyFor). It must
// be called before the matcher is shared across goroutines: the strategy
// field is read without locking by PrepareAdd.
func (mr *MR) SetStrategy(st segment.Strategy) { mr.cfg.Strategy = st }

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
