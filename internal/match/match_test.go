package match

import (
	"testing"

	"repro/internal/forum"
	"repro/internal/lda"
	"repro/internal/segment"
	"repro/internal/textproc"
)

// testCorpus bundles a generated corpus with its prepared forms.
type testCorpus struct {
	posts []forum.Post
	terms [][]string
	docs  []*segment.Doc
}

func buildCorpus(t testing.TB, domain forum.Domain, n int, seed int64) *testCorpus {
	t.Helper()
	posts := forum.Generate(forum.Config{Domain: domain, NumPosts: n, Seed: seed})
	tc := &testCorpus{posts: posts}
	for _, p := range posts {
		tc.terms = append(tc.terms, textproc.StemAll(textproc.ContentWords(p.Text)))
		tc.docs = append(tc.docs, segment.NewDoc(p.Text))
	}
	return tc
}

func checkResults(t *testing.T, name string, res []Result, docID, k int) {
	t.Helper()
	if len(res) > k {
		t.Errorf("%s returned %d results for k=%d", name, len(res), k)
	}
	for i, r := range res {
		if r.DocID == docID {
			t.Errorf("%s returned the query document", name)
		}
		if i > 0 && r.Score > res[i-1].Score {
			t.Errorf("%s results not sorted", name)
		}
	}
}

func TestFullTextMatch(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 120, 1)
	ft := NewFullText(tc.terms)
	for _, q := range []int{0, 5, 50} {
		res := ft.Match(q, 5)
		if len(res) == 0 {
			t.Fatalf("FullText found nothing for doc %d", q)
		}
		checkResults(t, "FullText", res, q, 5)
	}
	if got := ft.Match(-1, 5); got != nil {
		t.Error("out-of-range doc should return nil")
	}
	if ft.Name() != "FullText" {
		t.Error("name mismatch")
	}
}

func TestFullTextPrefersSameTopic(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 200, 2)
	ft := NewFullText(tc.terms)
	hits, total := 0, 0
	for q := 0; q < 30; q++ {
		for _, r := range ft.Match(q, 5) {
			total++
			if tc.posts[r.DocID].Topic == tc.posts[q].Topic {
				hits++
			}
		}
	}
	if total == 0 {
		t.Fatal("no results at all")
	}
	if frac := float64(hits) / float64(total); frac < 0.7 {
		t.Errorf("FullText same-topic fraction %.2f < 0.7 — shared vocabulary should dominate", frac)
	}
}

func TestLDAMatcher(t *testing.T) {
	tc := buildCorpus(t, forum.Travel, 100, 3)
	lm, err := NewLDA(tc.terms, lda.Config{K: 6, Iterations: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := lm.Match(0, 5)
	if len(res) != 5 {
		t.Fatalf("LDA returned %d results", len(res))
	}
	checkResults(t, "LDA", res, 0, 5)
	if lm.Match(-1, 5) != nil || lm.Match(0, 0) != nil {
		t.Error("degenerate queries should return nil")
	}
	if _, err := NewLDA(nil, lda.Config{}); err == nil {
		t.Error("NewLDA(nil) should fail")
	}
}

func TestMRIntentIntentBuild(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 150, 5)
	mr := NewMR("IntentIntent-MR", tc.docs, MRConfig{})
	if mr.NumClusters() < 2 {
		t.Fatalf("only %d intention clusters formed", mr.NumClusters())
	}
	if mr.NumClusters() > 25 {
		// The paper reports 3-5 intention clusters on 100K+ post corpora;
		// on a 150-post corpus the k-distance eps estimate is noisier, so
		// only guard against pathological fragmentation here.
		t.Errorf("%d clusters — pathological fragmentation", mr.NumClusters())
	}
	stats := mr.Stats()
	if stats.NumSegments < len(tc.docs) {
		t.Errorf("fewer segments than documents: %d", stats.NumSegments)
	}
	before, after := mr.SegmentCounts()
	if len(before) != len(tc.docs) || len(after) != len(tc.docs) {
		t.Fatal("segment count vectors wrong length")
	}
	for i := range before {
		if after[i] > before[i] {
			t.Errorf("doc %d: refinement increased segments %d → %d", i, before[i], after[i])
		}
		if after[i] < 1 {
			t.Errorf("doc %d lost all segments", i)
		}
	}
	if len(mr.Centroids()) != mr.NumClusters() {
		t.Error("centroid count mismatch")
	}
	sizes := mr.ClusterSizes()
	var total int
	for _, s := range sizes {
		total += s
	}
	var afterTotal int
	for _, a := range after {
		afterTotal += a
	}
	if total != afterTotal {
		t.Errorf("cluster sizes sum %d != refined segments %d", total, afterTotal)
	}
}

func TestMRMatch(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 150, 6)
	mr := NewMR("IntentIntent-MR", tc.docs, MRConfig{})
	found := 0
	for q := 0; q < 20; q++ {
		res := mr.Match(q, 5)
		checkResults(t, "MR", res, q, 5)
		if len(res) > 0 {
			found++
		}
	}
	if found < 15 {
		t.Errorf("MR returned results for only %d/20 queries", found)
	}
	if mr.Match(-1, 5) != nil || mr.Match(0, 0) != nil {
		t.Error("degenerate queries should return nil")
	}
}

func TestMRVariants(t *testing.T) {
	tc := buildCorpus(t, forum.Travel, 100, 7)
	variants := []*MR{
		NewMR("IntentIntent-MR", tc.docs, MRConfig{Strategy: segment.Greedy{}}),
		NewMR("SentIntent-MR", tc.docs, MRConfig{Strategy: segment.Sentences{}}),
		NewMR("Content-MR", tc.docs, MRConfig{Strategy: segment.TextTiling{}, ContentVectors: true}),
	}
	for _, mr := range variants {
		res := mr.Match(3, 5)
		checkResults(t, mr.Name(), res, 3, 5)
		if mr.NumClusters() == 0 {
			t.Errorf("%s built no clusters", mr.Name())
		}
	}
	// SentIntent segments are sentences: strictly more raw segments than
	// Greedy's merged segments.
	if variants[1].Stats().NumSegments <= variants[0].Stats().NumSegments {
		t.Errorf("sentence segmentation should produce more raw segments (%d vs %d)",
			variants[1].Stats().NumSegments, variants[0].Stats().NumSegments)
	}
}

func TestMRBeatsFullTextOnConfusableCorpus(t *testing.T) {
	// The headline claim (Table 4): on same-category posts where vocabulary
	// is shared but needs differ, intention-based matching finds more truly
	// related posts than whole-post matching.
	tc := buildCorpus(t, forum.TechSupport, 300, 8)
	ft := NewFullText(tc.terms)
	mr := NewMR("IntentIntent-MR", tc.docs, MRConfig{})

	var ftPrec, mrPrec float64
	queries := 40
	for q := 0; q < queries; q++ {
		rel := forum.RelevantSet(tc.posts, tc.posts[q])
		ftPrec += precision(ft.Match(q, 5), rel)
		mrPrec += precision(mr.Match(q, 5), rel)
	}
	ftPrec /= float64(queries)
	mrPrec /= float64(queries)
	t.Logf("mean precision: FullText=%.3f IntentIntent-MR=%.3f", ftPrec, mrPrec)
	if mrPrec <= ftPrec {
		t.Errorf("IntentIntent-MR precision %.3f should beat FullText %.3f", mrPrec, ftPrec)
	}
}

func precision(res []Result, rel map[int]bool) float64 {
	if len(res) == 0 {
		return 0
	}
	hits := 0
	for _, r := range res {
		if rel[r.DocID] {
			hits++
		}
	}
	return float64(hits) / float64(len(res))
}

func TestMRKeepNoise(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 80, 9)
	mr := NewMR("IntentIntent-MR", tc.docs, MRConfig{KeepNoise: true})
	// With noise kept out, some documents may have fewer refined segments,
	// but the matcher must still work.
	res := mr.Match(0, 5)
	checkResults(t, "KeepNoise", res, 0, 5)
}

func TestMREmptyAndTinyCorpus(t *testing.T) {
	mr := NewMR("empty", nil, MRConfig{})
	if mr.Match(0, 5) != nil {
		t.Error("empty corpus should match nothing")
	}
	tiny := buildCorpus(t, forum.TechSupport, 3, 10)
	mr = NewMR("tiny", tiny.docs, MRConfig{})
	res := mr.Match(0, 5)
	checkResults(t, "tiny", res, 0, 5)
}

func TestHashedTermVector(t *testing.T) {
	v := hashedTermVector([]string{"raid", "disk", "raid"})
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm < 0.99 || norm > 1.01 {
		t.Errorf("vector not L2-normalized: %v", norm)
	}
	if len(v) != hashedTermVectorDim {
		t.Errorf("wrong dimension %d", len(v))
	}
	empty := hashedTermVector(nil)
	for _, x := range empty {
		if x != 0 {
			t.Error("empty terms should give zero vector")
		}
	}
	// Determinism.
	w := hashedTermVector([]string{"raid", "disk", "raid"})
	for i := range v {
		if v[i] != w[i] {
			t.Fatal("hashing not deterministic")
		}
	}
}

func BenchmarkMRBuild(b *testing.B) {
	tc := buildCorpus(b, forum.TechSupport, 100, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewMR("IntentIntent-MR", tc.docs, MRConfig{})
	}
}

func BenchmarkMRMatch(b *testing.B) {
	tc := buildCorpus(b, forum.TechSupport, 500, 12)
	mr := NewMR("IntentIntent-MR", tc.docs, MRConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mr.Match(i%500, 5)
	}
}

func TestMatcherNames(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 30, 71)
	lm, err := NewLDA(tc.terms, lda.Config{K: 3, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if lm.Name() != "LDA" {
		t.Errorf("LDA name = %q", lm.Name())
	}
	mr := NewMR("Custom-MR", tc.docs, MRConfig{})
	if mr.Name() != "Custom-MR" {
		t.Errorf("MR name = %q", mr.Name())
	}
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	// The build fan-out must not change the result: a DBSCAN-grouped MR
	// built with 1 worker and with many workers must agree on clusters,
	// unit ownership, and match results (the -race run of this test also
	// covers the parallel clustering and parallel Phase-3 indexing paths).
	tc := buildCorpus(t, forum.TechSupport, 60, 17)
	for _, grouper := range []Grouping{GroupDBSCAN, GroupKMeans} {
		serial := NewMR("serial", tc.docs, MRConfig{Grouper: grouper, Seed: 42, Workers: 1})
		parallel := NewMR("parallel", tc.docs, MRConfig{Grouper: grouper, Seed: 42, Workers: 8})
		if s, p := serial.NumClusters(), parallel.NumClusters(); s != p {
			t.Fatalf("grouper %d: cluster count %d (serial) != %d (parallel)", grouper, s, p)
		}
		ss, ps := serial.ClusterSizes(), parallel.ClusterSizes()
		for c := range ss {
			if ss[c] != ps[c] {
				t.Fatalf("grouper %d: cluster %d size %d (serial) != %d (parallel)", grouper, c, ss[c], ps[c])
			}
		}
		for q := 0; q < 10; q++ {
			sr, pr := serial.Match(q, 5), parallel.Match(q, 5)
			if len(sr) != len(pr) {
				t.Fatalf("grouper %d query %d: %d results (serial) != %d (parallel)", grouper, q, len(sr), len(pr))
			}
			for i := range sr {
				if sr[i].DocID != pr[i].DocID || sr[i].Score != pr[i].Score {
					t.Fatalf("grouper %d query %d rank %d: serial %+v != parallel %+v", grouper, q, i, sr[i], pr[i])
				}
			}
		}
	}
}

func TestNoiseCountsReported(t *testing.T) {
	// With KeepNoise=false every counted noise point must be reassigned
	// (post-assignment remaining = 0); with KeepNoise=true none may be.
	tc := buildCorpus(t, forum.TechSupport, 80, 23)
	folded := NewMR("folded", tc.docs, MRConfig{Grouper: GroupDBSCAN, Seed: 42})
	st := folded.Stats()
	if st.NumClusters > 0 && st.NoiseReassigned != st.NoiseCount {
		t.Errorf("KeepNoise=false: reassigned %d of %d noise points, want all", st.NoiseReassigned, st.NoiseCount)
	}
	kept := NewMR("kept", tc.docs, MRConfig{Grouper: GroupDBSCAN, Seed: 42, KeepNoise: true})
	if st := kept.Stats(); st.NoiseReassigned != 0 {
		t.Errorf("KeepNoise=true: NoiseReassigned = %d, want 0", st.NoiseReassigned)
	}
}
