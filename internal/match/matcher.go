// Package match implements the document-matching layer of Sec 7: the
// intention-based multi-ranking method of Algorithms 1 and 2
// (IntentIntent-MR) and the comparison methods of Sec 9.2 — FullText
// (whole-post MySQL-style ranking), LDA (topic-distribution similarity),
// Content-MR (topical segmentation + TF/IDF clusters), and SentIntent-MR
// (sentence units + CM clusters). All expose the same Matcher interface:
// given a reference post in the collection, return the top-k most related
// posts.
package match

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/lda"
	"repro/internal/topk"
)

// Result is one related document with its matching score.
type Result struct {
	DocID int
	Score float64
}

// Matcher finds the documents most related to a reference document of the
// prepared collection.
type Matcher interface {
	// Name identifies the method in experiment output (Table 4 row labels).
	Name() string
	// Match returns up to k related documents for the collection document
	// docID, best first, never including docID itself.
	Match(docID, k int) []Result
}

// FullText is the whole-post baseline: one inverted index over entire
// posts with the Eq 7 weighting — the paper's MySQL 5.5.3 full-text
// configuration.
type FullText struct {
	ix    *index.Index
	terms [][]string
}

// NewFullText indexes the collection; docs[i] holds the content terms of
// document i.
func NewFullText(docs [][]string) *FullText {
	ft := &FullText{ix: index.New(), terms: docs}
	for _, terms := range docs {
		ft.ix.Add(terms)
	}
	return ft
}

// Name implements Matcher.
func (ft *FullText) Name() string { return "FullText" }

// Match implements Matcher. Unit ids coincide with document ids here.
func (ft *FullText) Match(docID, k int) []Result {
	if docID < 0 || docID >= len(ft.terms) {
		return nil
	}
	q := index.TermFrequencies(ft.terms[docID])
	res := ft.ix.Query(q, k, func(u int) bool { return u == docID })
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = Result{DocID: r.Unit, Score: r.Score}
	}
	return out
}

// LDAMatcher ranks posts by the similarity of their LDA topic
// distributions. Like the paper's LDA baseline it has no index: every
// query scans the collection, which is what makes it the slowest method in
// Fig 11(c).
type LDAMatcher struct {
	model *lda.Model
}

// NewLDA trains a topic model over the collection's term lists.
func NewLDA(docs [][]string, cfg lda.Config) (*LDAMatcher, error) {
	m, err := lda.Train(docs, cfg)
	if err != nil {
		return nil, fmt.Errorf("match: training LDA: %w", err)
	}
	return &LDAMatcher{model: m}, nil
}

// Name implements Matcher.
func (lm *LDAMatcher) Name() string { return "LDA" }

// Match implements Matcher.
func (lm *LDAMatcher) Match(docID, k int) []Result {
	n := lm.model.NumDocs()
	if docID < 0 || docID >= n || k <= 0 {
		return nil
	}
	q := lm.model.DocTopics(docID)
	c := topk.New(k)
	for d := 0; d < n; d++ {
		if d == docID {
			continue
		}
		c.Offer(d, lda.Similarity(q, lm.model.DocTopics(d)))
	}
	return toResults(c.Results())
}

// toResults converts the shared top-k helper's items into match results.
func toResults(items []topk.Item) []Result {
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{DocID: it.ID, Score: it.Score}
	}
	return out
}

// TopKScores selects the k highest-scoring entries of a doc → score map
// under the deterministic (score descending, id ascending) ordering,
// best first, excluding excludeDoc and non-positive scores — Algorithm
// 2's final selection, exported for the sharded scatter-gather merge so
// both paths share one tie-break rule.
func TopKScores(scores map[int]float64, k, excludeDoc int) []Result {
	return topK(scores, k, excludeDoc)
}

// topK selects the k highest-scoring entries of a doc → score map, best
// first, excluding docID.
func topK(scores map[int]float64, k, docID int) []Result {
	c := topk.New(k)
	for d, s := range scores {
		if d == docID || s <= 0 {
			continue
		}
		c.Offer(d, s)
	}
	return toResults(c.Results())
}
