package match

import (
	"math"
	"testing"

	"repro/internal/forum"
	"repro/internal/segment"
)

// explainDocs prepares a small corpus for the explain tests.
func explainDocs(t *testing.T, n int) ([]*segment.Doc, [][]string) {
	t.Helper()
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: n, Seed: 99})
	docs := make([]*segment.Doc, len(posts))
	terms := make([][]string, len(posts))
	for i, p := range posts {
		docs[i] = segment.NewDoc(p.Text)
		terms[i] = docs[i].Terms(0, docs[i].Len())
	}
	return docs, terms
}

// checkExplanations asserts the full reconciliation contract for one
// query: explained results identical to Match's, cluster contributions
// summing to the served score, and term products summing to each
// cluster contribution, all within tol.
func checkExplanations(t *testing.T, want []Result, got []Result, exps []Explanation, tol float64) {
	t.Helper()
	if len(got) != len(want) || len(exps) != len(want) {
		t.Fatalf("explained query returned %d results / %d explanations, want %d", len(got), len(exps), len(want))
	}
	for i := range want {
		if got[i].DocID != want[i].DocID || got[i].Score != want[i].Score {
			t.Fatalf("result %d: explained (%d, %v) != plain (%d, %v)",
				i, got[i].DocID, got[i].Score, want[i].DocID, want[i].Score)
		}
		exp := exps[i]
		if exp.DocID != want[i].DocID || exp.Score != want[i].Score {
			t.Fatalf("explanation %d misaligned: (%d, %v) vs result (%d, %v)",
				i, exp.DocID, exp.Score, want[i].DocID, want[i].Score)
		}
		if len(exp.Clusters) == 0 {
			t.Fatalf("explanation %d (doc %d) has no cluster contributions for score %v",
				i, exp.DocID, exp.Score)
		}
		var clusterSum float64
		for _, c := range exp.Clusters {
			clusterSum += c.Score
			var termSum float64
			for _, tc := range c.Terms {
				termSum += tc.Contribution
				if tc.Term == "" {
					t.Fatalf("doc %d cluster %d: empty term", exp.DocID, c.Cluster)
				}
				if tc.Contribution != 0 && math.Abs(tc.Contribution) < math.Abs(tc.QueryTF*tc.Weight*tc.IDF)/1e6 {
					t.Fatalf("doc %d cluster %d term %q: contribution %v inconsistent with factors %v·%v·%v",
						exp.DocID, c.Cluster, tc.Term, tc.Contribution, tc.QueryTF, tc.Weight, tc.IDF)
				}
			}
			if d := math.Abs(termSum - c.Score); d > tol {
				t.Fatalf("doc %d cluster %d: term products sum to %v, cluster score %v (Δ %g > %g)",
					exp.DocID, c.Cluster, termSum, c.Score, d, tol)
			}
		}
		if d := math.Abs(clusterSum - exp.Score); d > tol {
			t.Fatalf("doc %d: cluster contributions sum to %v, served score %v (Δ %g > %g)",
				exp.DocID, clusterSum, exp.Score, d, tol)
		}
	}
}

func TestMRMatchExplainedReconciles(t *testing.T) {
	docs, _ := explainDocs(t, 120)
	for name, cfg := range map[string]MRConfig{
		"default":   {Seed: 7},
		"dbscan":    {Grouper: GroupDBSCAN, Seed: 7},
		"threshold": {ScoreThreshold: 0.3, Seed: 7},
		"normalize": {NormalizeLists: true, Seed: 7},
	} {
		t.Run(name, func(t *testing.T) {
			mr := NewMR("explain-test", docs, cfg)
			for doc := 0; doc < 30; doc++ {
				want := mr.Match(doc, 5)
				got, exps := mr.MatchExplained(doc, 5)
				checkExplanations(t, want, got, exps, 1e-9)
			}
		})
	}
}

func TestMRMatchExplainedEdgeCases(t *testing.T) {
	docs, _ := explainDocs(t, 40)
	mr := NewMR("explain-edge", docs, MRConfig{Seed: 7})
	if res, exps := mr.MatchExplained(0, 0); res != nil || exps != nil {
		t.Fatal("k=0 must return nils")
	}
	if res, exps := mr.MatchExplained(-1, 5); res != nil || exps != nil {
		t.Fatal("negative doc id must return nils")
	}
	if res, exps := mr.MatchExplained(len(docs)+5, 5); res != nil || exps != nil {
		t.Fatal("out-of-range doc id must return nils")
	}
}

func TestMRMatchExplainedAfterAdd(t *testing.T) {
	// Explanations must reconcile for (and against) incrementally added
	// documents too — their segments join existing clusters via
	// nearest-centroid assignment.
	docs, _ := explainDocs(t, 80)
	mr := NewMR("explain-add", docs[:70], MRConfig{Seed: 7})
	var addedID int
	for _, d := range docs[70:] {
		addedID = mr.Add(d)
	}
	for _, doc := range []int{0, 35, addedID} {
		want := mr.Match(doc, 5)
		got, exps := mr.MatchExplained(doc, 5)
		checkExplanations(t, want, got, exps, 1e-9)
	}
}

func TestFullTextMatchExplainedReconciles(t *testing.T) {
	_, terms := explainDocs(t, 80)
	ft := NewFullText(terms)
	for doc := 0; doc < 20; doc++ {
		want := ft.Match(doc, 5)
		got, exps := ft.MatchExplained(doc, 5)
		checkExplanations(t, want, got, exps, 1e-9)
		for _, exp := range exps {
			if len(exp.Clusters) != 1 || exp.Clusters[0].Cluster != 0 {
				t.Fatalf("FullText explanation must use the single pseudo-cluster 0: %+v", exp.Clusters)
			}
		}
	}
}

func TestExplainerInterface(t *testing.T) {
	docs, terms := explainDocs(t, 30)
	var _ Explainer = NewMR("iface", docs, MRConfig{Seed: 7})
	var _ Explainer = NewFullText(terms)
	// LDA deliberately does not implement Explainer.
	if _, ok := any(&LDAMatcher{}).(Explainer); ok {
		t.Fatal("LDAMatcher must not satisfy Explainer")
	}
}
