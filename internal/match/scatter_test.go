package match

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/forum"
	"repro/internal/index"
	"repro/internal/topk"
)

// splitForTest partitions a built matcher into n shards with a simple
// modulo route and fresh statistics pools, and replays the route to
// build the global↔local id directory the scatter-gather merge needs —
// the same reconstruction the shard group performs.
func splitForTest(t *testing.T, mr *MR, n int) (shards []*MR, globalIDs [][]int, owner, local []int) {
	t.Helper()
	stats := make([]*index.GlobalStats, mr.NumClusters())
	for i := range stats {
		stats[i] = index.NewGlobalStats()
	}
	route := func(d int) int { return d % n }
	shards, err := mr.Split(n, route, stats)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	globalIDs = make([][]int, n)
	owner = make([]int, mr.NumDocs())
	local = make([]int, mr.NumDocs())
	for d := 0; d < mr.NumDocs(); d++ {
		s := route(d)
		owner[d] = s
		local[d] = len(globalIDs[s])
		globalIDs[s] = append(globalIDs[s], d)
	}
	return shards, globalIDs, owner, local
}

// scatterMatch reconstructs the shard group's scatter-gather query out
// of this package's primitives: probes from the owning shard
// (QuerySegs), per-shard lists at the full unsharded depth
// (QueryClusterLists), a global top-n merge per cluster under the
// deterministic tie-break, the shared trim, and Algorithm 2's summation
// in ascending cluster order.
func scatterMatch(cfg MRConfig, shards []*MR, globalIDs [][]int, owner, local []int, docID, k int) []Result {
	home, lq := owner[docID], local[docID]
	probes := shards[home].QuerySegs(lq)
	n := cfg.ListDepth(k)
	perShard := make([][][]Result, len(shards))
	for s, sh := range shards {
		excl := -1
		if s == home {
			excl = lq
		}
		perShard[s] = sh.QueryClusterLists(probes, n, excl, nil, nil)
	}
	scores := make(map[int]float64)
	for i := range probes {
		col := topk.New(n)
		for s := range shards {
			for _, r := range perShard[s][i] {
				col.Offer(globalIDs[s][r.DocID], r.Score)
			}
		}
		items := col.Results()
		if len(items) == 0 {
			continue
		}
		cut, norm := cfg.TrimParams(items[0].Score)
		for _, it := range items {
			if it.Score < cut {
				break
			}
			scores[it.ID] += it.Score / norm
		}
	}
	return TopKScores(scores, k, docID)
}

// TestScatterGatherMatchesMatch is the in-package half of the sharding
// equivalence proof: the scatter-gather reconstruction must return
// bit-identical scores and the identical ranking to the unsharded
// Match, for every query document and depth probed.
func TestScatterGatherMatchesMatch(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 100, 7)
	mr := NewMR("MR", tc.docs, MRConfig{Seed: 42})
	shards, globalIDs, owner, local := splitForTest(t, mr, 3)
	cfg := mr.Config()
	for _, q := range []int{0, 7, 33, 66, 99} {
		for _, k := range []int{1, 5, 10} {
			want := mr.Match(q, k)
			got := scatterMatch(cfg, shards, globalIDs, owner, local, q, k)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("doc %d k=%d: scatter %v != unsharded %v", q, k, got, want)
			}
		}
	}
}

// TestScatterGatherMatchesMatchTrimmed repeats the equivalence check
// under threshold selection plus list normalization — the configuration
// where TrimParams does real work, so the merged-then-trimmed list must
// cut and divide exactly as the unsharded trimList does.
func TestScatterGatherMatchesMatchTrimmed(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 80, 11)
	mr := NewMR("MR", tc.docs, MRConfig{Seed: 42, ScoreThreshold: 0.3, NormalizeLists: true})
	shards, globalIDs, owner, local := splitForTest(t, mr, 2)
	cfg := mr.Config()
	for _, q := range []int{1, 20, 55, 79} {
		want := mr.Match(q, 5)
		got := scatterMatch(cfg, shards, globalIDs, owner, local, q, 5)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("doc %d: scatter %v != unsharded %v", q, got, want)
		}
	}
}

func TestSplitErrors(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 30, 3)
	mr := NewMR("MR", tc.docs, MRConfig{Seed: 42})
	if _, err := mr.Split(0, func(int) int { return 0 }, nil); err == nil {
		t.Error("Split(0) should fail")
	}
	wrong := make([]*index.GlobalStats, mr.NumClusters()+1)
	for i := range wrong {
		wrong[i] = index.NewGlobalStats()
	}
	if _, err := mr.Split(2, func(int) int { return 0 }, wrong); err == nil {
		t.Error("Split with a mismatched pool count should fail")
	}
	stats := make([]*index.GlobalStats, mr.NumClusters())
	for i := range stats {
		stats[i] = index.NewGlobalStats()
	}
	if _, err := mr.Split(2, func(int) int { return 2 }, stats); err == nil {
		t.Error("out-of-range route should fail")
	}
	for i := range stats {
		stats[i] = index.NewGlobalStats()
	}
	if _, err := mr.Split(2, func(int) int { return -1 }, stats); err == nil {
		t.Error("negative route should fail")
	}
}

// TestAttachGlobalStatsAfterReload exercises the post-load pool
// reconstruction: shards persisted with the plain MR codec carry only
// local state, so reattaching every reloaded shard to fresh pools must
// restore collection-global scoring — proven by re-running the
// equivalence check through the reloaded shards.
func TestAttachGlobalStatsAfterReload(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 60, 5)
	mr := NewMR("MR", tc.docs, MRConfig{Seed: 42})
	shards, globalIDs, owner, local := splitForTest(t, mr, 2)
	pools := make([]*index.GlobalStats, mr.NumClusters())
	for i := range pools {
		pools[i] = index.NewGlobalStats()
	}
	loaded := make([]*MR, len(shards))
	for s, sh := range shards {
		var buf bytes.Buffer
		if _, err := sh.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo shard %d: %v", s, err)
		}
		ld, err := ReadMR(&buf)
		if err != nil {
			t.Fatalf("ReadMR shard %d: %v", s, err)
		}
		if err := ld.AttachGlobalStats(pools); err != nil {
			t.Fatalf("AttachGlobalStats shard %d: %v", s, err)
		}
		loaded[s] = ld
	}
	cfg := mr.Config()
	for _, q := range []int{2, 31, 59} {
		want := mr.Match(q, 5)
		got := scatterMatch(cfg, loaded, globalIDs, owner, local, q, 5)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("doc %d: reloaded scatter %v != unsharded %v", q, got, want)
		}
	}
	if err := loaded[0].AttachGlobalStats(pools[:len(pools)-1]); err == nil {
		t.Error("AttachGlobalStats with a mismatched pool count should fail")
	}
}

func TestQuerySegsUnknownDoc(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 20, 9)
	mr := NewMR("MR", tc.docs, MRConfig{Seed: 42})
	if got := mr.QuerySegs(-1); got != nil {
		t.Errorf("QuerySegs(-1) = %v, want nil", got)
	}
	if got := mr.QuerySegs(len(tc.docs)); got != nil {
		t.Errorf("QuerySegs(out of range) = %v, want nil", got)
	}
	probes := mr.QuerySegs(0)
	for i := 1; i < len(probes); i++ {
		if probes[i].Cluster <= probes[i-1].Cluster {
			t.Errorf("probes not in ascending cluster order: %d after %d",
				probes[i].Cluster, probes[i-1].Cluster)
		}
	}
	for _, p := range probes {
		if len(p.Terms) != len(p.QF) || len(p.Terms) != len(p.IDF) {
			t.Errorf("cluster %d: misaligned frozen factors", p.Cluster)
		}
	}
}

func TestQueryClusterListsBadCluster(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 20, 9)
	mr := NewMR("MR", tc.docs, MRConfig{Seed: 42})
	probes := []ClusterQuery{{Cluster: -1}, {Cluster: mr.NumClusters()}}
	lists := mr.QueryClusterLists(probes, 5, -1, nil, nil)
	if len(lists) != 2 || lists[0] != nil || lists[1] != nil {
		t.Errorf("out-of-range clusters should yield nil lists, got %v", lists)
	}
}

// TestExplainDocClusterReconciles checks that the per-shard explain
// half sums back to the served list score bit-for-bit: the term
// products come from the same pool-attached state in the same sorted
// summation order.
func TestExplainDocClusterReconciles(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 60, 13)
	mr := NewMR("MR", tc.docs, MRConfig{Seed: 42})
	shards, globalIDs, owner, local := splitForTest(t, mr, 2)
	cfg := mr.Config()
	q := 4
	home, lq := owner[q], local[q]
	probes := shards[home].QuerySegs(lq)
	n := cfg.ListDepth(5)
	perShard := make([][][]Result, len(shards))
	for s, sh := range shards {
		excl := -1
		if s == home {
			excl = lq
		}
		perShard[s] = sh.QueryClusterLists(probes, n, excl, nil, nil)
	}
	checked := 0
	for i, p := range probes {
		col := topk.New(n)
		for s := range shards {
			for _, r := range perShard[s][i] {
				col.Offer(globalIDs[s][r.DocID], r.Score)
			}
		}
		for _, it := range col.Results() {
			s, l := owner[it.ID], local[it.ID]
			tcs := shards[s].ExplainDocCluster(l, p.Cluster, p.TF, 1)
			if len(tcs) == 0 {
				t.Errorf("doc %d cluster %d: empty breakdown for score %g", it.ID, p.Cluster, it.Score)
				continue
			}
			var sum float64
			for _, c := range tcs {
				sum += c.Contribution
			}
			if sum != it.Score {
				t.Errorf("doc %d cluster %d: breakdown sums to %g, served %g (Δ %g)",
					it.ID, p.Cluster, sum, it.Score, math.Abs(sum-it.Score))
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no (doc, cluster) contributions checked")
	}
	if got := shards[0].ExplainDocCluster(-1, 0, nil, 1); got != nil {
		t.Error("negative doc id should explain to nil")
	}
	if got := shards[home].ExplainDocCluster(lq, mr.NumClusters(), probes[0].TF, 1); got != nil {
		t.Error("cluster without a refined segment should explain to nil")
	}
}

func TestTopKScoresSelection(t *testing.T) {
	scores := map[int]float64{1: 2, 2: 2, 3: -1, 4: 0, 5: 1}
	got := TopKScores(scores, 3, 2)
	want := []Result{{DocID: 1, Score: 2}, {DocID: 5, Score: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopKScores = %v, want %v", got, want)
	}
	if got := TopKScores(map[int]float64{}, 3, -1); len(got) != 0 {
		t.Errorf("TopKScores on empty map = %v", got)
	}
}

func TestConfigAndPendingAccessors(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 20, 9)
	mr := NewMR("MR", tc.docs, MRConfig{Seed: 42})
	cfg := mr.Config()
	if cfg.NFactor != 2 {
		t.Errorf("Config should return the defaults-applied config, NFactor = %d", cfg.NFactor)
	}
	if got := cfg.ListDepth(5); got != 10 {
		t.Errorf("ListDepth(5) = %d, want 10", got)
	}
	thr := MRConfig{ScoreThreshold: 0.5}
	if got := thr.ListDepth(5); got != 50 {
		t.Errorf("thresholded ListDepth(5) = %d, want 50", got)
	}
	pa := mr.PrepareAdd(tc.docs[0])
	if pa.NumSegments() <= 0 {
		t.Errorf("NumSegments = %d, want > 0", pa.NumSegments())
	}
}
