package match

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/forum"
	"repro/internal/segment"
)

// These tests exist to run under -race: they interleave Add with Match
// and every read accessor on all three MR configurations, which is
// exactly the serving pattern the online phase promises to support. They
// also assert the post-conditions that make the interleaving observable
// as correct, not merely race-free.

func mrConcurrencyConfigs() map[string]MRConfig {
	return map[string]MRConfig{
		"IntentIntent-MR": {},
		"SentIntent-MR":   {Strategy: segment.Sentences{}},
		"Content-MR":      {Strategy: segment.TextTiling{}, ContentVectors: true},
	}
}

func TestConcurrentAddAndMatch(t *testing.T) {
	const (
		basePosts  = 80
		extraPosts = 24
		readers    = 4
	)
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: basePosts + extraPosts, Seed: 71})
	var docs []*segment.Doc
	for _, p := range posts {
		docs = append(docs, segment.NewDoc(p.Text))
	}

	for name, cfg := range mrConcurrencyConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			mr := NewMR(name, docs[:basePosts], cfg)

			var wg sync.WaitGroup
			stop := make(chan struct{})
			// Readers hammer the full query surface until the writers finish.
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for q := r; ; q = (q + 3) % basePosts {
						select {
						case <-stop:
							return
						default:
						}
						mr.Match(q, 5)
						mr.Stats()
						mr.NumDocs()
						mr.ClusterSizes()
						mr.DriftStats()
						mr.SegmentCounts()
					}
				}(r)
			}
			// Writers add concurrently — with the readers and each other.
			ids := make(chan int, extraPosts)
			var aw sync.WaitGroup
			for w := 0; w < 2; w++ {
				aw.Add(1)
				go func(w int) {
					defer aw.Done()
					for i := w; i < extraPosts; i += 2 {
						ids <- mr.Add(docs[basePosts+i])
					}
				}(w)
			}
			aw.Wait()
			close(stop)
			wg.Wait()
			close(ids)

			// Every id was assigned exactly once, densely.
			seen := map[int]bool{}
			for id := range ids {
				if id < basePosts || id >= basePosts+extraPosts || seen[id] {
					t.Fatalf("bad or duplicate doc id %d", id)
				}
				seen[id] = true
			}
			if got := mr.NumDocs(); got != basePosts+extraPosts {
				t.Fatalf("NumDocs = %d, want %d", got, basePosts+extraPosts)
			}
			before, after := mr.SegmentCounts()
			if len(before) != basePosts+extraPosts || len(after) != basePosts+extraPosts {
				t.Fatalf("segment counts %d/%d docs, want %d", len(before), len(after), basePosts+extraPosts)
			}
			// Added documents are queryable and never match themselves.
			for id := basePosts; id < basePosts+extraPosts; id++ {
				for _, r := range mr.Match(id, 5) {
					if r.DocID == id {
						t.Fatalf("doc %d matched itself", id)
					}
				}
			}
		})
	}
}

func TestConcurrentAddAssignsSequentialIDs(t *testing.T) {
	// Commit order defines document ids: after N concurrent Adds the ids
	// must be exactly base..base+N-1 with consistent per-doc accounting.
	tc := buildCorpus(t, forum.Travel, 60, 72)
	mr := NewMR("IntentIntent-MR", tc.docs[:40], MRConfig{})

	extra := tc.docs[40:]
	got := make([]int, len(extra))
	var wg sync.WaitGroup
	for i := range extra {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = mr.Add(extra[i])
		}(i)
	}
	wg.Wait()
	seen := make([]bool, len(extra))
	for _, id := range got {
		idx := id - 40
		if idx < 0 || idx >= len(extra) || seen[idx] {
			t.Fatalf("id %d out of range or duplicated (got %v)", id, got)
		}
		seen[idx] = true
	}
	if n := mr.Stats().NumSegments; n <= 0 {
		t.Fatalf("NumSegments = %d after adds", n)
	}
}

func TestConcurrentMatchIsDeterministic(t *testing.T) {
	// Parallel per-intention queries must not change results: the same
	// query from many goroutines returns identical rankings and scores.
	tc := buildCorpus(t, forum.TechSupport, 100, 73)
	mr := NewMR("IntentIntent-MR", tc.docs, MRConfig{Workers: 4})
	want := mr.Match(7, 5)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got := mr.Match(7, 5)
				if len(got) != len(want) {
					t.Errorf("concurrent Match returned %d results, want %d", len(got), len(want))
					return
				}
				for j := range got {
					if got[j] != want[j] {
						t.Errorf("result %d = %+v, want %+v", j, got[j], want[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestConcurrentWriteToDuringAdds(t *testing.T) {
	// Persistence may run while adds are in flight; each snapshot must be
	// internally consistent (decodable, with matching doc accounting).
	tc := buildCorpus(t, forum.TechSupport, 70, 74)
	mr := NewMR("IntentIntent-MR", tc.docs[:50], MRConfig{})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, d := range tc.docs[50:] {
			mr.Add(d)
		}
	}()
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if _, err := mr.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo during adds: %v", err)
		}
		loaded, err := ReadMR(&buf)
		if err != nil {
			t.Fatalf("ReadMR of mid-add snapshot: %v", err)
		}
		b, a := loaded.SegmentCounts()
		if loaded.NumDocs() < 50 || len(b) != loaded.NumDocs() || len(a) != loaded.NumDocs() {
			t.Fatalf("inconsistent snapshot: %d docs, %d/%d segment counts",
				loaded.NumDocs(), len(b), len(a))
		}
	}
	<-done
}
