package match

import (
	"math"

	"repro/internal/cm"
	"repro/internal/segment"
)

// This file implements incremental maintenance of a built MR matcher.
// Sec 9.2 of the paper discusses arriving posts: intentions drift slowly
// (the authors compared two consecutive StackOverflow years and "noticed no
// significant changes"), so new posts can be folded into the existing
// intention clusters by nearest-centroid assignment, deferring a full
// re-clustering to the cheap offline re-build (Fig 11(b): minutes even at
// millions of segments).

// Add segments a new document, assigns each segment to the nearest
// existing intention centroid, applies the refinement rule, and indexes
// the refined segments. It returns the document id assigned to the new
// post. Add is not safe for concurrent use with itself; queries remain
// safe throughout (the underlying indices take the write lock per
// insertion).
func (mr *MR) Add(d *segment.Doc) int {
	docID := len(mr.docSegs)
	seg := mr.cfg.Strategy.Segment(d)
	ranges := seg.Segments()
	mr.before = append(mr.before, len(ranges))
	mr.stats.NumSegments += len(ranges)

	// Assign each segment to its nearest centroid and merge per cluster
	// (the refinement rule: at most one segment per document per cluster).
	merged := make(map[int][]string)
	for _, r := range ranges {
		var vec []float64
		switch {
		case mr.cfg.ContentVectors:
			vec = hashedTermVector(d.Terms(r[0], r[1]))
		case mr.cfg.FullVectors:
			vec = cm.WeightVector(d.Range(r[0], r[1]), d.Range(0, d.Len()))
		default:
			vec = cm.WithinSegmentWeights(d.Range(r[0], r[1]))
		}
		c := nearestCentroid(mr.centroids, vec)
		if c < 0 {
			continue
		}
		merged[c] = append(merged[c], d.Terms(r[0], r[1])...)
	}

	mr.docSegs = append(mr.docSegs, nil)
	after := 0
	for c := 0; c < len(mr.clusters); c++ {
		terms, ok := merged[c]
		if !ok {
			continue
		}
		unit := mr.clusters[c].Add(terms)
		mr.unitDoc[c] = append(mr.unitDoc[c], docID)
		mr.docSegs[docID] = append(mr.docSegs[docID], docSeg{cluster: c, unit: unit, terms: terms})
		after++
	}
	mr.after = append(mr.after, after)
	return docID
}

// nearestCentroid returns the index of the closest centroid to vec under
// Euclidean distance, or -1 if there are no centroids.
func nearestCentroid(centroids [][]float64, vec []float64) int {
	best, bestD := -1, math.Inf(1)
	for c, cent := range centroids {
		var d float64
		for i := range cent {
			diff := cent[i] - vec[i]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// DriftStats measures how far the current segment population has drifted
// from the frozen centroids: the mean distance of a deterministic sample
// of each cluster's units... since original vectors are not retained, the
// proxy is cluster-size imbalance: the ratio between the largest and
// smallest non-empty intention cluster. A ratio far above the value at
// build time suggests a re-build (Sec 9.2: re-running clustering on the
// whole updated collection is cheap).
func (mr *MR) DriftStats() (minSize, maxSize int) {
	for _, ix := range mr.clusters {
		n := ix.NumUnits()
		if n == 0 {
			continue
		}
		if minSize == 0 || n < minSize {
			minSize = n
		}
		if n > maxSize {
			maxSize = n
		}
	}
	return minSize, maxSize
}

// NumDocs returns the number of documents currently in the matcher,
// including incrementally added ones.
func (mr *MR) NumDocs() int { return len(mr.docSegs) }
