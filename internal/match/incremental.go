package match

import (
	"math"

	"repro/internal/cm"
	"repro/internal/segment"
)

// This file implements incremental maintenance of a built MR matcher.
// Sec 9.2 of the paper discusses arriving posts: intentions drift slowly
// (the authors compared two consecutive StackOverflow years and "noticed no
// significant changes"), so new posts can be folded into the existing
// intention clusters by nearest-centroid assignment, deferring a full
// re-clustering to the cheap offline re-build (Fig 11(b): minutes even at
// millions of segments).
//
// Concurrency: ingestion is split into PrepareAdd — segmentation,
// vectorization, and centroid assignment, which run without any lock —
// and PendingAdd.Commit, which takes MR's write lock only for the cheap
// appends. Add (= PrepareAdd + Commit) is therefore safe to call from any
// number of goroutines, interleaved freely with Match and the accessors;
// concurrent queries block only for the microseconds a commit holds the
// write lock, not for the document processing.

// PendingAdd is a document that has been segmented, vectorized, and
// assigned to intention clusters but not yet committed into the matcher.
// The split lets a serving layer do the expensive preparation outside any
// lock (and outside any larger critical section of its own) and make the
// matcher mutation itself near-instant.
type PendingAdd struct {
	mr        *MR
	numRanges int
	merged    map[int][]string // cluster → merged segment terms (refinement rule)
}

// PrepareAdd segments a new document, assigns each segment to the nearest
// existing intention centroid, and applies the refinement rule, without
// touching the matcher's serving state. It reads only immutable matcher
// state (the configured strategy and the frozen centroids), so any number
// of PrepareAdd calls may run concurrently with each other and with
// queries. Call Commit on the result to assign a document id and index
// the refined segments.
func (mr *MR) PrepareAdd(d *segment.Doc) *PendingAdd {
	tm := spanAddPrepare.Start()
	defer tm.Stop()
	seg := mr.cfg.Strategy.Segment(d)
	ranges := seg.Segments()

	// Assign each segment to its nearest centroid and merge per cluster
	// (the refinement rule: at most one segment per document per cluster).
	merged := make(map[int][]string)
	for _, r := range ranges {
		var vec []float64
		switch {
		case mr.cfg.ContentVectors:
			vec = hashedTermVector(d.Terms(r[0], r[1]))
		case mr.cfg.FullVectors:
			vec = cm.WeightVector(d.Range(r[0], r[1]), d.Range(0, d.Len()))
		default:
			vec = cm.WithinSegmentWeights(d.Range(r[0], r[1]))
		}
		c := nearestCentroid(mr.centroids, vec)
		if c < 0 {
			continue
		}
		merged[c] = append(merged[c], d.Terms(r[0], r[1])...)
	}
	return &PendingAdd{mr: mr, numRanges: len(ranges), merged: merged}
}

// NumSegments returns how many segments the prepared document was split
// into before the refinement merge (the add-path width a trace records).
func (pa *PendingAdd) NumSegments() int { return pa.numRanges }

// Commit indexes the prepared segments under the matcher's write lock and
// returns the document id assigned to the new post. Document ids are
// assigned in commit order. Commit must be called at most once.
func (pa *PendingAdd) Commit() int { return pa.CommitTo(pa.mr) }

// CommitTo commits the prepared document into mr, which may be a
// different matcher than the one that prepared it — the sharded serving
// layer prepares against one shard (preparation reads only the
// configured strategy and the frozen centroids, which every shard of a
// group shares) and commits into the shard that owns the new document's
// id. The returned id is local to the receiving matcher. CommitTo must
// be called at most once per PendingAdd.
func (pa *PendingAdd) CommitTo(mr *MR) int {
	// The commit span measures write-lock hold time — the stall a commit
	// imposes on concurrent queries — so Start sits before the Lock.
	tm := spanAddCommit.Start()
	defer tm.Stop()
	mr.mu.Lock()
	defer mr.mu.Unlock()
	docID := len(mr.docSegs)
	mr.before = append(mr.before, pa.numRanges)
	mr.stats.NumSegments += pa.numRanges

	mr.docSegs = append(mr.docSegs, nil)
	after := 0
	for c := 0; c < len(mr.clusters); c++ {
		terms, ok := pa.merged[c]
		if !ok {
			continue
		}
		unit := mr.clusters[c].Add(terms)
		mr.unitDoc[c] = append(mr.unitDoc[c], docID)
		mr.docSegs[docID] = append(mr.docSegs[docID], docSeg{cluster: c, unit: unit, terms: terms})
		after++
	}
	mr.after = append(mr.after, after)
	// Bump under the write lock so the new generation is never visible
	// before the mutation it announces.
	mr.gen.Add(1)
	return docID
}

// Generation returns the count of mutations committed into the matcher
// since it was built or loaded. Any change to the collection — and
// therefore, via Eq 9's collection-global statistics, to every score —
// is visible as a generation bump, which is what makes it a sound
// cache-invalidation epoch.
func (mr *MR) Generation() uint64 { return mr.gen.Load() }

// Add segments a new document, assigns each segment to the nearest
// existing intention centroid, applies the refinement rule, and indexes
// the refined segments. It returns the document id assigned to the new
// post. Add is safe for concurrent use with itself, with Match, and with
// every accessor: the heavy preparation runs lock-free and only the final
// commit takes the write lock (see PrepareAdd).
func (mr *MR) Add(d *segment.Doc) int {
	return mr.PrepareAdd(d).Commit()
}

// nearestCentroid returns the index of the closest centroid to vec under
// Euclidean distance, or -1 if there are no centroids.
func nearestCentroid(centroids [][]float64, vec []float64) int {
	best, bestD := -1, math.Inf(1)
	for c, cent := range centroids {
		var d float64
		for i := range cent {
			diff := cent[i] - vec[i]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// DriftStats measures how far the current segment population has drifted
// from the frozen centroids: the mean distance of a deterministic sample
// of each cluster's units... since original vectors are not retained, the
// proxy is cluster-size imbalance: the ratio between the largest and
// smallest non-empty intention cluster. A ratio far above the value at
// build time suggests a re-build (Sec 9.2: re-running clustering on the
// whole updated collection is cheap).
func (mr *MR) DriftStats() (minSize, maxSize int) {
	mr.mu.RLock()
	defer mr.mu.RUnlock()
	for _, ix := range mr.clusters {
		n := ix.NumUnits()
		if n == 0 {
			continue
		}
		if minSize == 0 || n < minSize {
			minSize = n
		}
		if n > maxSize {
			maxSize = n
		}
	}
	return minSize, maxSize
}

// NumDocs returns the number of documents currently in the matcher,
// including incrementally added ones.
func (mr *MR) NumDocs() int {
	mr.mu.RLock()
	defer mr.mu.RUnlock()
	return len(mr.docSegs)
}
