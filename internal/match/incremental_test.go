package match

import (
	"testing"

	"repro/internal/forum"
	"repro/internal/segment"
)

func TestAddDocument(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 120, 31)
	mr := NewMR("IntentIntent-MR", tc.docs, MRConfig{})
	baseDocs := mr.NumDocs()
	baseSegs := mr.Stats().NumSegments

	// Fold in 20 more posts from the same distribution.
	extra := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 140, Seed: 31})[120:]
	var ids []int
	for _, p := range extra {
		ids = append(ids, mr.Add(segment.NewDoc(p.Text)))
	}
	if mr.NumDocs() != baseDocs+20 {
		t.Fatalf("NumDocs = %d, want %d", mr.NumDocs(), baseDocs+20)
	}
	for i, id := range ids {
		if id != baseDocs+i {
			t.Fatalf("Add returned id %d, want %d", id, baseDocs+i)
		}
	}
	if mr.Stats().NumSegments <= baseSegs {
		t.Error("segment count did not grow")
	}

	// Added documents are queryable in both directions.
	res := mr.Match(ids[0], 5)
	if len(res) == 0 {
		t.Fatal("added document matches nothing")
	}
	for _, r := range res {
		if r.DocID == ids[0] {
			t.Fatal("added document matched itself")
		}
	}
	// And an old query can now retrieve a new document.
	found := false
	for q := 0; q < baseDocs && !found; q++ {
		for _, r := range mr.Match(q, 10) {
			if r.DocID >= baseDocs {
				found = true
			}
		}
	}
	if !found {
		t.Error("no old query ever retrieves an added document")
	}

	// Segment accounting for added docs stays consistent.
	before, after := mr.SegmentCounts()
	if len(before) != baseDocs+20 || len(after) != baseDocs+20 {
		t.Fatal("segment count vectors not extended")
	}
	for i := baseDocs; i < len(after); i++ {
		if after[i] < 1 {
			t.Errorf("added doc %d has no refined segments", i)
		}
		if after[i] > before[i] {
			t.Errorf("added doc %d gained segments in refinement", i)
		}
	}
}

func TestAddPreservesRetrievalQuality(t *testing.T) {
	// Build on the first half, Add the second half, and confirm precision
	// stays in the same band as a from-scratch build over everything.
	posts := forum.Generate(forum.Config{Domain: forum.Travel, NumPosts: 200, Seed: 33})
	var docs []*segment.Doc
	for _, p := range posts {
		docs = append(docs, segment.NewDoc(p.Text))
	}
	incr := NewMR("incr", docs[:100], MRConfig{})
	for _, d := range docs[100:] {
		incr.Add(d)
	}
	full := NewMR("full", docs, MRConfig{})

	var pIncr, pFull float64
	const queries = 40
	for q := 0; q < queries; q++ {
		rel := forum.RelevantSet(posts, posts[q])
		pIncr += precision(incr.Match(q, 5), rel)
		pFull += precision(full.Match(q, 5), rel)
	}
	pIncr /= queries
	pFull /= queries
	t.Logf("incremental=%.3f full-rebuild=%.3f", pIncr, pFull)
	if pIncr < pFull-0.15 {
		t.Errorf("incremental precision %.3f degraded far below rebuild %.3f", pIncr, pFull)
	}
}

func TestDriftStats(t *testing.T) {
	tc := buildCorpus(t, forum.Programming, 100, 35)
	mr := NewMR("m", tc.docs, MRConfig{})
	minS, maxS := mr.DriftStats()
	if minS <= 0 || maxS < minS {
		t.Errorf("DriftStats = %d, %d", minS, maxS)
	}
}

func TestScoreThresholdSelection(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 150, 37)
	mr := NewMR("thresh", tc.docs, MRConfig{ScoreThreshold: 0.5})
	res := mr.Match(0, 5)
	checkResults(t, "threshold", res, 0, 5)
	if len(res) == 0 {
		t.Fatal("threshold selection returned nothing")
	}
}

func TestNormalizeListsOption(t *testing.T) {
	tc := buildCorpus(t, forum.TechSupport, 100, 38)
	raw := NewMR("raw", tc.docs, MRConfig{})
	norm := NewMR("norm", tc.docs, MRConfig{NormalizeLists: true})
	// Both must work; results may differ.
	if len(raw.Match(1, 5)) == 0 || len(norm.Match(1, 5)) == 0 {
		t.Fatal("one configuration returned nothing")
	}
}
