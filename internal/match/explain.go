package match

import (
	"repro/internal/index"
)

// This file is the score-explainability layer: MatchExplained returns,
// alongside the normal top-k result list, a decomposition of every
// result's score into the Eq 7–9 quantities that produced it — one
// contribution per intention cluster (the Algorithm 2 summand), and
// inside each cluster one product per query term (f_q(t) · w(t,unit) ·
// pIDF(t), the Eq 9 factors). The decomposition replays the exact
// query path — same per-cluster lists, same top-n cutoff, same
// threshold/normalization trim, same summation order — so the
// contributions reconcile with the served score to float64 rounding
// (the tests assert 1e-9), and a "why did post X rank above post Y"
// question has a ground-truth answer.

// TermContribution is one query term's share of a cluster contribution.
// Contribution = QueryTF · Weight · IDF, divided by the list
// normalization when MRConfig.NormalizeLists is set.
type TermContribution struct {
	Term         string  `json:"term"`
	QueryTF      float64 `json:"query_tf"`
	Weight       float64 `json:"weight"`
	IDF          float64 `json:"idf"`
	Contribution float64 `json:"contribution"`
}

// ClusterContribution is one intention cluster's share of a result's
// score: the Algorithm 2 summand contributed by the reference
// document's segment in this cluster, with its term-level breakdown.
// Score equals the sum a concurrent-free Match would have added for
// this (result, cluster) pair; the Terms products sum back to Score
// (exactly when no list normalization is configured, to float64
// rounding otherwise).
type ClusterContribution struct {
	Cluster int                `json:"cluster"`
	Score   float64            `json:"score"`
	Terms   []TermContribution `json:"terms"`
}

// Explanation decomposes one result's score. The cluster contributions
// appear in the reference document's segment order — the order Match
// sums them in — and their Scores sum to Score exactly.
type Explanation struct {
	DocID    int                   `json:"doc_id"`
	Score    float64               `json:"score"`
	Clusters []ClusterContribution `json:"clusters"`
}

// Explainer is implemented by matchers that can decompose their scores.
// MR (per-intention-cluster contributions) and FullText (a single
// whole-post pseudo-cluster) implement it; LDA does not — its
// similarity is not an Eq 7–9 sum.
type Explainer interface {
	Matcher
	// MatchExplained returns exactly what Match(docID, k) returns, plus
	// one Explanation per result, index-aligned with the result list.
	MatchExplained(docID, k int) ([]Result, []Explanation)
}

// MatchExplained implements Explainer: Match with the score
// decomposition retained. It holds the read lock across both the query
// replay and the decomposition, so the explanation is computed against
// the same index state as the scores and reconciles bit-for-bit even
// with concurrent Adds in flight.
func (mr *MR) MatchExplained(docID, k int) ([]Result, []Explanation) {
	if k <= 0 {
		return nil, nil
	}
	mr.mu.RLock()
	defer mr.mu.RUnlock()
	if docID < 0 || docID >= len(mr.docSegs) {
		return nil, nil
	}
	segs, lists, _ := mr.queryListsLocked(docID, k, nil)
	trimmed := make([][]index.Result, len(segs))
	norms := make([]float64, len(segs))
	scores := make(map[int]float64)
	for i, seg := range segs {
		res, norm := mr.trimList(lists[i])
		trimmed[i], norms[i] = res, norm
		owners := mr.unitDoc[seg.cluster]
		for _, r := range res {
			scores[owners[r.Unit]] += r.Score / norm
		}
	}
	out := topK(scores, k, docID)

	exps := make([]Explanation, len(out))
	for ri, r := range out {
		exp := Explanation{DocID: r.DocID, Score: r.Score}
		for i, seg := range segs {
			owners := mr.unitDoc[seg.cluster]
			for _, lr := range trimmed[i] {
				if owners[lr.Unit] != r.DocID {
					continue
				}
				// The refined index holds at most one unit per (doc,
				// cluster), so this is the cluster's whole contribution.
				exp.Clusters = append(exp.Clusters, ClusterContribution{
					Cluster: seg.cluster,
					Score:   lr.Score / norms[i],
					Terms:   mr.termBreakdown(index.TermFrequencies(seg.terms), seg.cluster, lr.Unit, norms[i]),
				})
				break
			}
		}
		exps[ri] = exp
	}
	return out, exps
}

// termBreakdown decomposes one (query TF, result unit) list score into
// per-term Eq 9 products via the cluster index, applying the list
// normalization divisor to each product.
func (mr *MR) termBreakdown(queryTF map[string]float64, cluster, unit int, norm float64) []TermContribution {
	terms := mr.clusters[cluster].Explain(queryTF, unit)
	out := make([]TermContribution, len(terms))
	for i, ts := range terms {
		out[i] = TermContribution{
			Term:         ts.Term,
			QueryTF:      ts.QueryTF,
			Weight:       ts.Weight,
			IDF:          ts.IDF,
			Contribution: ts.Product / norm,
		}
	}
	return out
}

// ExplainDocCluster decomposes the Algorithm 2 contribution one
// (shard-local) result document receives from one intention cluster,
// given the reference segment's term frequencies and the list
// normalization divisor — the per-shard half of the shard group's
// explain mode. It returns nil when the document has no refined segment
// in the cluster. The factors come from the same pool-attached index
// state the scores came from, so the products reconcile exactly as the
// unsharded MatchExplained's do.
func (mr *MR) ExplainDocCluster(localDoc, clusterID int, queryTF map[string]float64, norm float64) []TermContribution {
	mr.mu.RLock()
	defer mr.mu.RUnlock()
	if localDoc < 0 || localDoc >= len(mr.docSegs) {
		return nil
	}
	for _, s := range mr.docSegs[localDoc] {
		if s.cluster == clusterID {
			return mr.termBreakdown(queryTF, clusterID, s.unit, norm)
		}
	}
	return nil
}

// MatchExplained implements Explainer for the whole-post baseline: the
// score decomposes over a single pseudo-cluster 0 (the one
// whole-collection index), with the full Eq 7–9 term breakdown.
func (ft *FullText) MatchExplained(docID, k int) ([]Result, []Explanation) {
	if docID < 0 || docID >= len(ft.terms) {
		return nil, nil
	}
	q := index.TermFrequencies(ft.terms[docID])
	res := ft.ix.Query(q, k, func(u int) bool { return u == docID })
	out := make([]Result, len(res))
	exps := make([]Explanation, len(res))
	for i, r := range res {
		out[i] = Result{DocID: r.Unit, Score: r.Score}
		terms := ft.ix.Explain(q, r.Unit)
		tcs := make([]TermContribution, len(terms))
		for j, ts := range terms {
			tcs[j] = TermContribution{Term: ts.Term, QueryTF: ts.QueryTF, Weight: ts.Weight, IDF: ts.IDF, Contribution: ts.Product}
		}
		exps[i] = Explanation{
			DocID: r.Unit, Score: r.Score,
			Clusters: []ClusterContribution{{Cluster: 0, Score: r.Score, Terms: tcs}},
		}
	}
	return out, exps
}
