package index

import "sync"

// GlobalStats is a collection-statistics pool shared by several Index
// instances that together hold one logical collection — the sharded
// serving layer partitions each intention cluster's units across N
// per-shard indices, and Eq 7–9 scoring depends on three
// collection-level quantities: the unit count |I| (Eq 9's N), the
// per-term document frequency |Iᵗ| (Eq 9's n), and the average
// unique-term count feeding the NU length normalization (Eq 7/8). An
// index attached to a pool reads those three quantities from the pool
// instead of its local state, so every shard scores exactly as the
// single unsharded index would — bit-identical floats, because the pool
// aggregates are the same integers the unsharded index derives locally.
//
// Locking: the pool has its own RWMutex. The lock order is always
// Index.mu before GlobalStats.mu — Add takes both write locks in that
// order, and every read path acquires the pool's read lock after the
// index's. Shards therefore update and read the pool concurrently
// without deadlock, and a query observes a consistent (units,
// totalUnique, df) triple for its whole scan.
type GlobalStats struct {
	mu          sync.RWMutex
	units       int
	totalUnique int64
	df          map[string]int
}

// NewGlobalStats returns an empty pool.
func NewGlobalStats() *GlobalStats {
	return &GlobalStats{df: make(map[string]int)}
}

// Units returns the pooled unit count (Eq 9's N across all attached
// indices).
func (gs *GlobalStats) Units() int {
	gs.mu.RLock()
	defer gs.mu.RUnlock()
	return gs.units
}

// TotalUnique returns the pooled sum of unique-term counts.
func (gs *GlobalStats) TotalUnique() int64 {
	gs.mu.RLock()
	defer gs.mu.RUnlock()
	return gs.totalUnique
}

// DocFreq returns the pooled document frequency of term (Eq 9's n
// across all attached indices).
func (gs *GlobalStats) DocFreq(term string) int {
	gs.mu.RLock()
	defer gs.mu.RUnlock()
	return gs.df[term]
}

// AttachStats folds the index's current contents into the pool and
// makes every subsequent scoring read (Eq 9's N and n, the NU average)
// come from it. Attach each member index exactly once — attaching twice
// would double-count its contribution. AttachStats must complete before
// the index is used concurrently; afterwards Add keeps the pool in sync
// under the documented Index.mu → GlobalStats.mu lock order.
func (ix *Index) AttachStats(gs *GlobalStats) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	gs.mu.Lock()
	defer gs.mu.Unlock()
	gs.units += len(ix.units)
	gs.totalUnique += ix.totalUnique
	for t, posts := range ix.postings {
		gs.df[t] += len(posts)
	}
	ix.global = gs
}

// Stats returns the attached pool, or nil for a standalone index.
func (ix *Index) Stats() *GlobalStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.global
}

// rlockStats acquires the pool read lock when the index is attached to
// one and reports whether it did. Callers must already hold ix.mu (read
// or write) and must call gs.mu.RUnlock iff it returns true. The
// n/avgUnique/df effective accessors below assume this lock is held.
func (ix *Index) rlockStats() bool {
	if ix.global == nil {
		return false
	}
	ix.global.mu.RLock()
	return true
}

// nLocked returns the effective collection size for Eq 9: the pooled
// unit count when attached, the local count otherwise.
func (ix *Index) nLocked() int {
	if ix.global != nil {
		return ix.global.units
	}
	return len(ix.units)
}

// dfLocked returns the effective document frequency of a term whose
// local posting list is posts.
func (ix *Index) dfLocked(term string, posts []Posting) int {
	if ix.global != nil {
		return ix.global.df[term]
	}
	return len(posts)
}
