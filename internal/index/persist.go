package index

import (
	"encoding/gob"
	"io"
	"math"
)

// snapshot is the gob-serializable form of an Index. The paper performs
// segmentation and grouping offline (Sec 7 "Indexing"); persistence lets a
// built index be saved after that offline phase and reloaded for online
// matching without re-processing the collection.
type snapshot struct {
	Postings    map[string][]Posting
	Denoms      []float64
	Uniques     []int32
	TotalUnique int64
}

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	ix.mu.RLock()
	snap := snapshot{
		Postings:    ix.postings,
		Denoms:      make([]float64, len(ix.units)),
		Uniques:     make([]int32, len(ix.units)),
		TotalUnique: ix.totalUnique,
	}
	for i, u := range ix.units {
		snap.Denoms[i] = u.denom
		snap.Uniques[i] = u.unique
	}
	ix.mu.RUnlock()

	cw := &countingWriter{w: w}
	err := gob.NewEncoder(cw).Encode(snap)
	return cw.n, err
}

// ReadFrom replaces the index contents with a serialized snapshot. It
// implements io.ReaderFrom.
func (ix *Index) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReader{r: r}
	var snap snapshot
	if err := gob.NewDecoder(cr).Decode(&snap); err != nil {
		return cr.n, err
	}
	units := make([]unitStats, len(snap.Denoms))
	for i := range units {
		units[i] = unitStats{denom: snap.Denoms[i], unique: snap.Uniques[i]}
	}
	if snap.Postings == nil {
		snap.Postings = make(map[string][]Posting)
	}
	// The LogTF numerator is derived state; recompute it so snapshots
	// written before the field existed (where gob leaves it zero) load
	// correctly. TF >= 1 makes the true value >= 1, never 0.
	for _, posts := range snap.Postings {
		for i := range posts {
			posts[i].LogTF = math.Log(float64(posts[i].TF)) + 1
		}
	}
	ix.mu.Lock()
	ix.postings = snap.Postings
	ix.units = units
	ix.totalUnique = snap.TotalUnique
	ix.mu.Unlock()
	return cr.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
