package index

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sort"
)

// Persistence for one Index. The paper performs segmentation and
// grouping offline (Sec 7 "Indexing"); persistence lets a built index
// be saved after that offline phase and reloaded for online matching
// without re-processing the collection.
//
// WriteTo emits the compact section layout of compact.go; ReadFrom
// sniffs the first four bytes and accepts either that layout or the
// legacy gob snapshot earlier builds wrote. Both paths run the same
// validateSnapshot gauntlet before any byte reaches the live index:
// a snapshot that decodes cleanly but violates a query-path invariant
// (posting unit ids out of range or non-ascending, TF = 0, per-unit
// statistics inconsistent with the postings) is rejected with a
// descriptive error at load time — the only line of defense in a
// build-rarely/serve-forever deployment, where the alternative is a
// panic or silent misranking at query time.

// snapshot is the codec-independent serialized form of an Index — the
// gob wire struct of the legacy layout, and the intermediate
// representation the compact codec encodes from and decodes into.
type snapshot struct {
	Postings    map[string][]Posting
	Denoms      []float64
	Uniques     []int32
	TotalUnique int64
}

// snapshotLocked captures the index state under the read lock.
func (ix *Index) snapshotLocked() snapshot {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	snap := snapshot{
		Postings:    ix.postings,
		Denoms:      make([]float64, len(ix.units)),
		Uniques:     make([]int32, len(ix.units)),
		TotalUnique: ix.totalUnique,
	}
	for i, u := range ix.units {
		snap.Denoms[i] = u.denom
		snap.Uniques[i] = u.unique
	}
	return snap
}

// WriteTo serializes the index in the compact section layout. It
// implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	data, err := appendCompact(ix.snapshotLocked())
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	return int64(n), err
}

// WriteGobTo serializes the index in the legacy gob snapshot layout —
// what WriteTo wrote before the compact format existed. It is retained
// for migration tooling and the old-vs-new equivalence tests; new
// snapshots should use WriteTo.
func (ix *Index) WriteGobTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	err := gob.NewEncoder(cw).Encode(ix.snapshotLocked())
	return cw.n, err
}

// ReadFrom replaces the index contents with a serialized snapshot in
// either layout — the compact format is recognized by its magic, any
// other prefix is decoded as a legacy gob snapshot. It implements
// io.ReaderFrom. The source is consumed to EOF; bytes after a valid
// snapshot are an error in both layouts, so a concatenation or
// double-write corruption fails at load instead of silently serving a
// prefix.
func (ix *Index) ReadFrom(r io.Reader) (int64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return int64(len(data)), err
	}
	return int64(len(data)), ix.Load(data)
}

// Load is ReadFrom over bytes already in memory (read or mapped): it
// sniffs the layout, decodes, validates every query-path invariant, and
// only then swaps the decoded state in under the write lock.
func (ix *Index) Load(data []byte) error {
	var snap snapshot
	var err error
	if isCompact := len(data) >= 4 && string(data[:4]) == CompactIndexMagic; isCompact {
		snap, err = decodeCompact(data)
	} else {
		snap, err = decodeGob(data)
	}
	if err != nil {
		return err
	}
	if err := validateSnapshot(&snap); err != nil {
		return fmt.Errorf("index: invalid snapshot: %w", err)
	}
	units := make([]unitStats, len(snap.Denoms))
	for i := range units {
		units[i] = unitStats{denom: snap.Denoms[i], unique: snap.Uniques[i]}
	}
	if snap.Postings == nil {
		snap.Postings = make(map[string][]Posting)
	}
	// The LogTF numerator is derived state; recompute it so snapshots
	// written before the field existed (where gob leaves it zero) load
	// correctly. validateSnapshot has established TF >= 1, so the value
	// is >= 1, never 0 or -Inf.
	for _, posts := range snap.Postings {
		for i := range posts {
			posts[i].LogTF = math.Log(float64(posts[i].TF)) + 1
		}
	}
	ix.mu.Lock()
	ix.postings = snap.Postings
	ix.units = units
	ix.totalUnique = snap.TotalUnique
	// Posting-list score bounds are derived state, not persisted by
	// either codec; rebuild them from the swapped-in postings. The
	// rebuild evaluates the same expressions Add does over the same
	// operands (LogTF recomputed above, denom and unique validated
	// against the postings), so a loaded index carries bit-identical
	// bounds to the index that wrote the snapshot.
	ix.rebuildBoundsLocked()
	ix.mu.Unlock()
	return nil
}

// decodeGob parses a legacy gob snapshot and rejects trailing bytes —
// gob itself stops at the end of its last value and would silently
// ignore appended garbage.
func decodeGob(data []byte) (snapshot, error) {
	var snap snapshot
	br := bytes.NewReader(data)
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return snap, fmt.Errorf("index: decoding gob snapshot: %w", err)
	}
	if br.Len() != 0 {
		return snap, fmt.Errorf("index: %d trailing bytes after gob snapshot", br.Len())
	}
	return snap, nil
}

// validateSnapshot checks every invariant the query path depends on,
// whichever codec produced the snapshot:
//
//   - Denoms and Uniques describe the same unit count.
//   - Posting lists are strictly ascending in unit id (binary-search
//     Weight breaks silently otherwise) and every unit id is inside
//     [0, units) (ix.units[p.Unit] panics otherwise).
//   - Every TF >= 1 (LogTF recomputation yields log(0)+1 = -Inf at 0).
//   - Per-unit unique-term counts equal the number of posting lists
//     covering the unit, and the Eq 7 weight denominators reproduce from
//     the postings (summed in sorted term order, as Add sums them).
//   - TotalUnique equals the sum of the unique counts (it feeds the NU
//     average; a skewed value shifts every weight).
func validateSnapshot(snap *snapshot) error {
	nUnits := len(snap.Denoms)
	if len(snap.Uniques) != nUnits {
		return fmt.Errorf("%d weight denominators but %d unique-term counts", nUnits, len(snap.Uniques))
	}
	terms := make([]string, 0, len(snap.Postings))
	for t := range snap.Postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	denom := make([]float64, nUnits)
	count := make([]int32, nUnits)
	for _, t := range terms {
		posts := snap.Postings[t]
		if len(posts) == 0 {
			return fmt.Errorf("term %q has an empty posting list", t)
		}
		prev := int32(-1)
		for _, p := range posts {
			if p.Unit < 0 || int(p.Unit) >= nUnits {
				return fmt.Errorf("term %q posting unit %d out of range [0, %d)", t, p.Unit, nUnits)
			}
			if p.Unit <= prev {
				return fmt.Errorf("term %q posting units not strictly ascending (%d after %d)", t, p.Unit, prev)
			}
			if p.TF < 1 {
				return fmt.Errorf("term %q unit %d has term frequency %d (must be >= 1)", t, p.Unit, p.TF)
			}
			denom[p.Unit] += math.Log(float64(p.TF)) + 1
			count[p.Unit]++
			prev = p.Unit
		}
	}
	var total int64
	for u := 0; u < nUnits; u++ {
		if snap.Uniques[u] != count[u] {
			return fmt.Errorf("unit %d declares %d unique terms but %d posting lists cover it", u, snap.Uniques[u], count[u])
		}
		// Sorted-term accumulation reproduces Add's summation order, so the
		// stored denominator must match up to cross-platform libm jitter.
		// Inverted comparison so a NaN denominator (diff = NaN, every
		// ordered comparison false) is rejected, not waved through.
		if diff := math.Abs(denom[u] - snap.Denoms[u]); !(diff <= 1e-9*math.Max(1, math.Abs(snap.Denoms[u]))) {
			return fmt.Errorf("unit %d weight denominator %g inconsistent with postings (recomputed %g)", u, snap.Denoms[u], denom[u])
		}
		total += int64(count[u])
	}
	if snap.TotalUnique != total {
		return fmt.Errorf("totalUnique %d inconsistent with unit statistics (sum %d)", snap.TotalUnique, total)
	}
	return nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
