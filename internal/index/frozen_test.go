package index

import (
	"reflect"
	"sort"
	"testing"
)

// frozenArgs resolves a query TF map into the pre-sorted, pre-aligned
// argument set QueryFrozen expects, via FrozenScoring — the caller-side
// half the matching layer performs in QuerySegs.
func frozenArgs(ix *Index, queryTF map[string]float64) (terms []string, qf, idfs []float64, avg float64) {
	for t := range queryTF {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	qf = make([]float64, len(terms))
	for i, t := range terms {
		qf[i] = queryTF[t]
	}
	idfs, avg = ix.FrozenScoring(terms)
	return terms, qf, idfs, avg
}

func TestFrozenScoringMatchesIDF(t *testing.T) {
	ix := buildIndex(
		[]string{"raid", "disk", "disk", "array"},
		[]string{"raid", "hotel"},
		[]string{"hotel", "pool", "raid"},
		[]string{"disk", "array", "cache"},
	)
	terms := []string{"array", "cache", "disk", "hotel", "missing", "pool", "raid"}
	idfs, avg := ix.FrozenScoring(terms)
	if len(idfs) != len(terms) {
		t.Fatalf("got %d idfs for %d terms", len(idfs), len(terms))
	}
	for i, term := range terms {
		if idfs[i] != ix.IDF(term) {
			t.Errorf("frozen pIDF(%s) = %g, IDF = %g", term, idfs[i], ix.IDF(term))
		}
	}
	if idfs[4] != 0 {
		t.Errorf("unknown term pIDF = %g, want 0", idfs[4])
	}
	// unique-term counts are 3, 2, 3, 3.
	if want := 11.0 / 4.0; avg != want {
		t.Errorf("avgUnique = %g, want %g", avg, want)
	}
}

// TestQueryFrozenMatchesQueryTraced pins the contract QueryFrozen is
// named for: with factors frozen from the same index state, the scan
// returns bit-identical scores in the identical order as the standard
// query path, at every depth and with the exclude predicate applied.
func TestQueryFrozenMatchesQueryTraced(t *testing.T) {
	vocab := []string{"raid", "disk", "array", "cache", "hotel", "pool", "swap", "boot"}
	var units [][]string
	for i := 0; i < 40; i++ {
		u := []string{vocab[i%len(vocab)], vocab[(i*3+1)%len(vocab)], vocab[(i*5+2)%len(vocab)]}
		if i%4 == 0 {
			u = append(u, u[0]) // a repeated term, so LogTF > 1 paths run
		}
		units = append(units, u)
	}
	ix := buildIndex(units...)
	queryTF := TermFrequencies([]string{"raid", "raid", "disk", "cache", "missing"})
	terms, qf, idfs, avg := frozenArgs(ix, queryTF)
	for _, topN := range []int{1, 3, 8, 100} {
		want := ix.QueryTraced(queryTF, topN, nil, nil)
		got := ix.QueryFrozen(terms, qf, idfs, avg, topN, 0, nil, nil)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("topN=%d: frozen %v != standard %v", topN, got, want)
		}
	}
	excl := func(u int) bool { return u%2 == 0 }
	want := ix.QueryTraced(queryTF, 10, excl, nil)
	got := ix.QueryFrozen(terms, qf, idfs, avg, 10, 0, excl, nil)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("excluded: frozen %v != standard %v", got, want)
	}
	if got := ix.QueryFrozen(terms, qf, idfs, avg, 0, 0, nil, nil); got != nil {
		t.Errorf("topN=0 should return nil, got %v", got)
	}
	if got := New().QueryFrozen(terms, qf, idfs, avg, 5, 0, nil, nil); got != nil {
		t.Errorf("empty index should return nil, got %v", got)
	}
}

// TestQueryFrozenPooledPartitions scores two pool-attached partitions
// of one collection against the whole: every partition scan must
// reproduce the unsharded score of each unit bit-for-bit, and the two
// partitions together must cover exactly the unsharded result set —
// the index-layer core of the sharding equivalence guarantee.
func TestQueryFrozenPooledPartitions(t *testing.T) {
	vocab := []string{"raid", "disk", "array", "cache", "hotel", "pool"}
	var units [][]string
	for i := 0; i < 24; i++ {
		units = append(units, []string{vocab[i%len(vocab)], vocab[(i*5+2)%len(vocab)], vocab[(i*7+4)%len(vocab)]})
	}
	whole := buildIndex(units...)
	a, b := New(), New()
	gs := NewGlobalStats()
	globalOf := map[*Index][]int{}
	for g, u := range units {
		ix := a
		if g%2 == 1 {
			ix = b
		}
		ix.Add(u)
		globalOf[ix] = append(globalOf[ix], g)
	}
	a.AttachStats(gs)
	b.AttachStats(gs)

	queryTF := TermFrequencies([]string{"raid", "disk", "pool"})
	wantRes := whole.QueryTraced(queryTF, len(units), nil, nil)
	wantScore := make(map[int]float64, len(wantRes))
	for _, r := range wantRes {
		wantScore[r.Unit] = r.Score
	}

	covered := 0
	for _, part := range []*Index{a, b} {
		terms, qf, idfs, avg := frozenArgs(part, queryTF)
		// Frozen factors are pool-global: identical to the unsharded
		// index's, bit-for-bit.
		for i, term := range terms {
			if idfs[i] != whole.IDF(term) {
				t.Errorf("pooled pIDF(%s) = %g, unsharded %g", term, idfs[i], whole.IDF(term))
			}
		}
		for _, r := range part.QueryFrozen(terms, qf, idfs, avg, len(units), 0, nil, nil) {
			g := globalOf[part][r.Unit]
			want, ok := wantScore[g]
			if !ok {
				t.Errorf("partition scored unit %d; the unsharded query did not", g)
				continue
			}
			if r.Score != want {
				t.Errorf("unit %d: partition score %g, unsharded %g", g, r.Score, want)
			}
			covered++
		}
	}
	if covered != len(wantRes) {
		t.Errorf("partitions covered %d units, unsharded returned %d", covered, len(wantRes))
	}
}
