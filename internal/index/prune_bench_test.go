package index

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchCorpus builds a synthetic index with a Zipf-ish term distribution:
// a few very common terms (long posting lists, low pIDF) and a long tail
// of rare ones — the shape that makes max-score pruning pay, and the
// shape real forum segments have.
func benchCorpus(units, vocab int, seed int64) (*Index, []map[string]float64) {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1.0, uint64(vocab-1))
	ix := New()
	docs := make([][]string, units)
	for u := 0; u < units; u++ {
		n := 20 + rng.Intn(40)
		terms := make([]string, n)
		for i := range terms {
			terms[i] = fmt.Sprintf("t%05d", zipf.Uint64())
		}
		docs[u] = terms
		ix.Add(terms)
	}
	queries := make([]map[string]float64, 64)
	for i := range queries {
		queries[i] = TermFrequencies(docs[rng.Intn(units)])
	}
	return ix, queries
}

// BenchmarkQueryReadOnly measures the read-only (no concurrent adds)
// query path on a mid-size index — the path the former idfCache was
// supposed to help. It pins that computing pIDF directly (one math.Log
// per query term) costs no more than the per-term sync.Map lookups the
// cache spent even when it hit.
func BenchmarkQueryReadOnly(b *testing.B) {
	ix, queries := benchCorpus(5000, 2000, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(queries[i%len(queries)], 10, nil)
	}
}

// BenchmarkQueryPrunedVsExhaustive compares the max-score pruned scan
// against the exhaustive reference at growing corpus sizes (the
// cmd/querybench sizes, in-package). Pruned and exhaustive return
// bit-identical results (TestPrunedMatchesExhaustiveProperty); this
// pair shows what the pruning buys.
func BenchmarkQueryPrunedVsExhaustive(b *testing.B) {
	for _, units := range []int{1000, 10000} {
		ix, queries := benchCorpus(units, 2000, 42)
		b.Run(fmt.Sprintf("exhaustive-%d", units), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix.QueryExhaustive(queries[i%len(queries)], 10, nil)
			}
		})
		b.Run(fmt.Sprintf("pruned-%d", units), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix.Query(queries[i%len(queries)], 10, nil)
			}
		})
	}
}
