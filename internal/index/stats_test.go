package index

import (
	"fmt"
	"math/rand"
	"testing"
)

// statsCorpus generates a deterministic synthetic unit stream with a
// vocabulary small enough to force cross-unit term sharing (so df > 1
// and the pIDF floor at 0 both get exercised).
func statsCorpus(n int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, 40)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("t%02d", i)
	}
	units := make([][]string, n)
	for i := range units {
		terms := make([]string, 3+rng.Intn(12))
		for j := range terms {
			terms[j] = vocab[rng.Intn(len(vocab))]
		}
		// A near-stopword: appears in most units, so its smoothed pIDF
		// floors at zero and the tIDF==0 skip path must agree across the
		// partitioned and whole builds.
		if rng.Intn(10) > 0 {
			terms = append(terms, "common")
		}
		units[i] = terms
	}
	return units
}

// buildPartitioned splits the unit stream across nParts pool-attached
// indices (round-robin by global unit id, in ascending order — the
// order the sharding layer guarantees) and returns the partitions, the
// pool, and the global→(partition, local) mapping.
func buildPartitioned(units [][]string, nParts int) ([]*Index, *GlobalStats, [][2]int) {
	gs := NewGlobalStats()
	parts := make([]*Index, nParts)
	for p := range parts {
		parts[p] = New()
		parts[p].AttachStats(gs)
	}
	loc := make([][2]int, len(units))
	for g, terms := range units {
		p := g % nParts
		l := parts[p].Add(terms)
		loc[g] = [2]int{p, l}
	}
	return parts, gs, loc
}

// TestPartitionedScoringBitIdentical is the index-level half of the
// sharding equivalence guarantee: every Eq 7–9 quantity — per-posting
// weight, per-term pIDF, and full query scores — computed by a
// pool-attached partition must equal the unsharded index's value
// bit-for-bit, including after incremental additions to both sides.
func TestPartitionedScoringBitIdentical(t *testing.T) {
	units := statsCorpus(60, 7)
	extra := statsCorpus(20, 11)

	for _, nParts := range []int{1, 2, 3, 5} {
		t.Run(fmt.Sprintf("parts-%d", nParts), func(t *testing.T) {
			full := New()
			for _, terms := range units {
				full.Add(terms)
			}
			parts, gs, loc := buildPartitioned(units, nParts)

			verify := func(stage string) {
				t.Helper()
				if gs.Units() != full.NumUnits() {
					t.Fatalf("%s: pooled units = %d, unsharded = %d", stage, gs.Units(), full.NumUnits())
				}
				for g, pl := range loc {
					p, l := pl[0], pl[1]
					for _, term := range []string{"t00", "t07", "t33", "common", "absent"} {
						if got, want := parts[p].Weight(term, l), full.Weight(term, g); got != want {
							t.Fatalf("%s: Weight(%q, unit %d) = %v on partition %d, unsharded %v", stage, term, g, got, p, want)
						}
						if got, want := parts[p].IDF(term), full.IDF(term); got != want {
							t.Fatalf("%s: IDF(%q) = %v on partition %d, unsharded %v", stage, term, got, p, want)
						}
					}
				}
				// Full query scores: every unit's score from its partition
				// must be the exact float the whole index computes.
				q := TermFrequencies(units[3])
				wantScores := map[int]float64{}
				for _, r := range full.Query(q, len(loc), nil) {
					wantScores[r.Unit] = r.Score
				}
				got := 0
				for p, part := range parts {
					for _, r := range part.Query(q, len(loc), nil) {
						gID := -1
						for g, pl := range loc {
							if pl[0] == p && pl[1] == r.Unit {
								gID = g
								break
							}
						}
						if gID < 0 {
							t.Fatalf("%s: partition %d returned unmapped unit %d", stage, p, r.Unit)
						}
						if want, ok := wantScores[gID]; !ok || want != r.Score {
							t.Fatalf("%s: unit %d scored %v on partition %d, unsharded %v", stage, gID, r.Score, p, want)
						}
						got++
					}
				}
				if got != len(wantScores) {
					t.Fatalf("%s: partitions scored %d units, unsharded %d", stage, got, len(wantScores))
				}
			}
			verify("after build")

			// Incremental additions on both sides, same global order.
			for _, terms := range extra {
				g := full.Add(terms)
				p := g % nParts
				l := parts[p].Add(terms)
				loc = append(loc, [2]int{p, l})
			}
			verify("after incremental adds")
		})
	}
}

// TestGlobalStatsAccessors pins the pool's aggregate view and the
// Stats() attachment accessor.
func TestGlobalStatsAccessors(t *testing.T) {
	gs := NewGlobalStats()
	a, b := New(), New()
	a.Add([]string{"x", "y", "x"})
	if a.Stats() != nil {
		t.Fatal("unattached index reports a pool")
	}
	a.AttachStats(gs)
	b.AttachStats(gs)
	b.Add([]string{"y", "z"})
	if a.Stats() != gs || b.Stats() != gs {
		t.Fatal("Stats() does not return the attached pool")
	}
	if gs.Units() != 2 {
		t.Fatalf("Units = %d, want 2", gs.Units())
	}
	if gs.TotalUnique() != 4 { // {x,y} + {y,z}
		t.Fatalf("TotalUnique = %d, want 4", gs.TotalUnique())
	}
	for term, want := range map[string]int{"x": 1, "y": 2, "z": 1, "w": 0} {
		if got := gs.DocFreq(term); got != want {
			t.Fatalf("DocFreq(%q) = %d, want %d", term, got, want)
		}
	}
}
