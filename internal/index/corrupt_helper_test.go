package index

import (
	"testing"

	"repro/internal/secfile"
)

// indexSectionOrder is the fixed table order appendCompact writes.
var indexSectionOrder = []string{"term", "post", "unit", "stat"}

func appendUvarint(b []byte, v uint64) []byte { return secfile.AppendUvarint(b, v) }

// rebuildSections re-encodes a valid compact index file with the given
// per-section edit applied — the surgical-corruption helper behind the
// negative-path matrix (appendCompact refuses to write these defects
// itself, so tests splice them in at the container level).
func rebuildSections(t *testing.T, valid []byte, edit func(secs []secfile.Section) []secfile.Section) []byte {
	t.Helper()
	f, err := secfile.Decode(valid, CompactIndexMagic, compactIndexVersion)
	if err != nil {
		t.Fatalf("fixture snapshot does not decode: %v", err)
	}
	secs := make([]secfile.Section, 0, len(indexSectionOrder))
	for _, tag := range indexSectionOrder {
		data, err := f.Section(tag)
		if err != nil {
			t.Fatal(err)
		}
		secs = append(secs, secfile.Section{Tag: tag, Data: data})
	}
	var buf appendBuffer
	if _, err := secfile.Encode(&buf, CompactIndexMagic, compactIndexVersion, edit(secs)); err != nil {
		t.Fatal(err)
	}
	return buf.b
}

func replaceSection(t *testing.T, valid []byte, tag string, payload []byte) []byte {
	t.Helper()
	return rebuildSections(t, valid, func(secs []secfile.Section) []secfile.Section {
		for i := range secs {
			if secs[i].Tag == tag {
				secs[i].Data = payload
			}
		}
		return secs
	})
}

func dropSection(t *testing.T, valid []byte, tag string) []byte {
	t.Helper()
	return rebuildSections(t, valid, func(secs []secfile.Section) []secfile.Section {
		out := secs[:0]
		for _, s := range secs {
			if s.Tag != tag {
				out = append(out, s)
			}
		}
		return out
	})
}
