package index

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/secfile"
)

// Compact on-disk codec for one Index: the interned-dictionary,
// delta-varint, fixed-column layout of DESIGN.md §6 ("On-disk format").
// The file is a secfile container — magic "RFCI", version 1 — with four
// sections:
//
//	"term"  interned term dictionary: the vocabulary sorted ascending,
//	        as a secfile string table (count, uint32 end-offset column,
//	        concatenated bytes) — binary-searchable in place.
//	"post"  posting lists, one per dictionary term in dictionary order:
//	        uvarint df, then df × (uvarint unit-delta, uvarint TF). The
//	        first delta is the unit id itself; each subsequent delta is
//	        the gap to the previous unit and must be ≥ 1, so unit ids
//	        are strictly ascending by construction — the invariant the
//	        binary-search Weight path depends on. TF must be ≥ 1 (the
//	        LogTF numerator, recomputed on load, is log(TF)+1 and would
//	        be -Inf at TF = 0).
//	"unit"  per-unit statistics as fixed-width columns: uvarint unit
//	        count, a float64 column of Eq 7 weight denominators, a
//	        uint32 column of unique-term counts.
//	"stat"  collection statistics: uvarint totalUnique (the NU-average
//	        numerator; cross-checked against the unit column on load).
//
// Everything derivable is recomputed on load (LogTF) or cross-checked
// against the postings (unique counts, denominators, totalUnique), so a
// snapshot that decodes but violates a query-path invariant is rejected
// by validateSnapshot with a descriptive error instead of panicking or
// misranking at query time.

const (
	// CompactIndexMagic identifies a compact index file (or embedded
	// cluster blob); anything else falls back to the legacy gob decoder.
	CompactIndexMagic = "RFCI"
	// compactIndexVersion is the newest compact index layout this build
	// writes and reads.
	compactIndexVersion = 1
)

// appendCompact encodes snap into the compact layout and returns the
// file bytes. The encoding is deterministic — terms are emitted in
// sorted order — so write → read → re-write is byte-identical (the
// round-trip property test pins this).
func appendCompact(snap snapshot) ([]byte, error) {
	terms := make([]string, 0, len(snap.Postings))
	for t := range snap.Postings {
		terms = append(terms, t)
	}
	sort.Strings(terms)

	termSec := secfile.AppendStringTable(nil, terms)

	var postSec []byte
	for _, t := range terms {
		posts := snap.Postings[t]
		postSec = secfile.AppendUvarint(postSec, uint64(len(posts)))
		prev := int32(-1)
		for _, p := range posts {
			if p.Unit <= prev {
				return nil, fmt.Errorf("index: term %q postings not strictly ascending (unit %d after %d)", t, p.Unit, prev)
			}
			if p.TF < 1 {
				return nil, fmt.Errorf("index: term %q unit %d has TF %d (must be >= 1)", t, p.Unit, p.TF)
			}
			// The first delta is the absolute unit id; each later delta is
			// the gap to the previous unit (≥ 1 under strict ascent).
			delta := uint64(p.Unit)
			if prev >= 0 {
				delta = uint64(p.Unit - prev)
			}
			postSec = secfile.AppendUvarint(postSec, delta)
			postSec = secfile.AppendUvarint(postSec, uint64(p.TF))
			prev = p.Unit
		}
	}

	if len(snap.Denoms) != len(snap.Uniques) {
		return nil, fmt.Errorf("index: %d denominators but %d unique counts", len(snap.Denoms), len(snap.Uniques))
	}
	unitSec := secfile.AppendUvarint(nil, uint64(len(snap.Denoms)))
	unitSec = secfile.AppendFloat64s(unitSec, snap.Denoms)
	uniq := make([]uint32, len(snap.Uniques))
	for i, u := range snap.Uniques {
		if u < 0 {
			return nil, fmt.Errorf("index: unit %d has negative unique-term count %d", i, u)
		}
		uniq[i] = uint32(u)
	}
	unitSec = secfile.AppendUint32s(unitSec, uniq)

	statSec := secfile.AppendUvarint(nil, uint64(snap.TotalUnique))

	var buf appendBuffer
	if _, err := secfile.Encode(&buf, CompactIndexMagic, compactIndexVersion, []secfile.Section{
		{Tag: "term", Data: termSec},
		{Tag: "post", Data: postSec},
		{Tag: "unit", Data: unitSec},
		{Tag: "stat", Data: statSec},
	}); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// decodeCompact parses a compact index file into snapshot form. It
// reconstructs the postings map and unit columns; invariant validation
// (ascending units in range, TF ≥ 1, consistent per-unit statistics) is
// shared with the legacy path via validateSnapshot, which the caller
// runs next.
func decodeCompact(data []byte) (snapshot, error) {
	var snap snapshot
	f, err := secfile.Decode(data, CompactIndexMagic, compactIndexVersion)
	if err != nil {
		return snap, err
	}

	termSec, err := f.Section("term")
	if err != nil {
		return snap, err
	}
	terms, rest, err := secfile.ParseStringTable(termSec)
	if err != nil {
		return snap, fmt.Errorf("index: term dictionary: %w", err)
	}
	if len(rest) != 0 {
		return snap, fmt.Errorf("index: %d trailing bytes in term dictionary", len(rest))
	}

	unitSec, err := f.Section("unit")
	if err != nil {
		return snap, err
	}
	n64, unitSec, err := secfile.Uvarint(unitSec)
	if err != nil {
		return snap, fmt.Errorf("index: unit count: %w", err)
	}
	if n64 > uint64(math.MaxInt32) {
		return snap, fmt.Errorf("index: unit count %d exceeds int32 ids", n64)
	}
	nUnits := int(n64)
	if uint64(len(unitSec)) != uint64(nUnits)*12 {
		return snap, fmt.Errorf("index: unit columns for %d units need %d bytes, have %d", nUnits, nUnits*12, len(unitSec))
	}
	snap.Denoms, err = secfile.Float64Col(unitSec[:nUnits*8], nUnits)
	if err != nil {
		return snap, fmt.Errorf("index: denominator column: %w", err)
	}
	uniq, err := secfile.Uint32Col(unitSec[nUnits*8:], nUnits)
	if err != nil {
		return snap, fmt.Errorf("index: unique-count column: %w", err)
	}
	snap.Uniques = make([]int32, nUnits)
	for i, u := range uniq {
		if u > uint32(math.MaxInt32) {
			return snap, fmt.Errorf("index: unit %d unique-term count %d overflows int32", i, u)
		}
		snap.Uniques[i] = int32(u)
	}

	postSec, err := f.Section("post")
	if err != nil {
		return snap, err
	}
	snap.Postings = make(map[string][]Posting, len(terms))
	for ti, t := range terms {
		df64, rest, err := secfile.Uvarint(postSec)
		if err != nil {
			return snap, fmt.Errorf("index: term %q postings: %w", t, err)
		}
		postSec = rest
		if df64 > uint64(nUnits) {
			return snap, fmt.Errorf("index: term %q declares %d postings over %d units", t, df64, nUnits)
		}
		if ti > 0 && t <= terms[ti-1] {
			return snap, fmt.Errorf("index: term dictionary not sorted at %q", t)
		}
		posts := make([]Posting, int(df64))
		prev := int64(-1)
		for i := range posts {
			delta, rest, err := secfile.Uvarint(postSec)
			if err != nil {
				return snap, fmt.Errorf("index: term %q posting %d delta: %w", t, i, err)
			}
			tf, rest2, err := secfile.Uvarint(rest)
			if err != nil {
				return snap, fmt.Errorf("index: term %q posting %d TF: %w", t, i, err)
			}
			postSec = rest2
			if i > 0 && delta == 0 {
				return snap, fmt.Errorf("index: term %q postings not strictly ascending (zero delta at %d)", t, i)
			}
			unit := prev + int64(delta)
			if i == 0 {
				unit = int64(delta) // the first delta is the absolute id
			}
			if unit >= int64(nUnits) {
				return snap, fmt.Errorf("index: term %q posting unit %d out of range [0, %d)", t, unit, nUnits)
			}
			if tf < 1 || tf > uint64(math.MaxInt32) {
				return snap, fmt.Errorf("index: term %q unit %d has TF %d (must be in [1, 2^31))", t, unit, tf)
			}
			posts[i] = Posting{Unit: int32(unit), TF: int32(tf)}
			prev = unit
		}
		snap.Postings[t] = posts
	}
	if len(postSec) != 0 {
		return snap, fmt.Errorf("index: %d trailing bytes in posting section", len(postSec))
	}

	statSec, err := f.Section("stat")
	if err != nil {
		return snap, err
	}
	tot, statSec, err := secfile.Uvarint(statSec)
	if err != nil {
		return snap, fmt.Errorf("index: totalUnique: %w", err)
	}
	if len(statSec) != 0 {
		return snap, fmt.Errorf("index: %d trailing bytes in stat section", len(statSec))
	}
	if tot > uint64(math.MaxInt64) {
		return snap, fmt.Errorf("index: totalUnique %d overflows int64", tot)
	}
	snap.TotalUnique = int64(tot)
	return snap, nil
}

// appendBuffer is a minimal io.Writer over an append-grown slice
// (bytes.Buffer would copy on Bytes()-stability grounds we don't need).
type appendBuffer struct{ b []byte }

func (a *appendBuffer) Write(p []byte) (int, error) {
	a.b = append(a.b, p...)
	return len(p), nil
}
