package index

import (
	"bytes"
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func buildIndex(units ...[]string) *Index {
	ix := New()
	for _, u := range units {
		ix.Add(u)
	}
	return ix
}

func TestAddAssignsDenseIDs(t *testing.T) {
	ix := New()
	for want := 0; want < 5; want++ {
		if got := ix.Add([]string{"a"}); got != want {
			t.Fatalf("Add returned %d, want %d", got, want)
		}
	}
	if ix.NumUnits() != 5 {
		t.Fatalf("NumUnits = %d", ix.NumUnits())
	}
}

func TestDocFreqAndNumTerms(t *testing.T) {
	ix := buildIndex(
		[]string{"raid", "disk", "disk"},
		[]string{"raid", "hotel"},
		[]string{"hotel", "pool"},
	)
	if got := ix.DocFreq("raid"); got != 2 {
		t.Errorf("DocFreq(raid) = %d, want 2", got)
	}
	if got := ix.DocFreq("disk"); got != 1 {
		t.Errorf("DocFreq(disk) = %d, want 1 (duplicates are one unit)", got)
	}
	if got := ix.DocFreq("missing"); got != 0 {
		t.Errorf("DocFreq(missing) = %d", got)
	}
	if got := ix.NumTerms(); got != 4 {
		t.Errorf("NumTerms = %d, want 4", got)
	}
}

func TestWeightEquation(t *testing.T) {
	// Unit: {disk×2, raid×1}. denom = (ln2+1)+(ln1+1); two units keep
	// avgUnique at 2 so NU = 1.
	ix := buildIndex(
		[]string{"disk", "disk", "raid"},
		[]string{"x", "y"},
	)
	denom := (math.Log(2) + 1) + (math.Log(1) + 1)
	// avgUnique = (2+2)/2 = 2, unit 0 has 2 unique terms → NU = 1.
	want := (math.Log(2) + 1) / denom
	if got := ix.Weight("disk", 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Weight(disk,0) = %v, want %v", got, want)
	}
	if got := ix.Weight("absent", 0); got != 0 {
		t.Errorf("Weight(absent) = %v, want 0", got)
	}
	if got := ix.Weight("disk", 1); got != 0 {
		t.Errorf("Weight(disk, wrong unit) = %v, want 0", got)
	}
}

func TestNUPenalizesLongUnits(t *testing.T) {
	// Unit 0 has 8 unique terms; unit 1 has 2. avgUnique = 5. Unit 0's NU
	// penalty is 8/5; unit 1 gets no boost.
	long := []string{"a", "b", "c", "d", "e", "f", "g", "shared"}
	short := []string{"shared", "z"}
	ix := buildIndex(long, short)
	wLong := ix.Weight("shared", 0)
	wShort := ix.Weight("shared", 1)
	// Same TF (1) but the long unit has a bigger denominator AND the NU
	// penalty, so its weight must be well below the short unit's.
	if wLong >= wShort {
		t.Errorf("weight in long unit %v >= weight in short unit %v", wLong, wShort)
	}
	if nu(8, 5) != 8.0/5.0 {
		t.Errorf("nu(8,5) = %v", nu(8, 5))
	}
	if nu(2, 5) != 1 {
		t.Errorf("nu(2,5) = %v, want 1 (no boost for short units)", nu(2, 5))
	}
	if nu(3, 0) != 1 {
		t.Errorf("nu with zero average = %v, want 1", nu(3, 0))
	}
}

func TestIDF(t *testing.T) {
	ix := New()
	for i := 0; i < 10; i++ {
		terms := []string{"common"}
		if i == 0 {
			terms = append(terms, "rare")
		}
		ix.Add(terms)
	}
	rare := ix.IDF("rare")
	common := ix.IDF("common")
	if rare <= 0 {
		t.Errorf("IDF(rare) = %v, want > 0", rare)
	}
	if common != 0 {
		t.Errorf("IDF(common, in all units) = %v, want 0 (floored)", common)
	}
	if ix.IDF("absent") != 0 {
		t.Error("IDF(absent) should be 0")
	}
	want := math.Log((10 - 1 + 0.5) / 1.5)
	if math.Abs(rare-want) > 1e-12 {
		t.Errorf("IDF(rare) = %v, want %v", rare, want)
	}
}

func TestQueryRanksSharedRareTermsFirst(t *testing.T) {
	ix := buildIndex(
		[]string{"raid", "performance", "degrade"}, // 0: full match
		[]string{"raid", "hotel", "pool"},          // 1: partial
		[]string{"hotel", "pool", "beach"},         // 2: unrelated
		[]string{"printer", "toner"},               // 3: unrelated
		[]string{"performance", "degrade", "disk"}, // 4: close match
	)
	q := TermFrequencies([]string{"raid", "performance", "degrade"})
	res := ix.Query(q, 3, nil)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].Unit != 0 {
		t.Errorf("top result = unit %d, want 0", res[0].Unit)
	}
	// Scores must be descending.
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Errorf("results not sorted: %v", res)
		}
	}
	// Unit 2 and 3 share no query term → absent.
	for _, r := range res {
		if r.Unit == 2 || r.Unit == 3 {
			t.Errorf("unrelated unit %d ranked", r.Unit)
		}
	}
}

func TestQueryExclude(t *testing.T) {
	ix := buildIndex(
		[]string{"raid", "disk"},
		[]string{"raid", "disk"},
	)
	res := ix.Query(TermFrequencies([]string{"raid", "disk"}), 10, func(u int) bool { return u == 0 })
	for _, r := range res {
		if r.Unit == 0 {
			t.Fatal("excluded unit returned")
		}
	}
}

func TestQueryTopNBounds(t *testing.T) {
	ix := New()
	for i := 0; i < 50; i++ {
		terms := []string{"t"}
		if i < 12 {
			terms = append(terms, "rare")
		}
		ix.Add(terms)
	}
	ix.Add([]string{"other"})
	res := ix.Query(TermFrequencies([]string{"rare"}), 5, nil)
	if len(res) != 5 {
		t.Fatalf("topN=5 returned %d results", len(res))
	}
	if got := ix.Query(nil, 5, nil); len(got) != 0 {
		t.Error("empty query should return no results")
	}
	if got := ix.Query(TermFrequencies([]string{"t"}), 0, nil); got != nil {
		t.Error("topN=0 should return nil")
	}
}

func TestQueryDeterministicOnTies(t *testing.T) {
	ix := buildIndex(
		[]string{"a", "unique1"},
		[]string{"a", "unique2"},
		[]string{"a", "unique3"},
		[]string{"b"},
	)
	q := TermFrequencies([]string{"a"})
	first := ix.Query(q, 2, nil)
	for i := 0; i < 10; i++ {
		again := ix.Query(q, 2, nil)
		for j := range first {
			if first[j] != again[j] {
				t.Fatal("tied query results are nondeterministic")
			}
		}
	}
}

// Property: query scores are finite, non-negative, and results respect topN
// and descending order.
func TestQueryProperty(t *testing.T) {
	vocab := []string{"a", "b", "c", "d", "e", "f"}
	f := func(unitSpec [][]uint8, query []uint8, topN8 uint8) bool {
		ix := New()
		for _, spec := range unitSpec {
			var terms []string
			for _, s := range spec {
				terms = append(terms, vocab[int(s)%len(vocab)])
			}
			if len(terms) == 0 {
				terms = []string{"empty"}
			}
			ix.Add(terms)
		}
		var qterms []string
		for _, s := range query {
			qterms = append(qterms, vocab[int(s)%len(vocab)])
		}
		topN := 1 + int(topN8%10)
		res := ix.Query(TermFrequencies(qterms), topN, nil)
		if len(res) > topN {
			return false
		}
		for i, r := range res {
			if math.IsNaN(r.Score) || math.IsInf(r.Score, 0) || r.Score < 0 {
				return false
			}
			if i > 0 && r.Score > res[i-1].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAddQuery(t *testing.T) {
	ix := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ix.Add([]string{"raid", "disk", "performance"})
			}
		}()
		go func() {
			defer wg.Done()
			q := TermFrequencies([]string{"raid"})
			for i := 0; i < 200; i++ {
				ix.Query(q, 5, nil)
			}
		}()
	}
	wg.Wait()
	if ix.NumUnits() != 800 {
		t.Fatalf("NumUnits = %d, want 800", ix.NumUnits())
	}
}

func TestPersistRoundTrip(t *testing.T) {
	ix := buildIndex(
		[]string{"raid", "controller", "performance"},
		[]string{"hotel", "pool"},
		[]string{"raid", "hotel"},
	)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	restored := New()
	if _, err := restored.ReadFrom(&buf); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if restored.NumUnits() != ix.NumUnits() || restored.NumTerms() != ix.NumTerms() {
		t.Fatal("restored index size mismatch")
	}
	q := TermFrequencies([]string{"raid", "performance"})
	a := ix.Query(q, 10, nil)
	b := restored.Query(q, 10, nil)
	if len(a) != len(b) {
		t.Fatalf("result count mismatch: %d vs %d", len(a), len(b))
	}
	sort.Slice(a, func(i, j int) bool { return a[i].Unit < a[j].Unit })
	sort.Slice(b, func(i, j int) bool { return b[i].Unit < b[j].Unit })
	for i := range a {
		if a[i].Unit != b[i].Unit || math.Abs(a[i].Score-b[i].Score) > 1e-12 {
			t.Fatalf("result %d differs after round trip: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPersistEmptyIndex(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New().WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo empty: %v", err)
	}
	restored := New()
	if _, err := restored.ReadFrom(&buf); err != nil {
		t.Fatalf("ReadFrom empty: %v", err)
	}
	if restored.NumUnits() != 0 {
		t.Fatal("restored empty index has units")
	}
	// Must still be usable after restore.
	restored.Add([]string{"x"})
	if restored.NumUnits() != 1 {
		t.Fatal("restored index not usable")
	}
}

func TestTermFrequencies(t *testing.T) {
	tf := TermFrequencies([]string{"a", "b", "a", "a"})
	if tf["a"] != 3 || tf["b"] != 1 {
		t.Errorf("TermFrequencies = %v", tf)
	}
}

func BenchmarkQuery(b *testing.B) {
	ix := New()
	vocab := []string{"raid", "disk", "hotel", "pool", "printer", "toner",
		"driver", "linux", "install", "performance", "degrade", "jbod"}
	for i := 0; i < 10000; i++ {
		terms := []string{vocab[i%12], vocab[(i*7+3)%12], vocab[(i*5+1)%12]}
		ix.Add(terms)
	}
	q := TermFrequencies([]string{"raid", "performance", "install"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(q, 10, nil)
	}
}

func BenchmarkAdd(b *testing.B) {
	ix := New()
	terms := []string{"raid", "disk", "performance", "install", "linux", "degrade"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Add(terms)
	}
}

func TestExplainReconcilesWithQuery(t *testing.T) {
	// The explain contract at the index layer: for every unit Query
	// scores, the sum of Explain's per-term products must reproduce the
	// unit's score bit-for-bit (same factors, same summation order).
	ix := buildIndex(
		[]string{"disk", "click", "boot", "fail", "disk"},
		[]string{"disk", "boot", "slow", "fan"},
		[]string{"screen", "flicker", "driver", "driver"},
		[]string{"disk", "fail", "smart", "error", "backup"},
		[]string{"boot", "loop", "bios", "reset"},
	)
	for _, unit := range [][]string{
		{"disk", "click", "boot", "fail", "disk"},
		{"screen", "flicker", "driver", "driver"},
	} {
		q := TermFrequencies(unit)
		results := ix.Query(q, 10, nil)
		if len(results) == 0 {
			t.Fatal("no results to explain")
		}
		for _, r := range results {
			var sum float64
			for _, ts := range ix.Explain(q, r.Unit) {
				if ts.Product != ts.QueryTF*ts.Weight*ts.IDF {
					t.Fatalf("unit %d term %q: product %v != %v·%v·%v",
						r.Unit, ts.Term, ts.Product, ts.QueryTF, ts.Weight, ts.IDF)
				}
				sum += ts.Product
			}
			if sum != r.Score {
				t.Fatalf("unit %d: explain sum %v != query score %v (Δ %g)",
					r.Unit, sum, r.Score, math.Abs(sum-r.Score))
			}
		}
	}
}

func TestExplainUnknownUnitAndTerms(t *testing.T) {
	ix := buildIndex([]string{"a", "b"}, []string{"b", "c"})
	if got := ix.Explain(TermFrequencies([]string{"a"}), -1); got != nil {
		t.Fatalf("Explain(-1) = %v, want nil", got)
	}
	if got := ix.Explain(TermFrequencies([]string{"a"}), 99); got != nil {
		t.Fatalf("Explain(out of range) = %v, want nil", got)
	}
	// A query of terms absent from the unit explains to an empty set.
	if got := ix.Explain(TermFrequencies([]string{"zzz"}), 0); len(got) != 0 {
		t.Fatalf("Explain(absent term) = %v, want empty", got)
	}
}
