package index

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
)

// FuzzIndexLoad drives arbitrary bytes through the full snapshot
// loader — magic sniffing, compact or gob decode, the validateSnapshot
// gauntlet. Whatever the input: a descriptive error or a queryable
// index, never a panic. Any input that loads must canonicalize: its
// compact re-encoding loads back and re-encodes to the identical bytes.
func FuzzIndexLoad(f *testing.F) {
	ix := New()
	ix.Add([]string{"raid", "disk", "raid"})
	ix.Add([]string{"hotel", "pool"})
	var compact, legacy bytes.Buffer
	if _, err := ix.WriteTo(&compact); err != nil {
		f.Fatal(err)
	}
	if _, err := ix.WriteGobTo(&legacy); err != nil {
		f.Fatal(err)
	}
	var empty bytes.Buffer
	if _, err := New().WriteTo(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(compact.Bytes())
	f.Add(legacy.Bytes())
	f.Add(empty.Bytes())
	f.Add([]byte(CompactIndexMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded := New()
		if err := loaded.Load(data); err != nil {
			return
		}
		var first bytes.Buffer
		if _, err := loaded.WriteTo(&first); err != nil {
			t.Fatalf("re-encoding a loaded snapshot: %v", err)
		}
		again := New()
		if err := again.Load(first.Bytes()); err != nil {
			t.Fatalf("canonical re-encoding does not load: %v", err)
		}
		var second bytes.Buffer
		if _, err := again.WriteTo(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("canonical form not a fixed point: %d vs %d bytes", first.Len(), second.Len())
		}
	})
}

// FuzzGobSnapshot fuzzes the structured space the gob path accepts:
// arbitrary posting/statistics values round-tripped through the real
// gob codec, so the fuzzer explores validateSnapshot's decision surface
// rather than gob's framing.
func FuzzGobSnapshot(f *testing.F) {
	f.Add("raid", int32(0), int32(2), 1.6931471805599454, int32(1), int64(1))
	f.Add("x", int32(-5), int32(0), 0.0, int32(3), int64(9))
	f.Fuzz(func(t *testing.T, term string, unit, tf int32, denom float64, unique int32, total int64) {
		snap := snapshot{
			Postings:    map[string][]Posting{term: {{Unit: unit, TF: tf}}},
			Denoms:      []float64{denom},
			Uniques:     []int32{unique},
			TotalUnique: total,
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
			t.Skip() // gob rejects e.g. invalid UTF-8 term keys? keep going
		}
		loaded := New()
		if err := loaded.Load(buf.Bytes()); err != nil {
			return
		}
		// Accepted: the invariants must actually hold — including the
		// denominator, where a NaN must not slip through the tolerance check.
		if unit != 0 || tf < 1 || unique != 1 || total != 1 {
			t.Fatalf("invalid snapshot accepted: unit=%d tf=%d unique=%d total=%d", unit, tf, unique, total)
		}
		want := math.Log(float64(tf)) + 1
		if !(math.Abs(denom-want) <= 1e-9*math.Max(1, math.Abs(want))) {
			t.Fatalf("inconsistent denominator accepted: %v (postings give %v)", denom, want)
		}
	})
}
