// Package index implements the full-text indexing layer of Sec 7: an
// inverted index over text units (whole posts for the FullText baseline,
// intention-cluster segments for the paper's method) with the MySQL-5.5.3
// style term weighting of Eq 7/8 — log-scaled term frequency, a
// unique-term-count length normalization NU, and the smoothed probabilistic
// inverse document frequency of Eq 9. One Index instance backs one
// intention cluster (the paper builds |C| full-text indices plus one
// document-id index; see Fig 6); the whole-collection FullText baseline is
// the same structure with documents as units.
//
// The index is safe for concurrent use: additions take the write lock,
// queries the read lock. Derived statistics (average unique-term count,
// document frequencies) are maintained incrementally so queries never
// rescan the collection.
package index

import (
	"container/heap"
	"math"
	"sort"
	"sync"
)

// Posting records one term occurrence list entry: the unit that contains
// the term and the term's frequency in it.
type Posting struct {
	Unit int32
	TF   int32
}

// unitStats caches the per-unit quantities of Eq 7/8: the weight
// denominator Σ(log f(t')+1) over the unit's distinct terms, and the count
// of unique terms feeding the NU normalization.
type unitStats struct {
	denom  float64
	unique int32
}

// Index is an inverted full-text index over integer-identified units.
type Index struct {
	mu          sync.RWMutex
	postings    map[string][]Posting
	units       []unitStats
	totalUnique int64 // sum of unique-term counts, for the NU average
}

// New returns an empty index.
func New() *Index {
	return &Index{postings: make(map[string][]Posting)}
}

// Add indexes a unit's terms and returns the unit id the index assigned
// (dense, starting at 0). Term order is irrelevant; duplicates are counted
// as term frequency.
func (ix *Index) Add(terms []string) int {
	tf := make(map[string]int, len(terms))
	for _, t := range terms {
		tf[t]++
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id := int32(len(ix.units))
	var denom float64
	for t, f := range tf {
		ix.postings[t] = append(ix.postings[t], Posting{Unit: id, TF: int32(f)})
		denom += math.Log(float64(f)) + 1
	}
	ix.units = append(ix.units, unitStats{denom: denom, unique: int32(len(tf))})
	ix.totalUnique += int64(len(tf))
	return int(id)
}

// NumUnits returns the number of indexed units (|I| in Eq 9).
func (ix *Index) NumUnits() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.units)
}

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}

// DocFreq returns the number of units containing the term (|Iᵗ| in Eq 9).
func (ix *Index) DocFreq(term string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings[term])
}

// avgUniqueLocked returns the mean unique-term count per unit. Callers must
// hold at least the read lock.
func (ix *Index) avgUniqueLocked() float64 {
	if len(ix.units) == 0 {
		return 0
	}
	return float64(ix.totalUnique) / float64(len(ix.units))
}

// nu computes the length-normalization factor of Eq 7/8: units with more
// unique terms than the collection average are penalized proportionally;
// shorter units are not boosted (MySQL's behavior).
func nu(unique int32, avgUnique float64) float64 {
	if avgUnique <= 0 {
		return 1
	}
	if ratio := float64(unique) / avgUnique; ratio > 1 {
		return ratio
	}
	return 1
}

// Weight computes the Eq 7/8 weight of a term within a unit. It returns 0
// if the term does not occur in the unit.
func (ix *Index) Weight(term string, unit int) float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, p := range ix.postings[term] {
		if int(p.Unit) == unit {
			return ix.weightLocked(p, ix.avgUniqueLocked())
		}
	}
	return 0
}

func (ix *Index) weightLocked(p Posting, avgUnique float64) float64 {
	u := ix.units[p.Unit]
	if u.denom == 0 {
		return 0
	}
	return (math.Log(float64(p.TF)) + 1) / (u.denom * nu(u.unique, avgUnique))
}

// IDF computes the smoothed probabilistic inverse document frequency of
// Eq 9, log((N−n+0.5)/(n+0.5)), floored at zero so terms occurring in most
// units contribute nothing rather than negative evidence.
func (ix *Index) IDF(term string) float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return idf(len(ix.units), len(ix.postings[term]))
}

func idf(n, df int) float64 {
	if df == 0 {
		return 0
	}
	v := math.Log((float64(n-df) + 0.5) / (float64(df) + 0.5))
	if v < 0 {
		return 0
	}
	return v
}

// Result is one scored unit of a query.
type Result struct {
	Unit  int
	Score float64
}

// Query scores every unit containing at least one query term with Eq 9 —
// Σ_t f_q(t)·w(t,unit)·pIDF(t) — and returns the topN results in
// descending score order. The exclude predicate (may be nil) drops units
// from the result, e.g. the query document's own segment.
func (ix *Index) Query(queryTF map[string]float64, topN int, exclude func(unit int) bool) []Result {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if topN <= 0 || len(ix.units) == 0 {
		return nil
	}
	avgUnique := ix.avgUniqueLocked()
	// Accumulate in sorted term order: float summation is not associative,
	// so map-order iteration would make scores vary at the ULP level across
	// runs and break tie determinism.
	terms := make([]string, 0, len(queryTF))
	for term := range queryTF {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	scores := make(map[int32]float64)
	for _, term := range terms {
		qf := queryTF[term]
		posts := ix.postings[term]
		if len(posts) == 0 {
			continue
		}
		tIDF := idf(len(ix.units), len(posts))
		if tIDF == 0 {
			continue
		}
		for _, p := range posts {
			scores[p.Unit] += qf * ix.weightLocked(p, avgUnique) * tIDF
		}
	}

	h := &resultHeap{}
	heap.Init(h)
	for unit, score := range scores {
		if score <= 0 {
			continue
		}
		if exclude != nil && exclude(int(unit)) {
			continue
		}
		cand := Result{Unit: int(unit), Score: score}
		if h.Len() < topN {
			heap.Push(h, cand)
		} else if beats(cand, (*h)[0]) {
			(*h)[0] = cand
			heap.Fix(h, 0)
		}
	}
	out := make([]Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out
}

// TermFrequencies converts a term slice into the query TF map Query
// expects (f_sq(t) of Eq 9).
func TermFrequencies(terms []string) map[string]float64 {
	tf := make(map[string]float64, len(terms))
	for _, t := range terms {
		tf[t]++
	}
	return tf
}

// beats reports whether candidate a outranks b under the full ordering
// (higher score first, lower unit id on ties) — used at the heap
// replacement gate so ties never depend on map iteration order.
func beats(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Unit < b.Unit
}

// resultHeap is a min-heap on score (ties broken by unit id for
// determinism), used to keep the running top-N.
type resultHeap []Result

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Unit > h[j].Unit
}
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
