// Package index implements the full-text indexing layer of Sec 7: an
// inverted index over text units (whole posts for the FullText baseline,
// intention-cluster segments for the paper's method) with the MySQL-5.5.3
// style term weighting of Eq 7/8 — log-scaled term frequency, a
// unique-term-count length normalization NU, and the smoothed probabilistic
// inverse document frequency of Eq 9. One Index instance backs one
// intention cluster (the paper builds |C| full-text indices plus one
// document-id index; see Fig 6); the whole-collection FullText baseline is
// the same structure with documents as units.
//
// Locking model: a single RWMutex guards all index state. Add (and
// ReadFrom) take the write lock; Query and every read accessor take the
// read lock for their full duration, so any number of queries proceed
// concurrently and additions serialize against them. Derived statistics
// (average unique-term count, document frequencies, per-posting log-TF
// numerators) are maintained incrementally at insertion time, and per-term
// pIDF values are memoized with their validity conditions (collection
// size, document frequency), so the query hot path recomputes nothing that
// insertion already knows.
package index

import (
	"math"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/topk"
)

// Observability instruments for the per-cluster query internals. The
// candidate/result histograms size the scoring stage (how many units a
// query touches, how many survive the top-n heap); the scorepool
// counters expose the pooled score-map hit rate (hits = get − new).
// index.scan.postings counts postings actually touched by a scan
// (full-list walks plus the pruned path's per-survivor binary probes) —
// the denominator for the pruning counters in prune.go. All recording
// is gated on the obs enabled flag and free otherwise.
var (
	histQueryCandidates = obs.NewCountHistogram("index.query.candidates")
	histQueryResults    = obs.NewCountHistogram("index.query.results")
	ctrScorePoolGet     = obs.NewCounter("index.scorepool.get")
	ctrScorePoolNew     = obs.NewCounter("index.scorepool.new")
	ctrScanPostings     = obs.NewCounter("index.scan.postings")
)

// Posting records one term occurrence list entry: the unit that contains
// the term, the term's frequency in it, and the precomputed Eq 7 weight
// numerator log(TF)+1 (stored at insertion so queries multiply instead of
// calling math.Log per posting). Posting lists are ordered by ascending
// unit id — Add assigns dense increasing ids — which Weight exploits for
// binary search.
type Posting struct {
	Unit  int32
	TF    int32
	LogTF float64
}

// unitStats caches the per-unit quantities of Eq 7/8: the weight
// denominator Σ(log f(t')+1) over the unit's distinct terms, and the count
// of unique terms feeding the NU normalization.
type unitStats struct {
	denom  float64
	unique int32
}

// Index is an inverted full-text index over integer-identified units.
type Index struct {
	mu          sync.RWMutex
	postings    map[string][]Posting
	units       []unitStats
	totalUnique int64 // sum of unique-term counts, for the NU average

	// bounds holds one score upper bound per posting list (term), the
	// foundation of the max-score pruned scan (see prune.go). Maintained
	// incrementally by Add under the write lock and rebuilt wholesale on
	// snapshot load; read under the read lock.
	bounds map[string]listBound

	// global, when non-nil, is the shared collection-statistics pool the
	// scoring reads Eq 9's N and n and the NU average from instead of the
	// local state — the mechanism that makes a sharded partition of one
	// collection score bit-identically to the whole (see GlobalStats).
	// Written only by AttachStats under mu; read under mu.
	global *GlobalStats
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings: make(map[string][]Posting),
		bounds:   make(map[string]listBound),
	}
}

// scoreMap is the pooled per-query score accumulator. The reused flag
// distinguishes a map freshly allocated by the pool from one recycled
// from an earlier query — the per-request "pool hit" detail a trace
// records (the aggregate hit rate is ctrScorePoolGet vs
// ctrScorePoolNew).
type scoreMap struct {
	m      map[int32]float64
	alive  []int32   // pruned-scan scratch: candidate units after compaction
	ascore []float64 // pruned-scan scratch: partial scores parallel to alive
	reused bool
}

// scorePool recycles the per-query score accumulator maps; serving
// workloads run Query at high rates and the map is the query's dominant
// allocation.
var scorePool = sync.Pool{
	New: func() interface{} {
		ctrScorePoolNew.Inc()
		return &scoreMap{m: make(map[int32]float64, 64)}
	},
}

// Add indexes a unit's terms and returns the unit id the index assigned
// (dense, starting at 0). Term order is irrelevant; duplicates are counted
// as term frequency. The Eq 7 weight denominator is summed in sorted term
// order — float summation is not associative, so accumulating in map
// iteration order would make two builds of the same collection differ at
// the ULP level and break score-identical rebuilds. Add is safe for
// concurrent use with itself and with queries.
func (ix *Index) Add(terms []string) int {
	tf := make(map[string]int, len(terms))
	for _, t := range terms {
		tf[t]++
	}
	unique := make([]string, 0, len(tf))
	for t := range tf {
		unique = append(unique, t)
	}
	sort.Strings(unique)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	g := ix.global
	if g != nil {
		g.mu.Lock()
		defer g.mu.Unlock()
	}
	id := int32(len(ix.units))
	var denom float64
	logTFs := make([]float64, len(unique))
	for i, t := range unique {
		logTF := math.Log(float64(tf[t])) + 1
		logTFs[i] = logTF
		ix.postings[t] = append(ix.postings[t], Posting{Unit: id, TF: int32(tf[t]), LogTF: logTF})
		denom += logTF
		if g != nil {
			g.df[t]++
		}
	}
	// Second pass: fold the new unit into each touched list's score upper
	// bound. The Eq 7 denominator is only known once every unique term has
	// been summed, so this cannot ride along the first pass.
	for i, t := range unique {
		ix.bounds[t] = ix.bounds[t].add(logTFs[i], denom, int32(len(tf)))
	}
	ix.units = append(ix.units, unitStats{denom: denom, unique: int32(len(tf))})
	ix.totalUnique += int64(len(tf))
	if g != nil {
		g.units++
		g.totalUnique += int64(len(tf))
	}
	return int(id)
}

// NumUnits returns the number of indexed units (|I| in Eq 9).
func (ix *Index) NumUnits() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.units)
}

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}

// DocFreq returns the number of units containing the term (|Iᵗ| in Eq 9).
func (ix *Index) DocFreq(term string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings[term])
}

// avgUniqueLocked returns the mean unique-term count per unit — pooled
// across the collection when attached to a GlobalStats, local otherwise.
// The pooled division uses the same two integers an unsharded index
// would derive locally, so the float64 quotient is bit-identical.
// Callers must hold at least the read lock (and the pool's, when
// attached — see rlockStats).
func (ix *Index) avgUniqueLocked() float64 {
	if ix.global != nil {
		if ix.global.units == 0 {
			return 0
		}
		return float64(ix.global.totalUnique) / float64(ix.global.units)
	}
	if len(ix.units) == 0 {
		return 0
	}
	return float64(ix.totalUnique) / float64(len(ix.units))
}

// nu computes the length-normalization factor of Eq 7/8: units with more
// unique terms than the collection average are penalized proportionally;
// shorter units are not boosted (MySQL's behavior).
func nu(unique int32, avgUnique float64) float64 {
	if avgUnique <= 0 {
		return 1
	}
	if ratio := float64(unique) / avgUnique; ratio > 1 {
		return ratio
	}
	return 1
}

// Weight computes the Eq 7/8 weight of a term within a unit. It returns 0
// if the term does not occur in the unit. The posting list is ordered by
// unit id, so the lookup is a binary search rather than the former O(df)
// scan.
func (ix *Index) Weight(term string, unit int) float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.rlockStats() {
		defer ix.global.mu.RUnlock()
	}
	posts := ix.postings[term]
	i := sort.Search(len(posts), func(i int) bool { return int(posts[i].Unit) >= unit })
	if i < len(posts) && int(posts[i].Unit) == unit {
		return ix.weightLocked(posts[i], ix.avgUniqueLocked())
	}
	return 0
}

func (ix *Index) weightLocked(p Posting, avgUnique float64) float64 {
	u := ix.units[p.Unit]
	if u.denom == 0 {
		return 0
	}
	return p.LogTF / (u.denom * nu(u.unique, avgUnique))
}

// IDF computes the smoothed probabilistic inverse document frequency of
// Eq 9, log((N−n+0.5)/(n+0.5)), floored at zero so terms occurring in most
// units contribute nothing rather than negative evidence.
func (ix *Index) IDF(term string) float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.rlockStats() {
		defer ix.global.mu.RUnlock()
	}
	return ix.idfLocked(term, ix.dfLocked(term, ix.postings[term]))
}

// idfLocked returns the pIDF for a term with the given (effective)
// document frequency, computed directly — one subtraction, one
// division, one math.Log. An earlier revision memoized the value in a
// sync.Map keyed by term and validated by (n, df); under a mixed
// serve/add load every add moves n, so the cache allocated a fresh
// entry per term per probe without ever hitting, and on the read-only
// path the two sync.Map operations cost as much as the log they saved
// (BenchmarkQueryReadOnly pins the direct computation at parity).
// Callers must hold at least the read lock, plus the pool read lock
// when attached.
func (ix *Index) idfLocked(term string, df int) float64 {
	return idf(ix.nLocked(), df)
}

func idf(n, df int) float64 {
	if df == 0 {
		return 0
	}
	v := math.Log((float64(n-df) + 0.5) / (float64(df) + 0.5))
	if v < 0 {
		return 0
	}
	return v
}

// Result is one scored unit of a query.
type Result struct {
	Unit  int
	Score float64
}

// Query scores every unit containing at least one query term with Eq 9 —
// Σ_t f_q(t)·w(t,unit)·pIDF(t) — and returns the topN results in
// descending score order. The exclude predicate (may be nil) drops units
// from the result, e.g. the query document's own segment. On large
// collections the scan prunes with per-list score upper bounds (see
// prune.go); the results are bit-identical to QueryExhaustive's in
// every case.
func (ix *Index) Query(queryTF map[string]float64, topN int, exclude func(unit int) bool) []Result {
	return ix.QueryTraced(queryTF, topN, exclude, nil)
}

// QueryExhaustive is the always-exhaustive reference scorer: every
// posting of every query term is walked into the accumulator, exactly
// as Query scored before max-score pruning existed. It exists for the
// pruned-vs-exhaustive equivalence tests and benchmarks; serving paths
// should use Query.
func (ix *Index) QueryExhaustive(queryTF map[string]float64, topN int, exclude func(unit int) bool) []Result {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if topN <= 0 || len(ix.units) == 0 {
		return nil
	}
	if ix.rlockStats() {
		defer ix.global.mu.RUnlock()
	}
	terms := sortedTerms(queryTF)
	return ix.scanExhaustiveLocked(terms, queryTF, topN, exclude, nil)
}

// QueryTraced is Query with request-scoped tracing: when tr is non-nil
// it records one "index.query" event carrying the scan's candidate-set
// width, result count, and whether the pooled score map was a reuse
// (pool hit) or a fresh allocation. A nil tr costs one pointer check.
func (ix *Index) QueryTraced(queryTF map[string]float64, topN int, exclude func(unit int) bool, tr *obs.Trace) []Result {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if topN <= 0 || len(ix.units) == 0 {
		return nil
	}
	// When attached to a collection pool, hold its read lock for the whole
	// scan so n, df, and the NU average stay mutually consistent (lock
	// order: Index.mu then GlobalStats.mu, matching Add).
	if ix.rlockStats() {
		defer ix.global.mu.RUnlock()
	}
	terms := sortedTerms(queryTF)
	if ix.shouldPruneLocked(topN) {
		// Resolve the per-term factors upfront (the frozen-scoring shape)
		// and run the max-score scan. Factor values are identical to the
		// inline resolution below — the index and pool locks are held for
		// the whole call — so the scans are interchangeable bit-for-bit.
		qf := make([]float64, len(terms))
		idfs := make([]float64, len(terms))
		n := ix.nLocked()
		for i, t := range terms {
			qf[i] = queryTF[t]
			idfs[i] = idf(n, ix.dfLocked(t, ix.postings[t]))
		}
		avgUnique := ix.avgUniqueLocked()
		return ix.scanPrunedLocked(terms, qf, idfs, avgUnique, topN, 0, exclude, tr)
	}
	return ix.scanExhaustiveLocked(terms, queryTF, topN, exclude, tr)
}

// sortedTerms returns the query's terms in ascending order — the Eq 9
// accumulation order. Float summation is not associative, so map-order
// iteration would make scores vary at the ULP level across runs and
// break tie determinism.
func sortedTerms(queryTF map[string]float64) []string {
	terms := make([]string, 0, len(queryTF))
	for term := range queryTF {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	return terms
}

// scanExhaustiveLocked walks every posting of every query term into the
// pooled accumulator — the pre-pruning scan, kept verbatim as the
// reference semantics and as the fast path for collections too small
// for pruning to pay. Callers hold the read lock (and the pool's when
// attached).
func (ix *Index) scanExhaustiveLocked(terms []string, queryTF map[string]float64, topN int, exclude func(unit int) bool, tr *obs.Trace) []Result {
	avgUnique := ix.avgUniqueLocked()
	ctrScorePoolGet.Inc()
	sm := scorePool.Get().(*scoreMap)
	poolHit := sm.reused
	sm.reused = true
	scores := sm.m
	defer func() {
		clear(scores)
		scorePool.Put(sm)
	}()
	var scanned int64
	for _, term := range terms {
		qf := queryTF[term]
		posts := ix.postings[term]
		if len(posts) == 0 {
			continue
		}
		tIDF := ix.idfLocked(term, ix.dfLocked(term, posts))
		if tIDF == 0 {
			continue
		}
		scanned += int64(len(posts))
		for _, p := range posts {
			scores[p.Unit] += qf * ix.weightLocked(p, avgUnique) * tIDF
		}
	}
	ctrScanPostings.Add(scanned)
	return finishQuery(scores, poolHit, topN, exclude, tr)
}

// finishQuery runs the shared tail of the scan paths (QueryTraced,
// QueryFrozen): collect positive-score candidates into the top-n heap
// under the deterministic tie-break, record the scan histograms and the
// optional trace event, and materialize the result list.
func finishQuery(scores map[int32]float64, poolHit bool, topN int, exclude func(unit int) bool, tr *obs.Trace) []Result {
	histQueryCandidates.Observe(int64(len(scores)))
	c := topk.New(topN)
	for unit, score := range scores {
		if score <= 0 {
			continue
		}
		if exclude != nil && exclude(int(unit)) {
			continue
		}
		c.Offer(int(unit), score)
	}
	items := c.Results()
	histQueryResults.Observe(int64(len(items)))
	if tr != nil {
		hit := int64(0)
		if poolHit {
			hit = 1
		}
		tr.Event("index.query",
			obs.N("candidates", int64(len(scores))),
			obs.N("results", int64(len(items))),
			obs.N("pool_hit", hit))
	}
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{Unit: it.ID, Score: it.Score}
	}
	return out
}

// TermScore is one term's share of a unit's query score: the Eq 9
// product f_q(t) · w(t,unit) · pIDF(t) together with its factors, so a
// ranking is auditable against the paper's scoring definition.
type TermScore struct {
	Term    string  `json:"term"`
	QueryTF float64 `json:"query_tf"` // f_q(t): term frequency in the query segment
	Weight  float64 `json:"weight"`   // w(t,unit): Eq 7/8 posting weight
	IDF     float64 `json:"idf"`      // pIDF(t): Eq 9 smoothed inverse document frequency
	Product float64 `json:"product"`  // QueryTF · Weight · IDF
}

// Explain decomposes the score Query would assign to one unit into its
// per-term products, in sorted term order — the same factor values and
// the same summation order Query uses, so summing the products
// reproduces the unit's score bit-for-bit (the explain-mode
// reconciliation tests rely on this). Terms contributing zero (absent
// from the unit, or with zero pIDF) are omitted.
func (ix *Index) Explain(queryTF map[string]float64, unit int) []TermScore {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if unit < 0 || unit >= len(ix.units) {
		return nil
	}
	if ix.rlockStats() {
		defer ix.global.mu.RUnlock()
	}
	avgUnique := ix.avgUniqueLocked()
	terms := make([]string, 0, len(queryTF))
	for term := range queryTF {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	var out []TermScore
	for _, term := range terms {
		posts := ix.postings[term]
		if len(posts) == 0 {
			continue
		}
		tIDF := ix.idfLocked(term, ix.dfLocked(term, posts))
		if tIDF == 0 {
			continue
		}
		i := sort.Search(len(posts), func(i int) bool { return int(posts[i].Unit) >= unit })
		if i >= len(posts) || int(posts[i].Unit) != unit {
			continue
		}
		qf := queryTF[term]
		w := ix.weightLocked(posts[i], avgUnique)
		out = append(out, TermScore{Term: term, QueryTF: qf, Weight: w, IDF: tIDF, Product: qf * w * tIDF})
	}
	return out
}

// TermFrequencies converts a term slice into the query TF map Query
// expects (f_sq(t) of Eq 9).
func TermFrequencies(terms []string) map[string]float64 {
	tf := make(map[string]float64, len(terms))
	for _, t := range terms {
		tf[t]++
	}
	return tf
}
