package index

import (
	"slices"
	"sort"

	"repro/internal/obs"
	"repro/internal/topk"
)

// Max-score pruning (Turtle & Flood-style, term-at-a-time) over the
// Eq 7–9 scan. The exhaustive scan walks every posting of every query
// term; on a large collection almost all of that work scores units that
// can never reach the top-n. This file replaces it — behind the
// shouldPruneLocked gate, and provably bit-identical — with a
// three-stage scan:
//
//  1. Bounds. Every posting list carries a precomputed upper bound on
//     the Eq 7/8 weight of any posting in it (listBound, maintained by
//     Add and rebuilt on snapshot load). A query term's contribution to
//     any unit is then at most f_q(t) · bound(t) · pIDF(t), and the
//     terms are processed in descending order of that bound — rare,
//     decisive terms first — so the running threshold tightens as fast
//     as possible.
//  2. Essential prefix. Terms are scanned in full, accumulating partial
//     scores, until the sum of the remaining terms' bounds falls below
//     the running n-th-best partial score (the heap threshold θ): from
//     that point no unseen unit can reach the top-n, so the remaining
//     posting lists — typically the long, low-pIDF ones — are never
//     walked. After each term, accumulated units whose partial score
//     plus the remaining bound sum cannot reach θ are dropped.
//  3. Exact rescore. The surviving candidates (a handful per query) are
//     rescored exactly: every query term in ascending term order, the
//     weight fetched by binary search. This both supplies the skipped
//     lists' contributions to the survivors and reproduces the
//     exhaustive scan's summation order, so the returned scores are
//     bit-identical floats and the (score desc, id asc) tie-break is
//     preserved exactly.
//
// Rank-equivalence argument (DESIGN.md §7 carries the long form):
// partial scores only grow (every contribution is positive), so the
// n-th best partial is a lower bound on the n-th best final score;
// a unit pruned because its upper bound is below that lower bound —
// with pruneGuard absorbing float rounding asymmetry — has a final
// score strictly below the n-th best and cannot even tie into the
// top-n. Everything that survives is rescored exactly.

// Pruning observability. lists_skipped/postings_skipped count the work
// the max-score cutoff avoided (whole posting lists never walked);
// threshold_micros histograms the final heap threshold θ in millionths
// of a score unit — the Fig11c-style view: retrieval cost drops as this
// threshold rises. survivors sizes the exact-rescore stage.
var (
	ctrPruneLists      = obs.NewCounter("index.prune.lists_skipped")
	ctrPrunePostings   = obs.NewCounter("index.prune.postings_skipped")
	histPruneThreshold = obs.NewCountHistogram("index.prune.threshold_micros")
	histPruneSurvivors = obs.NewCountHistogram("index.prune.survivors")
)

// PruneMinUnits is the smallest collection (unit count) the query path
// prunes on; below it the exhaustive scan is used — on small lists the
// bookkeeping (threshold heap, candidate compaction, exact rescore)
// costs more than the walk it saves, and the exhaustive path keeps its
// allocation profile. querybench puts the crossover near 10^4 units on
// forum-shaped corpora, so the default sits just under it. Results are
// bit-identical either way. It is read at query time without
// synchronization: set it at startup (or in tests before spawning
// queriers), not while serving.
var PruneMinUnits = 8192

// pruneMinFanout gates pruning on topN ≪ collection: a scan asked for a
// quarter of the collection cannot skip much, so it runs exhaustively.
const pruneMinFanout = 4

// pruneGuard deflates the heap threshold in every prune comparison.
// The bound arithmetic dominates the true contributions in exact
// arithmetic; float evaluation of the two sides can disagree by a few
// ULP (relative ~1e-13 even for thousand-term sums), so comparisons
// keep a 1e-9 relative margin — six orders of magnitude wider than the
// drift, six orders tighter than any score gap that matters. A unit is
// pruned only when its upper bound is below θ·pruneGuard, so equality
// with the threshold (a potential id-tie-break winner) always survives
// to the exact rescore.
const pruneGuard = 1 - 1e-9

// boundSlack inflates each stored list bound at evaluation time, for
// the same reason pruneGuard deflates the threshold: the b1 bound and
// the actual Eq 7/8 weight place their roundings differently, so raw
// float comparison could under-dominate by a ULP. The slacked bound
// dominates every posting weight outright (property-tested).
const boundSlack = 1 + 1e-9

// listBound is one posting list's precomputed score upper bound, in two
// halves because the NU length normalization of Eq 7/8 depends on the
// query-time collection average:
//
//	weight(p) = LogTF / (denom · nu),  nu = max(1, unique/avgUnique)
//	          = min(LogTF/denom, avgUnique · LogTF/(denom·unique))
//
// b0 caps the first form (nu = 1), b1 the second's avgUnique-free
// factor; bound() combines them with the average the query resolved.
// Both are maxima of per-posting quantities, so they are maintained
// incrementally by Add in O(unique terms) and rebuilt on load in one
// pass over the postings — and the rebuild reproduces the incremental
// values exactly, because every operand (LogTF, denom, unique) is
// persisted or recomputed bit-identically.
type listBound struct {
	b0 float64 // max over postings of LogTF/denom
	b1 float64 // max over postings of LogTF/(denom·unique)
}

// add folds one new posting (logTF, in a unit with the given Eq 7
// denominator and unique-term count) into the bound.
func (lb listBound) add(logTF, denom float64, unique int32) listBound {
	if denom <= 0 {
		return lb
	}
	if c0 := logTF / denom; c0 > lb.b0 {
		lb.b0 = c0
	}
	if c1 := logTF / (denom * float64(unique)); c1 > lb.b1 {
		lb.b1 = c1
	}
	return lb
}

// bound returns the slacked weight upper bound for the collection
// average avgUnique: no posting of the list can have an Eq 7/8 weight
// above it (the domination property test pins this across arbitrary
// Add/Load sequences).
func (lb listBound) bound(avgUnique float64) float64 {
	b := lb.b0
	if avgUnique > 0 {
		if alt := avgUnique * lb.b1; alt < b {
			b = alt
		}
	}
	return b * boundSlack
}

// rebuildBoundsLocked recomputes every posting list's bound from
// scratch — the snapshot-load half of bound maintenance, shared by the
// compact and legacy-gob read paths (both funnel through Load). Callers
// hold the write lock (or own the index exclusively).
func (ix *Index) rebuildBoundsLocked() {
	ix.bounds = make(map[string]listBound, len(ix.postings))
	for t, posts := range ix.postings {
		var lb listBound
		for _, p := range posts {
			u := ix.units[p.Unit]
			lb = lb.add(p.LogTF, u.denom, u.unique)
		}
		ix.bounds[t] = lb
	}
}

// shouldPruneLocked reports whether the pruned scan is worth engaging
// for a top-n request on this collection. Callers hold the read lock.
func (ix *Index) shouldPruneLocked(topN int) bool {
	return len(ix.units) >= PruneMinUnits && len(ix.units) >= pruneMinFanout*topN
}

// UpperBoundSum returns Σ_t f_q(t)·bound(t)·pIDF(t) over the probe's
// terms — an upper bound on the score any single unit can reach, and
// the key the matching layer orders Algorithm 1's list probes by
// (descending) so high-impact lists are scanned first. Terms arrive
// sorted with aligned query frequencies and pIDFs, exactly as
// QueryFrozen takes them.
func (ix *Index) UpperBoundSum(terms []string, qf, idfs []float64, avgUnique float64) float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var sum float64
	for i, t := range terms {
		if idfs[i] == 0 {
			continue
		}
		lb, ok := ix.bounds[t]
		if !ok {
			continue
		}
		sum += qf[i] * lb.bound(avgUnique) * idfs[i]
	}
	return sum
}

// runningTopK tracks the n-th best partial score over distinct units
// while an accumulator is being updated in place — the job topk.Collector
// cannot do, because a collector has no way to raise the score of an
// entry it already holds (offering again would duplicate the unit and
// inflate the threshold past the true n-th best, breaking the pruning
// safety argument). It is a min-heap of at most k (unit, score) entries;
// an in-heap unit's growing partial updates in place, found by linear
// scan — k is a top-n depth (≤ a few dozen), where scanning a cache-hot
// slice beats any index structure, and offer is reached only for scores
// above the heap root, which gets rarer as the scan proceeds. Scores
// only ever increase, so the root — the threshold — is monotone.
// Callers may skip updates for scores at or below the root: a stale-low
// in-heap entry can only understate the threshold, never overstate it.
type runningTopK struct {
	k int
	h []runningEntry
}

type runningEntry struct {
	unit  int32
	score float64
}

func newRunningTopK(k int) *runningTopK {
	return &runningTopK{k: k, h: make([]runningEntry, 0, k)}
}

// offer records unit's new partial score and returns the current
// threshold: the k-th best score seen, or 0 while fewer than k distinct
// units have been offered.
func (r *runningTopK) offer(unit int32, s float64) float64 {
	held := -1
	for i := range r.h {
		if r.h[i].unit == unit {
			held = i
			break
		}
	}
	if held >= 0 {
		r.h[held].score = s
		r.down(held)
	} else if len(r.h) < r.k {
		r.h = append(r.h, runningEntry{unit: unit, score: s})
		r.up(len(r.h) - 1)
	} else if s > r.h[0].score {
		r.h[0] = runningEntry{unit: unit, score: s}
		r.down(0)
	}
	if len(r.h) == r.k {
		return r.h[0].score
	}
	return 0
}

func (r *runningTopK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if r.h[i].score >= r.h[parent].score {
			break
		}
		r.h[i], r.h[parent] = r.h[parent], r.h[i]
		i = parent
	}
}

func (r *runningTopK) down(i int) {
	n := len(r.h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && r.h[right].score < r.h[left].score {
			min = right
		}
		if r.h[min].score >= r.h[i].score {
			break
		}
		r.h[i], r.h[min] = r.h[min], r.h[i]
		i = min
	}
}

// findPosting returns the position of unit u in the unit-sorted posting
// list, or -1. A hand-rolled binary search: the probe phases call this
// in tight loops where sort.Search's closure indirection is measurable.
func findPosting(posts []Posting, u int32) int {
	lo, hi := 0, len(posts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if posts[mid].Unit < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(posts) && posts[lo].Unit == u {
		return lo
	}
	return -1
}

// prunedTerm is one query term of the max-score scan, in descending
// upper-bound order.
type prunedTerm struct {
	idx   int     // position in ascending term order (the rescore order)
	ub    float64 // slacked contribution upper bound f_q·bound·pIDF
	qf    float64
	idf   float64
	posts []Posting
}

// scanPrunedLocked is the max-score scan. Terms arrive in ascending
// order with aligned query frequencies and pIDFs (resolved under the
// same lock hold, so they equal what the exhaustive scan would derive
// inline); floor is an externally proven lower bound on the n-th best
// score — 0 when none is known, the home shard's n-th list score on a
// sharded scatter leg — and seeds the threshold before any partial
// accumulates. Callers hold the read lock; only shard-local state
// (postings, units, bounds) and the resolved factors are read, so the
// scatter path's lock discipline carries over unchanged.
func (ix *Index) scanPrunedLocked(terms []string, qf, idfs []float64, avgUnique float64, topN int, floor float64, exclude func(unit int) bool, tr *obs.Trace) []Result {
	// Resolve the active terms (known, non-zero pIDF) and their bounds.
	active := make([]prunedTerm, 0, len(terms))
	var totalPostings int64
	for i, t := range terms {
		if idfs[i] == 0 {
			continue
		}
		posts := ix.postings[t]
		if len(posts) == 0 {
			continue
		}
		totalPostings += int64(len(posts))
		active = append(active, prunedTerm{
			idx:   i,
			ub:    qf[i] * ix.bounds[t].bound(avgUnique) * idfs[i],
			qf:    qf[i],
			idf:   idfs[i],
			posts: posts,
		})
	}
	// Descending upper bound; ascending term position on ties, so the
	// processing order is deterministic.
	sort.Slice(active, func(a, b int) bool {
		if active[a].ub != active[b].ub {
			return active[a].ub > active[b].ub
		}
		return active[a].idx < active[b].idx
	})
	// rem[j] = Σ_{i≥j} ub_i: the most any unit can still gain from terms
	// j onward. Summed right-to-left so rem[j] is one float add per term.
	rem := make([]float64, len(active)+1)
	for j := len(active) - 1; j >= 0; j-- {
		rem[j] = rem[j+1] + active[j].ub
	}

	ctrScorePoolGet.Inc()
	sm := scorePool.Get().(*scoreMap)
	poolHit := sm.reused
	sm.reused = true
	scores := sm.m
	defer func() {
		clear(scores)
		scorePool.Put(sm)
	}()

	// Phase A: scan the essential prefix, maintaining θ — the n-th best
	// partial score over distinct units — exactly, via a position-indexed
	// top-n heap updated as partials grow. The fast path is one float
	// compare per posting: a partial at or below the heap root cannot
	// change θ and is skipped without touching the heap (the in-heap copy
	// of that unit may go stale-low, which only understates θ — safe).
	// θ is monotone, and every partial is a lower bound on that unit's
	// final score (all contributions are positive), so θ never exceeds
	// the final n-th best score: the cutoffs it drives are conservative.
	theta := floor
	var scanned int64
	rt := newRunningTopK(topN)
	stop := len(active)
	for j, at := range active {
		if theta > 0 && rem[j] < theta*pruneGuard {
			// No unit — accumulated or unseen — can gain enough from the
			// remaining lists to reach the top-n threshold. Stop scanning;
			// the survivors' exact scores come from the rescore below.
			stop = j
			break
		}
		c := at.qf * at.idf
		scanned += int64(len(at.posts))
		for _, p := range at.posts {
			s := scores[p.Unit] + c*ix.weightLocked(p, avgUnique)
			scores[p.Unit] = s
			if len(rt.h) == topN && s <= rt.h[0].score {
				continue
			}
			if exclude != nil && exclude(int(p.Unit)) {
				continue // excluded units must not inflate the threshold
			}
			if t := rt.offer(p.Unit, s); t > theta {
				theta = t
			}
		}
	}

	// Phase A2, update mode (Turtle & Flood): past the cutoff no unseen
	// unit can reach the top-n, but accumulated units still owe
	// contributions from the remaining lists. Processing those lists
	// against the accumulator — rather than the accumulator against the
	// lists — turns each remaining list from a full scan into |alive|
	// probes, and the alive set shrinks geometrically: before list j a
	// unit survives only if its partial plus rem[j] can still reach θ,
	// and both θ (monotone) and the partials keep moving as probes land.
	// Probe-phase partials accumulate in upper-bound order, so they are
	// pruning/threshold material only; the exact rescore below redoes the
	// survivors in the summation order the exhaustive scan uses.
	alive := sm.alive[:0]
	guard := theta * pruneGuard
	for u, s := range scores {
		if theta > 0 && s+rem[stop] < guard {
			continue
		}
		if exclude != nil && exclude(int(u)) {
			continue
		}
		alive = append(alive, u)
	}
	// Ascending unit order — the order the posting lists are stored in —
	// so the update-mode merges walk both sides monotonically.
	slices.Sort(alive)
	aliveScore := sm.ascore
	if cap(aliveScore) < len(alive) {
		aliveScore = make([]float64, len(alive))
	} else {
		aliveScore = aliveScore[:len(alive)]
	}
	for i, u := range alive {
		aliveScore[i] = scores[u]
	}
	var probed int64 // update-mode contributions actually computed
	for j := stop; j < len(active); j++ {
		at := active[j]
		guard = theta * pruneGuard
		keep := 0
		for i, u := range alive {
			s := aliveScore[i]
			if s+rem[j] < guard {
				continue
			}
			alive[keep], aliveScore[keep] = u, s
			keep++
		}
		alive, aliveScore = alive[:keep], aliveScore[:keep]
		if keep == 0 {
			break
		}
		c := at.qf * at.idf
		if len(at.posts) < 4*keep {
			// Dense list relative to the alive set: one linear merge beats
			// per-unit binary searches.
			pi := 0
			for i, u := range alive {
				for pi < len(at.posts) && at.posts[pi].Unit < u {
					pi++
				}
				if pi == len(at.posts) {
					break
				}
				if at.posts[pi].Unit == u {
					s := aliveScore[i] + c*ix.weightLocked(at.posts[pi], avgUnique)
					aliveScore[i] = s
					probed++
					if t := rt.offer(u, s); t > theta {
						theta = t
					}
				}
			}
		} else {
			for i, u := range alive {
				pi := findPosting(at.posts, u)
				if pi < 0 {
					continue
				}
				s := aliveScore[i] + c*ix.weightLocked(at.posts[pi], avgUnique)
				aliveScore[i] = s
				probed++
				if t := rt.offer(u, s); t > theta {
					theta = t
				}
			}
		}
	}
	// Final cut: everything is accounted for (rem = 0), so only units
	// whose full — approximate, but guard-margined — score reaches θ can
	// place in the top-n.
	guard = theta * pruneGuard
	keep := 0
	for i, u := range alive {
		if theta > 0 && aliveScore[i] < guard {
			continue
		}
		alive[keep] = u
		keep++
	}
	alive = alive[:keep]

	// Phase B: exact rescore of the survivors, in ascending term order —
	// the exhaustive scan's summation sequence — with each weight fetched
	// by binary search. postsByIdx re-keys the active lists by ascending
	// term position.
	postsByIdx := make([]*prunedTerm, len(terms))
	for j := range active {
		postsByIdx[active[j].idx] = &active[j]
	}
	out := topk.New(topN)
	for _, u := range alive {
		var s float64
		for i := range postsByIdx {
			at := postsByIdx[i]
			if at == nil {
				continue
			}
			pi := findPosting(at.posts, u)
			if pi < 0 {
				continue
			}
			scanned++
			s += at.qf * ix.weightLocked(at.posts[pi], avgUnique) * at.idf
		}
		if s > 0 {
			out.Offer(int(u), s)
		}
	}

	scanned += probed
	listsSkipped := int64(len(active) - stop)
	var postingsSkipped int64
	for j := stop; j < len(active); j++ {
		postingsSkipped += int64(len(active[j].posts))
	}
	postingsSkipped -= probed
	units := alive
	ctrScanPostings.Add(scanned)
	ctrPruneLists.Add(listsSkipped)
	ctrPrunePostings.Add(postingsSkipped)
	histPruneThreshold.Observe(int64(theta * 1e6))
	histPruneSurvivors.Observe(int64(len(units)))
	histQueryCandidates.Observe(int64(len(scores)))
	items := out.Results()
	histQueryResults.Observe(int64(len(items)))
	if tr != nil {
		hit := int64(0)
		if poolHit {
			hit = 1
		}
		tr.Event("index.query",
			obs.N("candidates", int64(len(scores))),
			obs.N("results", int64(len(items))),
			obs.N("pool_hit", hit))
		tr.Event("index.prune",
			obs.N("lists_skipped", listsSkipped),
			obs.N("postings_skipped", postingsSkipped),
			obs.N("survivors", int64(len(units))),
			obs.N("postings_total", totalPostings),
			obs.N("threshold_micros", int64(theta*1e6)))
	}
	sm.alive, sm.ascore = alive[:0], aliveScore[:0] // recycle the scratch with the map
	res := make([]Result, len(items))
	for i, it := range items {
		res[i] = Result{Unit: it.ID, Score: it.Score}
	}
	return res
}
