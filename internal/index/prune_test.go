package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// withPruneGate lowers the pruning size gate so small test corpora take
// the max-score path, restoring it on cleanup. Tests in this repo never
// run in parallel, so mutating the package-level knob is safe.
func withPruneGate(t *testing.T, minUnits int) {
	t.Helper()
	old := PruneMinUnits
	PruneMinUnits = minUnits
	t.Cleanup(func() { PruneMinUnits = old })
}

// randomCorpus builds units with a skewed vocabulary: a handful of
// frequent terms (long posting lists, low pIDF) plus a rare tail — the
// distribution where max-score pruning actually skips work, and the
// regime where a bound or threshold bug would surface as a ranking
// difference.
func randomCorpus(rng *rand.Rand, units, vocab int) [][]string {
	docs := make([][]string, units)
	for u := range docs {
		n := 3 + rng.Intn(12)
		terms := make([]string, n)
		for i := range terms {
			// Quadratic skew: low ids are far more likely.
			v := rng.Intn(vocab) * rng.Intn(vocab) / vocab
			terms[i] = fmt.Sprintf("w%03d", v)
		}
		docs[u] = terms
	}
	return docs
}

// TestPrunedMatchesExhaustiveProperty is the tentpole equivalence
// property: across random corpora, query shapes, depths, and exclusion
// predicates, the pruned scan returns the exact result slice — same
// units, same order, bit-identical float scores — as the exhaustive
// reference scorer.
func TestPrunedMatchesExhaustiveProperty(t *testing.T) {
	withPruneGate(t, 1)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		units := 20 + rng.Intn(400)
		docs := randomCorpus(rng, units, 40+rng.Intn(200))
		ix := New()
		for _, d := range docs {
			ix.Add(d)
		}
		var exclude func(int) bool
		if trial%3 == 1 {
			exclude = func(u int) bool { return u%2 == 0 }
		}
		for _, topN := range []int{1, 2, 5, 10, units / pruneMinFanout} {
			if topN < 1 {
				continue
			}
			queryTF := TermFrequencies(docs[rng.Intn(units)])
			want := ix.QueryExhaustive(queryTF, topN, exclude)
			got := ix.Query(queryTF, topN, exclude)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d units=%d topN=%d: pruned %v != exhaustive %v", trial, units, topN, got, want)
			}
		}
	}
}

// TestPrunedMatchesExhaustiveInterleaved interleaves adds and queries:
// bounds maintained incrementally mid-stream must stay valid after
// every add (they only ever loosen — a stale-looser bound costs scan
// work, a stale-tighter one would corrupt rankings).
func TestPrunedMatchesExhaustiveInterleaved(t *testing.T) {
	withPruneGate(t, 1)
	rng := rand.New(rand.NewSource(11))
	docs := randomCorpus(rng, 300, 120)
	ix := New()
	for i, d := range docs {
		ix.Add(d)
		if i < 5 || i%7 != 0 {
			continue
		}
		queryTF := TermFrequencies(docs[rng.Intn(i+1)])
		want := ix.QueryExhaustive(queryTF, 5, nil)
		got := ix.Query(queryTF, 5, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("after %d adds: pruned %v != exhaustive %v", i+1, got, want)
		}
	}
}

// TestBoundDominatesWeights pins the safety invariant everything rests
// on: after an arbitrary Add sequence, every posting list's slacked
// bound is at least the actual Eq 7/8 weight of every posting in it,
// evaluated at the live collection average.
func TestBoundDominatesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	docs := randomCorpus(rng, 250, 90)
	ix := New()
	for _, d := range docs {
		ix.Add(d)
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	avg := ix.avgUniqueLocked()
	checked := 0
	for term, posts := range ix.postings {
		b := ix.bounds[term].bound(avg)
		for _, p := range posts {
			if w := ix.weightLocked(p, avg); w > b {
				t.Fatalf("term %q unit %d: weight %g exceeds bound %g", term, p.Unit, w, b)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no postings checked")
	}
}

// TestBoundsRoundTrip pins that bounds rebuilt on snapshot load — in
// both the compact and legacy-gob read paths — are bitwise equal to the
// bounds the writer maintained incrementally. Equality must be exact:
// the rebuild evaluates Add's expressions over persisted operands, so
// any drift means the two paths diverged.
func TestBoundsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	docs := randomCorpus(rng, 150, 70)
	ix := New()
	for _, d := range docs {
		ix.Add(d)
	}
	encode := map[string]func() ([]byte, error){
		"compact": func() ([]byte, error) {
			var buf bytes.Buffer
			_, err := ix.WriteTo(&buf)
			return buf.Bytes(), err
		},
		"gob": func() ([]byte, error) {
			var buf bytes.Buffer
			_, err := ix.WriteGobTo(&buf)
			return buf.Bytes(), err
		},
	}
	for name, enc := range encode {
		data, err := enc()
		if err != nil {
			t.Fatalf("%s: encoding: %v", name, err)
		}
		loaded := New()
		if err := loaded.Load(data); err != nil {
			t.Fatalf("%s: loading: %v", name, err)
		}
		if len(loaded.bounds) != len(ix.bounds) {
			t.Fatalf("%s: %d rebuilt bounds, %d incremental", name, len(loaded.bounds), len(ix.bounds))
		}
		for term, want := range ix.bounds {
			got := loaded.bounds[term]
			if got != want {
				t.Errorf("%s: term %q rebuilt bound %+v != incremental %+v", name, term, got, want)
			}
		}
	}
}

// TestQueryFrozenFloor pins floor semantics: a floor equal to the true
// n-th best score must not lose any of the top n (candidates at the
// floor survive — they are merge-relevant tie-break material), while a
// floor above the best score empties the list. Both shapes run with the
// pruned path engaged.
func TestQueryFrozenFloor(t *testing.T) {
	withPruneGate(t, 1)
	rng := rand.New(rand.NewSource(53))
	docs := randomCorpus(rng, 200, 80)
	ix := New()
	for _, d := range docs {
		ix.Add(d)
	}
	queryTF := TermFrequencies(docs[17])
	terms, qf, idfs, avg := frozenArgs(ix, queryTF)
	const topN = 8
	want := ix.QueryExhaustive(queryTF, topN, nil)
	if len(want) < topN {
		t.Fatalf("need at least %d results, got %d", topN, len(want))
	}
	got := ix.QueryFrozen(terms, qf, idfs, avg, topN, want[topN-1].Score, nil, nil)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("floor at n-th score: %v != unfloored %v", got, want)
	}
	// A floor above every score promises nothing about what is returned —
	// only that whatever is must carry exact scores in rank order, i.e.
	// appear in the exhaustive list at matching positions relative to
	// each other. (The scan may legally return entries below the floor;
	// the merge cuts them.)
	high := ix.QueryFrozen(terms, qf, idfs, avg, topN, want[0].Score*2, nil, nil)
	full := ix.QueryExhaustive(queryTF, len(docs), nil)
	pos := 0
	for _, r := range high {
		for pos < len(full) && full[pos] != r {
			pos++
		}
		if pos == len(full) {
			t.Errorf("floored result %v is not an order-preserving subset of the exhaustive ranking", high)
			break
		}
		pos++
	}
}
