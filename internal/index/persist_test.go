package index

import (
	"bytes"
	"encoding/gob"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var regenGobFixtures = flag.Bool("regen-gob-fixtures", false,
	"rewrite the corrupt-gob regression fixtures under testdata/ and exit")

// fixtureSnapshot is the consistent base every corrupt fixture starts
// from: three units, three terms, statistics that validate.
func fixtureSnapshot() snapshot {
	logTF := func(tf int32) float64 { return math.Log(float64(tf)) + 1 }
	return snapshot{
		Postings: map[string][]Posting{
			"raid":  {{Unit: 0, TF: 2}, {Unit: 2, TF: 1}},
			"hotel": {{Unit: 1, TF: 1}},
			"pool":  {{Unit: 1, TF: 2}},
		},
		Denoms:      []float64{logTF(2), logTF(1) + logTF(2), logTF(1)},
		Uniques:     []int32{1, 2, 1},
		TotalUnique: 4,
	}
}

// gobFixtures enumerates the committed corrupt-gob regression
// fixtures: each mutates the valid base snapshot into a stream that
// gob-decodes cleanly (or not, for the stream-level cases) but must be
// rejected by Load with the given error substring. These are the
// snapshots that used to load silently and blow up at query time —
// ix.units[p.Unit] panics on out-of-range ids, binary-search Weight
// returns wrong weights on non-ascending ids, TF = 0 recomputes
// LogTF = -Inf.
var gobFixtures = []struct {
	name    string
	mutate  func(s *snapshot) // nil: stream-level corruption via raw below
	raw     func(valid []byte) []byte
	wantSub string
}{
	{
		name:    "unit_out_of_range",
		mutate:  func(s *snapshot) { s.Postings["raid"][1].Unit = 99 },
		wantSub: "posting unit 99 out of range [0, 3)",
	},
	{
		name:    "unit_negative",
		mutate:  func(s *snapshot) { s.Postings["hotel"][0].Unit = -1 },
		wantSub: "out of range",
	},
	{
		name: "units_not_ascending",
		mutate: func(s *snapshot) {
			s.Postings["raid"] = []Posting{{Unit: 2, TF: 1}, {Unit: 0, TF: 2}}
		},
		wantSub: "not strictly ascending",
	},
	{
		name: "unit_duplicated",
		mutate: func(s *snapshot) {
			s.Postings["raid"] = []Posting{{Unit: 2, TF: 2}, {Unit: 2, TF: 1}}
		},
		wantSub: "not strictly ascending",
	},
	{
		name:    "zero_tf",
		mutate:  func(s *snapshot) { s.Postings["hotel"][0].TF = 0 },
		wantSub: "term frequency 0 (must be >= 1)",
	},
	{
		name:    "empty_posting_list",
		mutate:  func(s *snapshot) { s.Postings["ghost"] = nil },
		wantSub: "empty posting list",
	},
	{
		name:    "unique_count_mismatch",
		mutate:  func(s *snapshot) { s.Uniques[1] = 7 },
		wantSub: "declares 7 unique terms",
	},
	{
		name:    "denominator_mismatch",
		mutate:  func(s *snapshot) { s.Denoms[0] = 42 },
		wantSub: "weight denominator 42 inconsistent",
	},
	{
		name:    "total_unique_mismatch",
		mutate:  func(s *snapshot) { s.TotalUnique = 99 },
		wantSub: "totalUnique 99 inconsistent",
	},
	{
		name:    "column_length_mismatch",
		mutate:  func(s *snapshot) { s.Uniques = s.Uniques[:2] },
		wantSub: "3 weight denominators but 2 unique-term counts",
	},
	{
		name:    "trailing_garbage",
		raw:     func(valid []byte) []byte { return append(valid, "garbage past the snapshot"...) },
		wantSub: "trailing bytes after gob snapshot",
	},
	{
		name:    "truncated",
		raw:     func(valid []byte) []byte { return valid[:len(valid)-10] },
		wantSub: "decoding gob snapshot",
	},
	{
		name:    "not_gob",
		raw:     func([]byte) []byte { return []byte("\x01\x02this is neither layout\x03") },
		wantSub: "decoding gob snapshot",
	},
}

func encodeFixture(t *testing.T, name string) []byte {
	t.Helper()
	for _, fx := range gobFixtures {
		if fx.name != name {
			continue
		}
		if fx.raw != nil {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(fixtureSnapshot()); err != nil {
				t.Fatal(err)
			}
			return fx.raw(buf.Bytes())
		}
		snap := fixtureSnapshot()
		fx.mutate(&snap)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	t.Fatalf("unknown fixture %q", name)
	return nil
}

// TestRegenGobFixtures rewrites testdata/corrupt-gob/ when run with
// -regen-gob-fixtures. The committed bytes are what the regression
// test loads; regenerate only when the snapshot wire struct changes.
func TestRegenGobFixtures(t *testing.T) {
	if !*regenGobFixtures {
		t.Skip("run with -regen-gob-fixtures to rewrite testdata/corrupt-gob/")
	}
	dir := filepath.Join("testdata", "corrupt-gob")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, fx := range gobFixtures {
		if err := os.WriteFile(filepath.Join(dir, fx.name+".gob"), encodeFixture(t, fx.name), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptGobFixtures is the committed-fixture regression test: every
// file under testdata/corrupt-gob/ must be rejected by Load with its
// documented error, and a failed load must leave the live index intact.
func TestCorruptGobFixtures(t *testing.T) {
	for _, fx := range gobFixtures {
		t.Run(fx.name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", "corrupt-gob", fx.name+".gob"))
			if err != nil {
				t.Fatalf("missing committed fixture (regenerate with -regen-gob-fixtures): %v", err)
			}
			ix := buildIndex([]string{"alpha", "beta"})
			if err := ix.Load(data); err == nil {
				t.Fatal("corrupt snapshot loaded without error")
			} else if !strings.Contains(err.Error(), fx.wantSub) {
				t.Fatalf("error %q does not mention %q", err, fx.wantSub)
			}
			// Validation runs before the state swap: the index still serves
			// its pre-load contents.
			if ix.NumUnits() != 1 || ix.NumTerms() != 2 {
				t.Fatalf("failed load mutated the index: %d units, %d terms", ix.NumUnits(), ix.NumTerms())
			}
		})
	}
}

// TestGobFixturesMatchGenerators pins the committed fixture bytes to
// their generators' *semantics*: each committed file and its freshly
// generated counterpart must be rejected with the same error. (Gob map
// encoding is order-randomized, so the bytes themselves may differ.)
func TestGobFixturesMatchGenerators(t *testing.T) {
	for _, fx := range gobFixtures {
		t.Run(fx.name, func(t *testing.T) {
			err := New().Load(encodeFixture(t, fx.name))
			if err == nil {
				t.Fatal("generated fixture loaded without error")
			}
			if !strings.Contains(err.Error(), fx.wantSub) {
				t.Fatalf("generated fixture error %q does not mention %q", err, fx.wantSub)
			}
		})
	}
}

// TestLegacyGobRoundTrip pins the migration path: a snapshot written by
// the legacy writer loads through the sniffing reader and serves the
// same weights as the compact layout of the same index.
func TestLegacyGobRoundTrip(t *testing.T) {
	ix := buildIndex(
		[]string{"raid", "controller", "performance"},
		[]string{"hotel", "pool"},
		[]string{"raid", "hotel"},
	)
	var legacy, compact bytes.Buffer
	if _, err := ix.WriteGobTo(&legacy); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(&compact); err != nil {
		t.Fatal(err)
	}
	fromLegacy, fromCompact := New(), New()
	if _, err := fromLegacy.ReadFrom(&legacy); err != nil {
		t.Fatalf("legacy gob load: %v", err)
	}
	if _, err := fromCompact.ReadFrom(&compact); err != nil {
		t.Fatalf("compact load: %v", err)
	}
	for _, term := range []string{"raid", "controller", "hotel", "pool", "absent"} {
		for u := 0; u < 3; u++ {
			a, b := fromLegacy.Weight(term, u), fromCompact.Weight(term, u)
			if a != b {
				t.Fatalf("Weight(%q, %d): legacy %v, compact %v", term, u, a, b)
			}
			if want := ix.Weight(term, u); a != want {
				t.Fatalf("Weight(%q, %d) = %v after legacy round trip, want %v", term, u, a, want)
			}
		}
	}
}

// TestCompactRoundTripByteIdentical is the determinism property the
// on-disk spec promises: build → write → read → re-write produces the
// identical byte string, across randomized index shapes.
func TestCompactRoundTripByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	vocab := []string{"raid", "disk", "hotel", "pool", "flight", "visa", "panic", "goroutine", "fever", "dose"}
	for trial := 0; trial < 25; trial++ {
		ix := New()
		for u, n := 0, 1+rng.Intn(12); u < n; u++ {
			var terms []string
			for len(terms) == 0 {
				for _, w := range vocab {
					for c := rng.Intn(4); c > 0; c-- {
						terms = append(terms, w)
					}
				}
			}
			ix.Add(terms)
		}
		var first bytes.Buffer
		if _, err := ix.WriteTo(&first); err != nil {
			t.Fatal(err)
		}
		reloaded := New()
		if err := reloaded.Load(first.Bytes()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var second bytes.Buffer
		if _, err := reloaded.WriteTo(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("trial %d: re-written snapshot differs (%d vs %d bytes)", trial, first.Len(), second.Len())
		}
	}
}

// corruptCompact re-encodes the valid compact snapshot of the fixture
// index with one section's payload replaced — the hand-crafted
// corruption path for defects appendCompact itself refuses to write.
func corruptCompact(t *testing.T, tag string, payload []byte) []byte {
	t.Helper()
	valid, err := appendCompact(fixtureSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	return replaceSection(t, valid, tag, payload)
}

func TestCompactNegativePaths(t *testing.T) {
	// Section bodies for the fixture snapshot, for surgical corruption.
	// Terms sort as: hotel, pool, raid.
	posting := func(entries ...uint64) []byte {
		var b []byte
		for _, e := range entries {
			b = appendUvarint(b, e)
		}
		return b
	}
	cases := []struct {
		name    string
		data    func(t *testing.T) []byte
		wantSub string
	}{
		{
			name: "first unit out of range",
			// hotel: df 1, unit 9, tf 1 — beyond the 3 declared units.
			data: func(t *testing.T) []byte {
				return corruptCompact(t, "post", posting(1, 9, 1, 1, 1, 2, 2, 0, 2, 2, 1))
			},
			wantSub: "posting unit 9 out of range",
		},
		{
			name: "zero delta",
			// pool gets df 2 with a zero second delta: units repeat.
			data: func(t *testing.T) []byte {
				return corruptCompact(t, "post", posting(1, 1, 1, 2, 1, 2, 0, 2, 2, 0, 2, 2, 1))
			},
			wantSub: "zero delta",
		},
		{
			name: "delta walks past the unit count",
			// raid: first unit 0, delta 7 → unit 7 of 3.
			data: func(t *testing.T) []byte {
				return corruptCompact(t, "post", posting(1, 1, 1, 1, 1, 2, 2, 0, 2, 7, 1))
			},
			wantSub: "out of range",
		},
		{
			name: "zero TF",
			data: func(t *testing.T) []byte {
				return corruptCompact(t, "post", posting(1, 1, 0, 1, 1, 2, 2, 0, 2, 2, 1))
			},
			wantSub: "TF 0 (must be in [1, 2^31))",
		},
		{
			name: "df overruns unit count",
			data: func(t *testing.T) []byte {
				return corruptCompact(t, "post", posting(9, 1, 1, 1, 1, 2, 2, 0, 2, 2, 1))
			},
			wantSub: "declares 9 postings over 3 units",
		},
		{
			name: "posting section truncated",
			data: func(t *testing.T) []byte {
				return corruptCompact(t, "post", posting(1, 1, 1, 1, 1, 2, 2, 0, 2))
			},
			wantSub: "truncated varint",
		},
		{
			name: "posting section trailing bytes",
			data: func(t *testing.T) []byte {
				return corruptCompact(t, "post", posting(1, 1, 1, 1, 1, 2, 2, 0, 2, 2, 1, 5))
			},
			wantSub: "trailing bytes in posting section",
		},
		{
			name: "unit columns short",
			data: func(t *testing.T) []byte {
				return corruptCompact(t, "unit", appendUvarint(nil, 3))
			},
			wantSub: "unit columns for 3 units need 36 bytes, have 0",
		},
		{
			name: "stat section trailing bytes",
			data: func(t *testing.T) []byte {
				return corruptCompact(t, "stat", posting(4, 4))
			},
			wantSub: "trailing bytes in stat section",
		},
		{
			name: "missing section",
			data: func(t *testing.T) []byte {
				valid, err := appendCompact(fixtureSnapshot())
				if err != nil {
					t.Fatal(err)
				}
				return dropSection(t, valid, "stat")
			},
			wantSub: `missing section "stat"`,
		},
		{
			name: "statistics lie about the postings",
			// Structurally pristine compact file whose stat section claims
			// totalUnique 9: only validateSnapshot can catch it.
			data: func(t *testing.T) []byte {
				return corruptCompact(t, "stat", appendUvarint(nil, 9))
			},
			wantSub: "totalUnique 9 inconsistent",
		},
		{
			name: "payload bit flip",
			data: func(t *testing.T) []byte {
				valid, err := appendCompact(fixtureSnapshot())
				if err != nil {
					t.Fatal(err)
				}
				valid[len(valid)-1] ^= 0x80
				return valid
			},
			wantSub: "checksum mismatch",
		},
		{
			name: "compact trailing garbage",
			data: func(t *testing.T) []byte {
				valid, err := appendCompact(fixtureSnapshot())
				if err != nil {
					t.Fatal(err)
				}
				return append(valid, 0xEE, 0xEE)
			},
			wantSub: "trailing bytes",
		},
		{
			name: "compact truncated",
			data: func(t *testing.T) []byte {
				valid, err := appendCompact(fixtureSnapshot())
				if err != nil {
					t.Fatal(err)
				}
				return valid[:len(valid)-5]
			},
			wantSub: "truncated",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ix := buildIndex([]string{"keep", "me"})
			err := ix.Load(tc.data(t))
			if err == nil {
				t.Fatal("corrupt compact snapshot loaded without error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
			if ix.NumUnits() != 1 || ix.NumTerms() != 2 {
				t.Fatal("failed load mutated the index")
			}
		})
	}
}

// TestReadFromTrailingGarbage covers the reader entry point itself: the
// stream is consumed to EOF and surplus bytes fail the load, in both
// layouts.
func TestReadFromTrailingGarbage(t *testing.T) {
	ix := buildIndex([]string{"raid"}, []string{"hotel"})
	for _, layout := range []struct {
		name  string
		write func(*bytes.Buffer) error
	}{
		{"compact", func(b *bytes.Buffer) error { _, err := ix.WriteTo(b); return err }},
		{"gob", func(b *bytes.Buffer) error { _, err := ix.WriteGobTo(b); return err }},
	} {
		t.Run(layout.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := layout.write(&buf); err != nil {
				t.Fatal(err)
			}
			buf.WriteString("concatenated second snapshot, say")
			if _, err := New().ReadFrom(&buf); err == nil {
				t.Fatal("trailing garbage accepted")
			} else if !strings.Contains(err.Error(), "trailing bytes") {
				t.Fatalf("error %q does not mention trailing bytes", err)
			}
		})
	}
}
