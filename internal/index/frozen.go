package index

import "repro/internal/obs"

// Frozen-factor scanning: the scatter half of the sharded serving
// layer. A scatter query scores the same probe against N partitions of
// one cluster index, and Eq 9's collection-level factors — each term's
// pIDF and the cluster's NU average — are identical on every partition
// (they come from the shared statistics pool, not the partition).
// FrozenScoring resolves those factors once, on the reference
// document's home shard; QueryFrozen then scans a partition using only
// shard-local state (postings, unit norms) under the partition's own
// read lock, never touching the pool. Besides not paying the sort, the
// pIDF cache lookups, and the pool read-lock N times per probe, this
// pins all N scatter legs to one consistent view of the collection
// statistics even while concurrent adds move the pool — so the merged
// scores are always mutually comparable, and bit-identical to the
// unsharded scan on a quiescent collection.

// FrozenScoring resolves the collection-level Eq 9 factors for a
// sorted term list under one consistent view of the index and its
// statistics pool: idfs[i] is terms[i]'s smoothed pIDF (0 for unknown
// terms) and avgUnique is the cluster's NU average.
func (ix *Index) FrozenScoring(terms []string) (idfs []float64, avgUnique float64) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.rlockStats() {
		defer ix.global.mu.RUnlock()
	}
	avgUnique = ix.avgUniqueLocked()
	idfs = make([]float64, len(terms))
	// Compute pIDF directly rather than through the idfCache: a mixed
	// serving load invalidates cached entries on every add (the pooled n
	// moves), so the cache would allocate a fresh entry per term per
	// probe without ever hitting.
	n := ix.nLocked()
	for i, t := range terms {
		idfs[i] = idf(n, ix.dfLocked(t, ix.postings[t]))
	}
	return idfs, avgUnique
}

// QueryFrozen is QueryTraced with the collection-level factors supplied
// by the caller (see FrozenScoring): terms arrive pre-sorted with
// aligned query frequencies qf and pIDFs idfs. Accumulation follows the
// supplied term order, so with factors frozen from the same collection
// state the scores are bit-identical to QueryTraced's.
//
// floor is an externally proven lower bound on the merged n-th best
// score, or 0 when none is known. The sharded coordinator seeds it from
// the reference document's home shard (whose leg runs first): the
// global n-th best list score is at least any one shard's local n-th
// best, so sibling legs may discard units that cannot reach it — they
// would be cut from the merged list anyway — and still return exactly
// the entries that survive the Algorithm 1 merge.
func (ix *Index) QueryFrozen(terms []string, qf, idfs []float64, avgUnique float64, topN int, floor float64, exclude func(unit int) bool, tr *obs.Trace) []Result {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if topN <= 0 || len(ix.units) == 0 {
		return nil
	}
	if ix.shouldPruneLocked(topN) {
		return ix.scanPrunedLocked(terms, qf, idfs, avgUnique, topN, floor, exclude, tr)
	}
	ctrScorePoolGet.Inc()
	sm := scorePool.Get().(*scoreMap)
	poolHit := sm.reused
	sm.reused = true
	scores := sm.m
	defer func() {
		clear(scores)
		scorePool.Put(sm)
	}()
	var scanned int64
	for i, term := range terms {
		tIDF := idfs[i]
		if tIDF == 0 {
			continue
		}
		posts := ix.postings[term]
		if len(posts) == 0 {
			continue
		}
		f := qf[i]
		scanned += int64(len(posts))
		for _, p := range posts {
			scores[p.Unit] += f * ix.weightLocked(p, avgUnique) * tIDF
		}
	}
	ctrScanPostings.Add(scanned)
	return finishQuery(scores, poolHit, topN, exclude, tr)
}
