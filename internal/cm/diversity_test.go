package cm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/textproc"
)

func TestShannonIndexBasics(t *testing.T) {
	if got := ShannonIndex(nil); got != 0 {
		t.Errorf("ShannonIndex(nil) = %v, want 0", got)
	}
	if got := ShannonIndex([]float64{0, 0, 0}); got != 0 {
		t.Errorf("ShannonIndex(zeros) = %v, want 0", got)
	}
	// Single non-zero value: perfectly concentrated → 0 diversity.
	if got := ShannonIndex([]float64{5, 0, 0}); got != 0 {
		t.Errorf("ShannonIndex(concentrated) = %v, want 0", got)
	}
	// Uniform over 3: maximal diversity log10(3).
	want := math.Log10(3)
	if got := ShannonIndex([]float64{2, 2, 2}); math.Abs(got-want) > 1e-12 {
		t.Errorf("ShannonIndex(uniform3) = %v, want %v", got, want)
	}
	// Paper example: [2,3,0] → −(2/5)log(2/5) − (3/5)log(3/5).
	wantEx := -(0.4*math.Log10(0.4) + 0.6*math.Log10(0.6))
	if got := ShannonIndex([]float64{2, 3, 0}); math.Abs(got-wantEx) > 1e-12 {
		t.Errorf("ShannonIndex([2,3,0]) = %v, want %v", got, wantEx)
	}
}

// Property: Shannon diversity is bounded by log10(k) for k cells, is
// scale-invariant, and is maximal on uniform tables.
func TestShannonIndexProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 6 {
			return true
		}
		table := make([]float64, len(raw))
		for i, v := range raw {
			table[i] = float64(v % 50)
		}
		div := ShannonIndex(table)
		if div < 0 || div > math.Log10(float64(len(table)))+1e-12 {
			return false
		}
		// Scale invariance.
		scaled := make([]float64, len(table))
		for i := range table {
			scaled[i] = table[i] * 7
		}
		return math.Abs(ShannonIndex(scaled)-div) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRichnessIndex(t *testing.T) {
	if got := RichnessIndex([]float64{1, 0, 3}); got != 2.0/3.0 {
		t.Errorf("RichnessIndex = %v, want 2/3", got)
	}
	if got := RichnessIndex(nil); got != 0 {
		t.Errorf("RichnessIndex(nil) = %v, want 0", got)
	}
	if got := RichnessIndex([]float64{1, 1}); got != 1 {
		t.Errorf("RichnessIndex(full) = %v, want 1", got)
	}
}

func TestCoherenceBounds(t *testing.T) {
	// A one-sentence segment is maximally coherent per mean with one value.
	sents := textproc.SplitSentences("I installed the driver.")
	a := Annotate(sents[0])
	coh := Coherence(a)
	if coh <= 0 || coh > 1 {
		t.Errorf("Coherence = %v, want in (0,1]", coh)
	}
	// An empty annotation has coherence exactly 1 (all diversities 0).
	var empty Annotation
	if got := Coherence(empty); got != 1 {
		t.Errorf("Coherence(empty) = %v, want 1", got)
	}
}

func TestCoherenceDropsWithMixedIntentions(t *testing.T) {
	// A grammatically homogeneous segment should be more coherent than a
	// segment mixing tense, person and style.
	homog := textproc.SplitSentences("I installed the driver. I rebooted the machine. I checked the logs.")
	mixed := textproc.SplitSentences("I installed the driver. Will it degrade performance? The system was repaired.")
	cohH := Coherence(Merge(AnnotateAll(homog), 0, len(homog)))
	cohM := Coherence(Merge(AnnotateAll(mixed), 0, len(mixed)))
	if cohH <= cohM {
		t.Errorf("homogeneous coherence %v should exceed mixed coherence %v", cohH, cohM)
	}
}

func TestDepth(t *testing.T) {
	if got := Depth(0.9, 0.9, 0); got != 0 {
		t.Errorf("Depth with zero merged coherence = %v, want 0", got)
	}
	// Both segments more coherent than merged → positive depth.
	got := Depth(0.9, 0.8, 0.5)
	want := (0.4 + 0.3) / 1.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Depth = %v, want %v", got, want)
	}
	// Identical coherences → zero depth.
	if got := Depth(0.7, 0.7, 0.7); got != 0 {
		t.Errorf("Depth(equal) = %v, want 0", got)
	}
}

func TestBorderScore(t *testing.T) {
	got := BorderScore(0.9, 0.6, 0.3)
	if math.Abs(got-0.6) > 1e-12 {
		t.Errorf("BorderScore = %v, want 0.6", got)
	}
}

func TestScoreBorderDeepVsShallow(t *testing.T) {
	// Deep border: first-person past narrative vs interrogative request.
	left := Merge(AnnotateAll(textproc.SplitSentences(
		"I installed the update. I rebooted twice. I checked every cable.")), 0, 3)
	right := Merge(AnnotateAll(textproc.SplitSentences(
		"Do you know a fix? Can you suggest a driver? Should I reformat the disk?")), 0, 3)
	deepScore, deepDepth := ScoreBorder(left, right, ShannonIndex)

	// Shallow border: two halves of the same narrative.
	rightSame := Merge(AnnotateAll(textproc.SplitSentences(
		"I replaced the cable. I reinstalled the driver. I tested the printer.")), 0, 3)
	_, shallowDepth := ScoreBorder(left, rightSame, ShannonIndex)

	if deepDepth <= shallowDepth {
		t.Errorf("deep border depth %v should exceed shallow depth %v", deepDepth, shallowDepth)
	}
	if deepScore <= 0 {
		t.Errorf("deep border score = %v, want > 0", deepScore)
	}
}

func TestCoherenceOfMean(t *testing.T) {
	var a Annotation
	a.Counts[TensePresent] = 4
	if got := CoherenceOfMean(a, Tense, ShannonIndex); got != 1 {
		t.Errorf("single-tense coherence = %v, want 1", got)
	}
	a.Counts[TensePast] = 4
	got := CoherenceOfMean(a, Tense, ShannonIndex)
	want := 1 - math.Log10(2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("two-tense coherence = %v, want %v", got, want)
	}
}

// shannonIndexDirect is the pre-lookup-table ShannonIndex: the reference
// the table fast path must match bit for bit.
func shannonIndexDirect(table []float64) float64 {
	var all float64
	for _, c := range table {
		all += c
	}
	if all == 0 {
		return 0
	}
	var div float64
	for _, c := range table {
		if c <= 0 {
			continue
		}
		p := c / all
		div -= p * math.Log10(p)
	}
	return div
}

// TestShannonIndexTableBitIdentical locks in that the small-integer lookup
// path returns exactly what the direct computation returns — on integer
// tables inside and outside the table's domain, and on fractional tables
// that must fall through to the slow path.
func TestShannonIndexTableBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(6)
		table := make([]float64, n)
		for i := range table {
			switch trial % 3 {
			case 0: // small integers: table hits
				table[i] = float64(rng.Intn(8))
			case 1: // large integers: overflow the table domain
				table[i] = float64(rng.Intn(200))
			default: // fractional: slow path
				table[i] = math.Floor(rng.Float64()*40) / 4
			}
		}
		got := ShannonIndex(table)
		want := shannonIndexDirect(table)
		if got != want {
			t.Fatalf("trial %d table %v: ShannonIndex = %v, direct = %v", trial, table, got, want)
		}
	}
}

// TestShannonFastPathsMatchGeneric locks in that the pointer-based direct
// Shannon scorers are bit-identical to the generic DiversityFunc forms.
func TestShannonFastPathsMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 500; trial++ {
		var a, b Annotation
		for i := range a.Counts {
			a.Counts[i] = float64(rng.Intn(10))
			b.Counts[i] = float64(rng.Intn(10))
		}
		a.Words, b.Words = rng.Intn(40), rng.Intn(40)
		if got, want := ShannonCoherence(&a), CoherenceWith(a, ShannonIndex); got != want {
			t.Fatalf("ShannonCoherence = %v, generic = %v", got, want)
		}
		for m := Mean(0); m < NumMeans; m++ {
			if got, want := ShannonCoherenceOfMean(&a, m), CoherenceOfMean(a, m, ShannonIndex); got != want {
				t.Fatalf("mean %d: ShannonCoherenceOfMean = %v, generic = %v", m, got, want)
			}
		}
		gs, gd := ShannonScoreBorder(&a, &b)
		ws, wd := ScoreBorder(a, b, ShannonIndex)
		if gs != ws || gd != wd {
			t.Fatalf("ShannonScoreBorder = (%v, %v), generic = (%v, %v)", gs, gd, ws, wd)
		}
		var sum, sum2 Annotation
		a.AddInto(&b, &sum)
		sum2 = a.Add(b)
		if sum != sum2 {
			t.Fatalf("AddInto != Add")
		}
		var diff Annotation
		sum.SubInto(&b, &diff)
		if diff != sum.Sub(b) {
			t.Fatalf("SubInto != Sub")
		}
	}
}
