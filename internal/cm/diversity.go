package cm

import "math"

// This file implements the statistics of Sec 5.2: Shannon's diversity index
// per communication mean (Eq 1), richness, segment coherence (Eq 2), border
// depth (Eq 3), and the border score (Eq 4).
//
// Shannon diversity uses log base 10 so that with at most three categorical
// values per mean the index stays below log10(3) ≈ 0.477 and the coherence
// 1 − div of Eq 2 stays inside (0, 1], matching the paper's remark that
// coherence "takes values less than one".

// ShannonIndex computes Shannon's diversity index (Eq 1) of a distribution
// table: −Σ p_j·log10(p_j) over the non-zero cells. An empty table has
// diversity 0 (a vacuously even, minimal-richness distribution).
func ShannonIndex(table []float64) float64 {
	var all float64
	for _, c := range table {
		all += c
	}
	if all == 0 {
		return 0
	}
	var div float64
	for _, c := range table {
		if c <= 0 {
			continue
		}
		p := c / all
		div -= p * math.Log10(p)
	}
	return div
}

// RichnessIndex is the normalized richness of a distribution table: the
// fraction of categorical values with non-zero observations. It ignores
// evenness, which is exactly why Fig 9 finds it weaker than Shannon's index.
func RichnessIndex(table []float64) float64 {
	if len(table) == 0 {
		return 0
	}
	nz := 0
	for _, c := range table {
		if c > 0 {
			nz++
		}
	}
	return float64(nz) / float64(len(table))
}

// DiversityFunc maps a distribution table to a diversity value in [0, 1).
// ShannonIndex and RichnessIndex are the two instances studied in Fig 9.
type DiversityFunc func(table []float64) float64

// Diversity computes the diversity of mean m within the annotated span
// using Shannon's index.
func Diversity(a Annotation, m Mean) float64 {
	return ShannonIndex(a.Table(m))
}

// Coherence computes the segment coherence of Eq 2 with Shannon diversity:
// the mean over all communication means of 1 − div_CM(s).
func Coherence(a Annotation) float64 {
	return CoherenceWith(a, ShannonIndex)
}

// CoherenceWith computes Eq 2 with an arbitrary diversity function.
func CoherenceWith(a Annotation, div DiversityFunc) float64 {
	var sum float64
	for m := Mean(0); m < NumMeans; m++ {
		sum += 1.0 - div(a.Table(m))
	}
	return sum / float64(NumMeans)
}

// CoherenceOfMean computes the single-mean coherence 1 − div_CM(s), used by
// the Greedy border-selection strategy that votes one communication mean at
// a time.
func CoherenceOfMean(a Annotation, m Mean, div DiversityFunc) float64 {
	return 1.0 - div(a.Table(m))
}

// Depth computes the border depth of Eq 3 from the coherences of the left
// segment, the right segment, and their hypothetical concatenation. A deep
// border separates two segments that are each more coherent than their
// union.
func Depth(cohLeft, cohRight, cohMerged float64) float64 {
	if cohMerged == 0 {
		return 0
	}
	return (math.Abs(cohLeft-cohMerged) + math.Abs(cohRight-cohMerged)) / (2 * cohMerged)
}

// BorderScore combines the two segment coherences and the border depth into
// the border score of Eq 4 (their plain average).
func BorderScore(cohLeft, cohRight, depth float64) float64 {
	return (cohLeft + cohRight + depth) / 3
}

// ScoreBorder evaluates the border between two annotated spans end to end:
// it derives the merged annotation, computes the three coherences with the
// supplied diversity function, and returns (score, depth).
func ScoreBorder(left, right Annotation, div DiversityFunc) (score, depth float64) {
	merged := left.Add(right)
	cl := CoherenceWith(left, div)
	cr := CoherenceWith(right, div)
	cd := CoherenceWith(merged, div)
	d := Depth(cl, cr, cd)
	return BorderScore(cl, cr, d), d
}
