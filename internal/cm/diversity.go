package cm

import "math"

// This file implements the statistics of Sec 5.2: Shannon's diversity index
// per communication mean (Eq 1), richness, segment coherence (Eq 2), border
// depth (Eq 3), and the border score (Eq 4).
//
// Shannon diversity uses log base 10 so that with at most three categorical
// values per mean the index stays below log10(3) ≈ 0.477 and the coherence
// 1 − div of Eq 2 stays inside (0, 1], matching the paper's remark that
// coherence "takes values less than one".

// shannonTabMax bounds the precomputed p·log10(p) lookup below. CM counts
// are small integers (feature observations per span), so almost every
// ShannonIndex call during segmentation hits the table instead of math.Log10.
const shannonTabMax = 96

// shannonTab[all][c] = (c/all)·log10(c/all), precomputed with exactly the
// arithmetic the slow path uses so table hits are bit-identical to it.
var shannonTab = func() [][]float64 {
	tab := make([][]float64, shannonTabMax)
	for all := 1; all < shannonTabMax; all++ {
		row := make([]float64, all+1)
		for c := 1; c <= all; c++ {
			p := float64(c) / float64(all)
			row[c] = p * math.Log10(p)
		}
		tab[all] = row
	}
	return tab
}()

// ShannonIndex computes Shannon's diversity index (Eq 1) of a distribution
// table: −Σ p_j·log10(p_j) over the non-zero cells. An empty table has
// diversity 0 (a vacuously even, minimal-richness distribution). Tables of
// small integer counts — the segmentation hot path — resolve through a
// precomputed lookup with results bit-identical to the direct computation.
func ShannonIndex(table []float64) float64 {
	var all float64
	for _, c := range table {
		all += c
	}
	if all == 0 {
		return 0
	}
	if div, ok := shannonSmallInt(table, all); ok {
		return div
	}
	var div float64
	for _, c := range table {
		if c <= 0 {
			continue
		}
		p := c / all
		div -= p * math.Log10(p)
	}
	return div
}

// shannonSmallInt resolves ShannonIndex through the precomputed table when
// every count is a small non-negative integer. The second return is false
// when any cell falls outside the table's domain (caller falls back to the
// direct computation).
func shannonSmallInt(table []float64, all float64) (float64, bool) {
	ai := int(all)
	if float64(ai) != all || ai < 1 || ai >= shannonTabMax {
		return 0, false
	}
	row := shannonTab[ai]
	var div float64
	for _, c := range table {
		if c <= 0 {
			continue
		}
		ci := int(c)
		if float64(ci) != c || ci > ai {
			return 0, false
		}
		div -= row[ci]
	}
	return div, true
}

// RichnessIndex is the normalized richness of a distribution table: the
// fraction of categorical values with non-zero observations. It ignores
// evenness, which is exactly why Fig 9 finds it weaker than Shannon's index.
func RichnessIndex(table []float64) float64 {
	if len(table) == 0 {
		return 0
	}
	nz := 0
	for _, c := range table {
		if c > 0 {
			nz++
		}
	}
	return float64(nz) / float64(len(table))
}

// DiversityFunc maps a distribution table to a diversity value in [0, 1).
// ShannonIndex and RichnessIndex are the two instances studied in Fig 9.
// The table an implementation receives is a read-only view into the caller's
// annotation, valid only for the duration of the call — implementations must
// not modify or retain it.
type DiversityFunc func(table []float64) float64

// Diversity computes the diversity of mean m within the annotated span
// using Shannon's index.
func Diversity(a Annotation, m Mean) float64 {
	lo, hi := FeaturesOf(m)
	return ShannonIndex(a.Counts[lo:hi])
}

// Coherence computes the segment coherence of Eq 2 with Shannon diversity:
// the mean over all communication means of 1 − div_CM(s).
func Coherence(a Annotation) float64 {
	return CoherenceWith(a, ShannonIndex)
}

// CoherenceWith computes Eq 2 with an arbitrary diversity function.
func CoherenceWith(a Annotation, div DiversityFunc) float64 {
	var sum float64
	for m := Mean(0); m < NumMeans; m++ {
		lo, hi := FeaturesOf(m)
		sum += 1.0 - div(a.Counts[lo:hi])
	}
	return sum / float64(NumMeans)
}

// CoherenceOfMean computes the single-mean coherence 1 − div_CM(s), used by
// the Greedy border-selection strategy that votes one communication mean at
// a time.
func CoherenceOfMean(a Annotation, m Mean, div DiversityFunc) float64 {
	lo, hi := FeaturesOf(m)
	return 1.0 - div(a.Counts[lo:hi])
}

// ShannonCoherence is the direct form of CoherenceWith(a, ShannonIndex) for
// the segmentation hot loop: the pointer argument and concrete diversity
// call keep the ~240-byte Annotation out of both the copy path and the heap
// (an indirect DiversityFunc forces the receiver to escape). Results are
// bit-identical to the generic form.
func ShannonCoherence(a *Annotation) float64 {
	var sum float64
	for m := Mean(0); m < NumMeans; m++ {
		lo, hi := FeaturesOf(m)
		sum += 1.0 - ShannonIndex(a.Counts[lo:hi])
	}
	return sum / float64(NumMeans)
}

// ShannonCoherenceOfMean is the direct form of
// CoherenceOfMean(a, m, ShannonIndex); see ShannonCoherence.
func ShannonCoherenceOfMean(a *Annotation, m Mean) float64 {
	lo, hi := FeaturesOf(m)
	return 1.0 - ShannonIndex(a.Counts[lo:hi])
}

// Depth computes the border depth of Eq 3 from the coherences of the left
// segment, the right segment, and their hypothetical concatenation. A deep
// border separates two segments that are each more coherent than their
// union.
func Depth(cohLeft, cohRight, cohMerged float64) float64 {
	if cohMerged == 0 {
		return 0
	}
	return (math.Abs(cohLeft-cohMerged) + math.Abs(cohRight-cohMerged)) / (2 * cohMerged)
}

// BorderScore combines the two segment coherences and the border depth into
// the border score of Eq 4 (their plain average).
func BorderScore(cohLeft, cohRight, depth float64) float64 {
	return (cohLeft + cohRight + depth) / 3
}

// ScoreBorder evaluates the border between two annotated spans end to end:
// it derives the merged annotation, computes the three coherences with the
// supplied diversity function, and returns (score, depth).
func ScoreBorder(left, right Annotation, div DiversityFunc) (score, depth float64) {
	merged := left.Add(right)
	cl := CoherenceWith(left, div)
	cr := CoherenceWith(right, div)
	cd := CoherenceWith(merged, div)
	d := Depth(cl, cr, cd)
	return BorderScore(cl, cr, d), d
}

// ShannonScoreBorder is the direct form of
// ScoreBorder(left, right, ShannonIndex); see ShannonCoherence. The merged
// annotation stays on the caller's stack.
func ShannonScoreBorder(left, right *Annotation) (score, depth float64) {
	var merged Annotation
	left.AddInto(right, &merged)
	cl := ShannonCoherence(left)
	cr := ShannonCoherence(right)
	cd := ShannonCoherence(&merged)
	d := Depth(cl, cr, cd)
	return BorderScore(cl, cr, d), d
}
