// Package cm implements the communication means (CM) machinery of the
// paper: the Table-1 feature schema, per-sentence annotation into
// distribution tables (DSb), the Shannon-diversity / richness measures
// (Eq 1), segment coherence (Eq 2), border depth (Eq 3), border score
// (Eq 4), and the two segment weight vectors used for intention clustering
// (Eq 5 and Eq 6).
//
// A communication mean is a categorical variable observable throughout a
// text: verb Tense takes the values {present, past, future}, Subject takes
// {first, second, third person}, and so on. A shift in the joint
// distribution of these variables signals a shift in the author's
// intention, the way a shift in term distribution signals a topic change.
package cm

// Mean identifies one communication mean — one row of Table 1.
type Mean int

const (
	// Tense distinguishes present, past, and future verb groups.
	Tense Mean = iota
	// Subject distinguishes first-, second-, and third-person references.
	Subject
	// Style distinguishes interrogative, negative, and affirmative sentences
	// (CM_qneg in the paper).
	Style
	// Status distinguishes passive from active voice (CM_pasact).
	Status
	// PartOfSpeech distinguishes verbs, nouns, and adjectives/adverbs
	// (CM_pos).
	PartOfSpeech

	// NumMeans is the number of communication means.
	NumMeans
)

var meanNames = [...]string{
	Tense: "CM_tense", Subject: "CM_subj", Style: "CM_qneg",
	Status: "CM_pasact", PartOfSpeech: "CM_pos",
}

// String returns the paper's name for the mean.
func (m Mean) String() string {
	if int(m) < len(meanNames) {
		return meanNames[m]
	}
	return "CM_?"
}

// Feature identifies one categorical value of one mean — one cell of
// Table 1. Features are laid out contiguously so a 14-element vector indexed
// by Feature is the concatenation of the per-mean distribution tables.
type Feature int

const (
	TensePresent Feature = iota
	TensePast
	TenseFuture
	SubjectFirst
	SubjectSecond
	SubjectThird
	StyleInterrogative
	StyleNegative
	StyleAffirmative
	StatusPassive
	StatusActive
	POSVerb
	POSNoun
	POSAdjAdv

	// NumFeatures is the total number of features across all means.
	NumFeatures
)

var featureNames = [...]string{
	TensePresent: "Present", TensePast: "Past", TenseFuture: "Future",
	SubjectFirst: "I/we", SubjectSecond: "You", SubjectThird: "She/They",
	StyleInterrogative: "Interrog", StyleNegative: "Negative",
	StyleAffirmative: "Affirmative", StatusPassive: "Passive",
	StatusActive: "Active", POSVerb: "Verb", POSNoun: "Noun",
	POSAdjAdv: "Adj/Adverb",
}

// String returns the paper's name for the feature value.
func (f Feature) String() string {
	if int(f) < len(featureNames) {
		return featureNames[f]
	}
	return "?"
}

// meanOffsets[m] is the Feature index where mean m's features begin; the
// mean's domain size is meanSizes[m].
var (
	meanOffsets = [NumMeans]int{Tense: 0, Subject: 3, Style: 6, Status: 9, PartOfSpeech: 11}
	meanSizes   = [NumMeans]int{Tense: 3, Subject: 3, Style: 3, Status: 2, PartOfSpeech: 3}
)

// MeanOf returns the communication mean a feature belongs to.
func MeanOf(f Feature) Mean {
	for m := NumMeans - 1; m >= 0; m-- {
		if int(f) >= meanOffsets[m] {
			return m
		}
	}
	return Tense
}

// FeaturesOf returns the half-open Feature index range [lo, hi) of mean m's
// distribution table.
func FeaturesOf(m Mean) (lo, hi int) {
	return meanOffsets[m], meanOffsets[m] + meanSizes[m]
}

// Annotation is the distribution-table bundle of a text span: Counts[f] is
// the number of observations of feature f in the span (the DSb tables of
// Sec 5.2 laid side by side), and Words is the number of word tokens.
// The zero value is an empty annotation; annotations of adjacent spans are
// combined with Add, which is what makes bottom-up segment merging cheap.
type Annotation struct {
	Counts [NumFeatures]float64
	Words  int
}

// Add returns the annotation of the concatenation of the two spans.
func (a Annotation) Add(b Annotation) Annotation {
	var out Annotation
	for i := range a.Counts {
		out.Counts[i] = a.Counts[i] + b.Counts[i]
	}
	out.Words = a.Words + b.Words
	return out
}

// AddInto stores the annotation of the concatenation a+b into out without
// copying either operand — the in-place form hot loops use (Add moves three
// ~240-byte values per call). out may alias a or b. The summation order is
// identical to Add's.
func (a *Annotation) AddInto(b, out *Annotation) {
	for i := range a.Counts {
		out.Counts[i] = a.Counts[i] + b.Counts[i]
	}
	out.Words = a.Words + b.Words
}

// SubInto stores a−b into out; the in-place form of Sub (see AddInto).
// out may alias a or b.
func (a *Annotation) SubInto(b, out *Annotation) {
	for i := range a.Counts {
		out.Counts[i] = a.Counts[i] - b.Counts[i]
	}
	out.Words = a.Words - b.Words
}

// Sub returns the annotation of a with b removed. It is the inverse of Add
// and enables O(1) range queries over prefix-sum annotation tables.
func (a Annotation) Sub(b Annotation) Annotation {
	var out Annotation
	for i := range a.Counts {
		out.Counts[i] = a.Counts[i] - b.Counts[i]
	}
	out.Words = a.Words - b.Words
	return out
}

// Table returns the distribution table (DSb) of mean m: a copy of the count
// vector over the mean's categorical values.
func (a Annotation) Table(m Mean) []float64 {
	lo, hi := FeaturesOf(m)
	out := make([]float64, hi-lo)
	copy(out, a.Counts[lo:hi])
	return out
}

// Total returns the sum of all observations of mean m in the span (the
// "All" normalizer of Eq 1).
func (a Annotation) Total(m Mean) float64 {
	lo, hi := FeaturesOf(m)
	var sum float64
	for i := lo; i < hi; i++ {
		sum += a.Counts[i]
	}
	return sum
}
