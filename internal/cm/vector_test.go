package cm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/textproc"
)

func TestWithinSegmentWeightsSumToOnePerMean(t *testing.T) {
	sents := textproc.SplitSentences("I installed Linux. It didn't boot. Will it ever work?")
	seg := Merge(AnnotateAll(sents), 0, len(sents))
	w := WithinSegmentWeights(seg)
	for m := Mean(0); m < NumMeans; m++ {
		lo, hi := FeaturesOf(m)
		var sum float64
		for f := lo; f < hi; f++ {
			sum += w[f]
		}
		if seg.Total(m) > 0 && math.Abs(sum-1) > 1e-9 {
			t.Errorf("mean %v weights sum to %v, want 1", m, sum)
		}
		if seg.Total(m) == 0 && sum != 0 {
			t.Errorf("mean %v absent but weights sum to %v", m, sum)
		}
	}
}

func TestWithinDocumentWeightsPaperExample(t *testing.T) {
	// Paper example (Sec 6): five past-tense verbs in the document, four in
	// the segment → weight 4/5.
	var doc, seg Annotation
	doc.Counts[TensePast] = 5
	seg.Counts[TensePast] = 4
	w := WithinDocumentWeights(seg, doc)
	if w[TensePast] != 0.8 {
		t.Errorf("within-document weight = %v, want 0.8", w[TensePast])
	}
}

func TestWithinDocumentWeightsBounds(t *testing.T) {
	sents := textproc.SplitSentences("I installed Linux. It failed. Do you know why? The vendor was called.")
	anns := AnnotateAll(sents)
	doc := Merge(anns, 0, len(anns))
	seg := Merge(anns, 0, 2)
	w := WithinDocumentWeights(seg, doc)
	for i, v := range w {
		if v < 0 || v > 1+1e-12 {
			t.Errorf("weight[%d] = %v, out of [0,1]", i, v)
		}
	}
	// Whole document as one segment → all present features weigh 1.
	wAll := WithinDocumentWeights(doc, doc)
	for i, v := range wAll {
		if doc.Counts[i] > 0 && math.Abs(v-1) > 1e-12 {
			t.Errorf("whole-doc weight[%d] = %v, want 1", i, v)
		}
	}
}

func TestWeightVectorLayout(t *testing.T) {
	sents := textproc.SplitSentences("I installed Linux. It failed.")
	anns := AnnotateAll(sents)
	doc := Merge(anns, 0, len(anns))
	vec := WeightVector(anns[0], doc)
	if len(vec) != VectorLen {
		t.Fatalf("len(WeightVector) = %d, want %d", len(vec), VectorLen)
	}
	w1 := WithinSegmentWeights(anns[0])
	w2 := WithinDocumentWeights(anns[0], doc)
	for i := 0; i < int(NumFeatures); i++ {
		if vec[i] != w1[i] {
			t.Fatalf("vec[%d] != within-segment weight", i)
		}
		if vec[int(NumFeatures)+i] != w2[i] {
			t.Fatalf("vec[%d] != within-document weight", int(NumFeatures)+i)
		}
	}
}

// Property: weight vectors never contain NaN/Inf and Eq 5 components are in
// [0,1] regardless of counts.
func TestWeightVectorFiniteProperty(t *testing.T) {
	f := func(counts [NumFeatures]uint8, docExtra [NumFeatures]uint8) bool {
		var seg, doc Annotation
		for i := 0; i < int(NumFeatures); i++ {
			seg.Counts[i] = float64(counts[i] % 20)
			doc.Counts[i] = seg.Counts[i] + float64(docExtra[i]%20)
		}
		for i, v := range WeightVector(seg, doc) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
			if v < 0 || v > 1+1e-12 {
				return false
			}
			_ = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorFeatureName(t *testing.T) {
	if got := VectorFeatureName(0); !strings.Contains(got, "CM_tense") || !strings.Contains(got, "within-segment") {
		t.Errorf("VectorFeatureName(0) = %q", got)
	}
	if got := VectorFeatureName(int(NumFeatures)); !strings.Contains(got, "within-document") {
		t.Errorf("VectorFeatureName(%d) = %q", int(NumFeatures), got)
	}
}
