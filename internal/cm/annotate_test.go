package cm

import (
	"testing"

	"repro/internal/textproc"
)

func annotateText(t *testing.T, text string) Annotation {
	t.Helper()
	sents := textproc.SplitSentences(text)
	if len(sents) != 1 {
		t.Fatalf("expected one sentence, got %d: %q", len(sents), text)
	}
	return Annotate(sents[0])
}

func TestAnnotatePresentFirstPerson(t *testing.T) {
	a := annotateText(t, "I have an HP system with a RAID controller.")
	if a.Counts[TensePresent] == 0 {
		t.Error("expected present-tense count")
	}
	if a.Counts[TensePast] != 0 || a.Counts[TenseFuture] != 0 {
		t.Errorf("unexpected past/future counts: %v %v", a.Counts[TensePast], a.Counts[TenseFuture])
	}
	if a.Counts[SubjectFirst] != 1 {
		t.Errorf("SubjectFirst = %v, want 1", a.Counts[SubjectFirst])
	}
	if a.Counts[StyleAffirmative] != 1 {
		t.Errorf("StyleAffirmative = %v, want 1", a.Counts[StyleAffirmative])
	}
	if a.Counts[StatusActive] != 1 || a.Counts[StatusPassive] != 0 {
		t.Errorf("Status = passive %v active %v, want active", a.Counts[StatusPassive], a.Counts[StatusActive])
	}
}

func TestAnnotatePastTense(t *testing.T) {
	a := annotateText(t, "My boss gave me a computer yesterday.")
	if a.Counts[TensePast] == 0 {
		t.Error("expected past-tense count")
	}
	if a.Counts[TenseFuture] != 0 {
		t.Error("unexpected future count")
	}
}

func TestAnnotateFuture(t *testing.T) {
	a := annotateText(t, "I will install the update tomorrow.")
	if a.Counts[TenseFuture] == 0 {
		t.Error("expected future count for 'will install'")
	}
	a = annotateText(t, "It is going to crash again.")
	if a.Counts[TenseFuture] == 0 {
		t.Error("expected future count for 'going to crash'")
	}
}

func TestAnnotatePerfectIsPast(t *testing.T) {
	a := annotateText(t, "Friends have downloaded the Cloudera distribution.")
	if a.Counts[TensePast] == 0 {
		t.Error("present perfect should count as past event")
	}
}

func TestAnnotateInterrogative(t *testing.T) {
	for _, text := range []string{
		"Do you know whether it would perform ok?",
		"Why does it stop.",
		"Can I add an extra drive without rebuilding.",
	} {
		a := annotateText(t, text)
		if a.Counts[StyleInterrogative] != 1 {
			t.Errorf("%q: StyleInterrogative = %v, want 1", text, a.Counts[StyleInterrogative])
		}
	}
}

func TestAnnotateNegative(t *testing.T) {
	a := annotateText(t, "It didn't work at all.")
	if a.Counts[StyleNegative] != 1 {
		t.Errorf("StyleNegative = %v, want 1", a.Counts[StyleNegative])
	}
	a = annotateText(t, "I do not want to install Linux.")
	if a.Counts[StyleNegative] != 1 {
		t.Errorf("StyleNegative = %v, want 1", a.Counts[StyleNegative])
	}
}

func TestAnnotateInterrogativeBeatsNegative(t *testing.T) {
	a := annotateText(t, "Why didn't it work?")
	if a.Counts[StyleInterrogative] != 1 || a.Counts[StyleNegative] != 0 {
		t.Errorf("question with negation should count interrogative only: %v", a.Counts)
	}
}

func TestAnnotatePassive(t *testing.T) {
	a := annotateText(t, "The driver was installed by the technician.")
	if a.Counts[StatusPassive] != 1 {
		t.Errorf("StatusPassive = %v, want 1", a.Counts[StatusPassive])
	}
	a = annotateText(t, "The laptop got repaired last week.")
	if a.Counts[StatusPassive] != 1 {
		t.Errorf("get-passive: StatusPassive = %v, want 1", a.Counts[StatusPassive])
	}
}

func TestAnnotatePOSCounts(t *testing.T) {
	a := annotateText(t, "The old printer prints blank pages slowly.")
	if a.Counts[POSVerb] == 0 {
		t.Error("expected verb count")
	}
	if a.Counts[POSNoun] < 2 {
		t.Errorf("POSNoun = %v, want >= 2", a.Counts[POSNoun])
	}
	if a.Counts[POSAdjAdv] < 2 {
		t.Errorf("POSAdjAdv = %v, want >= 2 (old, slowly)", a.Counts[POSAdjAdv])
	}
}

func TestAnnotateSubjectPersons(t *testing.T) {
	a := annotateText(t, "I told you that they failed.")
	if a.Counts[SubjectFirst] != 1 || a.Counts[SubjectSecond] != 1 || a.Counts[SubjectThird] != 1 {
		t.Errorf("subject counts = %v/%v/%v, want 1/1/1",
			a.Counts[SubjectFirst], a.Counts[SubjectSecond], a.Counts[SubjectThird])
	}
}

func TestAnnotateNoVerbNoStatus(t *testing.T) {
	a := annotateText(t, "Lovely hotel, great location.")
	if a.Counts[StatusActive] != 0 || a.Counts[StatusPassive] != 0 {
		t.Errorf("verbless sentence should have no Status counts: %v %v",
			a.Counts[StatusActive], a.Counts[StatusPassive])
	}
}

func TestMergeAndAdd(t *testing.T) {
	sents := textproc.SplitSentences("I installed Linux. It didn't boot. Will it ever work?")
	anns := AnnotateAll(sents)
	if len(anns) != 3 {
		t.Fatalf("got %d annotations, want 3", len(anns))
	}
	merged := Merge(anns, 0, 3)
	var styleTotal float64
	for f := StyleInterrogative; f <= StyleAffirmative; f++ {
		styleTotal += merged.Counts[f]
	}
	if styleTotal != 3 {
		t.Errorf("merged style total = %v, want 3 (one per sentence)", styleTotal)
	}
	if merged.Words != anns[0].Words+anns[1].Words+anns[2].Words {
		t.Error("merged word count mismatch")
	}
	// Merge of a subrange.
	m2 := Merge(anns, 1, 2)
	if m2 != anns[1] {
		t.Error("Merge of single element should equal that element")
	}
}

func TestAnnotationTableAndTotal(t *testing.T) {
	var a Annotation
	a.Counts[TensePresent] = 2
	a.Counts[TensePast] = 3
	tab := a.Table(Tense)
	if len(tab) != 3 || tab[0] != 2 || tab[1] != 3 || tab[2] != 0 {
		t.Errorf("Table(Tense) = %v", tab)
	}
	if a.Total(Tense) != 5 {
		t.Errorf("Total(Tense) = %v, want 5", a.Total(Tense))
	}
	// Mutating the returned table must not alias the annotation.
	tab[0] = 99
	if a.Counts[TensePresent] != 2 {
		t.Error("Table returned an aliased slice")
	}
}

func TestMeanOfAndFeaturesOf(t *testing.T) {
	if MeanOf(TensePast) != Tense {
		t.Error("MeanOf(TensePast) != Tense")
	}
	if MeanOf(StatusActive) != Status {
		t.Error("MeanOf(StatusActive) != Status")
	}
	if MeanOf(POSAdjAdv) != PartOfSpeech {
		t.Error("MeanOf(POSAdjAdv) != PartOfSpeech")
	}
	lo, hi := FeaturesOf(Status)
	if hi-lo != 2 || Feature(lo) != StatusPassive {
		t.Errorf("FeaturesOf(Status) = [%d,%d)", lo, hi)
	}
	// The offsets must tile [0, NumFeatures) exactly.
	covered := 0
	for m := Mean(0); m < NumMeans; m++ {
		lo, hi := FeaturesOf(m)
		covered += hi - lo
	}
	if covered != int(NumFeatures) {
		t.Errorf("means cover %d features, want %d", covered, NumFeatures)
	}
}

func TestStringNames(t *testing.T) {
	if Tense.String() != "CM_tense" || Style.String() != "CM_qneg" {
		t.Error("Mean.String mismatch")
	}
	if TenseFuture.String() != "Future" || SubjectSecond.String() != "You" {
		t.Error("Feature.String mismatch")
	}
}
