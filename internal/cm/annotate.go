package cm

import (
	"repro/internal/pos"
	"repro/internal/textproc"
)

// Annotate computes the communication-means annotation of one sentence.
// Tense, Subject and PartOfSpeech are counted per token (each verb group
// contributes to exactly one tense; each personal pronoun to one person;
// each verb/noun/adjective/adverb token to one POS bucket). Style and
// Status are sentence-level categorical observations: the sentence
// contributes one count to interrogative/negative/affirmative and, if it
// contains a verb, one count to passive or active.
func Annotate(sent textproc.Sentence) Annotation {
	words := make([]string, len(sent.Tokens))
	for i, t := range sent.Tokens {
		words[i] = t.Text
	}
	tagged := pos.TagWords(words)

	var a Annotation
	hasVerb := false
	passive := false
	negative := false

	for i, tt := range tagged {
		if tt.Tag != pos.Punct && tt.Lower != "" {
			a.Words++
		}
		switch tt.Tag {
		case pos.PronounFirst:
			a.Counts[SubjectFirst]++
		case pos.PronounSecond:
			a.Counts[SubjectSecond]++
		case pos.PronounThird:
			a.Counts[SubjectThird]++
		case pos.Noun:
			a.Counts[POSNoun]++
		case pos.Adjective, pos.Adverb:
			a.Counts[POSAdjAdv]++
		}
		if tt.Tag.IsVerb() {
			hasVerb = true
			a.Counts[POSVerb]++
			a.Counts[verbTense(tagged, i)]++
			if tt.Tag == pos.VerbPastPart && hasPassiveAux(tagged, i) {
				passive = true
			}
		}
		// A future modal with no verb to carry it ("I will, for sure.") still
		// signals futurity.
		if tt.Tag == pos.Modal && pos.IsFutureMarker(tt.Lower) && !verbFollows(tagged, i) {
			a.Counts[TenseFuture]++
		}
		if pos.IsNegation(tt.Lower) {
			negative = true
		}
	}

	switch {
	case isInterrogative(sent, tagged):
		a.Counts[StyleInterrogative]++
	case negative:
		a.Counts[StyleNegative]++
	default:
		a.Counts[StyleAffirmative]++
	}

	if hasVerb {
		if passive {
			a.Counts[StatusPassive]++
		} else {
			a.Counts[StatusActive]++
		}
	}
	return a
}

// AnnotateAll annotates every sentence of a document.
func AnnotateAll(sents []textproc.Sentence) []Annotation {
	out := make([]Annotation, len(sents))
	for i, s := range sents {
		out[i] = Annotate(s)
	}
	return out
}

// Merge combines the annotations of a half-open sentence range [lo, hi)
// into the annotation of the segment they form.
func Merge(anns []Annotation, lo, hi int) Annotation {
	var a Annotation
	for i := lo; i < hi; i++ {
		a = a.Add(anns[i])
	}
	return a
}

// verbTense classifies the tense of the verb at index i from its auxiliary
// context: a future marker in the verb group wins; otherwise finite past
// forms and perfect participles are past; everything else is present.
func verbTense(tagged []pos.TaggedToken, i int) Feature {
	// Scan the auxiliary window: up to three non-punctuation tokens to the
	// left, stopping at a clause-breaking token.
	seen := 0
	for j := i - 1; j >= 0 && seen < 3; j-- {
		tt := tagged[j]
		if tt.Tag == pos.Punct {
			if tt.Text == "," || tt.Text == ";" {
				break
			}
			continue
		}
		seen++
		if tt.Tag == pos.Modal {
			if pos.IsFutureMarker(tt.Lower) {
				return TenseFuture
			}
			return TensePresent // conditional/ability modals read as present
		}
		switch tt.Lower {
		case "had", "was", "were", "did", "didn't", "wasn't", "weren't", "hadn't":
			return TensePast
		case "have", "has", "'ve", "haven't", "hasn't":
			// Perfect aspect reports a past event.
			if tagged[i].Tag == pos.VerbPastPart {
				return TensePast
			}
		case "going", "gonna":
			// "going to install" — future.
			if tagged[i].Tag == pos.VerbBase {
				return TenseFuture
			}
		}
		if tt.Tag.IsVerb() || tt.Tag.IsPronoun() || tt.Tag == pos.Noun {
			break // left the auxiliary group
		}
	}
	switch tagged[i].Tag {
	case pos.VerbPast, pos.VerbPastPart:
		return TensePast
	default:
		return TensePresent
	}
}

// hasPassiveAux reports whether the past participle at index i is preceded
// by a form of "be" or "get" within its verb group, i.e., heads a passive
// construction ("was suggested", "got installed", "has been fixed").
func hasPassiveAux(tagged []pos.TaggedToken, i int) bool {
	seen := 0
	for j := i - 1; j >= 0 && seen < 3; j-- {
		tt := tagged[j]
		if tt.Tag == pos.Punct {
			continue
		}
		seen++
		if pos.IsBeForm(tt.Lower) || pos.IsGetForm(tt.Lower) || tt.Lower == "been" || tt.Lower == "being" {
			return true
		}
		if tt.Tag == pos.Adverb || tt.Tag == pos.Particle {
			continue // "was not updated", "was quickly fixed"
		}
		return false
	}
	return false
}

// verbFollows reports whether a verb token appears within the three
// non-punctuation tokens after index i.
func verbFollows(tagged []pos.TaggedToken, i int) bool {
	seen := 0
	for j := i + 1; j < len(tagged) && seen < 3; j++ {
		if tagged[j].Tag == pos.Punct {
			continue
		}
		seen++
		if tagged[j].Tag.IsVerb() {
			return true
		}
	}
	return false
}

// isInterrogative reports whether the sentence is a question: it ends with
// a question mark, or opens with an interrogative word, or opens with an
// inverted auxiliary/modal followed by a pronoun ("Do you know ...",
// "Can I do it ...").
func isInterrogative(sent textproc.Sentence, tagged []pos.TaggedToken) bool {
	if sent.EndsWith('?') {
		return true
	}
	var first, second *pos.TaggedToken
	for i := range tagged {
		if tagged[i].Tag == pos.Punct {
			continue
		}
		if first == nil {
			first = &tagged[i]
			continue
		}
		second = &tagged[i]
		break
	}
	if first == nil {
		return false
	}
	if pos.IsWhWord(first.Lower) {
		return true
	}
	if second != nil && second.Tag.IsPronoun() {
		switch first.Lower {
		case "do", "does", "did", "can", "could", "would", "will", "should",
			"is", "are", "was", "were", "have", "has", "had", "may", "might":
			return true
		}
	}
	return false
}
