package cm

// This file implements the segment weight vectors of Sec 6. A segment is
// represented for intention clustering by the concatenation of two
// 14-element weight vectors:
//
//   - Eq 5 (within-segment): each feature's share of its own communication
//     mean inside the segment — "how much stronger is the 2nd person than
//     the 1st or 3rd in this segment".
//   - Eq 6 (within-document): each feature's count in the segment divided by
//     its count in the whole document — "what portion of the document's past
//     tense verbs live in this segment".
//
// Both components are scale-free, which is what lets DBSCAN group segments
// from long and short posts into the same intention cluster.

// VectorLen is the dimensionality of a segment's clustering vector:
// NumFeatures weights of the first type followed by NumFeatures weights of
// the second type (28 with the Table-1 schema).
const VectorLen = int(2 * NumFeatures)

// WithinSegmentWeights computes the Eq 5 weight vector of a segment: for
// every feature, its count divided by the total observations of its
// communication mean within the segment. Means with no observations yield
// zero weights.
func WithinSegmentWeights(seg Annotation) []float64 {
	out := make([]float64, NumFeatures)
	for m := Mean(0); m < NumMeans; m++ {
		lo, hi := FeaturesOf(m)
		total := seg.Total(m)
		if total == 0 {
			continue
		}
		for f := lo; f < hi; f++ {
			out[f] = seg.Counts[f] / total
		}
	}
	return out
}

// WithinDocumentWeights computes the Eq 6 weight vector of a segment: for
// every feature, its count in the segment divided by its count in the whole
// document (the DSb* table). Features absent from the document yield zero
// weights.
func WithinDocumentWeights(seg, doc Annotation) []float64 {
	out := make([]float64, NumFeatures)
	for f := 0; f < int(NumFeatures); f++ {
		if doc.Counts[f] > 0 {
			out[f] = seg.Counts[f] / doc.Counts[f]
		}
	}
	return out
}

// WeightVector computes the full clustering representation of a segment:
// the Eq 5 vector concatenated with the Eq 6 vector.
func WeightVector(seg, doc Annotation) []float64 {
	out := make([]float64, 0, VectorLen)
	out = append(out, WithinSegmentWeights(seg)...)
	out = append(out, WithinDocumentWeights(seg, doc)...)
	return out
}

// VectorFeatureName describes element i of a WeightVector for display
// (Fig 3 row labels): the CM-feature name plus which weight type it is.
func VectorFeatureName(i int) string {
	f := Feature(i % int(NumFeatures))
	name := MeanOf(f).String() + "-" + f.String()
	if i < int(NumFeatures) {
		return name + " (within-segment)"
	}
	return name + " (within-document)"
}
