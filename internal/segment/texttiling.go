package segment

// TextTiling is Hearst's (1997) thematic segmentation algorithm: lexical
// cohesion between fixed-size blocks of text on either side of each
// candidate gap, valley depth scoring, and a mean − stddev/2 cutoff. It is
// the term-based baseline of Sec 9.1.2.A and the segmenter behind the
// Content-MR method of Sec 9.2.3 — topical where the paper's method is
// intentional.
type TextTiling struct {
	// BlockSize is the number of sentence units per comparison block.
	// 2 when zero (forum posts are short; Hearst's token-based w≈20 words
	// corresponds to roughly two sentences).
	BlockSize int
	// C scales the standard deviation in the cutoff mean − C·stddev.
	// 0.5 when zero (Hearst's setting).
	C float64
}

// Name implements Strategy.
func (t TextTiling) Name() string { return "TextTiling" }

func (t TextTiling) blockSize() int {
	if t.BlockSize <= 0 {
		return 2
	}
	return t.BlockSize
}

func (t TextTiling) c() float64 {
	if t.C == 0 {
		return 0.5
	}
	return t.C
}

// Segment implements Strategy.
func (t TextTiling) Segment(d *Doc) Segmentation {
	n := d.Len()
	if n <= 1 {
		return Segmentation{N: n}
	}
	w := t.blockSize()
	dist := Distance{Kind: cosineDist, OnTerms: true}

	// Gap similarity: cosine similarity between the blocks left and right of
	// each gap g (between sentences g-1 and g).
	sims := make([]float64, 0, n-1)
	for g := 1; g < n; g++ {
		lo := max(0, g-w)
		hi := min(n, g+w)
		sims = append(sims, cosineSim(dist.vector(d, lo, g), dist.vector(d, g, hi)))
	}

	// Depth score of each gap: how far the similarity valley sits below the
	// nearest peaks on both sides.
	depths := make([]float64, len(sims))
	for i := range sims {
		left := sims[i]
		for j := i - 1; j >= 0 && sims[j] >= left; j-- {
			left = sims[j]
		}
		right := sims[i]
		for j := i + 1; j < len(sims) && sims[j] >= right; j++ {
			right = sims[j]
		}
		depths[i] = (left - sims[i]) + (right - sims[i])
	}

	mean, std := meanStd(depths)
	cutoff := mean - t.c()*std
	var borders []int
	for i, depth := range depths {
		if depth > cutoff && depth > 0 {
			borders = append(borders, i+1)
		}
	}
	return Segmentation{Borders: borders, N: n}
}
