package segment

import "repro/internal/cm"

// FStat scores borders with an F-statistic — the alternative Sec 5.3
// mentions alongside Eq 4 ("the score can be computed using a weighted sum
// of coherence and depth, the f-statistics, or any other metric as long as
// it is consistent with the above principle"). Each sentence unit
// contributes one observation per communication-means feature; the border
// is good when between-segment variance dominates within-segment variance.
// The raw F ratio is squashed to (0, 1) as F/(1+F) so it composes with the
// strategies' distribution-relative thresholds.
type FStat struct{}

// Name implements ScoreFunc.
func (FStat) Name() string { return "F-stat" }

// BorderScore implements ScoreFunc.
func (FStat) BorderScore(d *Doc, lo, b, hi int) float64 {
	f := fRatio(d, lo, b, hi)
	return f / (1 + f)
}

// SegCoherence implements ScoreFunc: one minus the squashed within-segment
// F ratio of the segment against its own mean — a homogeneous segment has
// low internal variance.
func (FStat) SegCoherence(d *Doc, lo, hi int) float64 {
	if hi-lo <= 1 {
		return 1
	}
	// Within-variance of the segment around its mean, normalized per unit.
	mean := unitMeans(d, lo, hi)
	var within float64
	for i := lo; i < hi; i++ {
		u := unitVector(d, i)
		for f := range u {
			diff := u[f] - mean[f]
			within += diff * diff
		}
	}
	within /= float64(hi - lo)
	return 1 / (1 + within)
}

// fRatio computes the mean per-feature F statistic of the two groups
// [lo,b) and [b,hi) of sentence observations.
func fRatio(d *Doc, lo, b, hi int) float64 {
	n1, n2 := b-lo, hi-b
	if n1 < 1 || n2 < 1 || n1+n2 < 3 {
		return 0
	}
	m1 := unitMeans(d, lo, b)
	m2 := unitMeans(d, b, hi)
	grand := make([]float64, len(m1))
	for f := range grand {
		grand[f] = (m1[f]*float64(n1) + m2[f]*float64(n2)) / float64(n1+n2)
	}
	var between, within float64
	for f := range grand {
		between += float64(n1)*sq(m1[f]-grand[f]) + float64(n2)*sq(m2[f]-grand[f])
	}
	for i := lo; i < hi; i++ {
		u := unitVector(d, i)
		m := m1
		if i >= b {
			m = m2
		}
		for f := range u {
			within += sq(u[f] - m[f])
		}
	}
	// df_between = 1 (two groups), df_within = n1+n2−2.
	msBetween := between
	msWithin := within / float64(n1+n2-2)
	if msWithin == 0 {
		if msBetween == 0 {
			return 0
		}
		return 1e6 // perfectly separated groups
	}
	return msBetween / msWithin
}

// unitVector is the normalized CM observation of one sentence unit: its
// Eq 5 within-segment weights (scale-free across sentence lengths).
func unitVector(d *Doc, i int) []float64 {
	return cm.WithinSegmentWeights(d.Range(i, i+1))
}

// unitMeans averages the unit vectors of [lo, hi).
func unitMeans(d *Doc, lo, hi int) []float64 {
	out := make([]float64, cm.NumFeatures)
	for i := lo; i < hi; i++ {
		for f, v := range unitVector(d, i) {
			out[f] += v
		}
	}
	for f := range out {
		out[f] /= float64(hi - lo)
	}
	return out
}

func sq(x float64) float64 { return x * x }
