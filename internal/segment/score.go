package segment

import (
	"math"

	"repro/internal/cm"
)

// ScoreFunc evaluates candidate borders and segment coherence. The
// implementations are the five coherence/depth function combinations
// compared in Fig 9 of the paper: Shannon diversity and richness on the
// communication-means tables, and cosine/Euclidean/Manhattan distances on
// feature vectors. All scores are normalized so that higher means "better
// border" / "more coherent segment".
type ScoreFunc interface {
	// Name identifies the function in experiment output.
	Name() string
	// BorderScore scores the border at b separating units [lo,b) and [b,hi).
	BorderScore(d *Doc, lo, b, hi int) float64
	// SegCoherence measures the internal coherence of units [lo,hi) in [0,1].
	SegCoherence(d *Doc, lo, hi int) float64
}

// Shannon is the paper's default scoring: coherence by Shannon's diversity
// index over the CM tables (Eq 1–2), border depth by Eq 3, and the border
// score of Eq 4.
type Shannon struct{}

// Name implements ScoreFunc.
func (Shannon) Name() string { return "Shan.Div." }

// BorderScore implements ScoreFunc.
func (Shannon) BorderScore(d *Doc, lo, b, hi int) float64 {
	var left, right cm.Annotation
	d.rangeInto(&left, lo, b)
	d.rangeInto(&right, b, hi)
	score, _ := cm.ShannonScoreBorder(&left, &right)
	return score
}

// SegCoherence implements ScoreFunc.
func (Shannon) SegCoherence(d *Doc, lo, hi int) float64 {
	var ann cm.Annotation
	d.rangeInto(&ann, lo, hi)
	return cm.ShannonCoherence(&ann)
}

// Richness scores like Shannon but measures diversity as the fraction of
// categorical values present, ignoring evenness.
type Richness struct{}

// Name implements ScoreFunc.
func (Richness) Name() string { return "Richness" }

// BorderScore implements ScoreFunc.
func (Richness) BorderScore(d *Doc, lo, b, hi int) float64 {
	score, _ := cm.ScoreBorder(d.Range(lo, b), d.Range(b, hi), cm.RichnessIndex)
	return score
}

// SegCoherence implements ScoreFunc.
func (Richness) SegCoherence(d *Doc, lo, hi int) float64 {
	return cm.CoherenceWith(d.Range(lo, hi), cm.RichnessIndex)
}

// distanceKind selects the vector distance of a Distance score function.
type distanceKind int

const (
	cosineDist distanceKind = iota
	euclideanDist
	manhattanDist
)

// Distance scores borders by a vector distance between the normalized CM
// count vectors of the two segments a border separates: a border is good
// when the two sides look different. OnTerms switches the representation
// from CM features to TF term vectors, which is the configuration the paper
// reports as ineffective for intention segmentation.
type Distance struct {
	Kind    distanceKind
	OnTerms bool
}

// Cosine, Euclidean and Manhattan are the Fig 9 distance variants on CM
// features.
var (
	Cosine    = Distance{Kind: cosineDist}
	Euclidean = Distance{Kind: euclideanDist}
	Manhattan = Distance{Kind: manhattanDist}
)

// Name implements ScoreFunc.
func (f Distance) Name() string {
	var base string
	switch f.Kind {
	case cosineDist:
		base = "Cos.Sim."
	case euclideanDist:
		base = "Eucl.Dist."
	default:
		base = "Manh.Dist."
	}
	if f.OnTerms {
		return base + "(terms)"
	}
	return base
}

// vector returns the representation of units [lo,hi) under this function:
// a TF vector keyed by Doc-wide term ids when OnTerms, the CM count vector
// otherwise.
func (f Distance) vector(d *Doc, lo, hi int) map[int]float64 {
	v := make(map[int]float64)
	if f.OnTerms {
		for i := lo; i < hi; i++ {
			for _, t := range d.terms[i] {
				v[d.termID(t)]++
			}
		}
		return v
	}
	ann := d.Range(lo, hi)
	for i, c := range ann.Counts {
		if c != 0 {
			v[i] = c
		}
	}
	return v
}

// BorderScore implements ScoreFunc: the normalized distance between the two
// sides' vectors, in [0,1].
func (f Distance) BorderScore(d *Doc, lo, b, hi int) float64 {
	left := f.vector(d, lo, b)
	right := f.vector(d, b, hi)
	return vectorDistance(f.Kind, left, right)
}

// SegCoherence implements ScoreFunc: one minus the average distance between
// consecutive sentence units inside the segment (a homogeneous segment has
// near-identical units).
func (f Distance) SegCoherence(d *Doc, lo, hi int) float64 {
	if hi-lo <= 1 {
		return 1
	}
	var sum float64
	for i := lo; i < hi-1; i++ {
		sum += vectorDistance(f.Kind, f.vector(d, i, i+1), f.vector(d, i+1, i+2))
	}
	return 1 - sum/float64(hi-lo-1)
}

// vectorDistance computes the selected distance between sparse vectors,
// normalized into [0,1]: cosine dissimilarity directly; Euclidean and
// Manhattan on L2-/L1-normalized vectors, divided by their maxima (√2, 2).
func vectorDistance(kind distanceKind, a, b map[int]float64) float64 {
	switch kind {
	case cosineDist:
		return 1 - cosineSim(a, b)
	case euclideanDist:
		na, nb := l2norm(a), l2norm(b)
		if na == 0 || nb == 0 {
			if na == nb {
				return 0
			}
			return 1
		}
		var sum float64
		for k, va := range a {
			diff := va/na - b[k]/nb
			sum += diff * diff
		}
		for k, vb := range b {
			if _, ok := a[k]; !ok {
				sum += (vb / nb) * (vb / nb)
			}
		}
		return math.Sqrt(sum) / math.Sqrt2
	default: // manhattanDist
		na, nb := l1norm(a), l1norm(b)
		if na == 0 || nb == 0 {
			if na == nb {
				return 0
			}
			return 1
		}
		var sum float64
		for k, va := range a {
			sum += math.Abs(va/na - b[k]/nb)
		}
		for k, vb := range b {
			if _, ok := a[k]; !ok {
				sum += vb / nb
			}
		}
		return sum / 2
	}
}

func cosineSim(a, b map[int]float64) float64 {
	na, nb := l2norm(a), l2norm(b)
	if na == 0 || nb == 0 {
		if na == nb {
			return 1
		}
		return 0
	}
	var dot float64
	for k, va := range a {
		dot += va * b[k]
	}
	return dot / (na * nb)
}

func l2norm(v map[int]float64) float64 {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

func l1norm(v map[int]float64) float64 {
	var sum float64
	for _, x := range v {
		sum += math.Abs(x)
	}
	return sum
}
