package segment

import (
	"math"

	"repro/internal/cm"
)

// This file implements the border-selection mechanisms of Sec 5.3. All
// bottom-up strategies start from the finest segmentation (every sentence a
// segment) and merge by deleting borders.

// Tile iteratively removes every border whose score falls below a
// threshold derived from the current score distribution (mean − C·stddev,
// the TextTiling cutoff), until all surviving borders clear it. It is the
// mechanism Hearst's thematic segmentation uses, here driven by
// communication-means scores.
type Tile struct {
	// Score evaluates borders; Shannon{} when nil.
	Score ScoreFunc
	// C scales the standard deviation in the threshold. 1.1 when zero —
	// calibrated on the synthetic corpora so Tile lands slightly above the
	// human border count, as in Fig 8(a).
	C float64
	// Window caps how many sentence units on each side of a border take
	// part in its score. The paper observes that comparing coherence
	// across segments of very different lengths misleads border selection;
	// a local window keeps scores comparable as segments grow. 1 when 0;
	// negative disables capping.
	Window int
}

// Name implements Strategy.
func (t Tile) Name() string { return "Tile" }

func (t Tile) score() ScoreFunc {
	if t.Score == nil {
		return Shannon{}
	}
	return t.Score
}

func (t Tile) c() float64 {
	if t.C == 0 {
		return 1.1
	}
	return t.C
}

// Segment implements Strategy.
func (t Tile) Segment(d *Doc) Segmentation {
	n := d.Len()
	if n <= 1 {
		return Segmentation{N: n}
	}
	sf := t.score()
	w := windowOrDefault(t.Window)
	borders := allBorders(n)
	for {
		scores := scoreBorders(d, sf, borders, n, w)
		mean, std := meanStd(scores)
		threshold := mean - t.c()*std
		var kept []int
		for i, b := range borders {
			if scores[i] >= threshold {
				kept = append(kept, b)
			}
		}
		if len(kept) == len(borders) || len(kept) == 0 {
			borders = kept
			break
		}
		borders = kept
	}
	return Segmentation{Borders: borders, N: n}
}

// StepbyStep visits borders left to right; a border is deleted when the
// segment accumulated on its left is less coherent than the document as a
// whole, otherwise it is kept and a new segment starts.
type StepbyStep struct {
	// Score evaluates coherence; Shannon{} when nil.
	Score ScoreFunc
}

// Name implements Strategy.
func (s StepbyStep) Name() string { return "StepbyStep" }

// Segment implements Strategy.
func (s StepbyStep) Segment(d *Doc) Segmentation {
	n := d.Len()
	if n <= 1 {
		return Segmentation{N: n}
	}
	sf := s.Score
	if sf == nil {
		sf = Shannon{}
	}
	docCoh := sf.SegCoherence(d, 0, n)
	var borders []int
	lo := 0
	for b := 1; b < n; b++ {
		if sf.SegCoherence(d, lo, b) < docCoh {
			continue // delete border: left segment not yet coherent enough
		}
		borders = append(borders, b)
		lo = b
	}
	return Segmentation{Borders: borders, N: n}
}

// Greedy removes one border per pass — the lowest-scoring one below a
// threshold — until none qualifies. To avoid being misled by a single
// communication mean, the paper's full mechanism runs one greedy pass per
// CM, marks the borders each pass would delete, and actually deletes those
// marked by a majority of the CMs. That voting variant is the default; set
// Plain to run a single pass on the combined score instead.
//
// Eq 4 averages two coherences with the border depth, so in a perfectly
// homogeneous document every border scores the same high value with zero
// depth and zero variance; a purely distribution-relative threshold would
// then keep them all. A border must therefore also exhibit at least
// MinDepth of Eq 3 depth to survive.
type Greedy struct {
	// Plain disables per-CM voting and uses the combined Shannon score.
	Plain bool
	// C scales the stddev in the threshold mean + C·stddev (over the
	// initial score distribution) that a border's score must stay above to
	// survive. -0.25 when zero (slightly below the mean).
	C float64
	// MinDepth is the minimum border depth (Eq 3) a border needs to
	// survive, and the signal threshold below which a communication mean
	// abstains from the vote. 0.06 when zero; set negative to disable.
	MinDepth float64
	// Quorum is how many of the per-CM greedy passes must mark a border
	// for it to be removed (voting mode only). 4 when 0 — a border
	// survives if at least two communication means defend it.
	Quorum int
	// Window caps the per-side scoring context, as in Tile. 1 when 0.
	Window int
}

// Name implements Strategy.
func (g Greedy) Name() string { return "Greedy" }

func (g Greedy) c() float64 {
	if g.C == 0 {
		return -0.25
	}
	return g.C
}

func (g Greedy) quorum() int {
	if g.Quorum <= 0 {
		return 4
	}
	return g.Quorum
}

func (g Greedy) minDepth() float64 {
	if g.MinDepth == 0 {
		return 0.06
	}
	if g.MinDepth < 0 {
		return 0
	}
	return g.MinDepth
}

// Segment implements Strategy.
func (g Greedy) Segment(d *Doc) Segmentation {
	n := d.Len()
	if n <= 1 {
		return Segmentation{N: n}
	}
	w := windowOrDefault(g.Window)
	if g.Plain {
		borders := g.run(d, n, w, func(lo, b, hi int) (float64, float64) {
			return shannonScoreDepth(d, lo, b, hi)
		})
		return Segmentation{Borders: borders, N: n}
	}
	// Voting: one greedy run per communication mean. A mean with no local
	// depth signal at a border (its distribution simply does not change
	// there) abstains rather than voting for removal — otherwise a border
	// carried by a single strong mean (e.g. a pure tense shift) would
	// always be outvoted by the indifferent means. Among the means that do
	// see a shift, the border is kept when the defenders are not
	// outnumbered; a border no mean defends is removed (and additionally a
	// border marked by Quorum means is removed regardless).
	minDepth := g.minDepth()
	defends := make(map[int]int)
	marks := make(map[int]int)
	for m := cm.Mean(0); m < cm.NumMeans; m++ {
		mean := m
		kept := g.run(d, n, w, func(lo, b, hi int) (float64, float64) {
			return meanScoreDepth(d, mean, lo, b, hi)
		})
		keptSet := make(map[int]bool, len(kept))
		for _, b := range kept {
			keptSet[b] = true
		}
		for b := 1; b < n; b++ {
			// Signal test on the finest-resolution window around b.
			lo, hi := clampWindow(0, b, n, w)
			_, depth := meanScoreDepth(d, mean, lo, b, hi)
			if depth < minDepth {
				continue // abstain: this mean sees no shift at b
			}
			if keptSet[b] {
				defends[b]++
			} else {
				marks[b]++
			}
		}
	}
	quorum := g.quorum()
	var borders []int
	for b := 1; b < n; b++ {
		if defends[b] == 0 {
			continue
		}
		if marks[b] >= quorum || marks[b] > defends[b] {
			continue
		}
		borders = append(borders, b)
	}
	return Segmentation{Borders: borders, N: n}
}

// run performs greedy border elimination under a (score, depth) function
// and returns the surviving borders. The acceptance threshold is frozen
// from the initial (finest-segmentation) score distribution — a moving
// threshold would chase its own mean and delete every border.
func (g Greedy) run(d *Doc, n, w int, score func(lo, b, hi int) (float64, float64)) []int {
	borders := allBorders(n)
	initial := make([]float64, len(borders))
	for i, b := range borders {
		lo, hi := neighborhood(borders, i, n)
		lo, hi = clampWindow(lo, b, hi, w)
		initial[i], _ = score(lo, b, hi)
	}
	mean, std := meanStd(initial)
	threshold := mean + g.c()*std
	minDepth := g.minDepth()
	for len(borders) > 0 {
		// Re-score each border in the context of the current segmentation.
		worst := -1
		var worstScore float64
		for i, b := range borders {
			lo, hi := neighborhood(borders, i, n)
			lo, hi = clampWindow(lo, b, hi, w)
			s, depth := score(lo, b, hi)
			if s >= threshold && depth >= minDepth {
				continue
			}
			// Rank removal candidates primarily by depth so homogeneous
			// borders (depth 0) fall first even when their Eq 4 score ties.
			rank := s + depth
			if worst < 0 || rank < worstScore {
				worst, worstScore = i, rank
			}
		}
		if worst < 0 {
			break
		}
		borders = append(borders[:worst], borders[worst+1:]...)
	}
	return borders
}

// shannonScoreDepth computes the Eq 4 border score together with the Eq 3
// depth under Shannon diversity. It goes through the copy-free annotation
// path — the border-elimination loops call it O(n²) times per document.
func shannonScoreDepth(d *Doc, lo, b, hi int) (score, depth float64) {
	var left, right cm.Annotation
	d.rangeInto(&left, lo, b)
	d.rangeInto(&right, b, hi)
	return cm.ShannonScoreBorder(&left, &right)
}

// meanScoreDepth computes the Eq 4 score and Eq 3 depth restricted to a
// single communication mean, as used by Greedy's voting passes.
func meanScoreDepth(d *Doc, m cm.Mean, lo, b, hi int) (score, depth float64) {
	var left, right, merged cm.Annotation
	d.rangeInto(&left, lo, b)
	d.rangeInto(&right, b, hi)
	left.AddInto(&right, &merged)
	cl := cm.ShannonCoherenceOfMean(&left, m)
	cr := cm.ShannonCoherenceOfMean(&right, m)
	cd := cm.ShannonCoherenceOfMean(&merged, m)
	depth = cm.Depth(cl, cr, cd)
	return cm.BorderScore(cl, cr, depth), depth
}

// TopDown recursively splits the document at the best-scoring internal
// border as long as splitting improves on keeping the segment whole. The
// paper discusses this approach and its weakness — comparing coherence
// across segments of very different lengths — which is why the bottom-up
// strategies are preferred; it is included for completeness and ablation.
type TopDown struct {
	// Score evaluates borders; Shannon{} when nil.
	Score ScoreFunc
	// MinGain is the minimum border score improvement over the unsplit
	// segment's coherence required to accept a split. 0.02 when zero.
	MinGain float64
}

// Name implements Strategy.
func (t TopDown) Name() string { return "TopDown" }

// Segment implements Strategy.
func (t TopDown) Segment(d *Doc) Segmentation {
	n := d.Len()
	if n <= 1 {
		return Segmentation{N: n}
	}
	sf := t.Score
	if sf == nil {
		sf = Shannon{}
	}
	gain := t.MinGain
	if gain == 0 {
		gain = 0.02
	}
	var borders []int
	var split func(lo, hi int)
	split = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		best, bestScore := -1, math.Inf(-1)
		for b := lo + 1; b < hi; b++ {
			if s := sf.BorderScore(d, lo, b, hi); s > bestScore {
				best, bestScore = b, s
			}
		}
		if best < 0 || bestScore < sf.SegCoherence(d, lo, hi)+gain {
			return
		}
		borders = append(borders, best)
		split(lo, best)
		split(best, hi)
	}
	split(0, n)
	return NewSegmentation(borders, n)
}

// allBorders returns every internal border position 1..n-1.
func allBorders(n int) []int {
	out := make([]int, 0, n-1)
	for b := 1; b < n; b++ {
		out = append(out, b)
	}
	return out
}

// neighborhood returns the segment boundaries around border i in the
// current border list: the previous border (or document start) and the next
// border (or document end).
func neighborhood(borders []int, i, n int) (lo, hi int) {
	lo, hi = 0, n
	if i > 0 {
		lo = borders[i-1]
	}
	if i+1 < len(borders) {
		hi = borders[i+1]
	}
	return lo, hi
}

// scoreBorders scores every border of the list in its current segmentation
// context, with per-side windows capped at w units (w == 0: uncapped).
func scoreBorders(d *Doc, sf ScoreFunc, borders []int, n, w int) []float64 {
	scores := make([]float64, len(borders))
	for i, b := range borders {
		lo, hi := neighborhood(borders, i, n)
		lo, hi = clampWindow(lo, b, hi, w)
		scores[i] = sf.BorderScore(d, lo, b, hi)
	}
	return scores
}

// windowOrDefault resolves the Window option: 0 means the default of 1,
// negative disables capping.
func windowOrDefault(w int) int {
	if w == 0 {
		return 1
	}
	if w < 0 {
		return 0
	}
	return w
}

// clampWindow restricts the scoring context of border b within segment
// bounds [lo, hi) to at most w units per side (w == 0: unrestricted).
func clampWindow(lo, b, hi, w int) (int, int) {
	if w > 0 {
		if b-w > lo {
			lo = b - w
		}
		if b+w < hi {
			hi = b + w
		}
	}
	return lo, hi
}

// meanStd returns the mean and population standard deviation of xs.
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}
