package segment

import "testing"

func TestStrategyNames(t *testing.T) {
	cases := map[string]Strategy{
		"Tile":       Tile{},
		"StepbyStep": StepbyStep{},
		"Greedy":     Greedy{},
		"TopDown":    TopDown{},
		"Sentences":  Sentences{},
		"TextTiling": TextTiling{},
	}
	for want, st := range cases {
		if got := st.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestOptionDefaults(t *testing.T) {
	if (Tile{}).c() != 1.1 || (Tile{C: 0.3}).c() != 0.3 {
		t.Error("Tile.C default wrong")
	}
	if (Greedy{}).c() != -0.25 || (Greedy{C: 0.5}).c() != 0.5 {
		t.Error("Greedy.C default wrong")
	}
	if (Greedy{}).quorum() != 4 || (Greedy{Quorum: 2}).quorum() != 2 {
		t.Error("Greedy.Quorum default wrong")
	}
	if (Greedy{}).minDepth() != 0.06 || (Greedy{MinDepth: 0.2}).minDepth() != 0.2 {
		t.Error("Greedy.MinDepth default wrong")
	}
	if (Greedy{MinDepth: -1}).minDepth() != 0 {
		t.Error("negative MinDepth should disable the floor")
	}
	if (TextTiling{}).blockSize() != 2 || (TextTiling{BlockSize: 5}).blockSize() != 5 {
		t.Error("TextTiling.BlockSize default wrong")
	}
	if (TextTiling{}).c() != 0.5 || (TextTiling{C: 2}).c() != 2 {
		t.Error("TextTiling.C default wrong")
	}
	if windowOrDefault(0) != 1 || windowOrDefault(-1) != 0 || windowOrDefault(3) != 3 {
		t.Error("windowOrDefault wrong")
	}
}

func TestClampWindow(t *testing.T) {
	// Unlimited window leaves bounds unchanged.
	if lo, hi := clampWindow(0, 5, 10, 0); lo != 0 || hi != 10 {
		t.Errorf("uncapped clamp = [%d,%d)", lo, hi)
	}
	// Window 2 restricts both sides.
	if lo, hi := clampWindow(0, 5, 10, 2); lo != 3 || hi != 7 {
		t.Errorf("capped clamp = [%d,%d), want [3,7)", lo, hi)
	}
	// Segment bounds tighter than the window win.
	if lo, hi := clampWindow(4, 5, 6, 3); lo != 4 || hi != 6 {
		t.Errorf("segment-bounded clamp = [%d,%d)", lo, hi)
	}
}

func TestDocTerms(t *testing.T) {
	d := NewDoc("The printers were printing pages. The hotel pool was warm.")
	all := d.Terms(0, d.Len())
	if len(all) == 0 {
		t.Fatal("no terms extracted")
	}
	first := d.Terms(0, 1)
	second := d.Terms(1, 2)
	if len(first)+len(second) != len(all) {
		t.Errorf("term ranges do not partition: %d + %d != %d", len(first), len(second), len(all))
	}
	// Terms are stemmed and stopword-filtered.
	for _, term := range all {
		switch term {
		case "the", "were", "was":
			t.Errorf("stopword %q survived", term)
		case "printers", "printing":
			t.Errorf("unstemmed term %q survived", term)
		}
	}
}

func TestCosineSimEdgeCases(t *testing.T) {
	a := map[int]float64{0: 1, 1: 2}
	if got := cosineSim(a, a); got < 0.999 || got > 1.001 {
		t.Errorf("self similarity = %v", got)
	}
	empty := map[int]float64{}
	if got := cosineSim(empty, empty); got != 1 {
		t.Errorf("two empty vectors similarity = %v, want 1", got)
	}
	if got := cosineSim(a, empty); got != 0 {
		t.Errorf("empty vs non-empty similarity = %v, want 0", got)
	}
	orth := map[int]float64{7: 3}
	if got := cosineSim(a, orth); got != 0 {
		t.Errorf("orthogonal similarity = %v, want 0", got)
	}
}

func TestSegmentationDeterminism(t *testing.T) {
	// Every strategy must produce identical borders across repeated runs on
	// the same Doc (no hidden randomness).
	d := NewDoc(threeIntentions)
	strategies := []Strategy{Tile{}, StepbyStep{}, Greedy{}, TopDown{}, TextTiling{}}
	for _, st := range strategies {
		first := st.Segment(d)
		for i := 0; i < 5; i++ {
			again := st.Segment(d)
			if len(again.Borders) != len(first.Borders) {
				t.Fatalf("%s nondeterministic", st.Name())
			}
			for j := range first.Borders {
				if again.Borders[j] != first.Borders[j] {
					t.Fatalf("%s nondeterministic", st.Name())
				}
			}
		}
	}
}
