package segment

import (
	"reflect"
	"testing"
	"testing/quick"
)

// docA is the motivating post of Fig. 1: context (present, first person),
// question (interrogative), past report, motive.
const docA = "I have an HP system with a RAID 0 controller and 4 disks in form " +
	"of a JBOD. I would like to install Hadoop with a replication 4 HDFS and " +
	"only 320GB of disk space used from every disc. Do you know whether it " +
	"would perform ok or whether the partial use of the disk would degrade " +
	"performance. Friends have downloaded the Cloudera distribution but it " +
	"didn't work. It stopped since the web site was suggesting to have 1TB " +
	"disks. I am asking because I do not want to install Linux to find that " +
	"my HW configuration is not right."

// threeIntentions is a post with three sharply different blocks: past
// narrative, interrogative request, present description.
const threeIntentions = "I installed the driver last week. I rebooted the machine twice. " +
	"I checked every cable in the office. " +
	"Do you know a better driver? Can you suggest a fix? Should I reformat the whole disk? " +
	"The printer is an HP model. It has a duplex unit. The tray holds paper."

func TestNewDoc(t *testing.T) {
	d := NewDoc(docA)
	if d.Len() != 6 {
		t.Fatalf("Doc A should have 6 sentence units, got %d", d.Len())
	}
	// Range must equal explicit merge.
	full := d.Range(0, d.Len())
	if full.Words == 0 {
		t.Fatal("full-range annotation has no words")
	}
	left := d.Range(0, 3)
	right := d.Range(3, 6)
	if got := left.Add(right); got != full {
		t.Error("Range(0,3)+Range(3,6) != Range(0,6)")
	}
}

func TestNewDocStripsHTML(t *testing.T) {
	d := NewDoc("<p>First sentence here.</p><p>Second sentence here.</p>")
	if d.Len() != 2 {
		t.Fatalf("expected 2 sentences after HTML stripping, got %d", d.Len())
	}
}

func TestSegmentationBasics(t *testing.T) {
	s := NewSegmentation([]int{3, 1, 3, 9, 0, -2}, 5)
	if !reflect.DeepEqual(s.Borders, []int{1, 3}) {
		t.Fatalf("normalized borders = %v", s.Borders)
	}
	if s.NumSegments() != 3 {
		t.Fatalf("NumSegments = %d, want 3", s.NumSegments())
	}
	want := [][2]int{{0, 1}, {1, 3}, {3, 5}}
	if !reflect.DeepEqual(s.Segments(), want) {
		t.Fatalf("Segments = %v, want %v", s.Segments(), want)
	}
}

func TestSegmentationEmpty(t *testing.T) {
	s := Segmentation{N: 0}
	if s.NumSegments() != 0 || s.Segments() != nil {
		t.Error("empty segmentation should have no segments")
	}
	s = Segmentation{N: 1}
	if s.NumSegments() != 1 {
		t.Error("single-unit doc is one segment")
	}
}

func TestSentencesStrategy(t *testing.T) {
	d := NewDoc(docA)
	s := Sentences{}.Segment(d)
	if s.NumSegments() != d.Len() {
		t.Fatalf("Sentences strategy: %d segments, want %d", s.NumSegments(), d.Len())
	}
}

func TestStrategiesProduceValidSegmentations(t *testing.T) {
	docs := []*Doc{
		NewDoc(docA),
		NewDoc(threeIntentions),
		NewDoc("Single sentence only."),
		NewDoc(""),
	}
	strategies := []Strategy{
		Tile{}, StepbyStep{}, Greedy{}, Greedy{Plain: true},
		TopDown{}, Sentences{}, TextTiling{},
	}
	for _, d := range docs {
		for _, st := range strategies {
			seg := st.Segment(d)
			if seg.N != d.Len() {
				t.Errorf("%s: N = %d, want %d", st.Name(), seg.N, d.Len())
			}
			prev := 0
			for _, b := range seg.Borders {
				if b <= prev || b >= d.Len() {
					t.Errorf("%s: invalid border %d (n=%d, prev=%d)", st.Name(), b, d.Len(), prev)
				}
				prev = b
			}
		}
	}
}

func TestGreedyFindsIntentionShift(t *testing.T) {
	d := NewDoc(threeIntentions)
	seg := Greedy{}.Segment(d)
	if seg.NumSegments() < 2 {
		t.Fatalf("Greedy found no intention shift in a three-intention post: %v", seg.Borders)
	}
	if seg.NumSegments() > 7 {
		t.Fatalf("Greedy over-segmented: %d segments from 9 sentences", seg.NumSegments())
	}
	// The strongest shift — narrative past → interrogative — is between
	// sentence 3 and 3 questions; a border at 3 or 4 should exist.
	found := false
	for _, b := range seg.Borders {
		if b >= 3 && b <= 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a border near the narrative→question shift, got %v", seg.Borders)
	}
}

func TestGreedyMergesHomogeneousText(t *testing.T) {
	homog := "I installed the driver. I rebooted the machine. I checked the cable. " +
		"I replaced the toner. I tested the printer. I updated the firmware."
	d := NewDoc(homog)
	seg := Greedy{}.Segment(d)
	if seg.NumSegments() > 2 {
		t.Errorf("Greedy kept %d segments in a single-intention post (borders %v)",
			seg.NumSegments(), seg.Borders)
	}
}

func TestMergingStrategiesBelowSentences(t *testing.T) {
	// Tile and Greedy merge; they must never exceed the finest
	// segmentation, and on multi-intention text they should merge at least
	// something.
	docs := []*Doc{NewDoc(docA), NewDoc(threeIntentions)}
	for _, d := range docs {
		maxB := d.Len() - 1
		tile := len(Tile{}.Segment(d).Borders)
		greedy := len(Greedy{}.Segment(d).Borders)
		if tile > maxB || greedy > maxB {
			t.Fatalf("strategy produced more borders than sentence gaps")
		}
		if tile == maxB && greedy == maxB {
			t.Errorf("neither Tile nor Greedy merged anything on %d-sentence doc", d.Len())
		}
	}
}

func TestStepbyStepOverSegments(t *testing.T) {
	// Fig 8(a): StepbyStep returns way more borders than the others.
	d := NewDoc(threeIntentions)
	sbs := len(StepbyStep{}.Segment(d).Borders)
	greedy := len(Greedy{}.Segment(d).Borders)
	if sbs < greedy {
		t.Errorf("StepbyStep %d borders < Greedy %d borders", sbs, greedy)
	}
}

func TestCharBorders(t *testing.T) {
	d := NewDoc(docA)
	seg := NewSegmentation([]int{2, 4}, d.Len())
	chars := seg.CharBorders(d.Sents)
	if len(chars) != 2 {
		t.Fatalf("CharBorders length = %d", len(chars))
	}
	for i, off := range chars {
		if off != d.Sents[seg.Borders[i]].Start {
			t.Errorf("char border %d = %d, want sentence start %d", i, off, d.Sents[seg.Borders[i]].Start)
		}
	}
}

func TestScoreFuncsWellBehaved(t *testing.T) {
	d := NewDoc(threeIntentions)
	n := d.Len()
	funcs := []ScoreFunc{
		Shannon{}, Richness{}, Cosine, Euclidean, Manhattan,
		Distance{Kind: cosineDist, OnTerms: true},
	}
	for _, f := range funcs {
		for b := 1; b < n; b++ {
			s := f.BorderScore(d, 0, b, n)
			if s < 0 || s > 2 {
				t.Errorf("%s: BorderScore(0,%d,%d) = %v out of range", f.Name(), b, n, s)
			}
		}
		coh := f.SegCoherence(d, 0, n)
		if coh < -1e-9 || coh > 1+1e-9 {
			t.Errorf("%s: SegCoherence = %v out of [0,1]", f.Name(), coh)
		}
		switch f.(type) {
		case Shannon, Richness:
			// Diversity-based coherence of a single unit may be below 1.
		default:
			if got := f.SegCoherence(d, 2, 3); got != 1 {
				t.Errorf("%s: single-unit coherence = %v, want 1", f.Name(), got)
			}
		}
	}
}

func TestDistanceNames(t *testing.T) {
	if Cosine.Name() != "Cos.Sim." || Euclidean.Name() != "Eucl.Dist." || Manhattan.Name() != "Manh.Dist." {
		t.Error("distance names mismatch with Fig 9 labels")
	}
	if (Distance{Kind: cosineDist, OnTerms: true}).Name() != "Cos.Sim.(terms)" {
		t.Error("terms variant name mismatch")
	}
	if (Shannon{}).Name() != "Shan.Div." || (Richness{}).Name() != "Richness" {
		t.Error("diversity names mismatch")
	}
}

func TestVectorDistanceProperties(t *testing.T) {
	f := func(av, bv [6]uint8) bool {
		a := map[int]float64{}
		b := map[int]float64{}
		for i := 0; i < 6; i++ {
			if av[i]%7 > 0 {
				a[i] = float64(av[i] % 7)
			}
			if bv[i]%7 > 0 {
				b[i] = float64(bv[i] % 7)
			}
		}
		for _, kind := range []distanceKind{cosineDist, euclideanDist, manhattanDist} {
			d := vectorDistance(kind, a, b)
			if d < -1e-9 || d > 1+1e-9 {
				return false
			}
			// Symmetry.
			if dd := vectorDistance(kind, b, a); dd-d > 1e-9 || d-dd > 1e-9 {
				return false
			}
			// Identity: distance to itself is 0.
			if self := vectorDistance(kind, a, a); self > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTextTilingSegmentsTopicShift(t *testing.T) {
	// Two topically distinct halves with cohesive vocabulary inside each.
	text := "The printer jams on every printed page. The printer toner leaks on the paper. " +
		"The paper tray of the printer sticks. The printer queue fills with paper errors. " +
		"The hotel room faced the hotel pool. The hotel breakfast had fresh fruit. " +
		"The pool of the hotel stayed warm. The hotel staff cleaned the room and pool."
	d := NewDoc(text)
	seg := TextTiling{}.Segment(d)
	found := false
	for _, b := range seg.Borders {
		if b == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("TextTiling missed the topic shift at sentence 4: borders %v", seg.Borders)
	}
}

func TestTopDownOnIntentionShift(t *testing.T) {
	d := NewDoc(threeIntentions)
	seg := TopDown{}.Segment(d)
	if seg.N != d.Len() {
		t.Fatalf("TopDown N mismatch")
	}
	// Should produce a plausible number of segments (not all-singletons).
	if seg.NumSegments() > 6 {
		t.Errorf("TopDown over-segmented: %d segments", seg.NumSegments())
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || std != 2 {
		t.Errorf("meanStd = %v, %v, want 5, 2", mean, std)
	}
	mean, std = meanStd(nil)
	if mean != 0 || std != 0 {
		t.Error("meanStd(nil) should be 0,0")
	}
}

func BenchmarkGreedySegment(b *testing.B) {
	d := NewDoc(threeIntentions)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Greedy{}.Segment(d)
	}
}

func BenchmarkNewDoc(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewDoc(docA)
	}
}

func TestFStatScoreFunc(t *testing.T) {
	d := NewDoc(threeIntentions)
	f := FStat{}
	if f.Name() != "F-stat" {
		t.Error("name mismatch")
	}
	// Border between narrative and questions (position 3) should outscore a
	// border inside the narrative (position 1).
	inside := f.BorderScore(d, 0, 1, 3)
	shift := f.BorderScore(d, 0, 3, 6)
	if shift <= inside {
		t.Errorf("F-stat at intention shift %.3f should exceed within-intention %.3f", shift, inside)
	}
	for b := 1; b < d.Len(); b++ {
		s := f.BorderScore(d, 0, b, d.Len())
		if s < 0 || s >= 1 {
			t.Errorf("F-stat score %v out of [0,1)", s)
		}
	}
	if got := f.SegCoherence(d, 2, 3); got != 1 {
		t.Errorf("single-unit coherence = %v, want 1", got)
	}
	coh := f.SegCoherence(d, 0, d.Len())
	if coh <= 0 || coh > 1 {
		t.Errorf("segment coherence %v out of (0,1]", coh)
	}
	// Degenerate groups.
	if got := f.BorderScore(d, 0, 1, 2); got != 0 {
		t.Errorf("two-unit F-stat should be 0 (insufficient df), got %v", got)
	}
}

func TestTileWithFStat(t *testing.T) {
	d := NewDoc(threeIntentions)
	seg := Tile{Score: FStat{}}.Segment(d)
	if seg.N != d.Len() {
		t.Fatal("bad segmentation")
	}
	if seg.NumSegments() < 2 {
		t.Error("F-stat Tile found no borders in three-intention text")
	}
}
