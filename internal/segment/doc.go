// Package segment implements the intention-based post segmentation of
// Sec 5 of the paper. A document is a sequence of sentence text units; a
// segmentation is a set of borders between them. The package provides the
// three bottom-up border-selection strategies of Sec 5.3 (Tile, StepbyStep,
// Greedy), a top-down splitter, the trivial per-sentence segmentation, and
// Hearst's term-based TextTiling as the topical baseline, all behind a
// common Strategy interface with pluggable border scoring functions
// (Shannon diversity, richness, and the cosine/Euclidean/Manhattan distance
// variants compared in Fig 9).
package segment

import (
	"sort"

	"repro/internal/cm"
	"repro/internal/textproc"
)

// Doc is a document prepared for segmentation: its sentence units, their
// communication-means annotations, and a prefix-sum table that answers
// "annotation of sentences [lo,hi)" in constant time. Doc is immutable
// after construction and safe for concurrent use.
type Doc struct {
	Text    string
	Sents   []textproc.Sentence
	Anns    []cm.Annotation
	prefix  []cm.Annotation // prefix[i] = sum of Anns[0:i]
	terms   [][]string      // stemmed content terms per sentence
	termIDs map[string]int  // Doc-wide term interning for TF vectors
}

// NewDoc prepares raw post text for segmentation: HTML is stripped, the
// text is split into sentence units, and every sentence is annotated.
func NewDoc(text string) *Doc {
	clean := textproc.StripHTML(text)
	return NewDocFromSentences(clean, textproc.SplitSentences(clean))
}

// NewDocFromSentences builds a Doc from pre-split sentences. The text must
// be the string the sentence offsets refer to.
func NewDocFromSentences(text string, sents []textproc.Sentence) *Doc {
	d := &Doc{
		Text:  text,
		Sents: sents,
		Anns:  cm.AnnotateAll(sents),
	}
	d.prefix = make([]cm.Annotation, len(sents)+1)
	for i, a := range d.Anns {
		d.prefix[i+1] = d.prefix[i].Add(a)
	}
	d.terms = make([][]string, len(sents))
	d.termIDs = make(map[string]int)
	for i, s := range sents {
		d.terms[i] = textproc.StemAll(filterStopwords(s.Words()))
		for _, t := range d.terms[i] {
			if _, ok := d.termIDs[t]; !ok {
				d.termIDs[t] = len(d.termIDs)
			}
		}
	}
	return d
}

// termID returns the Doc-wide integer id of a term known to the Doc.
func (d *Doc) termID(t string) int { return d.termIDs[t] }

func filterStopwords(words []string) []string {
	out := words[:0]
	for _, w := range words {
		if !textproc.IsStopword(w) {
			out = append(out, w)
		}
	}
	return out
}

// Len returns the number of sentence units.
func (d *Doc) Len() int { return len(d.Sents) }

// Range returns the merged annotation of sentence units [lo, hi).
func (d *Doc) Range(lo, hi int) cm.Annotation {
	return d.prefix[hi].Sub(d.prefix[lo])
}

// rangeInto stores the merged annotation of sentence units [lo, hi) into
// out — the copy-free form of Range the border-scoring loops use (Range
// moves three ~240-byte Annotation values per call).
func (d *Doc) rangeInto(out *cm.Annotation, lo, hi int) {
	d.prefix[hi].SubInto(&d.prefix[lo], out)
}

// Terms returns the stemmed, stopword-filtered content terms of sentence
// units [lo, hi) in a freshly allocated slice of exact capacity.
func (d *Doc) Terms(lo, hi int) []string {
	return d.AppendTerms(make([]string, 0, d.TermCount(lo, hi)), lo, hi)
}

// TermCount returns the number of content terms in sentence units
// [lo, hi) — the capacity Terms/AppendTerms will fill — without
// materializing them.
func (d *Doc) TermCount(lo, hi int) int {
	n := 0
	for i := lo; i < hi; i++ {
		n += len(d.terms[i])
	}
	return n
}

// AppendTerms appends the content terms of sentence units [lo, hi) to dst
// and returns the extended slice. It lets callers that merge several
// segments size one buffer up front (see TermCount) instead of growing
// through repeated copies.
func (d *Doc) AppendTerms(dst []string, lo, hi int) []string {
	for i := lo; i < hi; i++ {
		dst = append(dst, d.terms[i]...)
	}
	return dst
}

// Segmentation is a division of a Doc into consecutive segments
// (Definition 1). Borders holds the sentence indices at which new segments
// begin, strictly increasing within (0, N); N is the number of sentence
// units. The zero Borders slice is the undivided document.
type Segmentation struct {
	Borders []int
	N       int
}

// NewSegmentation normalizes a border set: out-of-range and duplicate
// positions are dropped and the rest sorted.
func NewSegmentation(borders []int, n int) Segmentation {
	seen := make(map[int]bool, len(borders))
	out := make([]int, 0, len(borders))
	for _, b := range borders {
		if b > 0 && b < n && !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	sort.Ints(out)
	return Segmentation{Borders: out, N: n}
}

// NumSegments returns the cardinality |S^d| of the segmentation.
func (s Segmentation) NumSegments() int {
	if s.N == 0 {
		return 0
	}
	return len(s.Borders) + 1
}

// Segments returns the half-open sentence ranges [lo, hi) of each segment.
func (s Segmentation) Segments() [][2]int {
	if s.N == 0 {
		return nil
	}
	out := make([][2]int, 0, len(s.Borders)+1)
	lo := 0
	for _, b := range s.Borders {
		out = append(out, [2]int{lo, b})
		lo = b
	}
	return append(out, [2]int{lo, s.N})
}

// CharBorders translates the sentence-index borders into byte offsets in
// the document text (the start offset of the first sentence of each new
// segment). These offsets are what the human-agreement and WinDiff metrics
// operate on.
func (s Segmentation) CharBorders(sents []textproc.Sentence) []int {
	out := make([]int, len(s.Borders))
	for i, b := range s.Borders {
		out[i] = sents[b].Start
	}
	return out
}

// Strategy selects the borders of an intention-based segmentation.
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Segment divides the document.
	Segment(d *Doc) Segmentation
}

// Sentences is the trivial strategy that makes every sentence its own
// segment. It is the segmentation used by the SentIntent-MR baseline
// (Sec 9.2), which skips border selection entirely.
type Sentences struct{}

// Name implements Strategy.
func (Sentences) Name() string { return "Sentences" }

// Segment implements Strategy.
func (Sentences) Segment(d *Doc) Segmentation {
	n := d.Len()
	borders := make([]int, 0, max(0, n-1))
	for b := 1; b < n; b++ {
		borders = append(borders, b)
	}
	return Segmentation{Borders: borders, N: n}
}
