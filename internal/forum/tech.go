package forum

// techSpec mirrors the HP product-support forum: Fig 7's tech-support
// intention categories, realized with the grammar signatures the paper's
// method detects — present/first-person context, negative/third-person
// problem statements, past/first-person effort reports, interrogative
// requests, and first-person feelings.
var techSpec = domainSpec{
	name: "TechSupport",
	flow: []string{
		"environment description", "reason for posting", "problem statement",
		"symptoms", "previous efforts", "REQUEST", "feelings",
	},
	optional: map[string]float64{
		"reason for posting": 0.35,
		"symptoms":           0.6,
		"previous efforts":   0.7,
		"feelings":           0.3,
	},
	requestLabel: "help request",
	specs: map[string]intentionSpec{
		"environment description": {
			label: "environment description",
			templates: []string{
				"I have a {brand} {device} with a {component} and {spec}.",
				"My {device} is a {brand} model with {spec}.",
				"I am running {os} on a {brand} {device}.",
				"The {device} in my office uses a {component} and {spec}.",
				"We use a {brand} {device} with {spec} at work.",
				"My setup includes a {device} connected to a {peripheral}.",
				"The {device} used to handle {crossterm} without any drama.",
				"The machine is a {brand} {device} that my {person} gave me.",
			},
		},
		"reason for posting": {
			label: "reason for posting",
			templates: []string{
				"I am asking because I need the {device} for my daily work.",
				"I am posting here because the {brand} site shows nothing about it.",
				"I am writing this because the deadline for my {task} is close.",
				"I am asking since I do not want to break the {component}.",
			},
		},
		"problem statement": {
			label: "problem statement",
			templates: []string{
				"The {device} does not {function} anymore.",
				"It stopped {function}ing after the last {event}.",
				"The {component} no longer responds to anything.",
				"The {device} never finishes the {task} without an error.",
				"It refuses to {function} since the {event}.",
				"The {component} fails every time the {device} starts the {task}.",
				"The {device} still struggles with {crossterm}.",
			},
		},
		"symptoms": {
			label: "symptoms",
			templates: []string{
				"The {indicator} blinks twice and then goes dark.",
				"It shows a {error} after about fifteen minutes of activity.",
				"The {device} becomes very hot near the {component}.",
				"A loud noise comes from the {component} during the {task}.",
				"The screen displays the {error} right before it dies.",
				"The {indicator} stays orange while the {task} runs.",
			},
		},
		"previous efforts": {
			label: "previous efforts",
			templates: []string{
				"I reinstalled the {software} twice.",
				"I replaced the {component} with a new one last week.",
				"I called the technical department but no luck.",
				"I tried a different {peripheral} and got the same {error}.",
				"I downloaded the latest {software} from the {brand} site.",
				"I cleaned the {component} and restarted the {device}.",
				"My {person} checked the {component} yesterday and found nothing.",
				"I searched the forum for the {error} but found nothing useful.",
				"I read a long thread about {crossterm} but it did not help.",
				"A colleague suggested {crossterm} but I was not convinced.",
			},
		},
		"feelings": {
			label: "feelings",
			templates: []string{
				"I am really frustrated with this {device}.",
				"This whole situation makes me quite nervous.",
				"I am honestly disappointed because the {device} is almost new.",
				"It frustrates me that the {brand} support cannot say what is wrong.",
			},
		},
	},
	slots: map[string][]string{
		"brand":  {"HP", "Pavilion", "EliteBook", "ProBook", "Envy", "Omen"},
		"person": {"boss", "colleague", "friend", "brother", "neighbor"},
		"event":  {"update", "power outage", "move", "firmware upgrade", "reboot"},
		"os":     {"Linux", "Windows", "Ubuntu", "Fedora"},
	},
	topics: []topic{
		{
			name: "raid storage",
			slots: map[string][]string{
				"crossterm":  {"degraded performance under load", "adding an extra drive", "a full reformat and rebuild", "recovering lost data"},
				"device":     {"storage server", "workstation", "desktop"},
				"component":  {"RAID 0 controller", "RAID 1 array", "JBOD enclosure", "disk backplane"},
				"spec":       {"four 320GB disks", "a 1TB drive", "replication 4 HDFS", "two mirrored drives"},
				"peripheral": {"SATA cable", "drive caddy", "external dock"},
				"software":   {"RAID driver", "Cloudera distribution", "disk utility", "Hadoop stack"},
				"function":   {"rebuild", "sync", "mount"},
				"task":       {"array rebuild", "disk format", "volume sync"},
				"indicator":  {"drive light", "array LED"},
				"error":      {"degraded array warning", "disk failure code", "S.M.A.R.T. alert"},
			},
			variants: [][]string{
				{
					"Do you know whether the partial use of the disks would degrade performance?",
					"Would a replication 4 setup perform ok on these {spec}?",
					"Is the {component} fast enough for a {task} under load?",
				},
				{
					"Can I add an extra drive using RAID without rebuilding the entire system?",
					"Does adding drives to the {component} require a reformat of everything?",
					"Is there a way to extend the {component} while keeping my data?",
				},
				{
					"How can I recover the data after the {error} appeared?",
					"Do you know a way to bring the {component} back after the {error}?",
					"What should I try first to repair the {component}?",
				},
			},
		},
		{
			name: "printer trouble",
			slots: map[string][]string{
				"crossterm":  {"constant paper jams", "third party cartridges", "wireless printing setup"},
				"device":     {"printer", "LaserJet", "OfficeJet", "all-in-one printer"},
				"component":  {"toner cartridge", "paper tray", "duplex unit", "print head"},
				"spec":       {"a duplex unit", "wireless printing", "a 250 sheet tray"},
				"peripheral": {"USB cable", "print server", "paper stack"},
				"software":   {"printer driver", "print spooler", "firmware package"},
				"function":   {"print", "scan", "feed paper"},
				"task":       {"print job", "duplex print", "scan batch"},
				"indicator":  {"ink light", "status LED"},
				"error":      {"paper jam message", "ink system failure", "spooler error"},
			},
			variants: [][]string{
				{
					"Do you know why the {device} jams on every {task}?",
					"How do I stop the {error} from coming back?",
					"What causes the {component} to fail so often?",
				},
				{
					"Can you suggest a {component} that works with this {device}?",
					"Is a third party {component} safe to use here?",
					"Which {component} should I buy as a replacement?",
				},
				{
					"How can I share the {device} with every computer in the office?",
					"Can the {device} print from a phone over the network?",
					"Is there a way to set the {device} up for wireless printing?",
				},
			},
		},
		{
			name: "laptop overheating",
			slots: map[string][]string{
				"crossterm":  {"sudden thermal shutdowns", "cooling pads", "replacing the fan myself"},
				"device":     {"laptop", "notebook", "Pavilion laptop"},
				"component":  {"cooling fan", "heat sink", "battery", "CPU"},
				"spec":       {"an eight core CPU", "16GB of memory", "a thin chassis"},
				"peripheral": {"cooling pad", "docking station", "charger"},
				"software":   {"fan control utility", "BIOS update", "thermal monitor"},
				"function":   {"cool down", "stay on", "charge"},
				"task":       {"video call", "compile run", "gaming session"},
				"indicator":  {"fan", "charge light"},
				"error":      {"thermal shutdown warning", "battery alert"},
			},
			variants: [][]string{
				{
					"Why does the {device} shut down after fifteen minutes of activity?",
					"Do you know what makes the {component} spin at full speed all the time?",
					"What should I check first when the {device} overheats?",
				},
				{
					"Would moving the {device} to a cooler place solve it?",
					"Can a {peripheral} keep the temperature under control?",
					"Is it safe to keep using the {device} this hot?",
				},
				{
					"Should I replace the {component} myself or pay the service?",
					"How hard is it to swap the {component} on this model?",
					"Can you recommend a {component} replacement guide?",
				},
			},
		},
		{
			name: "wifi connectivity",
			slots: map[string][]string{
				"crossterm":  {"hourly connection drops", "range improvements upstairs", "static address setups"},
				"device":     {"laptop", "desktop", "tablet"},
				"component":  {"wireless card", "antenna", "router"},
				"spec":       {"a dual band card", "the latest firmware"},
				"peripheral": {"USB adapter", "ethernet cable", "access point"},
				"software":   {"network driver", "router firmware", "network manager"},
				"function":   {"connect", "hold the signal", "reach the network"},
				"task":       {"video stream", "large download", "backup"},
				"indicator":  {"wifi icon", "router light"},
				"error":      {"limited connectivity message", "authentication error", "DNS failure"},
			},
			variants: [][]string{
				{
					"Why does the {component} drop the connection every hour?",
					"Do you know what causes the {error} on this network?",
					"What makes the signal die during a {task}?",
				},
				{
					"Can a {peripheral} give me a more stable link?",
					"Would a new {component} improve the range upstairs?",
					"Which {component} works best with {os}?",
				},
				{
					"How do I set a static address on the {component}?",
					"Can you explain how to bridge the {component} and the router?",
					"Is there a way to prioritize the {task} traffic?",
				},
			},
		},
		{
			name: "boot failure",
			slots: map[string][]string{
				"crossterm":  {"morning boot stops", "bootloader repairs", "clean installs"},
				"device":     {"desktop", "tower", "workstation"},
				"component":  {"hard drive", "boot sector", "power supply", "motherboard"},
				"spec":       {"dual boot disks", "a new SSD"},
				"peripheral": {"recovery USB", "install disc"},
				"software":   {"bootloader", "BIOS", "recovery image"},
				"function":   {"boot", "start", "load the system"},
				"task":       {"startup", "system restore"},
				"indicator":  {"power light", "beep code"},
				"error":      {"no bootable device message", "blue screen", "grub rescue prompt"},
			},
			variants: [][]string{
				{
					"Why does the {device} stop at the {error} every morning?",
					"Do you know what the {indicator} pattern means at {task}?",
					"What should I read from the {error} screen?",
				},
				{
					"Can I repair the {component} from a {peripheral}?",
					"How do I rebuild the {software} without losing files?",
					"Is there a safe way to restore the {component}?",
				},
				{
					"Would installing {os} fresh fix the {task} problem for good?",
					"Should I replace the {component} before reinstalling {os}?",
					"Is a clean install better than a repair here?",
				},
			},
		},
		{
			name: "display issues",
			slots: map[string][]string{
				"crossterm":  {"playback flicker", "cable and adapter swaps", "panel calibration"},
				"device":     {"monitor", "display", "screen"},
				"component":  {"graphics card", "display cable", "panel", "backlight"},
				"spec":       {"a 4K panel", "dual monitors"},
				"peripheral": {"HDMI cable", "DisplayPort adapter"},
				"software":   {"graphics driver", "color profile"},
				"function":   {"display anything", "wake up", "keep the image"},
				"task":       {"video playback", "external presentation"},
				"indicator":  {"power LED", "signal light"},
				"error":      {"no signal message", "flickering band", "dead pixel patch"},
			},
			variants: [][]string{
				{
					"Why does the {device} flicker during {task}?",
					"Do you know what causes the {error} on wake?",
					"What makes the {component} lose signal randomly?",
				},
				{
					"Can a different {peripheral} remove the {error}?",
					"Would a new {component} fix the flicker for good?",
					"Which {peripheral} should I use for {spec}?",
				},
				{
					"How do I calibrate the {device} under {os}?",
					"Can you explain how to set {spec} correctly?",
					"Is there a tool to test the {component} health?",
				},
			},
		},
	},
}
