package forum

import (
	"strings"
	"testing"

	"repro/internal/textproc"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Domain: TechSupport, NumPosts: 20, Seed: 1})
	b := Generate(Config{Domain: TechSupport, NumPosts: 20, Seed: 1})
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Fatalf("post %d differs across identical runs", i)
		}
	}
	c := Generate(Config{Domain: TechSupport, NumPosts: 20, Seed: 2})
	same := 0
	for i := range a {
		if a[i].Text == c[i].Text {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGeneratePostStreamingMatchesBatch(t *testing.T) {
	batch := Generate(Config{Domain: Travel, NumPosts: 5, Seed: 9})
	for i := range batch {
		single := GeneratePost(Travel, i, 9)
		if single.Text != batch[i].Text {
			t.Fatalf("GeneratePost(%d) differs from Generate batch", i)
		}
	}
}

func TestAllDomainsGenerateValidPosts(t *testing.T) {
	for _, d := range []Domain{TechSupport, Travel, Programming, Health} {
		posts := Generate(Config{Domain: d, NumPosts: 60, Seed: 3})
		for _, p := range posts {
			if p.Text == "" {
				t.Fatalf("%v post %d empty", d, p.ID)
			}
			if len(p.Segments) == 0 {
				t.Fatalf("%v post %d has no segments", d, p.ID)
			}
			if strings.ContainsAny(p.Text, "{}") {
				t.Fatalf("%v post %d has unresolved slots: %q", d, p.ID, p.Text)
			}
			// Segment offsets must tile the text in order.
			for i, s := range p.Segments {
				if s.Start < 0 || s.End > len(p.Text) || s.Start >= s.End {
					t.Fatalf("%v post %d segment %d bad offsets [%d,%d)", d, p.ID, i, s.Start, s.End)
				}
				if i > 0 && s.Start <= p.Segments[i-1].End-1 {
					t.Fatalf("%v post %d segments overlap", d, p.ID)
				}
				if s.NumSents < 1 {
					t.Fatalf("%v post %d segment %d empty", d, p.ID, i)
				}
			}
			if p.Topic < 0 || p.Topic >= NumTopics(d) {
				t.Fatalf("topic out of range")
			}
			if p.Variant < 0 || p.Variant >= NumVariants(d, p.Topic) {
				t.Fatalf("variant out of range")
			}
		}
	}
}

func TestSegmentsMatchSentenceSplitter(t *testing.T) {
	// The gold FirstSent/NumSents bookkeeping must agree with what the
	// sentence splitter actually produces on the generated text.
	for _, d := range []Domain{TechSupport, Travel, Programming, Health} {
		posts := Generate(Config{Domain: d, NumPosts: 40, Seed: 11})
		for _, p := range posts {
			sents := textproc.SplitSentences(p.Text)
			if len(sents) != p.NumSentences() {
				t.Fatalf("%v post %d: splitter found %d sentences, gold says %d\ntext: %q",
					d, p.ID, len(sents), p.NumSentences(), p.Text)
			}
			for _, b := range p.GoldSentenceBorders() {
				if b <= 0 || b >= len(sents) {
					t.Fatalf("%v post %d: gold sentence border %d out of range", d, p.ID, b)
				}
			}
			// Gold char borders must land exactly on sentence starts.
			for i, cb := range p.GoldBorders() {
				sb := p.GoldSentenceBorders()[i]
				if sents[sb].Start != cb {
					t.Fatalf("%v post %d: char border %d != sentence %d start %d",
						d, p.ID, cb, sb, sents[sb].Start)
				}
			}
		}
	}
}

func TestIntentionDiversityAcrossCorpus(t *testing.T) {
	posts := Generate(Config{Domain: TechSupport, NumPosts: 200, Seed: 5})
	labels := map[string]int{}
	multi := 0
	for _, p := range posts {
		if len(p.Segments) > 1 {
			multi++
		}
		for _, s := range p.Segments {
			labels[s.Intention]++
		}
	}
	want := Intentions(TechSupport)
	for _, l := range want {
		if labels[l] == 0 {
			t.Errorf("intention %q never generated", l)
		}
	}
	if frac := float64(multi) / float64(len(posts)); frac < 0.8 {
		t.Errorf("only %.2f of posts are multi-segment", frac)
	}
}

func TestScenarioDistribution(t *testing.T) {
	posts := Generate(Config{Domain: Travel, NumPosts: 400, Seed: 6})
	counts := map[Scenario]int{}
	for _, p := range posts {
		counts[p.Scenario()]++
	}
	// Every scenario should be populated with several posts so top-5
	// retrieval has relevant documents to find.
	if len(counts) < 10 {
		t.Fatalf("only %d scenarios populated", len(counts))
	}
	for s, c := range counts {
		if c < 3 {
			t.Errorf("scenario %+v has only %d posts", s, c)
		}
	}
}

func TestRelatedSemantics(t *testing.T) {
	a := Post{ID: 1, Domain: TechSupport, Topic: 2, Variant: 1}
	b := Post{ID: 2, Domain: TechSupport, Topic: 2, Variant: 1}
	c := Post{ID: 3, Domain: TechSupport, Topic: 2, Variant: 0} // same topic, different need
	d := Post{ID: 4, Domain: Travel, Topic: 2, Variant: 1}
	if !Related(a, b) {
		t.Error("same scenario should be related")
	}
	if Related(a, c) {
		t.Error("same topic but different variant must NOT be related (Doc A vs Doc B)")
	}
	if Related(a, d) {
		t.Error("different domains are unrelated")
	}
	if Related(a, a) {
		t.Error("a post is not related to itself")
	}
}

func TestRelevantSet(t *testing.T) {
	posts := Generate(Config{Domain: TechSupport, NumPosts: 300, Seed: 7})
	q := posts[0]
	rel := RelevantSet(posts, q)
	if len(rel) == 0 {
		t.Fatal("query post has no relevant documents in a 300-post corpus")
	}
	if rel[q.ID] {
		t.Error("query must not be relevant to itself")
	}
	for id := range rel {
		if !Related(q, posts[id]) {
			t.Errorf("post %d in relevant set but not related", id)
		}
	}
}

func TestVocabularyOverlapWithinTopic(t *testing.T) {
	// Posts of the same topic must share vocabulary heavily even across
	// variants — the confusability that defeats whole-post matching.
	posts := Generate(Config{Domain: TechSupport, NumPosts: 300, Seed: 8})
	byTopicVariant := map[[2]int][]Post{}
	for _, p := range posts {
		key := [2]int{p.Topic, p.Variant}
		byTopicVariant[key] = append(byTopicVariant[key], p)
	}
	var sameTopic, crossTopic []float64
	for _, p := range posts[:40] {
		for _, q := range posts[40:80] {
			ov := overlap(p.Text, q.Text)
			if p.Topic == q.Topic {
				sameTopic = append(sameTopic, ov)
			} else {
				crossTopic = append(crossTopic, ov)
			}
		}
	}
	if len(sameTopic) == 0 || len(crossTopic) == 0 {
		t.Skip("sample too small for both groups")
	}
	if mean(sameTopic) <= mean(crossTopic) {
		t.Errorf("same-topic vocabulary overlap %.3f should exceed cross-topic %.3f",
			mean(sameTopic), mean(crossTopic))
	}
}

func overlap(a, b string) float64 {
	aw := map[string]bool{}
	for _, w := range textproc.ContentWords(a) {
		aw[w] = true
	}
	if len(aw) == 0 {
		return 0
	}
	shared := 0
	bw := map[string]bool{}
	for _, w := range textproc.ContentWords(b) {
		if aw[w] && !bw[w] {
			shared++
		}
		bw[w] = true
	}
	return float64(shared) / float64(len(aw))
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestSimulateAnnotations(t *testing.T) {
	posts := Generate(Config{Domain: TechSupport, NumPosts: 30, Seed: 9})
	cfg := AnnotatorConfig{NumAnnotators: 10, Seed: 1}
	for _, p := range posts {
		ann := Simulate(p, cfg)
		if len(ann.CharBorders) != 10 || len(ann.SentenceBorders) != 10 {
			t.Fatalf("wrong annotator count")
		}
		nSents := p.NumSentences()
		for a := range ann.SentenceBorders {
			prev := 0
			for _, sb := range ann.SentenceBorders[a] {
				if sb <= 0 || sb >= nSents {
					t.Fatalf("sentence border %d out of range (n=%d)", sb, nSents)
				}
				if sb <= prev && prev != 0 {
					t.Fatalf("sentence borders not increasing")
				}
				prev = sb
			}
			for _, cb := range ann.CharBorders[a] {
				if cb < 0 || cb > len(p.Text) {
					t.Fatalf("char border %d out of text range", cb)
				}
			}
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	p := GeneratePost(Travel, 3, 5)
	cfg := AnnotatorConfig{NumAnnotators: 5, Seed: 77}
	a := Simulate(p, cfg)
	b := Simulate(p, cfg)
	for i := range a.CharBorders {
		if len(a.CharBorders[i]) != len(b.CharBorders[i]) {
			t.Fatal("simulation not deterministic")
		}
		for j := range a.CharBorders[i] {
			if a.CharBorders[i][j] != b.CharBorders[i][j] {
				t.Fatal("simulation not deterministic")
			}
		}
	}
}

func TestMeanSegmentsPerAnnotation(t *testing.T) {
	posts := Generate(Config{Domain: TechSupport, NumPosts: 100, Seed: 10})
	var total float64
	for _, p := range posts {
		ann := Simulate(p, AnnotatorConfig{NumAnnotators: 8, Seed: 2})
		total += ann.MeanSegmentsPerAnnotation()
	}
	avg := total / float64(len(posts))
	// The paper's annotators found 4.2 segments per HP post on average; the
	// simulation should land in a comparable band.
	if avg < 2.5 || avg > 6.5 {
		t.Errorf("mean segments per annotation = %.2f, want within [2.5, 6.5]", avg)
	}
	var empty Annotations
	if empty.MeanSegmentsPerAnnotation() != 0 {
		t.Error("empty annotations should average 0")
	}
}

func TestIntentionsAndDomainString(t *testing.T) {
	if TechSupport.String() != "TechSupport" || Travel.String() != "Travel" || Programming.String() != "Programming" {
		t.Error("Domain.String mismatch")
	}
	ints := Intentions(TechSupport)
	if len(ints) < 5 {
		t.Errorf("TechSupport has %d intentions, want >= 5", len(ints))
	}
	found := false
	for _, l := range ints {
		if l == "help request" {
			found = true
		}
	}
	if !found {
		t.Error("REQUEST placeholder not resolved to 'help request'")
	}
}

func BenchmarkGeneratePost(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GeneratePost(TechSupport, i, 1)
	}
}
