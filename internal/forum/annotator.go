package forum

import (
	"math/rand"
	"sort"

	"repro/internal/textproc"
)

// AnnotatorConfig parameterizes the simulated human segmentation study
// standing in for the paper's 30 annotators (Sec 9.1). Each simulated
// annotator starts from the generator's true borders and perturbs them:
// borders are missed with MissRate, surviving borders jitter by up to
// ±JitterChars characters, and spurious borders appear at non-gold sentence
// boundaries with AddRate. The defaults are calibrated so pooled observed
// agreement lands in the paper's 64–83% band (Table 2).
type AnnotatorConfig struct {
	NumAnnotators int     // 30 in the paper's study; 0 → 30
	JitterChars   int     // max ± jitter per border; 0 → 15
	MissRate      float64 // probability a gold border is dropped; 0 → 0.15
	AddRate       float64 // probability per non-gold boundary of a spurious border; 0 → 0.05
	Seed          int64
}

func (c AnnotatorConfig) withDefaults() AnnotatorConfig {
	if c.NumAnnotators <= 0 {
		c.NumAnnotators = 30
	}
	if c.JitterChars == 0 {
		c.JitterChars = 15
	}
	if c.MissRate == 0 {
		c.MissRate = 0.15
	}
	if c.AddRate == 0 {
		c.AddRate = 0.05
	}
	return c
}

// Annotations bundles one post's simulated study output.
type Annotations struct {
	// CharBorders[a] is annotator a's border character offsets, sorted.
	CharBorders [][]int
	// SentenceBorders[a] is the same borders as sentence indices.
	SentenceBorders [][]int
	// SentenceStarts[i] is the char offset of sentence i — the candidate
	// border positions for agreement computation.
	SentenceStarts []int
}

// Simulate runs the annotator pool over one post.
func Simulate(p Post, cfg AnnotatorConfig) Annotations {
	cfg = cfg.withDefaults()
	sents := textproc.SplitSentences(p.Text)
	starts := make([]int, len(sents))
	for i, s := range sents {
		starts[i] = s.Start
	}
	goldSents := map[int]bool{}
	for _, b := range p.GoldSentenceBorders() {
		goldSents[b] = true
	}

	ann := Annotations{SentenceStarts: starts}
	for a := 0; a < cfg.NumAnnotators; a++ {
		rng := rand.New(rand.NewSource(cfg.Seed*7_368_787 + int64(p.ID)*613 + int64(a)))
		var sentBorders []int
		for s := 1; s < len(sents); s++ {
			if goldSents[s] {
				if rng.Float64() >= cfg.MissRate {
					sentBorders = append(sentBorders, s)
				}
			} else if rng.Float64() < cfg.AddRate {
				sentBorders = append(sentBorders, s)
			}
		}
		charBorders := make([]int, len(sentBorders))
		for i, s := range sentBorders {
			jitter := rng.Intn(2*cfg.JitterChars+1) - cfg.JitterChars
			off := starts[s] + jitter
			if off < 0 {
				off = 0
			}
			if off > len(p.Text) {
				off = len(p.Text)
			}
			charBorders[i] = off
		}
		sort.Ints(charBorders)
		ann.CharBorders = append(ann.CharBorders, charBorders)
		ann.SentenceBorders = append(ann.SentenceBorders, sentBorders)
	}
	return ann
}

// MeanSegmentsPerAnnotation returns the average segment count implied by
// the simulated annotations (the paper reports 4.2 for HP Forum, 5.2 for
// TripAdvisor).
func (a Annotations) MeanSegmentsPerAnnotation() float64 {
	if len(a.SentenceBorders) == 0 {
		return 0
	}
	var total float64
	for _, borders := range a.SentenceBorders {
		total += float64(len(borders) + 1)
	}
	return total / float64(len(a.SentenceBorders))
}
