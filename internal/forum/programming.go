package forum

// programmingSpec mirrors StackOverflow: shorter posts (Table 3 shows
// 53.6% of StackOverflow posts end up undivided) with a tight flow of
// context, error report, attempted fixes, and the actual question.
var programmingSpec = domainSpec{
	name: "Programming",
	flow: []string{
		"code context", "error report", "previous attempts", "REQUEST",
	},
	optional: map[string]float64{
		"error report":      0.75,
		"previous attempts": 0.55,
	},
	requestLabel: "question",
	specs: map[string]intentionSpec{
		"code context": {
			label: "code context",
			templates: []string{
				"I am building a {app} in {lang}.",
				"My project uses {framework} with {lang}.",
				"I am working on a {app} that talks to a {storage}.",
				"Our codebase is a {app} running on {platform}.",
				"I maintain a {app} written in {lang} for my team.",
				"My {app} already handles {crossterm} elsewhere.",
			},
		},
		"error report": {
			label: "error report",
			templates: []string{
				"The compiler never finishes without a {error}.",
				"The {component} cannot run without hitting a {error}.",
				"The tests crash with a {error} and never recover.",
				"The {app} returns nothing but a {error} when the {component} runs.",
				"The build does not survive the {event} and shows a {error}.",
				"It prints a {error} and not the expected {output}.",
				"The logs show no warning about {crossterm} before the {error}.",
			},
		},
		"previous attempts": {
			label: "previous attempts",
			templates: []string{
				"I rewrote the {component} twice.",
				"I tried downgrading {framework} and hit the same wall.",
				"I added logging around the {component} and read every line.",
				"I cleared the cache and rebuilt the {app} from scratch.",
				"I copied a snippet from the documentation and it failed the same way.",
				"I bisected the commits until I found the {event}.",
				"I followed a tutorial about {crossterm} and gave up after an hour.",
				"I skimmed an answer about {crossterm} but it targeted an old version.",
			},
		},
	},
	slots: map[string][]string{
		"platform": {"Kubernetes", "a bare VM", "a CI runner", "Docker"},
		"event":    {"dependency upgrade", "merge", "refactor", "config change"},
		"output":   {"JSON payload", "status code", "sorted list", "rendered page"},
	},
	topics: []topic{
		{
			name: "null pointer",
			slots: map[string][]string{
				"crossterm": {"tracing null callers", "optional wrappers", "regression tests for crashes"},
				"app":       {"REST service", "web API", "backend service"},
				"lang":      {"Java", "Kotlin", "Go"},
				"framework": {"Spring", "Micronaut", "a standard library stack"},
				"storage":   {"Postgres database", "Redis cache"},
				"component": {"request handler", "service layer", "mapper"},
				"error":     {"null pointer exception", "nil dereference panic", "empty response"},
			},
			variants: [][]string{
				{
					"Why is the {component} receiving a null {output} here?",
					"How can I find which caller passes null into the {component}?",
					"What does this {error} stack actually point to?",
				},
				{
					"How should I guard the {component} against missing values?",
					"Is an optional wrapper the right fix for the {component}?",
					"What is the idiomatic null check in {lang}?",
				},
				{
					"How do I write a regression test for the {error}?",
					"Can I reproduce the {error} deterministically in a unit test?",
					"Which testing pattern catches a {error} early?",
				},
			},
		},
		{
			name: "async deadlock",
			slots: map[string][]string{
				"crossterm": {"buffered channel sizing", "context timeouts", "load testing for stalls"},
				"app":       {"worker pool", "message consumer", "scheduler"},
				"lang":      {"Go", "Rust", "C#"},
				"framework": {"goroutines and channels", "async tasks", "an actor library"},
				"storage":   {"message queue", "job table"},
				"component": {"dispatcher", "worker loop", "semaphore"},
				"error":     {"deadlock detector report", "stalled queue", "timeout storm"},
			},
			variants: [][]string{
				{
					"Why does the {component} stop consuming after a burst?",
					"What makes every worker block on the same channel?",
					"How do I read this {error} to find the stuck goroutine?",
				},
				{
					"Should the {component} use a buffered channel here?",
					"Is a context timeout the right way to free the {component}?",
					"What is the correct shutdown order for the {component}?",
				},
				{
					"How can I load test the {app} to trigger the {error} reliably?",
					"Which race detector flags help with a {error}?",
					"Can I assert liveness of the {component} in CI?",
				},
			},
		},
		{
			name: "orm query",
			slots: map[string][]string{
				"crossterm": {"eager loading relations", "reading generated SQL", "squashing migrations"},
				"app":       {"admin dashboard", "reporting service", "CRUD app"},
				"lang":      {"Python", "Ruby", "PHP"},
				"framework": {"Django", "Rails", "Laravel"},
				"storage":   {"MySQL database", "Postgres cluster"},
				"component": {"query builder", "model layer", "migration"},
				"error":     {"N plus one query storm", "missing index warning", "migration conflict"},
			},
			variants: [][]string{
				{
					"Why does the {component} fire hundreds of queries per page?",
					"How do I see the SQL the {framework} generates here?",
					"What causes the {error} on the listing view?",
				},
				{
					"How do I eager load the relations in {framework}?",
					"Is a join or a prefetch better for the {component}?",
					"Which index should I add for this access pattern?",
				},
				{
					"How do I resolve a {error} without losing data?",
					"Can I squash migrations safely in {framework}?",
					"What is the safe way to rollback the {component}?",
				},
			},
		},
		{
			name: "frontend state",
			slots: map[string][]string{
				"crossterm": {"render dependency tracing", "memoized components", "state transition tests"},
				"app":       {"single page app", "dashboard UI", "form wizard"},
				"lang":      {"TypeScript", "JavaScript"},
				"framework": {"React", "Vue", "Svelte"},
				"storage":   {"REST backend", "GraphQL gateway"},
				"component": {"state store", "effect hook", "reducer"},
				"error":     {"infinite re-render loop", "stale props bug", "hydration mismatch"},
			},
			variants: [][]string{
				{
					"Why does the {component} re-render on every keystroke?",
					"What triggers the {error} after the data loads?",
					"How do I trace which dependency changes each render?",
				},
				{
					"Should the {component} live in context or local state?",
					"Is a memo the right fix for the {component}?",
					"How do I split the {component} to avoid the {error}?",
				},
				{
					"How can I test the {component} without mounting the whole {app}?",
					"Which testing library helpers cover the {error} case?",
					"Can I snapshot the {component} state transitions?",
				},
			},
		},
	},
}
