package forum

// travelSpec mirrors the TripAdvisor hotel forum: Fig 7's travel intention
// categories — booking reason, aspect judgements, room description, pros
// and cons, overall opinion, and recommendation — with their grammatical
// signatures (past/first-person booking narrative, third-person
// descriptions, second-person/future recommendations).
var travelSpec = domainSpec{
	name: "Travel",
	flow: []string{
		"booking reason", "room description", "aspect judgement",
		"pros and cons", "REQUEST", "opinion",
	},
	optional: map[string]float64{
		"booking reason": 0.7,
		"pros and cons":  0.6,
		"opinion":        0.75,
	},
	requestLabel: "recommendation",
	specs: map[string]intentionSpec{
		"booking reason": {
			label: "booking reason",
			templates: []string{
				"We booked the {hotel} for {occasion} last {season}.",
				"I chose this place because of the {aspect}.",
				"My {person} recommended the {hotel} after {occasion} there.",
				"We stayed {duration} during our {occasion}.",
				"I picked the {hotel} since it sits near the {landmark}.",
				"We reserved a {roomtype} months before the {occasion}.",
				"A review praising {crossterm} convinced us to book.",
			},
		},
		"room description": {
			label: "room description",
			templates: []string{
				"The {roomtype} has a {feature} and a view of the {landmark}.",
				"The room comes with a {feature} and plenty of space.",
				"The {hotel} offers a {amenity} and a {amenity2} on site.",
				"The room smells fresh and the {feature} works perfectly.",
				"The {roomtype} faces the {landmark} directly.",
				"The bathroom has a {feature} and good lighting.",
				"Leaflets in the lobby covered {crossterm} in detail.",
			},
		},
		"aspect judgement": {
			label: "aspect judgement",
			templates: []string{
				"The {aspect} was excellent from the first day.",
				"The staff were friendly and spoke perfect English.",
				"The {aspect} felt a bit dated for the price.",
				"Breakfast offered fresh fruit and warm bread every morning.",
				"The {aspect} got crowded every evening.",
				"Housekeeping kept the {roomtype} spotless all week.",
				"Other guests kept talking about {crossterm} all week.",
				"The desk staff handled questions about {crossterm} politely.",
			},
		},
		"pros and cons": {
			label: "pros and cons",
			templates: []string{
				"The main pro is clearly the {aspect}.",
				"A clear con is the {problem}.",
				"On the plus side the {amenity} stays open late.",
				"The weak point is the {problem} at night.",
				"The strong points are the {aspect} and the {amenity}.",
				"Reviews moaning about {crossterm} exaggerate a lot.",
			},
		},
		"opinion": {
			label: "opinion",
			templates: []string{
				"Overall I think the {hotel} is worth the price.",
				"I would definitely stay at the {hotel} again.",
				"Honestly I think the price sits too high for this.",
				"All in all I consider it a lovely place.",
				"I would happily return for {occasion}.",
			},
		},
	},
	slots: map[string][]string{
		"person":   {"sister", "colleague", "friend", "cousin"},
		"season":   {"summer", "spring", "autumn", "winter"},
		"duration": {"three nights", "a week", "a long weekend", "five days"},
		"occasion": {"our honeymoon", "a business trip", "a family holiday", "an anniversary"},
	},
	topics: []topic{
		{
			name: "beach resort",
			slots: map[string][]string{
				"crossterm": {"family friendly pool hours", "the quietest room floors", "places to eat near the lighthouse"},
				"hotel":     {"beach resort", "seaside hotel", "coastal resort"},
				"roomtype":  {"sea view room", "beach bungalow", "deluxe double"},
				"feature":   {"private balcony", "king bed", "rain shower"},
				"amenity":   {"infinity pool", "beach bar", "spa"},
				"amenity2":  {"dive center", "sunset terrace"},
				"aspect":    {"beach access", "pool area", "sea view"},
				"landmark":  {"beach", "marina", "lighthouse"},
				"problem":   {"loud beach bar music", "crowded pool", "slow elevator"},
			},
			variants: [][]string{
				{
					"Would you recommend the {hotel} for families with small kids?",
					"You should tell me whether the {amenity} suits children.",
					"Is the {aspect} safe for a toddler?",
				},
				{
					"Which {roomtype} should I book for the best {aspect}?",
					"You will want to know which floor has the quietest rooms.",
					"Should I pay extra for the {feature}?",
				},
				{
					"Can you suggest restaurants near the {landmark}?",
					"Where should we eat around the {hotel} at night?",
					"You should try the places by the {landmark} first, right?",
				},
			},
		},
		{
			name: "city hotel",
			slots: map[string][]string{
				"crossterm": {"walking to the old town", "rooms away from street noise", "the executive lounge perks"},
				"hotel":     {"downtown hotel", "city center hotel", "boutique hotel"},
				"roomtype":  {"executive room", "studio suite", "standard double"},
				"feature":   {"work desk", "soundproof windows", "espresso machine"},
				"amenity":   {"rooftop bar", "fitness room", "business lounge"},
				"amenity2":  {"underground parking", "conference floor"},
				"aspect":    {"location", "metro access", "skyline view"},
				"landmark":  {"old town", "central station", "museum quarter"},
				"problem":   {"street noise", "tiny elevator", "expensive parking"},
			},
			variants: [][]string{
				{
					"Is the {hotel} close enough to walk to the {landmark}?",
					"You should tell me how far the {landmark} really is.",
					"Can I reach the {landmark} without a taxi?",
				},
				{
					"Would the {roomtype} be quiet enough for light sleepers?",
					"Which side of the {hotel} avoids the {problem}?",
					"Should I ask for a high floor to escape the {problem}?",
				},
				{
					"Does the {amenity} justify the executive rate?",
					"Is the {amenity} open to all guests or only members?",
					"You would book the {roomtype} again for the {amenity}, right?",
				},
			},
		},
		{
			name: "mountain lodge",
			slots: map[string][]string{
				"crossterm": {"driving up after snow", "the suites with the view", "summer trail openings"},
				"hotel":     {"mountain lodge", "alpine chalet", "ski hotel"},
				"roomtype":  {"chalet suite", "loft room", "family cabin"},
				"feature":   {"fireplace", "heated floor", "panorama window"},
				"amenity":   {"sauna", "ski storage", "hot tub"},
				"amenity2":  {"shuttle service", "equipment rental"},
				"aspect":    {"slope access", "mountain view", "hiking trails"},
				"landmark":  {"cable car", "summit trail", "village square"},
				"problem":   {"steep access road", "thin walls", "limited parking"},
			},
			variants: [][]string{
				{
					"Is the {hotel} doable without a four wheel drive in winter?",
					"You should tell me how bad the {problem} gets after snow.",
					"Can a normal car reach the {hotel} in January?",
				},
				{
					"Which {roomtype} has the best {aspect}?",
					"Should we book the {roomtype} with the {feature}?",
					"Is the {feature} worth the higher rate?",
				},
				{
					"Would the lodge suit a summer hiking trip too?",
					"Are the {aspect} open outside the ski season?",
					"You would return in summer for the {landmark}, right?",
				},
			},
		},
		{
			name: "airport hotel",
			slots: map[string][]string{
				"crossterm": {"dawn shuttle schedules", "rooms that block runway noise", "leaving bags after checkout"},
				"hotel":     {"airport hotel", "transit hotel", "terminal inn"},
				"roomtype":  {"day room", "compact double", "runway view room"},
				"feature":   {"blackout curtains", "soundproofing", "early breakfast box"},
				"amenity":   {"24 hour desk", "free shuttle", "luggage room"},
				"amenity2":  {"express checkout", "lounge access"},
				"aspect":    {"shuttle timing", "checkin speed", "quietness"},
				"landmark":  {"terminal", "departures hall", "train link"},
				"problem":   {"runway noise", "early crowd", "slow shuttle"},
			},
			variants: [][]string{
				{
					"Does the {amenity} run all night for early flights?",
					"You should tell me how often the shuttle leaves at dawn.",
					"Can I make a six in the morning flight from the {hotel}?",
				},
				{
					"Is the {roomtype} quiet despite the {problem}?",
					"Do the {feature} really block the {problem}?",
					"Which floor avoids the {problem} best?",
				},
				{
					"Is there a place to leave bags after checkout?",
					"Can the {amenity} hold luggage for a whole day?",
					"You would trust the {amenity} with valuables, right?",
				},
			},
		},
		{
			name: "spa retreat",
			slots: map[string][]string{
				"crossterm": {"booking treatments ahead", "the silent floors", "surprise extra charges"},
				"hotel":     {"spa retreat", "wellness resort", "thermal hotel"},
				"roomtype":  {"garden suite", "zen room", "thermal view room"},
				"feature":   {"soaking tub", "yoga mat corner", "aromatherapy set"},
				"amenity":   {"thermal pools", "massage center", "silent garden"},
				"amenity2":  {"tea lounge", "meditation pavilion"},
				"aspect":    {"treatment quality", "calm atmosphere", "garden"},
				"landmark":  {"hot springs", "forest path", "lake"},
				"problem":   {"fully booked treatments", "strict silence rules", "extra charges"},
			},
			variants: [][]string{
				{
					"Should I reserve the {amenity} sessions before arriving?",
					"You should warn me how early the {amenity} fills up.",
					"Can we book treatments on arrival or is that too late?",
				},
				{
					"Is the {hotel} suitable for someone who wants pure quiet?",
					"Do children change the {aspect} during holidays?",
					"Would the {roomtype} guarantee a silent night?",
				},
				{
					"Are the {problem} as bad as other reviews say?",
					"Did the {problem} spoil your stay at all?",
					"You would still return despite the {problem}, right?",
				},
			},
		},
	},
}
