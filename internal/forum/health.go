package forum

// healthSpec models a medical forum (the paper's introduction motivates
// the method with Medhelp-style health communities: "someone with a health
// problem reading a medical forum post where a user is describing similar
// symptoms could find additional related forum posts"). It is a fourth
// domain beyond the paper's three evaluation datasets, useful for
// out-of-domain checks: the canonical experiments run on the paper's
// domains only.
var healthSpec = domainSpec{
	name: "Health",
	flow: []string{
		"patient background", "symptom description", "treatment history",
		"REQUEST", "worries",
	},
	optional: map[string]float64{
		"patient background": 0.7,
		"treatment history":  0.65,
		"worries":            0.35,
	},
	requestLabel: "advice request",
	specs: map[string]intentionSpec{
		"patient background": {
			label: "patient background",
			templates: []string{
				"I am a {age} year old with a history of {condition}.",
				"My {relative} has lived with {condition} for {duration}.",
				"I work long shifts and my {habit} is far from ideal.",
				"I am generally healthy apart from mild {condition}.",
			},
		},
		"symptom description": {
			label: "symptom description",
			templates: []string{
				"The {bodypart} aches every {time} and never fully settles.",
				"A dull {symptom} shows up after {trigger}.",
				"The {symptom} does not respond to rest at all.",
				"It starts with {symptom} and ends with hours of {symptom2}.",
				"The {bodypart} swells slightly by the evening.",
			},
		},
		"treatment history": {
			label: "treatment history",
			templates: []string{
				"I tried {remedy} for {duration} with little change.",
				"My doctor prescribed {medication} last {time}.",
				"I switched to {remedy} after the {medication} upset my stomach.",
				"I already cut out {habit} completely.",
				"A physiotherapist worked on my {bodypart} for {duration}.",
			},
		},
		"worries": {
			label: "worries",
			templates: []string{
				"I am honestly scared it could be something serious.",
				"This uncertainty keeps me awake at night.",
				"I worry constantly about the {bodypart}.",
			},
		},
	},
	slots: map[string][]string{
		"age":      {"35", "42", "58", "29"},
		"relative": {"mother", "father", "sister", "brother"},
		"duration": {"two weeks", "three months", "a year", "ten days"},
		"time":     {"morning", "evening", "night", "week"},
		"habit":    {"sleep schedule", "diet", "posture", "caffeine intake"},
	},
	topics: []topic{
		{
			name: "back pain",
			slots: map[string][]string{
				"crossterm":  {"stretching routines", "imaging scans", "ergonomic chairs"},
				"condition":  {"sciatica", "a slipped disc", "muscle strain"},
				"bodypart":   {"lower back", "spine", "hip"},
				"symptom":    {"stabbing pain", "stiffness", "tingling"},
				"symptom2":   {"numbness", "cramping"},
				"trigger":    {"sitting all day", "lifting boxes", "long drives"},
				"remedy":     {"daily stretching", "heat packs", "yoga"},
				"medication": {"ibuprofen", "a muscle relaxant"},
			},
			variants: [][]string{
				{
					"Do you know whether {remedy} actually helps a {condition}?",
					"Should I keep up the {remedy} even when the {bodypart} hurts?",
					"Which exercises are safe with {condition}?",
				},
				{
					"Should I push for an MRI of the {bodypart}?",
					"Is a scan worth it after only {duration} of {symptom}?",
					"Do you know what a scan shows that an exam misses?",
				},
				{
					"Can a better chair really fix {symptom} from {trigger}?",
					"Which desk setup helps the {bodypart} most?",
					"Is a standing desk worth trying for {condition}?",
				},
			},
		},
		{
			name: "migraine",
			slots: map[string][]string{
				"crossterm":  {"trigger diaries", "preventive medication", "screen time limits"},
				"condition":  {"chronic migraine", "tension headaches", "cluster headaches"},
				"bodypart":   {"temple", "forehead", "neck"},
				"symptom":    {"throbbing pain", "aura", "light sensitivity"},
				"symptom2":   {"nausea", "blurred vision"},
				"trigger":    {"bright screens", "skipped meals", "stress at work"},
				"remedy":     {"a trigger diary", "magnesium", "regular sleep"},
				"medication": {"a triptan", "a beta blocker"},
			},
			variants: [][]string{
				{
					"Do you know how long a {medication} should take to work?",
					"Is it normal to need a {medication} every {time}?",
					"Should I ask about preventive {medication} after {duration}?",
				},
				{
					"How do you identify which {trigger} matters most?",
					"Did a {remedy} help you find your triggers?",
					"Which patterns should I log in a {remedy}?",
				},
				{
					"Can {trigger} alone explain daily {symptom}?",
					"Would cutting {trigger} really reduce the {symptom}?",
					"How strict do screen limits need to be for {condition}?",
				},
			},
		},
		{
			name: "allergy",
			slots: map[string][]string{
				"crossterm":  {"elimination diets", "antihistamine schedules", "air purifiers"},
				"condition":  {"hay fever", "a dust allergy", "food intolerance"},
				"bodypart":   {"sinuses", "skin", "throat"},
				"symptom":    {"sneezing fits", "itchy rash", "congestion"},
				"symptom2":   {"watery eyes", "wheezing"},
				"trigger":    {"pollen season", "dusty rooms", "certain foods"},
				"remedy":     {"saline rinses", "an elimination diet", "air filtering"},
				"medication": {"an antihistamine", "a nasal spray"},
			},
			variants: [][]string{
				{
					"Do you know whether {medication} loses effect over {duration}?",
					"Is it safe to take {medication} every {time} long term?",
					"Should I rotate between different {medication} brands?",
				},
				{
					"How do I run {remedy} without missing nutrients?",
					"Which foods go first in {remedy}?",
					"How long before {remedy} shows a clear answer?",
				},
				{
					"Would an air purifier help with {trigger}?",
					"Which room matters most for air filtering?",
					"Do filters actually reduce {symptom} indoors?",
				},
			},
		},
	},
}
