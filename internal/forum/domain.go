// Package forum is the corpus substrate of the reproduction: a synthetic
// forum-post generator standing in for the paper's proprietary datasets
// (HP Forum, TripAdvisor, StackOverflow) plus a simulated annotator pool
// standing in for its 30-person user study.
//
// Each generated post is a sequence of intention blocks drawn from the
// categories the paper's annotators produced (Fig 7) — problem statement,
// previous efforts, help request, hotel description, and so on — realized
// through per-intention sentence templates whose grammar carries the
// communication-means signature the method exploits (past/first-person for
// previous efforts, interrogative/second-person for help requests, ...).
// Topic vocabulary is shared across all posts of a topic, so posts about
// the same device or hotel look alike to whole-post term comparison
// regardless of what they actually ask — the confusability that motivates
// the paper (Fig 1, Docs A/B).
//
// Ground truth shipped with every post: the true segment borders and
// intention labels (for segmentation evaluation), and the (topic, variant)
// scenario key (for relevance judgments: two posts are related iff they
// share it).
package forum

// Domain selects a forum domain: the three evaluation datasets of Sec 9
// plus the Health domain of the paper's introductory motivation.
type Domain int

const (
	// TechSupport mirrors the HP product support forum.
	TechSupport Domain = iota
	// Travel mirrors the TripAdvisor hotel forum.
	Travel
	// Programming mirrors StackOverflow.
	Programming
	// Health mirrors a Medhelp-style medical forum — the paper's
	// introductory motivation, beyond its three evaluation datasets.
	Health
)

var domainNames = [...]string{"TechSupport", "Travel", "Programming", "Health"}

// String returns the domain's display name.
func (d Domain) String() string {
	if int(d) < len(domainNames) {
		return domainNames[d]
	}
	return "?"
}

// GoldSegment is one ground-truth intention block of a generated post.
type GoldSegment struct {
	Intention string // Fig 7 category label, e.g. "previous efforts"
	Start     int    // byte offset of the segment's first character
	End       int    // byte offset one past the segment's last character
	FirstSent int    // index of the segment's first sentence
	NumSents  int    // number of sentences in the segment
}

// Post is one generated forum post with its ground truth.
type Post struct {
	ID       int
	Domain   Domain
	Topic    int // topic index within the domain
	Variant  int // request-variant index within the topic
	Text     string
	Segments []GoldSegment
}

// Scenario returns the post's relevance key: posts are related iff their
// scenarios are equal (same domain, same topic, same request variant).
type Scenario struct {
	Domain  Domain
	Topic   int
	Variant int
}

// Scenario returns the post's relevance key.
func (p Post) Scenario() Scenario {
	return Scenario{Domain: p.Domain, Topic: p.Topic, Variant: p.Variant}
}

// Related reports whether two posts are relevant to each other under the
// generator's ground truth: same topic instance and same core request. Two
// posts about the same device with different requests (the paper's Doc A vs
// Doc B) share vocabulary but are NOT related.
func Related(a, b Post) bool {
	return a.ID != b.ID && a.Scenario() == b.Scenario()
}

// GoldBorders returns the char offsets of the post's true segment borders
// (the start of each segment except the first).
func (p Post) GoldBorders() []int {
	if len(p.Segments) <= 1 {
		return nil
	}
	out := make([]int, 0, len(p.Segments)-1)
	for _, s := range p.Segments[1:] {
		out = append(out, s.Start)
	}
	return out
}

// GoldSentenceBorders returns the sentence-index borders of the true
// segmentation.
func (p Post) GoldSentenceBorders() []int {
	if len(p.Segments) <= 1 {
		return nil
	}
	out := make([]int, 0, len(p.Segments)-1)
	for _, s := range p.Segments[1:] {
		out = append(out, s.FirstSent)
	}
	return out
}

// NumSentences returns the total sentence count of the post.
func (p Post) NumSentences() int {
	n := 0
	for _, s := range p.Segments {
		n += s.NumSents
	}
	return n
}

// intentionSpec describes how one Fig 7 intention category is realized:
// its label and the sentence templates that express it. Templates contain
// {slot} placeholders resolved from the topic's vocabulary pools.
type intentionSpec struct {
	label     string
	templates []string
}

// topic is one thematic scenario of a domain: the vocabulary pools its
// posts draw from and, per request variant, the templates of the post's
// core request. Different variants of the same topic produce posts that
// share vocabulary but serve different needs.
type topic struct {
	name     string
	slots    map[string][]string
	variants [][]string // variants[v] = request templates of variant v
}

// domainSpec bundles everything needed to generate posts of one domain.
type domainSpec struct {
	name string
	// intentions available to every post of the domain, in canonical
	// discourse order. The pseudo-label "REQUEST" marks where the
	// variant-specific request block goes.
	flow []string
	// optional[label] is the probability the intention appears in a post;
	// labels absent from the map always appear.
	optional map[string]float64
	// specs maps an intention label to its realization.
	specs map[string]intentionSpec
	// requestLabel is the Fig 7 label of the variant-specific request.
	requestLabel string
	// slots are domain-global vocabulary pools, overridden per topic.
	slots  map[string][]string
	topics []topic
}
