package forum

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config controls corpus generation. The same Config always yields the
// same corpus: every post derives its own RNG from (Seed, post id), which
// also makes generation order-independent.
type Config struct {
	Domain   Domain
	NumPosts int
	Seed     int64
}

// Spec returns the generation spec of a domain.
func spec(d Domain) *domainSpec {
	switch d {
	case TechSupport:
		return &techSpec
	case Travel:
		return &travelSpec
	case Health:
		return &healthSpec
	default:
		return &programmingSpec
	}
}

// Intentions returns the Fig 7 intention category labels of a domain, in
// canonical discourse order (the generator's ground-truth label set).
func Intentions(d Domain) []string {
	sp := spec(d)
	out := make([]string, 0, len(sp.flow))
	for _, label := range sp.flow {
		if label == "REQUEST" {
			out = append(out, sp.requestLabel)
		} else {
			out = append(out, label)
		}
	}
	return out
}

// NumTopics returns the number of topics a domain generates from.
func NumTopics(d Domain) int { return len(spec(d).topics) }

// NumVariants returns the number of request variants of a domain topic.
func NumVariants(d Domain, topic int) int { return len(spec(d).topics[topic].variants) }

// Generate produces a deterministic synthetic corpus.
func Generate(cfg Config) []Post {
	posts := make([]Post, cfg.NumPosts)
	for i := range posts {
		posts[i] = GeneratePost(cfg.Domain, i, cfg.Seed)
	}
	return posts
}

// GeneratePost produces post number id of the corpus (Domain, seed). It is
// what Generate calls per post, exposed for streaming large corpora without
// materializing them.
func GeneratePost(d Domain, id int, seed int64) Post {
	sp := spec(d)
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(id)))

	t := rng.Intn(len(sp.topics))
	top := &sp.topics[t]
	v := rng.Intn(len(top.variants))

	post := Post{ID: id, Domain: d, Topic: t, Variant: v}
	var b strings.Builder
	sentIndex := 0

	appendSegment := func(label string, sentences []string) {
		if len(sentences) == 0 {
			return
		}
		seg := GoldSegment{Intention: label, FirstSent: sentIndex, NumSents: len(sentences)}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		seg.Start = b.Len()
		for i, s := range sentences {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(s)
		}
		seg.End = b.Len()
		sentIndex += len(sentences)
		post.Segments = append(post.Segments, seg)
	}

	for _, label := range sp.flow {
		if label == "REQUEST" {
			n := 1 + rng.Intn(2)
			appendSegment(sp.requestLabel, fillSentences(rng, top.variants[v], n, top, sp))
			continue
		}
		if p, optional := sp.optional[label]; optional && rng.Float64() >= p {
			continue
		}
		is := sp.specs[label]
		n := 1 + rng.Intn(3)
		appendSegment(is.label, fillSentences(rng, is.templates, n, top, sp))
	}
	post.Text = b.String()
	return post
}

// fillSentences instantiates n distinct templates from the pool (fewer if
// the pool is smaller), resolving slots against the topic's vocabulary with
// domain-global fallback.
func fillSentences(rng *rand.Rand, templates []string, n int, top *topic, sp *domainSpec) []string {
	if n > len(templates) {
		n = len(templates)
	}
	perm := rng.Perm(len(templates))
	out := make([]string, 0, n)
	for _, ti := range perm[:n] {
		out = append(out, fillTemplate(rng, templates[ti], top, sp))
	}
	return out
}

// fillTemplate substitutes every {slot} placeholder with a vocabulary pick.
func fillTemplate(rng *rand.Rand, tpl string, top *topic, sp *domainSpec) string {
	var b strings.Builder
	b.Grow(len(tpl) + 16)
	for {
		open := strings.IndexByte(tpl, '{')
		if open < 0 {
			b.WriteString(tpl)
			return b.String()
		}
		close := strings.IndexByte(tpl[open:], '}')
		if close < 0 {
			b.WriteString(tpl)
			return b.String()
		}
		b.WriteString(tpl[:open])
		slot := tpl[open+1 : open+close]
		b.WriteString(pickSlot(rng, slot, top, sp))
		tpl = tpl[open+close+1:]
	}
}

// pickSlot resolves one slot name; unknown slots surface loudly so template
// typos cannot silently produce broken corpora.
func pickSlot(rng *rand.Rand, slot string, top *topic, sp *domainSpec) string {
	if pool, ok := top.slots[slot]; ok && len(pool) > 0 {
		return pool[rng.Intn(len(pool))]
	}
	if pool, ok := sp.slots[slot]; ok && len(pool) > 0 {
		return pool[rng.Intn(len(pool))]
	}
	panic(fmt.Sprintf("forum: template slot %q undefined for topic %q of %s", slot, top.name, sp.name))
}

// RelevantSet returns the ids of all posts related to the query post under
// the generator's ground truth.
func RelevantSet(posts []Post, query Post) map[int]bool {
	rel := make(map[int]bool)
	for _, p := range posts {
		if Related(query, p) {
			rel[p.ID] = true
		}
	}
	return rel
}
