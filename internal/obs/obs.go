// Package obs is the reproduction's observability substrate: atomic
// counters, gauges, fixed-bucket latency histograms with quantile
// estimates, and lightweight spans, all recorded into a process-wide
// registry that can be snapshotted as JSON (the /metrics endpoint of
// cmd/serve, the end-of-run report of cmd/experiments).
//
// The paper's evaluation (Sec 9, Fig 11) is an accounting of where time
// goes across segmentation, grouping, and matching; this package makes
// that accounting a permanent runtime property instead of a one-off
// experiments report. The offline build records one span per phase
// (build.segment, build.vectorize, build.cluster, build.refine,
// build.index — the Fig 11(a)/(b) quantities) and the online hot path
// records per-query latency and size distributions (the Fig 11(c)
// quantity).
//
// Design constraints, in order:
//
//  1. Near-zero overhead when disabled. Recording is gated on a single
//     package-level atomic flag; a disabled Counter.Add or
//     Histogram.Observe is one atomic load and a branch, and a disabled
//     Span.Start returns a zero Timing without reading the clock. No
//     call allocates, enabled or not.
//  2. Race-safety. Queries record concurrently with Add; every mutable
//     cell is a sync/atomic value and registration is mutex-guarded.
//  3. Snapshot consistency. A histogram snapshot derives its count from
//     the bucket counts it actually read, so a scrape concurrent with
//     writers always sees count == Σ buckets and per-bucket counts that
//     are monotone across scrapes (no torn totals).
//
// Metrics are created once at package init time of the instrumented
// package (see the vars at the top of internal/match, internal/index,
// internal/core) and recorded into unconditionally; whether anything is
// written is decided by Enable/Disable.
package obs

import (
	"fmt"
	"sync/atomic"
)

// enabled gates all recording. Metric handles still exist and register
// while disabled — only the hot-path mutation is skipped.
var enabled atomic.Bool

// Enable turns on recording for every metric in the process.
// cmd/serve and cmd/experiments enable it at startup; libraries never
// toggle it.
func Enable() { enabled.Store(true) }

// Disable turns off recording. Already-recorded values remain readable.
func Disable() { enabled.Store(false) }

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter creates and registers a counter in the default registry.
// Names must be unique process-wide; NewCounter panics on duplicates
// (metric creation is an init-time programming act, not runtime input).
func NewCounter(name string) *Counter {
	c := &Counter{name: name}
	Default.register(name, c, func(r *Registry) { r.counters = append(r.counters, c) })
	return c
}

// GetOrNewCounter returns the counter registered under name, creating
// and registering it if the name is free. It is the constructor for
// dynamically named instruments — per-shard labels like
// "shard.03.queries" — where several subsystem instances built at
// different times legitimately share one process-wide metric. It panics
// if the name is taken by a different metric kind.
func GetOrNewCounter(name string) *Counter {
	h := Default.getOrRegister(name,
		func() any { return &Counter{name: name} },
		func(r *Registry, h any) { r.counters = append(r.counters, h.(*Counter)) })
	c, ok := h.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric name %q is registered as a different kind", name))
	}
	return c
}

// Add increments the counter by n. It is a no-op while recording is
// disabled. Negative n is ignored: counters are monotone by contract
// (the /metrics stress test asserts it).
func (c *Counter) Add(n int64) {
	if !enabled.Load() || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is an instantaneous atomic value (e.g. current document count).
type Gauge struct {
	name string
	v    atomic.Int64
}

// NewGauge creates and registers a gauge in the default registry.
func NewGauge(name string) *Gauge {
	g := &Gauge{name: name}
	Default.register(name, g, func(r *Registry) { r.gauges = append(r.gauges, g) })
	return g
}

// Set stores v. It is a no-op while recording is disabled.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }
