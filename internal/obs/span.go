package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Span names a repeatedly-executed region of code — one offline build
// phase, one online query — and records each execution's wall duration
// into a latency histogram. A span is the unit the /metrics endpoint
// and the experiments report aggregate over; EXPERIMENTS.md maps the
// build.* span names onto the paper's Fig 11 phases.
type Span struct {
	hist *Histogram
}

// NewSpan creates and registers a span. The backing histogram appears
// in snapshots under the span's name with DurationBounds bucketing,
// listed in the snapshot's "spans" section rather than "histograms".
func NewSpan(name string) *Span {
	bounds := DurationBounds()
	h := &Histogram{name: name, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	s := &Span{hist: h}
	Default.register(name, s, func(r *Registry) { r.spans = append(r.spans, s) })
	return s
}

// GetOrNewSpan returns the span registered under name, creating and
// registering it if the name is free — the span counterpart of
// GetOrNewCounter for dynamically named (per-shard) instruments. It
// panics if the name is taken by a different metric kind.
func GetOrNewSpan(name string) *Span {
	h := Default.getOrRegister(name,
		func() any {
			bounds := DurationBounds()
			hist := &Histogram{name: name, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
			return &Span{hist: hist}
		},
		func(r *Registry, h any) { r.spans = append(r.spans, h.(*Span)) })
	s, ok := h.(*Span)
	if !ok {
		panic(fmt.Sprintf("obs: metric name %q is registered as a different kind", name))
	}
	return s
}

// Timing is an in-flight span execution. The zero Timing is inert:
// Stop on it returns 0 and records nothing, which is how the disabled
// fast path costs neither a clock read nor an allocation.
type Timing struct {
	span  *Span
	start time.Time
}

// Start begins timing one execution if recording is enabled; otherwise
// it returns the inert zero Timing. Use it on hot paths where the
// duration is only wanted for observability.
func (s *Span) Start() Timing {
	if !enabled.Load() {
		return Timing{}
	}
	return Timing{span: s, start: time.Now()}
}

// StartAlways begins timing unconditionally: Stop will return the real
// elapsed duration even while recording is disabled (recording itself
// still only happens when enabled). The offline build uses it so
// match.BuildStats keeps its per-phase durations with any sink state —
// the span is the measurement; BuildStats is derived from it.
func (s *Span) StartAlways() Timing {
	return Timing{span: s, start: time.Now()}
}

// Stop ends the execution, records its duration (when recording is
// enabled and the Timing is live), and returns the elapsed duration
// (0 for the inert zero Timing).
func (t Timing) Stop() time.Duration {
	if t.span == nil {
		return 0
	}
	d := time.Since(t.start)
	t.span.hist.Observe(int64(d))
	return d
}

// Record adds one execution with an externally measured duration.
func (s *Span) Record(d time.Duration) { s.hist.Observe(int64(d)) }

// Name returns the span's registered name.
func (s *Span) Name() string { return s.hist.name }

// Snapshot returns the span's latency distribution.
func (s *Span) Snapshot() HistogramSnapshot { return s.hist.Snapshot() }
