package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.Event("anything", N("k", 1)) // must not panic
	if tr.ID() != "" {
		t.Fatalf("nil trace ID = %q, want empty", tr.ID())
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatalf("TraceFrom(Background) = %v, want nil", got)
	}
	if got := TraceFrom(nil); got != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Fatalf("TraceFrom(nil) = %v, want nil", got)
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tracer := NewTracer(TracerConfig{SlowQuery: 0})
	tr := tracer.Start()
	if tr == nil {
		t.Fatal("SlowQuery=0 must start a trace for every request")
	}
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatalf("TraceFrom returned %p, want %p", got, tr)
	}
}

func TestSlowCaptureThresholdZeroIsDeterministic(t *testing.T) {
	// SlowQuery=0: every request qualifies as slow, so every finished
	// trace must land in the ring — the acceptance criterion's
	// deterministic-capture configuration.
	tracer := NewTracer(TracerConfig{SlowQuery: 0, RingSize: 8})
	const reqs = 5
	for i := 0; i < reqs; i++ {
		tr := tracer.Start()
		tr.Event("stage", N("i", int64(i)))
		if d := tracer.Finish(tr); d < 0 {
			t.Fatalf("negative duration %v", d)
		}
	}
	recs := tracer.Snapshot()
	if len(recs) != reqs {
		t.Fatalf("captured %d traces, want %d", len(recs), reqs)
	}
	// Most recent first.
	if recs[0].Events[0].Attrs[0].Int != reqs-1 {
		t.Fatalf("snapshot not most-recent-first: first record i=%d", recs[0].Events[0].Attrs[0].Int)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("duplicate trace id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Sampled {
			t.Fatalf("trace %s marked rate-sampled; it was captured as slow", r.ID)
		}
	}
}

func TestSlowCaptureDisabledAndThreshold(t *testing.T) {
	// Negative threshold, no sampling budget: no request is traced.
	tracer := NewTracer(TracerConfig{SlowQuery: -1})
	if tr := tracer.Start(); tr != nil {
		t.Fatal("tracing disabled but Start returned a trace")
	}
	if d := tracer.Finish(nil); d != 0 {
		t.Fatalf("Finish(nil) = %v, want 0", d)
	}

	// A high threshold starts speculative traces but publishes none of
	// the fast ones.
	tracer = NewTracer(TracerConfig{SlowQuery: time.Hour})
	tr := tracer.Start()
	if tr == nil {
		t.Fatal("armed slow capture must start a speculative trace")
	}
	tracer.Finish(tr)
	if recs := tracer.Snapshot(); len(recs) != 0 {
		t.Fatalf("fast request published %d traces, want 0", len(recs))
	}
}

func TestRateSamplingBudget(t *testing.T) {
	// PerSecond=3, slow capture off: at most 3 traces this second (the
	// loop finishes far inside one second; a second boundary mid-loop can
	// only lower the count below the assert threshold, so allow 3..6).
	tracer := NewTracer(TracerConfig{PerSecond: 3, SlowQuery: -1})
	granted := 0
	for i := 0; i < 50; i++ {
		if tr := tracer.Start(); tr != nil {
			granted++
			tracer.Finish(tr)
		}
	}
	if granted == 0 || granted > 6 {
		t.Fatalf("rate sampler granted %d traces for budget 3/s", granted)
	}
	for _, r := range tracer.Snapshot() {
		if !r.Sampled {
			t.Fatalf("rate-sampled trace %s not marked sampled", r.ID)
		}
	}
}

func TestRingBounded(t *testing.T) {
	tracer := NewTracer(TracerConfig{SlowQuery: 0, RingSize: 4})
	for i := 0; i < 20; i++ {
		tr := tracer.Start()
		tr.Event("e", N("i", int64(i)))
		tracer.Finish(tr)
	}
	recs := tracer.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(recs))
	}
	for j, r := range recs {
		if want := int64(19 - j); r.Events[0].Attrs[0].Int != want {
			t.Fatalf("record %d holds i=%d, want %d (newest first)", j, r.Events[0].Attrs[0].Int, want)
		}
	}
}

func TestEventsMonotoneUnderConcurrency(t *testing.T) {
	// Concurrent recorders (the per-intention-cluster fan-out pattern):
	// the stored event sequence must be monotone in At because the
	// timestamp is taken under the trace lock.
	tracer := NewTracer(TracerConfig{SlowQuery: 0})
	tr := tracer.Start()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Event("worker", N("w", int64(w)))
			}
		}(w)
	}
	wg.Wait()
	tracer.Finish(tr)
	recs := tracer.Snapshot()
	if len(recs) != 1 || len(recs[0].Events) != 8*200 {
		t.Fatalf("got %d records / %d events, want 1 / 1600", len(recs), len(recs[0].Events))
	}
	for i := 1; i < len(recs[0].Events); i++ {
		if recs[0].Events[i].At < recs[0].Events[i-1].At {
			t.Fatalf("events not monotone: event %d at %v after %v", i, recs[0].Events[i].At, recs[0].Events[i-1].At)
		}
	}
	if recs[0].DurationNS < int64(recs[0].Events[len(recs[0].Events)-1].At) {
		t.Fatalf("trace duration %d below last event offset", recs[0].DurationNS)
	}
}

func TestSnapshotConcurrentWithPublish(t *testing.T) {
	// Scrape the ring while writers publish: every record seen must be
	// complete (id set, duration non-negative, events monotone).
	tracer := NewTracer(TracerConfig{SlowQuery: 0, RingSize: 8})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tr := tracer.Start()
				tr.Event("a", N("x", 1))
				tr.Event("b")
				tracer.Finish(tr)
			}
		}()
	}
	for i := 0; i < 500; i++ {
		for _, r := range tracer.Snapshot() {
			if r.ID == "" || r.DurationNS < 0 || len(r.Events) != 2 {
				t.Fatalf("torn trace record: %+v", r)
			}
			if r.Events[1].At < r.Events[0].At {
				t.Fatalf("events out of order in %s", r.ID)
			}
		}
	}
	close(stop)
	wg.Wait()
}
