package obs

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-scoped half of the observability layer. The
// registry metrics answer "how fast is the system on aggregate"; a
// Trace answers "why was *this* query slow": one ordered record of what
// a single request did — which stages ran, how wide each
// per-intention-cluster candidate list was, whether the score-map pool
// hit — with monotonic timestamps. Traces are created per request by a
// Tracer (sampling + slow-query capture policy), threaded through the
// call tree via context.Context at the serve boundary and as a plain
// *Trace below it, and published into a bounded lock-free ring that
// GET /debug/traces snapshots.
//
// Cost model: the untraced path is a nil-pointer check per hook — no
// clock read, no allocation (BenchmarkFig11cRetrievalIntent* gates
// this). A traced request pays one Trace allocation plus one mutex'd
// append per event; events are rare (tens per request) and traced
// requests are rare (sampled or slow), so the tax never lands on the
// steady-state hot path.

// Attr is one key/value annotation of a trace event. Values are kept as
// int64 or string (the two things the pipeline records: counts,
// durations, names) so events marshal to flat JSON.
type Attr struct {
	Key string `json:"key"`
	Str string `json:"str,omitempty"`
	Int int64  `json:"int,omitempty"`
}

// A is a string attribute.
func A(key, value string) Attr { return Attr{Key: key, Str: value} }

// N is an integer attribute.
func N(key string, value int64) Attr { return Attr{Key: key, Int: value} }

// TraceEvent is one timestamped step of a traced request. At is the
// offset from the trace's start; events are stored in the order they
// were recorded, and because the timestamp is taken under the trace's
// lock, At is non-decreasing across the stored sequence even when
// events arrive from concurrent goroutines (the per-intention-cluster
// fan-out records from its workers).
type TraceEvent struct {
	Name  string        `json:"name"`
	At    time.Duration `json:"at_ns"`
	Attrs []Attr        `json:"attrs,omitempty"`
}

// Trace is one request's event record. It is created by Tracer.Start,
// carried via WithTrace/TraceFrom across the serve boundary and as a
// nil-able pointer below it, and becomes immutable once Tracer.Finish
// publishes it. A nil *Trace is valid everywhere and records nothing.
type Trace struct {
	id      uint64
	start   time.Time
	wall    time.Time // wall-clock start, for display only
	sampled bool      // chosen by the rate sampler → always published

	mu       sync.Mutex
	events   []TraceEvent
	duration time.Duration // set by Finish; 0 while in flight
}

// Event records one named step with optional attributes. Safe for
// concurrent use; a nil receiver is a no-op (the untraced fast path).
// The timestamp is taken while holding the trace's lock so the stored
// event sequence is monotone in At.
func (t *Trace) Event(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{Name: name, At: time.Since(t.start), Attrs: attrs})
	t.mu.Unlock()
}

// ID returns the trace's process-unique identifier, formatted as hex.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return strconv.FormatUint(t.id, 16)
}

// Events returns a copy of the events recorded so far, in record order
// (monotone At). The fleet host uses it to ship a remote child trace's
// events back in the RPC reply; a nil receiver returns nil.
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// NewTrace returns a standalone trace that starts now and is not
// attached to any Tracer ring. The fleet host opens one per
// remote-requested trace when it has no local tracer to publish into;
// the caller reads the events back with Events.
func NewTrace() *Trace {
	now := time.Now()
	return &Trace{start: now, wall: now, sampled: true}
}

// TraceRecord is the published, immutable form of a finished trace —
// the GET /debug/traces payload element.
type TraceRecord struct {
	ID         string       `json:"id"`
	Start      time.Time    `json:"start"`
	DurationNS int64        `json:"duration_ns"`
	Sampled    bool         `json:"sampled"` // rate-sampled (false → captured as slow)
	Events     []TraceEvent `json:"events"`
}

// TracerConfig sets a Tracer's capture policy.
type TracerConfig struct {
	// PerSecond is the rate-sampling budget: up to this many requests per
	// wall-clock second get a trace regardless of their latency. 0
	// disables rate sampling.
	PerSecond int
	// SlowQuery is the always-capture threshold: every request whose
	// duration reaches it is published, even outside the sampling budget.
	// 0 captures every request (deterministic capture — the stress test's
	// configuration); negative disables slow capture.
	SlowQuery time.Duration
	// RingSize bounds the retained finished traces. 256 when 0.
	RingSize int
}

// Tracer decides which requests get a Trace and retains the finished
// ones in a bounded lock-free ring. The zero Tracer is unusable; build
// one with NewTracer. One Tracer serves one HTTP server (it is not a
// registry global: tests run isolated tracers side by side).
type Tracer struct {
	cfg    TracerConfig
	nextID atomic.Uint64

	// Rate-sampler state: the current wall-clock second and the number of
	// traces granted in it. The reset race between two requests observing
	// a fresh second is benign — the budget is approximate by design.
	winSec   atomic.Int64
	winCount atomic.Int64

	// ring holds the most recent finished traces. Publication is one
	// atomic counter increment to claim a slot plus one atomic pointer
	// store — no lock on either the publish or the snapshot side.
	ring     []atomic.Pointer[Trace]
	ringNext atomic.Uint64
}

// NewTracer builds a tracer with the given policy.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	return &Tracer{cfg: cfg, ring: make([]atomic.Pointer[Trace], cfg.RingSize)}
}

// Start returns a new Trace for a request the policy wants to observe,
// or nil when the request should run untraced. A trace is started when
// the rate sampler has budget this second, or — speculatively — when
// slow-query capture is armed (the trace is then only published if the
// request turns out slow; see Finish).
func (tr *Tracer) Start() *Trace {
	sampled := false
	if tr.cfg.PerSecond > 0 {
		sec := time.Now().Unix()
		if tr.winSec.Load() != sec {
			tr.winSec.Store(sec)
			tr.winCount.Store(0)
		}
		sampled = tr.winCount.Add(1) <= int64(tr.cfg.PerSecond)
	}
	if !sampled && tr.cfg.SlowQuery < 0 {
		return nil
	}
	now := time.Now()
	return &Trace{id: tr.nextID.Add(1), start: now, wall: now, sampled: sampled}
}

// StartForced returns a new Trace unconditionally, bypassing the rate
// sampler — the path for requests that arrive with an explicit trace
// flag already set by an upstream process (the coordinator's scatter
// marks its shard RPCs). Forced traces are always published by Finish.
func (tr *Tracer) StartForced() *Trace {
	now := time.Now()
	return &Trace{id: tr.nextID.Add(1), start: now, wall: now, sampled: true}
}

// Finish completes a trace and publishes it into the ring if the policy
// keeps it: rate-sampled traces always, speculative traces only when
// the request's duration reached the slow-query threshold. It returns
// the request duration (0 for a nil trace — untraced requests time
// themselves). Finish must be called at most once per trace.
func (tr *Tracer) Finish(t *Trace) time.Duration {
	if t == nil {
		return 0
	}
	d := time.Since(t.start)
	t.mu.Lock()
	t.duration = d
	t.mu.Unlock()
	if t.sampled || (tr.cfg.SlowQuery >= 0 && d >= tr.cfg.SlowQuery) {
		slot := (tr.ringNext.Add(1) - 1) % uint64(len(tr.ring))
		tr.ring[slot].Store(t)
	}
	return d
}

// Snapshot returns the retained finished traces, most recent first.
// Safe to call concurrently with Start/Finish: each published trace is
// immutable, and the atomic pointer loads see either a complete trace
// or an older complete one — never a partially written record.
func (tr *Tracer) Snapshot() []TraceRecord {
	n := len(tr.ring)
	next := tr.ringNext.Load()
	out := make([]TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recently claimed slot.
		slot := (next - 1 - uint64(i)) % uint64(n)
		t := tr.ring[slot].Load()
		if t == nil {
			continue
		}
		t.mu.Lock()
		rec := TraceRecord{
			ID:         t.ID(),
			Start:      t.wall,
			DurationNS: int64(t.duration),
			Sampled:    t.sampled,
			Events:     append([]TraceEvent(nil), t.events...),
		}
		t.mu.Unlock()
		out = append(out, rec)
	}
	return out
}

// traceKey is the context key WithTrace stores under. An unexported
// zero-size type: Value lookups with it never allocate.
type traceKey struct{}

// WithTrace returns a context carrying the trace. The serve layer calls
// it once per traced request; everything below extracts the trace once
// (TraceFrom) and passes the pointer explicitly.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil when the request is
// untraced (including ctx == nil and context.Background()). The nil
// result flows through every instrumentation hook as a no-op.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
