package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// Test metrics are registered once for the whole package test binary —
// the registry forbids duplicate names, so tests share these handles.
var (
	testCounter = NewCounter("test.counter")
	testGauge   = NewGauge("test.gauge")
	testHist    = NewHistogram("test.hist", []int64{10, 100, 1000})
	testSpan    = NewSpan("test.span")
)

func withEnabled(t *testing.T) {
	t.Helper()
	Enable()
	t.Cleanup(Disable)
}

func TestDisabledRecordingIsNoOp(t *testing.T) {
	Disable()
	before := testCounter.Value()
	testCounter.Inc()
	testCounter.Add(5)
	if got := testCounter.Value(); got != before {
		t.Fatalf("disabled counter moved: %d -> %d", before, got)
	}
	gBefore := testGauge.Value()
	testGauge.Set(99)
	testGauge.Add(1)
	if got := testGauge.Value(); got != gBefore {
		t.Fatalf("disabled gauge moved: %d -> %d", gBefore, got)
	}
	hBefore := testHist.Snapshot().Count
	testHist.Observe(5)
	if got := testHist.Snapshot().Count; got != hBefore {
		t.Fatalf("disabled histogram observed: %d -> %d", hBefore, got)
	}
	tm := testSpan.Start()
	if d := tm.Stop(); d != 0 {
		t.Fatalf("disabled span timing returned %v, want 0", d)
	}
}

func TestCounterMonotoneAndNegativeIgnored(t *testing.T) {
	withEnabled(t)
	before := testCounter.Value()
	testCounter.Add(3)
	testCounter.Add(-7) // ignored: counters are monotone by contract
	testCounter.Inc()
	if got := testCounter.Value(); got != before+4 {
		t.Fatalf("counter = %d, want %d", got, before+4)
	}
}

func TestGauge(t *testing.T) {
	withEnabled(t)
	testGauge.Set(42)
	testGauge.Add(-2)
	if got := testGauge.Value(); got != 40 {
		t.Fatalf("gauge = %d, want 40", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	withEnabled(t)
	h := NewHistogram("test.hist.quant", []int64{10, 100, 1000})
	// 100 observations uniform in (0,10]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i%10 + 1))
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	var bucketSum int64
	for _, b := range s.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	if s.P50 <= 0 || s.P50 > 10 {
		t.Fatalf("p50 = %v, want in (0,10]", s.P50)
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P99) {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v", s.P50, s.P90, s.P99)
	}
	if s.Max != 10 {
		t.Fatalf("max bound = %d, want 10", s.Max)
	}

	// Overflow bucket: observations above every bound.
	h.Observe(5000)
	s = h.Snapshot()
	if s.Max != math.MaxInt64 {
		t.Fatalf("max bound = %d, want MaxInt64 (overflow bucket)", s.Max)
	}
	if s.P99 > float64(math.MaxInt64) || s.P99 < 0 {
		t.Fatalf("p99 out of range: %v", s.P99)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	withEnabled(t)
	h := NewHistogram("test.hist.interp", []int64{100})
	for i := 0; i < 100; i++ {
		h.Observe(50)
	}
	s := h.Snapshot()
	// All mass in [0,100]; interpolated p50 must be mid-bucket.
	if s.P50 < 25 || s.P50 > 75 {
		t.Fatalf("p50 = %v, want around 50", s.P50)
	}
	if s.Mean != 50 {
		t.Fatalf("mean = %v, want 50", s.Mean)
	}
}

func TestSpanRecordsDurations(t *testing.T) {
	withEnabled(t)
	before := testSpan.Snapshot().Count
	tm := testSpan.Start()
	time.Sleep(time.Millisecond)
	d := tm.Stop()
	if d < time.Millisecond {
		t.Fatalf("span duration %v < 1ms", d)
	}
	s := testSpan.Snapshot()
	if s.Count != before+1 {
		t.Fatalf("span count = %d, want %d", s.Count, before+1)
	}
	testSpan.Record(2 * time.Millisecond)
	if got := testSpan.Snapshot().Count; got != before+2 {
		t.Fatalf("span count after Record = %d, want %d", got, before+2)
	}
}

func TestStartAlwaysMeasuresWhileDisabled(t *testing.T) {
	Disable()
	countBefore := testSpan.Snapshot().Count
	tm := testSpan.StartAlways()
	time.Sleep(time.Millisecond)
	d := tm.Stop()
	if d < time.Millisecond {
		t.Fatalf("StartAlways duration %v < 1ms while disabled", d)
	}
	if got := testSpan.Snapshot().Count; got != countBefore {
		t.Fatalf("disabled StartAlways recorded into the histogram")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name did not panic")
		}
	}()
	NewCounter("test.counter")
}

func TestSnapshotJSONShape(t *testing.T) {
	withEnabled(t)
	testCounter.Inc()
	testHist.Observe(50)
	testSpan.Record(time.Millisecond)
	raw, err := json.Marshal(Default.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if _, ok := decoded.Counters["test.counter"]; !ok {
		t.Fatal("snapshot missing test.counter")
	}
	if _, ok := decoded.Spans["test.span"]; !ok {
		t.Fatal("snapshot missing test.span")
	}
	if len(Default.Snapshot().SummaryLines()) == 0 {
		t.Fatal("empty summary")
	}
}

// TestConcurrentSnapshotConsistency hammers one histogram from many
// goroutines while snapshotting, asserting every snapshot satisfies the
// count == Σ buckets identity and monotone counts — the "no torn
// snapshot" property the serve stress test rechecks over HTTP.
func TestConcurrentSnapshotConsistency(t *testing.T) {
	withEnabled(t)
	h := NewHistogram("test.hist.torn", DurationBounds())
	c := NewCounter("test.counter.torn")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				v = v*6364136223846793005 + 1442695040888963407
				h.Observe((v >> 33) & 0xFFFFF)
				c.Inc()
			}
		}(int64(w + 1))
	}
	var lastCount, lastCounter int64
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		var bucketSum int64
		for _, b := range s.Buckets {
			bucketSum += b.Count
		}
		if bucketSum != s.Count {
			t.Fatalf("torn snapshot: bucket sum %d != count %d", bucketSum, s.Count)
		}
		if s.Count < lastCount {
			t.Fatalf("histogram count went backwards: %d -> %d", lastCount, s.Count)
		}
		lastCount = s.Count
		if cv := c.Value(); cv < lastCounter {
			t.Fatalf("counter went backwards: %d -> %d", lastCounter, cv)
		} else {
			lastCounter = cv
		}
		if s.Count > 0 && !(s.P50 <= s.P90 && s.P90 <= s.P99) {
			t.Fatalf("quantiles not monotone under load: %v %v %v", s.P50, s.P90, s.P99)
		}
	}
	close(stop)
	wg.Wait()
}
