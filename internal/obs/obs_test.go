package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// Test metrics are registered once for the whole package test binary —
// the registry forbids duplicate names, so tests share these handles.
var (
	testCounter = NewCounter("test.counter")
	testGauge   = NewGauge("test.gauge")
	testHist    = NewHistogram("test.hist", []int64{10, 100, 1000})
	testSpan    = NewSpan("test.span")
)

func withEnabled(t *testing.T) {
	t.Helper()
	Enable()
	t.Cleanup(Disable)
}

func TestDisabledRecordingIsNoOp(t *testing.T) {
	Disable()
	before := testCounter.Value()
	testCounter.Inc()
	testCounter.Add(5)
	if got := testCounter.Value(); got != before {
		t.Fatalf("disabled counter moved: %d -> %d", before, got)
	}
	gBefore := testGauge.Value()
	testGauge.Set(99)
	testGauge.Add(1)
	if got := testGauge.Value(); got != gBefore {
		t.Fatalf("disabled gauge moved: %d -> %d", gBefore, got)
	}
	hBefore := testHist.Snapshot().Count
	testHist.Observe(5)
	if got := testHist.Snapshot().Count; got != hBefore {
		t.Fatalf("disabled histogram observed: %d -> %d", hBefore, got)
	}
	tm := testSpan.Start()
	if d := tm.Stop(); d != 0 {
		t.Fatalf("disabled span timing returned %v, want 0", d)
	}
}

func TestCounterMonotoneAndNegativeIgnored(t *testing.T) {
	withEnabled(t)
	before := testCounter.Value()
	testCounter.Add(3)
	testCounter.Add(-7) // ignored: counters are monotone by contract
	testCounter.Inc()
	if got := testCounter.Value(); got != before+4 {
		t.Fatalf("counter = %d, want %d", got, before+4)
	}
}

func TestGauge(t *testing.T) {
	withEnabled(t)
	testGauge.Set(42)
	testGauge.Add(-2)
	if got := testGauge.Value(); got != 40 {
		t.Fatalf("gauge = %d, want 40", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	withEnabled(t)
	h := NewHistogram("test.hist.quant", []int64{10, 100, 1000})
	// 100 observations uniform in (0,10]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i%10 + 1))
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	var bucketSum int64
	for _, b := range s.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	if s.P50 <= 0 || s.P50 > 10 {
		t.Fatalf("p50 = %v, want in (0,10]", s.P50)
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.P999 && s.P999 <= float64(s.Max)) {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v p999=%v max=%d", s.P50, s.P90, s.P99, s.P999, s.Max)
	}
	if s.Max != 10 {
		t.Fatalf("max bound = %d, want 10", s.Max)
	}

	// Overflow bucket: observations above every bound.
	h.Observe(5000)
	s = h.Snapshot()
	if s.Max != math.MaxInt64 {
		t.Fatalf("max bound = %d, want MaxInt64 (overflow bucket)", s.Max)
	}
	if s.P99 > float64(math.MaxInt64) || s.P99 < 0 {
		t.Fatalf("p99 out of range: %v", s.P99)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	withEnabled(t)
	h := NewHistogram("test.hist.interp", []int64{100})
	for i := 0; i < 100; i++ {
		h.Observe(50)
	}
	s := h.Snapshot()
	// All mass in [0,100]; interpolated p50 must be mid-bucket.
	if s.P50 < 25 || s.P50 > 75 {
		t.Fatalf("p50 = %v, want around 50", s.P50)
	}
	if s.Mean != 50 {
		t.Fatalf("mean = %v, want 50", s.Mean)
	}
}

func TestSpanRecordsDurations(t *testing.T) {
	withEnabled(t)
	before := testSpan.Snapshot().Count
	tm := testSpan.Start()
	time.Sleep(time.Millisecond)
	d := tm.Stop()
	if d < time.Millisecond {
		t.Fatalf("span duration %v < 1ms", d)
	}
	s := testSpan.Snapshot()
	if s.Count != before+1 {
		t.Fatalf("span count = %d, want %d", s.Count, before+1)
	}
	testSpan.Record(2 * time.Millisecond)
	if got := testSpan.Snapshot().Count; got != before+2 {
		t.Fatalf("span count after Record = %d, want %d", got, before+2)
	}
}

func TestStartAlwaysMeasuresWhileDisabled(t *testing.T) {
	Disable()
	countBefore := testSpan.Snapshot().Count
	tm := testSpan.StartAlways()
	time.Sleep(time.Millisecond)
	d := tm.Stop()
	if d < time.Millisecond {
		t.Fatalf("StartAlways duration %v < 1ms while disabled", d)
	}
	if got := testSpan.Snapshot().Count; got != countBefore {
		t.Fatalf("disabled StartAlways recorded into the histogram")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name did not panic")
		}
	}()
	NewCounter("test.counter")
}

// TestDuplicateNamePanicsAcrossKinds pins that uniqueness is enforced
// per name, not per metric kind: a gauge, histogram, or span reusing a
// counter's name is the same programming error.
func TestDuplicateNamePanicsAcrossKinds(t *testing.T) {
	for _, tc := range []struct {
		kind string
		new  func()
	}{
		{"gauge", func() { NewGauge("test.counter") }},
		{"histogram", func() { NewHistogram("test.counter", []int64{1}) }},
		{"span", func() { NewSpan("test.counter") }},
		{"counter vs gauge", func() { NewCounter("test.gauge") }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with a taken name did not panic", tc.kind)
				}
			}()
			tc.new()
		}()
	}
	// The failed registrations must not have corrupted the registry: the
	// original metrics still snapshot under their names.
	snap := Default.Snapshot()
	if _, ok := snap.Counters["test.counter"]; !ok {
		t.Fatal("registry lost test.counter after duplicate registration attempts")
	}
	if _, ok := snap.Gauges["test.gauge"]; !ok {
		t.Fatal("registry lost test.gauge after duplicate registration attempts")
	}
}

func TestFmtNS(t *testing.T) {
	for _, tc := range []struct {
		ns   float64
		want string
	}{
		{0, "0ns"},                   // zero stays in the ns band
		{1, "1ns"},                   // sub-µs
		{999, "999ns"},               // just below the µs band
		{1000, "1.0µs"},              // µs band lower edge
		{1500, "1.5µs"},              //
		{999_999, "1000.0µs"},        // rounds within the µs band
		{1_000_000, "1.00ms"},        // ms band
		{999_999_999, "1000.00ms"},   // just below the s band
		{1_000_000_000, "1.00s"},     // >1s
		{8_600_000_000, "8.60s"},     // top of the DurationBounds range
		{123_456_789_000, "123.46s"}, // far above any bucket
	} {
		if got := fmtNS(tc.ns); got != tc.want {
			t.Errorf("fmtNS(%v) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}

func TestSummaryLines(t *testing.T) {
	withEnabled(t)
	testCounter.Inc()
	testGauge.Set(7)
	testHist.Observe(50)
	testSpan.Record(3 * time.Millisecond)
	lines := Default.Snapshot().SummaryLines()
	if len(lines) == 0 {
		t.Fatal("no summary lines")
	}
	// One line per metric; each metric kind renders its own shape.
	var haveCounter, haveGauge, haveHist, haveSpan bool
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "counter ") && strings.Contains(l, "test.counter"):
			haveCounter = true
		case strings.HasPrefix(l, "gauge ") && strings.Contains(l, "test.gauge"):
			haveGauge = true
			if !strings.Contains(l, " 7") {
				t.Errorf("gauge line missing value: %q", l)
			}
		case strings.HasPrefix(l, "hist ") && strings.Contains(l, "test.hist"):
			haveHist = true
			for _, field := range []string{"count=", "mean=", "p50=", "p99="} {
				if !strings.Contains(l, field) {
					t.Errorf("hist line missing %s: %q", field, l)
				}
			}
		case strings.HasPrefix(l, "span ") && strings.Contains(l, "test.span"):
			haveSpan = true
			if !strings.Contains(l, "total=") || !strings.Contains(l, "ms") {
				t.Errorf("span line missing formatted durations: %q", l)
			}
		}
	}
	if !haveCounter || !haveGauge || !haveHist || !haveSpan {
		t.Fatalf("summary missing a metric kind (counter=%v gauge=%v hist=%v span=%v):\n%s",
			haveCounter, haveGauge, haveHist, haveSpan, strings.Join(lines, "\n"))
	}
	// Lines are sorted by metric name (the 8-column name field).
	for i := 1; i < len(lines); i++ {
		if lines[i][8:] < lines[i-1][8:] {
			t.Fatalf("summary lines not sorted by name:\n%s\n%s", lines[i-1], lines[i])
		}
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	withEnabled(t)
	testCounter.Inc()
	testHist.Observe(50)
	testSpan.Record(time.Millisecond)
	raw, err := json.Marshal(Default.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if _, ok := decoded.Counters["test.counter"]; !ok {
		t.Fatal("snapshot missing test.counter")
	}
	if _, ok := decoded.Spans["test.span"]; !ok {
		t.Fatal("snapshot missing test.span")
	}
	if len(Default.Snapshot().SummaryLines()) == 0 {
		t.Fatal("empty summary")
	}
}

// TestConcurrentSnapshotConsistency hammers one histogram from many
// goroutines while snapshotting, asserting every snapshot satisfies the
// count == Σ buckets identity and monotone counts — the "no torn
// snapshot" property the serve stress test rechecks over HTTP.
func TestConcurrentSnapshotConsistency(t *testing.T) {
	withEnabled(t)
	h := NewHistogram("test.hist.torn", DurationBounds())
	c := NewCounter("test.counter.torn")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				v = v*6364136223846793005 + 1442695040888963407
				h.Observe((v >> 33) & 0xFFFFF)
				c.Inc()
			}
		}(int64(w + 1))
	}
	var lastCount, lastCounter int64
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		var bucketSum int64
		for _, b := range s.Buckets {
			bucketSum += b.Count
		}
		if bucketSum != s.Count {
			t.Fatalf("torn snapshot: bucket sum %d != count %d", bucketSum, s.Count)
		}
		if s.Count < lastCount {
			t.Fatalf("histogram count went backwards: %d -> %d", lastCount, s.Count)
		}
		lastCount = s.Count
		if cv := c.Value(); cv < lastCounter {
			t.Fatalf("counter went backwards: %d -> %d", lastCounter, cv)
		} else {
			lastCounter = cv
		}
		if s.Count > 0 && !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.P999) {
			t.Fatalf("quantiles not monotone under load: %v %v %v %v", s.P50, s.P90, s.P99, s.P999)
		}
	}
	close(stop)
	wg.Wait()
}
