package obs

import (
	"sync"
	"testing"
	"time"
)

// The GetOrNew constructors back the sharding layer's dynamically named
// instruments ("shard.NN.queries"): several Group constructions in one
// process must share one process-wide metric per name instead of
// panicking like the New* constructors do on duplicates.

func TestGetOrNewCounterSharesHandle(t *testing.T) {
	withEnabled(t)
	a := GetOrNewCounter("test.getornew.counter")
	b := GetOrNewCounter("test.getornew.counter")
	if a != b {
		t.Fatal("GetOrNewCounter returned distinct handles for one name")
	}
	a.Inc()
	b.Add(2)
	if got := a.Value(); got != 3 {
		t.Fatalf("shared counter = %d, want 3", got)
	}
	if got := Default.Snapshot().Counters["test.getornew.counter"]; got != 3 {
		t.Fatalf("snapshot counter = %d, want 3", got)
	}
}

func TestGetOrNewSpanSharesHandle(t *testing.T) {
	withEnabled(t)
	a := GetOrNewSpan("test.getornew.span")
	b := GetOrNewSpan("test.getornew.span")
	if a != b {
		t.Fatal("GetOrNewSpan returned distinct handles for one name")
	}
	tm := a.Start()
	time.Sleep(time.Millisecond)
	tm.Stop()
	b.Start().Stop()
	snap := Default.Snapshot().Spans["test.getornew.span"]
	if snap.Count != 2 {
		t.Fatalf("shared span count = %d, want 2", snap.Count)
	}
}

func TestGetOrNewCountHistogramSharesHandle(t *testing.T) {
	withEnabled(t)
	a := GetOrNewCountHistogram("test.getornew.hist")
	b := GetOrNewCountHistogram("test.getornew.hist")
	if a != b {
		t.Fatal("GetOrNewCountHistogram returned distinct handles for one name")
	}
	a.Observe(4)
	b.Observe(400)
	snap := Default.Snapshot().Histograms["test.getornew.hist"]
	if snap.Count != 2 {
		t.Fatalf("shared histogram count = %d, want 2", snap.Count)
	}
	if snap.Sum != 404 {
		t.Fatalf("shared histogram sum = %d, want 404", snap.Sum)
	}
}

func TestGetOrNewReturnsNewRegisteredHandle(t *testing.T) {
	// The GetOrNew constructors and the New* constructors share one
	// namespace: a GetOrNew on a statically registered name hands back
	// that same instrument.
	c := NewCounter("test.getornew.static")
	if got := GetOrNewCounter("test.getornew.static"); got != c {
		t.Fatal("GetOrNewCounter did not return the NewCounter handle")
	}
	// And New* still panics when the name was claimed via GetOrNew.
	GetOrNewCounter("test.getornew.claimed")
	defer func() {
		if recover() == nil {
			t.Fatal("NewCounter on a GetOrNew-claimed name did not panic")
		}
	}()
	NewCounter("test.getornew.claimed")
}

func TestGetOrNewKindMismatchPanics(t *testing.T) {
	GetOrNewCounter("test.getornew.kind.counter")
	GetOrNewSpan("test.getornew.kind.span")
	GetOrNewCountHistogram("test.getornew.kind.hist")
	cases := []struct {
		name string
		call func()
	}{
		{"counter name as span", func() { GetOrNewSpan("test.getornew.kind.counter") }},
		{"counter name as histogram", func() { GetOrNewCountHistogram("test.getornew.kind.counter") }},
		{"span name as counter", func() { GetOrNewCounter("test.getornew.kind.span") }},
		{"span name as histogram", func() { GetOrNewCountHistogram("test.getornew.kind.span") }},
		{"histogram name as counter", func() { GetOrNewCounter("test.getornew.kind.hist") }},
		{"histogram name as span", func() { GetOrNewSpan("test.getornew.kind.hist") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("kind mismatch did not panic")
				}
			}()
			tc.call()
		})
	}
}

func TestGetOrNewCounterConcurrent(t *testing.T) {
	// Racing constructions of one name must converge on a single
	// instrument: every increment lands on the counter the snapshot
	// reports. Run under -race in CI.
	withEnabled(t)
	const workers = 8
	const perWorker = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				GetOrNewCounter("test.getornew.race").Inc()
			}
		}()
	}
	wg.Wait()
	if got := Default.Snapshot().Counters["test.getornew.race"]; got != workers*perWorker {
		t.Fatalf("racing counter = %d, want %d", got, workers*perWorker)
	}
}
