package obs

import (
	"math"
	"sort"
)

// Federated metric merging. The fleet coordinator scrapes each shard's
// raw registry snapshot (GET /internal/metricsz) and folds them into
// one fleet-wide view: counters and gauges add, histograms and spans
// merge bucket-wise. The bucket merge is exact — every obs histogram
// uses fixed power-of-two bounds (DurationBounds / CountBounds), so two
// instances of the same instrument on different shards have identical
// bucket edges and their per-bucket counts simply sum. Quantiles are
// then recomputed from the merged buckets with the same interpolation
// Histogram.Snapshot uses, which is why BucketCount carries its
// exclusive lower bound GT: the merged snapshot is bit-identical to the
// snapshot a single histogram would have produced had it observed the
// combined sample stream (the property TestMergeMatchesCombinedStream
// pins).

// MergeHistogramSnapshots merges bucket-wise and recomputes Count, Sum,
// Mean, quantiles, and Max from the merged buckets. Buckets are keyed
// by their (GT, LE] interval; snapshots taken from histograms with
// different bounds simply contribute disjoint buckets (no error — the
// merge is still a valid histogram, just not one either side recorded).
func MergeHistogramSnapshots(snaps ...HistogramSnapshot) HistogramSnapshot {
	byLE := make(map[int64]*BucketCount)
	var out HistogramSnapshot
	for _, s := range snaps {
		out.Sum += s.Sum
		for _, b := range s.Buckets {
			if have, ok := byLE[b.LE]; ok {
				have.Count += b.Count
			} else {
				bc := b
				byLE[b.LE] = &bc
			}
		}
	}
	if len(byLE) == 0 {
		return out
	}
	out.Buckets = make([]BucketCount, 0, len(byLE))
	for _, b := range byLE {
		out.Buckets = append(out.Buckets, *b)
		out.Count += b.Count
	}
	sort.Slice(out.Buckets, func(i, j int) bool { return out.Buckets[i].LE < out.Buckets[j].LE })
	out.Mean = float64(out.Sum) / float64(out.Count)
	out.P50 = quantileFromBuckets(out.Buckets, out.Count, 0.50)
	out.P90 = quantileFromBuckets(out.Buckets, out.Count, 0.90)
	out.P99 = quantileFromBuckets(out.Buckets, out.Count, 0.99)
	out.P999 = quantileFromBuckets(out.Buckets, out.Count, 0.999)
	out.Max = out.Buckets[len(out.Buckets)-1].LE
	return out
}

// quantileFromBuckets is Histogram.quantile over a sparse bucket list:
// identical rank arithmetic and linear interpolation, with each
// bucket's (GT, LE] standing in for the bounds-slice lookups. Snapshots
// never contain empty buckets, so the skip branch of the original is
// structurally absent rather than skipped.
func quantileFromBuckets(buckets []BucketCount, total int64, q float64) float64 {
	rank := q * float64(total)
	var cum int64
	for _, b := range buckets {
		prev := cum
		cum += b.Count
		if float64(cum) >= rank {
			if b.LE == math.MaxInt64 {
				return float64(b.GT)
			}
			frac := (rank - float64(prev)) / float64(b.Count)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return float64(b.GT) + frac*float64(b.LE-b.GT)
		}
	}
	return float64(math.MaxInt64)
}

// MergeSnapshots folds whole registry snapshots: counters and gauges
// sum per name, histograms and spans merge per name via
// MergeHistogramSnapshots. Names present on only some shards appear
// with the values they have there — a fleet with per-shard instruments
// (fleet.host.NN.*) yields the union.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
		Spans:      make(map[string]HistogramSnapshot),
	}
	histParts := make(map[string][]HistogramSnapshot)
	spanParts := make(map[string][]HistogramSnapshot)
	for _, s := range snaps {
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			out.Gauges[name] += v
		}
		for name, h := range s.Histograms {
			histParts[name] = append(histParts[name], h)
		}
		for name, h := range s.Spans {
			spanParts[name] = append(spanParts[name], h)
		}
	}
	for name, parts := range histParts {
		out.Histograms[name] = MergeHistogramSnapshots(parts...)
	}
	for name, parts := range spanParts {
		out.Spans[name] = MergeHistogramSnapshots(parts...)
	}
	return out
}
