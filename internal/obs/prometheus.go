package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4) so the registry is scrapeable by standard monitoring
// stacks without any client-library dependency. The JSON snapshot stays
// the native format; GET /metrics content-negotiates between the two.
//
// Mapping:
//
//	Counter    → "# TYPE <name>_total counter" + one sample
//	Gauge      → "# TYPE <name> gauge" + one sample
//	Histogram/ → "# TYPE <name> histogram" + cumulative <name>_bucket
//	Span         samples (le="<bound>", always ending in le="+Inf"),
//	             <name>_sum, and <name>_count
//
// Metric names are sanitized to the Prometheus charset (dots and any
// other illegal runes become underscores: core.related →
// core_related). Spans render like histograms; their unit is
// nanoseconds, as documented in the README glossary.

// PrometheusContentType is the Content-Type of the text exposition.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. Output is deterministic: metrics appear in name order within
// each section (counters, gauges, histograms, spans).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	return s.WritePrometheusPrefixed(w, "")
}

// WritePrometheusPrefixed is WritePrometheus with every metric name
// prefixed (after sanitization) — the coordinator's federated /metrics
// uses it to expose each shard's scrape under a fleet_shardNN_
// namespace next to the unprefixed fleet-wide aggregate.
func (s Snapshot) WritePrometheusPrefixed(w io.Writer, prefix string) error {
	pw := &promWriter{w: w}
	for _, name := range sortedKeys(s.Counters) {
		pn := prefix + promName(name) + "_total"
		pw.printf("# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := prefix + promName(name)
		pw.printf("# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		pw.histogram(prefix+promName(name), s.Histograms[name])
	}
	for _, name := range sortedKeys(s.Spans) {
		pw.histogram(prefix+promName(name), s.Spans[name])
	}
	return pw.err
}

// promWriter accumulates the first write error so the render loop stays
// linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (pw *promWriter) printf(format string, args ...any) {
	if pw.err != nil {
		return
	}
	_, pw.err = fmt.Fprintf(pw.w, format, args...)
}

// histogram renders one histogram (or span) metric: cumulative buckets
// over the non-empty bounds, a final +Inf bucket equal to the total
// count, then _sum and _count. The snapshot's buckets are non-empty and
// non-cumulative by construction; the running sum restores the
// cumulative form Prometheus requires.
func (pw *promWriter) histogram(pn string, h HistogramSnapshot) {
	pw.printf("# TYPE %s histogram\n", pn)
	var cum int64
	for _, b := range h.Buckets {
		if b.LE == math.MaxInt64 {
			continue // the overflow bucket is the +Inf sample below
		}
		cum += b.Count
		pw.printf("%s_bucket{le=\"%d\"} %d\n", pn, b.LE, cum)
	}
	pw.printf("%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
	pw.printf("%s_sum %d\n", pn, h.Sum)
	pw.printf("%s_count %d\n", pn, h.Count)
	// Tail-latency SLOs watch P999; expose the precomputed interpolated
	// estimate as a companion gauge so scrapers need not rederive it
	// from the buckets.
	pw.printf("# TYPE %s_p999 gauge\n%s_p999 %g\n", pn, pn, h.P999)
}

// promName sanitizes a registry metric name into the Prometheus metric
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
