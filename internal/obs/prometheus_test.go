package obs

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenSnapshot is a hand-built snapshot covering every metric kind
// and the rendering edge cases: name sanitization (dots, leading
// digit), the overflow bucket folding into +Inf, empty histograms, and
// cumulative bucket restoration.
func goldenSnapshot() Snapshot {
	return Snapshot{
		Counters: map[string]int64{
			"http.related.requests": 1234,
			"http.errors":           0,
		},
		Gauges: map[string]int64{
			"core.docs":          200,
			"runtime.heap_bytes": 52428800,
		},
		Histograms: map[string]HistogramSnapshot{
			"match.query.candidates": {
				Count: 10, Sum: 620, Mean: 62, P50: 48, P90: 112, P99: 126,
				Max: 128,
				Buckets: []BucketCount{
					{LE: 16, Count: 2},
					{LE: 64, Count: 5},
					{LE: 128, Count: 3},
				},
			},
			"empty.hist": {},
			"9starts.with.digit": {
				Count: 3, Sum: 3, Mean: 1, P50: 1, P90: 1, P99: 1, Max: math.MaxInt64,
				Buckets: []BucketCount{
					{LE: 1, Count: 2},
					{LE: math.MaxInt64, Count: 1}, // overflow bucket → +Inf only
				},
			},
		},
		Spans: map[string]HistogramSnapshot{
			"core.related": {
				Count: 4, Sum: 5_000_000, Mean: 1_250_000,
				P50: 900_000, P90: 2_000_000, P99: 2_400_000, Max: 2_097_152,
				Buckets: []BucketCount{
					{LE: 1_048_576, Count: 3},
					{LE: 2_097_152, Count: 1},
				},
			},
		},
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenSnapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(want) != got {
		t.Fatalf("prometheus exposition drifted from %s (rerun with -update if intentional):\n--- want\n%s\n--- got\n%s", path, want, got)
	}
}

func TestWritePrometheusInvariants(t *testing.T) {
	var b strings.Builder
	if err := goldenSnapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Counters gain the _total suffix; names are sanitized.
	for _, want := range []string{
		"# TYPE http_related_requests_total counter",
		"http_related_requests_total 1234",
		"# TYPE core_docs gauge",
		"# TYPE match_query_candidates histogram",
		`match_query_candidates_bucket{le="+Inf"} 10`,
		"match_query_candidates_sum 620",
		"match_query_candidates_count 10",
		"# TYPE core_related histogram",
		"_starts_with_digit_bucket", // leading digit sanitized
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "9starts") {
		t.Error("leading digit not sanitized")
	}
	if strings.Contains(out, "MaxInt64") || strings.Contains(out, "9223372036854775807") {
		t.Error("overflow bucket leaked a finite le=MaxInt64 sample")
	}
	// Cumulative buckets: last finite bucket ≤ +Inf bucket == count.
	if !strings.Contains(out, `match_query_candidates_bucket{le="16"} 2`) ||
		!strings.Contains(out, `match_query_candidates_bucket{le="64"} 7`) ||
		!strings.Contains(out, `match_query_candidates_bucket{le="128"} 10`) {
		t.Errorf("buckets not cumulative:\n%s", out)
	}
}

func TestWritePrometheusLiveRegistryParses(t *testing.T) {
	// The real registry (every metric the process registered) must render
	// without error and with every line shaped like a comment or a
	// "name{labels} value" sample.
	withEnabled(t)
	testCounter.Inc()
	testHist.Observe(50)
	testSpan.Record(1_000_000)
	var b strings.Builder
	if err := Default.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}
