package obs

import (
	"testing"
	"time"
)

// The disabled-path benchmarks are the acceptance evidence for the
// "near-zero overhead when no sink is attached" requirement: every
// disabled operation must be ~1ns and 0 allocs/op (run with -benchmem).

var (
	benchCounter = NewCounter("bench.counter")
	benchHist    = NewDurationHistogram("bench.hist")
	benchSpan    = NewSpan("bench.span")
)

func BenchmarkCounterDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchCounter.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	Enable()
	defer Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchCounter.Inc()
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchHist.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	Enable()
	defer Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchHist.Observe(int64(i))
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSpan.Start().Stop()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	Enable()
	defer Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSpan.Start().Stop()
	}
}

func BenchmarkSpanRecordEnabled(b *testing.B) {
	Enable()
	defer Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSpan.Record(time.Microsecond)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	Enable()
	defer Disable()
	for i := 0; i < 1000; i++ {
		benchHist.Observe(int64(i) * 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := Default.Snapshot(); len(s.Histograms) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
