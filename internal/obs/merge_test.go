package obs

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestMergeMatchesCombinedStream is the federation exactness property:
// merging the per-shard snapshots of N independent sample streams
// bucket-wise must equal — bit for bit, including every interpolated
// quantile — the snapshot of one histogram that observed the combined
// stream. This is what makes the coordinator's ?scope=fleet histograms
// trustworthy rather than approximate.
func TestMergeMatchesCombinedStream(t *testing.T) {
	withEnabled(t)
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*7919 + 1))
		nShards := 2 + rng.Intn(5)
		combined := NewHistogram(fmt.Sprintf("test.merge.combined.%d", trial), DurationBounds())
		parts := make([]HistogramSnapshot, nShards)
		for s := 0; s < nShards; s++ {
			h := NewHistogram(fmt.Sprintf("test.merge.part.%d.%d", trial, s), DurationBounds())
			n := rng.Intn(500) // some shards may record nothing
			for i := 0; i < n; i++ {
				// Log-uniform samples spanning the bucket range, with
				// occasional overflow-bucket outliers.
				v := int64(1) << uint(rng.Intn(36))
				v += rng.Int63n(v)
				h.Observe(v)
				combined.Observe(v)
			}
			parts[s] = h.Snapshot()
		}
		got := MergeHistogramSnapshots(parts...)
		want := combined.Snapshot()
		if got.Count != want.Count || got.Sum != want.Sum {
			t.Fatalf("trial %d: merged count/sum = %d/%d, want %d/%d",
				trial, got.Count, got.Sum, want.Count, want.Sum)
		}
		for _, q := range [...][3]float64{
			{got.Mean, want.Mean, 0}, {got.P50, want.P50, 50},
			{got.P90, want.P90, 90}, {got.P99, want.P99, 99},
			{got.P999, want.P999, 99.9},
		} {
			if q[0] != q[1] {
				t.Fatalf("trial %d: merged q%.1f = %v, want %v (exact)", trial, q[2], q[0], q[1])
			}
		}
		if got.Max != want.Max {
			t.Fatalf("trial %d: merged max = %d, want %d", trial, got.Max, want.Max)
		}
		if len(got.Buckets) != len(want.Buckets) {
			t.Fatalf("trial %d: merged %d buckets, want %d", trial, len(got.Buckets), len(want.Buckets))
		}
		for i := range got.Buckets {
			if got.Buckets[i] != want.Buckets[i] {
				t.Fatalf("trial %d: bucket %d = %+v, want %+v", trial, i, got.Buckets[i], want.Buckets[i])
			}
		}
	}
}

func TestMergeEmptySnapshots(t *testing.T) {
	got := MergeHistogramSnapshots(HistogramSnapshot{}, HistogramSnapshot{})
	if got.Count != 0 || got.Sum != 0 || len(got.Buckets) != 0 {
		t.Fatalf("merge of empties not empty: %+v", got)
	}
}

// TestMergeSnapshotsSumsAndUnions pins the whole-registry merge: counters
// and gauges add per name, names missing on one side pass through, and
// histograms route through the bucket-wise merge.
func TestMergeSnapshotsSumsAndUnions(t *testing.T) {
	a := Snapshot{
		Counters:   map[string]int64{"x": 3, "only.a": 7},
		Gauges:     map[string]int64{"g": 10},
		Histograms: map[string]HistogramSnapshot{"h": {Count: 2, Sum: 30, Buckets: []BucketCount{{LE: 16, GT: 8, Count: 2}}}},
		Spans:      map[string]HistogramSnapshot{},
	}
	b := Snapshot{
		Counters:   map[string]int64{"x": 5, "only.b": 1},
		Gauges:     map[string]int64{"g": 4},
		Histograms: map[string]HistogramSnapshot{"h": {Count: 1, Sum: 100, Buckets: []BucketCount{{LE: 128, GT: 64, Count: 1}}}},
		Spans:      map[string]HistogramSnapshot{},
	}
	m := MergeSnapshots(a, b)
	if m.Counters["x"] != 8 || m.Counters["only.a"] != 7 || m.Counters["only.b"] != 1 {
		t.Fatalf("counters = %v", m.Counters)
	}
	if m.Gauges["g"] != 14 {
		t.Fatalf("gauges = %v", m.Gauges)
	}
	h := m.Histograms["h"]
	if h.Count != 3 || h.Sum != 130 || len(h.Buckets) != 2 || h.Max != 128 {
		t.Fatalf("merged histogram = %+v", h)
	}
	if !(h.P50 <= h.P90 && h.P90 <= h.P99 && h.P99 <= h.P999 && h.P999 <= float64(h.Max)) {
		t.Fatalf("merged quantiles not monotone: %+v", h)
	}
}

// TestP999Monotone drives a heavy-tailed stream and asserts the full
// quantile chain P50 ≤ P90 ≤ P99 ≤ P999 ≤ Max, including the overflow
// bucket (where P999 reports the largest finite bound).
func TestP999Monotone(t *testing.T) {
	withEnabled(t)
	h := NewHistogram("test.hist.p999", DurationBounds())
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10_000; i++ {
		v := int64(1000) + rng.Int63n(1_000_000)
		if rng.Intn(1000) == 0 {
			v = math.MaxInt64/2 + rng.Int63n(1000) // overflow-bucket outlier
		}
		h.Observe(v)
	}
	s := h.Snapshot()
	if !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.P999 && s.P999 <= float64(s.Max)) {
		t.Fatalf("quantile chain broken: p50=%v p90=%v p99=%v p999=%v max=%d",
			s.P50, s.P90, s.P99, s.P999, s.Max)
	}
	if s.P999 < s.P99 {
		t.Fatalf("p999 %v below p99 %v on heavy tail", s.P999, s.P99)
	}
}
