package obs

import (
	"testing"
	"time"
)

func TestRuntimePollerPopulatesGauges(t *testing.T) {
	withEnabled(t)
	stop := StartRuntimePoller(10 * time.Millisecond)
	defer stop()
	// The poller samples once synchronously at start.
	if gaugeGoroutines.Value() <= 0 {
		t.Fatalf("runtime.goroutines = %d, want > 0", gaugeGoroutines.Value())
	}
	if gaugeHeapBytes.Value() <= 0 {
		t.Fatalf("runtime.heap_bytes = %d, want > 0", gaugeHeapBytes.Value())
	}
	if gaugeGCCount.Value() < 0 {
		t.Fatalf("runtime.gc_count = %d, want >= 0", gaugeGCCount.Value())
	}
	snap := Default.Snapshot()
	for _, name := range []string{"runtime.goroutines", "runtime.heap_bytes", "runtime.gc_count"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("snapshot missing gauge %q", name)
		}
	}
	// Stop is idempotent and does not deadlock.
	stop()
	stop()
}
