package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// Registry holds every registered metric. Registration happens at
// package init time of the instrumented packages and is mutex-guarded;
// the metric handles themselves are lock-free, so the registry is never
// touched on a record path. handles maps each registered name to its
// metric handle, which is what lets the GetOrNew constructors hand back
// an existing instrument instead of panicking — the sharding layer
// creates per-shard instruments at Group construction time, and two
// groups in one process (tests, a rebuild) legitimately share names.
type Registry struct {
	mu       sync.Mutex
	handles  map[string]any
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	spans    []*Span
}

// Default is the process-wide registry every NewCounter/NewGauge/
// NewHistogram/NewSpan registers into.
var Default = &Registry{handles: make(map[string]any)}

// register adds a metric under a unique name. It panics on duplicates:
// metric names are compile-time constants of the instrumented packages,
// so a collision is a programming error, not runtime input. Dynamically
// named instruments (per-shard labels) go through getOrRegister instead.
func (r *Registry) register(name string, handle any, add func(*Registry)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.handles[name]; taken {
		panic(fmt.Sprintf("obs: duplicate metric name %q", name))
	}
	r.handles[name] = handle
	add(r)
}

// getOrRegister returns the handle already registered under name, or —
// when the name is free — registers and returns the handle produced by
// make. The caller asserts the handle's kind and panics on mismatch
// (reusing a name across metric kinds is the same programming error New*
// rejects).
func (r *Registry) getOrRegister(name string, make func() any, add func(*Registry, any)) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, taken := r.handles[name]; taken {
		return h
	}
	h := make()
	r.handles[name] = h
	add(r, h)
	return h
}

// Snapshot is a point-in-time view of the whole registry, shaped for
// JSON (the GET /metrics payload). Counter values are monotone across
// snapshots; histogram/span bucket counts are monotone per bucket and
// internally consistent (see HistogramSnapshot).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      map[string]HistogramSnapshot `json:"spans"`
}

// Snapshot captures every registered metric. Safe to call concurrently
// with recording and with registration.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := r.counters[:len(r.counters):len(r.counters)]
	gauges := r.gauges[:len(r.gauges):len(r.gauges)]
	hists := r.hists[:len(r.hists):len(r.hists)]
	spans := r.spans[:len(r.spans):len(r.spans)]
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
		Spans:      make(map[string]HistogramSnapshot, len(spans)),
	}
	for _, c := range counters {
		s.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		s.Gauges[g.name] = g.Value()
	}
	for _, h := range hists {
		s.Histograms[h.name] = h.Snapshot()
	}
	for _, sp := range spans {
		s.Spans[sp.hist.name] = sp.hist.Snapshot()
	}
	return s
}

// MarshalJSON renders the snapshot with sorted keys (encoding/json
// already sorts map keys; this method only exists to keep the output
// format a deliberate, documented contract).
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type plain Snapshot // avoid recursion
	return json.Marshal(plain(s))
}

// SummaryLines renders a human-readable digest of the snapshot — one
// line per metric, sorted by name — for log output (cmd/experiments
// prints it after the report).
func (s Snapshot) SummaryLines() []string {
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("counter %-32s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("gauge   %-32s %d", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("hist    %-32s count=%d mean=%.1f p50=%.1f p99=%.1f p999=%.1f", name, h.Count, h.Mean, h.P50, h.P99, h.P999))
	}
	for name, h := range s.Spans {
		lines = append(lines, fmt.Sprintf("span    %-32s count=%d mean=%s p50=%s p99=%s p999=%s total=%s",
			name, h.Count, fmtNS(h.Mean), fmtNS(h.P50), fmtNS(h.P99), fmtNS(h.P999), fmtNS(float64(h.Sum))))
	}
	sortLinesByName(lines)
	return lines
}

// fmtNS renders a nanosecond quantity with an adaptive unit.
func fmtNS(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func sortLinesByName(lines []string) {
	sort.Slice(lines, func(i, j int) bool { return lines[i][8:] < lines[j][8:] })
}
