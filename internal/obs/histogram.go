package obs

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram over int64-valued observations
// (durations in nanoseconds, counts, sizes). Buckets are defined by a
// sorted slice of inclusive upper bounds; one implicit overflow bucket
// catches everything above the last bound. Observation is two atomic
// adds; there is no lock anywhere on the record path.
type Histogram struct {
	name   string
	bounds []int64 // sorted inclusive upper bounds; len(buckets) == len(bounds)+1
	counts []atomic.Int64
	sum    atomic.Int64
}

// NewHistogram creates and registers a histogram with the given
// inclusive upper bounds (which must be sorted ascending). The bounds
// slice is retained.
func NewHistogram(name string, bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be sorted ascending: " + name)
		}
	}
	h := &Histogram{name: name, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	Default.register(name, h, func(r *Registry) { r.hists = append(r.hists, h) })
	return h
}

// GetOrNewCountHistogram returns the CountBounds histogram registered
// under name, creating and registering it if the name is free — the
// histogram counterpart of GetOrNewCounter for dynamically named
// (per-shard) instruments. It panics if the name is taken by a
// different metric kind.
func GetOrNewCountHistogram(name string) *Histogram {
	got := Default.getOrRegister(name,
		func() any {
			bounds := CountBounds()
			return &Histogram{name: name, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		},
		func(r *Registry, h any) { r.hists = append(r.hists, h.(*Histogram)) })
	h, ok := got.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric name %q is registered as a different kind", name))
	}
	return h
}

// DurationBounds are the default latency bounds: exponential from 1µs
// to ~8.6s in powers of two (24 buckets plus overflow). They cover the
// paper's whole dynamic range — Fig 11(c) reports queries in the 100µs
// to 100ms band, and the offline build phases run seconds.
func DurationBounds() []int64 {
	bounds := make([]int64, 24)
	v := int64(1000) // 1µs in ns
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// CountBounds are the default size bounds: exponential from 1 to 2^19
// in powers of two. They suit candidate-set sizes, heap sizes, and
// per-query list counts.
func CountBounds() []int64 {
	bounds := make([]int64, 20)
	v := int64(1)
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// NewDurationHistogram creates a histogram with DurationBounds.
func NewDurationHistogram(name string) *Histogram {
	return NewHistogram(name, DurationBounds())
}

// NewCountHistogram creates a histogram with CountBounds.
func NewCountHistogram(name string) *Histogram {
	return NewHistogram(name, CountBounds())
}

// Observe records one value. It is a no-op while recording is disabled.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	h.counts[h.bucket(v)].Add(1)
	h.sum.Add(v)
}

// bucket returns the index of the bucket v falls into, by binary search
// over the upper bounds.
func (h *Histogram) bucket(v int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// HistogramSnapshot is a consistent point-in-time view of a histogram.
// Count is derived from Buckets (never tracked separately), so
// Count == Σ Buckets[i].Count holds for every snapshot even while
// writers are recording — the property the serve-layer stress test
// asserts ("no torn snapshots"). Sum is read after the buckets; a value
// recorded between the two reads can make Mean drift by at most one
// observation, but never break the count/bucket identity.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Mean    float64       `json:"mean"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	P999    float64       `json:"p999"`
	Max     int64         `json:"max_bound"` // upper bound of highest non-empty bucket
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket: the inclusive upper
// bound LE ("less or equal", math.MaxInt64 for the overflow bucket),
// the exclusive lower bound GT ("greater than", 0 for the first
// bucket), and the number of observations in it (non-cumulative). GT is
// carried so a consumer that only has the snapshot — the coordinator
// merging remote shard scrapes — can recompute interpolated quantiles
// exactly, without knowing the histogram's full bounds slice.
type BucketCount struct {
	LE    int64 `json:"le"`
	GT    int64 `json:"gt,omitempty"`
	Count int64 `json:"count"`
}

// Snapshot returns a consistent view of the histogram. Safe to call
// concurrently with Observe.
func (h *Histogram) Snapshot() HistogramSnapshot {
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, Sum: h.sum.Load()}
	if total == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(total)
	s.P50 = h.quantile(counts, total, 0.50)
	s.P90 = h.quantile(counts, total, 0.90)
	s.P99 = h.quantile(counts, total, 0.99)
	s.P999 = h.quantile(counts, total, 0.999)
	for i := len(counts) - 1; i >= 0; i-- {
		if counts[i] > 0 {
			s.Max = h.upper(i)
			break
		}
	}
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, BucketCount{LE: h.upper(i), GT: h.lower(i), Count: c})
		}
	}
	return s
}

// upper returns bucket i's inclusive upper bound (MaxInt64 for the
// overflow bucket).
func (h *Histogram) upper(i int) int64 {
	if i < len(h.bounds) {
		return h.bounds[i]
	}
	return math.MaxInt64
}

// lower returns bucket i's exclusive lower bound (0 below the first).
func (h *Histogram) lower(i int) int64 {
	if i == 0 {
		return 0
	}
	return h.bounds[i-1]
}

// quantile estimates the q-quantile (0 < q < 1) by locating the bucket
// containing the q·total-th observation and interpolating linearly
// inside it. The estimate is bounded by the bucket's bounds, so
// quantiles are always within the recorded range and monotone in q for
// a fixed counts slice.
func (h *Histogram) quantile(counts []int64, total int64, q float64) float64 {
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) >= rank {
			lo, hi := h.lower(i), h.upper(i)
			if hi == math.MaxInt64 {
				// Overflow bucket has no finite width; report its lower
				// bound (the largest finite bound).
				return float64(lo)
			}
			frac := (rank - float64(prev)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return float64(lo) + frac*float64(hi-lo)
		}
	}
	return float64(h.upper(len(counts) - 1))
}
