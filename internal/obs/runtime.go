package obs

import (
	"runtime"
	"sync"
	"time"
)

// Runtime health gauges: process-level vitals next to the pipeline's
// own metrics, so one /metrics scrape answers "is the process healthy"
// as well as "is the pipeline fast". Registered at package init like
// every other metric; they read zero until a poller runs.
var (
	gaugeGoroutines = NewGauge("runtime.goroutines")
	gaugeHeapBytes  = NewGauge("runtime.heap_bytes")
	gaugeGCCount    = NewGauge("runtime.gc_count")
)

// StartRuntimePoller samples runtime.NumGoroutine and runtime.MemStats
// into the runtime.* gauges every interval (1s when 0) until the
// returned stop function is called. cmd/serve starts one at boot; tests
// start and stop their own. Stop is idempotent and waits for the
// polling goroutine to exit.
func StartRuntimePoller(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	pollRuntimeGauges() // populate immediately; the ticker only refreshes
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				pollRuntimeGauges()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}

// pollRuntimeGauges reads the runtime vitals once. ReadMemStats
// stop-the-worlds briefly (microseconds at serving heap sizes), which
// is why sampling is a background poller instead of a per-scrape read.
func pollRuntimeGauges() {
	gaugeGoroutines.Set(int64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gaugeHeapBytes.Set(int64(ms.HeapAlloc))
	gaugeGCCount.Set(int64(ms.NumGC))
}
