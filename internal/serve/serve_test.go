package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/forum"
	"repro/internal/obs"
)

// testPipeline builds one shared intention pipeline for the endpoint
// tests (the build is the expensive part; the handlers are cheap).
var testPipeline = sync.OnceValue(func() *core.Pipeline {
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 150, Seed: 42})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	p, err := core.Build(texts, core.Config{Seed: 42})
	if err != nil {
		panic(err)
	}
	return p
})

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	return newTestServerCfg(t, Config{})
}

// newTestServerCfg serves the shared test pipeline with a specific
// observability configuration (each server has its own tracer and
// logger; only the obs registry is process-global).
func newTestServerCfg(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	obs.Enable()
	t.Cleanup(obs.Disable)
	ts := httptest.NewServer(New(testPipeline(), cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
	}
	return resp
}

func TestRelatedEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/related", `{"doc_id": 3, "k": 5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	var rr RelatedResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.DocID != 3 || rr.K != 5 {
		t.Fatalf("echoed doc_id/k = %d/%d, want 3/5", rr.DocID, rr.K)
	}
	if len(rr.Results) == 0 || len(rr.Results) > 5 {
		t.Fatalf("got %d results, want 1..5", len(rr.Results))
	}
	for i, r := range rr.Results {
		if r.DocID == 3 {
			t.Fatal("results include the query document")
		}
		if i > 0 && r.Score > rr.Results[i-1].Score {
			t.Fatal("results not in descending score order")
		}
	}
}

func TestRelatedDefaultsK(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/related", `{"doc_id": 0}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	var rr RelatedResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.K != 5 {
		t.Fatalf("default k = %d, want 5", rr.K)
	}
}

func TestRelatedErrors(t *testing.T) {
	ts := newTestServer(t)
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"unknown doc", `{"doc_id": 999999}`, http.StatusNotFound},
		{"negative doc", `{"doc_id": -1}`, http.StatusNotFound},
		{"bad k", `{"doc_id": 0, "k": 101}`, http.StatusBadRequest},
		{"negative k", `{"doc_id": 0, "k": -2}`, http.StatusBadRequest},
		{"malformed", `{"doc_id": `, http.StatusBadRequest},
		{"unknown field", `{"doc": 3}`, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, ts.URL+"/related", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, resp.StatusCode, tc.status, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body not JSON with error field: %s", tc.name, body)
		}
	}
	// Method not allowed comes from the mux's method patterns.
	resp := getJSON(t, ts.URL+"/related", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /related status = %d, want 405", resp.StatusCode)
	}
}

func TestAddEndpointRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	var st StatsResponse
	getJSON(t, ts.URL+"/stats", &st)
	text := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 1, Seed: 7})[0].Text
	resp, body := postJSON(t, ts.URL+"/add", fmt.Sprintf(`{"text": %q}`, text))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	var ar AddResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.DocID < st.NumDocs {
		t.Fatalf("new doc id %d below pre-add collection size %d", ar.DocID, st.NumDocs)
	}
	// The added post is immediately queryable.
	resp, body = postJSON(t, ts.URL+"/related", fmt.Sprintf(`{"doc_id": %d, "k": 3}`, ar.DocID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query of added doc: status = %d, body = %s", resp.StatusCode, body)
	}
}

func TestAddErrors(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/add", `{"text": "   "}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty text status = %d, want 400", resp.StatusCode)
	}
	// Oversized body → 413.
	big := strings.Repeat("x", maxBodyBytes+1024)
	resp, _ = postJSON(t, ts.URL+"/add", fmt.Sprintf(`{"text": %q}`, big))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", resp.StatusCode)
	}
}

func TestAddUnsupportedMethod(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 30, Seed: 42})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	p, err := core.Build(texts, core.Config{Method: core.FullText, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(p, Config{}).Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/add", `{"text": "hello world"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("FullText add status = %d, want 422 (body %s)", resp.StatusCode, body)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var st StatsResponse
	if resp := getJSON(t, ts.URL+"/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if st.Method != "IntentIntent-MR" {
		t.Fatalf("method = %q", st.Method)
	}
	if st.NumDocs < 150 || st.NumSegments == 0 || st.NumClusters == 0 {
		t.Fatalf("implausible sizes: %+v", st)
	}
	for _, phase := range []string{"preprocess", "segmentation", "vectorization", "clustering", "refinement", "grouping", "indexing"} {
		if _, ok := st.PhaseNS[phase]; !ok {
			t.Fatalf("phase_ns missing %q", phase)
		}
	}
	if len(st.Granularity.Before) == 0 || len(st.Granularity.After) == 0 {
		t.Fatalf("empty granularity: %+v", st.Granularity)
	}
	var sum float64
	for _, v := range st.Granularity.After {
		sum += v
	}
	if sum < 99.0 || sum > 101.0 {
		t.Fatalf("granularity percentages sum to %v, want ~100", sum)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// Drive one query so the spans are non-empty.
	postJSON(t, ts.URL+"/related", `{"doc_id": 1, "k": 3}`)
	var snap obs.Snapshot
	if resp := getJSON(t, ts.URL+"/metrics", &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if snap.Counters["http.related.requests"] == 0 {
		t.Fatal("http.related.requests not counted")
	}
	if snap.Spans["core.related"].Count == 0 {
		t.Fatal("core.related span empty after a query")
	}
	if snap.Spans["match.query"].Count == 0 {
		t.Fatal("match.query span empty after a query")
	}
	if snap.Histograms["index.query.candidates"].Count == 0 {
		t.Fatal("index.query.candidates empty after a query")
	}
}

func TestHealthzAndPprof(t *testing.T) {
	ts := newTestServer(t)
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof goroutine status = %d", resp.StatusCode)
	}
}
