// Serving hygiene for the /related hot path: the result cache,
// singleflight collapsing, and bounded admission of internal/cache,
// wired around both the single-process Server and the fleet
// coordinator surface. Everything here is opt-in through Config; with
// the knobs at their zero values the handlers take their original code
// paths and the server's responses are byte-identical to a build
// without this layer.
//
// Layer order on a request (see DESIGN.md §10):
//
//	cache.Get ── hit: write cached bytes, done (no admission cost)
//	   │ miss
//	singleflight.Do ── follower: wait for the leader's entry
//	   │ leader
//	admission.Acquire ── queue full: typed 503 + Retry-After
//	   │ slot
//	compute → encode → cache.Put (complete 200s at an unchanged epoch only)
//
// Correctness is carried by the epoch in the cache key (the pipeline's
// mutation counter, or the coordinator's fleet-wide cache epoch): any
// Add/commit/load — and, fleet-side, any degradation — advances it, so
// stale entries become unreachable instead of being hunted down.
package serve

import (
	"context"
	"encoding/json"
	"net/http"

	"repro/internal/cache"
	"repro/internal/obs"
)

// hygiene is the per-server bundle of hygiene layers; nil fields mean
// the corresponding knob is off.
type hygiene struct {
	cache  *cache.ResultCache
	flight *cache.Flight
	admit  *cache.Admission

	// testHookCompute, when set, runs at the start of every hygiene-path
	// compute: after cache lookup, singleflight election, and admission
	// granting a slot. Tests use it to hold a leader in flight or to
	// keep admission slots occupied; production never sets it.
	testHookCompute func()
}

// newHygiene builds the layers cfg enables. The cache and singleflight
// come as a pair: collapsing works on the same keys and exists to keep
// a thundering herd from computing what the cache is about to hold.
func newHygiene(cfg Config) hygiene {
	var h hygiene
	if cfg.CacheEntries > 0 {
		h.cache = cache.New(cfg.CacheEntries)
		h.flight = cache.NewFlight()
	}
	if cfg.MaxInflight > 0 {
		h.admit = cache.NewAdmission(cfg.MaxInflight, cfg.MaxQueued)
	}
	return h
}

// enabled reports whether any hygiene layer is on; false routes
// handlers onto their original, byte-identical code paths.
func (h *hygiene) enabled() bool { return h.cache != nil || h.admit != nil }

// encodeBody marshals v exactly as writeJSON would serialize it —
// json.Encoder with two-space indent appends MarshalIndent's output
// plus one newline — so a cached body is byte-for-byte what a cache
// miss writes.
func encodeBody(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// writeRawJSON writes a pre-encoded JSON body.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body) // client went away; nothing useful to do
}

// writeOverloaded answers a shed request: the typed overloaded
// envelope plus Retry-After, the contract the load generator and
// clients back off on. Sheds are immediate (the queue was full), so
// the hint is the smallest the header's integer form allows.
func writeOverloaded(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]ErrorBody{
		"error": {Kind: "overloaded", Message: "in-flight limit and wait queue full; retry with backoff"},
	})
}

// hygieneError terminates a hygiene-path request that failed before
// compute produced a body: a shed, or the caller's context ending
// while queued or waiting on a flight.
func hygieneError(w http.ResponseWriter, err error, tr *obs.Trace) {
	switch err {
	case cache.ErrOverloaded:
		if tr != nil {
			tr.Event("admit.shed")
		}
		writeOverloaded(w)
	case context.Canceled:
		writeJSON(w, 499, map[string]ErrorBody{"error": {Kind: "canceled", Message: err.Error()}})
	case context.DeadlineExceeded:
		writeJSON(w, http.StatusGatewayTimeout, map[string]ErrorBody{"error": {Kind: "deadline", Message: err.Error()}})
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]ErrorBody{"error": {Kind: "internal", Message: err.Error()}})
	}
}

// relatedHygiene is the shared hygiene-path skeleton of both /related
// handlers. key carries the collection epoch read at request start;
// compute produces the full encoded entry (and decides what to cache).
func (h *hygiene) relatedHygiene(ctx context.Context, key cache.Key, tr *obs.Trace, compute func() (cache.Entry, error)) (cache.Entry, error) {
	if h.cache != nil {
		if e, ok := h.cache.Get(key); ok {
			if tr != nil {
				tr.Event("cache.hit", obs.N("epoch", int64(key.Epoch)))
			}
			return e, nil
		}
		if tr != nil {
			tr.Event("cache.miss", obs.N("epoch", int64(key.Epoch)))
		}
	}
	if h.flight == nil {
		return compute()
	}
	e, err, leader := h.flight.Do(ctx, key, compute)
	if !leader && tr != nil && err == nil {
		tr.Event("singleflight.follower")
	}
	return e, err
}

// computeCtx is the context a hygiene compute runs under. With
// singleflight on, the leader's work is shared by followers whose own
// requests are still live, so the compute detaches from the leader's
// cancellation (values — the trace — are preserved); one impatient
// client must not poison the herd. Without collapsing the work belongs
// to exactly one request and stays cancelable, which is also what lets
// a queued admission wait unwind when its client gives up.
func (h *hygiene) computeCtx(ctx context.Context) context.Context {
	if h.flight != nil {
		return context.WithoutCancel(ctx)
	}
	return ctx
}
