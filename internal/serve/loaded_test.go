package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestServeLoadedPipeline is the regression test for serving a restored
// snapshot (the cmd/serve -load path): pipelines loaded by ReadPipeline
// carry no prepared documents, and id validation must still accept
// every id of the persisted collection — the bug where Doc-based
// validation 404'd every query against a loaded pipeline. Results must
// match the building pipeline's results exactly, and out-of-range ids
// must still 404.
func TestServeLoadedPipeline(t *testing.T) {
	built := testPipeline()
	var buf bytes.Buffer
	if _, err := built.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.ReadPipeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	obs.Enable()
	t.Cleanup(obs.Disable)
	builtSrv := httptest.NewServer(New(built, Config{}).Handler())
	t.Cleanup(builtSrv.Close)
	loadedSrv := httptest.NewServer(New(loaded, Config{}).Handler())
	t.Cleanup(loadedSrv.Close)

	for _, doc := range []int{0, 3, 17, built.Stats().NumDocs - 1} {
		body, err := json.Marshal(map[string]any{"doc_id": doc, "k": 5})
		if err != nil {
			t.Fatal(err)
		}
		resA, bodyA := postJSON(t, builtSrv.URL+"/related", string(body))
		resB, bodyB := postJSON(t, loadedSrv.URL+"/related", string(body))
		if resA.StatusCode != 200 || resB.StatusCode != 200 {
			t.Fatalf("doc %d: built %d, loaded %d (want 200/200): %s", doc, resA.StatusCode, resB.StatusCode, bodyB)
		}
		if !bytes.Equal(bodyA, bodyB) {
			t.Fatalf("doc %d: loaded-pipeline response diverges:\nbuilt:  %s\nloaded: %s", doc, bodyA, bodyB)
		}
	}

	// Out-of-range ids still 404 on the loaded server.
	res, _ := postJSON(t, loadedSrv.URL+"/related", `{"doc_id": 99999}`)
	if res.StatusCode != 404 {
		t.Fatalf("out-of-range id on loaded pipeline: status %d, want 404", res.StatusCode)
	}
}
