// Package serve is the long-running HTTP face of the pipeline: the
// PR 1 RWMutex serving layer (core.Pipeline.Related/Add interleaving
// freely) exposed as JSON endpoints, with the obs registry scrapeable
// at runtime and net/http/pprof wired in. cmd/serve is the thin binary
// around it; the handler is separated here so the -race stress test can
// drive it through httptest.
//
// Endpoints:
//
//	POST /related        {"doc_id": 3, "k": 5}  → top-k related posts
//	POST /add            {"text": "<raw post>"} → new document id
//	GET  /stats          offline BuildStats + Table 3 granularity
//	GET  /metrics        obs registry snapshot (counters, gauges,
//	                     histograms, spans) as JSON
//	GET  /healthz        liveness probe
//	GET  /debug/pprof/   net/http/pprof profiles
package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
)

// HTTP-surface metrics. The core.related/core.add spans time the
// pipeline operations themselves; these counters track the protocol
// layer around them (request counts by endpoint, error responses), the
// monotone quantities the stress test asserts across /metrics scrapes.
var (
	ctrRelatedRequests = obs.NewCounter("http.related.requests")
	ctrAddRequests     = obs.NewCounter("http.add.requests")
	ctrMetricsRequests = obs.NewCounter("http.metrics.requests")
	ctrStatsRequests   = obs.NewCounter("http.stats.requests")
	ctrErrors          = obs.NewCounter("http.errors")
)

// maxBodyBytes bounds request bodies; forum posts are kilobytes, so a
// megabyte leaves two orders of magnitude of headroom.
const maxBodyBytes = 1 << 20

// Server serves one built pipeline over HTTP. All handlers are safe for
// arbitrary concurrency: they only touch the pipeline through its
// locked public surface and the obs registry through atomic snapshots.
type Server struct {
	p   *core.Pipeline
	mux *http.ServeMux
}

// New wraps a built pipeline in an HTTP server. The pprof handlers are
// registered on the server's own mux (not http.DefaultServeMux), so
// binaries embedding several servers do not collide.
func New(p *core.Pipeline) *Server {
	s := &Server{p: p, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /related", s.handleRelated)
	s.mux.HandleFunc("POST /add", s.handleAdd)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// RelatedRequest is the POST /related payload.
type RelatedRequest struct {
	DocID int `json:"doc_id"`
	K     int `json:"k"` // 0 → default 5, capped at 100
}

// RelatedResult is one entry of a RelatedResponse.
type RelatedResult struct {
	DocID int     `json:"doc_id"`
	Score float64 `json:"score"`
}

// RelatedResponse is the POST /related reply.
type RelatedResponse struct {
	DocID   int             `json:"doc_id"`
	K       int             `json:"k"`
	Results []RelatedResult `json:"results"`
}

// AddRequest is the POST /add payload: one raw post (may contain HTML).
type AddRequest struct {
	Text string `json:"text"`
}

// AddResponse is the POST /add reply.
type AddResponse struct {
	DocID int `json:"doc_id"`
}

// StatsResponse is the GET /stats reply: the offline build breakdown
// (core.Stats, durations in nanoseconds) plus the Table 3 segment
// granularity distribution of the current collection.
type StatsResponse struct {
	Method      string            `json:"method"`
	NumDocs     int               `json:"num_docs"`
	NumSegments int               `json:"num_segments"`
	NumClusters int               `json:"num_clusters"`
	PhaseNS     map[string]int64  `json:"phase_ns"`
	Granularity GranularityReport `json:"granularity"`
}

// GranularityReport carries the Table 3 rows: the share of posts with
// 1, 2, 3, 4, and 5+ segments, before grouping and after refinement.
type GranularityReport struct {
	Buckets []string           `json:"buckets"`
	Before  map[string]float64 `json:"before,omitempty"`
	After   map[string]float64 `json:"after,omitempty"`
}

func (s *Server) handleRelated(w http.ResponseWriter, r *http.Request) {
	ctrRelatedRequests.Inc()
	var req RelatedRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.K == 0 {
		req.K = 5
	}
	if req.K < 0 || req.K > 100 {
		writeError(w, http.StatusBadRequest, "k must be in [1,100]")
		return
	}
	// Doc validates the id under the pipeline lock, distinguishing a
	// 404 from an empty (but valid) result list.
	if s.p.Doc(req.DocID) == nil {
		writeError(w, http.StatusNotFound, "unknown doc_id")
		return
	}
	results := s.p.Related(req.DocID, req.K)
	resp := RelatedResponse{DocID: req.DocID, K: req.K, Results: make([]RelatedResult, len(results))}
	for i, res := range results {
		resp.Results[i] = RelatedResult{DocID: res.DocID, Score: res.Score}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	ctrAddRequests.Inc()
	var req AddRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		writeError(w, http.StatusBadRequest, "text must be non-empty")
		return
	}
	id, err := s.p.Add(req.Text)
	if err != nil {
		// Whole-post methods cannot ingest incrementally; the request is
		// well-formed but unsupported by this pipeline configuration.
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, AddResponse{DocID: id})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ctrMetricsRequests.Inc()
	writeJSON(w, http.StatusOK, obs.Default.Snapshot())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ctrStatsRequests.Inc()
	st := s.p.Stats()
	before, after := s.p.SegmentCounts()
	resp := StatsResponse{
		Method:      s.p.Method(),
		NumDocs:     st.NumDocs,
		NumSegments: st.NumSegments,
		NumClusters: s.p.NumClusters(),
		PhaseNS: map[string]int64{
			"preprocess":    int64(st.Preprocess),
			"segmentation":  int64(st.Segmentation),
			"vectorization": int64(st.Vectorization),
			"clustering":    int64(st.Clustering),
			"refinement":    int64(st.Refinement),
			"grouping":      int64(st.Grouping),
			"indexing":      int64(st.Indexing),
		},
		Granularity: GranularityReport{
			Buckets: core.GranularityBuckets(),
			Before:  core.GranularityDistribution(before),
			After:   core.GranularityDistribution(after),
		},
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// decodeJSON parses the request body into v, answering 400 (or 413 for
// an oversized body) itself. It reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds 1MB")
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client went away; nothing useful to do
}

func writeError(w http.ResponseWriter, status int, msg string) {
	ctrErrors.Inc()
	writeJSON(w, status, map[string]string{"error": msg})
}
