// Package serve is the long-running HTTP face of the pipeline: the
// PR 1 RWMutex serving layer (core.Pipeline.Related/Add interleaving
// freely) exposed as JSON endpoints, with the obs registry scrapeable
// at runtime and net/http/pprof wired in. cmd/serve is the thin binary
// around it; the handler is separated here so the -race stress test can
// drive it through httptest.
//
// Endpoints:
//
//	POST /related        {"doc_id": 3, "k": 5}  → top-k related posts;
//	                     {"explain": true} adds the Eq 7–9 score
//	                     decomposition to each result
//	POST /add            {"text": "<raw post>"} → new document id
//	GET  /stats          offline BuildStats + Table 3 granularity
//	GET  /metrics        obs registry snapshot as JSON, or Prometheus
//	                     text exposition with ?format=prometheus or
//	                     Accept: text/plain
//	GET  /debug/traces   recent request traces (sampled + slow-captured)
//	GET  /healthz        liveness probe
//	GET  /debug/pprof/   net/http/pprof profiles
//
// Each query and ingestion request passes through the server's
// obs.Tracer: rate-sampled or slow-captured requests record per-stage
// events (candidate-list widths, pool hits, merge sizes) retained in a
// bounded ring for /debug/traces. Every API request emits one
// structured JSON access-log line (log/slog) carrying the trace id,
// endpoint, status, latency, and the request's doc_id/k/result count.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/obs"
)

// HTTP-surface metrics. The core.related/core.add spans time the
// pipeline operations themselves; these counters track the protocol
// layer around them (request counts by endpoint, error responses), the
// monotone quantities the stress test asserts across /metrics scrapes.
var (
	ctrRelatedRequests = obs.NewCounter("http.related.requests")
	ctrExplainRequests = obs.NewCounter("http.related.explained")
	ctrAddRequests     = obs.NewCounter("http.add.requests")
	ctrMetricsRequests = obs.NewCounter("http.metrics.requests")
	ctrStatsRequests   = obs.NewCounter("http.stats.requests")
	ctrTraceRequests   = obs.NewCounter("http.traces.requests")
	ctrTracesStarted   = obs.NewCounter("http.traces.started")
	ctrErrors          = obs.NewCounter("http.errors")
)

// maxBodyBytes bounds request bodies; forum posts are kilobytes, so a
// megabyte leaves two orders of magnitude of headroom.
const maxBodyBytes = 1 << 20

// maxExplainTerms caps the per-cluster term breakdown in a /related
// explain response. Long posts touch hundreds of index terms whose
// contributions are individually negligible; the response keeps the
// largest by |contribution| and reports how many were elided (the
// cluster's Score always remains the full, unelided sum).
const maxExplainTerms = 16

// Config sets the server's observability policy. The zero value serves
// with no access log, no rate-sampled traces, and slow-query capture at
// threshold 0 — i.e. every query and add request is captured into the
// trace ring. That default suits tests (deterministic capture);
// cmd/serve passes explicit flags.
type Config struct {
	// Logger receives one structured access-log record per API request.
	// nil disables access logging.
	Logger *slog.Logger
	// TraceRate is the rate-sampling budget: up to this many requests per
	// second get a trace regardless of latency. 0 disables rate sampling.
	TraceRate int
	// SlowQuery is the always-capture threshold: every request at least
	// this slow is captured. 0 captures every request; negative disables
	// slow capture (leaving only rate-sampled traces).
	SlowQuery time.Duration
	// TraceRingSize bounds the retained traces (256 when 0).
	TraceRingSize int
	// SLOLatency is the per-request latency objective: every request
	// slower than this increments its endpoint's slo.<endpoint>.breaches
	// counter (alongside the slo.<endpoint>.latency span and .errors
	// counter the middleware always keeps). 0 → 250ms.
	SLOLatency time.Duration

	// CacheEntries bounds the Related result cache (and turns on
	// singleflight collapsing of concurrent identical queries with it).
	// Entries are keyed by (doc, k, explain, collection epoch); every
	// mutation advances the epoch, so no stale result survives an add.
	// 0 disables both layers — the default, byte-identical serving path.
	CacheEntries int
	// MaxInflight bounds concurrently computing /related queries. The
	// next MaxQueued requests wait FIFO for a slot; beyond that the
	// server sheds with a typed 503 ({"error":{"kind":"overloaded"}},
	// Retry-After). 0 disables admission control — the default.
	MaxInflight int
	// MaxQueued is the admission wait-queue depth; meaningful only with
	// MaxInflight > 0. 0 sheds as soon as the in-flight limit is hit.
	MaxQueued int
}

// Server serves one built pipeline over HTTP. All handlers are safe for
// arbitrary concurrency: they only touch the pipeline through its
// locked public surface, the obs registry through atomic snapshots, and
// the trace ring through atomic pointer loads.
type Server struct {
	p   *core.Pipeline
	mux *http.ServeMux
	observer
	hygiene
}

// New wraps a built pipeline in an HTTP server. The pprof handlers are
// registered on the server's own mux (not http.DefaultServeMux), so
// binaries embedding several servers do not collide. The tracer is
// per-server for the same reason: tests run isolated trace rings side
// by side.
func New(p *core.Pipeline, cfg Config) *Server {
	s := &Server{
		p:        p,
		mux:      http.NewServeMux(),
		observer: newObserver(cfg),
		hygiene:  newHygiene(cfg),
	}
	// The query and ingestion paths are traced; the read-only
	// introspection endpoints only get the access log (tracing a
	// /metrics scrape would fill the ring with noise).
	s.mux.HandleFunc("POST /related", s.observe("/related", true, s.handleRelated))
	s.mux.HandleFunc("POST /add", s.observe("/add", true, s.handleAdd))
	s.mux.HandleFunc("GET /metrics", s.observe("/metrics", false, s.handleMetrics))
	s.mux.HandleFunc("GET /stats", s.observe("/stats", false, s.handleStats))
	s.mux.HandleFunc("GET /healthz", s.observe("/healthz", false, s.handleHealthz))
	s.mux.HandleFunc("GET /debug/traces", s.observe("/debug/traces", false, s.handleTraces))
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// RelatedRequest is the POST /related payload.
type RelatedRequest struct {
	DocID int `json:"doc_id"`
	K     int `json:"k"` // 0 → default 5, capped at 100
	// Explain adds the Eq 7–9 score decomposition to every result:
	// per-intention-cluster contributions and the term-level
	// tf·weight·idf products behind them.
	Explain bool `json:"explain,omitempty"`
}

// TermExplain is one term's contribution to a cluster score:
// Contribution = QueryTF · Weight · IDF (Eq 9's summand over Eq 7/8's
// weight), scaled by the result list's normalizer when NormalizeLists
// is configured.
type TermExplain struct {
	Term         string  `json:"term"`
	QueryTF      float64 `json:"query_tf"`
	Weight       float64 `json:"weight"`
	IDF          float64 `json:"idf"`
	Contribution float64 `json:"contribution"`
}

// ClusterExplain is one intention cluster's contribution to a result's
// score. Score is the full contribution; Terms holds the largest term
// products (at most maxExplainTerms, by |contribution|), and
// OmittedTerms counts elided ones — so Σ Terms[i].Contribution equals
// Score only when OmittedTerms is 0.
type ClusterExplain struct {
	Cluster      int           `json:"cluster"`
	Score        float64       `json:"score"`
	Terms        []TermExplain `json:"terms"`
	OmittedTerms int           `json:"omitted_terms,omitempty"`
}

// RelatedResult is one entry of a RelatedResponse.
type RelatedResult struct {
	DocID   int              `json:"doc_id"`
	Score   float64          `json:"score"`
	Explain []ClusterExplain `json:"explain,omitempty"`
}

// RelatedResponse is the POST /related reply. The two partial-result
// fields are only ever set by the fleet coordinator surface
// (FleetServer): when a shard misses its deadline, PartialResults is
// true and ShardsMissing names it. Both are omitempty, so a healthy
// fleet response is byte-identical to a single-process response — the
// equivalence the smoke harness diffs.
type RelatedResponse struct {
	DocID          int             `json:"doc_id"`
	K              int             `json:"k"`
	Results        []RelatedResult `json:"results"`
	PartialResults bool            `json:"partial_results,omitempty"`
	ShardsMissing  []int           `json:"shards_missing,omitempty"`
}

// AddRequest is the POST /add payload: one raw post (may contain HTML).
type AddRequest struct {
	Text string `json:"text"`
}

// AddResponse is the POST /add reply.
type AddResponse struct {
	DocID int `json:"doc_id"`
}

// TracesResponse is the GET /debug/traces reply, most recent first.
type TracesResponse struct {
	Traces []obs.TraceRecord `json:"traces"`
}

// StatsResponse is the GET /stats reply: the offline build breakdown
// (core.Stats, durations in nanoseconds) plus the Table 3 segment
// granularity distribution of the current collection.
type StatsResponse struct {
	Method      string            `json:"method"`
	NumDocs     int               `json:"num_docs"`
	NumSegments int               `json:"num_segments"`
	NumClusters int               `json:"num_clusters"`
	Shards      int               `json:"shards,omitempty"`
	ShardDocs   []int             `json:"shard_docs,omitempty"`
	PhaseNS     map[string]int64  `json:"phase_ns"`
	Granularity GranularityReport `json:"granularity"`
	// The hygiene blocks appear only when the corresponding knob is on
	// (pointers + omitempty), so a default server's /stats bytes are
	// unchanged.
	Cache        *cache.Stats          `json:"cache,omitempty"`
	Singleflight *cache.FlightStats    `json:"singleflight,omitempty"`
	Admission    *cache.AdmissionStats `json:"admission,omitempty"`
}

// GranularityReport carries the Table 3 rows: the share of posts with
// 1, 2, 3, 4, and 5+ segments, before grouping and after refinement.
type GranularityReport struct {
	Buckets []string           `json:"buckets"`
	Before  map[string]float64 `json:"before,omitempty"`
	After   map[string]float64 `json:"after,omitempty"`
}

func (s *Server) handleRelated(w http.ResponseWriter, r *http.Request) {
	ctrRelatedRequests.Inc()
	var req RelatedRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.K == 0 {
		req.K = 5
	}
	if req.K < 0 || req.K > 100 {
		writeError(w, http.StatusBadRequest, "k must be in [1,100]")
		return
	}
	if info := infoFrom(r.Context()); info != nil {
		info.docID, info.hasDoc = req.DocID, true
		info.k, info.hasK = req.K, true
	}
	// HasDoc validates the id under the pipeline lock, distinguishing a
	// 404 from an empty (but valid) result list. (Not Doc: pipelines
	// restored from a snapshot do not retain the prepared documents,
	// but every id below the document count is queryable.)
	if !s.p.HasDoc(req.DocID) {
		writeError(w, http.StatusNotFound, "unknown doc_id")
		return
	}
	if s.hygiene.enabled() {
		s.handleRelatedHygiene(w, r, req)
		return
	}
	resp, status, msg := s.buildRelated(r.Context(), req)
	if status != http.StatusOK {
		writeError(w, status, msg)
		return
	}
	if info := infoFrom(r.Context()); info != nil {
		info.results, info.hasResults = len(resp.Results), true
	}
	writeJSON(w, http.StatusOK, resp)
}

// buildRelated computes the response for a validated /related request:
// the response and StatusOK, or a non-200 status with its error
// message. Factored out of handleRelated so the default path and the
// hygiene (cache/singleflight/admission) path serve identical bytes.
func (s *Server) buildRelated(ctx context.Context, req RelatedRequest) (RelatedResponse, int, string) {
	resp := RelatedResponse{DocID: req.DocID, K: req.K}
	if req.Explain {
		ctrExplainRequests.Inc()
		results, exps, err := s.p.RelatedExplained(req.DocID, req.K)
		if err != nil {
			// Well-formed request, but this pipeline's scores are not an
			// Eq 7–9 sum (LDA) — same contract as unsupported /add.
			return resp, http.StatusUnprocessableEntity, err.Error()
		}
		resp.Results = make([]RelatedResult, len(results))
		for i, res := range results {
			resp.Results[i] = RelatedResult{
				DocID:   res.DocID,
				Score:   res.Score,
				Explain: explainClusters(exps[i]),
			}
		}
	} else {
		results := s.p.RelatedContext(ctx, req.DocID, req.K)
		resp.Results = make([]RelatedResult, len(results))
		for i, res := range results {
			resp.Results[i] = RelatedResult{DocID: res.DocID, Score: res.Score}
		}
	}
	return resp, http.StatusOK, ""
}

// handleRelatedHygiene is the /related path with any hygiene layer on:
// epoch-keyed cache lookup, singleflight election, bounded admission,
// then the same compute as the default path, serialized once into the
// exact bytes writeJSON would produce.
func (s *Server) handleRelatedHygiene(w http.ResponseWriter, r *http.Request, req RelatedRequest) {
	tr := obs.TraceFrom(r.Context())
	key := cache.Key{Doc: req.DocID, K: req.K, Explain: req.Explain, Epoch: s.p.Epoch()}
	cctx := s.computeCtx(r.Context())
	e, err := s.relatedHygiene(r.Context(), key, tr, func() (cache.Entry, error) {
		if s.admit != nil {
			if aerr := s.admit.Acquire(cctx); aerr != nil {
				return cache.Entry{}, aerr
			}
			defer s.admit.Release()
		}
		if s.testHookCompute != nil {
			s.testHookCompute()
		}
		resp, status, msg := s.buildRelated(cctx, req)
		var body []byte
		var encErr error
		if status != http.StatusOK {
			body, encErr = encodeBody(map[string]string{"error": msg})
		} else {
			body, encErr = encodeBody(resp)
		}
		if encErr != nil {
			return cache.Entry{}, encErr
		}
		entry := cache.Entry{Body: body, Status: status, Results: len(resp.Results)}
		// Store only complete 200s computed against a still-current
		// epoch: a commit that landed during the flight has already
		// moved readers to a new key, and this entry must not be
		// reachable there.
		if s.cache != nil && status == http.StatusOK && s.p.Epoch() == key.Epoch {
			s.cache.Put(key, entry)
		}
		return entry, nil
	})
	if err != nil {
		ctrErrors.Inc()
		hygieneError(w, err, tr)
		return
	}
	if e.Status != http.StatusOK {
		ctrErrors.Inc()
	} else if info := infoFrom(r.Context()); info != nil {
		info.results, info.hasResults = e.Results, true
	}
	writeRawJSON(w, e.Status, e.Body)
}

// explainClusters converts one match.Explanation into its wire form,
// truncating each cluster's term list to the maxExplainTerms largest
// contributions by magnitude (ties broken by term, for determinism).
// The cluster Score is never truncated — it remains the exact
// contribution that sums to the served score.
func explainClusters(exp match.Explanation) []ClusterExplain {
	out := make([]ClusterExplain, len(exp.Clusters))
	for i, c := range exp.Clusters {
		ce := ClusterExplain{Cluster: c.Cluster, Score: c.Score}
		terms := make([]TermExplain, len(c.Terms))
		for j, t := range c.Terms {
			terms[j] = TermExplain{
				Term:         t.Term,
				QueryTF:      t.QueryTF,
				Weight:       t.Weight,
				IDF:          t.IDF,
				Contribution: t.Contribution,
			}
		}
		sort.Slice(terms, func(a, b int) bool {
			ca, cb := math.Abs(terms[a].Contribution), math.Abs(terms[b].Contribution)
			if ca != cb {
				return ca > cb
			}
			return terms[a].Term < terms[b].Term
		})
		if len(terms) > maxExplainTerms {
			ce.OmittedTerms = len(terms) - maxExplainTerms
			terms = terms[:maxExplainTerms]
		}
		ce.Terms = terms
		out[i] = ce
	}
	return out
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	ctrAddRequests.Inc()
	var req AddRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		writeError(w, http.StatusBadRequest, "text must be non-empty")
		return
	}
	id, err := s.p.AddContext(r.Context(), req.Text)
	if err != nil {
		// Whole-post methods cannot ingest incrementally; the request is
		// well-formed but unsupported by this pipeline configuration.
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	if info := infoFrom(r.Context()); info != nil {
		info.docID, info.hasDoc = id, true
	}
	writeJSON(w, http.StatusOK, AddResponse{DocID: id})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ctrMetricsRequests.Inc()
	snap := obs.Default.Snapshot()
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		w.WriteHeader(http.StatusOK)
		_ = snap.WritePrometheus(w) // client went away; nothing useful to do
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// wantsPrometheus decides the /metrics representation: an explicit
// ?format=prometheus (or ?format=json) query parameter wins; otherwise
// an Accept header preferring text/plain — what Prometheus's scraper
// sends — selects the text exposition, and everything else gets JSON.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain")
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	ctrTraceRequests.Inc()
	writeJSON(w, http.StatusOK, TracesResponse{Traces: s.tracer.Snapshot()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ctrStatsRequests.Inc()
	st := s.p.Stats()
	before, after := s.p.SegmentCounts()
	resp := StatsResponse{
		Method:      s.p.Method(),
		NumDocs:     st.NumDocs,
		NumSegments: st.NumSegments,
		NumClusters: s.p.NumClusters(),
		Shards:      s.p.Shards(),
		ShardDocs:   s.p.ShardDocs(),
		PhaseNS: map[string]int64{
			"preprocess":    int64(st.Preprocess),
			"segmentation":  int64(st.Segmentation),
			"vectorization": int64(st.Vectorization),
			"clustering":    int64(st.Clustering),
			"refinement":    int64(st.Refinement),
			"grouping":      int64(st.Grouping),
			"indexing":      int64(st.Indexing),
		},
		Granularity: GranularityReport{
			Buckets: core.GranularityBuckets(),
			Before:  core.GranularityDistribution(before),
			After:   core.GranularityDistribution(after),
		},
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		resp.Cache = &cs
		fs := s.flight.Stats()
		resp.Singleflight = &fs
	}
	if s.admit != nil {
		as := s.admit.Stats()
		resp.Admission = &as
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// decodeJSON parses the request body into v, answering 400 (or 413 for
// an oversized body) itself. It reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds 1MB")
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client went away; nothing useful to do
}

func writeError(w http.ResponseWriter, status int, msg string) {
	ctrErrors.Inc()
	writeJSON(w, status, map[string]string{"error": msg})
}
