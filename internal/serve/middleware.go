package serve

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/obs"
)

// observer is the request-scoped observability shared by every server
// flavor in this package (the single-process Server, the fleet's
// ShardServer and FleetServer): a per-server tracer feeding the
// /debug/traces ring and one structured access-log record per API
// request. It is embedded, so servers call s.observe(...) and read
// s.tracer directly.
type observer struct {
	log    *slog.Logger
	tracer *obs.Tracer
	slo    time.Duration
}

func newObserver(cfg Config) observer {
	slo := cfg.SLOLatency
	if slo == 0 {
		slo = defaultSLOLatency
	}
	return observer{
		log: cfg.Logger,
		tracer: obs.NewTracer(obs.TracerConfig{
			PerSecond: cfg.TraceRate,
			SlowQuery: cfg.SlowQuery,
			RingSize:  cfg.TraceRingSize,
		}),
		slo: slo,
	}
}

// statusWriter remembers the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// reqInfo carries per-request facts from a handler back to the access
// log: which document was asked about, with what k, and how many
// results came back. Handlers fill it through the request context; the
// set flags distinguish "not applicable to this endpoint" from real
// values (a 404 for a negative doc_id still logs the id asked for).
type reqInfo struct {
	docID, k, results        int
	hasDoc, hasK, hasResults bool
}

type reqInfoKey struct{}

// infoFrom returns the middleware-installed reqInfo, or nil for a
// handler invoked outside observe (direct tests).
func infoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// observe wraps a handler with the request-scoped observability: a
// Trace from the server's tracer (for traced endpoints) carried via the
// context into the pipeline, the endpoint's SLO bookkeeping (latency
// span, 5xx counter, objective-breach counter), and one structured
// access-log record on the way out. The SLO instruments are resolved
// here, at wrap time, so the request path stays allocation-free.
func (o *observer) observe(endpoint string, traced bool, h http.HandlerFunc) http.HandlerFunc {
	slo := sloFor(endpoint, o.slo)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		info := &reqInfo{}
		ctx := context.WithValue(r.Context(), reqInfoKey{}, info)
		var tr *obs.Trace
		if traced {
			if tr = o.tracer.Start(); tr != nil {
				ctx = obs.WithTrace(ctx, tr)
			}
		}
		start := time.Now()
		h(sw, r.WithContext(ctx))
		dur := time.Since(start)
		if tr != nil {
			dur = o.tracer.Finish(tr)
			ctrTracesStarted.Inc()
		}
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		slo.record(sw.status, dur)
		if o.log != nil {
			attrs := make([]slog.Attr, 0, 8)
			attrs = append(attrs,
				slog.String("endpoint", endpoint),
				slog.Int("status", sw.status),
				slog.Int64("latency_ns", int64(dur)),
			)
			if id := tr.ID(); id != "" {
				attrs = append(attrs, slog.String("trace_id", id))
			}
			if info.hasDoc {
				attrs = append(attrs, slog.Int("doc_id", info.docID))
			}
			if info.hasK {
				attrs = append(attrs, slog.Int("k", info.k))
			}
			if info.hasResults {
				attrs = append(attrs, slog.Int("results", info.results))
			}
			o.log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		}
	}
}
