package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/forum"
	"repro/internal/obs"
)

// TestServeStress is the serve-layer half of the PR 1 concurrency
// guarantee, proved over HTTP: concurrent POST /related and POST /add
// against the handler while scrapers hammer GET /metrics and
// GET /stats. Run under -race (CI does). The scrapers assert the obs
// contract — counters monotone across scrapes, histogram snapshots
// never torn (count == Σ bucket counts, quantiles monotone and within
// the bucket range) — while the write path grows the collection.
func TestServeStress(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)

	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 220, Seed: 11})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	const base = 160
	p, err := core.Build(texts[:base], core.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	extra := texts[base:]

	// SlowQuery 0 → every /related and /add request is captured into the
	// trace ring, the densest configuration for the trace scraper below.
	ts := httptest.NewServer(New(p, Config{SlowQuery: 0}).Handler())
	defer ts.Close()
	client := ts.Client()

	const (
		queryWorkers  = 6
		addWorkers    = 2
		scrapeWorkers = 2
		traceWorkers  = 2
		queriesEach   = 120
		addsEach      = 25
		scrapesEach   = 60
		traceScrapes  = 60
	)
	var (
		wg       sync.WaitGroup
		failures atomic.Int32
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	post := func(path, body string) (*http.Response, error) {
		return client.Post(ts.URL+path, "application/json", strings.NewReader(body))
	}

	// Query workers: every response must be well-formed regardless of
	// how many adds have landed.
	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				doc := (w*queriesEach + i*7) % base
				resp, err := post("/related", fmt.Sprintf(`{"doc_id": %d, "k": 5}`, doc))
				if err != nil {
					fail("related: %v", err)
					return
				}
				var rr RelatedResponse
				err = json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail("related: status %d err %v", resp.StatusCode, err)
					return
				}
				for _, r := range rr.Results {
					if r.DocID == doc || r.Score < 0 || math.IsNaN(r.Score) {
						fail("related: bad result %+v for doc %d", r, doc)
						return
					}
				}
			}
		}(w)
	}

	// Add workers: ids must come back unique and dense-ish (every add
	// succeeds, ids strictly above the base collection).
	var seenIDs sync.Map
	for w := 0; w < addWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < addsEach; i++ {
				text := extra[(w*addsEach+i)%len(extra)]
				resp, err := post("/add", fmt.Sprintf(`{"text": %q}`, text))
				if err != nil {
					fail("add: %v", err)
					return
				}
				var ar AddResponse
				err = json.NewDecoder(resp.Body).Decode(&ar)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail("add: status %d err %v", resp.StatusCode, err)
					return
				}
				if ar.DocID < base {
					fail("add: id %d below base %d", ar.DocID, base)
					return
				}
				if _, dup := seenIDs.LoadOrStore(ar.DocID, true); dup {
					fail("add: duplicate id %d", ar.DocID)
					return
				}
			}
		}(w)
	}

	// Metrics scrapers: the observability contract under concurrency.
	monotone := []string{"http.related.requests", "http.add.requests", "http.metrics.requests", "index.scorepool.get"}
	for w := 0; w < scrapeWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := map[string]int64{}
			var lastQueryCount int64
			for i := 0; i < scrapesEach; i++ {
				resp, err := client.Get(ts.URL + "/metrics")
				if err != nil {
					fail("metrics: %v", err)
					return
				}
				var snap obs.Snapshot
				err = json.NewDecoder(resp.Body).Decode(&snap)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail("metrics: status %d err %v", resp.StatusCode, err)
					return
				}
				for _, name := range monotone {
					v, ok := snap.Counters[name]
					if !ok {
						fail("metrics: counter %q missing", name)
						return
					}
					if v < last[name] {
						fail("metrics: counter %q went backwards: %d -> %d", name, last[name], v)
						return
					}
					last[name] = v
				}
				checkHist := func(section string, h obs.HistogramSnapshot) {
					var sum int64
					for _, b := range h.Buckets {
						sum += b.Count
						if b.Count < 0 {
							fail("metrics: %s negative bucket", section)
						}
					}
					if sum != h.Count {
						fail("metrics: torn %s snapshot: Σbuckets=%d count=%d", section, sum, h.Count)
					}
					if h.Count > 0 && !(h.P50 <= h.P90 && h.P90 <= h.P99) {
						fail("metrics: %s quantiles not monotone: %v %v %v", section, h.P50, h.P90, h.P99)
					}
				}
				for name, h := range snap.Histograms {
					checkHist("histogram "+name, h)
				}
				for name, h := range snap.Spans {
					checkHist("span "+name, h)
				}
				if q := snap.Spans["match.query"].Count; q < lastQueryCount {
					fail("metrics: match.query count went backwards: %d -> %d", lastQueryCount, q)
				} else {
					lastQueryCount = q
				}
				// Interleave a /stats read: granularity and doc counts must
				// stay internally consistent while adds land.
				var st StatsResponse
				sresp, err := client.Get(ts.URL + "/stats")
				if err != nil {
					fail("stats: %v", err)
					return
				}
				err = json.NewDecoder(sresp.Body).Decode(&st)
				sresp.Body.Close()
				if err != nil {
					fail("stats: %v", err)
					return
				}
				if st.NumDocs < base {
					fail("stats: NumDocs %d below base %d", st.NumDocs, base)
				}
			}
		}()
	}

	// Trace scrapers: /debug/traces must never serve a torn trace while
	// queries and adds publish into the ring concurrently. Within one
	// scrape every trace id is unique and every trace's events are
	// monotone in At (the trace-side lock guarantees the stored order);
	// across scrapes a re-seen id must carry the identical record
	// (published traces are immutable).
	for w := 0; w < traceWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := map[string]string{} // trace id → canonical JSON
			for i := 0; i < traceScrapes; i++ {
				resp, err := client.Get(ts.URL + "/debug/traces")
				if err != nil {
					fail("traces: %v", err)
					return
				}
				var tres TracesResponse
				err = json.NewDecoder(resp.Body).Decode(&tres)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail("traces: status %d err %v", resp.StatusCode, err)
					return
				}
				ids := map[string]bool{}
				for _, rec := range tres.Traces {
					if rec.ID == "" {
						fail("traces: record with empty id")
						return
					}
					if ids[rec.ID] {
						fail("traces: id %s appears twice in one scrape", rec.ID)
						return
					}
					ids[rec.ID] = true
					if rec.DurationNS <= 0 {
						fail("traces: %s has non-positive duration %d", rec.ID, rec.DurationNS)
						return
					}
					for j := 1; j < len(rec.Events); j++ {
						if rec.Events[j].At < rec.Events[j-1].At {
							fail("traces: %s events not monotone: %v after %v",
								rec.ID, rec.Events[j].At, rec.Events[j-1].At)
							return
						}
					}
					body, err := json.Marshal(rec)
					if err != nil {
						fail("traces: re-marshal: %v", err)
						return
					}
					if prev, ok := seen[rec.ID]; ok && prev != string(body) {
						fail("traces: id %s changed between scrapes:\n%s\nvs\n%s", rec.ID, prev, body)
						return
					}
					seen[rec.ID] = string(body)
				}
			}
		}()
	}

	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d failures under concurrent serve load", failures.Load())
	}

	// Post-conditions: the counters reflect the full load.
	snap := obs.Default.Snapshot()
	wantQueries := int64(queryWorkers * queriesEach)
	if got := snap.Counters["http.related.requests"]; got < wantQueries {
		t.Errorf("http.related.requests = %d, want ≥ %d", got, wantQueries)
	}
	wantAdds := int64(addWorkers * addsEach)
	if got := snap.Counters["http.add.requests"]; got < wantAdds {
		t.Errorf("http.add.requests = %d, want ≥ %d", got, wantAdds)
	}
	if got := snap.Spans["match.add.commit"].Count; got < wantAdds {
		t.Errorf("match.add.commit count = %d, want ≥ %d", got, wantAdds)
	}
	// SlowQuery 0 arms a speculative trace on every /related and /add.
	if got := snap.Counters["http.traces.started"]; got < wantQueries+wantAdds {
		t.Errorf("http.traces.started = %d, want ≥ %d", got, wantQueries+wantAdds)
	}
	var st core.Stats = p.Stats()
	if st.NumDocs != base+int(wantAdds) {
		t.Errorf("final NumDocs = %d, want %d", st.NumDocs, base+int(wantAdds))
	}
}
