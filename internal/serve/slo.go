package serve

import (
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// defaultSLOLatency is the per-request latency objective when
// Config.SLOLatency is zero. A quarter second is an order of magnitude
// above the paper-scale query latencies, so breaches flag genuine
// stalls (lock convoys, degraded shards) rather than noise.
const defaultSLOLatency = 250 * time.Millisecond

// sloInstruments is one endpoint's SLO family:
//
//	slo.<endpoint>.latency    span of full request durations (P50…P999)
//	slo.<endpoint>.errors     5xx responses
//	slo.<endpoint>.breaches   requests slower than the objective
//
// Instruments are resolved once, when observe wraps the handler, so the
// per-request path is three lock-free records — no map lookups and no
// allocations, preserving the untraced hot path's zero-alloc contract.
type sloInstruments struct {
	objective time.Duration
	latency   *obs.Span
	errors    *obs.Counter
	breaches  *obs.Counter
}

// sloFor resolves the instrument family for an endpoint. GetOrNew
// constructors make this idempotent across the several servers (shard,
// coordinator, tests) that share one process registry.
func sloFor(endpoint string, objective time.Duration) sloInstruments {
	name := sloName(endpoint)
	return sloInstruments{
		objective: objective,
		latency:   obs.GetOrNewSpan("slo." + name + ".latency"),
		errors:    obs.GetOrNewCounter("slo." + name + ".errors"),
		breaches:  obs.GetOrNewCounter("slo." + name + ".breaches"),
	}
}

// sloName flattens an endpoint path into a metric-name segment:
// "/related" → "related", "/internal/home" → "internal.home".
func sloName(endpoint string) string {
	return strings.ReplaceAll(strings.Trim(endpoint, "/"), "/", ".")
}

// record books one finished request against the SLO.
func (s sloInstruments) record(status int, dur time.Duration) {
	s.latency.Record(dur)
	if status >= http.StatusInternalServerError {
		s.errors.Inc()
	}
	if dur > s.objective {
		s.breaches.Inc()
	}
}
