package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/forum"
	"repro/internal/obs"
)

// --- explain mode ---

func TestRelatedExplain(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/related", `{"doc_id": 3, "k": 5, "explain": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	var rr RelatedResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Results) == 0 {
		t.Fatal("no results")
	}

	// The explained ranking must match the unexplained one exactly.
	resp, body = postJSON(t, ts.URL+"/related", `{"doc_id": 3, "k": 5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain query status = %d", resp.StatusCode)
	}
	var plain RelatedResponse
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if len(plain.Results) != len(rr.Results) {
		t.Fatalf("explained %d results, plain %d", len(rr.Results), len(plain.Results))
	}

	for i, res := range rr.Results {
		if res.DocID != plain.Results[i].DocID || res.Score != plain.Results[i].Score {
			t.Fatalf("result %d: explained (%d, %v) != plain (%d, %v)",
				i, res.DocID, res.Score, plain.Results[i].DocID, plain.Results[i].Score)
		}
		if len(res.Explain) == 0 {
			t.Fatalf("result %d has no explain payload", i)
		}
		var clusterSum float64
		for _, c := range res.Explain {
			clusterSum += c.Score
			if len(c.Terms) > maxExplainTerms {
				t.Fatalf("cluster %d serves %d terms, cap is %d", c.Cluster, len(c.Terms), maxExplainTerms)
			}
			// Terms arrive largest-|contribution| first.
			for j := 1; j < len(c.Terms); j++ {
				if math.Abs(c.Terms[j].Contribution) > math.Abs(c.Terms[j-1].Contribution) {
					t.Fatalf("cluster %d terms not sorted by |contribution|", c.Cluster)
				}
			}
			// With no elision the served term products still sum to the
			// cluster score; with elision they can only fall short.
			var termSum float64
			for _, tc := range c.Terms {
				termSum += tc.Contribution
			}
			if c.OmittedTerms == 0 {
				if d := math.Abs(termSum - c.Score); d > 1e-9 {
					t.Fatalf("cluster %d: term sum %v vs score %v (Δ %g)", c.Cluster, termSum, c.Score, d)
				}
			} else if termSum > c.Score+1e-9 {
				t.Fatalf("cluster %d: truncated term sum %v exceeds score %v", c.Cluster, termSum, c.Score)
			}
		}
		if d := math.Abs(clusterSum - res.Score); d > 1e-9 {
			t.Fatalf("result %d: cluster sum %v vs served score %v (Δ %g)", i, clusterSum, res.Score, d)
		}
	}

	// Plain responses must not carry the field at all.
	if bytes.Contains(body, []byte(`"explain"`)) {
		t.Fatal("unexplained response contains an explain field")
	}
}

func TestRelatedExplainUnsupported(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 40, Seed: 42})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	p, err := core.Build(texts, core.Config{Method: core.LDA, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ts := newServerFor(t, p, Config{})
	resp, body := postJSON(t, ts.URL+"/related", `{"doc_id": 0, "explain": true}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("LDA explain status = %d, want 422 (body %s)", resp.StatusCode, body)
	}
	// The same pipeline still answers unexplained queries.
	resp, _ = postJSON(t, ts.URL+"/related", `{"doc_id": 0}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("LDA plain query status = %d", resp.StatusCode)
	}
}

// --- /debug/traces ---

func TestTracesCaptureEveryRequest(t *testing.T) {
	// SlowQuery 0: deterministic capture — every query and add lands in
	// the ring, newest first.
	ts := newTestServerCfg(t, Config{SlowQuery: 0})
	const n = 5
	for i := 0; i < n; i++ {
		resp, _ := postJSON(t, ts.URL+"/related", fmt.Sprintf(`{"doc_id": %d, "k": 4}`, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d failed", i)
		}
	}
	var tres TracesResponse
	if resp := getJSON(t, ts.URL+"/debug/traces", &tres); resp.StatusCode != http.StatusOK {
		t.Fatalf("traces status = %d", resp.StatusCode)
	}
	if len(tres.Traces) != n {
		t.Fatalf("captured %d traces, want %d", len(tres.Traces), n)
	}
	for i, rec := range tres.Traces {
		if rec.ID == "" || rec.DurationNS <= 0 {
			t.Fatalf("trace %d malformed: %+v", i, rec)
		}
		if rec.Sampled {
			t.Fatalf("trace %d marked rate-sampled under a slow-capture-only config", i)
		}
		names := map[string]int{}
		for j, ev := range rec.Events {
			names[ev.Name]++
			if j > 0 && ev.At < rec.Events[j-1].At {
				t.Fatalf("trace %d events not monotone", i)
			}
		}
		// A traced MR query records the per-cluster fan-out and merge.
		for _, want := range []string{"index.query", "match.list", "match.merge", "match.topk"} {
			if names[want] == 0 {
				t.Fatalf("trace %d missing %q events (got %v)", i, want, names)
			}
		}
	}
	// Newest first: the most recent query is doc_id n-1... its match.topk
	// event exists; ordering is by publish time, so Start must be
	// non-increasing down the list.
	for i := 1; i < len(tres.Traces); i++ {
		if tres.Traces[i].Start.After(tres.Traces[i-1].Start) {
			t.Fatal("traces not newest-first")
		}
	}

	// An /add request is traced too, with the prepare/commit split.
	text := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 1, Seed: 8})[0].Text
	if resp, _ := postJSON(t, ts.URL+"/add", fmt.Sprintf(`{"text": %q}`, text)); resp.StatusCode != http.StatusOK {
		t.Fatal("add failed")
	}
	getJSON(t, ts.URL+"/debug/traces", &tres)
	if len(tres.Traces) != n+1 {
		t.Fatalf("after add: %d traces, want %d", len(tres.Traces), n+1)
	}
	addNames := map[string]int{}
	for _, ev := range tres.Traces[0].Events {
		addNames[ev.Name]++
	}
	if addNames["add.prepared"] == 0 || addNames["add.committed"] == 0 {
		t.Fatalf("add trace missing prepare/commit events: %v", addNames)
	}
}

func TestTracesDisabled(t *testing.T) {
	// Negative threshold and no rate budget: nothing is ever captured.
	ts := newTestServerCfg(t, Config{SlowQuery: -1})
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/related", `{"doc_id": 1, "k": 3}`)
	}
	var tres TracesResponse
	getJSON(t, ts.URL+"/debug/traces", &tres)
	if len(tres.Traces) != 0 {
		t.Fatalf("disabled tracer captured %d traces", len(tres.Traces))
	}
}

func TestTracesRingBounded(t *testing.T) {
	ts := newTestServerCfg(t, Config{SlowQuery: 0, TraceRingSize: 4})
	for i := 0; i < 10; i++ {
		postJSON(t, ts.URL+"/related", fmt.Sprintf(`{"doc_id": %d, "k": 2}`, i))
	}
	var tres TracesResponse
	getJSON(t, ts.URL+"/debug/traces", &tres)
	if len(tres.Traces) != 4 {
		t.Fatalf("ring of 4 serves %d traces", len(tres.Traces))
	}
}

// --- /metrics content negotiation ---

func TestMetricsPrometheusFormat(t *testing.T) {
	ts := newTestServer(t)
	postJSON(t, ts.URL+"/related", `{"doc_id": 1, "k": 3}`)

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.PrometheusContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"# TYPE http_related_requests_total counter",
		"http_related_requests_total ",
		"# TYPE core_related histogram",
		"core_related_count ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prometheus body missing %q:\n%s", want, body[:min(len(body), 2000)])
		}
	}
	if strings.Contains(body, "http.related") {
		t.Fatal("unsanitized metric name in prometheus output")
	}
}

func TestMetricsAcceptNegotiation(t *testing.T) {
	ts := newTestServer(t)
	// Prometheus's scraper sends Accept: text/plain;version=0.0.4.
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("Accept text/plain negotiated %q", ct)
	}
	// An explicit format=json overrides the Accept header.
	req, _ = http.NewRequest("GET", ts.URL+"/metrics?format=json", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("format=json negotiated %q", ct)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	// No Accept header at all stays JSON (curl, browsers send */*).
	resp = getJSON(t, ts.URL+"/metrics", &snap)
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default negotiated %q", ct)
	}
}

// --- structured access log ---

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	ts := newTestServerCfg(t, Config{Logger: logger, SlowQuery: 0})

	if resp, _ := postJSON(t, ts.URL+"/related", `{"doc_id": 7, "k": 3}`); resp.StatusCode != http.StatusOK {
		t.Fatal("query failed")
	}
	getJSON(t, ts.URL+"/stats", nil)
	if resp, _ := postJSON(t, ts.URL+"/related", `{"doc_id": -5}`); resp.StatusCode != http.StatusNotFound {
		t.Fatal("expected 404")
	}

	type record struct {
		Msg       string `json:"msg"`
		Endpoint  string `json:"endpoint"`
		Status    int    `json:"status"`
		LatencyNS int64  `json:"latency_ns"`
		TraceID   string `json:"trace_id"`
		DocID     *int   `json:"doc_id"`
		K         *int   `json:"k"`
		Results   *int   `json:"results"`
	}
	var recs []record
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("access log line not JSON: %s", sc.Text())
		}
		recs = append(recs, r)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d access-log records, want 3", len(recs))
	}

	q := recs[0]
	if q.Msg != "request" || q.Endpoint != "/related" || q.Status != 200 {
		t.Fatalf("query record: %+v", q)
	}
	if q.LatencyNS <= 0 {
		t.Fatal("query record has no latency")
	}
	if q.TraceID == "" {
		t.Fatal("traced request logged without trace_id")
	}
	if q.DocID == nil || *q.DocID != 7 || q.K == nil || *q.K != 3 {
		t.Fatalf("query record missing doc_id/k: %+v", q)
	}
	if q.Results == nil || *q.Results < 1 {
		t.Fatalf("query record missing results: %+v", q)
	}
	// The logged trace id must resolve in /debug/traces.
	var tres TracesResponse
	getJSON(t, ts.URL+"/debug/traces", &tres)
	found := false
	for _, rec := range tres.Traces {
		if rec.ID == q.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("logged trace_id %s not in /debug/traces", q.TraceID)
	}

	st := recs[1]
	if st.Endpoint != "/stats" || st.Status != 200 {
		t.Fatalf("stats record: %+v", st)
	}
	if st.TraceID != "" || st.DocID != nil {
		t.Fatalf("stats record carries query-only fields: %+v", st)
	}

	e := recs[2]
	if e.Endpoint != "/related" || e.Status != http.StatusNotFound {
		t.Fatalf("error record: %+v", e)
	}
	if e.DocID == nil || *e.DocID != -5 {
		t.Fatalf("error record missing doc_id: %+v", e)
	}
	if e.Results != nil {
		t.Fatalf("404 record has a results count: %+v", e)
	}
}

// newServerFor wraps an arbitrary pipeline (not the shared one) with a
// test server.
func newServerFor(t *testing.T, p *core.Pipeline, cfg Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(p, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}
