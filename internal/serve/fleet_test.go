package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/forum"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/segment"
	"repro/internal/shard"
)

// End-to-end tests of the networked fleet's HTTP surfaces: real
// ShardServers on real sockets, the real HTTPTransport, a coordinator,
// and a FleetServer — compared byte-for-byte against the single-process
// Server over the same corpus. This is the HTTP leg of the equivalence
// matrix: it proves JSON round-trips (shortest-round-trip float
// encoding) and the omitempty partial fields keep healthy fleet
// responses indistinguishable from single-process responses.

// fleetFixture shares one sharded build across the fleet HTTP tests.
// Its matcher is constructed exactly like testPipeline's (same texts,
// same MRConfig), so the two rank identically.
type fleetFixture struct {
	g     *shard.Group
	hosts map[int]*fleet.Host
}

var fleetBackend = sync.OnceValue(func() *fleetFixture {
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 150, Seed: 42})
	docs := make([]*segment.Doc, len(posts))
	for i, p := range posts {
		docs[i] = segment.NewDoc(p.Text)
	}
	mr := match.NewMR("IntentIntent-MR", docs, match.MRConfig{Seed: 42})
	g, err := shard.NewGroup(mr, 4, 42)
	if err != nil {
		panic(err)
	}
	return &fleetFixture{g: g, hosts: fleet.HostsForGroup(g)}
})

// typedError decodes the fleet error envelope.
func typedError(t *testing.T, body []byte) ErrorBody {
	t.Helper()
	var e struct {
		Error ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("not a typed error envelope: %v in %s", err, body)
	}
	return e.Error
}

func TestFleetServeEndToEnd(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	f := fleetBackend()

	// Four shard servers, plus one replica of shard 0 (same host, its
	// own socket).
	shardTS := make([]*httptest.Server, f.g.NumShards())
	for s := 0; s < f.g.NumShards(); s++ {
		shardTS[s] = httptest.NewServer(NewShardServer(f.hosts[s], Config{}).Handler())
		t.Cleanup(shardTS[s].Close)
	}
	replica0 := httptest.NewServer(NewShardServer(f.hosts[0], Config{}).Handler())
	t.Cleanup(replica0.Close)

	topo := fleet.Topology{}
	for s := 0; s < f.g.NumShards(); s++ {
		se := fleet.ShardEndpoints{Shard: s, Primary: shardTS[s].URL}
		if s == 0 {
			se.Replicas = []string{replica0.URL}
		}
		topo.Endpoints = append(topo.Endpoints, se)
	}
	c, err := fleet.New(context.Background(), topo, fleet.Options{
		Transport:      fleet.NewHTTPTransport(),
		Timeout:        5 * time.Second,
		AttemptTimeout: 2 * time.Second,
		Retries:        1,
		Backoff:        5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("fleet.New over HTTP: %v", err)
	}
	fleetTS := httptest.NewServer(NewFleetServer(c, Config{}).Handler())
	t.Cleanup(fleetTS.Close)
	singleTS := httptest.NewServer(New(testPipeline(), Config{}).Handler())
	t.Cleanup(singleTS.Close)

	t.Run("related-byte-identical-to-single-process", func(t *testing.T) {
		for _, doc := range []int{0, 9, 31, 77, 149} {
			for _, body := range []string{
				fmt.Sprintf(`{"doc_id": %d, "k": 5}`, doc),
				fmt.Sprintf(`{"doc_id": %d, "k": 10, "explain": true}`, doc),
			} {
				sResp, sBody := postJSON(t, singleTS.URL+"/related", body)
				fResp, fBody := postJSON(t, fleetTS.URL+"/related", body)
				if sResp.StatusCode != http.StatusOK || fResp.StatusCode != http.StatusOK {
					t.Fatalf("%s: status single=%d fleet=%d", body, sResp.StatusCode, fResp.StatusCode)
				}
				if string(sBody) != string(fBody) {
					t.Fatalf("%s: bodies diverge:\nsingle: %s\nfleet:  %s", body, sBody, fBody)
				}
				if strings.Contains(string(fBody), "partial_results") {
					t.Fatalf("%s: healthy fleet leaked partial fields: %s", body, fBody)
				}
			}
		}
	})

	t.Run("shard-surface", func(t *testing.T) {
		resp, err := http.Get(shardTS[1].URL + "/internal/meta")
		if err != nil {
			t.Fatal(err)
		}
		var m fleet.Meta
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("meta decode: %v", err)
		}
		resp.Body.Close()
		if m.TotalShards != 4 || len(m.Shards) != 1 || m.Shards[0] != 1 || m.Epoch != c.Epoch() {
			t.Fatalf("unexpected meta: %+v", m)
		}

		resp, body := postJSON(t, shardTS[1].URL+"/internal/home", `{"shard": 1, "local_doc": 999999, "k": 5}`)
		if resp.StatusCode != http.StatusNotFound || typedError(t, body).Kind != "unknown_doc" {
			t.Fatalf("unknown doc: status %d body %s", resp.StatusCode, body)
		}
		resp, body = postJSON(t, shardTS[1].URL+"/internal/probe", `{"shard": 2, "probes": [], "depth": 10}`)
		if resp.StatusCode != http.StatusMisdirectedRequest || typedError(t, body).Kind != "not_owned" {
			t.Fatalf("misdirected probe: status %d body %s", resp.StatusCode, body)
		}
		resp, body = postJSON(t, shardTS[1].URL+"/internal/home", `{bad json`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad json: status %d body %s", resp.StatusCode, body)
		}
	})

	t.Run("coordinator-surface", func(t *testing.T) {
		resp, body := postJSON(t, fleetTS.URL+"/related", `{"doc_id": 3, "k": 200}`)
		if resp.StatusCode != http.StatusBadRequest || typedError(t, body).Kind != "bad_request" {
			t.Fatalf("k out of range: status %d body %s", resp.StatusCode, body)
		}
		resp, body = postJSON(t, fleetTS.URL+"/related", `{"doc_id": 100000, "k": 5}`)
		if resp.StatusCode != http.StatusNotFound || typedError(t, body).Kind != "unknown_doc" {
			t.Fatalf("unknown doc: status %d body %s", resp.StatusCode, body)
		}
		resp, body = postJSON(t, fleetTS.URL+"/add", `{"text": "new post"}`)
		if resp.StatusCode != http.StatusNotImplemented || typedError(t, body).Kind != "read_only" {
			t.Fatalf("add on fleet: status %d body %s", resp.StatusCode, body)
		}
		gresp, err := http.Get(fleetTS.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st FleetStatsResponse
		if err := json.NewDecoder(gresp.Body).Decode(&st); err != nil {
			t.Fatalf("stats decode: %v", err)
		}
		gresp.Body.Close()
		if st.Method != "IntentIntent-MR" || st.NumDocs != 150 || st.Shards != 4 || st.Epoch != c.Epoch() {
			t.Fatalf("unexpected fleet stats: %+v", st)
		}
		for _, ep := range []string{"/healthz", "/metrics", "/debug/traces"} {
			r, err := http.Get(fleetTS.URL + ep)
			if err != nil || r.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: %v / %v", ep, err, r)
			}
			r.Body.Close()
		}
	})

	// Destructive leg last: kill one sibling shard server and require a
	// well-formed partial rather than an error or a silent wrong answer.
	t.Run("kill-one-shard-partial", func(t *testing.T) {
		const doc = 3
		home := f.g.Route(doc)
		victim := -1
		for s := 1; s < f.g.NumShards(); s++ { // shard 0 has a replica; pick one without
			if s != home {
				victim = s
				break
			}
		}
		shardTS[victim].Close()
		resp, body := postJSON(t, fleetTS.URL+"/related", fmt.Sprintf(`{"doc_id": %d, "k": 5}`, doc))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("degraded query status %d: %s", resp.StatusCode, body)
		}
		var rr RelatedResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !rr.PartialResults || len(rr.ShardsMissing) != 1 || rr.ShardsMissing[0] != victim {
			t.Fatalf("want partial_results with shards_missing=[%d], got %s", victim, body)
		}
		if len(rr.Results) == 0 {
			t.Fatalf("partial answer carried no results at all: %s", body)
		}
	})
}

// TestFleetServeCancellationReleasesGoroutines drives the real HTTP
// transport against a shard server that black-holes probes, cancels the
// query, and requires the process to return to its goroutine baseline —
// the network-level version of the leg-release guarantee.
func TestFleetServeCancellationReleasesGoroutines(t *testing.T) {
	f := fleetBackend()
	shardTS := make([]*httptest.Server, f.g.NumShards())
	var hanging atomic.Int64 // probe handlers currently parked; polled, not WaitGroup'd (Wait would race with late Adds)
	for s := 0; s < f.g.NumShards(); s++ {
		inner := NewShardServer(f.hosts[s], Config{}).Handler()
		shardTS[s] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/internal/probe" {
				hanging.Add(1)
				defer hanging.Add(-1)
				// Drain the body so the server's background read can detect
				// the client disconnect and cancel r.Context().
				io.Copy(io.Discard, r.Body)
				<-r.Context().Done() // stuck shard: never answers, honors disconnect
				return
			}
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(shardTS[s].Close)
	}
	topo := fleet.Topology{}
	for s := 0; s < f.g.NumShards(); s++ {
		topo.Endpoints = append(topo.Endpoints, fleet.ShardEndpoints{Shard: s, Primary: shardTS[s].URL})
	}
	c, err := fleet.New(context.Background(), topo, fleet.Options{
		Transport:      fleet.NewHTTPTransport(),
		Timeout:        10 * time.Second,
		AttemptTimeout: 10 * time.Second,
		Retries:        -1,
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	if _, err := c.Related(ctx, 3, 5, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	releaseDeadline := time.Now().Add(5 * time.Second)
	for hanging.Load() != 0 {
		if time.Now().After(releaseDeadline) {
			t.Fatalf("stuck shard handlers were not released by cancellation: %d still parked", hanging.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellation: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFleetServeAuxSurfaces covers the operational endpoints of both
// fleet binaries — /metrics in both formats, /healthz — plus the typed
// error paths the happy-path equivalence tests never touch.
func TestFleetServeAuxSurfaces(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	f := fleetBackend()

	shardTS := httptest.NewServer(NewShardServer(f.hosts[1], Config{}).Handler())
	t.Cleanup(shardTS.Close)

	lt := fleet.NewLocalTransport()
	topo := fleet.Topology{}
	for s := 0; s < f.g.NumShards(); s++ {
		ep := fmt.Sprintf("aux-s%d", s)
		lt.AddHost(ep, f.hosts[s])
		topo.Endpoints = append(topo.Endpoints, fleet.ShardEndpoints{Shard: s, Primary: ep})
	}
	c, err := fleet.New(context.Background(), topo, fleet.Options{Transport: lt})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	fleetTS := httptest.NewServer(NewFleetServer(c, Config{}).Handler())
	t.Cleanup(fleetTS.Close)

	getWith := func(url, accept string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	for name, base := range map[string]string{"shard": shardTS.URL, "fleet": fleetTS.URL} {
		resp, body := getWith(base+"/healthz", "")
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
			t.Fatalf("%s /healthz: status %d body %s", name, resp.StatusCode, body)
		}
		resp, body = getWith(base+"/metrics", "")
		if resp.StatusCode != http.StatusOK || !json.Valid(body) {
			t.Fatalf("%s /metrics JSON: status %d body %.120s", name, resp.StatusCode, body)
		}
		resp, body = getWith(base+"/metrics", obs.PrometheusContentType)
		if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != obs.PrometheusContentType {
			t.Fatalf("%s /metrics prometheus: status %d content-type %q", name, resp.StatusCode, resp.Header.Get("Content-Type"))
		}
		if !strings.Contains(string(body), "# TYPE") {
			t.Fatalf("%s /metrics prometheus exposition missing TYPE lines: %.120s", name, body)
		}
	}

	// Typed errors on the shard surface: explain for a shard this server
	// does not own.
	resp, body := postJSON(t, shardTS.URL+"/internal/explain", `{"shard": 3, "items": []}`)
	if resp.StatusCode != http.StatusMisdirectedRequest || typedError(t, body).Kind != "not_owned" {
		t.Fatalf("misdirected explain: status %d body %s", resp.StatusCode, body)
	}
	// Typed errors on the coordinator surface down the explain branch:
	// an unknown document must 404 identically to the plain branch.
	resp, body = postJSON(t, fleetTS.URL+"/related", `{"doc_id": 999999, "k": 5, "explain": true}`)
	if resp.StatusCode != http.StatusNotFound || typedError(t, body).Kind != "unknown_doc" {
		t.Fatalf("explain for unknown doc: status %d body %s", resp.StatusCode, body)
	}
}

// TestWriteTypedErrorMapping pins the error→(status, kind) table the
// fleet surfaces answer with.
func TestWriteTypedErrorMapping(t *testing.T) {
	cases := []struct {
		err    error
		status int
		kind   string
	}{
		{&fleet.RPCError{Status: http.StatusNotFound, Kind: "unknown_doc", Msg: "x"}, http.StatusNotFound, "unknown_doc"},
		{&fleet.RPCError{Status: 0, Kind: "", Msg: "x"}, http.StatusBadGateway, "internal"},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, "deadline"},
		{context.Canceled, 499, "canceled"},
		{errors.New("plain"), http.StatusBadGateway, "internal"},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		writeTypedError(rec, tc.err)
		if rec.Code != tc.status {
			t.Fatalf("%v: status %d, want %d", tc.err, rec.Code, tc.status)
		}
		if got := typedError(t, rec.Body.Bytes()).Kind; got != tc.kind {
			t.Fatalf("%v: kind %q, want %q", tc.err, got, tc.kind)
		}
	}
}
