package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/forum"
	"repro/internal/obs"
)

// TestServeShardedStress is TestServeStress over the sharded serving
// topology: the same HTTP surface backed by a 4-shard scatter-gather
// group, run under -race (CI does). On top of the well-formedness
// checks it asserts the sharded-specific contracts: every add is
// immediately retrievable (the owning shard answers for it in the next
// scatter), the per-shard counters are monotone and reconcile with the
// totals, /stats reports a consistent shard topology while adds land,
// and captured /related traces carry the scatter-gather events.
func TestServeShardedStress(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)

	const numShards = 4
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 200, Seed: 11})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	const base = 150
	p, err := core.Build(texts[:base], core.Config{Seed: 11, Shards: numShards})
	if err != nil {
		t.Fatal(err)
	}
	extra := texts[base:]

	ts := httptest.NewServer(New(p, Config{SlowQuery: 0}).Handler())
	defer ts.Close()
	client := ts.Client()

	const (
		queryWorkers = 4
		addWorkers   = 2
		queriesEach  = 80
		addsEach     = 20
		scrapesEach  = 40
	)
	var (
		wg       sync.WaitGroup
		failures atomic.Int32
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}
	post := func(path, body string) (*http.Response, error) {
		return client.Post(ts.URL+path, "application/json", strings.NewReader(body))
	}
	related := func(doc int) (RelatedResponse, int, error) {
		var rr RelatedResponse
		resp, err := post("/related", fmt.Sprintf(`{"doc_id": %d, "k": 5}`, doc))
		if err != nil {
			return rr, 0, err
		}
		err = json.NewDecoder(resp.Body).Decode(&rr)
		resp.Body.Close()
		return rr, resp.StatusCode, err
	}

	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				doc := (w*queriesEach + i*7) % base
				rr, status, err := related(doc)
				if err != nil || status != http.StatusOK {
					fail("related: status %d err %v", status, err)
					return
				}
				for j, r := range rr.Results {
					if r.DocID == doc || r.Score < 0 || math.IsNaN(r.Score) {
						fail("related: bad result %+v for doc %d", r, doc)
						return
					}
					if j > 0 && rr.Results[j-1].Score < r.Score {
						fail("related: unsorted results for doc %d", doc)
						return
					}
				}
			}
		}(w)
	}

	// Add workers: beyond unique ids, every added post must be
	// immediately queryable — the directory registered it and its owning
	// shard serves it to the very next scatter.
	var seenIDs sync.Map
	for w := 0; w < addWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < addsEach; i++ {
				text := extra[(w*addsEach+i)%len(extra)]
				resp, err := post("/add", fmt.Sprintf(`{"text": %q}`, text))
				if err != nil {
					fail("add: %v", err)
					return
				}
				var ar AddResponse
				err = json.NewDecoder(resp.Body).Decode(&ar)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail("add: status %d err %v", resp.StatusCode, err)
					return
				}
				if ar.DocID < base {
					fail("add: id %d below base %d", ar.DocID, base)
					return
				}
				if _, dup := seenIDs.LoadOrStore(ar.DocID, true); dup {
					fail("add: duplicate id %d", ar.DocID)
					return
				}
				rr, status, err := related(ar.DocID)
				if err != nil || status != http.StatusOK {
					fail("post-add related for %d: status %d err %v", ar.DocID, status, err)
					return
				}
				if len(rr.Results) == 0 {
					fail("post-add related for %d: no results", ar.DocID)
					return
				}
			}
		}(w)
	}

	// Metrics scrapers: per-shard counters must exist for every shard
	// and stay monotone across scrapes; /stats must report the topology
	// consistently while the collection grows.
	var perShard []string
	for s := 0; s < numShards; s++ {
		perShard = append(perShard, fmt.Sprintf("shard.%02d.queries", s), fmt.Sprintf("shard.%02d.adds", s))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := map[string]int64{}
			for i := 0; i < scrapesEach; i++ {
				resp, err := client.Get(ts.URL + "/metrics")
				if err != nil {
					fail("metrics: %v", err)
					return
				}
				var snap obs.Snapshot
				err = json.NewDecoder(resp.Body).Decode(&snap)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail("metrics: status %d err %v", resp.StatusCode, err)
					return
				}
				for _, name := range perShard {
					v, ok := snap.Counters[name]
					if !ok {
						fail("metrics: per-shard counter %q missing", name)
						return
					}
					if v < last[name] {
						fail("metrics: counter %q went backwards: %d -> %d", name, last[name], v)
						return
					}
					last[name] = v
				}
				var st StatsResponse
				sresp, err := client.Get(ts.URL + "/stats")
				if err != nil {
					fail("stats: %v", err)
					return
				}
				err = json.NewDecoder(sresp.Body).Decode(&st)
				sresp.Body.Close()
				if err != nil {
					fail("stats: %v", err)
					return
				}
				if st.Shards != numShards {
					fail("stats: Shards = %d, want %d", st.Shards, numShards)
					return
				}
				if len(st.ShardDocs) != numShards {
					fail("stats: ShardDocs has %d entries", len(st.ShardDocs))
					return
				}
			}
		}()
	}

	// Trace scraper: captured traces must stay well-formed while the
	// scatter-gather path publishes concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < scrapesEach; i++ {
			resp, err := client.Get(ts.URL + "/debug/traces")
			if err != nil {
				fail("traces: %v", err)
				return
			}
			var tres TracesResponse
			err = json.NewDecoder(resp.Body).Decode(&tres)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				fail("traces: status %d err %v", resp.StatusCode, err)
				return
			}
			for _, rec := range tres.Traces {
				for j := 1; j < len(rec.Events); j++ {
					if rec.Events[j].At < rec.Events[j-1].At {
						fail("traces: %s events not monotone", rec.ID)
						return
					}
				}
			}
		}
	}()

	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d failures under concurrent sharded serve load", failures.Load())
	}

	// Post-conditions: per-shard counters reconcile with the load — each
	// of the N shards answers every scatter, so per-shard query counts
	// are each ≥ the /related request count, and the shard add counters
	// sum to the adds.
	snap := obs.Default.Snapshot()
	wantQueries := int64(queryWorkers * queriesEach)
	var addSum int64
	for s := 0; s < numShards; s++ {
		q := snap.Counters[fmt.Sprintf("shard.%02d.queries", s)]
		if q < wantQueries {
			t.Errorf("shard %d answered %d scatter legs, want ≥ %d", s, q, wantQueries)
		}
		addSum += snap.Counters[fmt.Sprintf("shard.%02d.adds", s)]
	}
	wantAdds := int64(addWorkers * addsEach)
	if addSum < wantAdds {
		t.Errorf("per-shard add counters sum to %d, want ≥ %d", addSum, wantAdds)
	}
	if got := snap.Spans["shard.related"].Count; got < wantQueries {
		t.Errorf("shard.related span count = %d, want ≥ %d", got, wantQueries)
	}
	// The captured /related traces carry the scatter-gather events.
	var sawScatter bool
	resp, err := client.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var tres TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tres); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, rec := range tres.Traces {
		for _, ev := range rec.Events {
			if ev.Name == "shard.merge" || ev.Name == "shard.list" {
				sawScatter = true
			}
		}
	}
	if !sawScatter {
		t.Error("no captured trace carries shard.list/shard.merge events")
	}
	if st := p.Stats(); st.NumDocs != base+int(wantAdds) {
		t.Errorf("final NumDocs = %d, want %d", st.NumDocs, base+int(wantAdds))
	}
	sum := 0
	for _, c := range p.ShardDocs() {
		sum += c
	}
	if sum != base+int(wantAdds) {
		t.Errorf("ShardDocs sums to %d, want %d", sum, base+int(wantAdds))
	}
}
