package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/forum"
	"repro/internal/obs"
)

// Tests of the serving-hygiene layer: the epoch-keyed result cache, the
// singleflight group, and bounded admission, driven through the real
// HTTP handlers. The core property is the oracle equivalence — a cached
// server must answer byte-for-byte what a cache-disabled twin answers
// under any interleaving of queries and mutations — plus the shed and
// collapse behaviors that only show up under concurrency.

// freshHygienePipeline builds a private pipeline for tests that mutate
// their collection (the shared testPipeline is byte-compared against
// the fleet fixture elsewhere, so it must never be added to).
func freshHygienePipeline(t *testing.T, numPosts, shards int) *core.Pipeline {
	t.Helper()
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: numPosts, Seed: 42})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	p, err := core.Build(texts, core.Config{Seed: 42, Shards: shards})
	if err != nil {
		t.Fatalf("core.Build: %v", err)
	}
	return p
}

// waitFor polls cond with a deadline; hygiene state transitions (a
// follower joining a flight, a waiter entering the queue) happen on
// other goroutines and have no completion signal of their own.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// rawPost is postJSON without the testing.T: goroutines must not call
// t.Fatal, so concurrent requests collect results through this and the
// test asserts after joining.
func rawPost(url, body string) (int, []byte, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// TestCacheOracleEquivalence is the invalidation oracle: a cached
// server and a cache-disabled twin over identical private pipelines,
// driven through a seeded random interleaving of /related (docs biased
// toward a hot set so repeats actually hit, k and explain varied) and
// /add (the same text committed to both). Every response must match
// the oracle byte-for-byte — which can only hold if every add
// invalidates every cached entry — at one shard and at four.
func TestCacheOracleEquivalence(t *testing.T) {
	adds := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 30, Seed: 777})
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			obs.Enable()
			t.Cleanup(obs.Disable)
			const numPosts = 120
			cached := New(freshHygienePipeline(t, numPosts, shards), Config{CacheEntries: 256})
			oracle := New(freshHygienePipeline(t, numPosts, shards), Config{})
			cachedTS := httptest.NewServer(cached.Handler())
			t.Cleanup(cachedTS.Close)
			oracleTS := httptest.NewServer(oracle.Handler())
			t.Cleanup(oracleTS.Close)

			rng := rand.New(rand.NewSource(7))
			numDocs, addIdx := numPosts, 0
			for op := 0; op < 80; op++ {
				if addIdx < len(adds) && rng.Float64() < 0.3 {
					b, err := json.Marshal(AddRequest{Text: adds[addIdx].Text})
					if err != nil {
						t.Fatal(err)
					}
					addIdx++
					cResp, cBody := postJSON(t, cachedTS.URL+"/add", string(b))
					oResp, oBody := postJSON(t, oracleTS.URL+"/add", string(b))
					if cResp.StatusCode != oResp.StatusCode || !bytes.Equal(cBody, oBody) {
						t.Fatalf("op %d add: cached %d %s vs oracle %d %s", op, cResp.StatusCode, cBody, oResp.StatusCode, oBody)
					}
					numDocs++
					continue
				}
				doc := rng.Intn(16) // hot set: repeats within an epoch hit the cache
				if rng.Float64() < 0.5 {
					doc = rng.Intn(numDocs)
				}
				k := 1 + rng.Intn(8)
				body := fmt.Sprintf(`{"doc_id": %d, "k": %d, "explain": %t}`, doc, k, rng.Float64() < 0.25)
				// Issue every query twice back-to-back: the repeat is served
				// from the cache (same epoch) and must still match the
				// oracle, which recomputes both times.
				for rep := 0; rep < 2; rep++ {
					cResp, cBody := postJSON(t, cachedTS.URL+"/related", body)
					oResp, oBody := postJSON(t, oracleTS.URL+"/related", body)
					if cResp.StatusCode != oResp.StatusCode {
						t.Fatalf("op %d rep %d %s: status cached=%d oracle=%d", op, rep, body, cResp.StatusCode, oResp.StatusCode)
					}
					if !bytes.Equal(cBody, oBody) {
						t.Fatalf("op %d rep %d %s: bodies diverge:\ncached: %s\noracle: %s", op, rep, body, cBody, oBody)
					}
				}
			}

			// The run must have exercised the machinery it claims to test:
			// hits (so equivalence covered cached answers, not just misses)
			// and epoch invalidations (so adds actually flushed the cache).
			st := cached.cache.Stats()
			if st.Hits == 0 {
				t.Errorf("oracle run produced no cache hits: %+v", st)
			}
			if st.Invalidations == 0 {
				t.Errorf("oracle run produced no epoch invalidations: %+v", st)
			}
			if got := cached.p.Epoch(); got != oracle.p.Epoch() {
				t.Errorf("epochs diverged: cached %d, oracle %d", got, oracle.p.Epoch())
			}
		})
	}
}

// TestSingleflightCollapseServe holds a leader in flight with the
// compute hook and verifies (a) m concurrent identical queries run the
// compute exactly once — one leader, m−1 followers, identical bodies —
// and (b) an /add landing during the flight moves the epoch, so the
// next identical query forms a second flight instead of joining (and
// must not be answered by) the old one.
func TestSingleflightCollapseServe(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	srv := New(freshHygienePipeline(t, 100, 0), Config{CacheEntries: 64})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	entered := make(chan struct{})
	release := make(chan struct{})
	var first atomic.Bool
	var computes atomic.Int64
	srv.testHookCompute = func() {
		computes.Add(1)
		if first.CompareAndSwap(false, true) {
			close(entered)
			<-release
		}
	}

	const m = 6
	const query = `{"doc_id": 4, "k": 6}`
	statuses := make([]int, m)
	bodies := make([][]byte, m)
	errs := make([]error, m)
	var wg sync.WaitGroup

	// The leader goes first and parks in the hook; only then do the
	// followers fire, so all of them deterministically join its flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		statuses[0], bodies[0], errs[0] = rawPost(ts.URL+"/related", query)
	}()
	<-entered
	for i := 1; i < m; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			statuses[i], bodies[i], errs[i] = rawPost(ts.URL+"/related", query)
		}()
	}
	waitFor(t, "followers to join the flight", func() bool {
		return srv.flight.Stats().Followers == m-1
	})

	// Mutate mid-flight: the epoch moves, so the same query shape now
	// reads a different key and elects a second leader immediately (the
	// hook only blocks the first compute).
	if resp, body := postJSON(t, ts.URL+"/add", `{"text": "usb dock firmware flash bricked after update"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("add during flight: status %d body %s", resp.StatusCode, body)
	}
	freshResp, freshBody := postJSON(t, ts.URL+"/related", query)
	if freshResp.StatusCode != http.StatusOK {
		t.Fatalf("post-add query: status %d body %s", freshResp.StatusCode, freshBody)
	}
	if fs := srv.flight.Stats(); fs.Leaders != 2 || fs.Followers != m-1 {
		t.Fatalf("post-add flight stats = %+v, want 2 leaders, %d followers", fs, m-1)
	}

	close(release)
	wg.Wait()
	for i := 0; i < m; i++ {
		if errs[i] != nil || statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d err %v", i, statuses[i], errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("follower %d body diverged from leader:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if got := computes.Load(); got != 2 {
		t.Fatalf("computes = %d, want 2 (blocked leader + post-add leader; followers never compute)", got)
	}

	// The old-epoch leader finished after the add, so its Put was
	// skipped; the post-add leader's entry is the one in the cache.
	hits := srv.cache.Stats().Hits
	if resp, body := postJSON(t, ts.URL+"/related", query); resp.StatusCode != http.StatusOK || !bytes.Equal(body, freshBody) {
		t.Fatalf("repeat after flights: status %d, body matches fresh: %t", resp.StatusCode, bytes.Equal(body, freshBody))
	}
	if got := srv.cache.Stats().Hits; got != hits+1 {
		t.Fatalf("repeat did not hit the current-epoch entry: hits %d → %d", hits, got)
	}
}

// TestAdmissionShedServe pins the overload contract end to end with
// MaxInflight=1, MaxQueued=1: a held slot, one queued request, a typed
// 503 with Retry-After for the third, cancellation unwinding a queued
// waiter, recovery after release, a populated queue-wait histogram,
// and no goroutine leaks once the dust settles.
func TestAdmissionShedServe(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	// No cache: with singleflight off, computes stay request-cancelable,
	// which is what lets the queued waiter unwind.
	srv := New(testPipeline(), Config{MaxInflight: 1, MaxQueued: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Warm the connection pool before taking the goroutine baseline.
	if resp, body := postJSON(t, ts.URL+"/related", `{"doc_id": 1, "k": 3}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: status %d body %s", resp.StatusCode, body)
	}
	baseline := runtime.NumGoroutine()

	entered := make(chan struct{})
	release := make(chan struct{})
	var first atomic.Bool
	srv.testHookCompute = func() {
		if first.CompareAndSwap(false, true) {
			close(entered)
			<-release
		}
	}

	// A holds the only slot.
	aDone := make(chan struct{})
	var aStatus int
	var aErr error
	go func() {
		defer close(aDone)
		aStatus, _, aErr = rawPost(ts.URL+"/related", `{"doc_id": 1, "k": 3}`)
	}()
	<-entered

	// B queues behind it, on a cancelable request context.
	bctx, bcancel := context.WithCancel(context.Background())
	defer bcancel()
	bDone := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(bctx, http.MethodPost, ts.URL+"/related", strings.NewReader(`{"doc_id": 2, "k": 3}`))
		if err != nil {
			bDone <- err
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("queued request completed with status %d, want cancellation", resp.StatusCode)
		}
		bDone <- err
	}()
	waitFor(t, "request to enter the admission queue", func() bool {
		return srv.admit.Stats().QueueDepth == 1
	})

	// C finds slot and queue full: the typed shed with its backoff hint.
	resp, body := postJSON(t, ts.URL+"/related", `{"doc_id": 3, "k": 3}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, body %s", resp.StatusCode, body)
	}
	if kind := typedError(t, body).Kind; kind != "overloaded" {
		t.Fatalf("shed kind = %q, want overloaded", kind)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if st := srv.admit.Stats(); st.Shed != 1 || st.Inflight != 1 || st.QueueDepth != 1 {
		t.Fatalf("post-shed admission stats = %+v", st)
	}

	// Cancel B: the wait unwinds without ever taking the slot.
	bcancel()
	if err := <-bDone; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("queued request after cancel: %v, want context canceled", err)
	}
	waitFor(t, "canceled waiter to leave the queue", func() bool {
		return srv.admit.Stats().QueueDepth == 0
	})

	// Release A; the server recovers fully.
	close(release)
	<-aDone
	if aErr != nil || aStatus != http.StatusOK {
		t.Fatalf("slot holder: status %d err %v", aStatus, aErr)
	}
	if resp, body := postJSON(t, ts.URL+"/related", `{"doc_id": 5, "k": 3}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release query: status %d body %s", resp.StatusCode, body)
	}
	waitFor(t, "inflight to drain", func() bool {
		st := srv.admit.Stats()
		return st.Inflight == 0 && st.QueueDepth == 0
	})

	// B waited in the queue, so the wait histogram has at least one
	// observation.
	if h, ok := obs.Default.Snapshot().Spans["admit.wait"]; !ok || h.Count == 0 {
		t.Fatalf("admit.wait histogram not populated: ok=%t snapshot=%+v", ok, h)
	}

	// Leak check (the PR 8 pattern): drop idle conns, then require the
	// goroutine count back at its pre-storm baseline.
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFleetCachedEquivalenceAndDegradation runs a cached FleetServer
// against an uncached twin over the same LocalTransport fleet: healthy
// answers must match byte-for-byte (including explain) with repeats
// served from the cache; killing a shard must advance the fleet cache
// epoch on the first observed failure, making previously cached
// complete answers unreachable — and the partial answers that follow
// must never enter the cache.
func TestFleetCachedEquivalenceAndDegradation(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	f := fleetBackend()

	lt := fleet.NewLocalTransport()
	topo := fleet.Topology{}
	eps := make([]string, f.g.NumShards())
	for s := 0; s < f.g.NumShards(); s++ {
		eps[s] = fmt.Sprintf("hyg-s%d", s)
		lt.AddHost(eps[s], f.hosts[s])
		topo.Endpoints = append(topo.Endpoints, fleet.ShardEndpoints{Shard: s, Primary: eps[s]})
	}
	newCoord := func() *fleet.Coordinator {
		c, err := fleet.New(context.Background(), topo, fleet.Options{Transport: lt})
		if err != nil {
			t.Fatalf("fleet.New: %v", err)
		}
		return c
	}
	cached := NewFleetServer(newCoord(), Config{CacheEntries: 128})
	plain := NewFleetServer(newCoord(), Config{})
	cachedTS := httptest.NewServer(cached.Handler())
	t.Cleanup(cachedTS.Close)
	plainTS := httptest.NewServer(plain.Handler())
	t.Cleanup(plainTS.Close)

	const warmDoc = 9
	warmBody := fmt.Sprintf(`{"doc_id": %d, "k": 5}`, warmDoc)
	queries := []string{
		warmBody,
		fmt.Sprintf(`{"doc_id": %d, "k": 10, "explain": true}`, warmDoc),
		`{"doc_id": 0, "k": 5}`,
		`{"doc_id": 77, "k": 3, "explain": true}`,
	}
	// Two passes: the first fills the cache, the second is served from
	// it — and both must equal the uncached twin byte-for-byte.
	for pass := 0; pass < 2; pass++ {
		for _, q := range queries {
			cResp, cBody := postJSON(t, cachedTS.URL+"/related", q)
			pResp, pBody := postJSON(t, plainTS.URL+"/related", q)
			if cResp.StatusCode != http.StatusOK || pResp.StatusCode != http.StatusOK {
				t.Fatalf("pass %d %s: status cached=%d plain=%d", pass, q, cResp.StatusCode, pResp.StatusCode)
			}
			if !bytes.Equal(cBody, pBody) {
				t.Fatalf("pass %d %s: bodies diverge:\ncached: %s\nplain:  %s", pass, q, cBody, pBody)
			}
		}
	}
	if st := cached.cache.Stats(); st.Hits < int64(len(queries)) {
		t.Fatalf("second pass not served from cache: %+v", st)
	}
	epoch0 := cached.c.CacheEpoch()

	// Kill a shard that is not the warm doc's home (the home leg must
	// stay resolvable for the query to degrade rather than fail).
	victim := (f.g.Route(warmDoc) + 1) % f.g.NumShards()
	lt.RemoveHost(eps[victim])

	// A query shape never cached observes the failure: it answers
	// partial, bumps the fleet cache epoch via the degraded-health
	// transition, and must not be stored.
	hits0 := cached.cache.Stats().Hits
	degradedBody := fmt.Sprintf(`{"doc_id": %d, "k": 9}`, warmDoc)
	resp, body := postJSON(t, cachedTS.URL+"/related", degradedBody)
	var rr RelatedResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("decode degraded response: %v in %s", err, body)
	}
	if resp.StatusCode != http.StatusOK || !rr.PartialResults {
		t.Fatalf("degraded query: status %d partial=%t body %s", resp.StatusCode, rr.PartialResults, body)
	}
	if got := cached.c.CacheEpoch(); got <= epoch0 {
		t.Fatalf("cache epoch did not advance on degradation: %d → %d", epoch0, got)
	}
	// Repeating it must recompute (a partial was never cached) and
	// still answer partial.
	resp, body = postJSON(t, cachedTS.URL+"/related", degradedBody)
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !rr.PartialResults {
		t.Fatalf("repeated degraded query: status %d partial=%t", resp.StatusCode, rr.PartialResults)
	}
	if got := cached.cache.Stats().Hits; got != hits0 {
		t.Fatalf("a partial answer was served from cache: hits %d → %d", hits0, got)
	}

	// The originally warmed query now carries a new epoch in its key:
	// the old complete entry is unreachable, and the fresh answer is an
	// honest partial.
	resp, body = postJSON(t, cachedTS.URL+"/related", warmBody)
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !rr.PartialResults {
		t.Fatalf("post-degradation warm query served stale complete answer: status %d partial=%t body %s", resp.StatusCode, rr.PartialResults, body)
	}
	if got := cached.cache.Stats().Hits; got != hits0 {
		t.Fatalf("stale complete entry was hit after epoch advance: hits %d → %d", hits0, got)
	}
}

// TestStatsExposesHygieneBlocks pins the /stats contract: the cache,
// singleflight, and admission blocks (with live hit-rate and config)
// appear when the knobs are on, and are absent — leaving the response
// bytes unchanged — when they are off.
func TestStatsExposesHygieneBlocks(t *testing.T) {
	ts := newTestServerCfg(t, Config{CacheEntries: 32, MaxInflight: 2, MaxQueued: 2})
	for i := 0; i < 2; i++ { // miss then hit
		if resp, body := postJSON(t, ts.URL+"/related", `{"doc_id": 1, "k": 4}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("warm query: status %d body %s", resp.StatusCode, body)
		}
	}
	var st StatsResponse
	if resp := getJSON(t, ts.URL+"/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status %d", resp.StatusCode)
	}
	if st.Cache == nil || st.Singleflight == nil || st.Admission == nil {
		t.Fatalf("hygiene blocks missing from /stats: %+v", st)
	}
	if st.Cache.Capacity != 32 || st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.HitRate != 0.5 {
		t.Fatalf("cache block = %+v, want capacity 32, 1 hit, 1 miss, rate 0.5", st.Cache)
	}
	if st.Admission.MaxInflight != 2 || st.Admission.MaxQueued != 2 {
		t.Fatalf("admission block = %+v, want limits 2/2", st.Admission)
	}

	off := newTestServerCfg(t, Config{})
	resp, err := http.Get(off.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"cache"`, `"singleflight"`, `"admission"`} {
		if strings.Contains(string(body), field) {
			t.Fatalf("default /stats leaked hygiene field %s: %s", field, body)
		}
	}
}
