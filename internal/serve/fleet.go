// The fleet halves of the serving layer: ShardServer exposes one
// fleet.Host's internal probe surface over HTTP, FleetServer exposes
// the public /related surface backed by a fleet.Coordinator. Both
// reuse the package's observe middleware, so fleet processes get the
// same access logs, trace rings, and /metrics as the single-process
// server.
//
// Shard server endpoints (internal, consumed by the coordinator):
//
//	POST /internal/home     home leg: resolve probes + scan own partition
//	POST /internal/probe    sibling leg: scan frozen probes
//	POST /internal/explain  term-level Eq 7–9 breakdowns
//	GET  /internal/meta     topology self-description + snapshot epoch
//	GET  /internal/metricsz raw obs snapshot for the federated scrape
//	GET  /metrics, /healthz, /debug/traces
//
// Coordinator endpoints (public, same wire shapes as the single
// binary; /related answers byte-identically when the fleet is
// healthy):
//
//	POST /related           scatter-gather query; adds partial_results +
//	                        shards_missing when degraded
//	POST /add               501: the networked fleet serves read-only
//	                        snapshots (writes go through rebuilds)
//	GET  /stats             fleet topology view + per-shard health
//	GET  /metrics           own process; ?scope=fleet scrapes every
//	                        shard and merges the snapshots exactly
//	GET  /healthz, /debug/traces
//
// Error bodies on these surfaces are typed:
// {"error": {"kind": "...", "message": "..."}} — the kind strings
// ("unknown_doc", "fleet_unavailable", ...) are stable contract, so
// clients and the coordinator's transport can switch on them without
// parsing prose.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/cache"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// Fleet-surface request counters, distinct from the single-process
// http.* family so a coordinator's /metrics separates its own protocol
// layer from any embedded pipeline.
var (
	ctrFleetRelated = obs.NewCounter("http.fleet.related.requests")
	ctrFleetPartial = obs.NewCounter("http.fleet.related.partial")
	ctrShardHome    = obs.NewCounter("http.shard.home.requests")
	ctrShardProbe   = obs.NewCounter("http.shard.probe.requests")
	ctrShardExplain = obs.NewCounter("http.shard.explain.requests")
	ctrShardMeta    = obs.NewCounter("http.shard.meta.requests")
	ctrShardScrapes = obs.NewCounter("http.shard.metricsz.requests")
	ctrFleetScrapes = obs.NewCounter("http.fleet.metrics.fleet_scope")
	ctrTypedErrors  = obs.NewCounter("http.fleet.errors")
)

// ErrorBody is the typed error envelope of the fleet surfaces.
type ErrorBody struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// writeTypedError answers with the fleet error envelope, mapping
// *fleet.RPCError to its status and kind.
func writeTypedError(w http.ResponseWriter, err error) {
	ctrTypedErrors.Inc()
	status, kind := http.StatusBadGateway, "internal"
	var rpc *fleet.RPCError
	switch {
	case errors.As(err, &rpc):
		status, kind = rpc.Status, rpc.Kind
		if status == 0 {
			status = http.StatusBadGateway
		}
		if kind == "" {
			kind = "internal"
		}
	case errors.Is(err, context.DeadlineExceeded):
		status, kind = http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, context.Canceled):
		status, kind = 499, "canceled" // nginx's client-closed-request
	}
	writeJSON(w, status, map[string]ErrorBody{"error": {Kind: kind, Message: err.Error()}})
}

// ShardServer serves one fleet.Host's internal probe surface.
type ShardServer struct {
	host *fleet.Host
	mux  *http.ServeMux
	observer
}

// NewShardServer wraps a host in its HTTP surface. The host publishes
// its request-flagged remote traces through the server's tracer, so a
// shard's /debug/traces shows the shard-local view of the same
// distributed requests the coordinator stitches end to end.
func NewShardServer(h *fleet.Host, cfg Config) *ShardServer {
	s := &ShardServer{host: h, mux: http.NewServeMux(), observer: newObserver(cfg)}
	h.SetTracer(s.tracer)
	s.mux.HandleFunc("POST /internal/home", s.observe("/internal/home", false, s.handleHome))
	s.mux.HandleFunc("POST /internal/probe", s.observe("/internal/probe", false, s.handleProbe))
	s.mux.HandleFunc("POST /internal/explain", s.observe("/internal/explain", false, s.handleExplain))
	s.mux.HandleFunc("GET /internal/meta", s.observe("/internal/meta", false, s.handleMeta))
	s.mux.HandleFunc("GET /internal/metricsz", s.observe("/internal/metricsz", false, s.handleMetricsz))
	s.mux.HandleFunc("GET /metrics", s.observe("/metrics", false, s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.observe("/healthz", false, s.handleHealthz))
	s.mux.HandleFunc("GET /debug/traces", s.observe("/debug/traces", false, s.handleTraces))
	return s
}

// Handler returns the shard server's root handler.
func (s *ShardServer) Handler() http.Handler { return s.mux }

func (s *ShardServer) handleHome(w http.ResponseWriter, r *http.Request) {
	ctrShardHome.Inc()
	var req fleet.HomeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := s.host.HandleHome(&req)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *ShardServer) handleProbe(w http.ResponseWriter, r *http.Request) {
	ctrShardProbe.Inc()
	var req fleet.ProbeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := s.host.HandleProbe(&req)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *ShardServer) handleExplain(w http.ResponseWriter, r *http.Request) {
	ctrShardExplain.Inc()
	var req fleet.ExplainRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := s.host.HandleExplain(&req)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *ShardServer) handleMeta(w http.ResponseWriter, r *http.Request) {
	ctrShardMeta.Inc()
	writeJSON(w, http.StatusOK, s.host.Meta())
}

func (s *ShardServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ctrMetricsRequests.Inc()
	snap := obs.Default.Snapshot()
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		w.WriteHeader(http.StatusOK)
		_ = snap.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleMetricsz is the federated-scrape leg: always the raw JSON
// snapshot (no content negotiation), because its one consumer is the
// coordinator's merge, which needs the exact bucket structure.
func (s *ShardServer) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	ctrShardScrapes.Inc()
	writeJSON(w, http.StatusOK, obs.Default.Snapshot())
}

func (s *ShardServer) handleTraces(w http.ResponseWriter, r *http.Request) {
	ctrTraceRequests.Inc()
	writeJSON(w, http.StatusOK, TracesResponse{Traces: s.tracer.Snapshot()})
}

func (s *ShardServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// FleetServer serves the public surface backed by a coordinator.
type FleetServer struct {
	c   *fleet.Coordinator
	mux *http.ServeMux
	observer
	hygiene
}

// NewFleetServer wraps a bootstrapped coordinator in the public HTTP
// surface. The hygiene knobs of Config apply here too: merged results
// are cached under the coordinator's fleet-wide cache epoch, which
// advances when any shard reports growth or transitions to degraded —
// and partial merges are never cached at all.
func NewFleetServer(c *fleet.Coordinator, cfg Config) *FleetServer {
	s := &FleetServer{c: c, mux: http.NewServeMux(), observer: newObserver(cfg), hygiene: newHygiene(cfg)}
	s.mux.HandleFunc("POST /related", s.observe("/related", true, s.handleRelated))
	s.mux.HandleFunc("POST /add", s.observe("/add", false, s.handleAdd))
	s.mux.HandleFunc("GET /stats", s.observe("/stats", false, s.handleStats))
	s.mux.HandleFunc("GET /metrics", s.observe("/metrics", false, s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.observe("/healthz", false, s.handleHealthz))
	s.mux.HandleFunc("GET /debug/traces", s.observe("/debug/traces", false, s.handleTraces))
	return s
}

// Handler returns the fleet server's root handler.
func (s *FleetServer) Handler() http.Handler { return s.mux }

func (s *FleetServer) handleRelated(w http.ResponseWriter, r *http.Request) {
	ctrFleetRelated.Inc()
	var req RelatedRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.K == 0 {
		req.K = 5
	}
	if req.K < 0 || req.K > 100 {
		writeTypedError(w, &fleet.RPCError{Status: http.StatusBadRequest, Kind: "bad_request", Msg: "k must be in [1,100]"})
		return
	}
	if info := infoFrom(r.Context()); info != nil {
		info.docID, info.hasDoc = req.DocID, true
		info.k, info.hasK = req.K, true
	}
	tr := obs.TraceFrom(r.Context())
	if s.hygiene.enabled() {
		s.handleRelatedHygiene(w, r, req, tr)
		return
	}
	resp, err := s.buildRelated(r.Context(), req, tr)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	if resp.PartialResults {
		ctrFleetPartial.Inc()
	}
	if info := infoFrom(r.Context()); info != nil {
		info.results, info.hasResults = len(resp.Results), true
	}
	writeJSON(w, http.StatusOK, resp)
}

// buildRelated runs the scatter-gather for a validated request.
// Factored out of handleRelated so the default path and the hygiene
// path serve identical bytes.
func (s *FleetServer) buildRelated(ctx context.Context, req RelatedRequest, tr *obs.Trace) (RelatedResponse, error) {
	resp := RelatedResponse{DocID: req.DocID, K: req.K}
	if req.Explain {
		ctrExplainRequests.Inc()
		res, exps, err := s.c.RelatedExplained(ctx, req.DocID, req.K, tr)
		if err != nil {
			return resp, err
		}
		resp.Results = make([]RelatedResult, len(res.Results))
		for i, rr := range res.Results {
			resp.Results[i] = RelatedResult{
				DocID:   rr.DocID,
				Score:   rr.Score,
				Explain: explainClusters(exps[i]),
			}
		}
		resp.PartialResults, resp.ShardsMissing = res.Partial, res.Missing
	} else {
		res, err := s.c.Related(ctx, req.DocID, req.K, tr)
		if err != nil {
			return resp, err
		}
		resp.Results = make([]RelatedResult, len(res.Results))
		for i, rr := range res.Results {
			resp.Results[i] = RelatedResult{DocID: rr.DocID, Score: rr.Score}
		}
		resp.PartialResults, resp.ShardsMissing = res.Partial, res.Missing
	}
	return resp, nil
}

// handleRelatedHygiene is the coordinator's /related path with hygiene
// on. The cache key's epoch is the fleet-wide CacheEpoch; complete
// merges computed at a still-current epoch are cached, partial merges
// never are (they flow through singleflight to followers, then die).
func (s *FleetServer) handleRelatedHygiene(w http.ResponseWriter, r *http.Request, req RelatedRequest, tr *obs.Trace) {
	key := cache.Key{Doc: req.DocID, K: req.K, Explain: req.Explain, Epoch: s.c.CacheEpoch()}
	cctx := s.computeCtx(r.Context())
	e, err := s.relatedHygiene(r.Context(), key, tr, func() (cache.Entry, error) {
		if s.admit != nil {
			if aerr := s.admit.Acquire(cctx); aerr != nil {
				return cache.Entry{}, aerr
			}
			defer s.admit.Release()
		}
		if s.testHookCompute != nil {
			s.testHookCompute()
		}
		resp, berr := s.buildRelated(cctx, req, tr)
		if berr != nil {
			return cache.Entry{}, berr
		}
		body, encErr := encodeBody(resp)
		if encErr != nil {
			return cache.Entry{}, encErr
		}
		entry := cache.Entry{Body: body, Status: http.StatusOK, Results: len(resp.Results), Partial: resp.PartialResults}
		// A degraded merge is never stored, and neither is a complete
		// one whose epoch moved mid-flight (a shard failure during this
		// very query advances CacheEpoch via the health transition, so
		// the double condition usually collapses into one).
		if s.cache != nil && !entry.Partial && s.c.CacheEpoch() == key.Epoch {
			s.cache.Put(key, entry)
		}
		return entry, nil
	})
	if err != nil {
		// Coordinator errors (typed RPC failures, timeouts) and hygiene
		// errors (sheds, canceled waits) both terminate here; sheds get
		// their dedicated envelope with Retry-After.
		if err == cache.ErrOverloaded {
			ctrTypedErrors.Inc()
			if tr != nil {
				tr.Event("admit.shed")
			}
			writeOverloaded(w)
			return
		}
		writeTypedError(w, err)
		return
	}
	if e.Partial {
		ctrFleetPartial.Inc()
	}
	if info := infoFrom(r.Context()); info != nil {
		info.results, info.hasResults = e.Results, true
	}
	writeRawJSON(w, e.Status, e.Body)
}

func (s *FleetServer) handleAdd(w http.ResponseWriter, r *http.Request) {
	ctrAddRequests.Inc()
	writeTypedError(w, &fleet.RPCError{
		Status: http.StatusNotImplemented, Kind: "read_only",
		Msg: "the networked fleet serves read-only snapshots; ingest through the offline build and redeploy the shard directory",
	})
}

// FleetStatsResponse is the coordinator's GET /stats reply: the fleet
// topology view plus the coordinator's live per-shard health ledger
// (consecutive leg failures, last error kind, current hedge delay).
type FleetStatsResponse struct {
	Method      string              `json:"method"`
	NumDocs     int                 `json:"num_docs"`
	Shards      int                 `json:"shards"`
	Epoch       uint64              `json:"epoch"`
	ShardHealth []fleet.ShardHealth `json:"shard_health"`
	// CacheEpoch and the hygiene blocks appear only when caching or
	// admission is on, so a default coordinator's /stats bytes are
	// unchanged.
	CacheEpoch   uint64                `json:"cache_epoch,omitempty"`
	Cache        *cache.Stats          `json:"cache,omitempty"`
	Singleflight *cache.FlightStats    `json:"singleflight,omitempty"`
	Admission    *cache.AdmissionStats `json:"admission,omitempty"`
}

func (s *FleetServer) handleStats(w http.ResponseWriter, r *http.Request) {
	ctrStatsRequests.Inc()
	resp := FleetStatsResponse{
		Method:      s.c.Name(),
		NumDocs:     s.c.NumDocs(),
		Shards:      s.c.NumShards(),
		Epoch:       s.c.Epoch(),
		ShardHealth: s.c.Health(),
	}
	if s.cache != nil {
		resp.CacheEpoch = s.c.CacheEpoch()
		cs := s.cache.Stats()
		resp.Cache = &cs
		fs := s.flight.Stats()
		resp.Singleflight = &fs
	}
	if s.admit != nil {
		as := s.admit.Stats()
		resp.Admission = &as
	}
	writeJSON(w, http.StatusOK, resp)
}

// FleetMetricsResponse is GET /metrics?scope=fleet: every shard's raw
// snapshot scraped in parallel, the exact bucket-wise merge of the
// successes, and explicit failure markers for shards that could not be
// scraped (a dead shard shows up as an Err on its ShardScrape entry,
// never as silently missing series).
type FleetMetricsResponse struct {
	Scope  string              `json:"scope"`
	Shards int                 `json:"shards"`
	Fleet  obs.Snapshot        `json:"fleet"`
	Scrape []fleet.ShardScrape `json:"scrape"`
}

func (s *FleetServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ctrMetricsRequests.Inc()
	if r.URL.Query().Get("scope") == "fleet" {
		s.handleFleetMetrics(w, r)
		return
	}
	snap := obs.Default.Snapshot()
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		w.WriteHeader(http.StatusOK)
		_ = snap.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleFleetMetrics answers the federated form. The Prometheus
// exposition writes the fleet-merged series unprefixed (so dashboards
// built against a single process keep working), then each shard's own
// series under a fleet_shardNN_ prefix, led by a fleet_shardNN_up gauge
// marking scrape success — the per-shard failure marker in text form.
func (s *FleetServer) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	ctrFleetScrapes.Inc()
	scrapes, merged := s.c.ScrapeFleet(r.Context())
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		w.WriteHeader(http.StatusOK)
		_ = merged.WritePrometheus(w)
		for _, sc := range scrapes {
			up := 0
			if sc.Err == "" {
				up = 1
			}
			prefix := fmt.Sprintf("fleet_shard%02d_", sc.Shard)
			fmt.Fprintf(w, "# TYPE %sup gauge\n%sup %d\n", prefix, prefix, up)
			if sc.Snapshot != nil {
				_ = sc.Snapshot.WritePrometheusPrefixed(w, prefix)
			}
		}
		return
	}
	writeJSON(w, http.StatusOK, FleetMetricsResponse{
		Scope:  "fleet",
		Shards: len(scrapes),
		Fleet:  merged,
		Scrape: scrapes,
	})
}

func (s *FleetServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *FleetServer) handleTraces(w http.ResponseWriter, r *http.Request) {
	ctrTraceRequests.Inc()
	writeJSON(w, http.StatusOK, TracesResponse{Traces: s.tracer.Snapshot()})
}
