// Package par provides the bounded-parallelism helper shared by the
// offline build (segmentation, vectorization, preprocessing) and the
// online serving layer (per-intention-cluster queries, batch serving).
// It exists so the fan-out semantics live in exactly one place: callers
// that hard-code their own worker counts drift out of sync with the
// machine (an earlier core helper pinned 8 workers while documenting
// GOMAXPROCS).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Do runs fn(i) for every i in [0, n) across at most workers goroutines
// and returns when all calls have completed. workers <= 0 sizes the pool
// from runtime.GOMAXPROCS(0); with one worker (or fewer than two items)
// the calls run inline on the caller's goroutine. Iterations are handed
// out dynamically, so uneven per-item cost does not idle workers. fn must
// be safe for concurrent invocation when workers > 1.
func Do(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Chunks splits [0, n) into at most `workers` contiguous ranges and runs
// fn(lo, hi) for each on its own goroutine. It is the blocked counterpart
// of Do for loop bodies that amortize per-worker scratch (distance
// buffers, partial sums) across many cheap iterations: each range sees one
// fn call, so the callee can allocate once per range instead of once per
// index. workers <= 0 sizes from runtime.GOMAXPROCS(0); with one worker
// (or n < 2) fn runs inline on the caller's goroutine.
func Chunks(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
