package par

import (
	"sync/atomic"
	"testing"
)

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 16, 100} {
		const n = 250
		counts := make([]int32, n)
		Do(n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, c)
			}
		}
	}
}

func TestDoSmallN(t *testing.T) {
	ran := false
	Do(0, 4, func(int) { ran = true })
	if ran {
		t.Error("Do(0, ...) invoked fn")
	}
	var got int32
	Do(1, 4, func(i int) { atomic.AddInt32(&got, int32(i)+1) })
	if got != 1 {
		t.Errorf("Do(1, ...) ran fn %v times/indices, want exactly i=0 once", got)
	}
}

func TestChunksCoverEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 16, 100} {
		const n = 250
		counts := make([]int32, n)
		chunkCalls := int32(0)
		Chunks(n, workers, func(lo, hi int) {
			atomic.AddInt32(&chunkCalls, 1)
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("workers=%d: bad range [%d, %d)", workers, lo, hi)
				return
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times, want 1", workers, i, c)
			}
		}
		if workers > 0 && int(chunkCalls) > workers && workers <= n {
			t.Errorf("workers=%d: %d chunks, want <= workers", workers, chunkCalls)
		}
	}
}

func TestChunksSmallN(t *testing.T) {
	ran := false
	Chunks(0, 4, func(int, int) { ran = true })
	if ran {
		t.Error("Chunks(0, ...) invoked fn")
	}
	var lo, hi int
	Chunks(1, 4, func(l, h int) { lo, hi = l, h })
	if lo != 0 || hi != 1 {
		t.Errorf("Chunks(1, ...) gave [%d, %d), want [0, 1)", lo, hi)
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak int32
	Do(64, workers, func(int) {
		a := atomic.AddInt32(&active, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if a <= p || atomic.CompareAndSwapInt32(&peak, p, a) {
				break
			}
		}
		atomic.AddInt32(&active, -1)
	})
	if peak > workers {
		t.Errorf("observed %d concurrent calls, want <= %d", peak, workers)
	}
}
