package cache

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

var (
	ctrLeaders   = obs.NewCounter("singleflight.leaders")
	ctrFollowers = obs.NewCounter("singleflight.followers")
)

// call is one in-flight computation shared by every request that
// arrived for the same key while it ran.
type call struct {
	done  chan struct{}
	entry Entry
	err   error
}

// Flight collapses concurrent identical queries: the first request for
// a key becomes the leader and runs the computation, every request for
// the same key that arrives before it finishes becomes a follower and
// just waits for the leader's result.
//
// Keys carry the collection epoch, which is what keeps collapsing
// correct under mutation: a request that starts after an Add commits
// reads a newer epoch, probes a different key, and can never join — or
// be answered by — a flight computed against the old collection state.
type Flight struct {
	mu sync.Mutex
	m  map[Key]*call

	leaders, followers atomic.Int64
}

// NewFlight builds an empty singleflight group.
func NewFlight() *Flight {
	return &Flight{m: make(map[Key]*call)}
}

// Do returns the result of fn for key, running fn exactly once no
// matter how many goroutines call Do concurrently with the same key.
// The boolean reports whether this caller was the leader (ran fn).
//
// A follower whose ctx is canceled stops waiting and returns ctx.Err()
// without disturbing the leader. The leader always runs fn to
// completion; fn is responsible for its own cancellation policy (the
// serving layer deliberately detaches the leader from its request
// context so one impatient client cannot poison the herd).
func (f *Flight) Do(ctx context.Context, key Key, fn func() (Entry, error)) (Entry, error, bool) {
	f.mu.Lock()
	if c, ok := f.m[key]; ok {
		f.mu.Unlock()
		ctrFollowers.Inc()
		f.followers.Add(1)
		select {
		case <-c.done:
			return c.entry, c.err, false
		case <-ctx.Done():
			return Entry{}, ctx.Err(), false
		}
	}
	c := &call{done: make(chan struct{})}
	f.m[key] = c
	f.mu.Unlock()
	ctrLeaders.Inc()
	f.leaders.Add(1)

	c.entry, c.err = fn()

	f.mu.Lock()
	delete(f.m, key)
	f.mu.Unlock()
	close(c.done)
	return c.entry, c.err, true
}

// FlightStats is the per-group view /stats serves.
type FlightStats struct {
	Leaders   int64 `json:"leaders"`
	Followers int64 `json:"followers"`
}

// Stats snapshots this group's counters.
func (f *Flight) Stats() FlightStats {
	return FlightStats{Leaders: f.leaders.Load(), Followers: f.followers.Load()}
}
