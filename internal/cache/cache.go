// Package cache is the serving-hygiene layer for heavy skewed traffic:
// a sharded (mutex-striped) LRU result cache for Related responses,
// singleflight collapsing of concurrent identical queries, and bounded
// admission with load shedding. internal/serve wires the three around
// its /related handlers; all of them are off by default, and with every
// knob at zero the serving path is byte-identical to a build without
// this package.
//
// Correctness rests on epoch keying, not on scanning invalidation. Eq 9
// scores depend on collection-global statistics (unit counts, document
// frequencies, average unique terms), so ANY mutation — one /add —
// shifts every document's scores. A result cached before an add is
// therefore unservable after it, no matter which document it describes.
// Instead of walking the cache on every mutation, the cache key carries
// the collection's epoch (a counter every commit bumps, see
// core.Pipeline.Epoch); a mutation changes the epoch, every future
// lookup probes a key no writer ever wrote, and the stale generation
// ages out through normal LRU eviction. Invalidation is O(1) and
// atomic with the commit that caused it. DESIGN.md §10 states the full
// argument.
package cache

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Cache-layer instruments. Process-global like every obs metric: a
// process embedding several caches (tests, a coordinator next to a
// pipeline) reports their sum, and per-server views come from
// Stats().
var (
	ctrHits          = obs.NewCounter("cache.hits")
	ctrMisses        = obs.NewCounter("cache.misses")
	ctrEvictions     = obs.NewCounter("cache.evictions")
	ctrInvalidations = obs.NewCounter("cache.invalidations")
)

// Key identifies one cacheable Related response. Epoch is the
// collection epoch the response was computed against; because every
// mutation bumps the epoch, two keys with different epochs never alias
// and a stale entry can never answer a fresh lookup.
type Key struct {
	Doc     int
	K       int
	Explain bool
	Epoch   uint64
}

// Entry is one cached response: the exact serialized body the handler
// would have written (so a hit is byte-identical to a miss), the HTTP
// status, and the result count for the access log. Partial marks a
// degraded fleet merge; partial entries flow through singleflight to
// followers but are never stored (a partial result must not be
// replayed as the complete answer).
type Entry struct {
	Body    []byte
	Status  int
	Results int
	Partial bool
}

// numStripes is the mutex striping width. 16 keeps lock contention
// negligible at serving concurrency while staying small enough that
// tiny caches still get at least one entry per stripe.
const numStripes = 16

// node is one intrusive LRU list element.
type node struct {
	key        Key
	entry      Entry
	prev, next *node
}

// stripe is one independently locked LRU segment.
type stripe struct {
	mu    sync.Mutex
	cap   int
	items map[Key]*node
	head  *node // most recently used
	tail  *node // least recently used
}

// ResultCache is a sharded LRU over Related responses. Keys are
// striped by document id, so the hot-post skew the cache exists for
// (many lookups of few documents) spreads across stripes by document
// rather than serializing on one lock.
type ResultCache struct {
	stripes [numStripes]stripe

	// lastEpoch tracks the highest epoch any lookup or store has
	// carried; advancing it counts one logical invalidation (the O(1)
	// event that retired every older-epoch entry at once).
	lastEpoch atomic.Uint64

	// Per-cache view for /stats (the obs counters aggregate every cache
	// in the process).
	hits, misses, evictions, invalidations atomic.Int64
}

// New builds a cache bounded at capacity entries (minimum one per
// stripe — a positive capacity always caches something).
func New(capacity int) *ResultCache {
	per := capacity / numStripes
	if per < 1 {
		per = 1
	}
	c := &ResultCache{}
	for i := range c.stripes {
		c.stripes[i].cap = per
		c.stripes[i].items = make(map[Key]*node, per)
	}
	return c
}

// Capacity returns the total entry budget.
func (c *ResultCache) Capacity() int { return c.stripes[0].cap * numStripes }

// stripeFor picks a stripe by document id. Document ids are dense and
// Zipf-ranked by the workload, so a multiplicative hash spreads the
// hot head across stripes.
func (c *ResultCache) stripeFor(k Key) *stripe {
	h := uint64(k.Doc)*0x9E3779B97F4A7C15 + uint64(k.K)
	return &c.stripes[(h>>59)&(numStripes-1)]
}

// noteEpoch advances the invalidation clock to epoch, counting one
// invalidation per distinct advance observed.
func (c *ResultCache) noteEpoch(epoch uint64) {
	for {
		last := c.lastEpoch.Load()
		if epoch <= last {
			return
		}
		if c.lastEpoch.CompareAndSwap(last, epoch) {
			ctrInvalidations.Inc()
			c.invalidations.Add(1)
			return
		}
	}
}

// Get returns the entry cached under key, marking it most recently
// used.
func (c *ResultCache) Get(key Key) (Entry, bool) {
	c.noteEpoch(key.Epoch)
	s := c.stripeFor(key)
	s.mu.Lock()
	n, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		ctrMisses.Inc()
		c.misses.Add(1)
		return Entry{}, false
	}
	s.moveToFront(n)
	e := n.entry
	s.mu.Unlock()
	ctrHits.Inc()
	c.hits.Add(1)
	return e, true
}

// Put stores entry under key, evicting the stripe's least recently
// used entry when full.
func (c *ResultCache) Put(key Key, entry Entry) {
	c.noteEpoch(key.Epoch)
	s := c.stripeFor(key)
	s.mu.Lock()
	if n, ok := s.items[key]; ok {
		n.entry = entry
		s.moveToFront(n)
		s.mu.Unlock()
		return
	}
	if len(s.items) >= s.cap {
		lru := s.tail
		s.unlink(lru)
		delete(s.items, lru.key)
		ctrEvictions.Inc()
		c.evictions.Add(1)
	}
	n := &node{key: key, entry: entry}
	s.items[key] = n
	s.pushFront(n)
	s.mu.Unlock()
}

// Len returns the live entry count across all stripes.
func (c *ResultCache) Len() int {
	total := 0
	for i := range c.stripes {
		c.stripes[i].mu.Lock()
		total += len(c.stripes[i].items)
		c.stripes[i].mu.Unlock()
	}
	return total
}

// Stats is the per-cache view /stats serves.
type Stats struct {
	Capacity      int     `json:"capacity"`
	Size          int     `json:"size"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
	Evictions     int64   `json:"evictions"`
	Invalidations int64   `json:"invalidations"`
	Epoch         uint64  `json:"epoch"`
}

// Stats snapshots this cache's counters. HitRate is hits/(hits+misses)
// over the cache's lifetime, 0 before any lookup.
func (c *ResultCache) Stats() Stats {
	h, m := c.hits.Load(), c.misses.Load()
	rate := 0.0
	if h+m > 0 {
		rate = float64(h) / float64(h+m)
	}
	return Stats{
		Capacity:      c.Capacity(),
		Size:          c.Len(),
		Hits:          h,
		Misses:        m,
		HitRate:       rate,
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Epoch:         c.lastEpoch.Load(),
	}
}

// Intrusive list plumbing; every method runs under the stripe lock.

func (s *stripe) pushFront(n *node) {
	n.prev, n.next = nil, s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *stripe) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *stripe) moveToFront(n *node) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}
