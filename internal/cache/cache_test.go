package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestCachePutGet(t *testing.T) {
	c := New(64)
	k := Key{Doc: 7, K: 5, Epoch: 1}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, Entry{Body: []byte("body"), Status: 200, Results: 5})
	e, ok := c.Get(k)
	if !ok {
		t.Fatal("miss after Put")
	}
	if string(e.Body) != "body" || e.Status != 200 || e.Results != 5 {
		t.Fatalf("wrong entry: %+v", e)
	}
	// Same doc, different k / explain / epoch: all distinct keys.
	for _, other := range []Key{
		{Doc: 7, K: 6, Epoch: 1},
		{Doc: 7, K: 5, Explain: true, Epoch: 1},
		{Doc: 7, K: 5, Epoch: 2},
	} {
		if _, ok := c.Get(other); ok {
			t.Fatalf("key %+v aliased %+v", other, k)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 4 {
		t.Fatalf("stats hits=%d misses=%d, want 1/4", st.Hits, st.Misses)
	}
	if want := 1.0 / 5.0; st.HitRate != want {
		t.Fatalf("hit rate %v, want %v", st.HitRate, want)
	}
}

func TestCacheUpdateInPlace(t *testing.T) {
	c := New(16)
	k := Key{Doc: 1, K: 5, Epoch: 1}
	c.Put(k, Entry{Body: []byte("old")})
	c.Put(k, Entry{Body: []byte("new")})
	if c.Len() != 1 {
		t.Fatalf("len %d after double Put, want 1", c.Len())
	}
	if e, _ := c.Get(k); string(e.Body) != "new" {
		t.Fatalf("got %q, want new", e.Body)
	}
}

func TestCacheEvictsLRUWithinStripe(t *testing.T) {
	c := New(0) // clamps to 1 entry per stripe
	if c.Capacity() != numStripes {
		t.Fatalf("capacity %d, want %d", c.Capacity(), numStripes)
	}
	// Two keys that land in the same stripe necessarily evict each
	// other at cap 1. Find a same-stripe pair by scanning.
	base := Key{Doc: 0, K: 5, Epoch: 1}
	var other Key
	found := false
	for d := 1; d < 4096; d++ {
		k := Key{Doc: d, K: 5, Epoch: 1}
		if c.stripeFor(k) == c.stripeFor(base) {
			other, found = k, true
			break
		}
	}
	if !found {
		t.Fatal("no same-stripe pair in 4096 docs")
	}
	c.Put(base, Entry{Body: []byte("a")})
	c.Put(other, Entry{Body: []byte("b")})
	if _, ok := c.Get(base); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(other); !ok {
		t.Fatal("MRU entry evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
}

func TestCacheLRUOrderRefreshedByGet(t *testing.T) {
	c := New(0)
	base := Key{Doc: 0, K: 5, Epoch: 1}
	var same []Key
	for d := 1; d < 8192 && len(same) < 2; d++ {
		k := Key{Doc: d, K: 5, Epoch: 1}
		if c.stripeFor(k) == c.stripeFor(base) {
			same = append(same, k)
		}
	}
	if len(same) < 2 {
		t.Fatal("not enough same-stripe keys")
	}
	// Cap 2 in this stripe: rebuild with capacity 2*numStripes.
	c = New(2 * numStripes)
	c.Put(base, Entry{Body: []byte("a")})
	c.Put(same[0], Entry{Body: []byte("b")})
	c.Get(base) // refresh a → b is now LRU
	c.Put(same[1], Entry{Body: []byte("c")})
	if _, ok := c.Get(base); !ok {
		t.Fatal("refreshed entry was evicted")
	}
	if _, ok := c.Get(same[0]); ok {
		t.Fatal("stale entry survived")
	}
}

func TestCacheEpochInvalidationCount(t *testing.T) {
	c := New(64)
	c.Get(Key{Doc: 1, K: 5, Epoch: 0})
	c.Get(Key{Doc: 1, K: 5, Epoch: 1}) // advance: 1 invalidation
	c.Get(Key{Doc: 2, K: 5, Epoch: 1}) // same epoch: no new invalidation
	c.Get(Key{Doc: 1, K: 5, Epoch: 5}) // advance again
	st := c.Stats()
	if st.Invalidations != 2 {
		t.Fatalf("invalidations %d, want 2", st.Invalidations)
	}
	if st.Epoch != 5 {
		t.Fatalf("epoch %d, want 5", st.Epoch)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := New(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Key{Doc: (g*31 + i) % 100, K: 5, Epoch: uint64(i % 3)}
				if i%2 == 0 {
					c.Put(k, Entry{Body: []byte(fmt.Sprintf("d%d", k.Doc))})
				} else if e, ok := c.Get(k); ok {
					if want := fmt.Sprintf("d%d", k.Doc); string(e.Body) != want {
						panic("cross-key body corruption")
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFlightCollapses(t *testing.T) {
	f := NewFlight()
	key := Key{Doc: 3, K: 5, Epoch: 1}
	const m = 8
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	var computed atomic.Int64

	var wg sync.WaitGroup
	results := make([]Entry, m)
	leaders := make([]bool, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err, leader := f.Do(context.Background(), key, func() (Entry, error) {
				computed.Add(1)
				once.Do(func() { close(started) })
				<-release
				return Entry{Body: []byte("shared")}, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i], leaders[i] = e, leader
		}(i)
	}
	<-started
	// Let every follower reach the wait before releasing the leader.
	for {
		f.mu.Lock()
		waiting := f.followers.Load()
		f.mu.Unlock()
		if waiting == m-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := computed.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	nLeaders := 0
	for i := range results {
		if string(results[i].Body) != "shared" {
			t.Fatalf("goroutine %d got %q", i, results[i].Body)
		}
		if leaders[i] {
			nLeaders++
		}
	}
	if nLeaders != 1 {
		t.Fatalf("%d leaders, want 1", nLeaders)
	}
	st := f.Stats()
	if st.Leaders != 1 || st.Followers != m-1 {
		t.Fatalf("stats %+v, want 1 leader / %d followers", st, m-1)
	}
}

func TestFlightDistinctKeysDoNotCollapse(t *testing.T) {
	f := NewFlight()
	var computed atomic.Int64
	var wg sync.WaitGroup
	for e := uint64(1); e <= 3; e++ {
		wg.Add(1)
		go func(e uint64) {
			defer wg.Done()
			f.Do(context.Background(), Key{Doc: 1, K: 5, Epoch: e}, func() (Entry, error) {
				computed.Add(1)
				return Entry{}, nil
			})
		}(e)
	}
	wg.Wait()
	if n := computed.Load(); n != 3 {
		t.Fatalf("fn ran %d times across 3 epochs, want 3", n)
	}
}

func TestFlightFollowerCancel(t *testing.T) {
	f := NewFlight()
	key := Key{Doc: 9, K: 5, Epoch: 1}
	release := make(chan struct{})
	started := make(chan struct{})
	go f.Do(context.Background(), key, func() (Entry, error) {
		close(started)
		<-release
		return Entry{Body: []byte("late")}, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err, _ := f.Do(ctx, key, func() (Entry, error) { return Entry{}, nil })
		done <- err
	}()
	for f.followers.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err %v, want context.Canceled", err)
	}
	close(release) // leader finishes cleanly after the follower left
}

// virtualNow is a hand-advanced clock for admission wait timing.
type virtualNow struct {
	mu sync.Mutex
	t  time.Time
}

func (v *virtualNow) now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.t
}

func (v *virtualNow) advance(d time.Duration) {
	v.mu.Lock()
	v.t = v.t.Add(d)
	v.mu.Unlock()
}

func TestAdmissionShedsWhenFull(t *testing.T) {
	a := NewAdmission(1, 1)
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	queued := make(chan error, 1)
	go func() { queued <- a.Acquire(ctx) }()
	for {
		if a.Stats().QueueDepth == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Limit busy, queue full: third request sheds synchronously.
	if err := a.Acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err %v, want ErrOverloaded", err)
	}
	a.Release() // slot transfers to the queued waiter
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	st := a.Stats()
	if st.Shed != 1 || st.QueuedTotal != 1 {
		t.Fatalf("stats %+v, want shed=1 queued_total=1", st)
	}
	if st.Inflight != 1 || st.QueueDepth != 0 {
		t.Fatalf("stats %+v, want inflight=1 depth=0 after transfer", st)
	}
	a.Release()
	if st := a.Stats(); st.Inflight != 0 {
		t.Fatalf("inflight %d after final release, want 0", st.Inflight)
	}
}

func TestAdmissionFIFO(t *testing.T) {
	a := NewAdmission(1, 3)
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		// Enqueue strictly one at a time so queue order is known.
		ready := make(chan struct{})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			close(ready)
			if err := a.Acquire(ctx); err != nil {
				t.Errorf("acquire %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			a.Release()
		}(i)
		<-ready
		for a.Stats().QueueDepth != i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	a.Release()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v, want FIFO 0,1,2", order)
		}
	}
}

func TestAdmissionCancelLeavesQueue(t *testing.T) {
	vc := &virtualNow{t: time.Unix(0, 0)}
	a := NewAdmission(1, 2)
	a.SetClock(vc.now)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.Acquire(ctx) }()
	for a.Stats().QueueDepth != 1 {
		time.Sleep(time.Millisecond)
	}
	vc.advance(25 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if st := a.Stats(); st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after cancel, want 0", st.QueueDepth)
	}
	// The held slot is unaffected by the canceled waiter.
	a.Release()
	if st := a.Stats(); st.Inflight != 0 {
		t.Fatalf("inflight %d, want 0", st.Inflight)
	}
}

func TestAdmissionWaitHistogramVirtualClock(t *testing.T) {
	// The queue-wait span must record the exact virtually-elapsed wait:
	// obs histograms only record while enabled, so with recording on
	// for just this test the admit.wait sum advances by precisely the
	// advance() amount.
	obs.Enable()
	defer obs.Disable()
	before := spanWait.Snapshot()

	vc := &virtualNow{t: time.Unix(1000, 0)}
	a := NewAdmission(1, 1)
	a.SetClock(vc.now)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- a.Acquire(context.Background()) }()
	for a.Stats().QueueDepth != 1 {
		time.Sleep(time.Millisecond)
	}
	const wait = 40 * time.Millisecond
	vc.advance(wait)
	a.Release() // transfers the slot; the waiter records its queue time
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	a.Release()

	after := spanWait.Snapshot()
	if after.Count != before.Count+1 {
		t.Fatalf("wait histogram count %d, want %d", after.Count, before.Count+1)
	}
	if got := after.Sum - before.Sum; got != int64(wait) {
		t.Fatalf("wait histogram sum advanced %d ns, want exactly %d", got, int64(wait))
	}
}

func TestAdmissionGrantCancelRace(t *testing.T) {
	// A waiter that is granted a slot while its context cancels must
	// pass the slot on, never strand it. Whatever the interleaving,
	// once holder and waiter are done the controller must read
	// inflight=0 / depth=0. Many rounds under -race shake out ordering
	// bugs in the granted handoff.
	for round := 0; round < 200; round++ {
		a := NewAdmission(1, 1)
		if err := a.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			err := a.Acquire(ctx)
			if err == nil {
				a.Release()
			}
			done <- err
		}()
		for a.Stats().QueueDepth != 1 {
			time.Sleep(time.Microsecond)
		}
		go cancel()
		go a.Release()
		<-done
		cancel()
		deadline := time.Now().Add(2 * time.Second)
		for {
			st := a.Stats()
			if st.Inflight == 0 && st.QueueDepth == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: slot stranded: %+v", round, st)
			}
			time.Sleep(time.Microsecond)
		}
	}
}
