package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

var (
	ctrQueued  = obs.NewCounter("admit.queued")
	ctrShed    = obs.NewCounter("admit.shed")
	gaugeDepth = obs.NewGauge("admit.queue_depth")
	spanWait   = obs.NewSpan("admit.wait")
)

// ErrOverloaded is returned by Acquire when the in-flight limit and
// the wait queue are both full. The serving layer maps it to a typed
// 503 with Retry-After.
var ErrOverloaded = errors.New("overloaded: in-flight limit and queue full")

// waiter is one queued Acquire. ready is closed by Release when a slot
// transfers to it; granted disambiguates the race where a waiter is
// granted a slot and canceled at the same time.
type waiter struct {
	ready   chan struct{}
	granted bool
}

// Admission bounds concurrent query computation. Up to maxInflight
// requests compute at once; the next maxQueued wait FIFO for a slot;
// beyond that Acquire sheds with ErrOverloaded. Release hands the slot
// directly to the oldest waiter, so a slot never goes idle while the
// queue is non-empty.
//
// now is a clock hook so tests can drive the queue-wait histogram on a
// virtual clock; production uses time.Now.
type Admission struct {
	maxInflight int
	maxQueued   int
	now         func() time.Time

	mu       sync.Mutex
	inflight int
	queue    []*waiter

	queuedTotal, shed atomic.Int64
}

// NewAdmission builds an admission controller. maxInflight must be
// ≥ 1; maxQueued may be 0 (shed immediately once the limit is
// reached).
func NewAdmission(maxInflight, maxQueued int) *Admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueued < 0 {
		maxQueued = 0
	}
	return &Admission{maxInflight: maxInflight, maxQueued: maxQueued, now: time.Now}
}

// SetClock replaces the wait-time clock; tests only.
func (a *Admission) SetClock(now func() time.Time) { a.now = now }

// Acquire blocks until a computation slot is free, the queue rejects
// the request (ErrOverloaded), or ctx is canceled (ctx.Err()). A nil
// return means the caller holds a slot and must Release it.
func (a *Admission) Acquire(ctx context.Context) error {
	a.mu.Lock()
	if a.inflight < a.maxInflight {
		a.inflight++
		a.mu.Unlock()
		return nil
	}
	if len(a.queue) >= a.maxQueued {
		a.mu.Unlock()
		ctrShed.Inc()
		a.shed.Add(1)
		return ErrOverloaded
	}
	w := &waiter{ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	gaugeDepth.Set(int64(len(a.queue)))
	a.mu.Unlock()
	ctrQueued.Inc()
	a.queuedTotal.Add(1)
	start := a.now()

	select {
	case <-w.ready:
		spanWait.Record(a.now().Sub(start))
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// Release already handed us the slot; give it back so the
			// transfer chain continues.
			a.mu.Unlock()
			spanWait.Record(a.now().Sub(start))
			a.Release()
			return ctx.Err()
		}
		for i, q := range a.queue {
			if q == w {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				break
			}
		}
		gaugeDepth.Set(int64(len(a.queue)))
		a.mu.Unlock()
		spanWait.Record(a.now().Sub(start))
		return ctx.Err()
	}
}

// Release returns a slot. If a waiter is queued the slot transfers to
// it without touching the in-flight count; otherwise the count drops.
func (a *Admission) Release() {
	a.mu.Lock()
	if len(a.queue) > 0 {
		w := a.queue[0]
		a.queue = a.queue[1:]
		w.granted = true
		close(w.ready)
		gaugeDepth.Set(int64(len(a.queue)))
		a.mu.Unlock()
		return
	}
	a.inflight--
	a.mu.Unlock()
}

// AdmissionStats is the per-controller view /stats serves.
type AdmissionStats struct {
	MaxInflight int   `json:"max_inflight"`
	MaxQueued   int   `json:"max_queued"`
	Inflight    int   `json:"inflight"`
	QueueDepth  int   `json:"queue_depth"`
	QueuedTotal int64 `json:"queued_total"`
	Shed        int64 `json:"shed"`
}

// Stats snapshots the controller.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	inflight, depth := a.inflight, len(a.queue)
	a.mu.Unlock()
	return AdmissionStats{
		MaxInflight: a.maxInflight,
		MaxQueued:   a.maxQueued,
		Inflight:    inflight,
		QueueDepth:  depth,
		QueuedTotal: a.queuedTotal.Load(),
		Shed:        a.shed.Load(),
	}
}
