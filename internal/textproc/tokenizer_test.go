package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenizeSimple(t *testing.T) {
	toks := Tokenize("I have an HP system.")
	var got []string
	for _, tok := range toks {
		got = append(got, tok.Text)
	}
	want := []string{"I", "have", "an", "HP", "system", "."}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	src := "RAID 0, 320GB drive!"
	for _, tok := range Tokenize(src) {
		if src[tok.Start:tok.End] != tok.Text {
			t.Errorf("offset mismatch: src[%d:%d]=%q, token %q", tok.Start, tok.End, src[tok.Start:tok.End], tok.Text)
		}
	}
}

func TestTokenizeContractions(t *testing.T) {
	cases := map[string][]string{
		"didn't work":                    {"didn't", "work"},
		"it's a state-of-the-art e-mail": {"it's", "a", "state-of-the-art", "e-mail"},
		"end.'":                          {"end", ".", "'"},
		"don't!":                         {"don't", "!"},
	}
	for in, want := range cases {
		var got []string
		for _, tok := range Tokenize(in) {
			got = append(got, tok.Text)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Tokenize(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestTokenizePositions(t *testing.T) {
	toks := Tokenize("a b c d")
	for i, tok := range toks {
		if tok.Position != i {
			t.Errorf("token %d has Position %d", i, tok.Position)
		}
	}
}

func TestTokenizeUnicode(t *testing.T) {
	toks := Tokenize("café naïve — test")
	var words []string
	for _, tok := range toks {
		if tok.IsWord() {
			words = append(words, tok.Text)
		}
	}
	want := []string{"café", "naïve", "test"}
	if !reflect.DeepEqual(words, want) {
		t.Fatalf("words = %v, want %v", words, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if toks := Tokenize(""); len(toks) != 0 {
		t.Fatalf("Tokenize(\"\") = %v, want empty", toks)
	}
	if toks := Tokenize("   \n\t "); len(toks) != 0 {
		t.Fatalf("Tokenize(whitespace) = %v, want empty", toks)
	}
}

// Property: every token's offsets index back to its text, tokens are in
// order, and no token is empty.
func TestTokenizeOffsetsProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		prevEnd := 0
		for _, tok := range toks {
			if tok.Text == "" {
				return false
			}
			if tok.Start < prevEnd || tok.End <= tok.Start || tok.End > len(s) {
				return false
			}
			if s[tok.Start:tok.End] != tok.Text {
				return false
			}
			prevEnd = tok.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: concatenating tokens plus gaps reconstructs the non-space
// content of the source.
func TestTokenizeCoversNonSpace(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		var b strings.Builder
		for _, tok := range toks {
			b.WriteString(tok.Text)
		}
		stripped := strings.Map(func(r rune) rune {
			if unicode.IsSpace(r) {
				return -1
			}
			return r
		}, s)
		return b.String() == stripped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWords(t *testing.T) {
	got := Words("Do you KNOW whether it would perform OK?")
	want := []string{"do", "you", "know", "whether", "it", "would", "perform", "ok"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Words = %v, want %v", got, want)
	}
}

func TestContentWordsFiltersStopwords(t *testing.T) {
	got := ContentWords("I have an HP system with a RAID controller")
	want := []string{"hp", "system", "raid", "controller"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ContentWords = %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "i", "we", "is", "wasn't"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"printer", "raid", "hotel"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
}
