package textproc

import (
	"testing"
	"testing/quick"
)

func TestStemKnownPairs(t *testing.T) {
	cases := map[string]string{
		"caresses":     "caress",
		"ponies":       "poni",
		"ties":         "ti",
		"caress":       "caress",
		"cats":         "cat",
		"feed":         "feed",
		"agreed":       "agre",
		"plastered":    "plaster",
		"bled":         "bled",
		"motoring":     "motor",
		"sing":         "sing",
		"conflated":    "conflat",
		"troubled":     "troubl",
		"sized":        "size",
		"hopping":      "hop",
		"tanned":       "tan",
		"falling":      "fall",
		"hissing":      "hiss",
		"fizzed":       "fizz",
		"failing":      "fail",
		"filing":       "file",
		"happy":        "happi",
		"sky":          "sky",
		"relational":   "relat",
		"conditional":  "condit",
		"rational":     "ration",
		"valenci":      "valenc",
		"digitizer":    "digit",
		"operator":     "oper",
		"feudalism":    "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"callousness":  "callous",
		"formaliti":    "formal",
		"sensitiviti":  "sensit",
		"sensibiliti":  "sensibl",
		"triplicate":   "triplic",
		"formative":    "form",
		"formalize":    "formal",
		"electriciti":  "electr",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"a", "at", "be", "is"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemNonASCII(t *testing.T) {
	if got := Stem("café"); got != "café" {
		t.Errorf("Stem(café) = %q, want unchanged", got)
	}
}

func TestStemIdempotentOnCommonVocabulary(t *testing.T) {
	// Stemming an already-stemmed IR vocabulary term should be stable enough
	// that double-stemming equals single stemming for typical forum words.
	words := []string{"printer", "printers", "printing", "installed",
		"installing", "installation", "connection", "connected", "drives",
		"booking", "booked", "recommendation", "recommended", "questions"}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		if Stem(twice) != twice {
			t.Errorf("Stem not stable after two applications for %q: %q -> %q -> %q", w, once, twice, Stem(twice))
		}
	}
}

// Property: the stemmer never panics, never lengthens an ASCII word, and
// output is non-empty for non-empty input.
func TestStemProperty(t *testing.T) {
	f := func(s string) bool {
		// Constrain to lower-case ASCII letters, as real input is.
		var b []byte
		for _, r := range s {
			if r >= 'a' && r <= 'z' {
				b = append(b, byte(r))
			}
		}
		w := string(b)
		out := Stem(w)
		if len(w) == 0 {
			return out == ""
		}
		return len(out) > 0 && len(out) <= len(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestContentStems(t *testing.T) {
	got := ContentStems("The printers were printing pages")
	want := []string{"printer", "print", "page"}
	if len(got) != len(want) {
		t.Fatalf("ContentStems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ContentStems = %v, want %v", got, want)
		}
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"relational", "installation", "printers", "configuring",
		"recommendation", "performance", "degradation", "replication"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := "I have an HP system with a RAID 0 controller and 4 disks in form of a JBOD. " +
		"I would like to install Hadoop with a replication 4 HDFS."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(text)
	}
}
