package textproc

import (
	"strings"
	"testing"
	"unicode"
	"unicode/utf8"
)

// Fuzz harnesses for the text substrate. Offsets produced here are the
// coordinate system for the whole pipeline (segment borders, annotator
// windows, WinDiff evaluation), so the harnesses check the structural
// invariants downstream code relies on, not just absence of panics:
//
//   - Tokenize: spans in-bounds, ordered, non-overlapping, faithful
//     (src[Start:End] == Text), positions sequential, and every byte
//     outside a token is part of a whitespace rune.
//   - SplitSentences: same span discipline for sentences and their
//     tokens, plus whitespace-only gaps for valid UTF-8 input.
//   - StripHTML: never panics, always emits valid UTF-8, never grows
//     valid input, and is idempotent whenever the input cannot smuggle
//     an entity ('&'-free) — full idempotence is unattainable for an
//     entity decoder whose output alphabet includes '&', '<' and '>'
//     ("&amp;lt;" decodes to "&lt;", which would decode again).
//
// Seed corpora live in testdata/fuzz/<FuzzName>/; CI replays them (and
// runs a short -fuzz smoke) via scripts/fuzz.sh.

// checkGapWhitespace asserts that src[lo:hi] consists solely of
// whitespace runes — the bytes a scanner is allowed to skip.
func checkGapWhitespace(t *testing.T, what, src string, lo, hi int) {
	t.Helper()
	for k := lo; k < hi; {
		r, size := utf8.DecodeRuneInString(src[k:hi])
		if !unicode.IsSpace(r) {
			t.Fatalf("%s: skipped non-space rune %q at byte %d", what, r, k)
		}
		k += size
	}
}

func FuzzTokenize(f *testing.F) {
	f.Add("My hard disk makes noise. What should I do?")
	f.Add("don't e-mail\tme  at 3.5GB/s — thanks!")
	f.Add("naïve café ’quoted’ state-of-the-art x86-64")
	f.Add("a'b'c--d '' - 'x")
	f.Add("\x80\xfeinvalid\xc2utf8\xa0")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		tokens := Tokenize(text)
		prevEnd := 0
		for i, tok := range tokens {
			if tok.Start < 0 || tok.End > len(text) || tok.Start >= tok.End {
				t.Fatalf("token %d: span [%d,%d) out of bounds for len %d", i, tok.Start, tok.End, len(text))
			}
			if tok.Start < prevEnd {
				t.Fatalf("token %d: span [%d,%d) overlaps previous end %d", i, tok.Start, tok.End, prevEnd)
			}
			if text[tok.Start:tok.End] != tok.Text {
				t.Fatalf("token %d: src[%d:%d] = %q, Text = %q", i, tok.Start, tok.End, text[tok.Start:tok.End], tok.Text)
			}
			if tok.Position != i {
				t.Fatalf("token %d: Position = %d", i, tok.Position)
			}
			checkGapWhitespace(t, "tokenize gap", text, prevEnd, tok.Start)
			prevEnd = tok.End
		}
		checkGapWhitespace(t, "tokenize tail", text, prevEnd, len(text))
	})
}

func FuzzSplitSentences(f *testing.F) {
	f.Add("My hard disk makes noise. What should I do? Please help!")
	f.Add("I upgraded MySQL 5.5.3 yesterday... e.g. the disk, cf. Fig. 2.")
	f.Add("First paragraph.\n\nSecond one!? \"Quoted.\") trailing")
	f.Add("Dr. J. Smith et al.\nno terminator here")
	f.Add("...!!!...   \n \t\n. . .")
	f.Add("bad\xffbytes. mixed\xc2 in? yes.")
	f.Fuzz(func(t *testing.T, text string) {
		sentences := SplitSentences(text)
		valid := utf8.ValidString(text)
		prevEnd := 0
		for i, s := range sentences {
			if s.Start < 0 || s.End > len(text) || s.Start >= s.End {
				t.Fatalf("sentence %d: span [%d,%d) out of bounds for len %d", i, s.Start, s.End, len(text))
			}
			if text[s.Start:s.End] != s.Text {
				t.Fatalf("sentence %d: src[%d:%d] != Text %q", i, s.Start, s.End, s.Text)
			}
			if s.Index != i {
				t.Fatalf("sentence %d: Index = %d", i, s.Index)
			}
			tokPrev := s.Start
			for j, tok := range s.Tokens {
				if tok.Start < s.Start || tok.End > s.End || tok.Start >= tok.End {
					t.Fatalf("sentence %d token %d: span [%d,%d) outside sentence [%d,%d)", i, j, tok.Start, tok.End, s.Start, s.End)
				}
				if text[tok.Start:tok.End] != tok.Text {
					t.Fatalf("sentence %d token %d: offset text mismatch", i, j)
				}
				if tok.Start < tokPrev {
					t.Fatalf("sentence %d token %d: overlaps previous", i, j)
				}
				if tok.Position != j {
					t.Fatalf("sentence %d token %d: Position = %d", i, j, tok.Position)
				}
				tokPrev = tok.End
			}
			// Sentence ordering and whitespace-only gaps. Invalid UTF-8 can
			// defeat the trimmed-span relocation (a continuation byte can
			// alias into a multi-byte whitespace rune), so the gap property
			// is only promised for valid input; span fidelity always holds.
			if valid {
				if s.Start < prevEnd {
					t.Fatalf("sentence %d: span [%d,%d) overlaps previous end %d", i, s.Start, s.End, prevEnd)
				}
				checkGapWhitespace(t, "sentence gap", text, prevEnd, s.Start)
			}
			prevEnd = max(prevEnd, s.End)
		}
		if valid {
			checkGapWhitespace(t, "sentence tail", text, prevEnd, len(text))
		}
	})
}

func FuzzStripHTML(f *testing.F) {
	f.Add("<p>My <b>disk</b> fails &amp; clicks.</p><script>var x=1;</script>")
	f.Add("plain text, no markup at all")
	f.Add("<div><ul><li>one<li>two</ul></div> <a href=\"x\">link</a>")
	f.Add("unclosed <tag and &#65; &#x41; &bogus; &amp")
	f.Add("<STYLE>body{}</STYLE><pre>code &lt;kept&gt;</pre>")
	f.Add("< spaced > text <> <!doctype html> <br/>")
	f.Add("&\x80<\xffentity&#xZZ;")
	f.Fuzz(func(t *testing.T, raw string) {
		out := StripHTML(raw)
		// collapseSpace re-encodes every rune, so the output is valid
		// UTF-8 no matter how mangled the input bytes are.
		if !utf8.ValidString(out) {
			t.Fatalf("output is not valid UTF-8: %q", out)
		}
		// Tags and entities only ever shrink; invalid bytes are the one
		// thing that can grow (1 byte -> U+FFFD), so bound valid input.
		if utf8.ValidString(raw) && len(out) > len(raw) {
			t.Fatalf("output grew: %d -> %d bytes", len(raw), len(out))
		}
		// Without '&' no entity can be produced or smuggled, so a second
		// strip must be a fixed point: every surviving '<' comes from an
		// unclosed-tag tail (no '>' after it), separators are already
		// collapsed, and the result is trimmed.
		if !strings.Contains(raw, "&") {
			if again := StripHTML(out); again != out {
				t.Fatalf("not idempotent on '&'-free input:\n in: %q\none: %q\ntwo: %q", raw, out, again)
			}
		}
	})
}

func FuzzDecodeEntity(f *testing.F) {
	f.Add("&amp; rest")
	f.Add("&#x10FFFF;x")
	f.Add("&#0;&#-3;&#99999999999;")
	f.Add("&;&#;&#x;&notanentity;")
	f.Fuzz(func(t *testing.T, s string) {
		ent, adv, ok := decodeEntity(s)
		if !ok {
			if ent != "" || adv != 0 {
				t.Fatalf("failed decode returned (%q,%d)", ent, adv)
			}
			return
		}
		if ent == "" {
			t.Fatal("ok decode returned empty replacement")
		}
		if adv < 3 || adv > len(s) {
			t.Fatalf("advance %d out of range for len %d", adv, len(s))
		}
		if s[0] != '&' || s[adv-1] != ';' {
			t.Fatalf("decoded span %q is not &...;", s[:adv])
		}
		if !utf8.ValidString(ent) {
			t.Fatalf("replacement %q is not valid UTF-8", ent)
		}
	})
}
