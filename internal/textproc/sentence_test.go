package textproc

import (
	"strings"
	"testing"
	"testing/quick"
)

func sentenceTexts(text string) []string {
	ss := SplitSentences(text)
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Text
	}
	return out
}

func TestSplitSentencesBasic(t *testing.T) {
	got := sentenceTexts("I have a problem. The printer stopped. Can you help?")
	if len(got) != 3 {
		t.Fatalf("got %d sentences %v, want 3", len(got), got)
	}
	if got[0] != "I have a problem." || got[2] != "Can you help?" {
		t.Fatalf("unexpected sentences: %v", got)
	}
}

func TestSplitSentencesAbbreviations(t *testing.T) {
	got := sentenceTexts("The drive, e.g. the JBOD, failed. Dr. Smith replied.")
	if len(got) != 2 {
		t.Fatalf("got %d sentences %v, want 2", len(got), got)
	}
}

func TestSplitSentencesVersionNumbers(t *testing.T) {
	got := sentenceTexts("We used MySQL 5.5.3 for matching. It worked well.")
	if len(got) != 2 {
		t.Fatalf("got %d sentences %v, want 2", len(got), got)
	}
	if !strings.Contains(got[0], "5.5.3") {
		t.Fatalf("version split apart: %v", got)
	}
}

func TestSplitSentencesExclamationRun(t *testing.T) {
	got := sentenceTexts("No more problems!! It finally works.")
	if len(got) != 2 {
		t.Fatalf("got %v, want 2 sentences", got)
	}
}

func TestSplitSentencesEllipsis(t *testing.T) {
	got := sentenceTexts("I waited... Nothing happened.")
	if len(got) != 2 {
		t.Fatalf("got %v, want 2 sentences", got)
	}
}

func TestSplitSentencesBlankLine(t *testing.T) {
	got := sentenceTexts("First paragraph without terminator\n\nSecond paragraph here.")
	if len(got) != 2 {
		t.Fatalf("got %v, want 2 sentences", got)
	}
}

func TestSplitSentencesNoTerminator(t *testing.T) {
	got := sentenceTexts("a post with no final punctuation")
	if len(got) != 1 {
		t.Fatalf("got %v, want 1 sentence", got)
	}
}

func TestSplitSentencesOffsets(t *testing.T) {
	src := "I have an HP system. Do you know whether it would perform ok? Friends downloaded Cloudera."
	for _, s := range SplitSentences(src) {
		if src[s.Start:s.End] != s.Text {
			t.Errorf("sentence offsets wrong: src[%d:%d]=%q, text=%q", s.Start, s.End, src[s.Start:s.End], s.Text)
		}
		for _, tok := range s.Tokens {
			if src[tok.Start:tok.End] != tok.Text {
				t.Errorf("token offsets wrong: src[%d:%d]=%q, token=%q", tok.Start, tok.End, src[tok.Start:tok.End], tok.Text)
			}
		}
	}
}

func TestSplitSentencesIndices(t *testing.T) {
	ss := SplitSentences("One. Two. Three.")
	for i, s := range ss {
		if s.Index != i {
			t.Errorf("sentence %d has Index %d", i, s.Index)
		}
	}
}

func TestSplitSentencesQuestionDetection(t *testing.T) {
	ss := SplitSentences("It stopped. Why did it stop?")
	if len(ss) != 2 {
		t.Fatalf("want 2 sentences, got %v", ss)
	}
	if !ss[1].EndsWith('?') {
		t.Error("second sentence should end with ?")
	}
	if ss[0].EndsWith('?') {
		t.Error("first sentence should not end with ?")
	}
}

// Property: sentence spans are ordered, non-overlapping, in-bounds, and
// every sentence's text matches its span.
func TestSplitSentencesSpansProperty(t *testing.T) {
	f := func(s string) bool {
		prevEnd := 0
		for _, sent := range SplitSentences(s) {
			if sent.Start < prevEnd || sent.End < sent.Start || sent.End > len(s) {
				return false
			}
			if s[sent.Start:sent.End] != sent.Text {
				return false
			}
			if strings.TrimSpace(sent.Text) == "" {
				return false
			}
			prevEnd = sent.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitSentencesPaperPostA(t *testing.T) {
	// Doc A from Fig. 1 of the paper.
	docA := "I have an HP system with a RAID 0 controller and 4 disks in form " +
		"of a JBOD. I would like to install Hadoop with a replication 4 HDFS and " +
		"only 320GB of disk space used from every disc. Do you know whether it " +
		"would perform ok or whether the partial use of the disk would degrade " +
		"performance. Friends have downloaded the Cloudera distribution but it " +
		"didn't work. It stopped since the web site was suggesting to have 1TB " +
		"disks. I am asking because I do not want to install Linux to find that " +
		"my HW configuration is not right."
	ss := SplitSentences(docA)
	if len(ss) != 6 {
		t.Fatalf("Doc A should split into 6 sentences, got %d: %v", len(ss), sentenceTexts(docA))
	}
}
