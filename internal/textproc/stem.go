package textproc

import "strings"

// Stem reduces an English word to its stem using the classic Porter (1980)
// algorithm. Input is expected lower-cased; words shorter than three runes
// are returned unchanged (standard Porter behavior).
func Stem(word string) string {
	if len(word) < 3 {
		return word
	}
	for _, r := range word {
		if r > 127 {
			return word // non-ASCII: leave untouched
		}
	}
	w := []byte(word)
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isCons reports whether w[i] acts as a consonant in Porter's definition:
// vowels are a,e,i,o,u, plus y when preceded by a consonant.
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	}
	return true
}

// measure computes Porter's m: the number of VC sequences in w.
func measure(w []byte) int {
	n := 0
	i := 0
	// Skip initial consonants.
	for i < len(w) && isCons(w, i) {
		i++
	}
	for {
		// Skip vowels.
		for i < len(w) && !isCons(w, i) {
			i++
		}
		if i >= len(w) {
			return n
		}
		// Skip consonants.
		for i < len(w) && isCons(w, i) {
			i++
		}
		n++
		if i >= len(w) {
			return n
		}
	}
}

func hasVowel(w []byte) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether w ends with a doubled consonant.
func endsDoubleCons(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isCons(w, n-1)
}

// endsCVC reports whether w ends consonant-vowel-consonant where the final
// consonant is not w, x, or y.
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isCons(w, n-3) || isCons(w, n-2) || !isCons(w, n-1) {
		return false
	}
	c := w[n-1]
	return c != 'w' && c != 'x' && c != 'y'
}

func hasSuffix(w []byte, s string) bool {
	return len(w) >= len(s) && string(w[len(w)-len(s):]) == s
}

// replaceSuffix replaces suffix s with r when the stem measure condition
// m > minM holds for the stem. It returns the new word and whether a
// replacement occurred.
func replaceSuffix(w []byte, s, r string, minM int) ([]byte, bool) {
	if !hasSuffix(w, s) {
		return w, false
	}
	stem := w[:len(w)-len(s)]
	if measure(stem) <= minM {
		return w, true // matched but condition failed: stop suffix scanning
	}
	out := make([]byte, 0, len(stem)+len(r))
	out = append(out, stem...)
	out = append(out, r...)
	return out, true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		stem := w[:len(w)-3]
		if measure(stem) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	var stem []byte
	switch {
	case hasSuffix(w, "ed") && hasVowel(w[:len(w)-2]):
		stem = w[:len(w)-2]
	case hasSuffix(w, "ing") && hasVowel(w[:len(w)-3]):
		stem = w[:len(w)-3]
	default:
		return w
	}
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleCons(stem) && !hasSuffix(stem, "l") && !hasSuffix(stem, "s") && !hasSuffix(stem, "z"):
		return stem[:len(stem)-1]
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w[:len(w)-1]) {
		out := make([]byte, len(w))
		copy(out, w)
		out[len(out)-1] = 'i'
		return out
	}
	return w
}

var step2Rules = []struct{ s, r string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, rule := range step2Rules {
		if out, ok := replaceSuffix(w, rule.s, rule.r, 0); ok {
			return out
		}
	}
	return w
}

var step3Rules = []struct{ s, r string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, rule := range step3Rules {
		if out, ok := replaceSuffix(w, rule.s, rule.r, 0); ok {
			return out
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := w[:len(w)-len(s)]
		if measure(stem) > 1 {
			return stem
		}
		return w
	}
	// "ion" requires the stem to end in s or t.
	if hasSuffix(w, "ion") {
		stem := w[:len(w)-3]
		if measure(stem) > 1 && (hasSuffix(stem, "s") || hasSuffix(stem, "t")) {
			return stem
		}
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	stem := w[:len(w)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && endsDoubleCons(w) && hasSuffix(w, "ll") {
		return w[:len(w)-1]
	}
	return w
}

// StemAll stems every word of the slice in place and returns it.
func StemAll(words []string) []string {
	for i, w := range words {
		words[i] = Stem(strings.ToLower(w))
	}
	return words
}
