package textproc

// stopwordList is the default English stopword inventory used by the
// indexing layer. The paper's statistics ("stop-words were not considered")
// exclude these from term counts; grammar-bearing words (pronouns,
// auxiliaries) are still visible to the CM annotator because it runs on raw
// tokens, not on the filtered stream.
var stopwordList = []string{
	"a", "about", "above", "after", "again", "against", "all", "also", "am",
	"an", "and", "any", "are", "aren't", "as", "at", "be", "because", "been",
	"before", "being", "below", "between", "both", "but", "by", "can",
	"can't", "cannot", "could", "couldn't", "did", "didn't", "do", "does",
	"doesn't", "doing", "don't", "down", "during", "each", "few", "for",
	"from", "further", "had", "hadn't", "has", "hasn't", "have", "haven't",
	"having", "he", "he'd", "he'll", "he's", "her", "here", "here's", "hers",
	"herself", "him", "himself", "his", "how", "how's", "i", "i'd", "i'll",
	"i'm", "i've", "if", "in", "into", "is", "isn't", "it", "it's", "its",
	"itself", "just", "let's", "me", "more", "most", "mustn't", "my",
	"myself", "no", "nor", "not", "of", "off", "on", "once", "only", "or",
	"other", "ought", "our", "ours", "ourselves", "out", "over", "own",
	"same", "shan't", "she", "she'd", "she'll", "she's", "should",
	"shouldn't", "so", "some", "such", "than", "that", "that's", "the",
	"their", "theirs", "them", "themselves", "then", "there", "there's",
	"these", "they", "they'd", "they'll", "they're", "they've", "this",
	"those", "through", "to", "too", "under", "until", "up", "very", "was",
	"wasn't", "we", "we'd", "we'll", "we're", "we've", "were", "weren't",
	"what", "what's", "when", "when's", "where", "where's", "which", "while",
	"who", "who's", "whom", "why", "why's", "will", "with", "won't", "would",
	"wouldn't", "you", "you'd", "you'll", "you're", "you've", "your",
	"yours", "yourself", "yourselves",
}

var stopwordSet = func() map[string]bool {
	m := make(map[string]bool, len(stopwordList))
	for _, w := range stopwordList {
		m[w] = true
	}
	return m
}()

// IsStopword reports whether the lower-cased word w is an English stopword.
func IsStopword(w string) bool { return stopwordSet[w] }

// ContentWords returns the lower-cased, stopword-filtered word tokens of
// text. This is the term stream the full-text indices are built on.
func ContentWords(text string) []string {
	words := Words(text)
	out := words[:0]
	for _, w := range words {
		if !stopwordSet[w] {
			out = append(out, w)
		}
	}
	return out
}

// ContentStems returns ContentWords after Porter stemming. Stemming is
// optional in the pipeline (Config.Stem); the paper's MySQL baseline does
// not stem, so both forms are exposed.
func ContentStems(text string) []string {
	words := ContentWords(text)
	for i, w := range words {
		words[i] = Stem(w)
	}
	return words
}
