package textproc

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Sentence is a contiguous span of the source text treated as a single text
// unit by the segmentation layer (Sec 9.1.2.B of the paper: sentences are
// the natural text units for intention segmentation). Start and End are byte
// offsets into the source; Tokens are the word/punctuation tokens inside the
// span with offsets still relative to the full source text.
type Sentence struct {
	Text   string
	Start  int
	End    int
	Tokens []Token
	Index  int // zero-based sentence index within the document
}

// Words returns the lower-cased word tokens of the sentence.
func (s Sentence) Words() []string {
	out := make([]string, 0, len(s.Tokens))
	for _, t := range s.Tokens {
		if t.IsWord() {
			out = append(out, t.Lower())
		}
	}
	return out
}

// EndsWith reports whether the sentence's final non-space rune equals r.
func (s Sentence) EndsWith(r rune) bool {
	text := strings.TrimRightFunc(s.Text, unicode.IsSpace)
	last, _ := utf8.DecodeLastRuneInString(text)
	return last == r
}

// abbreviations that should not terminate a sentence when followed by a
// period. Lower-cased, without the trailing dot.
var abbreviations = map[string]bool{
	"mr": true, "mrs": true, "ms": true, "dr": true, "prof": true,
	"sr": true, "jr": true, "st": true, "vs": true, "etc": true,
	"e.g": true, "i.e": true, "eg": true, "ie": true, "cf": true,
	"fig": true, "figs": true, "no": true, "nos": true, "vol": true,
	"approx": true, "dept": true, "est": true, "min": true, "max": true,
	"inc": true, "ltd": true, "co": true, "corp": true, "u.s": true,
	"a.m": true, "p.m": true, "am": false, "pm": false,
}

// SplitSentences divides text into sentences. A sentence ends at '.', '!',
// '?' (or a run of them) when the terminator is followed by whitespace and
// the next word starts a new sentence, with guards for common abbreviations,
// decimal numbers ("5.5"), version strings ("MySQL 5.5.3"), and initials.
// Newline pairs (blank lines) always terminate a sentence.
func SplitSentences(text string) []Sentence {
	var sentences []Sentence
	start := 0
	n := len(text)
	i := 0
	flush := func(end int) {
		seg := text[start:end]
		trimmed := strings.TrimSpace(seg)
		if trimmed == "" {
			start = end
			return
		}
		// Recompute offsets of the trimmed span.
		lead := strings.Index(seg, trimmed)
		s := Sentence{
			Text:  trimmed,
			Start: start + lead,
			End:   start + lead + len(trimmed),
			Index: len(sentences),
		}
		for _, t := range Tokenize(trimmed) {
			t.Start += s.Start
			t.End += s.Start
			s.Tokens = append(s.Tokens, t)
		}
		sentences = append(sentences, s)
		start = end
	}
	for i < n {
		r, size := utf8.DecodeRuneInString(text[i:])
		switch {
		case r == '.' || r == '!' || r == '?':
			// Consume the full terminator run (e.g. "?!", "...").
			j := i + size
			for j < n {
				r2, s2 := utf8.DecodeRuneInString(text[j:])
				if r2 == '.' || r2 == '!' || r2 == '?' {
					j += s2
					continue
				}
				break
			}
			if r == '.' && !isSentencePeriod(text, i, j) {
				i = j
				continue
			}
			// Include trailing closing quotes/parens in the sentence.
			for j < n {
				r2, s2 := utf8.DecodeRuneInString(text[j:])
				if r2 == '"' || r2 == '\'' || r2 == ')' || r2 == '”' || r2 == '’' {
					j += s2
					continue
				}
				break
			}
			flush(j)
			i = j
		case r == '\n':
			// A blank line (two newlines with only spaces between) ends a sentence.
			j := i + size
			sawSecond := false
			for j < n {
				r2, s2 := utf8.DecodeRuneInString(text[j:])
				if r2 == '\n' {
					sawSecond = true
					j += s2
					continue
				}
				if r2 == ' ' || r2 == '\t' || r2 == '\r' {
					j += s2
					continue
				}
				break
			}
			if sawSecond {
				flush(i)
				start = j
			}
			i = j
		default:
			i += size
		}
	}
	if start < n {
		flush(n)
	}
	return sentences
}

// isSentencePeriod decides whether the period at text[i] (with terminator run
// ending at j) actually ends a sentence.
func isSentencePeriod(text string, i, j int) bool {
	// A run of periods ("...") is treated as a terminator.
	if j-i > 1 {
		return true
	}
	// Decimal or version number: digit on both sides.
	if i > 0 && j < len(text) {
		prev, _ := utf8.DecodeLastRuneInString(text[:i])
		next, _ := utf8.DecodeRuneInString(text[j:])
		if unicode.IsDigit(prev) && unicode.IsDigit(next) {
			return false
		}
	}
	// Not a terminator unless followed by space+capital/digit or end of text.
	if j >= len(text) {
		return true
	}
	next, _ := utf8.DecodeRuneInString(text[j:])
	if !unicode.IsSpace(next) {
		return false
	}
	// Peek at the next non-space rune; lowercase continuation suggests an
	// abbreviation mid-sentence ("e.g. the disk").
	k := j
	for k < len(text) {
		r2, s2 := utf8.DecodeRuneInString(text[k:])
		if unicode.IsSpace(r2) {
			k += s2
			continue
		}
		break
	}
	// Preceding word an abbreviation?
	word := lastWordBefore(text, i)
	if abbreviations[strings.ToLower(word)] {
		return false
	}
	// Single capital letter before the dot → an initial ("J. Smith").
	if len(word) == 1 && unicode.IsUpper(rune(word[0])) {
		return false
	}
	// A lowercase continuation ("S.M.A.R.T. alert", "e.g. the disk")
	// signals an abbreviation the list does not know.
	if k < len(text) {
		r2, _ := utf8.DecodeRuneInString(text[k:])
		if unicode.IsLower(r2) {
			return false
		}
	}
	return true
}

// lastWordBefore extracts the word immediately preceding byte offset i.
func lastWordBefore(text string, i int) string {
	end := i
	k := i
	for k > 0 {
		r, size := utf8.DecodeLastRuneInString(text[:k])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '.' {
			k -= size
			continue
		}
		break
	}
	return strings.TrimSuffix(text[k:end], ".")
}
