package textproc

import (
	"strings"
	"testing"
)

func TestStripHTMLBasic(t *testing.T) {
	got := StripHTML("<p>Hello <b>world</b></p>")
	if !strings.Contains(got, "Hello") || !strings.Contains(got, "world") {
		t.Fatalf("StripHTML lost content: %q", got)
	}
	if strings.ContainsAny(got, "<>") {
		t.Fatalf("StripHTML left tags: %q", got)
	}
}

func TestStripHTMLBlockBreaks(t *testing.T) {
	got := StripHTML("<p>First para.</p><p>Second para.</p>")
	if !strings.Contains(got, "\n") {
		t.Fatalf("expected newline between paragraphs: %q", got)
	}
}

func TestStripHTMLEntities(t *testing.T) {
	cases := map[string]string{
		"a &amp; b":      "a & b",
		"x &lt; y":       "x < y",
		"&quot;hi&quot;": `"hi"`,
		"&#65;&#66;":     "AB",
		"&#x41;":         "A",
	}
	for in, want := range cases {
		if got := StripHTML(in); got != want {
			t.Errorf("StripHTML(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStripHTMLScriptDropped(t *testing.T) {
	got := StripHTML("before<script>var x = 'evil';</script>after")
	if strings.Contains(got, "evil") {
		t.Fatalf("script content leaked: %q", got)
	}
	if !strings.Contains(got, "before") || !strings.Contains(got, "after") {
		t.Fatalf("surrounding text lost: %q", got)
	}
}

func TestStripHTMLCodeKept(t *testing.T) {
	got := StripHTML("Use <code>hdfs dfs -ls</code> to list.")
	if !strings.Contains(got, "hdfs dfs -ls") {
		t.Fatalf("code content lost: %q", got)
	}
}

func TestStripHTMLUnclosedTag(t *testing.T) {
	got := StripHTML("a < b and a <b")
	if !strings.Contains(got, "a") {
		t.Fatalf("content lost entirely: %q", got)
	}
}

func TestStripHTMLInlineTagSpacing(t *testing.T) {
	got := StripHTML("one<i>two</i>three")
	words := strings.Fields(got)
	if len(words) != 3 {
		t.Fatalf("inline tags should separate words, got %v", words)
	}
}

func TestStripHTMLMalformedEntity(t *testing.T) {
	got := StripHTML("AT&T works & so on")
	if !strings.Contains(got, "AT&T") {
		t.Fatalf("literal ampersand mangled: %q", got)
	}
}

func TestStripHTMLPlainTextUnchanged(t *testing.T) {
	in := "No markup here. Just text."
	if got := StripHTML(in); got != in {
		t.Fatalf("plain text changed: %q -> %q", in, got)
	}
}

func TestCollapseSpace(t *testing.T) {
	got := StripHTML("a    b\n\n\n\nc")
	if strings.Contains(got, "  ") {
		t.Fatalf("double space survived: %q", got)
	}
	if strings.Contains(got, "\n\n\n") {
		t.Fatalf("triple newline survived: %q", got)
	}
}
