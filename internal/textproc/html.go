package textproc

import (
	"strconv"
	"strings"
	"unicode/utf8"
)

// StripHTML removes HTML/XML tags from raw forum markup and decodes the
// common character entities, returning plain text. Block-level closing tags
// (</p>, </div>, <br>, </li>, ...) are replaced with newlines so that the
// sentence splitter sees paragraph boundaries; <script> and <style> elements
// are dropped entirely, and <code>/<pre> contents are kept (StackOverflow
// posts carry meaningful terms inside code blocks).
func StripHTML(raw string) string {
	var b strings.Builder
	b.Grow(len(raw))
	i := 0
	n := len(raw)
	for i < n {
		c := raw[i]
		if c != '<' {
			if c == '&' {
				if ent, adv, ok := decodeEntity(raw[i:]); ok {
					b.WriteString(ent)
					i += adv
					continue
				}
			}
			b.WriteByte(c)
			i++
			continue
		}
		// Find the end of the tag.
		end := strings.IndexByte(raw[i:], '>')
		if end < 0 {
			// Unclosed '<': keep as literal text.
			b.WriteString(raw[i:])
			break
		}
		tag := raw[i+1 : i+end]
		i += end + 1
		name := tagName(tag)
		switch name {
		case "script", "style":
			// Drop everything through the matching close tag. The search
			// must be case-insensitive without lowering the haystack:
			// ToLower changes byte lengths (multi-byte case mappings,
			// invalid bytes becoming U+FFFD), which would corrupt the
			// offset math on hostile input.
			ci := indexCloseTag(raw[i:], name)
			if ci < 0 {
				i = n
				break
			}
			i += ci
			if gt := strings.IndexByte(raw[i:], '>'); gt >= 0 {
				i += gt + 1
			} else {
				i = n
			}
		case "p", "div", "br", "li", "ul", "ol", "tr", "h1", "h2", "h3", "h4", "blockquote", "pre":
			b.WriteByte('\n')
		default:
			// Inline tag: replace with a space so adjacent words do not fuse.
			b.WriteByte(' ')
		}
	}
	return collapseSpace(b.String())
}

// indexCloseTag returns the byte offset of the first "</name" in s,
// ASCII-case-insensitively (name is a lower-case ASCII element name),
// or -1. Offsets refer to s itself, so they are safe to add to a
// position in the original text.
func indexCloseTag(s, name string) int {
	for j := 0; j+2+len(name) <= len(s); j++ {
		if s[j] == '<' && s[j+1] == '/' && strings.EqualFold(s[j+2:j+2+len(name)], name) {
			return j
		}
	}
	return -1
}

// tagName returns the lower-cased element name of a tag body like
// "a href=..." or "/p".
func tagName(tag string) string {
	tag = strings.TrimSpace(tag)
	tag = strings.TrimPrefix(tag, "/")
	end := len(tag)
	for j := 0; j < len(tag); j++ {
		c := tag[j]
		if c == ' ' || c == '\t' || c == '\n' || c == '/' {
			end = j
			break
		}
	}
	return strings.ToLower(tag[:end])
}

var namedEntities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
	"nbsp": " ", "hellip": "...", "mdash": "—", "ndash": "–",
	"lsquo": "'", "rsquo": "'", "ldquo": `"`, "rdquo": `"`,
	"copy": "©", "reg": "®", "trade": "™", "deg": "°", "middot": "·",
}

// decodeEntity decodes an HTML entity at the start of s ("&amp;", "&#65;",
// "&#x41;"). It returns the decoded text, the number of input bytes
// consumed, and whether an entity was recognized.
func decodeEntity(s string) (string, int, bool) {
	if len(s) < 3 || s[0] != '&' {
		return "", 0, false
	}
	semi := strings.IndexByte(s, ';')
	if semi < 0 || semi > 12 {
		return "", 0, false
	}
	body := s[1:semi]
	if strings.HasPrefix(body, "#") {
		num := body[1:]
		base := 10
		if strings.HasPrefix(num, "x") || strings.HasPrefix(num, "X") {
			num = num[1:]
			base = 16
		}
		v, err := strconv.ParseInt(num, base, 32)
		if err != nil || v <= 0 || v > utf8.MaxRune {
			return "", 0, false
		}
		return string(rune(v)), semi + 1, true
	}
	if rep, ok := namedEntities[body]; ok {
		return rep, semi + 1, true
	}
	return "", 0, false
}

// collapseSpace reduces runs of spaces/tabs to a single space and runs of 3+
// newlines to a blank line, trimming the result.
func collapseSpace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	spacePending := false
	newlines := 0
	for _, r := range s {
		switch r {
		case ' ', '\t', '\r':
			spacePending = true
		case '\n':
			newlines++
			spacePending = false
		default:
			if newlines > 0 {
				if newlines >= 2 {
					b.WriteString("\n\n")
				} else {
					b.WriteByte('\n')
				}
				newlines = 0
			} else if spacePending {
				b.WriteByte(' ')
			}
			spacePending = false
			b.WriteRune(r)
		}
	}
	return strings.TrimSpace(b.String())
}
