// Package textproc provides the low-level text processing substrate used by
// the intention-based segmentation pipeline: word tokenization with byte
// offsets, sentence splitting, HTML cleaning, stemming, and stopword
// filtering.
//
// Forum posts arrive as raw user text (sometimes with embedded HTML). Every
// stage downstream — POS tagging, communication-means annotation,
// segmentation, indexing — consumes the Token and Sentence values produced
// here, so offsets recorded in this package are the coordinate system for
// the whole system (segment borders, annotator offsets, WinDiff windows).
package textproc

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is a single word-level text unit with its position in the original
// text. Start and End are byte offsets into the source string such that
// src[Start:End] == Text. Position is the zero-based token index.
type Token struct {
	Text     string
	Start    int
	End      int
	Position int
}

// Lower returns the lower-cased token text.
func (t Token) Lower() string { return strings.ToLower(t.Text) }

// IsWord reports whether the token contains at least one letter or digit
// (i.e., it is not pure punctuation).
func (t Token) IsWord() bool {
	for _, r := range t.Text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			return true
		}
	}
	return false
}

// Tokenize splits text into tokens. Words are maximal runs of letters,
// digits, and internal apostrophes/hyphens (so "didn't" and "e-mail" are
// single tokens); every other non-space rune becomes a single-rune
// punctuation token. Offsets are byte offsets into text.
func Tokenize(text string) []Token {
	var tokens []Token
	i := 0
	n := len(text)
	for i < n {
		r, size := decodeRune(text[i:])
		switch {
		case unicode.IsSpace(r):
			i += size
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			start := i
			i += size
			for i < n {
				r2, s2 := decodeRune(text[i:])
				if unicode.IsLetter(r2) || unicode.IsDigit(r2) {
					i += s2
					continue
				}
				// Allow internal apostrophe or hyphen when followed by a letter:
				// "don't", "state-of-the-art".
				if (r2 == '\'' || r2 == '’' || r2 == '-') && i+s2 < n {
					r3, _ := decodeRune(text[i+s2:])
					if unicode.IsLetter(r3) || unicode.IsDigit(r3) {
						i += s2
						continue
					}
				}
				break
			}
			tokens = append(tokens, Token{Text: text[start:i], Start: start, End: i, Position: len(tokens)})
		default:
			tokens = append(tokens, Token{Text: text[i : i+size], Start: i, End: i + size, Position: len(tokens)})
			i += size
		}
	}
	return tokens
}

// Words returns only the word tokens of text (punctuation removed),
// lower-cased. It is the convenience entry point used by the indexing layer.
func Words(text string) []string {
	toks := Tokenize(text)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.IsWord() {
			out = append(out, t.Lower())
		}
	}
	return out
}

func decodeRune(s string) (rune, int) { return utf8.DecodeRuneInString(s) }
