package shard

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/index"
	"repro/internal/match"
)

// Persistence for a shard group is a directory, not a single stream: a
// small JSON manifest naming the topology (shard count, routing seed,
// document and cluster counts) plus one shard file per shard, each in
// the match.MR codec — the compact section layout for new writes, with
// legacy gob shard files still loading through ReadMR's magic sniffing —
// so a shard file is readable by the plain ReadMR and inspectable with
// the same tooling as an unsharded snapshot. The manifest records which
// codec the directory was written with (informational; each file
// self-describes via its magic). The manifest is what makes the directory reconstructible:
// routing is a pure function of (seed, id), so the loader rebuilds the
// whole global↔local id directory by replaying the route over
// 0..Docs-1, then cross-checks every shard's document count against
// what the routing predicts — a wrong seed, a missing document, or
// shard files from a different build fail loudly instead of serving
// wrong neighbors.

// manifestVersion is the shard directory layout version.
const manifestVersion = 1

// ManifestName is the manifest's file name inside a shard directory.
const ManifestName = "manifest.json"

// ShardFileName returns shard s's file name inside a shard directory.
func ShardFileName(s int) string { return fmt.Sprintf("shard-%04d.mr", s) }

// Manifest is the JSON topology record written next to the shard
// files. It is exported because the fleet layer (internal/fleet) plans
// its topology from it: shard servers load a subset of the directory
// and need the global shard count, routing seed, and document count to
// describe themselves to the coordinator.
type Manifest struct {
	Version   int    `json:"version"`
	Name      string `json:"name"`
	Shards    int    `json:"shards"`
	RouteSeed uint64 `json:"route_seed"`
	Docs      int    `json:"docs"`
	Clusters  int    `json:"clusters"`
	// Codec names the shard-file layout the directory was written with:
	// "compact" for the section format, absent/empty in directories
	// written before the field existed (legacy gob). Informational —
	// the loader trusts each file's own magic, not this field.
	Codec string `json:"codec,omitempty"`
}

// WriteDir persists the group into dir (created if needed): the
// manifest plus one MR-codec file per shard. It holds addMu for the
// duration so the manifest's document count and every shard file
// describe the same frozen population; queries are not blocked.
func (g *Group) WriteDir(dir string) error {
	g.addMu.Lock()
	defer g.addMu.Unlock()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: creating %s: %w", dir, err)
	}
	m := Manifest{
		Version:   manifestVersion,
		Name:      g.Name(),
		Shards:    g.n,
		RouteSeed: g.seed,
		Docs:      g.NumDocs(),
		Clusters:  g.NumClusters(),
		Codec:     "compact",
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encoding manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("shard: writing manifest: %w", err)
	}
	for s, sh := range g.shards {
		if err := writeShardFile(filepath.Join(dir, ShardFileName(s)), sh); err != nil {
			return err
		}
	}
	return nil
}

func writeShardFile(path string, sh *match.MR) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("shard: creating %s: %w", filepath.Base(path), err)
	}
	w := bufio.NewWriter(f)
	if _, err := sh.WriteTo(w); err != nil {
		f.Close()
		return fmt.Errorf("shard: writing %s: %w", filepath.Base(path), err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("shard: writing %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shard: closing %s: %w", filepath.Base(path), err)
	}
	return nil
}

// ReadDir loads a shard group from a directory written by WriteDir:
// manifest, shard files, shared statistics pools (rebuilt by attaching
// every shard — the files carry only local state), and the replayed
// routing directory. Every failure is a descriptive error naming the
// offending file; nothing panics on truncated or corrupt input.
func ReadDir(dir string) (*Group, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}

	shards := make([]*match.MR, m.Shards)
	for s := range shards {
		sh, err := readShardFile(dir, s, m.Clusters, m.Shards)
		if err != nil {
			return nil, err
		}
		shards[s] = sh
	}

	stats := make([]*index.GlobalStats, m.Clusters)
	for c := range stats {
		stats[c] = index.NewGlobalStats()
	}
	for s, sh := range shards {
		if err := sh.AttachGlobalStats(stats); err != nil {
			return nil, fmt.Errorf("shard: attaching %s: %w", ShardFileName(s), err)
		}
	}

	g := newGroup(shards, stats, m.RouteSeed)
	for d := 0; d < m.Docs; d++ {
		g.register(routeDoc(m.RouteSeed, d, m.Shards))
	}
	for s, sh := range shards {
		if want, got := len(g.global[s]), sh.NumDocs(); want != got {
			return nil, fmt.Errorf("shard: %s holds %d documents but routing %d over seed %d assigns it %d (wrong seed, or shard files from a different build?)",
				ShardFileName(s), got, m.Docs, m.RouteSeed, want)
		}
	}
	return g, nil
}

// ReadManifest reads and validates a shard directory's manifest without
// touching the shard files.
func ReadManifest(dir string) (Manifest, error) {
	var m Manifest
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return m, fmt.Errorf("shard: reading manifest: %w", err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return m, fmt.Errorf("shard: decoding manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return m, fmt.Errorf("shard: unsupported manifest version %d (want %d)", m.Version, manifestVersion)
	}
	if m.Shards < 1 {
		return m, fmt.Errorf("shard: manifest declares %d shards", m.Shards)
	}
	if m.Docs < 0 || m.Clusters < 1 {
		return m, fmt.Errorf("shard: manifest declares %d documents in %d clusters", m.Docs, m.Clusters)
	}
	return m, nil
}

// readShardFile loads one shard file, cross-checking its cluster count
// against the manifest's.
func readShardFile(dir string, s, clusters, declared int) (*match.MR, error) {
	name := ShardFileName(s)
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return nil, fmt.Errorf("shard: opening %s (manifest declares %d shards): %w", name, declared, err)
	}
	sh, err := match.ReadMR(bufio.NewReader(f))
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("shard: reading %s: %w", name, err)
	}
	if got := sh.NumClusters(); got != clusters {
		return nil, fmt.Errorf("shard: %s has %d clusters, manifest declares %d", name, got, clusters)
	}
	return sh, nil
}

// ReadDirShards loads the shards named in own from a shard directory,
// attached to statistics pools that cover the ENTIRE collection. Eq 7–9
// scores depend on collection-global quantities (unit count N, per-term
// document frequency, average unique-term count), so a server holding
// one partition must still accumulate every shard's contribution into
// the shared pools; ReadDirShards streams the non-owned shard files
// through the pools one at a time and drops them, keeping steady-state
// memory proportional to the owned partitions. The owned matchers come
// back keyed by shard id, each verified against the routing replay
// exactly as ReadDir verifies a full load.
func ReadDirShards(dir string, own []int) (map[int]*match.MR, Manifest, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, m, err
	}
	want := make(map[int]bool, len(own))
	for _, s := range own {
		if s < 0 || s >= m.Shards {
			return nil, m, fmt.Errorf("shard: cannot own shard %d of %d", s, m.Shards)
		}
		want[s] = true
	}

	stats := make([]*index.GlobalStats, m.Clusters)
	for c := range stats {
		stats[c] = index.NewGlobalStats()
	}

	// Routing replay: per-shard document counts predicted by the seed,
	// used to validate every file we read (owned or streamed).
	predicted := make([]int, m.Shards)
	for d := 0; d < m.Docs; d++ {
		predicted[routeDoc(m.RouteSeed, d, m.Shards)]++
	}

	out := make(map[int]*match.MR, len(want))
	for s := 0; s < m.Shards; s++ {
		sh, err := readShardFile(dir, s, m.Clusters, m.Shards)
		if err != nil {
			return nil, m, err
		}
		if got := sh.NumDocs(); got != predicted[s] {
			return nil, m, fmt.Errorf("shard: %s holds %d documents but routing %d over seed %d assigns it %d (wrong seed, or shard files from a different build?)",
				ShardFileName(s), got, m.Docs, m.RouteSeed, predicted[s])
		}
		if err := sh.AttachGlobalStats(stats); err != nil {
			return nil, m, fmt.Errorf("shard: attaching %s: %w", ShardFileName(s), err)
		}
		if want[s] {
			out[s] = sh
		}
		// Not owned: the matcher is garbage once its statistics are in the
		// pools. Dropping it here keeps peak memory at owned + 1 shards.
	}
	return out, m, nil
}
