package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// ReadDirShards is the fleet loader: a shard server owning a subset of
// partitions must still score collection-globally, because every
// non-owned shard file is streamed through the shared statistics pools
// before being dropped. These tests pin that contract and the loader's
// error surface.

func TestReadDirShardsPartialLoad(t *testing.T) {
	_, g := buildGroup(t, 120, 4)
	dir := t.TempDir()
	if err := g.WriteDir(dir); err != nil {
		t.Fatal(err)
	}

	own := []int{1, 3}
	shards, m, err := ReadDirShards(dir, own)
	if err != nil {
		t.Fatalf("ReadDirShards(%v): %v", own, err)
	}
	if m.Shards != 4 || m.Docs != g.NumDocs() || m.RouteSeed != g.Seed() {
		t.Fatalf("manifest diverged: %+v", m)
	}
	if len(shards) != len(own) {
		t.Fatalf("want %d owned matchers, got %d", len(own), len(shards))
	}
	for _, s := range own {
		sh, ok := shards[s]
		if !ok {
			t.Fatalf("owned shard %d missing from the result", s)
		}
		if sh.NumDocs() != g.ShardMR(s).NumDocs() {
			t.Fatalf("shard %d holds %d docs, group's partition holds %d",
				s, sh.NumDocs(), g.ShardMR(s).NumDocs())
		}
		// Collection-global scoring: with the non-owned shards streamed
		// through the pools, a partial load must rank its partition
		// exactly like the live group's matcher for the same partition.
		for local := 0; local < sh.NumDocs(); local++ {
			sameResults(t, fmt.Sprintf("shard %d local %d", s, local),
				g.ShardMR(s).Match(local, 5), sh.Match(local, 5))
		}
	}

	// Routing is a pure function of (seed, id, n); the exported replay
	// must agree with the live group for every document.
	for d := 0; d < g.NumDocs(); d++ {
		if RouteDoc(g.Seed(), d, 4) != g.Route(d) {
			t.Fatalf("RouteDoc diverges from Group.Route at doc %d", d)
		}
	}
}

func TestReadDirShardsErrors(t *testing.T) {
	_, g := buildGroup(t, 60, 2)
	dir := t.TempDir()
	if err := g.WriteDir(dir); err != nil {
		t.Fatal(err)
	}

	if _, _, err := ReadDirShards(filepath.Join(dir, "nope"), []int{0}); err == nil {
		t.Fatal("missing directory must fail")
	}
	for _, own := range [][]int{{-1}, {2}} {
		if _, _, err := ReadDirShards(dir, own); err == nil || !strings.Contains(err.Error(), "cannot own") {
			t.Fatalf("out-of-range own %v: got %v", own, err)
		}
	}
	// A corrupt NON-owned file must still fail the load: its statistics
	// are part of every owned shard's scores.
	if err := os.WriteFile(filepath.Join(dir, ShardFileName(1)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadDirShards(dir, []int{0}); err == nil || !strings.Contains(err.Error(), ShardFileName(1)) {
		t.Fatalf("corrupt non-owned shard file: got %v", err)
	}
}
