package shard

import (
	"fmt"
	"testing"

	"repro/internal/forum"
	"repro/internal/index"
	"repro/internal/match"
)

// TestShardPrunedEquivalence re-proves the package's equivalence
// guarantee with the max-score scan forced on: at every shard count the
// scatter legs prune — the home leg unfloored, the siblings against the
// floor the coordinator seeds from the home lists — and the merged
// ranking must still be bit-identical to the unsharded matcher, which
// itself is bit-identical to exhaustive scoring (proven in
// internal/index and internal/match). Concurrent-add interleavings are
// covered by TestGroupConcurrentAddQuery, which also runs pruned once
// the shards outgrow the default gate.
func TestShardPrunedEquivalence(t *testing.T) {
	old := index.PruneMinUnits
	index.PruneMinUnits = 1
	t.Cleanup(func() { index.PruneMinUnits = old })

	docs := genDocs(t, forum.TechSupport, 200, 42)
	extra := genDocs(t, forum.TechSupport, 224, 42)[200:]
	for _, ns := range []int{1, 2, 4, 8} {
		mr := match.NewMR("MR", docs, match.MRConfig{Seed: 7})
		g, err := NewGroup(mr, ns, 42)
		if err != nil {
			t.Fatalf("NewGroup(%d): %v", ns, err)
		}
		for d := 0; d < mr.NumDocs(); d++ {
			for _, k := range []int{1, 5} {
				sameResults(t, fmt.Sprintf("pruned shards=%d doc=%d k=%d", ns, d, k),
					mr.Match(d, k), g.Match(d, k))
			}
		}
		// Adds shift the statistics pool and every list bound; the floors
		// must stay conservative against the moved collection too.
		for _, doc := range extra {
			mr.Add(doc)
			g.Add(doc)
		}
		for d := 0; d < mr.NumDocs(); d += 5 {
			sameResults(t, fmt.Sprintf("pruned post-add shards=%d doc=%d", ns, d),
				mr.Match(d, 5), g.Match(d, 5))
		}
	}
}
