package shard

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/forum"
	"repro/internal/match"
	"repro/internal/segment"
)

// The tests in this file are the proof obligation of the package
// comment: for every document of a corpus, at every shard count, a
// Group returns bit-identical scores and identical rankings to the
// single unsharded matcher it was split from — across configuration
// variants (threshold selection, list normalization, deeper lists) and
// across incremental adds applied to both sides.

func genDocs(t testing.TB, domain forum.Domain, n int, seed int64) []*segment.Doc {
	t.Helper()
	posts := forum.Generate(forum.Config{Domain: domain, NumPosts: n, Seed: seed})
	docs := make([]*segment.Doc, len(posts))
	for i, p := range posts {
		docs[i] = segment.NewDoc(p.Text)
	}
	return docs
}

// sameResults asserts bit-for-bit equality: same documents, in the same
// order, with float64-equal scores (== , not a tolerance).
func sameResults(t *testing.T, ctx string, want, got []match.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results unsharded vs %d sharded\nunsharded: %v\nsharded:   %v",
			ctx, len(want), len(got), want, got)
	}
	for i := range want {
		if want[i].DocID != got[i].DocID || want[i].Score != got[i].Score {
			t.Fatalf("%s: result %d diverges: unsharded %d/%v sharded %d/%v",
				ctx, i, want[i].DocID, want[i].Score, got[i].DocID, got[i].Score)
		}
	}
}

func TestShardEquivalence(t *testing.T) {
	shardCounts := []int{1, 2, 4, 8}
	configs := []struct {
		name string
		cfg  match.MRConfig
	}{
		{"default", match.MRConfig{Seed: 7}},
		{"threshold", match.MRConfig{Seed: 7, ScoreThreshold: 0.3}},
		{"normalized", match.MRConfig{Seed: 7, NormalizeLists: true}},
		{"nfactor3", match.MRConfig{Seed: 7, NFactor: 3}},
	}
	corpora := []struct {
		domain forum.Domain
		n      int
		seed   int64
	}{
		{forum.TechSupport, 200, 42},
		{forum.Travel, 160, 1234},
	}
	for _, co := range corpora {
		docs := genDocs(t, co.domain, co.n, co.seed)
		extra := genDocs(t, co.domain, co.n+24, co.seed)[co.n:]
		for _, cv := range configs {
			// The Travel corpus exercises a single config — the variants
			// probe the query path, not the corpus generator.
			if co.seed != 42 && cv.name != "default" {
				continue
			}
			t.Run(fmt.Sprintf("%s-seed%d-%s", co.domain, co.seed, cv.name), func(t *testing.T) {
				mr := match.NewMR("MR", docs, cv.cfg)
				for _, ns := range shardCounts {
					g, err := NewGroup(mr, ns, uint64(co.seed))
					if err != nil {
						t.Fatalf("NewGroup(%d): %v", ns, err)
					}
					for d := 0; d < mr.NumDocs(); d++ {
						for _, k := range []int{1, 5} {
							sameResults(t, fmt.Sprintf("shards=%d doc=%d k=%d", ns, d, k),
								mr.Match(d, k), g.Match(d, k))
						}
					}
					// Identical adds on both sides must keep the equivalence:
					// routing sends each new document to one shard, but its
					// statistics reach every shard through the shared pools.
					for _, doc := range extra {
						wantID := mr.Add(doc)
						if gotID := g.Add(doc); gotID != wantID {
							t.Fatalf("shards=%d: add assigned id %d, unsharded %d", ns, gotID, wantID)
						}
					}
					for d := 0; d < mr.NumDocs(); d += 7 {
						sameResults(t, fmt.Sprintf("post-add shards=%d doc=%d", ns, d),
							mr.Match(d, 5), g.Match(d, 5))
					}
					// Rebuild the unsharded reference without the adds for the
					// next shard count (each iteration re-adds extra).
					mr = match.NewMR("MR", docs, cv.cfg)
				}
			})
		}
	}
}

func TestShardExplainEquivalence(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 150, 42)
	mr := match.NewMR("MR", docs, match.MRConfig{Seed: 7})
	g, err := NewGroup(mr, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{0, 17, 63, 149} {
		wantRes, wantExp := mr.MatchExplained(d, 5)
		gotRes, gotExp := g.MatchExplained(d, 5)
		sameResults(t, fmt.Sprintf("explain doc=%d", d), wantRes, gotRes)
		if len(wantExp) != len(gotExp) {
			t.Fatalf("doc %d: %d vs %d explanations", d, len(wantExp), len(gotExp))
		}
		for i := range wantExp {
			we, ge := wantExp[i], gotExp[i]
			if we.DocID != ge.DocID || we.Score != ge.Score {
				t.Fatalf("doc %d result %d: explanation header diverges: %+v vs %+v", d, i, we, ge)
			}
			if len(we.Clusters) != len(ge.Clusters) {
				t.Fatalf("doc %d result %d: %d vs %d cluster contributions", d, i, len(we.Clusters), len(ge.Clusters))
			}
			sum := 0.0
			for j := range we.Clusters {
				wc, gc := we.Clusters[j], ge.Clusters[j]
				if wc.Cluster != gc.Cluster || wc.Score != gc.Score {
					t.Fatalf("doc %d result %d cluster %d: %v/%v vs %v/%v",
						d, i, j, wc.Cluster, wc.Score, gc.Cluster, gc.Score)
				}
				if len(wc.Terms) != len(gc.Terms) {
					t.Fatalf("doc %d result %d cluster %d: %d vs %d terms", d, i, j, len(wc.Terms), len(gc.Terms))
				}
				for ti := range wc.Terms {
					if wc.Terms[ti] != gc.Terms[ti] {
						t.Fatalf("doc %d result %d cluster %d term %d: %+v vs %+v",
							d, i, j, ti, wc.Terms[ti], gc.Terms[ti])
					}
				}
				sum += gc.Score
			}
			if math.Abs(sum-ge.Score) > 1e-9 {
				t.Fatalf("doc %d result %d: cluster contributions sum to %v, score %v", d, i, sum, ge.Score)
			}
		}
	}
}

func TestRouteDeterminism(t *testing.T) {
	// Pinned values: the route must be stable across platforms and
	// releases, or persisted shard directories stop loading.
	pinned := []struct {
		seed uint64
		doc  int
		n    int
		want int
	}{
		{0, 0, 4, routeDoc(0, 0, 4)},
		{42, 100, 8, routeDoc(42, 100, 8)},
	}
	for _, p := range pinned {
		if got := routeDoc(p.seed, p.doc, p.n); got != p.want {
			t.Errorf("routeDoc(%d, %d, %d) = %d, want %d", p.seed, p.doc, p.n, got, p.want)
		}
	}
	// Redundancy check on the pinning pattern above: recompute after the
	// fact to ensure routeDoc is a pure function of its arguments.
	for seed := uint64(0); seed < 3; seed++ {
		for d := 0; d < 1000; d++ {
			a := routeDoc(seed, d, 8)
			b := routeDoc(seed, d, 8)
			if a != b || a < 0 || a >= 8 {
				t.Fatalf("routeDoc(%d, %d, 8) unstable or out of range: %d, %d", seed, d, a, b)
			}
		}
	}
	// Balance: 1000 docs over 8 shards should leave no shard empty or
	// holding more than a third of the corpus.
	counts := make([]int, 8)
	for d := 0; d < 1000; d++ {
		counts[routeDoc(42, d, 8)]++
	}
	for s, c := range counts {
		if c == 0 || c > 333 {
			t.Errorf("shard %d holds %d of 1000 docs — routing badly balanced: %v", s, c, counts)
		}
	}
}

func TestGroupAccessors(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 120, 42)
	mr := match.NewMR("MR", docs, match.MRConfig{Seed: 7})
	g, err := NewGroup(mr, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != mr.Name() {
		t.Errorf("Name() = %q, want %q", g.Name(), mr.Name())
	}
	if g.NumShards() != 4 || g.Seed() != 99 {
		t.Errorf("NumShards/Seed = %d/%d", g.NumShards(), g.Seed())
	}
	if g.NumDocs() != mr.NumDocs() {
		t.Errorf("NumDocs() = %d, want %d", g.NumDocs(), mr.NumDocs())
	}
	if g.NumClusters() != mr.NumClusters() {
		t.Errorf("NumClusters() = %d, want %d", g.NumClusters(), mr.NumClusters())
	}
	if len(g.Centroids()) != mr.NumClusters() {
		t.Errorf("Centroids() has %d rows", len(g.Centroids()))
	}
	if g.Stats().NumSegments != mr.Stats().NumSegments {
		t.Errorf("Stats().NumSegments = %d, want %d", g.Stats().NumSegments, mr.Stats().NumSegments)
	}
	sum := 0
	for s, c := range g.ShardDocs() {
		if want := len(g.global[s]); c != want {
			t.Errorf("ShardDocs()[%d] = %d, want %d", s, c, want)
		}
		sum += c
	}
	if sum != g.NumDocs() {
		t.Errorf("ShardDocs sums to %d, NumDocs %d", sum, g.NumDocs())
	}
	for d := 0; d < g.NumDocs(); d++ {
		if got, want := g.Route(d), int(g.owner[d]); got != want {
			t.Fatalf("Route(%d) = %d, directory owner %d", d, got, want)
		}
	}
	wb, wa := mr.SegmentCounts()
	gb, ga := g.SegmentCounts()
	for d := range wb {
		if wb[d] != gb[d] || wa[d] != ga[d] {
			t.Fatalf("SegmentCounts diverge at doc %d: %d/%d vs %d/%d", d, wb[d], wa[d], gb[d], ga[d])
		}
	}
}

func TestGroupEdgeCases(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 60, 42)
	mr := match.NewMR("MR", docs, match.MRConfig{Seed: 7})
	if _, err := NewGroup(mr, 0, 1); err == nil {
		t.Error("NewGroup with 0 shards should fail")
	}
	g, err := NewGroup(mr, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Match(-1, 5); got != nil {
		t.Errorf("Match(-1) = %v, want nil", got)
	}
	if got := g.Match(g.NumDocs(), 5); got != nil {
		t.Errorf("Match(out of range) = %v, want nil", got)
	}
	if got := g.Match(0, 0); got != nil {
		t.Errorf("Match(k=0) = %v, want nil", got)
	}
	if res, exp := g.MatchExplained(-1, 5); res != nil || exp != nil {
		t.Error("MatchExplained(-1) should return nils")
	}
	if res, exp := g.MatchExplained(0, 0); res != nil || exp != nil {
		t.Error("MatchExplained(k=0) should return nils")
	}
}

// TestGroupConcurrentAddQuery hammers one Group with concurrent queries
// and adds; run under -race it checks the directory/commit locking, and
// its assertions check that every add is immediately visible and that
// queries never return the query document or an unsorted list.
func TestGroupConcurrentAddQuery(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 120, 42)
	extra := genDocs(t, forum.TechSupport, 200, 42)[120:]
	mr := match.NewMR("MR", docs, match.MRConfig{Seed: 7})
	g, err := NewGroup(mr, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d := (w*37 + i) % 120
				res := g.Match(d, 5)
				for j, r := range res {
					if r.DocID == d {
						errs <- fmt.Sprintf("query %d returned itself", d)
					}
					if j > 0 && (res[j-1].Score < r.Score ||
						(res[j-1].Score == r.Score && res[j-1].DocID > r.DocID)) {
						errs <- fmt.Sprintf("query %d: results out of order at %d", d, j)
					}
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(extra); i += 2 {
				id := g.Add(extra[i])
				// The add must be immediately visible: the owning shard
				// answers for it, and the directory resolves it.
				if res := g.Match(id, 3); res == nil {
					errs <- fmt.Sprintf("added doc %d not queryable", id)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if want := 120 + len(extra); g.NumDocs() != want {
		t.Errorf("NumDocs() = %d after adds, want %d", g.NumDocs(), want)
	}
	// Per-shard counts must reconcile with the directory after the storm.
	sum := 0
	for _, c := range g.ShardDocs() {
		sum += c
	}
	if sum != g.NumDocs() {
		t.Errorf("ShardDocs sums to %d, NumDocs %d", sum, g.NumDocs())
	}
}
