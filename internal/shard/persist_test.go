package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/forum"
	"repro/internal/match"
)

// Persistence tests: the round trip must reproduce the unsharded
// matcher's results exactly, and every damaged-directory shape —
// missing files, truncated or corrupt payloads, lying manifests — must
// come back as a descriptive error naming the offending file, never a
// panic. testdata/corrupt is a committed regression fixture (a
// manifest over a garbage shard file) so the corrupt-payload path
// stays covered even if the generated cases drift.

func buildGroup(t *testing.T, numDocs, shards int) (*match.MR, *Group) {
	t.Helper()
	docs := genDocs(t, forum.TechSupport, numDocs, 42)
	mr := match.NewMR("MR", docs, match.MRConfig{Seed: 7})
	g, err := NewGroup(mr, shards, 42)
	if err != nil {
		t.Fatal(err)
	}
	return mr, g
}

func TestShardDirRoundTrip(t *testing.T) {
	mr, g := buildGroup(t, 150, 4)
	dir := t.TempDir()
	if err := g.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != g.NumDocs() || loaded.NumShards() != 4 || loaded.Seed() != 42 {
		t.Fatalf("loaded group topology %d/%d/%d, want %d/4/42",
			loaded.NumDocs(), loaded.NumShards(), loaded.Seed(), g.NumDocs())
	}
	// The loaded group must be equivalent to the original unsharded
	// matcher, not merely to the group that wrote it: pools are rebuilt
	// from shard files, so this checks the attach-on-load statistics too.
	for d := 0; d < mr.NumDocs(); d++ {
		sameResults(t, fmt.Sprintf("loaded doc=%d", d), mr.Match(d, 5), loaded.Match(d, 5))
	}
	// And it must keep serving adds.
	extra := genDocs(t, forum.TechSupport, 152, 42)[150:]
	for _, doc := range extra {
		wantID := mr.Add(doc)
		if gotID := loaded.Add(doc); gotID != wantID {
			t.Fatalf("loaded add assigned id %d, want %d", gotID, wantID)
		}
	}
	for d := 0; d < mr.NumDocs(); d += 11 {
		sameResults(t, fmt.Sprintf("loaded post-add doc=%d", d), mr.Match(d, 5), loaded.Match(d, 5))
	}
}

// editManifest rewrites one field of a written manifest in place.
func editManifest(t *testing.T, dir string, mutate func(m map[string]any)) {
	t.Helper()
	path := filepath.Join(dir, ManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	mutate(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReadDirNegativePaths(t *testing.T) {
	_, g := buildGroup(t, 80, 2)
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
		wantSub string
	}{
		{
			name:    "missing manifest",
			corrupt: func(t *testing.T, dir string) { os.Remove(filepath.Join(dir, ManifestName)) },
			wantSub: "reading manifest",
		},
		{
			name: "corrupt manifest json",
			corrupt: func(t *testing.T, dir string) {
				os.WriteFile(filepath.Join(dir, ManifestName), []byte("{not json"), 0o644)
			},
			wantSub: "decoding manifest",
		},
		{
			name: "unsupported version",
			corrupt: func(t *testing.T, dir string) {
				editManifest(t, dir, func(m map[string]any) { m["version"] = 9 })
			},
			wantSub: "unsupported manifest version 9",
		},
		{
			name: "zero shards",
			corrupt: func(t *testing.T, dir string) {
				editManifest(t, dir, func(m map[string]any) { m["shards"] = 0 })
			},
			wantSub: "declares 0 shards",
		},
		{
			name: "negative docs",
			corrupt: func(t *testing.T, dir string) {
				editManifest(t, dir, func(m map[string]any) { m["docs"] = -1 })
			},
			wantSub: "declares -1 documents",
		},
		{
			name: "missing shard file",
			corrupt: func(t *testing.T, dir string) {
				os.Remove(filepath.Join(dir, ShardFileName(1)))
			},
			wantSub: "opening shard-0001.mr",
		},
		{
			name: "shard count mismatch",
			corrupt: func(t *testing.T, dir string) {
				// The manifest promises a third shard the directory lacks.
				editManifest(t, dir, func(m map[string]any) { m["shards"] = 3 })
			},
			wantSub: "manifest declares 3 shards",
		},
		{
			name: "truncated shard file",
			corrupt: func(t *testing.T, dir string) {
				path := filepath.Join(dir, ShardFileName(0))
				info, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(path, info.Size()/2); err != nil {
					t.Fatal(err)
				}
			},
			wantSub: "reading shard-0000.mr",
		},
		{
			name: "corrupt shard payload",
			corrupt: func(t *testing.T, dir string) {
				path := filepath.Join(dir, ShardFileName(1))
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				for i := 20; i < len(raw) && i < 200; i++ {
					raw[i] ^= 0xFF
				}
				os.WriteFile(path, raw, 0o644)
			},
			wantSub: "shard-0001.mr",
		},
		{
			name: "cluster count mismatch",
			corrupt: func(t *testing.T, dir string) {
				editManifest(t, dir, func(m map[string]any) { m["clusters"] = 99 })
			},
			wantSub: "manifest declares 99",
		},
		{
			name: "wrong routing seed",
			corrupt: func(t *testing.T, dir string) {
				// A different seed routes the documents differently; the
				// per-shard doc-count cross-check must catch it.
				editManifest(t, dir, func(m map[string]any) { m["route_seed"] = 7777 })
			},
			wantSub: "wrong seed",
		},
		{
			name: "wrong doc count",
			corrupt: func(t *testing.T, dir string) {
				editManifest(t, dir, func(m map[string]any) { m["docs"] = 10 })
			},
			wantSub: "holds",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := g.WriteDir(dir); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, dir)
			loaded, err := ReadDir(dir)
			if err == nil {
				t.Fatalf("ReadDir succeeded on %s (loaded %d docs)", tc.name, loaded.NumDocs())
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestReadDirCorruptFixture pins the committed crasher: a manifest over
// a file of garbage bytes must produce a decode error naming the file.
func TestReadDirCorruptFixture(t *testing.T) {
	_, err := ReadDir(filepath.Join("testdata", "corrupt"))
	if err == nil {
		t.Fatal("ReadDir accepted the corrupt fixture")
	}
	if !strings.Contains(err.Error(), "shard-0000.mr") {
		t.Fatalf("error %q does not name the corrupt shard file", err)
	}
}

func TestWriteDirErrors(t *testing.T) {
	_, g := buildGroup(t, 40, 2)
	// Target is a file, not a directory.
	base := t.TempDir()
	blocker := filepath.Join(base, "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteDir(filepath.Join(blocker, "sub")); err == nil {
		t.Error("WriteDir into a file path should fail")
	}
}

// writeLegacyDir writes the group the way pre-compact builds did: the
// same manifest minus the codec field, with every shard file in the
// legacy gob layout. It is the migration-era directory shape the loader
// must keep accepting via per-file magic sniffing.
func writeLegacyDir(t *testing.T, g *Group, dir string) {
	t.Helper()
	if err := g.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	editManifest(t, dir, func(m map[string]any) { delete(m, "codec") })
	for s, sh := range g.shards {
		f, err := os.Create(filepath.Join(dir, ShardFileName(s)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sh.WriteGobTo(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardDirLegacyCompactEquivalence is the old-vs-new acceptance
// gate at the shard level: for shard counts 1, 2, and 4, a legacy-gob
// directory and a compact directory of the same group load into groups
// that return bit-identical scores and rankings — to each other and to
// the unsharded matcher the group was split from.
func TestShardDirLegacyCompactEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			mr, g := buildGroup(t, 120, shards)
			compactDir, legacyDir := t.TempDir(), t.TempDir()
			if err := g.WriteDir(compactDir); err != nil {
				t.Fatal(err)
			}
			writeLegacyDir(t, g, legacyDir)

			// The compact directory self-describes its codec; the legacy one
			// has no codec field at all.
			raw, err := os.ReadFile(filepath.Join(compactDir, ManifestName))
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(raw), `"codec": "compact"`) {
				t.Errorf("compact manifest does not record its codec:\n%s", raw)
			}

			fromCompact, err := ReadDir(compactDir)
			if err != nil {
				t.Fatalf("compact dir: %v", err)
			}
			fromLegacy, err := ReadDir(legacyDir)
			if err != nil {
				t.Fatalf("legacy dir: %v", err)
			}
			for d := 0; d < mr.NumDocs(); d++ {
				want := mr.Match(d, 5)
				sameResults(t, fmt.Sprintf("compact doc=%d", d), want, fromCompact.Match(d, 5))
				sameResults(t, fmt.Sprintf("legacy doc=%d", d), want, fromLegacy.Match(d, 5))
			}
		})
	}
}
