// Package shard is the horizontally partitioned serving layer: it
// splits one built match.MR collection across N independent shard
// matchers by deterministic document-id routing, answers Related
// queries by scattering Algorithm 1's per-intention-cluster probes to
// every shard in parallel and merging the per-shard candidate lists
// with a single heap pass, and routes each Add to exactly one shard —
// so writers contend on 1/N of the corpus and readers of the other
// shards never block on a commit.
//
// The load-bearing guarantee is exact equivalence with the unsharded
// path: for the same collection and the same query, a Group returns
// bit-identical scores and the identical ranking (under the documented
// tie-break) that the single match.MR returns. Three mechanisms carry
// the proof, each tested in this package and below it:
//
//  1. Global statistics. Eq 7–9 scores depend on three
//     collection-level quantities — the unit count N, the per-term
//     document frequency, and the average unique-term count. Every
//     shard's cluster index is attached to a shared
//     index.GlobalStats pool, so shards score against the whole
//     collection's statistics, not their partition's.
//  2. Global list cuts. Algorithm 1's top-n cut must be applied to
//     each intention list globally: the merge collects every shard's
//     top-n candidates per cluster into one topk heap of depth n
//     (the global top-n is a subset of the union of per-shard top-n
//     lists, because restriction preserves a total order), applies
//     the threshold/normalization trim to the merged list, and only
//     then runs Algorithm 2's summation — in the same ascending
//     cluster order and the same descending (score, ascending id)
//     within-list order as the unsharded path, so the float sums are
//     bit-identical.
//  3. Order-preserving ids. The tie-break (score descending, document
//     id ascending) survives sharding because shard-local ids ascend
//     with global ids: Split walks documents in ascending global
//     order, and Add serializes commit+registration so same-shard
//     commit order equals global-id order. Mapping a shard's
//     (score, local id) list to global ids is therefore monotone, and
//     the merged heap reproduces the unsharded ordering exactly.
//
// Routing is a pure integer function of (seed, doc id) — a
// splitmix64-style mix — so it is platform-stable and reconstructible
// from the persisted manifest (see persist.go).
package shard

import (
	"fmt"
	"sync"

	"repro/internal/index"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/segment"
	"repro/internal/topk"
)

// Group-level observability. shard.related times the whole
// scatter-gather query; shard.merge.candidates sizes the Algorithm 2
// merge input (the union of trimmed per-cluster lists). Per-shard
// instruments (shard.NN.query spans, shard.NN.queries/adds counters,
// shard.NN.width histograms) are created per Group via the GetOrNew
// registrars, since several groups may live in one process.
var (
	spanRelated = obs.NewSpan("shard.related")
	histMerge   = obs.NewCountHistogram("shard.merge.candidates")
)

// Group serves one logical collection partitioned across n shard
// matchers.
//
// Locking model: the shards carry their own RWMutexes (match.MR) and
// statistics pools their own (index.GlobalStats); the Group adds two.
// dirMu guards the global↔local id directory (owner/local/global),
// which queries read and Add appends to. addMu serializes the whole
// commit+register step of Add — it is what keeps same-shard local ids
// ascending in global-id order (invariant 3 of the package comment);
// queries never touch it, so Related is blocked only by the owning
// shard's own commit, never by writes to other shards. A document is
// guaranteed visible to queries once Add returns; in the microseconds
// between a shard commit and directory registration, the merge simply
// skips the not-yet-registered local id.
type Group struct {
	cfg       match.MRConfig
	n         int
	seed      uint64
	shards    []*match.MR
	stats     []*index.GlobalStats
	centroids [][]float64

	addMu sync.Mutex // serializes Add commit+register; see type comment

	dirMu  sync.RWMutex
	owner  []int32   // global doc id → owning shard
	local  []int32   // global doc id → shard-local doc id
	global [][]int32 // shard → local doc id → global doc id

	spanQuery  []*obs.Span      // shard.NN.query: per-shard scatter leg latency
	ctrQueries []*obs.Counter   // shard.NN.queries: scatter legs answered
	ctrAdds    []*obs.Counter   // shard.NN.adds: documents committed
	histWidth  []*obs.Histogram // shard.NN.width: candidate width contributed per query
}

// routeDoc maps a global document id to its shard: a splitmix64-style
// finalizer over (seed + id), reduced modulo n. Pure integer math, so
// the same (seed, id, n) routes identically on every platform and
// process — the property the persisted manifest relies on to
// reconstruct the directory.
func routeDoc(seed uint64, doc, n int) int {
	x := seed + uint64(doc)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(n))
}

// NewGroup partitions a built matcher into n shards routed by seed.
// The source matcher is read, not consumed; it shares immutable state
// (centroids, term slices, configuration) with the shards but no index
// or serving state, so callers typically drop it to avoid holding two
// copies of the postings.
func NewGroup(mr *match.MR, n int, seed uint64) (*Group, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: group needs at least 1 shard, got %d", n)
	}
	k := mr.NumClusters()
	stats := make([]*index.GlobalStats, k)
	for c := range stats {
		stats[c] = index.NewGlobalStats()
	}
	shards, err := mr.Split(n, func(d int) int { return routeDoc(seed, d, n) }, stats)
	if err != nil {
		return nil, err
	}
	g := newGroup(shards, stats, seed)
	for d, numDocs := 0, mr.NumDocs(); d < numDocs; d++ {
		g.register(routeDoc(seed, d, n))
	}
	return g, nil
}

// newGroup assembles a Group around existing shards (fresh from Split
// or loaded from disk) and resolves its per-shard instruments.
func newGroup(shards []*match.MR, stats []*index.GlobalStats, seed uint64) *Group {
	n := len(shards)
	g := &Group{
		cfg:       shards[0].Config(),
		n:         n,
		seed:      seed,
		shards:    shards,
		stats:     stats,
		centroids: shards[0].Centroids(),
		global:    make([][]int32, n),

		spanQuery:  make([]*obs.Span, n),
		ctrQueries: make([]*obs.Counter, n),
		ctrAdds:    make([]*obs.Counter, n),
		histWidth:  make([]*obs.Histogram, n),
	}
	for s := 0; s < n; s++ {
		lbl := fmt.Sprintf("shard.%02d", s)
		g.spanQuery[s] = obs.GetOrNewSpan(lbl + ".query")
		g.ctrQueries[s] = obs.GetOrNewCounter(lbl + ".queries")
		g.ctrAdds[s] = obs.GetOrNewCounter(lbl + ".adds")
		g.histWidth[s] = obs.GetOrNewCountHistogram(lbl + ".width")
	}
	return g
}

// register appends the next global document id to the directory, owned
// by shard s with the next local id. Callers must hold addMu (or be
// the single construction goroutine).
func (g *Group) register(s int) int {
	g.dirMu.Lock()
	gid := len(g.owner)
	g.owner = append(g.owner, int32(s))
	g.local = append(g.local, int32(len(g.global[s])))
	g.global[s] = append(g.global[s], int32(gid))
	g.dirMu.Unlock()
	return gid
}

// Name implements match.Matcher; a group serves under its shards'
// method name (the partitioning is topology, not a different method).
func (g *Group) Name() string { return g.shards[0].Name() }

// NumShards returns the shard count.
func (g *Group) NumShards() int { return g.n }

// Seed returns the routing seed (persisted in the manifest).
func (g *Group) Seed() uint64 { return g.seed }

// Route returns the shard that owns (or will own) global document id
// doc.
func (g *Group) Route(doc int) int { return routeDoc(g.seed, doc, g.n) }

// RouteDoc exposes the routing function itself: the shard owning
// global document doc under seed in an n-shard topology. The network
// coordinator (internal/fleet) replays it to reconstruct and grow the
// global↔local id directory from a manifest alone.
func RouteDoc(seed uint64, doc, n int) int { return routeDoc(seed, doc, n) }

// ShardMR returns shard s's matcher. The fleet layer uses it to serve a
// live group's partitions over the network probe surface; the matcher
// carries its own locks, so concurrent Group.Add and direct probe reads
// are safe.
func (g *Group) ShardMR(s int) *match.MR { return g.shards[s] }

// NumDocs returns the number of documents across all shards.
func (g *Group) NumDocs() int {
	g.dirMu.RLock()
	defer g.dirMu.RUnlock()
	return len(g.owner)
}

// ShardDocs returns the per-shard document counts.
func (g *Group) ShardDocs() []int {
	g.dirMu.RLock()
	defer g.dirMu.RUnlock()
	out := make([]int, g.n)
	for s := range out {
		out[s] = len(g.global[s])
	}
	return out
}

// NumClusters returns the intention-cluster count (identical on every
// shard).
func (g *Group) NumClusters() int { return g.shards[0].NumClusters() }

// Centroids returns the frozen intention-cluster centroids (shared by
// all shards).
func (g *Group) Centroids() [][]float64 { return g.centroids }

// Stats returns the offline build statistics (each shard carries a
// copy of the source build's; they are identical).
func (g *Group) Stats() match.BuildStats { return g.shards[0].Stats() }

// Generation returns the group-wide mutation count: the sum of every
// shard's matcher generation. CommitAdd commits into exactly one shard
// and bumps that shard's generation, so the sum advances on every
// mutation regardless of routing — the property a cache epoch needs.
// Summing over lock-free per-shard atomics means a concurrent commit
// may or may not be included, but a reader that observes the commit's
// effects afterwards also observes the larger sum (the shard bump
// happens under the shard's write lock, before the effects are
// readable).
func (g *Group) Generation() uint64 {
	var gen uint64
	for _, mr := range g.shards {
		gen += mr.Generation()
	}
	return gen
}

// SegmentCounts returns each document's segment count before grouping
// and after refinement in global id order — the Table 3 view, merged
// back from the per-shard counts.
func (g *Group) SegmentCounts() (before, after []int) {
	g.dirMu.RLock()
	owner := append([]int32(nil), g.owner...)
	local := append([]int32(nil), g.local...)
	g.dirMu.RUnlock()
	perB := make([][]int, g.n)
	perA := make([][]int, g.n)
	for s := 0; s < g.n; s++ {
		perB[s], perA[s] = g.shards[s].SegmentCounts()
	}
	before = make([]int, len(owner))
	after = make([]int, len(owner))
	for gid := range owner {
		s, l := owner[gid], int(local[gid])
		// Registration happens strictly after the shard commit, so every
		// directory entry has its counts in the shard snapshot.
		if l < len(perB[s]) {
			before[gid], after[gid] = perB[s][l], perA[s][l]
		}
	}
	return before, after
}

// Match implements match.Matcher.
func (g *Group) Match(docID, k int) []match.Result { return g.RelatedTraced(docID, k, nil) }

// mergedList is one intention cluster's globally merged, trimmed
// candidate list: items carry global document ids in descending
// (score, ascending id) order, cut to the global top-n and the
// configured score threshold; norm is the Algorithm 2 divisor.
type mergedList struct {
	cluster int
	items   []topk.Item
	norm    float64
}

// gather runs the scatter-gather front half shared by RelatedTraced
// and MatchExplained: resolve the reference document, scatter its
// probes, merge per cluster, and accumulate Algorithm 2 sums. ok is
// false for unknown document ids.
func (g *Group) gather(docID, k int, tr *obs.Trace) (probes []match.ClusterQuery, lists []mergedList, scores map[int]float64, ok bool) {
	g.dirMu.RLock()
	if docID < 0 || docID >= len(g.owner) {
		g.dirMu.RUnlock()
		return nil, nil, nil, false
	}
	home, localQ := int(g.owner[docID]), int(g.local[docID])
	g.dirMu.RUnlock()

	probes = g.shards[home].QuerySegs(localQ)
	n := g.cfg.ListDepth(k)

	// Scatter: every shard answers every probe at the full unsharded
	// depth n (invariant 2 of the package comment needs the union of
	// per-shard top-n lists to cover the global top-n). The home shard's
	// leg runs first and seeds a per-probe score floor for the siblings:
	// when the home list is full at depth n, its n-th score is a lower
	// bound on the globally merged list's n-th score (the merge is a
	// top-n over a superset of the home candidates), so sibling legs may
	// let the max-score scan discard candidates below it — those entries
	// would be cut from the merged list regardless. Probes carry factors
	// frozen on the home shard, so the floor stays comparable to sibling
	// scores even while concurrent adds move the statistics pool.
	perShard := make([][][]match.Result, g.n)
	var homeFloors []float64
	runLeg := func(s int) {
		st := g.spanQuery[s].Start()
		excl, floors := -1, homeFloors
		if s == home {
			excl, floors = localQ, nil
		}
		perShard[s] = g.shards[s].QueryClusterLists(probes, n, excl, floors, tr)
		st.Stop()
		g.ctrQueries[s].Inc()
	}
	runLeg(home)
	homeFloors = make([]float64, len(probes))
	for i, l := range perShard[home] {
		if len(l) >= n {
			homeFloors[i] = l[n-1].Score
		}
	}
	if g.n > 1 {
		par.Do(g.n-1, g.cfg.Workers, func(j int) {
			if j >= home {
				j++
			}
			runLeg(j)
		})
	}
	for s := range perShard {
		w := 0
		for _, l := range perShard[s] {
			w += len(l)
		}
		g.histWidth[s].Observe(int64(w))
		if tr != nil {
			tr.Event("shard.list", obs.N("shard", int64(s)), obs.N("width", int64(w)))
		}
	}

	// Gather: per cluster, merge the shard lists into the global top-n
	// under the deterministic tie-break, trim, and sum — ascending
	// cluster (probe) order, exactly as the unsharded Algorithm 2 walk.
	scores = make(map[int]float64)
	lists = make([]mergedList, len(probes))
	g.dirMu.RLock()
	for i := range probes {
		col := topk.New(n)
		cand := 0
		for s := 0; s < g.n; s++ {
			glb := g.global[s]
			for _, r := range perShard[s][i] {
				if r.DocID >= len(glb) {
					continue // committed but not yet registered; see type comment
				}
				col.Offer(int(glb[r.DocID]), r.Score)
				cand++
			}
		}
		items := col.Results()
		norm := 1.0
		if len(items) > 0 {
			cut, nrm := g.cfg.TrimParams(items[0].Score)
			norm = nrm
			for j, it := range items {
				if it.Score < cut {
					items = items[:j]
					break
				}
				scores[it.ID] += it.Score / norm
			}
		}
		lists[i] = mergedList{cluster: probes[i].Cluster, items: items, norm: norm}
		if tr != nil {
			tr.Event("shard.merge",
				obs.N("cluster", int64(probes[i].Cluster)),
				obs.N("candidates", int64(cand)),
				obs.N("kept", int64(len(items))))
		}
	}
	g.dirMu.RUnlock()
	histMerge.Observe(int64(len(scores)))
	return probes, lists, scores, true
}

// RelatedTraced answers one top-k query over the whole sharded
// collection — scatter, merge, Algorithm 2 — recording per-shard and
// merge events into tr when non-nil. The result is bit-identical in
// scores and identical in order to the unsharded matcher's
// MatchTraced for the same collection.
func (g *Group) RelatedTraced(docID, k int, tr *obs.Trace) []match.Result {
	if k <= 0 {
		return nil
	}
	tm := spanRelated.Start()
	defer tm.Stop()
	_, _, scores, ok := g.gather(docID, k, tr)
	if !ok {
		return nil
	}
	out := match.TopKScores(scores, k, docID)
	if tr != nil {
		tr.Event("shard.topk", obs.N("results", int64(len(out))))
	}
	return out
}

// MatchExplained implements match.Explainer: the scatter-gather query
// with every result's score decomposed into per-intention-cluster
// contributions and term-level Eq 7–9 products, fetched from the
// owning shard's pool-attached indices — so the factors reconcile with
// the served scores exactly as on the unsharded path.
func (g *Group) MatchExplained(docID, k int) ([]match.Result, []match.Explanation) {
	if k <= 0 {
		return nil, nil
	}
	probes, lists, scores, ok := g.gather(docID, k, nil)
	if !ok {
		return nil, nil
	}
	out := match.TopKScores(scores, k, docID)
	exps := make([]match.Explanation, len(out))
	for ri, r := range out {
		exp := match.Explanation{DocID: r.DocID, Score: r.Score}
		g.dirMu.RLock()
		s, l := int(g.owner[r.DocID]), int(g.local[r.DocID])
		g.dirMu.RUnlock()
		for i, ml := range lists {
			for _, it := range ml.items {
				if it.ID != r.DocID {
					continue
				}
				exp.Clusters = append(exp.Clusters, match.ClusterContribution{
					Cluster: ml.cluster,
					Score:   it.Score / ml.norm,
					Terms:   g.shards[s].ExplainDocCluster(l, ml.cluster, probes[i].TF, ml.norm),
				})
				break
			}
		}
		exps[ri] = exp
	}
	return out, exps
}

// PrepareAdd segments and vectorizes a new document without touching
// any shard's serving state. Preparation reads only configuration and
// the frozen centroids — state every shard shares — so it is valid for
// whichever shard the document ultimately routes to.
func (g *Group) PrepareAdd(d *segment.Doc) *match.PendingAdd {
	return g.shards[0].PrepareAdd(d)
}

// CommitAdd assigns the next global document id, commits the prepared
// document into its owning shard, and registers it in the directory.
// The whole step runs under addMu so same-shard local ids ascend in
// global-id order (the tie-break invariant); the serialized section is
// a few appends — the expensive preparation already happened — and
// only the owning shard's write lock is taken, so readers of other
// shards proceed untouched.
func (g *Group) CommitAdd(pending *match.PendingAdd) int {
	g.addMu.Lock()
	defer g.addMu.Unlock()
	g.dirMu.RLock()
	next := len(g.owner)
	g.dirMu.RUnlock()
	s := g.Route(next)
	pending.CommitTo(g.shards[s])
	gid := g.register(s)
	g.ctrAdds[s].Inc()
	return gid
}

// Add ingests one new document: prepare (lock-free), commit to the
// owning shard, register. It returns the global document id; the
// document is visible to every subsequent query.
func (g *Group) Add(d *segment.Doc) int {
	return g.CommitAdd(g.PrepareAdd(d))
}
