// Package topk provides the top-k selection helper shared by the index
// and matching layers. Both layers keep a running best-k over a stream of
// scored candidates (Algorithm 1's per-cluster lists, Algorithm 2's final
// ranking, the FullText and LDA baselines); this package holds the single
// min-heap implementation with the tie-breaking rule that keeps rankings
// deterministic — higher score first, lower id on equal scores — so
// results never depend on map iteration order.
package topk

// Item is one scored candidate: an opaque integer id (a unit id inside an
// index, or a document id at the matching layer) with its score.
type Item struct {
	ID    int
	Score float64
}

// beats reports whether candidate a outranks b under the full ordering
// (higher score first, lower id on ties) — used at the heap replacement
// gate so ties never depend on insertion order.
func beats(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// Collector accumulates scored candidates and retains the k best under
// the deterministic ordering. The zero value is unusable; call New. A
// Collector is not safe for concurrent use.
type Collector struct {
	k int
	h itemHeap
}

// New returns a Collector that keeps the k highest-scoring items. k <= 0
// collects nothing.
func New(k int) *Collector {
	c := &Collector{k: k}
	if k > 0 {
		c.h = make(itemHeap, 0, k)
	}
	return c
}

// Offer submits one candidate. It is kept only while it ranks among the
// k best seen so far.
func (c *Collector) Offer(id int, score float64) {
	if c.k <= 0 {
		return
	}
	cand := Item{ID: id, Score: score}
	if len(c.h) < c.k {
		c.h = append(c.h, cand)
		c.h.up(len(c.h) - 1)
	} else if beats(cand, c.h[0]) {
		c.h[0] = cand
		c.h.down(0)
	}
}

// Len reports how many items the collector currently retains.
func (c *Collector) Len() int { return len(c.h) }

// Threshold returns the k-th best score seen so far — the heap root —
// and whether the collector is full. Until k items have been offered
// there is no meaningful cutoff and ok is false. The max-score scan
// uses this as its pruning threshold θ: once full, no candidate scoring
// below the root can enter the top-k.
func (c *Collector) Threshold() (score float64, ok bool) {
	if c.k <= 0 || len(c.h) < c.k {
		return 0, false
	}
	return c.h[0].Score, true
}

// Reset empties the collector for reuse, keeping its capacity.
func (c *Collector) Reset() { c.h = c.h[:0] }

// Results drains the collector and returns the retained items best first
// (descending score, ascending id on ties). The Collector is empty
// afterwards and may be reused.
func (c *Collector) Results() []Item {
	h := c.h
	out := make([]Item, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h[0]
		n := len(h) - 1
		h[0] = h[n]
		h = h[:n]
		h.down(0)
	}
	c.h = h
	return out
}

// itemHeap is a min-heap on score; the worst retained item sits at the
// root so it can be evicted in O(log k). Ties order worse-id-first (the
// inverse of beats) so the eviction victim matches the full ordering.
// The sift operations are hand-rolled rather than going through
// container/heap: the interface-based API boxes every pushed and popped
// Item, and at one heap per cluster probe per shard that boxing
// dominated the serving path's allocation profile.
type itemHeap []Item

// worse reports whether h[i] ranks below h[j] — the min-heap priority.
func (h itemHeap) worse(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].ID > h[j].ID
}

func (h itemHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.worse(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h itemHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && h.worse(right, left) {
			min = right
		}
		if !h.worse(min, i) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
