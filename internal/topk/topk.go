// Package topk provides the top-k selection helper shared by the index
// and matching layers. Both layers keep a running best-k over a stream of
// scored candidates (Algorithm 1's per-cluster lists, Algorithm 2's final
// ranking, the FullText and LDA baselines); this package holds the single
// min-heap implementation with the tie-breaking rule that keeps rankings
// deterministic — higher score first, lower id on equal scores — so
// results never depend on map iteration order.
package topk

import "container/heap"

// Item is one scored candidate: an opaque integer id (a unit id inside an
// index, or a document id at the matching layer) with its score.
type Item struct {
	ID    int
	Score float64
}

// beats reports whether candidate a outranks b under the full ordering
// (higher score first, lower id on ties) — used at the heap replacement
// gate so ties never depend on insertion order.
func beats(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// Collector accumulates scored candidates and retains the k best under
// the deterministic ordering. The zero value is unusable; call New. A
// Collector is not safe for concurrent use.
type Collector struct {
	k int
	h itemHeap
}

// New returns a Collector that keeps the k highest-scoring items. k <= 0
// collects nothing.
func New(k int) *Collector {
	c := &Collector{k: k}
	if k > 0 {
		c.h = make(itemHeap, 0, k)
	}
	return c
}

// Offer submits one candidate. It is kept only while it ranks among the
// k best seen so far.
func (c *Collector) Offer(id int, score float64) {
	if c.k <= 0 {
		return
	}
	cand := Item{ID: id, Score: score}
	if len(c.h) < c.k {
		heap.Push(&c.h, cand)
	} else if beats(cand, c.h[0]) {
		c.h[0] = cand
		heap.Fix(&c.h, 0)
	}
}

// Results drains the collector and returns the retained items best first
// (descending score, ascending id on ties). The Collector is empty
// afterwards and may be reused.
func (c *Collector) Results() []Item {
	out := make([]Item, len(c.h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&c.h).(Item)
	}
	return out
}

// itemHeap is a min-heap on score; the worst retained item sits at the
// root so it can be evicted in O(log k). Ties order worse-id-first (the
// inverse of beats) so the eviction victim matches the full ordering.
type itemHeap []Item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].ID > h[j].ID
}
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
