package topk

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestResultsBestFirst(t *testing.T) {
	c := New(3)
	for id, s := range []float64{0.1, 0.9, 0.5, 0.7, 0.3} {
		c.Offer(id, s)
	}
	want := []Item{{ID: 1, Score: 0.9}, {ID: 3, Score: 0.7}, {ID: 2, Score: 0.5}}
	if got := c.Results(); !reflect.DeepEqual(got, want) {
		t.Errorf("Results() = %v, want %v", got, want)
	}
}

func TestTiesPreferLowerID(t *testing.T) {
	// All candidates share one score: the k retained must be the k lowest
	// ids, ascending, regardless of insertion order.
	ids := []int{7, 2, 9, 4, 1, 8, 3}
	c := New(3)
	for _, id := range ids {
		c.Offer(id, 1.0)
	}
	want := []Item{{ID: 1, Score: 1}, {ID: 2, Score: 1}, {ID: 3, Score: 1}}
	if got := c.Results(); !reflect.DeepEqual(got, want) {
		t.Errorf("tied Results() = %v, want %v", got, want)
	}
}

func TestDeterministicAcrossInsertionOrders(t *testing.T) {
	// Mixed ties and distinct scores, offered in 50 shuffled orders, must
	// always produce the identical ranking.
	items := []Item{
		{0, 0.5}, {1, 0.5}, {2, 0.5}, {3, 0.8}, {4, 0.8},
		{5, 0.2}, {6, 0.9}, {7, 0.5}, {8, 0.1}, {9, 0.8},
	}
	var want []Item
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		shuffled := append([]Item(nil), items...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		c := New(5)
		for _, it := range shuffled {
			c.Offer(it.ID, it.Score)
		}
		got := c.Results()
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Results() = %v, want %v", trial, got, want)
		}
	}
	expect := []Item{{6, 0.9}, {3, 0.8}, {4, 0.8}, {9, 0.8}, {0, 0.5}}
	if !reflect.DeepEqual(want, expect) {
		t.Errorf("ranking = %v, want %v", want, expect)
	}
}

func TestFewerCandidatesThanK(t *testing.T) {
	c := New(10)
	c.Offer(5, 2)
	c.Offer(3, 1)
	want := []Item{{ID: 5, Score: 2}, {ID: 3, Score: 1}}
	if got := c.Results(); !reflect.DeepEqual(got, want) {
		t.Errorf("Results() = %v, want %v", got, want)
	}
}

func TestZeroK(t *testing.T) {
	c := New(0)
	c.Offer(1, 1)
	if got := c.Results(); len(got) != 0 {
		t.Errorf("New(0).Results() = %v, want empty", got)
	}
}

func TestReuseAfterResults(t *testing.T) {
	c := New(2)
	c.Offer(1, 1)
	c.Results()
	c.Offer(2, 5)
	c.Offer(3, 4)
	c.Offer(4, 9)
	want := []Item{{ID: 4, Score: 9}, {ID: 2, Score: 5}}
	if got := c.Results(); !reflect.DeepEqual(got, want) {
		t.Errorf("reused Results() = %v, want %v", got, want)
	}
}
