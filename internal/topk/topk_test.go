package topk

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestResultsBestFirst(t *testing.T) {
	c := New(3)
	for id, s := range []float64{0.1, 0.9, 0.5, 0.7, 0.3} {
		c.Offer(id, s)
	}
	want := []Item{{ID: 1, Score: 0.9}, {ID: 3, Score: 0.7}, {ID: 2, Score: 0.5}}
	if got := c.Results(); !reflect.DeepEqual(got, want) {
		t.Errorf("Results() = %v, want %v", got, want)
	}
}

func TestTiesPreferLowerID(t *testing.T) {
	// All candidates share one score: the k retained must be the k lowest
	// ids, ascending, regardless of insertion order.
	ids := []int{7, 2, 9, 4, 1, 8, 3}
	c := New(3)
	for _, id := range ids {
		c.Offer(id, 1.0)
	}
	want := []Item{{ID: 1, Score: 1}, {ID: 2, Score: 1}, {ID: 3, Score: 1}}
	if got := c.Results(); !reflect.DeepEqual(got, want) {
		t.Errorf("tied Results() = %v, want %v", got, want)
	}
}

func TestDeterministicAcrossInsertionOrders(t *testing.T) {
	// Mixed ties and distinct scores, offered in 50 shuffled orders, must
	// always produce the identical ranking.
	items := []Item{
		{0, 0.5}, {1, 0.5}, {2, 0.5}, {3, 0.8}, {4, 0.8},
		{5, 0.2}, {6, 0.9}, {7, 0.5}, {8, 0.1}, {9, 0.8},
	}
	var want []Item
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		shuffled := append([]Item(nil), items...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		c := New(5)
		for _, it := range shuffled {
			c.Offer(it.ID, it.Score)
		}
		got := c.Results()
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Results() = %v, want %v", trial, got, want)
		}
	}
	expect := []Item{{6, 0.9}, {3, 0.8}, {4, 0.8}, {9, 0.8}, {0, 0.5}}
	if !reflect.DeepEqual(want, expect) {
		t.Errorf("ranking = %v, want %v", want, expect)
	}
}

func TestScoreCollisions(t *testing.T) {
	// Deliberate score collisions at every interesting position: the
	// ordering contract is (score desc, id asc), and in particular the
	// eviction gate must apply it — a tied candidate arriving after the
	// heap is full displaces a retained item iff its id is lower.
	cases := []struct {
		name string
		k    int
		in   []Item
		want []Item
	}{
		{
			name: "tie at the cut line keeps lower id",
			k:    2,
			in:   []Item{{5, 0.7}, {1, 0.3}, {3, 0.3}},
			want: []Item{{5, 0.7}, {1, 0.3}},
		},
		{
			name: "late tied candidate with lower id evicts",
			k:    2,
			in:   []Item{{5, 0.7}, {9, 0.3}, {2, 0.3}},
			want: []Item{{5, 0.7}, {2, 0.3}},
		},
		{
			name: "late tied candidate with higher id is dropped",
			k:    2,
			in:   []Item{{5, 0.7}, {2, 0.3}, {9, 0.3}},
			want: []Item{{5, 0.7}, {2, 0.3}},
		},
		{
			name: "three-way collision straddling the cut",
			k:    2,
			in:   []Item{{8, 0.5}, {4, 0.5}, {6, 0.5}},
			want: []Item{{4, 0.5}, {6, 0.5}},
		},
		{
			name: "collision above a distinct tail",
			k:    3,
			in:   []Item{{7, 0.9}, {2, 0.9}, {5, 0.1}, {1, 0.4}},
			want: []Item{{2, 0.9}, {7, 0.9}, {1, 0.4}},
		},
		{
			name: "duplicate id and score offered twice is retained twice",
			k:    3,
			in:   []Item{{4, 0.6}, {4, 0.6}, {1, 0.2}},
			want: []Item{{4, 0.6}, {4, 0.6}, {1, 0.2}},
		},
		{
			name: "all collide k equals input",
			k:    4,
			in:   []Item{{3, 1}, {0, 1}, {2, 1}, {1, 1}},
			want: []Item{{0, 1}, {1, 1}, {2, 1}, {3, 1}},
		},
		{
			name: "zero scores collide",
			k:    2,
			in:   []Item{{6, 0}, {3, 0}, {4, 0}},
			want: []Item{{3, 0}, {4, 0}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(tc.k)
			for _, it := range tc.in {
				c.Offer(it.ID, it.Score)
			}
			if got := c.Results(); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Results() = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestAgainstSortReference(t *testing.T) {
	// Randomized cross-check against the obvious reference (full sort
	// under the documented ordering, take k). Scores are drawn from a
	// tiny set so collisions dominate, and k sweeps past the input size.
	rng := rand.New(rand.NewSource(7))
	scores := []float64{0.1, 0.5, 0.5, 0.9}
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		k := rng.Intn(12) + 1
		in := make([]Item, n)
		for i := range in {
			in[i] = Item{ID: rng.Intn(20), Score: scores[rng.Intn(len(scores))]}
		}
		ref := append([]Item(nil), in...)
		sort.SliceStable(ref, func(i, j int) bool { return beats(ref[i], ref[j]) })
		if len(ref) > k {
			ref = ref[:k]
		}
		c := New(k)
		for _, it := range in {
			c.Offer(it.ID, it.Score)
		}
		got := c.Results()
		if len(got) == 0 && len(ref) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("trial %d (n=%d k=%d): Results() = %v, want %v\ninput: %v", trial, n, k, got, ref, in)
		}
	}
}

func TestFewerCandidatesThanK(t *testing.T) {
	c := New(10)
	c.Offer(5, 2)
	c.Offer(3, 1)
	want := []Item{{ID: 5, Score: 2}, {ID: 3, Score: 1}}
	if got := c.Results(); !reflect.DeepEqual(got, want) {
		t.Errorf("Results() = %v, want %v", got, want)
	}
}

func TestZeroK(t *testing.T) {
	c := New(0)
	c.Offer(1, 1)
	if got := c.Results(); len(got) != 0 {
		t.Errorf("New(0).Results() = %v, want empty", got)
	}
}

func TestThreshold(t *testing.T) {
	c := New(2)
	if _, ok := c.Threshold(); ok {
		t.Error("empty collector reported a threshold")
	}
	c.Offer(1, 0.9)
	if _, ok := c.Threshold(); ok {
		t.Error("under-full collector reported a threshold")
	}
	c.Offer(2, 0.4)
	if th, ok := c.Threshold(); !ok || th != 0.4 {
		t.Errorf("Threshold() = %g, %v; want 0.4, true", th, ok)
	}
	// A better candidate evicts the root and raises the threshold; a
	// worse one leaves it untouched.
	c.Offer(3, 0.7)
	if th, _ := c.Threshold(); th != 0.7 {
		t.Errorf("after eviction Threshold() = %g, want 0.7", th)
	}
	c.Offer(4, 0.1)
	if th, _ := c.Threshold(); th != 0.7 {
		t.Errorf("after rejected offer Threshold() = %g, want 0.7", th)
	}
	if _, ok := New(0).Threshold(); ok {
		t.Error("k=0 collector reported a threshold")
	}
}

func TestResetAndLen(t *testing.T) {
	c := New(3)
	c.Offer(1, 1)
	c.Offer(2, 2)
	if c.Len() != 2 {
		t.Errorf("Len() = %d, want 2", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("after Reset Len() = %d, want 0", c.Len())
	}
	if _, ok := c.Threshold(); ok {
		t.Error("reset collector reported a threshold")
	}
	c.Offer(3, 5)
	c.Offer(4, 4)
	c.Offer(5, 6)
	want := []Item{{ID: 5, Score: 6}, {ID: 3, Score: 5}, {ID: 4, Score: 4}}
	if got := c.Results(); !reflect.DeepEqual(got, want) {
		t.Errorf("after Reset Results() = %v, want %v", got, want)
	}
}

func TestReuseAfterResults(t *testing.T) {
	c := New(2)
	c.Offer(1, 1)
	c.Results()
	c.Offer(2, 5)
	c.Offer(3, 4)
	c.Offer(4, 9)
	want := []Item{{ID: 4, Score: 9}, {ID: 2, Score: 5}}
	if got := c.Results(); !reflect.DeepEqual(got, want) {
		t.Errorf("reused Results() = %v, want %v", got, want)
	}
}
