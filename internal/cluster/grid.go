package cluster

import (
	"math"
	"slices"
	"sort"
)

// maxGridDims bounds how many dimensions index the cell lattice. Cell
// candidate enumeration scans (2·span+1)^d cells per query, so the grid
// keys on the few highest-variance axes and verifies candidates with the
// full-dimension distance — exact for any point set, fast when most of the
// spread lives in a few dimensions (the 28-dim CM weight vectors
// concentrate variance in the handful of active communication means).
const maxGridDims = 3

// cellKey addresses one lattice cell. Unused trailing dimensions stay 0.
type cellKey [maxGridDims]int32

// Grid is a cell-list spatial index over dense vectors: points are binned
// into an axis-aligned lattice of edge length `cell` on their
// highest-variance dimensions, and a radius query scans only the cells
// that can intersect the query ball instead of the whole collection. A
// query with radius r verifies every candidate with the exact
// full-dimension Euclidean distance, so results are identical to a linear
// scan (projection onto a dimension subset never increases distance).
//
// A Grid is immutable after New and safe for concurrent queries.
type Grid struct {
	points [][]float64
	cell   float64
	dims   [maxGridDims]int // dimension indices keyed by the lattice
	ndims  int
	cells  map[cellKey][]int32
}

// NewGrid indexes points with the given cell edge length, typically the
// radius the queries will use (then a query scans 3^d cells). cell <= 0
// degenerates to a single cell holding every point — still correct,
// equivalent to a linear scan.
func NewGrid(points [][]float64, cell float64) *Grid {
	g := &Grid{points: points, cell: cell}
	if len(points) == 0 {
		return g
	}
	if dim := len(points[0]); dim < maxGridDims {
		g.ndims = dim
	} else {
		g.ndims = maxGridDims
	}
	if cell > 0 {
		g.dims = topVarianceDims(points, g.ndims)
	}
	g.cells = make(map[cellKey][]int32, len(points)/4+1)
	for i, p := range points {
		k := g.keyOf(p)
		g.cells[k] = append(g.cells[k], int32(i))
	}
	return g
}

// keyOf returns the lattice cell containing p.
func (g *Grid) keyOf(p []float64) cellKey {
	var k cellKey
	if g.cell <= 0 {
		return k
	}
	for a := 0; a < g.ndims; a++ {
		k[a] = int32(math.Floor(p[g.dims[a]] / g.cell))
	}
	return k
}

// Radius appends to buf[:0] the indices of every point within Euclidean
// distance r of q (full-dimension distance, boundary inclusive), excluding
// index `exclude` (pass a negative value to exclude nothing), and returns
// the buffer sorted ascending. Passing the previous result as buf makes
// repeated queries allocation-free once the buffer has grown to the
// largest neighborhood.
func (g *Grid) Radius(q []float64, r float64, exclude int, buf []int32) []int32 {
	buf = buf[:0]
	if len(g.points) == 0 || r < 0 {
		return buf
	}
	rSq := r * r
	scan := func(members []int32) {
		for _, j := range members {
			if int(j) == exclude {
				continue
			}
			if sqDist(q, g.points[j]) <= rSq {
				buf = append(buf, j)
			}
		}
	}
	if g.cell <= 0 {
		scan(g.cells[cellKey{}])
		return buf // single-cell layout preserves insertion (= index) order
	}
	span := int32(math.Ceil(r / g.cell))
	base := g.keyOf(q)
	var lo, hi cellKey
	for a := 0; a < maxGridDims; a++ {
		if a < g.ndims {
			lo[a], hi[a] = base[a]-span, base[a]+span
		}
	}
	for c0 := lo[0]; c0 <= hi[0]; c0++ {
		for c1 := lo[1]; c1 <= hi[1]; c1++ {
			for c2 := lo[2]; c2 <= hi[2]; c2++ {
				scan(g.cells[cellKey{c0, c1, c2}])
			}
		}
	}
	// Candidates arrive cell by cell; sort so callers see the same
	// ascending order a linear scan would produce (DBSCAN's expansion
	// order, and therefore its exact labeling, depends on it).
	// slices.Sort, not sort.Slice: the latter allocates its closure on
	// every call, and Radius runs once per point in the region-query loop.
	slices.Sort(buf)
	return buf
}

// topVarianceDims ranks dimensions by variance and returns the top ndims —
// the leading "principal" axes without a full PCA, which is all the cell
// lattice needs: dimensions that do not vary cannot separate cells. Ties
// break toward the lower dimension index for determinism.
func topVarianceDims(points [][]float64, ndims int) [maxGridDims]int {
	dim := len(points[0])
	mean := make([]float64, dim)
	for _, p := range points {
		for d, v := range p {
			mean[d] += v
		}
	}
	n := float64(len(points))
	for d := range mean {
		mean[d] /= n
	}
	variance := make([]float64, dim)
	for _, p := range points {
		for d, v := range p {
			dv := v - mean[d]
			variance[d] += dv * dv
		}
	}
	order := make([]int, dim)
	for d := range order {
		order[d] = d
	}
	sort.Slice(order, func(i, j int) bool {
		if variance[order[i]] != variance[order[j]] {
			return variance[order[i]] > variance[order[j]]
		}
		return order[i] < order[j]
	})
	var dims [maxGridDims]int
	copy(dims[:], order[:ndims])
	return dims
}
