package cluster

import (
	"math/rand"
	"testing"
)

// randPoints draws n points of the given dimension, mixing a few dense
// blobs with uniform background noise so DBSCAN sees both clusters and
// outliers.
func randPoints(n, dim int, rng *rand.Rand) [][]float64 {
	centers := make([][]float64, 3)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = rng.Float64()
		}
	}
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		if rng.Float64() < 0.8 {
			c := centers[rng.Intn(len(centers))]
			for d := range p {
				p[d] = c[d] + (rng.Float64()-0.5)*0.08
			}
		} else {
			for d := range p {
				p[d] = rng.Float64()
			}
		}
		pts[i] = p
	}
	return pts
}

// TestGridRadiusMatchesLinearScan checks the index primitive itself: a
// grid radius query must return exactly the points a full scan finds,
// in ascending order.
func TestGridRadiusMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dim := range []int{1, 2, 3, 5, 28} {
		pts := randPoints(150, dim, rng)
		for _, r := range []float64{0, 0.02, 0.1, 0.5, 2} {
			g := NewGrid(pts, r)
			var buf []int32
			for i := 0; i < len(pts); i += 17 {
				buf = g.Radius(pts[i], r, i, buf)
				var want []int32
				rSq := r * r
				for j := range pts {
					if j != i && sqDist(pts[i], pts[j]) <= rSq {
						want = append(want, int32(j))
					}
				}
				if len(buf) != len(want) {
					t.Fatalf("dim=%d r=%v q=%d: grid found %d, scan found %d", dim, r, i, len(buf), len(want))
				}
				for a := range want {
					if buf[a] != want[a] {
						t.Fatalf("dim=%d r=%v q=%d: grid[%d]=%d, scan[%d]=%d", dim, r, i, a, buf[a], a, want[a])
					}
				}
			}
		}
	}
}

// TestDBSCANMatchesNaiveProperty is the exactness guard the indexed
// DBSCAN ships under: across randomized point sets, dimensions, radii,
// and density thresholds, the grid-indexed DBSCAN must produce the very
// same labeling as the naive O(n²) oracle — label-identical, which is
// stronger than label-isomorphic.
func TestDBSCANMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cases := 0
	for _, dim := range []int{1, 2, 3, 4, 8, 28} {
		for _, n := range []int{0, 1, 17, 120} {
			pts := randPoints(n, dim, rng)
			for _, eps := range []float64{0.01, 0.05, 0.12, 0.4} {
				for _, minPts := range []int{1, 2, 4, 7} {
					gotL, gotK := DBSCAN(pts, eps, minPts)
					wantL, wantK := DBSCANNaive(pts, eps, minPts)
					if gotK != wantK {
						t.Fatalf("dim=%d n=%d eps=%v minPts=%d: k=%d, oracle k=%d", dim, n, eps, minPts, gotK, wantK)
					}
					for i := range wantL {
						if gotL[i] != wantL[i] {
							t.Fatalf("dim=%d n=%d eps=%v minPts=%d: labels[%d]=%d, oracle %d",
								dim, n, eps, minPts, i, gotL[i], wantL[i])
						}
					}
					cases++
				}
			}
		}
	}
	if cases == 0 {
		t.Fatal("no cases exercised")
	}
}

// TestDBSCANDuplicatePoints covers coincident points (zero-distance
// neighborhoods stress the cell boundary handling).
func TestDBSCANDuplicatePoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {5, 5}, {1, 1}}
	gotL, gotK := DBSCAN(pts, 0.001, 3)
	wantL, wantK := DBSCANNaive(pts, 0.001, 3)
	if gotK != wantK {
		t.Fatalf("k=%d, oracle %d", gotK, wantK)
	}
	for i := range wantL {
		if gotL[i] != wantL[i] {
			t.Fatalf("labels[%d]=%d, oracle %d", i, gotL[i], wantL[i])
		}
	}
}

// TestParallelInvariance locks in the documented guarantee that every
// parallelized clustering primitive returns the same result for any
// worker count (the -race run of this test also exercises the concurrent
// paths).
func TestParallelInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(1500, 5, rng)

	wantEps := EstimateEps(pts, 3, 1)
	wantKM := KMeans(pts, 4, 42, 0, 1)
	wantSampledL, wantSampledK := Sampled(pts, 0.1, 4, 300, 1)
	wantCents := Centroids(pts, wantKM, 4, 1)
	noisy := append([]int(nil), wantKM...)
	for i := 0; i < len(noisy); i += 7 {
		noisy[i] = Noise
	}
	wantNoise := append([]int(nil), noisy...)
	wantMoved := AssignNoise(pts, wantNoise, wantCents, 1)

	for _, workers := range []int{2, 3, 8} {
		if got := EstimateEps(pts, 3, workers); got != wantEps {
			t.Errorf("workers=%d: EstimateEps %v != %v", workers, got, wantEps)
		}
		if got := KMeans(pts, 4, 42, 0, workers); !equalInts(got, wantKM) {
			t.Errorf("workers=%d: KMeans labels differ", workers)
		}
		gotL, gotK := Sampled(pts, 0.1, 4, 300, workers)
		if gotK != wantSampledK || !equalInts(gotL, wantSampledL) {
			t.Errorf("workers=%d: Sampled differs", workers)
		}
		cents := Centroids(pts, wantKM, 4, workers)
		for c := range wantCents {
			for d := range wantCents[c] {
				if cents[c][d] != wantCents[c][d] {
					t.Fatalf("workers=%d: centroid[%d][%d] %v != %v", workers, c, d, cents[c][d], wantCents[c][d])
				}
			}
		}
		relabel := append([]int(nil), noisy...)
		if moved := AssignNoise(pts, relabel, wantCents, workers); moved != wantMoved || !equalInts(relabel, wantNoise) {
			t.Errorf("workers=%d: AssignNoise differs (moved %d want %d)", workers, moved, wantMoved)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEstimateEpsSampled(t *testing.T) {
	// Large vector sets route through the sampled estimator. Points spread
	// along a line so nearest-neighbor distances are nonzero.
	var vecs [][]float64
	for i := 0; i < 1200; i++ {
		vecs = append(vecs, []float64{float64(i) / 100, float64(i%13) / 10})
	}
	eps := EstimateEpsSampled(vecs, 3, 500, 0)
	if eps <= 0 {
		t.Errorf("sampled eps = %v, want > 0", eps)
	}
	// Small sets use the exact estimator; both paths must agree on scale.
	exact := EstimateEpsSampled(vecs[:400], 3, 500, 0)
	if exact <= 0 {
		t.Errorf("exact eps = %v", exact)
	}
	// The sampled path must equal the exact estimator over the sample.
	if got, want := EstimateEpsSampled(vecs, 3, 400, 0), EstimateEps(vecs[:1200:1200], 3, 0); got <= 0 || want <= 0 {
		t.Errorf("estimators degenerate: sampled %v exact %v", got, want)
	}
}

// BenchmarkDBSCANNaive1000 is the oracle's cost next to
// BenchmarkDBSCAN1000 (which now runs the indexed form on the same
// points).
func BenchmarkDBSCANNaive1000(b *testing.B) {
	pts, _ := twoBlobs(500, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DBSCANNaive(pts, 0.1, 4)
	}
}
