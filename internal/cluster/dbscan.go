// Package cluster implements the segment-grouping step of Sec 6: density
// clustering of segment weight vectors into intention clusters. DBSCAN is
// the paper's choice (no a-priori cluster count, arbitrary shapes, noise);
// k-means is provided for comparison, along with the k-distance heuristic
// for choosing DBSCAN's eps, centroid computation (Fig 3), and a sampled
// variant that scales to millions of segments the way the paper's ELKI
// library run does.
package cluster

import (
	"math"
	"sort"
)

// Noise is the label DBSCAN assigns to points that belong to no cluster.
const Noise = -1

// DBSCAN clusters points (dense vectors of equal dimension) with the
// classic density-based algorithm of Ester et al. (1996) under Euclidean
// distance. It returns one label per point — 0..k-1 for cluster members,
// Noise for outliers — and the number of clusters k. The implementation is
// the exact O(n²) region-query form; use Sampled for large collections.
func DBSCAN(points [][]float64, eps float64, minPts int) (labels []int, k int) {
	n := len(points)
	labels = make([]int, n)
	for i := range labels {
		labels[i] = Noise - 1 // unvisited
	}
	const unvisited = Noise - 1

	epsSq := eps * eps
	neighbors := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if j != i && sqDist(points[i], points[j]) <= epsSq {
				out = append(out, j)
			}
		}
		return out
	}

	k = 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		nb := neighbors(i)
		if len(nb)+1 < minPts {
			labels[i] = Noise
			continue
		}
		// Start a new cluster and expand it over the density-reachable set.
		labels[i] = k
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == Noise {
				labels[j] = k // border point
				continue
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = k
			jnb := neighbors(j)
			if len(jnb)+1 >= minPts {
				queue = append(queue, jnb...)
			}
		}
		k++
	}
	return labels, k
}

// EstimateEps returns a data-driven eps for DBSCAN: twice the 90th
// percentile of every point's distance to its k-th nearest neighbor (the
// "knee" of the sorted k-distance plot, approximated, with headroom so that
// uniform within-cluster spread does not fragment a cluster into density
// islands). k is typically minPts−1.
func EstimateEps(points [][]float64, k int) float64 {
	n := len(points)
	if n == 0 || k <= 0 {
		return 0
	}
	if k >= n {
		k = n - 1
	}
	kd := make([]float64, 0, n)
	dists := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		dists = dists[:0]
		for j := 0; j < n; j++ {
			if i != j {
				dists = append(dists, sqDist(points[i], points[j]))
			}
		}
		sort.Float64s(dists)
		kd = append(kd, math.Sqrt(dists[k-1]))
	}
	sort.Float64s(kd)
	return 2 * kd[int(float64(len(kd))*0.9)]
}

// Sampled runs DBSCAN on a deterministic sample of at most sampleSize
// points, derives centroids, and assigns every remaining point to the
// nearest centroid within assignEps (Noise otherwise). It trades exactness
// for linear scaling, which is what makes the Table 6 StackOverflow-scale
// grouping run in minutes instead of hours.
func Sampled(points [][]float64, eps float64, minPts, sampleSize int) (labels []int, k int) {
	n := len(points)
	if n <= sampleSize {
		return DBSCAN(points, eps, minPts)
	}
	// Deterministic systematic sample: every n/sampleSize-th point.
	stride := n / sampleSize
	sample := make([][]float64, 0, sampleSize)
	for i := 0; i < n && len(sample) < sampleSize; i += stride {
		sample = append(sample, points[i])
	}
	sampleLabels, k := DBSCAN(sample, eps, minPts)
	cents := Centroids(sample, sampleLabels, k)

	labels = make([]int, n)
	assignEpsSq := eps * eps * 4 // looser radius for assignment to centroids
	for i, p := range points {
		best, bestD := Noise, math.Inf(1)
		for c, cent := range cents {
			if d := sqDist(p, cent); d < bestD {
				best, bestD = c, d
			}
		}
		if best == Noise || bestD > assignEpsSq {
			labels[i] = Noise
		} else {
			labels[i] = best
		}
	}
	return labels, k
}

// Centroids computes the mean vector of each cluster. Noise points are
// excluded. Clusters with no members yield zero vectors.
func Centroids(points [][]float64, labels []int, k int) [][]float64 {
	if k == 0 || len(points) == 0 {
		return nil
	}
	dim := len(points[0])
	cents := make([][]float64, k)
	counts := make([]int, k)
	for i := range cents {
		cents[i] = make([]float64, dim)
	}
	for i, p := range points {
		c := labels[i]
		if c < 0 || c >= k {
			continue
		}
		counts[c]++
		for d, v := range p {
			cents[c][d] += v
		}
	}
	for c := range cents {
		if counts[c] == 0 {
			continue
		}
		for d := range cents[c] {
			cents[c][d] /= float64(counts[c])
		}
	}
	return cents
}

// AssignNoise relabels every Noise point to its nearest cluster centroid,
// so that all segments can participate in matching. It returns the number
// of points reassigned. With k == 0 nothing changes.
func AssignNoise(points [][]float64, labels []int, centroids [][]float64) int {
	if len(centroids) == 0 {
		return 0
	}
	moved := 0
	for i, l := range labels {
		if l != Noise {
			continue
		}
		best, bestD := 0, math.Inf(1)
		for c, cent := range centroids {
			if d := sqDist(points[i], cent); d < bestD {
				best, bestD = c, d
			}
		}
		labels[i] = best
		moved++
	}
	return moved
}

// Sizes returns the member count of each cluster label (ignoring noise).
func Sizes(labels []int, k int) []int {
	sizes := make([]int, k)
	for _, l := range labels {
		if l >= 0 && l < k {
			sizes[l]++
		}
	}
	return sizes
}

func sqDist(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}
