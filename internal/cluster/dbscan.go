// Package cluster implements the segment-grouping step of Sec 6: density
// clustering of segment weight vectors into intention clusters. DBSCAN is
// the paper's choice (no a-priori cluster count, arbitrary shapes, noise);
// k-means is provided for comparison, along with the k-distance heuristic
// for choosing DBSCAN's eps, centroid computation (Fig 3), and a sampled
// variant that scales to millions of segments the way the paper's ELKI
// library run does. Region queries run through a cell-list spatial index
// (Grid) the way ELKI's indexed DBSCAN does, and the embarrassingly
// parallel pieces (k-distance estimation, centroid sums, noise
// reassignment, k-means assignment) fan out over a bounded worker pool;
// every parallel path produces output identical to its serial form.
package cluster

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/par"
)

// Noise is the label DBSCAN assigns to points that belong to no cluster.
const Noise = -1

// DBSCAN clusters points (dense vectors of equal dimension) with the
// classic density-based algorithm of Ester et al. (1996) under Euclidean
// distance. It returns one label per point — 0..k-1 for cluster members,
// Noise for outliers — and the number of clusters k. Region queries run
// through a Grid cell-list index with a reused neighbor buffer, dropping
// the per-query cost from an O(n) scan to the candidate cells around the
// query point; the labeling is identical to the naive quadratic form
// (DBSCANNaive, kept as the test oracle). Use Sampled for collections
// where even near-linear passes per point are too slow.
func DBSCAN(points [][]float64, eps float64, minPts int) (labels []int, k int) {
	n := len(points)
	labels = make([]int, n)
	for i := range labels {
		labels[i] = Noise - 1 // unvisited
	}
	const unvisited = Noise - 1

	grid := NewGrid(points, eps)
	var nb []int32    // reused region-query buffer
	var queue []int32 // reused expansion frontier

	k = 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		nb = grid.Radius(points[i], eps, i, nb)
		if len(nb)+1 < minPts {
			labels[i] = Noise
			continue
		}
		// Start a new cluster and expand it over the density-reachable set.
		labels[i] = k
		queue = append(queue[:0], nb...)
		for head := 0; head < len(queue); head++ {
			j := int(queue[head])
			if labels[j] == Noise {
				labels[j] = k // border point
				continue
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = k
			nb = grid.Radius(points[j], eps, j, nb)
			if len(nb)+1 >= minPts {
				queue = append(queue, nb...)
			}
		}
		k++
	}
	return labels, k
}

// DBSCANNaive is the exact O(n²) region-query form of DBSCAN — the
// reference implementation the indexed DBSCAN is property-tested against.
// It exists as the oracle: any labeling disagreement between the two is a
// bug in the index, never a modeling choice.
func DBSCANNaive(points [][]float64, eps float64, minPts int) (labels []int, k int) {
	n := len(points)
	labels = make([]int, n)
	for i := range labels {
		labels[i] = Noise - 1 // unvisited
	}
	const unvisited = Noise - 1

	epsSq := eps * eps
	neighbors := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if j != i && sqDist(points[i], points[j]) <= epsSq {
				out = append(out, j)
			}
		}
		return out
	}

	k = 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		nb := neighbors(i)
		if len(nb)+1 < minPts {
			labels[i] = Noise
			continue
		}
		labels[i] = k
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == Noise {
				labels[j] = k // border point
				continue
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = k
			jnb := neighbors(j)
			if len(jnb)+1 >= minPts {
				queue = append(queue, jnb...)
			}
		}
		k++
	}
	return labels, k
}

// EstimateEps returns a data-driven eps for DBSCAN: twice the 90th
// percentile of every point's distance to its k-th nearest neighbor (the
// "knee" of the sorted k-distance plot, approximated, with headroom so that
// uniform within-cluster spread does not fragment a cluster into density
// islands). k is typically minPts−1. The per-point k-distance pass is
// independent across points and runs over at most `workers` goroutines
// (GOMAXPROCS when <= 0); the result is identical for any worker count.
func EstimateEps(points [][]float64, k, workers int) float64 {
	n := len(points)
	if n == 0 || k <= 0 {
		return 0
	}
	if k >= n {
		k = n - 1
	}
	kd := make([]float64, n)
	par.Chunks(n, workers, func(lo, hi int) {
		dists := make([]float64, 0, n-1)
		for i := lo; i < hi; i++ {
			dists = dists[:0]
			for j := 0; j < n; j++ {
				if i != j {
					dists = append(dists, sqDist(points[i], points[j]))
				}
			}
			sort.Float64s(dists)
			kd[i] = math.Sqrt(dists[k-1])
		}
	})
	sort.Float64s(kd)
	return 2 * kd[int(float64(len(kd))*0.9)]
}

// EstimateEpsSampled runs the k-distance eps heuristic on a deterministic
// systematic sample of at most maxSample points (the exact heuristic is
// quadratic in the sample size).
func EstimateEpsSampled(points [][]float64, k, maxSample, workers int) float64 {
	if maxSample <= 0 || len(points) <= maxSample {
		return EstimateEps(points, k, workers)
	}
	stride := len(points) / maxSample
	sample := make([][]float64, 0, maxSample)
	for i := 0; i < len(points) && len(sample) < maxSample; i += stride {
		sample = append(sample, points[i])
	}
	return EstimateEps(sample, k, workers)
}

// Sampled runs DBSCAN on a deterministic sample of at most sampleSize
// points, derives centroids, and assigns every remaining point to the
// nearest centroid within 2·eps (Noise otherwise). It trades exactness
// for linear scaling, which is what makes the Table 6 StackOverflow-scale
// grouping run in minutes instead of hours. The per-point assignment runs
// its candidate lookup through the same Grid index DBSCAN queries, in
// parallel over at most `workers` goroutines.
func Sampled(points [][]float64, eps float64, minPts, sampleSize, workers int) (labels []int, k int) {
	n := len(points)
	if n <= sampleSize {
		return DBSCAN(points, eps, minPts)
	}
	// Deterministic systematic sample: every n/sampleSize-th point.
	stride := n / sampleSize
	sample := make([][]float64, 0, sampleSize)
	for i := 0; i < n && len(sample) < sampleSize; i += stride {
		sample = append(sample, points[i])
	}
	sampleLabels, k := DBSCAN(sample, eps, minPts)
	cents := Centroids(sample, sampleLabels, k, workers)

	labels = make([]int, n)
	assignEps := eps * 2 // looser radius for assignment to centroids
	assignEpsSq := assignEps * assignEps
	// Candidate lookup goes through the same cell-list index DBSCAN
	// queries once the centroid set is large enough for cell pruning to
	// beat a direct scan; below that, enumerating ~3^3 cells costs more
	// than comparing against every centroid. Both paths pick the same
	// centroid: the nearest within assignEps, lowest index on ties.
	const gridAssignMin = 32
	var grid *Grid
	if k >= gridAssignMin {
		grid = NewGrid(cents, assignEps)
	}
	par.Chunks(n, workers, func(lo, hi int) {
		var buf []int32
		for i := lo; i < hi; i++ {
			best, bestD := Noise, math.Inf(1)
			if grid != nil {
				buf = grid.Radius(points[i], assignEps, -1, buf)
				for _, c := range buf {
					if d := sqDist(points[i], cents[c]); d < bestD {
						best, bestD = int(c), d
					}
				}
			} else {
				for c, cent := range cents {
					if d := sqDist(points[i], cent); d < bestD && d <= assignEpsSq {
						best, bestD = c, d
					}
				}
			}
			labels[i] = best
		}
	})
	return labels, k
}

// centroidChunks fixes the number of partial sums the parallel centroid
// reduction folds together. It is a constant — not the worker count — so
// the floating-point summation order, and therefore the result, is
// identical on every machine regardless of GOMAXPROCS.
const centroidChunks = 16

// Centroids computes the mean vector of each cluster. Noise points are
// excluded. Clusters with no members yield zero vectors. Large inputs
// accumulate per-chunk partial sums over at most `workers` goroutines
// (small inputs run serially, producing bit-identical results to the
// original single-pass form).
func Centroids(points [][]float64, labels []int, k, workers int) [][]float64 {
	if k == 0 || len(points) == 0 {
		return nil
	}
	dim := len(points[0])
	cents := make([][]float64, k)
	for i := range cents {
		cents[i] = make([]float64, dim)
	}
	counts := make([]int, k)
	n := len(points)

	accumulate := func(cents [][]float64, counts []int, lo, hi int) {
		for i := lo; i < hi; i++ {
			c := labels[i]
			if c < 0 || c >= k {
				continue
			}
			counts[c]++
			for d, v := range points[i] {
				cents[c][d] += v
			}
		}
	}

	if n < centroidChunks*64 {
		accumulate(cents, counts, 0, n)
	} else {
		partials := make([][][]float64, centroidChunks)
		partialCounts := make([][]int, centroidChunks)
		par.Do(centroidChunks, workers, func(ci int) {
			p := make([][]float64, k)
			for i := range p {
				p[i] = make([]float64, dim)
			}
			pc := make([]int, k)
			accumulate(p, pc, ci*n/centroidChunks, (ci+1)*n/centroidChunks)
			partials[ci], partialCounts[ci] = p, pc
		})
		// Reduce in fixed chunk order: deterministic float summation.
		for ci := 0; ci < centroidChunks; ci++ {
			for c := 0; c < k; c++ {
				counts[c] += partialCounts[ci][c]
				for d := range cents[c] {
					cents[c][d] += partials[ci][c][d]
				}
			}
		}
	}

	for c := range cents {
		if counts[c] == 0 {
			continue
		}
		for d := range cents[c] {
			cents[c][d] /= float64(counts[c])
		}
	}
	return cents
}

// AssignNoise relabels every Noise point to its nearest cluster centroid,
// so that all segments can participate in matching. It returns the number
// of points reassigned. With no centroids nothing changes. Points are
// independent, so the pass runs over at most `workers` goroutines; labels
// are identical for any worker count.
func AssignNoise(points [][]float64, labels []int, centroids [][]float64, workers int) int {
	if len(centroids) == 0 {
		return 0
	}
	var moved atomic.Int64
	par.Chunks(len(labels), workers, func(lo, hi int) {
		chunkMoved := 0
		for i := lo; i < hi; i++ {
			if labels[i] != Noise {
				continue
			}
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := sqDist(points[i], cent); d < bestD {
					best, bestD = c, d
				}
			}
			labels[i] = best
			chunkMoved++
		}
		moved.Add(int64(chunkMoved))
	})
	return int(moved.Load())
}

// Sizes returns the member count of each cluster label (ignoring noise).
func Sizes(labels []int, k int) []int {
	sizes := make([]int, k)
	for _, l := range labels {
		if l >= 0 && l < k {
			sizes[l]++
		}
	}
	return sizes
}

func sqDist(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}
