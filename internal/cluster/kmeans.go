package cluster

import (
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/par"
)

// KMeans clusters points into k groups with Lloyd's algorithm and
// k-means++ seeding. It is the distance-based comparison point the paper
// contrasts DBSCAN against (Sec 6) and the grouper used by the Content-MR
// baseline on TF/IDF vectors. The seed makes runs reproducible; maxIter
// bounds Lloyd iterations (25 covers convergence on segment vectors).
// The assignment step (every point against every centroid — the dominant
// cost) and the k-means++ D² pass run over at most `workers` goroutines;
// all random draws stay on the caller's goroutine, so the labeling for a
// given seed is identical for any worker count. It returns one cluster
// label per point, always in 0..k-1.
func KMeans(points [][]float64, k int, seed int64, maxIter, workers int) []int {
	n := len(points)
	labels := make([]int, n)
	if n == 0 || k <= 0 {
		return labels
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 25
	}
	rng := rand.New(rand.NewSource(seed))
	cents := seedPlusPlus(points, k, rng, workers)

	for iter := 0; iter < maxIter; iter++ {
		var changed atomic.Bool
		par.Chunks(n, workers, func(lo, hi int) {
			chunkChanged := false
			for i := lo; i < hi; i++ {
				best, bestD := 0, math.Inf(1)
				for c := range cents {
					if d := sqDist(points[i], cents[c]); d < bestD {
						best, bestD = c, d
					}
				}
				if labels[i] != best {
					labels[i] = best
					chunkChanged = true
				}
			}
			if chunkChanged {
				changed.Store(true)
			}
		})
		if !changed.Load() && iter > 0 {
			break
		}
		cents = recompute(points, labels, k, rng, workers)
	}
	return labels
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
// The D² distances are computed in parallel, then summed and sampled in
// index order on the caller's goroutine, so the seeding is deterministic.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand, workers int) [][]float64 {
	n := len(points)
	cents := make([][]float64, 0, k)
	cents = append(cents, clone(points[rng.Intn(n)]))
	d2 := make([]float64, n)
	for len(cents) < k {
		par.Chunks(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				best := math.Inf(1)
				for _, c := range cents {
					if d := sqDist(points[i], c); d < best {
						best = d
					}
				}
				d2[i] = best
			}
		})
		var total float64
		for _, d := range d2 {
			total += d
		}
		if total == 0 {
			// All remaining points coincide with centroids; duplicate one.
			cents = append(cents, clone(points[rng.Intn(n)]))
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i, d := range d2 {
			r -= d
			if r <= 0 {
				idx = i
				break
			}
		}
		cents = append(cents, clone(points[idx]))
	}
	return cents
}

// recompute derives new centroids from the labeling; an emptied cluster is
// re-seeded with a random point to keep k stable.
func recompute(points [][]float64, labels []int, k int, rng *rand.Rand, workers int) [][]float64 {
	cents := Centroids(points, labels, k, workers)
	sizes := Sizes(labels, k)
	for c := range cents {
		if sizes[c] == 0 {
			cents[c] = clone(points[rng.Intn(len(points))])
		}
	}
	return cents
}

func clone(p []float64) []float64 {
	out := make([]float64, len(p))
	copy(out, p)
	return out
}

// Inertia returns the total within-cluster sum of squared distances — the
// k-means objective, useful for elbow-style diagnostics in experiments.
func Inertia(points [][]float64, labels []int, centroids [][]float64) float64 {
	var sum float64
	for i, p := range points {
		c := labels[i]
		if c >= 0 && c < len(centroids) {
			sum += sqDist(p, centroids[c])
		}
	}
	return sum
}
