package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoBlobs generates two well-separated Gaussian-ish blobs plus far
// outliers, deterministically.
func twoBlobs(nPer int, seed int64) (points [][]float64, wantLabelOf func(i int) int) {
	rng := rand.New(rand.NewSource(seed))
	var pts [][]float64
	for i := 0; i < nPer; i++ {
		pts = append(pts, []float64{0.1 + rng.Float64()*0.05, 0.1 + rng.Float64()*0.05})
	}
	for i := 0; i < nPer; i++ {
		pts = append(pts, []float64{0.9 + rng.Float64()*0.05, 0.9 + rng.Float64()*0.05})
	}
	return pts, func(i int) int {
		if i < nPer {
			return 0
		}
		return 1
	}
}

func TestDBSCANTwoClusters(t *testing.T) {
	pts, _ := twoBlobs(30, 1)
	labels, k := DBSCAN(pts, 0.1, 3)
	if k != 2 {
		t.Fatalf("DBSCAN found %d clusters, want 2", k)
	}
	// All members of a blob share a label, and the blobs differ.
	for i := 1; i < 30; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("blob 1 split: labels[%d]=%d labels[0]=%d", i, labels[i], labels[0])
		}
	}
	for i := 31; i < 60; i++ {
		if labels[i] != labels[30] {
			t.Fatalf("blob 2 split")
		}
	}
	if labels[0] == labels[30] {
		t.Fatal("blobs merged")
	}
}

func TestDBSCANNoise(t *testing.T) {
	pts, _ := twoBlobs(20, 2)
	pts = append(pts, []float64{0.5, 0.1}, []float64{0.1, 0.9})
	labels, k := DBSCAN(pts, 0.08, 4)
	if k != 2 {
		t.Fatalf("found %d clusters, want 2", k)
	}
	if labels[len(pts)-1] != Noise || labels[len(pts)-2] != Noise {
		t.Errorf("outliers not labeled noise: %d %d", labels[len(pts)-2], labels[len(pts)-1])
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	labels, k := DBSCAN(pts, 0.1, 3)
	if k != 0 {
		t.Fatalf("k = %d, want 0", k)
	}
	for _, l := range labels {
		if l != Noise {
			t.Fatal("expected all noise")
		}
	}
}

func TestDBSCANEmpty(t *testing.T) {
	labels, k := DBSCAN(nil, 0.1, 3)
	if len(labels) != 0 || k != 0 {
		t.Fatal("empty input should yield empty labels")
	}
}

func TestDBSCANMinPtsOne(t *testing.T) {
	// minPts 1: every point is a core point; singletons become clusters.
	pts := [][]float64{{0, 0}, {10, 10}}
	labels, k := DBSCAN(pts, 0.5, 1)
	if k != 2 || labels[0] == labels[1] {
		t.Fatalf("minPts=1: labels=%v k=%d", labels, k)
	}
}

// Property: labels are always in {Noise} ∪ [0,k) and label count equals
// point count.
func TestDBSCANLabelRangeProperty(t *testing.T) {
	f := func(raw []uint8, eps8 uint8, minPts8 uint8) bool {
		var pts [][]float64
		for i := 0; i+1 < len(raw) && len(pts) < 40; i += 2 {
			pts = append(pts, []float64{float64(raw[i]) / 255, float64(raw[i+1]) / 255})
		}
		eps := 0.01 + float64(eps8)/255
		minPts := 1 + int(minPts8%5)
		labels, k := DBSCAN(pts, eps, minPts)
		if len(labels) != len(pts) {
			return false
		}
		for _, l := range labels {
			if l != Noise && (l < 0 || l >= k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateEps(t *testing.T) {
	pts, _ := twoBlobs(25, 3)
	eps := EstimateEps(pts, 3, 0)
	if eps <= 0 || eps > 0.2 {
		t.Fatalf("EstimateEps = %v, want small positive for tight blobs", eps)
	}
	labels, k := DBSCAN(pts, eps, 4)
	if k != 2 {
		t.Fatalf("DBSCAN with estimated eps found %d clusters, want 2 (eps=%v)", k, eps)
	}
	_ = labels
	if EstimateEps(nil, 3, 0) != 0 {
		t.Error("EstimateEps(nil) != 0")
	}
}

func TestSampledMatchesExactOnSmallInput(t *testing.T) {
	pts, _ := twoBlobs(20, 4)
	exactLabels, exactK := DBSCAN(pts, 0.1, 3)
	sampLabels, sampK := Sampled(pts, 0.1, 3, 1000, 0)
	if exactK != sampK {
		t.Fatalf("Sampled k=%d, exact k=%d", sampK, exactK)
	}
	for i := range pts {
		if (exactLabels[i] == Noise) != (sampLabels[i] == Noise) {
			t.Fatalf("noise disagreement at %d", i)
		}
	}
}

func TestSampledLargeInput(t *testing.T) {
	pts, want := twoBlobs(600, 5)
	labels, k := Sampled(pts, 0.1, 3, 100, 0)
	if k != 2 {
		t.Fatalf("Sampled found %d clusters, want 2", k)
	}
	// Points of the same blob must agree with each other.
	agree := 0
	for i := range pts {
		if labels[i] == labels[want(i)*600] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(pts)); frac < 0.95 {
		t.Errorf("sampled assignment agreement %.2f < 0.95", frac)
	}
}

func TestCentroids(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 2}, {10, 10}, {12, 12}, {100, 100}}
	labels := []int{0, 0, 1, 1, Noise}
	cents := Centroids(pts, labels, 2, 0)
	if len(cents) != 2 {
		t.Fatalf("got %d centroids", len(cents))
	}
	if cents[0][0] != 1 || cents[0][1] != 1 {
		t.Errorf("centroid 0 = %v, want [1 1]", cents[0])
	}
	if cents[1][0] != 11 || cents[1][1] != 11 {
		t.Errorf("centroid 1 = %v, want [11 11]", cents[1])
	}
	if Centroids(nil, nil, 0, 0) != nil {
		t.Error("Centroids of nothing should be nil")
	}
}

func TestAssignNoise(t *testing.T) {
	pts := [][]float64{{0, 0}, {10, 10}, {1, 1}, {9, 9}}
	labels := []int{0, 1, Noise, Noise}
	cents := [][]float64{{0, 0}, {10, 10}}
	moved := AssignNoise(pts, labels, cents, 0)
	if moved != 2 {
		t.Fatalf("moved = %d, want 2", moved)
	}
	if labels[2] != 0 || labels[3] != 1 {
		t.Errorf("labels after AssignNoise = %v", labels)
	}
	if AssignNoise(pts, labels, nil, 0) != 0 {
		t.Error("AssignNoise with no centroids should move nothing")
	}
}

func TestSizes(t *testing.T) {
	sizes := Sizes([]int{0, 0, 1, Noise, 1, 1}, 2)
	if sizes[0] != 2 || sizes[1] != 3 {
		t.Errorf("Sizes = %v", sizes)
	}
}

func TestKMeansTwoClusters(t *testing.T) {
	pts, want := twoBlobs(40, 6)
	labels := KMeans(pts, 2, 42, 0, 0)
	// Same-blob points share a label; blobs differ.
	for i := 1; i < 40; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("blob 1 split by kmeans")
		}
	}
	if labels[0] == labels[40] {
		t.Fatal("blobs merged by kmeans")
	}
	_ = want
}

func TestKMeansDeterministic(t *testing.T) {
	pts, _ := twoBlobs(30, 7)
	a := KMeans(pts, 3, 99, 0, 0)
	b := KMeans(pts, 3, 99, 0, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("KMeans with same seed differs across runs")
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if got := KMeans(nil, 3, 1, 0, 0); len(got) != 0 {
		t.Error("KMeans(nil) should be empty")
	}
	// k > n clamps to n.
	pts := [][]float64{{0}, {1}}
	labels := KMeans(pts, 5, 1, 0, 0)
	for _, l := range labels {
		if l < 0 || l >= 2 {
			t.Errorf("label %d out of range after clamp", l)
		}
	}
	// Identical points: must terminate and label everything.
	same := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	labels = KMeans(same, 2, 1, 0, 0)
	if len(labels) != 4 {
		t.Error("KMeans on identical points broke")
	}
}

func TestInertia(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 0}}
	labels := []int{0, 0}
	cents := [][]float64{{1, 0}}
	if got := Inertia(pts, labels, cents); math.Abs(got-2) > 1e-12 {
		t.Errorf("Inertia = %v, want 2", got)
	}
}

func BenchmarkDBSCAN1000(b *testing.B) {
	pts, _ := twoBlobs(500, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DBSCAN(pts, 0.1, 4)
	}
}

func BenchmarkSampled10000(b *testing.B) {
	pts, _ := twoBlobs(5000, 9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sampled(pts, 0.1, 4, 500, 0)
	}
}
