package pos

// Closed-class lexicons. These word lists are the backbone of the tagger:
// English closed classes are small and stable, so enumerating them gives
// high-precision tags for exactly the words the communication-means
// annotator cares most about (pronouns, auxiliaries, modals, negators,
// wh-words).

var pronounFirst = set(
	"i", "we", "me", "us", "my", "our", "mine", "ours", "myself", "ourselves",
	"i'm", "i've", "i'd", "i'll", "we're", "we've", "we'd", "we'll",
)

var pronounSecond = set(
	"you", "your", "yours", "yourself", "yourselves",
	"you're", "you've", "you'd", "you'll",
)

var pronounThird = set(
	"he", "she", "it", "they", "him", "her", "them", "his", "hers", "its",
	"their", "theirs", "himself", "herself", "itself", "themselves", "one",
	"someone", "anyone", "everyone", "somebody", "anybody", "everybody",
	"something", "anything", "everything", "nothing", "nobody",
	"he's", "she's", "it's", "they're", "they've", "they'd", "they'll",
	"he'd", "she'd", "he'll", "she'll", "it'll",
)

var modals = set(
	"will", "would", "shall", "should", "can", "could", "may", "might",
	"must", "ought", "wo", "'ll", "'d", "won't", "wouldn't", "shouldn't",
	"can't", "cannot", "couldn't", "mustn't", "mightn't", "shan't",
)

// Auxiliary and copular verb forms with their tense classification.
var auxPresent = set(
	"am", "is", "are", "do", "does", "has", "have", "'s", "'re", "'m", "'ve",
	"isn't", "aren't", "don't", "doesn't", "hasn't", "haven't", "ain't",
)

var auxPast = set(
	"was", "were", "did", "had", "wasn't", "weren't", "didn't", "hadn't",
)

// beForms are the forms of "to be"; they matter for passive detection.
var beForms = set(
	"be", "am", "is", "are", "was", "were", "been", "being",
	"'s", "'re", "'m", "isn't", "aren't", "wasn't", "weren't", "ain't",
)

// getForms participate in the colloquial "get"-passive ("got installed").
var getForms = set("get", "gets", "got", "gotten", "getting")

var determiners = set(
	"the", "a", "an", "this", "that", "these", "those", "each", "every",
	"either", "neither", "some", "any", "no", "all", "both", "such",
	"another", "other",
)

var prepositions = set(
	"in", "on", "at", "by", "for", "with", "about", "against", "between",
	"into", "through", "during", "before", "after", "above", "below", "to",
	"from", "up", "down", "of", "off", "over", "under", "again", "further",
	"since", "until", "while", "because", "although", "though", "unless",
	"whether", "if", "as", "than", "via", "per", "without", "within",
	"despite", "upon", "onto", "toward", "towards", "across", "around",
	"behind", "beside", "near", "inside", "outside",
)

var conjunctions = set("and", "but", "or", "nor", "yet", "so", "plus")

var whWords = set(
	"what", "which", "who", "whom", "whose", "when", "where", "why", "how",
	"what's", "who's", "where's", "how's", "when's", "why's",
)

// negationWords mark a sentence as negative for the CM_qneg communication
// mean. Contracted auxiliaries ("didn't") are handled separately by suffix.
var negationWords = set(
	"not", "no", "never", "none", "nothing", "nobody", "nowhere", "neither",
	"nor", "cannot", "without", "hardly", "barely", "scarcely", "n't",
)

// commonAdjectives: open class, but a seed list of high-frequency forum
// adjectives sharpens tagging where suffix rules are silent.
var commonAdjectives = set(
	"good", "bad", "new", "old", "great", "small", "large", "big", "high",
	"low", "long", "short", "right", "wrong", "same", "different", "next",
	"last", "first", "second", "third", "few", "many", "much", "more",
	"most", "less", "least", "own", "full", "empty", "free", "hard", "easy",
	"nice", "fine", "poor", "main", "extra", "sure", "able", "best", "worst",
	"better", "worse", "clean", "dirty", "quiet", "loud", "cheap",
	"expensive", "slow", "fast", "hot", "cold", "warm", "cool", "cooler",
	"ok", "okay", "several", "available", "possible", "impossible", "entire",
	"whole", "partial", "brilliant", "adequate", "technical", "official",
	"pre-installed", "wireless", "wrongful", "comfortable", "friendly",
	"helpful", "modern", "spacious", "dirty", "noisy", "central", "overall",
)

// commonAdverbs: seed list for the same reason.
var commonAdverbs = set(
	"very", "too", "also", "just", "only", "here", "there", "now", "then",
	"always", "often", "sometimes", "usually", "already", "still", "yet",
	"again", "once", "twice", "soon", "later", "well", "even", "almost",
	"quite", "rather", "maybe", "perhaps", "however", "anyway", "instead",
	"together", "away", "back", "forward", "online", "offline", "anymore",
	"everywhere", "somewhere", "definitely", "probably", "recently",
	"yesterday", "today", "tomorrow", "voila",
)

// commonNouns that look like verbs or adjectives to the suffix rules and
// appear constantly in forum text.
var commonNouns = set(
	"thing", "things", "time", "times", "way", "problem", "problems",
	"issue", "issues", "question", "questions", "answer", "answers", "help",
	"system", "systems", "computer", "computers", "drive", "drives", "disk",
	"disks", "disc", "discs", "controller", "printer", "printers", "laptop",
	"laptops", "screen", "screens", "error", "errors", "site", "website",
	"person", "people", "friend", "friends", "boss", "department", "place",
	"room", "rooms", "hotel", "hotels", "staff", "location", "price",
	"prices", "breakfast", "view", "pool", "beach", "night", "nights",
	"day", "days", "week", "weeks", "month", "months", "year", "years",
	"code", "programming", "function", "functions", "method", "methods",
	"class", "classes", "server", "servers", "database", "databases",
	"file", "files", "folder", "version", "versions", "update", "updates",
	"setting", "settings", "knowledge", "activity", "performance", "user",
	"users", "idea", "solution", "solutions", "replacement", "support",
	"configuration", "distribution", "replication", "information", "calls",
	"call", "luck", "min", "web",
)

// baseVerbs seed the open verb class: frequent forum verbs in base form.
// Inflected forms are derived by the morphology rules in tagger.go.
var baseVerbs = set(
	"have", "do", "go", "get", "make", "know", "think", "see", "come",
	"want", "use", "find", "give", "tell", "work", "call", "try", "ask",
	"need", "seem", "help", "show", "move", "play", "run", "turn", "start",
	"stop", "look", "install", "download", "upload", "boot", "reboot",
	"restart", "configure", "connect", "disconnect", "upgrade", "update",
	"fix", "repair", "replace", "remove", "add", "delete", "format",
	"reformat", "rebuild", "build", "compile", "write", "read", "print",
	"scan", "click", "type", "open", "close", "save", "load", "buy",
	"suggest", "recommend", "book", "stay", "visit", "travel", "arrive",
	"leave", "check", "enjoy", "like", "love", "hate", "prefer", "expect",
	"hope", "wish", "wonder", "believe", "suppose", "manage", "fail",
	"succeed", "happen", "occur", "appear", "degrade", "improve", "perform",
	"crash", "freeze", "hang", "blink", "flash", "return", "send", "receive",
	"post", "reply", "answer", "search", "browse", "wait", "pay", "cost",
	"spend", "keep", "let", "put", "set", "say", "mean", "feel", "hear",
	"speak", "bring", "frustrate", "describe", "explain", "mention",
	"report", "state", "declare", "judge", "rate", "review", "complain",
	"thank", "appreciate", "apologize", "solve", "resolve", "debug", "test",
	"deploy", "refactor", "implement", "throw", "catch", "parse", "render",
	"invoke", "import", "export", "merge", "commit", "push", "pull",
)

func set(words ...string) map[string]bool {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}
