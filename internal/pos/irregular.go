package pos

// irregularPast maps irregular simple-past forms to their base verb, and
// irregularPart maps irregular past participles to their base verb. Forms
// that serve both roles ("bought") appear in both maps. The inventory
// covers the ~170 irregular verbs that dominate written English.

var irregularPast = map[string]string{
	"arose": "arise", "awoke": "awake", "was": "be", "were": "be",
	"bore": "bear", "beat": "beat", "became": "become", "began": "begin",
	"bent": "bend", "bet": "bet", "bound": "bind", "bit": "bite",
	"bled": "bleed", "blew": "blow", "broke": "break", "bred": "breed",
	"brought": "bring", "broadcast": "broadcast", "built": "build",
	"burned": "burn", "burnt": "burn", "burst": "burst", "bought": "buy",
	"caught": "catch", "chose": "choose", "clung": "cling", "came": "come",
	"cost": "cost", "crept": "creep", "cut": "cut", "dealt": "deal",
	"dug": "dig", "did": "do", "drew": "draw", "dreamed": "dream",
	"dreamt": "dream", "drank": "drink", "drove": "drive", "ate": "eat",
	"fell": "fall", "fed": "feed", "felt": "feel", "fought": "fight",
	"found": "find", "fit": "fit", "fled": "flee", "flung": "fling",
	"flew": "fly", "forbade": "forbid", "forgot": "forget",
	"forgave": "forgive", "froze": "freeze", "got": "get", "gave": "give",
	"went": "go", "grew": "grow", "hung": "hang", "had": "have",
	"heard": "hear", "hid": "hide", "hit": "hit", "held": "hold",
	"hurt": "hurt", "kept": "keep", "knelt": "kneel", "knew": "know",
	"laid": "lay", "led": "lead", "leaped": "leap", "leapt": "leap",
	"learned": "learn", "learnt": "learn", "left": "leave", "lent": "lend",
	"lay": "lie", "lit": "light", "lost": "lose", "made": "make",
	"meant": "mean", "met": "meet", "paid": "pay", "put": "put",
	"quit": "quit", "read": "read", "rid": "rid", "rode": "ride",
	"rang": "ring", "rose": "rise", "ran": "run", "said": "say",
	"saw": "see", "sought": "seek", "sold": "sell", "sent": "send",
	"set": "set", "sewed": "sew", "shook": "shake", "shone": "shine",
	"shot": "shoot", "showed": "show", "shrank": "shrink", "shut": "shut",
	"sang": "sing", "sank": "sink", "sat": "sit", "slept": "sleep",
	"slid": "slide", "spoke": "speak", "sped": "speed", "spent": "spend",
	"spun": "spin", "spread": "spread", "sprang": "spring", "stood": "stand",
	"stole": "steal", "stuck": "stick", "stung": "sting", "stank": "stink",
	"struck": "strike", "swore": "swear", "swept": "sweep", "swam": "swim",
	"swung": "swing", "took": "take", "taught": "teach", "tore": "tear",
	"told": "tell", "thought": "think", "threw": "throw",
	"understood": "understand", "woke": "wake", "wore": "wear",
	"wove": "weave", "wept": "weep", "won": "win", "wound": "wind",
	"withdrew": "withdraw", "wrung": "wring", "wrote": "write",
	"sprung": "spring", "stove": "stave", "strove": "strive",
	"upgraded": "upgrade",
}

var irregularPart = map[string]string{
	"arisen": "arise", "awoken": "awake", "been": "be", "borne": "bear",
	"beaten": "beat", "become": "become", "begun": "begin", "bent": "bend",
	"bet": "bet", "bound": "bind", "bitten": "bite", "bled": "bleed",
	"blown": "blow", "broken": "break", "bred": "breed",
	"brought": "bring", "broadcast": "broadcast", "built": "build",
	"burned": "burn", "burnt": "burn", "burst": "burst", "bought": "buy",
	"caught": "catch", "chosen": "choose", "clung": "cling", "come": "come",
	"cost": "cost", "crept": "creep", "cut": "cut", "dealt": "deal",
	"dug": "dig", "done": "do", "drawn": "draw", "dreamed": "dream",
	"dreamt": "dream", "drunk": "drink", "driven": "drive", "eaten": "eat",
	"fallen": "fall", "fed": "feed", "felt": "feel", "fought": "fight",
	"found": "find", "fit": "fit", "fled": "flee", "flung": "fling",
	"flown": "fly", "forbidden": "forbid", "forgotten": "forget",
	"forgiven": "forgive", "frozen": "freeze", "gotten": "get", "got": "get",
	"given": "give", "gone": "go", "grown": "grow", "hung": "hang",
	"had": "have", "heard": "hear", "hidden": "hide", "hit": "hit",
	"held": "hold", "hurt": "hurt", "kept": "keep", "knelt": "kneel",
	"known": "know", "laid": "lay", "led": "lead", "leaped": "leap",
	"leapt": "leap", "learned": "learn", "learnt": "learn", "left": "leave",
	"lent": "lend", "lain": "lie", "lit": "light", "lost": "lose",
	"made": "make", "meant": "mean", "met": "meet", "paid": "pay",
	"put": "put", "quit": "quit", "read": "read", "rid": "rid",
	"ridden": "ride", "rung": "ring", "risen": "rise", "run": "run",
	"said": "say", "seen": "see", "sought": "seek", "sold": "sell",
	"sent": "send", "set": "set", "sewn": "sew", "shaken": "shake",
	"shone": "shine", "shot": "shoot", "shown": "show", "shrunk": "shrink",
	"shut": "shut", "sung": "sing", "sunk": "sink", "sat": "sit",
	"slept": "sleep", "slid": "slide", "spoken": "speak", "sped": "speed",
	"spent": "spend", "spun": "spin", "spread": "spread",
	"sprung": "spring", "stood": "stand", "stolen": "steal",
	"stuck": "stick", "stung": "sting", "stunk": "stink",
	"struck": "strike", "sworn": "swear", "swept": "sweep", "swum": "swim",
	"swung": "swing", "taken": "take", "taught": "teach", "torn": "tear",
	"told": "tell", "thought": "think", "thrown": "throw",
	"understood": "understand", "woken": "wake", "worn": "wear",
	"woven": "weave", "wept": "weep", "won": "win", "wound": "wind",
	"withdrawn": "withdraw", "wrung": "wring", "written": "write",
}

// IsIrregularPast reports whether w (lower-cased) is an irregular
// simple-past verb form, returning its base form.
func IsIrregularPast(w string) (base string, ok bool) {
	base, ok = irregularPast[w]
	return base, ok
}

// IsIrregularParticiple reports whether w (lower-cased) is an irregular past
// participle, returning its base form.
func IsIrregularParticiple(w string) (base string, ok bool) {
	base, ok = irregularPart[w]
	return base, ok
}
